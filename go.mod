module pghive

go 1.22
