// Benchmarks regenerating the paper's tables and figures (one per
// experiment, on reduced dataset scales so the suite stays minutes-long),
// plus micro-benchmarks for the pipeline stages. Run the full-scale
// harness with: go run ./cmd/pghive-bench -scale 20000
package pghive_test

import (
	"bytes"
	"io"
	"testing"
	"time"

	"pghive"
	"pghive/internal/bench"
	"pghive/internal/datagen"
	"pghive/internal/embed"
	"pghive/internal/lsh"
)

// benchSettings keeps experiment benchmarks small: two structurally
// distinct datasets at 400 nodes.
func benchSettings() bench.Settings {
	return bench.Settings{Scale: 400, Seed: 1, Datasets: []string{"POLE", "MB6"}}
}

func BenchmarkTable2DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.RunTable2(io.Discard, benchSettings()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Significance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunFig3(io.Discard, benchSettings()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Quality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig4(io.Discard, benchSettings()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Runtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig5(io.Discard, benchSettings()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Heatmap(b *testing.B) {
	s := benchSettings()
	s.Datasets = []string{"POLE"}
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig6(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Incremental(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig7(io.Discard, benchSettings()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8SamplingError(b *testing.B) {
	s := benchSettings()
	s.Datasets = []string{"ICIJ"}
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig8(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks: single-method discovery per dataset profile.

func benchDataset(name string, scale int) *datagen.Dataset {
	return datagen.Generate(datagen.ProfileByName(name), datagen.Options{Nodes: scale, Seed: 1})
}

func benchmarkDiscover(b *testing.B, dataset string, method pghive.Method) {
	b.Helper()
	ds := benchDataset(dataset, 1000)
	cfg := pghive.DefaultConfig()
	cfg.Method = method
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := pghive.Discover(ds.Graph, cfg)
		if len(res.Def.Nodes) == 0 {
			b.Fatal("no types discovered")
		}
	}
}

// latentSource simulates a batch source with per-batch load latency (disk
// read, network fetch, parse) — the case the engine's prefetch stage hides.
type latentSource struct {
	batches []*pghive.Batch
	latency time.Duration
	next    int
}

func (s *latentSource) Next() *pghive.Batch {
	if s.next >= len(s.batches) {
		return nil
	}
	time.Sleep(s.latency)
	b := s.batches[s.next]
	s.next++
	return b
}

// BenchmarkDiscover contrasts the serial engine (PipelineDepth=1, legacy
// per-record vector allocation) with the overlapped engine (default depth,
// prefetch + stage overlap + arena vectors) on a multi-batch stream. Both
// produce byte-identical schemas; see internal/core/engine_test.go.
//
// The mem scenario streams from memory: overlapping compute with compute
// needs spare cores, so the win there scales with GOMAXPROCS; the alloc
// reduction from the arena shows at any core count. The io scenario adds
// per-batch source latency comparable to one batch's compute: the serial
// engine pays load + compute in sequence, the overlapped engine hides the
// loads behind compute even on a single core.
func BenchmarkDiscover(b *testing.B) {
	ds := benchDataset("LDBC", 2500)
	batches := ds.Graph.SplitRandom(8, 1)
	for _, scenario := range []struct {
		name    string
		latency time.Duration
	}{
		{"mem", 0},
		{"io", 10 * time.Millisecond},
	} {
		for _, bm := range []struct {
			name  string
			depth int
		}{
			{"serial", 1},
			{"overlapped", pghive.DefaultPipelineDepth},
		} {
			b.Run(scenario.name+"/"+bm.name, func(b *testing.B) {
				cfg := pghive.DefaultConfig()
				cfg.PipelineDepth = bm.depth
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var src pghive.Source = pghive.NewSliceSource(batches...)
					if scenario.latency > 0 {
						src = &latentSource{batches: batches, latency: scenario.latency}
					}
					res := pghive.DiscoverStream(src, cfg)
					if len(res.Def.Nodes) == 0 {
						b.Fatal("no types discovered")
					}
				}
			})
		}
	}
}

// memCheckpointer keeps only the latest checkpoint in memory, isolating the
// encoding cost of per-batch checkpointing from filesystem noise.
type memCheckpointer struct{ state []byte }

func (m *memCheckpointer) Save(state []byte) error {
	m.state = append(m.state[:0], state...)
	return nil
}

// BenchmarkDiscoverFaults measures the cost of the fault-tolerance layer on
// an 8-batch stream: the FT drain loop itself (clean), seeded transient
// faults absorbed by retry with backoff computed but not slept (fault10/50),
// and per-batch checkpointing of the full pipeline state (checkpoint).
// Every scenario must finalize the same schema as the plain engine; the
// identity sweep lives in internal/bench (pghive-bench -exp faults).
func BenchmarkDiscoverFaults(b *testing.B) {
	ds := benchDataset("LDBC", 2500)
	batches := ds.Graph.SplitRandom(8, 1)
	cfg := pghive.DefaultConfig()
	for _, scenario := range []struct {
		name       string
		rate       float64
		checkpoint bool
	}{
		{"clean", 0, false},
		{"fault10", 0.10, false},
		{"fault50", 0.50, false},
		{"checkpoint", 0, true},
	} {
		b.Run(scenario.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := pghive.AsErrSource(pghive.NewSliceSource(batches...))
				if scenario.rate > 0 {
					fault := pghive.NewFaultSource(src,
						pghive.FaultProfile{TransientRate: scenario.rate, Seed: 1})
					src = pghive.NewRetrySource(fault, pghive.RetryPolicy{
						MaxAttempts: 20,
						Sleep:       func(time.Duration) {}, // count, don't wait
					})
				}
				var opts pghive.FTOptions
				if scenario.checkpoint {
					opts.Checkpoint = &memCheckpointer{}
				}
				res, err := pghive.DiscoverStreamFT(src, cfg, opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Def.Nodes) == 0 {
					b.Fatal("no types discovered")
				}
			}
		})
	}
}

// BenchmarkDiscoverTelemetry measures the observability layer's end-to-end
// cost on an 8-batch stream: no sink (the provably-free default), a
// Registry aggregating every event, and a Registry fanned out with a
// Chrome-trace writer. The instrumentation sites are per-batch and
// per-cluster, never per-element, so the deltas sit inside run-to-run
// jitter; the disabled emit path is separately pinned to 0 allocs by
// BenchmarkInstrDisabled in internal/obs.
func BenchmarkDiscoverTelemetry(b *testing.B) {
	ds := benchDataset("LDBC", 2500)
	batches := ds.Graph.SplitRandom(8, 1)
	for _, scenario := range []string{"none", "registry", "registry+trace"} {
		b.Run(scenario, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := pghive.DefaultConfig()
				var reg *pghive.TelemetryRegistry
				var tw *pghive.TraceWriter
				switch scenario {
				case "registry":
					reg = pghive.NewTelemetryRegistry()
					cfg.Telemetry = reg
				case "registry+trace":
					reg = pghive.NewTelemetryRegistry()
					tw = pghive.NewTraceWriter(io.Discard)
					cfg.Telemetry = pghive.TelemetryMulti(reg, tw)
				}
				res := pghive.DiscoverStream(pghive.NewSliceSource(batches...), cfg)
				if tw != nil {
					if err := tw.Close(); err != nil {
						b.Fatal(err)
					}
				}
				if len(res.Def.Nodes) == 0 {
					b.Fatal("no types discovered")
				}
				if reg != nil && res.Telemetry.Counter(pghive.CtrBatches) != uint64(len(res.Reports)) {
					b.Fatal("telemetry snapshot inconsistent")
				}
			}
		})
	}
}

// BenchmarkDiscoverKernels contrasts the dense reference signature path
// (Config.DenseSignatures) with the default factored kernels end-to-end:
// the whole Discover run, not just hashing, so the delta also includes the
// factored path's skipped dense rendering and the MinHash distinct-record
// memoization. Both paths produce byte-identical schemas; see
// TestFactoredMatchesDense in internal/core.
func BenchmarkDiscoverKernels(b *testing.B) {
	for _, dataset := range []string{"LDBC", "IYP"} {
		ds := benchDataset(dataset, 2500)
		for _, m := range []pghive.Method{pghive.MethodELSH, pghive.MethodMinHash} {
			for _, bm := range []struct {
				name  string
				dense bool
			}{
				{"dense", true},
				{"factored", false},
			} {
				b.Run(dataset+"/"+m.String()+"/"+bm.name, func(b *testing.B) {
					cfg := pghive.DefaultConfig()
					cfg.Method = m
					cfg.DenseSignatures = bm.dense
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res := pghive.Discover(ds.Graph, cfg)
						if len(res.Def.Nodes) == 0 {
							b.Fatal("no types discovered")
						}
					}
				})
			}
		}
	}
}

func BenchmarkDiscoverELSHPole(b *testing.B)    { benchmarkDiscover(b, "POLE", pghive.MethodELSH) }
func BenchmarkDiscoverELSHLdbc(b *testing.B)    { benchmarkDiscover(b, "LDBC", pghive.MethodELSH) }
func BenchmarkDiscoverELSHIyp(b *testing.B)     { benchmarkDiscover(b, "IYP", pghive.MethodELSH) }
func BenchmarkDiscoverMinHashPole(b *testing.B) { benchmarkDiscover(b, "POLE", pghive.MethodMinHash) }
func BenchmarkDiscoverMinHashLdbc(b *testing.B) { benchmarkDiscover(b, "LDBC", pghive.MethodMinHash) }

func BenchmarkBaselineGMM(b *testing.B) {
	ds := benchDataset("POLE", 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := bench.RunMethod(ds, bench.GMM, bench.Settings{Seed: 1})
		if !out.OK {
			b.Fatal("GMM failed")
		}
	}
}

func BenchmarkBaselineSchemI(b *testing.B) {
	ds := benchDataset("POLE", 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := bench.RunMethod(ds, bench.SchemI, bench.Settings{Seed: 1})
		if !out.OK {
			b.Fatal("SchemI failed")
		}
	}
}

func BenchmarkWord2VecTrain(b *testing.B) {
	var corpus [][]string
	for i := 0; i < 200; i++ {
		corpus = append(corpus,
			[]string{"Person&Student", "Person", "Student"},
			[]string{"Neuron&mb6", "Neuron", "mb6"},
		)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		embed.Train(corpus, embed.DefaultConfig())
	}
}

func BenchmarkELSHSignature(b *testing.B) {
	fam := lsh.NewELSH(64, 2.0, 25, 1)
	vec := make([]float64, 64)
	for i := range vec {
		vec[i] = float64(i%7) * 0.3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fam.Signature(vec)
	}
}

func BenchmarkMinHashSignature(b *testing.B) {
	mh := lsh.NewMinHash(25, 1)
	set := make([]uint64, 20)
	for i := range set {
		set[i] = uint64(i) * 0x9e3779b9
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mh.Signature(set)
	}
}

func BenchmarkIncrementalBatch(b *testing.B) {
	ds := benchDataset("LDBC", 2000)
	batches := ds.Graph.SplitRandom(10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pghive.NewPipeline(pghive.DefaultConfig())
		for _, batch := range batches {
			p.ProcessBatch(batch)
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	s := benchSettings()
	s.Datasets = []string{"MB6"}
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblation(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetricsSuite(b *testing.B) {
	s := benchSettings()
	s.Datasets = []string{"POLE"}
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunMetrics(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	ds := benchDataset("POLE", 2000)
	res := pghive.Discover(ds.Graph, pghive.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pghive.ValidateGraph(ds.Graph, res.Def, pghive.Loose)
	}
}

func BenchmarkQueryPath(b *testing.B) {
	ds := benchDataset("POLE", 2000)
	q := "MATCH (c:Crime)-[:INVESTIGATED_BY]->(o:Officer) RETURN count(*)"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pghive.RunQuery(ds.Graph, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryWriteRead(b *testing.B) {
	ds := benchDataset("LDBC", 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := pghive.WriteGraphBinary(&buf, ds.Graph); err != nil {
			b.Fatal(err)
		}
		if _, err := pghive.ReadGraphBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
