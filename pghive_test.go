package pghive_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pghive"
)

// buildSocialGraph assembles a small social graph through the public API
// only.
func buildSocialGraph(t testing.TB) *pghive.Graph {
	t.Helper()
	g := pghive.NewGraph()
	var people []pghive.ID
	for i := 0; i < 30; i++ {
		people = append(people, g.AddNode([]string{"Person"}, pghive.Properties{
			"name":   pghive.Str("p"),
			"gender": pghive.Str("x"),
			"bday":   pghive.ParseValue("1999-12-19"),
		}))
	}
	var orgs []pghive.ID
	for i := 0; i < 5; i++ {
		orgs = append(orgs, g.AddNode([]string{"Organization"}, pghive.Properties{
			"name": pghive.Str("o"),
			"url":  pghive.Str("u"),
		}))
	}
	for i := 0; i < 29; i++ {
		if _, err := g.AddEdge([]string{"KNOWS"}, people[i], people[i+1], pghive.Properties{"since": pghive.Int(2017)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range people {
		if _, err := g.AddEdge([]string{"WORKS_AT"}, p, orgs[i%len(orgs)], nil); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestPublicAPIDiscover(t *testing.T) {
	g := buildSocialGraph(t)
	res := pghive.Discover(g, pghive.DefaultConfig())
	if len(res.Def.Nodes) != 2 {
		t.Fatalf("got %d node types, want 2", len(res.Def.Nodes))
	}
	if len(res.Def.Edges) != 2 {
		t.Fatalf("got %d edge types, want 2", len(res.Def.Edges))
	}
	works := res.Def.EdgeType("WORKS_AT")
	if works == nil {
		t.Fatal("WORKS_AT missing")
	}
	// Each person works at one org; orgs have many employees → the
	// paper's (1, >1) mapping = 0:N.
	if works.Cardinality != pghive.CardZeroN {
		t.Errorf("WORKS_AT cardinality = %v, want 0:N", works.Cardinality)
	}
}

func TestPublicAPISerializers(t *testing.T) {
	g := buildSocialGraph(t)
	res := pghive.Discover(g, pghive.DefaultConfig())
	var pgs, xsd, js, dot bytes.Buffer
	if err := pghive.WritePGSchema(&pgs, res.Def, "Social", pghive.Strict); err != nil {
		t.Fatal(err)
	}
	if err := pghive.WriteXSD(&xsd, res.Def); err != nil {
		t.Fatal(err)
	}
	if err := pghive.WriteSchemaJSON(&js, res.Def); err != nil {
		t.Fatal(err)
	}
	if err := pghive.WriteDOT(&dot, res.Def); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pgs.String(), "STRICT") {
		t.Error("PG-Schema output missing STRICT")
	}
	for name, buf := range map[string]*bytes.Buffer{"xsd": &xsd, "json": &js, "dot": &dot} {
		if buf.Len() == 0 {
			t.Errorf("%s output empty", name)
		}
	}
}

func TestPublicAPIIncremental(t *testing.T) {
	g := buildSocialGraph(t)
	p := pghive.NewPipeline(pghive.DefaultConfig())
	for _, b := range g.SplitRandom(4, 1) {
		p.ProcessBatch(b)
	}
	def := p.Finalize()
	if len(def.Nodes) != 2 {
		t.Errorf("incremental run found %d node types, want 2", len(def.Nodes))
	}
	if len(p.Reports()) != 4 {
		t.Errorf("got %d reports, want 4", len(p.Reports()))
	}
}

func TestPublicAPIGraphIO(t *testing.T) {
	g := buildSocialGraph(t)
	var buf bytes.Buffer
	if err := pghive.WriteJSONL(&buf, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := pghive.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != g.NumNodes() || loaded.NumEdges() != g.NumEdges() {
		t.Error("JSONL round trip changed sizes")
	}

	var nodes, edges bytes.Buffer
	if err := pghive.WriteNodesCSV(&nodes, g); err != nil {
		t.Fatal(err)
	}
	if err := pghive.WriteEdgesCSV(&edges, g); err != nil {
		t.Fatal(err)
	}
	loaded, err = pghive.ReadCSV(&nodes, &edges)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != g.NumNodes() {
		t.Error("CSV round trip changed sizes")
	}
}

func TestPublicAPIMinHash(t *testing.T) {
	g := buildSocialGraph(t)
	cfg := pghive.DefaultConfig()
	cfg.Method = pghive.MethodMinHash
	res := pghive.Discover(g, cfg)
	if len(res.Def.Nodes) != 2 {
		t.Errorf("MinHash found %d node types, want 2", len(res.Def.Nodes))
	}
}

func TestPublicAPIBinaryRoundTrip(t *testing.T) {
	g := buildSocialGraph(t)
	var buf bytes.Buffer
	if err := pghive.WriteGraphBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := pghive.ReadGraphBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != g.NumNodes() || loaded.NumEdges() != g.NumEdges() {
		t.Error("binary round trip changed sizes")
	}
}

func TestPublicAPIQuery(t *testing.T) {
	g := buildSocialGraph(t)
	res, err := pghive.RunQuery(g, "MATCH (p:Person)-[w:WORKS_AT]->(o:Organization) RETURN count(*)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Value.AsInt() != 30 {
		t.Errorf("count = %v, want 30", res.Rows[0][0].Value)
	}
}

func TestPublicAPIValidate(t *testing.T) {
	g := buildSocialGraph(t)
	def := pghive.Discover(g, pghive.DefaultConfig()).Def
	if r := pghive.ValidateGraph(g, def, pghive.Loose); !r.Valid() {
		t.Errorf("self-validation failed: %v", r.Violations)
	}
	bad := pghive.NewGraph()
	bad.AddNode([]string{"Martian"}, nil)
	if r := pghive.ValidateGraph(bad, def, pghive.Strict); r.Valid() {
		t.Error("unknown label should violate")
	}
}

func TestPublicAPICollector(t *testing.T) {
	c := pghive.NewCollector(pghive.NewPipeline(pghive.DefaultConfig()), 8)
	for i := 0; i < 20; i++ {
		c.AddNode(pghive.NodeRecord{ID: pghive.ID(i), Labels: []string{"T"},
			Props: pghive.Properties{"k": pghive.Int(int64(i))}})
	}
	def := c.Finalize()
	if len(def.Nodes) != 1 || def.Nodes[0].Instances != 20 {
		t.Errorf("collector def = %+v", def.Nodes)
	}
}

func TestPublicAPILabelSimilarity(t *testing.T) {
	if pghive.DefaultLabelSimilarity("Colour", "Color") < 0.8 {
		t.Error("default similarity too strict for spelling variants")
	}
	cfg := pghive.DefaultConfig()
	cfg.AlignLabels = true
	g := pghive.NewGraph()
	for i := 0; i < 5; i++ {
		g.AddNode([]string{"Organisation"}, pghive.Properties{"n": pghive.Str("a")})
		g.AddNode([]string{"Organization"}, pghive.Properties{"n": pghive.Str("b")})
	}
	res := pghive.Discover(g, cfg)
	if len(res.Def.Nodes) != 1 {
		t.Errorf("aligned discovery found %d types, want 1", len(res.Def.Nodes))
	}
}

func TestPublicAPISamplingError(t *testing.T) {
	g := buildSocialGraph(t)
	res := pghive.Discover(g, pghive.DefaultConfig())
	for _, ty := range res.Schema.NodeTypes {
		ty.EachProp(func(_ string, stat *pghive.PropStat) {
			if e := pghive.SamplingError(stat); e < 0 || e > 1 {
				t.Errorf("sampling error %v out of range", e)
			}
		})
	}
}

func TestPublicAPIDiscoverStream(t *testing.T) {
	g := buildSocialGraph(t)
	res := pghive.DiscoverStream(pghive.NewSliceSource(g.SplitRandom(3, 1)...), pghive.DefaultConfig())
	if len(res.Def.Nodes) != 2 {
		t.Errorf("stream discovery found %d node types, want 2", len(res.Def.Nodes))
	}
}

func TestPublicAPIValueConstructors(t *testing.T) {
	vals := []pghive.Value{
		pghive.Int(1), pghive.Float(1.5), pghive.Bool(true), pghive.Str("s"),
		pghive.Date(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)),
		pghive.Timestamp(time.Date(2020, 1, 1, 1, 0, 0, 0, time.UTC)),
	}
	kinds := []pghive.Kind{
		pghive.KindInt, pghive.KindFloat, pghive.KindBool, pghive.KindString,
		pghive.KindDate, pghive.KindTimestamp,
	}
	for i, v := range vals {
		if v.Kind() != kinds[i] {
			t.Errorf("value %d kind = %v, want %v", i, v.Kind(), kinds[i])
		}
	}
}
