// Package obs is the pipeline's zero-dependency telemetry layer: typed
// events (stage spans, monotone counters, occupancy histograms) flow from
// the discovery pipeline into a Sink. The layer is strictly execution-only —
// no event ever feeds back into discovery, so instrumented and
// uninstrumented runs produce byte-identical schemas — and the disabled
// path is free: call sites guard through Instr, whose methods reduce to a
// nil check and are allocation-free (pinned by TestInstrDisabledAllocFree
// and BenchmarkInstrDisabled, asserted in CI).
//
// Three sinks ship with the package:
//
//   - Registry aggregates events into snapshot-able metrics, exposed as
//     expvar-style JSON and Prometheus text over HTTP (Handler/Serve) and
//     programmatically via Snapshot.
//   - TraceWriter streams spans as Chrome-trace-format JSON lines loadable
//     in chrome://tracing or Perfetto, one track per pipeline-depth slot so
//     batch overlap is visible.
//   - Multi fans events out to several sinks.
package obs

import "time"

// Stage identifies one pipeline stage of Algorithm 1's batch loop (plus the
// run-level post-processing and the per-batch checkpoint write).
type Stage uint8

// Pipeline stages, in batch-flow order.
const (
	// StageLoad is the time a batch's consumer was blocked fetching it from
	// the source. Under the prefetching engine this measures the stall, not
	// the upstream cost: a fully hidden load shows ~0.
	StageLoad Stage = iota
	// StagePreprocess is label alignment + vectorization (serial, in batch
	// order).
	StagePreprocess
	// StageCluster is LSH clustering of both element kinds.
	StageCluster
	// StageExtract is candidate building + merging into the schema (serial,
	// in batch order).
	StageExtract
	// StagePostprocess is Finalize: constraints, data types, cardinalities.
	StagePostprocess
	// StageCheckpoint is encoding + persisting one per-batch checkpoint.
	StageCheckpoint
	// StageMerge is the cross-shard schema merge of a sharded run: remapping
	// each partial schema's interned IDs into the global table and re-running
	// Algorithm 2 across shard boundaries.
	StageMerge
	// StageValidate is the streaming conformance check of one batch against
	// the current schema epoch, before the batch is merged.
	StageValidate
	// StageEpoch is an epoch boundary: snapshotting the schema, diffing it
	// against the previous epoch, and emitting the drift report.
	StageEpoch
	numStages
)

var stageNames = [numStages]string{
	"load", "preprocess", "cluster", "extract", "postprocess", "checkpoint", "merge",
	"validate", "epoch",
}

// String returns the stage's snake-case metric name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// NumStages is the number of defined stages.
const NumStages = int(numStages)

// Span is one timed execution of a stage. Spans are emitted when the stage
// completes, value-typed so the disabled path never allocates.
type Span struct {
	// Stage is the pipeline stage this span timed.
	Stage Stage
	// Batch is the batch sequence number, or -1 for run-scoped spans
	// (post-processing).
	Batch int
	// Slot is the pipeline-depth slot (Batch mod PipelineDepth) — the trace
	// track, so overlapping batches render on separate rows.
	Slot int
	// Start is when the stage began.
	Start time.Time
	// Duration is the stage's wall-clock time.
	Duration time.Duration
	// Elements is how many elements (nodes + edges; bytes for checkpoint
	// spans) the stage touched.
	Elements int
}

// Counter enumerates the pipeline's monotone counters.
type Counter uint8

// Counters.
const (
	// CtrBatches counts batches extracted into the schema.
	CtrBatches Counter = iota
	// CtrNodes and CtrEdges count processed element records.
	CtrNodes
	CtrEdges
	// CtrNodeClusters and CtrEdgeClusters count LSH clusters formed.
	CtrNodeClusters
	CtrEdgeClusters
	// CtrTypesCreated counts types added to the schema; CtrTypesMerged
	// counts cluster candidates merged into existing types.
	CtrTypesCreated
	CtrTypesMerged
	// CtrRetries counts transient source faults absorbed (by a RetrySource
	// or by the fault-tolerant drain's in-place re-pull).
	CtrRetries
	// CtrRetryAttempts counts delivery attempts consumed by delivered
	// batches (a RetrySource emits its per-batch Attempts here).
	CtrRetryAttempts
	// CtrQuarantined counts poisoned batches skipped.
	CtrQuarantined
	// CtrCheckpoints and CtrCheckpointBytes count persisted checkpoints and
	// their total encoded size.
	CtrCheckpoints
	CtrCheckpointBytes
	// CtrEmbedTokensReused / CtrEmbedTokensTrained count label-set tokens
	// served from the cross-batch embedding cache vs newly trained;
	// CtrEmbedRetrains counts full-corpus retrains (adaptive dim growth).
	CtrEmbedTokensReused
	CtrEmbedTokensTrained
	CtrEmbedRetrains
	// CtrPrefixDotsComputed counts distinct prefix projection-dot sets the
	// factored ELSH kernel computed; CtrPrefixDotHits counts elements hashed
	// by reusing one (beyond the first element per distinct prefix).
	CtrPrefixDotsComputed
	CtrPrefixDotHits
	// CtrRecordSigsComputed counts distinct MinHash record signatures
	// computed; CtrRecordSigHits counts elements served by a memoized one.
	CtrRecordSigsComputed
	CtrRecordSigHits
	// CtrSoakWindows counts invariant windows the soak harness checked;
	// CtrSoakKills counts injected kill/resume cycles; CtrSoakViolations
	// counts invariant violations observed (0 on a healthy run).
	CtrSoakWindows
	CtrSoakKills
	CtrSoakViolations
	// CtrSpilledBatches counts ingest batches that overflowed the in-memory
	// queue onto disk (stream.SpillQueue).
	CtrSpilledBatches
	// Drift violation counters, one per validate.DriftClass: elements whose
	// labels name a type the epoch has never seen (CtrDriftNewType), a new
	// combination of known labels (CtrDriftNewLabelSet), a property value
	// wider than the declared type under the type-priority lattice
	// (CtrDriftWidenedType), a previously-mandatory property now absent
	// (CtrDriftMissingMandatory), an edge breaking a *:1 cardinality
	// (CtrDriftCardinalityBreak), and a property value strictly narrower
	// than its declared type (CtrDriftTypeDowngrade).
	CtrDriftNewType
	CtrDriftNewLabelSet
	CtrDriftWidenedType
	CtrDriftMissingMandatory
	CtrDriftCardinalityBreak
	CtrDriftTypeDowngrade
	// CtrDriftBatches counts validated batches with at least one violation;
	// CtrDriftQuarantined counts batches the quarantine policy withheld from
	// the merge.
	CtrDriftBatches
	CtrDriftQuarantined
	// CtrEpochs counts epoch snapshots taken; CtrEpochChanges counts total
	// schema.Diff changes observed across epoch boundaries.
	CtrEpochs
	CtrEpochChanges
	// Resident schema service read path (internal/serve): CtrServeRequests
	// counts /schema responses served, CtrServeCacheHits the ones answered
	// from an epoch's pre-rendered byte cache, and CtrServeRenders the
	// render-once misses (at most tiers × epochs on the unfiltered path).
	CtrServeRequests
	CtrServeCacheHits
	CtrServeRenders
	numCounters
)

var counterNames = [numCounters]string{
	"batches", "nodes", "edges", "node_clusters", "edge_clusters",
	"types_created", "types_merged", "retries", "retry_attempts",
	"quarantined", "checkpoints", "checkpoint_bytes",
	"embed_tokens_reused", "embed_tokens_trained", "embed_retrains",
	"prefix_dots_computed", "prefix_dot_hits",
	"record_sigs_computed", "record_sig_hits",
	"soak_windows", "soak_kills", "soak_violations",
	"spilled_batches",
	"drift_new_type", "drift_new_label_set", "drift_widened_type",
	"drift_missing_mandatory", "drift_cardinality_break", "drift_type_downgrade",
	"drift_batches", "drift_quarantined",
	"epochs", "epoch_changes",
	"serve_requests", "serve_cache_hits", "serve_renders",
}

// String returns the counter's snake-case metric name.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "unknown"
}

// NumCounters is the number of defined counters.
const NumCounters = int(numCounters)

// Hist enumerates the occupancy histograms.
type Hist uint8

// Histograms.
const (
	// HistNodeOccupancy and HistEdgeOccupancy observe the member count of
	// every LSH bucket (cluster) formed, per kind.
	HistNodeOccupancy Hist = iota
	HistEdgeOccupancy
	// HistDriftBatchViolations observes the violation count of every
	// validated batch that drifted (the per-window drift rate), and
	// HistEpochDiffChanges the schema.Diff change count at every epoch
	// boundary.
	HistDriftBatchViolations
	HistEpochDiffChanges
	// HistServeRenderMicros observes the one-time render cost (µs) of each
	// (epoch, tier) response the schema service materialized — the cache-miss
	// path only, so the distribution is invalidation cost, not read latency.
	HistServeRenderMicros
	numHists
)

var histNames = [numHists]string{
	"lsh_node_bucket_occupancy", "lsh_edge_bucket_occupancy",
	"drift_batch_violations", "epoch_diff_changes",
	"serve_render_micros",
}

// String returns the histogram's snake-case metric name.
func (h Hist) String() string {
	if int(h) < len(histNames) {
		return histNames[h]
	}
	return "unknown"
}

// NumHists is the number of defined histograms.
const NumHists = int(numHists)

// Gauge enumerates point-in-time levels — last-write-wins values, unlike the
// monotone Counters. The memory-bounded evidence layer publishes its budget
// and retained-byte estimates here so an operator can watch a -mem-budget
// run hold its ceiling.
type Gauge uint8

// Gauges.
const (
	// GaugeMemBudgetBytes is the configured pipeline memory budget
	// (Config.MemBudgetBytes; absent when unbounded).
	GaugeMemBudgetBytes Gauge = iota
	// GaugeEvidenceBytes is the schema evidence layer's estimated retained
	// bytes (schema.EvidenceBytes), refreshed after every extraction.
	GaugeEvidenceBytes
	// GaugeSpillMemBytes and GaugeSpillDiskBytes are the ingest spill
	// queue's resident and on-disk encoded bytes.
	GaugeSpillMemBytes
	GaugeSpillDiskBytes
	// Process-level gauges, computed inside Registry.Snapshot (never stored,
	// so the instrument path stays allocation-free): live heap bytes,
	// goroutine count, and whole seconds since the registry was created.
	GaugeProcessHeapBytes
	GaugeProcessGoroutines
	GaugeProcessUptimeSeconds
	// GaugeServeEpoch is the schema service's currently published epoch id;
	// GaugeServeInflightReads the number of /schema requests mid-flight
	// (both updated with lock-free atomics — the read hot path never blocks).
	GaugeServeEpoch
	GaugeServeInflightReads
	numGauges
)

var gaugeNames = [numGauges]string{
	"mem_budget_bytes", "evidence_bytes", "spill_mem_bytes", "spill_disk_bytes",
	"process_heap_bytes", "process_goroutines", "process_uptime_seconds",
	"serve_epoch", "serve_inflight_reads",
}

// String returns the gauge's snake-case metric name.
func (g Gauge) String() string {
	if int(g) < len(gaugeNames) {
		return gaugeNames[g]
	}
	return "unknown"
}

// NumGauges is the number of defined gauges.
const NumGauges = int(numGauges)

// Sink receives telemetry events. Implementations must be safe for
// concurrent use: the overlapped engine emits cluster spans and kernel
// counters from several goroutines at once. A Sink must never block for
// long — it sits on the pipeline's critical path when enabled.
type Sink interface {
	// Span receives one completed stage span.
	Span(s Span)
	// Add increments a monotone counter.
	Add(c Counter, delta uint64)
	// Observe records one histogram observation.
	Observe(h Hist, value uint64)
}

// GaugeSink is optionally implemented by sinks that track gauges. Gauges
// were added after Sink's method set froze, so they ride on a side
// interface: emitters type-assert through Instr.Gauge and sinks that don't
// care never see them.
type GaugeSink interface {
	// Gauge sets a gauge to its latest value (last write wins).
	Gauge(g Gauge, value uint64)
}

// Instr guards instrumentation call sites. The zero value is disabled:
// every method reduces to a nil check, costs sub-nanosecond time and zero
// allocations (BenchmarkInstrDisabled), so instrumented code paths are free
// when no sink is configured.
type Instr struct{ sink Sink }

// NewInstr wraps a sink (nil disables instrumentation).
func NewInstr(s Sink) Instr { return Instr{sink: s} }

// Enabled reports whether events are being recorded. Call sites use it to
// skip work that only exists to build an event (e.g. extra time stamps).
func (in Instr) Enabled() bool { return in.sink != nil }

// Span forwards a completed span to the sink, if any.
func (in Instr) Span(s Span) {
	if in.sink != nil {
		in.sink.Span(s)
	}
}

// Add forwards a counter increment to the sink, if any.
func (in Instr) Add(c Counter, delta uint64) {
	if in.sink != nil {
		in.sink.Add(c, delta)
	}
}

// Observe forwards a histogram observation to the sink, if any.
func (in Instr) Observe(h Hist, value uint64) {
	if in.sink != nil {
		in.sink.Observe(h, value)
	}
}

// Gauge forwards a gauge update to the sink, if it tracks gauges.
func (in Instr) Gauge(g Gauge, value uint64) {
	if gs, ok := in.sink.(GaugeSink); ok {
		gs.Gauge(g, value)
	}
}

// multi fans events out to several sinks.
type multi []Sink

func (m multi) Span(s Span) {
	for _, sk := range m {
		sk.Span(s)
	}
}

func (m multi) Add(c Counter, delta uint64) {
	for _, sk := range m {
		sk.Add(c, delta)
	}
}

func (m multi) Observe(h Hist, value uint64) {
	for _, sk := range m {
		sk.Observe(h, value)
	}
}

// Gauge implements GaugeSink for Multi: members that track gauges get the
// update, the rest never see it.
func (m multi) Gauge(g Gauge, value uint64) {
	for _, sk := range m {
		if gs, ok := sk.(GaugeSink); ok {
			gs.Gauge(g, value)
		}
	}
}

// Multi combines sinks into one, dropping nils: Multi() and Multi(nil)
// return nil (disabled), Multi(s) returns s unwrapped.
func Multi(sinks ...Sink) Sink {
	var out multi
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}

// FindRegistry returns the first *Registry reachable in s — s itself or a
// member of a Multi — or nil. Discover uses it to fill Result.Telemetry.
func FindRegistry(s Sink) *Registry {
	switch v := s.(type) {
	case *Registry:
		return v
	case multi:
		for _, sk := range v {
			if r := FindRegistry(sk); r != nil {
				return r
			}
		}
	}
	return nil
}
