package obs

import (
	"io"
	"net"
	"net/http"
	"strings"
)

// Handler serves the registry over HTTP. GET /metrics (any path, in fact)
// returns the expvar-style JSON snapshot; append ?format=prometheus — or
// send an Accept header preferring text/plain — for the Prometheus text
// exposition format. Every scrape takes a fresh snapshot, so concurrent
// scrapes during a live run never see torn metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if wantPrometheus(req) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = r.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}

func wantPrometheus(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prometheus", "prom", "text":
		return true
	case "json":
		return false
	}
	accept := req.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}

// Serve exposes the registry at /metrics on addr (host:port; port 0 picks a
// free port). It returns the bound address and a closer that stops the
// listener; in-flight scrapes finish on their own.
func Serve(addr string, r *Registry) (string, io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), ln, nil
}
