package obs

import (
	"testing"
	"time"
)

// TestInstrDisabledAllocFree pins the disabled path's contract: with no
// sink, every Instr method is allocation-free. CI additionally asserts the
// benchmark below reports 0 allocs/op.
func TestInstrDisabledAllocFree(t *testing.T) {
	var in Instr
	span := Span{Stage: StageCluster, Batch: 3, Slot: 1, Start: time.Unix(0, 0), Duration: time.Millisecond, Elements: 100}
	allocs := testing.AllocsPerRun(1000, func() {
		in.Span(span)
		in.Add(CtrNodes, 5)
		in.Observe(HistNodeOccupancy, 7)
	})
	if allocs != 0 {
		t.Fatalf("disabled Instr allocated %.1f times per call set, want 0", allocs)
	}
	if in.Enabled() {
		t.Fatal("zero Instr reports Enabled")
	}
}

// TestEnabledInstrAllocFree: emitting into a Registry is also
// allocation-free — the aggregation path never boxes or copies to the heap,
// which is what keeps the <2% enabled-overhead budget realistic.
func TestEnabledInstrAllocFree(t *testing.T) {
	in := NewInstr(NewRegistry())
	span := Span{Stage: StageCluster, Batch: 3, Slot: 1, Start: time.Unix(0, 0), Duration: time.Millisecond, Elements: 100}
	allocs := testing.AllocsPerRun(1000, func() {
		in.Span(span)
		in.Add(CtrNodes, 5)
		in.Observe(HistNodeOccupancy, 7)
	})
	if allocs != 0 {
		t.Fatalf("Registry-backed Instr allocated %.1f times per call set, want 0", allocs)
	}
}

// BenchmarkInstrDisabled is the no-op benchmark the CI allocation guard
// greps: it must report 0 allocs/op (and ~0 ns/op).
func BenchmarkInstrDisabled(b *testing.B) {
	var in Instr
	span := Span{Stage: StageCluster, Batch: 3, Slot: 1, Duration: time.Millisecond, Elements: 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Span(span)
		in.Add(CtrNodes, 5)
		in.Observe(HistNodeOccupancy, 7)
	}
}

// BenchmarkDriftInstrDisabled pins the conformance checker's telemetry
// sites: the per-class drift counters, the drift histograms, and the
// validate/epoch stage spans must all reduce to branch-only no-ops when no
// sink is configured. CI greps this benchmark for 0 allocs/op alongside
// BenchmarkInstrDisabled.
func BenchmarkDriftInstrDisabled(b *testing.B) {
	var in Instr
	vspan := Span{Stage: StageValidate, Batch: 3, Slot: 1, Duration: time.Millisecond, Elements: 40}
	espan := Span{Stage: StageEpoch, Batch: 3, Slot: 1, Duration: time.Millisecond, Elements: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Span(vspan)
		for c := CtrDriftNewType; c <= CtrDriftTypeDowngrade; c++ {
			in.Add(c, 2)
		}
		in.Add(CtrDriftBatches, 1)
		in.Observe(HistDriftBatchViolations, 12)
		in.Span(espan)
		in.Add(CtrEpochs, 1)
		in.Observe(HistEpochDiffChanges, 2)
	}
}

// BenchmarkInstrRegistry measures the enabled aggregation path (one span +
// one counter + one observation per iteration).
func BenchmarkInstrRegistry(b *testing.B) {
	in := NewInstr(NewRegistry())
	span := Span{Stage: StageCluster, Batch: 3, Slot: 1, Duration: time.Millisecond, Elements: 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Span(span)
		in.Add(CtrNodes, 5)
		in.Observe(HistNodeOccupancy, 7)
	}
}

func TestEnumNames(t *testing.T) {
	for c := Counter(0); c < Counter(NumCounters); c++ {
		if c.String() == "" || c.String() == "unknown" {
			t.Errorf("counter %d has no name", c)
		}
	}
	for s := Stage(0); s < Stage(NumStages); s++ {
		if s.String() == "" || s.String() == "unknown" {
			t.Errorf("stage %d has no name", s)
		}
	}
	for h := Hist(0); h < Hist(NumHists); h++ {
		if h.String() == "" || h.String() == "unknown" {
			t.Errorf("hist %d has no name", h)
		}
	}
	if Counter(200).String() != "unknown" || Stage(200).String() != "unknown" || Hist(200).String() != "unknown" {
		t.Error("out-of-range enums must stringify as unknown")
	}
}

func TestMultiAndFindRegistry(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("empty Multi must be nil (disabled)")
	}
	reg := NewRegistry()
	if Multi(nil, reg) != Sink(reg) {
		t.Fatal("single-sink Multi must unwrap")
	}
	tw := NewTraceWriter(discard{})
	m := Multi(tw, reg)
	if FindRegistry(m) != reg {
		t.Fatal("FindRegistry missed the registry inside Multi")
	}
	if FindRegistry(tw) != nil {
		t.Fatal("FindRegistry found a registry in a bare TraceWriter")
	}
	m.Add(CtrBatches, 2)
	m.Span(Span{Stage: StageExtract, Duration: time.Millisecond})
	m.Observe(HistEdgeOccupancy, 3)
	snap := reg.Snapshot()
	if snap.Counter(CtrBatches) != 2 {
		t.Fatalf("Multi did not fan out Add: %d", snap.Counter(CtrBatches))
	}
	if snap.Stage(StageExtract).Count != 1 {
		t.Fatal("Multi did not fan out Span")
	}
	if snap.Hist(HistEdgeOccupancy).Count != 1 {
		t.Fatal("Multi did not fan out Observe")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
