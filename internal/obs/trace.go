package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceWriter is a Sink streaming spans as Chrome-trace-format events, one
// JSON object per line, loadable in chrome://tracing and Perfetto. Every
// span becomes a complete ("ph":"X") event; the event's tid is the span's
// pipeline-depth slot, so overlapping batches render on separate tracks and
// the engine's overlap is visible at a glance. Counter and histogram events
// are ignored — the trace is a timeline, the Registry is the aggregate.
//
// The output is a JSON array whose closing bracket is written by Close;
// the Chrome trace format treats the terminator as optional, so a trace cut
// short by a crash still loads. Timestamps are microseconds relative to the
// first span's start. Field order is fixed (golden-tested), making traces
// diffable across runs.
type TraceWriter struct {
	mu      sync.Mutex
	w       *bufio.Writer
	c       io.Closer // underlying file, when Close should close it
	base    time.Time
	started bool
	named   map[int]bool // pid<<32|tid keys that already carry a thread_name meta event
	procs   map[int]bool // pids that already carry a process_name meta event
	err     error
}

// NewTraceWriter starts a trace stream on w. If w is also an io.Closer,
// Close closes it after flushing.
func NewTraceWriter(w io.Writer) *TraceWriter {
	t := &TraceWriter{w: bufio.NewWriter(w), named: map[int]bool{}, procs: map[int]bool{}}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// Span implements Sink: it appends one complete event (and, first time a
// slot appears, a thread_name metadata event naming its track). Unsharded
// spans live on pid 1.
func (t *TraceWriter) Span(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emit(1, s)
}

// ShardSpan implements ShardObserver: shard i's spans render as their own
// process row (pid i+2 — pid 1 stays reserved for unsharded, run-level
// spans), named once via a process_name metadata event.
func (t *TraceWriter) ShardSpan(shard int, s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emit(shard+2, s)
}

// ShardObserve implements ShardObserver (traces carry no histograms).
func (t *TraceWriter) ShardObserve(int, Hist, uint64) {}

// emit appends one complete event under pid, preceded by one-time
// process_name (pids > 1) and thread_name metadata events for new tracks.
// Callers hold t.mu.
func (t *TraceWriter) emit(pid int, s Span) {
	if t.err != nil {
		return
	}
	if !t.started {
		t.base = s.Start
		_, t.err = t.w.WriteString("[\n")
		if t.err != nil {
			return
		}
		t.started = true
	} else if t.err = t.w.WriteByte(','); t.err == nil {
		t.err = t.w.WriteByte('\n')
	}
	if t.err != nil {
		return
	}
	if pid != 1 && !t.procs[pid] {
		t.procs[pid] = true
		_, t.err = fmt.Fprintf(t.w,
			"{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"shard %d\"}},\n",
			pid, pid-2)
		if t.err != nil {
			return
		}
	}
	track := pid<<32 | s.Slot
	if !t.named[track] {
		t.named[track] = true
		_, t.err = fmt.Fprintf(t.w,
			"{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"slot %d\"}},\n",
			pid, s.Slot, s.Slot)
		if t.err != nil {
			return
		}
	}
	ts := float64(s.Start.Sub(t.base).Nanoseconds()) / 1e3
	dur := float64(s.Duration.Nanoseconds()) / 1e3
	_, t.err = fmt.Fprintf(t.w,
		"{\"name\":%q,\"cat\":\"pipeline\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"batch\":%d,\"elements\":%d}}",
		s.Stage.String(), ts, dur, pid, s.Slot, s.Batch, s.Elements)
}

// Add implements Sink (traces carry no counters).
func (t *TraceWriter) Add(Counter, uint64) {}

// Observe implements Sink (traces carry no histograms).
func (t *TraceWriter) Observe(Hist, uint64) {}

// Close terminates the JSON array, flushes, and closes the underlying
// writer when it is closable. Safe to call once; spans arriving after Close
// are dropped.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		if !t.started {
			_, t.err = t.w.WriteString("[\n")
		}
		if t.err == nil {
			_, t.err = t.w.WriteString("\n]\n")
		}
	}
	if ferr := t.w.Flush(); t.err == nil {
		t.err = ferr
	}
	if t.c != nil {
		if cerr := t.c.Close(); t.err == nil {
			t.err = cerr
		}
		t.c = nil
	}
	err := t.err
	if t.err == nil {
		t.err = errClosed
	}
	return err
}

var errClosed = fmt.Errorf("obs: trace writer closed")
