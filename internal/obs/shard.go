package obs

// Per-shard telemetry: a sharded discovery run wraps each shard pipeline's
// sink in a ShardSink, which forwards events tagged with the shard index to
// sinks that understand shards (ShardObserver) and transparently falls back
// to the plain Sink methods for those that don't. The Registry aggregates
// shard-tagged spans and histograms both globally (run totals stay whole)
// and into per-shard buckets exposed in Snapshot.Shards, /metrics JSON and
// the Prometheus pghive_shard_* series; the TraceWriter renders each shard
// as its own process row, so per-shard stage occupancy is visible at a
// glance in Perfetto.

// ShardObserver is implemented by sinks that track events per shard. Spans
// and histogram observations carry the shard index; counters stay global
// (they are run-monotone totals).
type ShardObserver interface {
	// ShardSpan receives a completed stage span from the given shard.
	ShardSpan(shard int, s Span)
	// ShardObserve records one histogram observation from the given shard.
	ShardObserve(shard int, h Hist, value uint64)
}

// shardSink tags every span and histogram observation with a shard index.
type shardSink struct {
	inner Sink
	shard int
}

// ShardSink wraps a sink so its spans and histogram observations are
// attributed to one shard. A nil inner sink stays nil (disabled
// instrumentation keeps its zero-cost path); sinks that do not implement
// ShardObserver receive the plain untagged events.
func ShardSink(inner Sink, shard int) Sink {
	if inner == nil {
		return nil
	}
	return shardSink{inner: inner, shard: shard}
}

// Span implements Sink.
func (ss shardSink) Span(s Span) {
	if so, ok := ss.inner.(ShardObserver); ok {
		so.ShardSpan(ss.shard, s)
		return
	}
	ss.inner.Span(s)
}

// Add implements Sink (counters are global).
func (ss shardSink) Add(c Counter, delta uint64) { ss.inner.Add(c, delta) }

// Gauge implements GaugeSink (gauges, like counters, stay global — each
// shard's evidence bytes are part of one run-wide level).
func (ss shardSink) Gauge(g Gauge, value uint64) {
	if gs, ok := ss.inner.(GaugeSink); ok {
		gs.Gauge(g, value)
	}
}

// Observe implements Sink.
func (ss shardSink) Observe(h Hist, value uint64) {
	if so, ok := ss.inner.(ShardObserver); ok {
		so.ShardObserve(ss.shard, h, value)
		return
	}
	ss.inner.Observe(h, value)
}

// ShardSpan implements ShardObserver for Multi: each member gets the tagged
// event if it understands shards, the plain one otherwise.
func (m multi) ShardSpan(shard int, s Span) {
	for _, sk := range m {
		if so, ok := sk.(ShardObserver); ok {
			so.ShardSpan(shard, s)
		} else {
			sk.Span(s)
		}
	}
}

// ShardObserve implements ShardObserver for Multi.
func (m multi) ShardObserve(shard int, h Hist, value uint64) {
	for _, sk := range m {
		if so, ok := sk.(ShardObserver); ok {
			so.ShardObserve(shard, h, value)
		} else {
			sk.Observe(h, value)
		}
	}
}
