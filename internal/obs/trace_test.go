package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// traceSpans is a deterministic serial-then-overlapped span sequence: two
// batches on slot 0/1 with overlapping cluster stages, then postprocess.
func traceSpans() []Span {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	at := func(us int64) time.Time { return base.Add(time.Duration(us) * time.Microsecond) }
	return []Span{
		{Stage: StageLoad, Batch: 0, Slot: 0, Start: at(0), Duration: 150 * time.Microsecond, Elements: 1200},
		{Stage: StagePreprocess, Batch: 0, Slot: 0, Start: at(150), Duration: 400 * time.Microsecond, Elements: 1200},
		{Stage: StageLoad, Batch: 1, Slot: 1, Start: at(550), Duration: 10 * time.Microsecond, Elements: 800},
		{Stage: StageCluster, Batch: 0, Slot: 0, Start: at(600), Duration: 2000 * time.Microsecond, Elements: 1200},
		{Stage: StageCluster, Batch: 1, Slot: 1, Start: at(1100), Duration: 1500 * time.Microsecond, Elements: 800},
		{Stage: StageExtract, Batch: 0, Slot: 0, Start: at(2600), Duration: 300 * time.Microsecond, Elements: 1200},
		{Stage: StageExtract, Batch: 1, Slot: 1, Start: at(2900), Duration: 250 * time.Microsecond, Elements: 800},
		{Stage: StagePostprocess, Batch: -1, Slot: 0, Start: at(3200), Duration: 500 * time.Microsecond},
	}
}

const goldenTrace = `[
{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"slot 0"}},
{"name":"load","cat":"pipeline","ph":"X","ts":0.000,"dur":150.000,"pid":1,"tid":0,"args":{"batch":0,"elements":1200}},
{"name":"preprocess","cat":"pipeline","ph":"X","ts":150.000,"dur":400.000,"pid":1,"tid":0,"args":{"batch":0,"elements":1200}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"slot 1"}},
{"name":"load","cat":"pipeline","ph":"X","ts":550.000,"dur":10.000,"pid":1,"tid":1,"args":{"batch":1,"elements":800}},
{"name":"cluster","cat":"pipeline","ph":"X","ts":600.000,"dur":2000.000,"pid":1,"tid":0,"args":{"batch":0,"elements":1200}},
{"name":"cluster","cat":"pipeline","ph":"X","ts":1100.000,"dur":1500.000,"pid":1,"tid":1,"args":{"batch":1,"elements":800}},
{"name":"extract","cat":"pipeline","ph":"X","ts":2600.000,"dur":300.000,"pid":1,"tid":0,"args":{"batch":0,"elements":1200}},
{"name":"extract","cat":"pipeline","ph":"X","ts":2900.000,"dur":250.000,"pid":1,"tid":1,"args":{"batch":1,"elements":800}},
{"name":"postprocess","cat":"pipeline","ph":"X","ts":3200.000,"dur":500.000,"pid":1,"tid":0,"args":{"batch":-1,"elements":0}}
]
`

// TestTraceGolden pins the exact byte output: stable field order, one event
// per line, microsecond timestamps relative to the first span.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	for _, s := range traceSpans() {
		tw.Span(s)
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := buf.String(); got != goldenTrace {
		t.Errorf("trace output diverges from golden\ngot:\n%s\nwant:\n%s", got, goldenTrace)
	}
}

// traceEvent is the decoded shape of one Chrome trace event.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Args struct {
		Batch    int `json:"batch"`
		Elements int `json:"elements"`
	} `json:"args"`
}

// TestTraceValidAndMonotonic: the stream is strict JSON once closed, every
// line (between the brackets) is itself a complete JSON object, and within
// each track (tid) the complete events carry monotonically non-decreasing
// timestamps.
func TestTraceValidAndMonotonic(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	for _, s := range traceSpans() {
		tw.Span(s)
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var events []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("closed trace is not valid JSON: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for _, line := range lines[1 : len(lines)-1] {
		line = strings.TrimSuffix(line, ",")
		if !json.Valid([]byte(line)) {
			t.Errorf("trace line is not standalone JSON: %s", line)
		}
	}

	lastTs := map[int]float64{}
	spans := 0
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		spans++
		if prev, ok := lastTs[e.Tid]; ok && e.Ts < prev {
			t.Errorf("track %d: ts went backwards (%f after %f)", e.Tid, e.Ts, prev)
		}
		lastTs[e.Tid] = e.Ts
	}
	if want := len(traceSpans()); spans != want {
		t.Fatalf("decoded %d complete events, want %d", spans, want)
	}
}

// TestTraceCloseEmpty: a trace with no spans still closes to a valid,
// empty JSON array.
func TestTraceCloseEmpty(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	if err := tw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var events []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v (%q)", err, buf.String())
	}
	if len(events) != 0 {
		t.Fatalf("empty trace decoded %d events", len(events))
	}
}

// TestTraceUnterminatedStillUsable: without Close (a crashed run), the
// stream is the Chrome trace format's optional-terminator form — every
// event line is intact JSON.
func TestTraceUnterminatedStillUsable(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	for _, s := range traceSpans() {
		tw.Span(s)
	}
	tw.mu.Lock()
	if err := tw.w.Flush(); err != nil {
		t.Fatal(err)
	}
	tw.mu.Unlock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "[" {
		t.Fatalf("stream must open with [, got %q", lines[0])
	}
	for _, line := range lines[1:] {
		line = strings.TrimSuffix(line, ",")
		if line == "" {
			continue
		}
		if !json.Valid([]byte(line)) {
			t.Errorf("unterminated stream line is not JSON: %s", line)
		}
	}
}
