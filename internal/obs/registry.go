package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two occupancy buckets: upper bounds
// 1, 2, 4, …, 2^14, plus a final overflow bucket (+Inf).
const histBuckets = 16

// Registry is a Sink aggregating events into snapshot-able metrics.
// Counters are lock-free atomics; span and histogram aggregates take one
// short mutex each, so concurrent emitters and scrapers never tear a read
// (TestMetricsScrapeDuringDiscover exercises this under -race).
type Registry struct {
	start    time.Time
	counters [numCounters]atomic.Uint64
	gauges   [numGauges]atomic.Uint64
	stages   [numStages]stageAgg
	hists    [numHists]histAgg

	// shards holds per-shard aggregates, created lazily when shard-tagged
	// events arrive (ShardSpan/ShardObserve); unsharded runs never touch it.
	shardMu sync.Mutex
	shards  map[int]*shardAgg
}

// shardAgg aggregates one shard's spans and histograms.
type shardAgg struct {
	stages [numStages]stageAgg
	hists  [numHists]histAgg
}

type stageAgg struct {
	mu       sync.Mutex
	count    uint64
	total    time.Duration
	min, max time.Duration
	elements uint64
}

type histAgg struct {
	mu      sync.Mutex
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// NewRegistry returns an empty registry; its uptime clock starts now.
func NewRegistry() *Registry {
	return &Registry{start: time.Now()}
}

// Span implements Sink.
func (r *Registry) Span(s Span) {
	if s.Stage >= numStages {
		return
	}
	r.stages[s.Stage].observe(s)
}

// observe folds one span into the aggregate.
func (a *stageAgg) observe(s Span) {
	a.mu.Lock()
	if a.count == 0 || s.Duration < a.min {
		a.min = s.Duration
	}
	if s.Duration > a.max {
		a.max = s.Duration
	}
	a.count++
	a.total += s.Duration
	if s.Elements > 0 {
		a.elements += uint64(s.Elements)
	}
	a.mu.Unlock()
}

// shard returns (lazily creating) the aggregate bucket for one shard.
func (r *Registry) shard(shard int) *shardAgg {
	r.shardMu.Lock()
	defer r.shardMu.Unlock()
	if r.shards == nil {
		r.shards = map[int]*shardAgg{}
	}
	a, ok := r.shards[shard]
	if !ok {
		a = &shardAgg{}
		r.shards[shard] = a
	}
	return a
}

// ShardSpan implements ShardObserver: the span counts toward the run totals
// exactly as an untagged span would, plus the shard's own bucket.
func (r *Registry) ShardSpan(shard int, s Span) {
	if s.Stage >= numStages {
		return
	}
	r.stages[s.Stage].observe(s)
	r.shard(shard).stages[s.Stage].observe(s)
}

// ShardObserve implements ShardObserver.
func (r *Registry) ShardObserve(shard int, h Hist, value uint64) {
	if h >= numHists {
		return
	}
	r.hists[h].observe(value)
	r.shard(shard).hists[h].observe(value)
}

// Add implements Sink.
func (r *Registry) Add(c Counter, delta uint64) {
	if c < numCounters {
		r.counters[c].Add(delta)
	}
}

// Gauge implements GaugeSink (last write wins).
func (r *Registry) Gauge(g Gauge, value uint64) {
	if g < numGauges {
		r.gauges[g].Store(value)
	}
}

// Observe implements Sink.
func (r *Registry) Observe(h Hist, value uint64) {
	if h >= numHists {
		return
	}
	r.hists[h].observe(value)
}

// observe folds one observation into the histogram aggregate.
func (a *histAgg) observe(value uint64) {
	// Bucket index = ⌈log2(value)⌉ clamped: value 1 → bucket 0 (le 1),
	// 2 → 1 (le 2), 3..4 → 2 (le 4), …, > 2^14 → overflow.
	idx := 0
	if value > 1 {
		idx = bits.Len64(value - 1)
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	a.mu.Lock()
	a.buckets[idx]++
	a.count++
	a.sum += value
	if value > a.max {
		a.max = value
	}
	a.mu.Unlock()
}

// StageSnapshot aggregates one stage's spans.
type StageSnapshot struct {
	// Count is how many spans completed.
	Count uint64 `json:"count"`
	// TotalNs, MinNs and MaxNs aggregate span durations in nanoseconds.
	TotalNs int64 `json:"total_ns"`
	MinNs   int64 `json:"min_ns"`
	MaxNs   int64 `json:"max_ns"`
	// Elements is the total element count the stage touched.
	Elements uint64 `json:"elements"`
}

// Mean returns the average span duration.
func (s StageSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(uint64(s.TotalNs) / s.Count)
}

// BucketCount is one histogram bucket: observations ≤ Le (Le 0 marks the
// overflow bucket, rendered as +Inf).
type BucketCount struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistSnapshot aggregates one histogram.
type HistSnapshot struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Max   uint64 `json:"max"`
	// Buckets are the non-empty power-of-two buckets in ascending order.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the average observed value.
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a consistent point-in-time view of the registry, keyed by
// metric name (the enum String() values). It marshals to stable JSON
// (encoding/json sorts map keys).
type Snapshot struct {
	// UptimeNs is the time since the registry was created.
	UptimeNs int64 `json:"uptime_ns"`
	// Counters holds every non-zero monotone counter.
	Counters map[string]uint64 `json:"counters"`
	// Gauges holds every non-zero point-in-time level (latest value).
	Gauges map[string]uint64 `json:"gauges,omitempty"`
	// Stages holds per-stage span aggregates for stages that ran.
	Stages map[string]StageSnapshot `json:"stages"`
	// Hists holds the occupancy histograms that received observations.
	Hists map[string]HistSnapshot `json:"hists"`
	// Shards holds per-shard stage/histogram aggregates keyed by the shard
	// index ("0", "1", …); present only for sharded runs (events tagged via
	// ShardSink). Shard events also count toward Stages and Hists, so the
	// run totals stay whole.
	Shards map[string]ShardSnapshot `json:"shards,omitempty"`
}

// ShardSnapshot is one shard's aggregate view.
type ShardSnapshot struct {
	Stages map[string]StageSnapshot `json:"stages"`
	Hists  map[string]HistSnapshot  `json:"hists,omitempty"`
}

// Counter returns a counter's value by enum (0 when absent).
func (s *Snapshot) Counter(c Counter) uint64 { return s.Counters[c.String()] }

// Gauge returns a gauge's latest value by enum (0 when absent).
func (s *Snapshot) Gauge(g Gauge) uint64 { return s.Gauges[g.String()] }

// Stage returns a stage's aggregate by enum.
func (s *Snapshot) Stage(st Stage) StageSnapshot { return s.Stages[st.String()] }

// Hist returns a histogram by enum.
func (s *Snapshot) Hist(h Hist) HistSnapshot { return s.Hists[h.String()] }

// Snapshot captures the registry's current state. Each aggregate is read
// under its own lock, so no individual metric is ever torn; the snapshot as
// a whole is not a cross-metric atomic cut (scrapes race batch completion
// by design).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		UptimeNs: time.Since(r.start).Nanoseconds(),
		Counters: make(map[string]uint64),
		Stages:   make(map[string]StageSnapshot),
		Hists:    make(map[string]HistSnapshot),
	}
	for c := Counter(0); c < numCounters; c++ {
		if v := r.counters[c].Load(); v > 0 {
			s.Counters[c.String()] = v
		}
	}
	for g := Gauge(0); g < numGauges; g++ {
		if v := r.gauges[g].Load(); v > 0 {
			if s.Gauges == nil {
				s.Gauges = make(map[string]uint64)
			}
			s.Gauges[g.String()] = v
		}
	}
	// Process-level gauges are computed at scrape time, not stored, so the
	// emit path never touches them and stays allocation-free when disabled.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if s.Gauges == nil {
		s.Gauges = make(map[string]uint64)
	}
	s.Gauges[GaugeProcessHeapBytes.String()] = ms.HeapAlloc
	s.Gauges[GaugeProcessGoroutines.String()] = uint64(runtime.NumGoroutine())
	s.Gauges[GaugeProcessUptimeSeconds.String()] = uint64(time.Since(r.start) / time.Second)
	snapStages(&r.stages, s.Stages)
	snapHists(&r.hists, s.Hists)
	r.shardMu.Lock()
	if len(r.shards) > 0 {
		s.Shards = make(map[string]ShardSnapshot, len(r.shards))
		for shard, a := range r.shards {
			ss := ShardSnapshot{Stages: map[string]StageSnapshot{}, Hists: map[string]HistSnapshot{}}
			snapStages(&a.stages, ss.Stages)
			snapHists(&a.hists, ss.Hists)
			s.Shards[strconv.Itoa(shard)] = ss
		}
	}
	r.shardMu.Unlock()
	return s
}

// snapStages reads every active stage aggregate (under its lock) into out.
func snapStages(stages *[numStages]stageAgg, out map[string]StageSnapshot) {
	for st := Stage(0); st < numStages; st++ {
		a := &stages[st]
		a.mu.Lock()
		if a.count > 0 {
			out[st.String()] = StageSnapshot{
				Count:    a.count,
				TotalNs:  a.total.Nanoseconds(),
				MinNs:    a.min.Nanoseconds(),
				MaxNs:    a.max.Nanoseconds(),
				Elements: a.elements,
			}
		}
		a.mu.Unlock()
	}
}

// snapHists reads every active histogram aggregate (under its lock) into
// out.
func snapHists(hists *[numHists]histAgg, out map[string]HistSnapshot) {
	for h := Hist(0); h < numHists; h++ {
		a := &hists[h]
		a.mu.Lock()
		if a.count > 0 {
			hs := HistSnapshot{Count: a.count, Sum: a.sum, Max: a.max}
			for i, n := range a.buckets {
				if n == 0 {
					continue
				}
				le := uint64(1) << i
				if i == histBuckets-1 {
					le = 0 // overflow bucket: +Inf
				}
				hs.Buckets = append(hs.Buckets, BucketCount{Le: le, Count: n})
			}
			out[h.String()] = hs
		}
		a.mu.Unlock()
	}
}

// WriteJSON renders a snapshot as indented, stable-order JSON — the
// expvar-style /metrics payload.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (metric names prefixed pghive_, durations in seconds).
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# TYPE pghive_uptime_seconds gauge\npghive_uptime_seconds %g\n",
		float64(s.UptimeNs)/1e9)

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p("# TYPE pghive_%s_total counter\npghive_%s_total %d\n", name, name, s.Counters[name])
	}

	gnames := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		p("# TYPE pghive_%s gauge\npghive_%s %d\n", name, name, s.Gauges[name])
	}

	if len(s.Stages) > 0 {
		p("# TYPE pghive_stage_seconds_total counter\n")
		eachStage(s, func(name string, st StageSnapshot) {
			p("pghive_stage_seconds_total{stage=%q} %g\n", name, float64(st.TotalNs)/1e9)
		})
		p("# TYPE pghive_stage_spans_total counter\n")
		eachStage(s, func(name string, st StageSnapshot) {
			p("pghive_stage_spans_total{stage=%q} %d\n", name, st.Count)
		})
		p("# TYPE pghive_stage_elements_total counter\n")
		eachStage(s, func(name string, st StageSnapshot) {
			p("pghive_stage_elements_total{stage=%q} %d\n", name, st.Elements)
		})
	}

	if len(s.Shards) > 0 {
		p("# TYPE pghive_shard_stage_seconds_total counter\n")
		eachShard(s, func(shard string, ss ShardSnapshot) {
			eachStageOf(ss.Stages, func(name string, st StageSnapshot) {
				p("pghive_shard_stage_seconds_total{shard=%q,stage=%q} %g\n", shard, name, float64(st.TotalNs)/1e9)
			})
		})
		p("# TYPE pghive_shard_stage_spans_total counter\n")
		eachShard(s, func(shard string, ss ShardSnapshot) {
			eachStageOf(ss.Stages, func(name string, st StageSnapshot) {
				p("pghive_shard_stage_spans_total{shard=%q,stage=%q} %d\n", shard, name, st.Count)
			})
		})
		p("# TYPE pghive_shard_stage_elements_total counter\n")
		eachShard(s, func(shard string, ss ShardSnapshot) {
			eachStageOf(ss.Stages, func(name string, st StageSnapshot) {
				p("pghive_shard_stage_elements_total{shard=%q,stage=%q} %d\n", shard, name, st.Elements)
			})
		})
	}

	hnames := make([]string, 0, len(s.Hists))
	for name := range s.Hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Hists[name]
		p("# TYPE pghive_%s histogram\n", name)
		cum := uint64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if b.Le == 0 {
				continue // folded into +Inf below
			}
			p("pghive_%s_bucket{le=\"%d\"} %d\n", name, b.Le, cum)
		}
		p("pghive_%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		p("pghive_%s_sum %d\npghive_%s_count %d\n", name, h.Sum, name, h.Count)
	}
	return err
}

func eachStage(s *Snapshot, f func(name string, st StageSnapshot)) {
	eachStageOf(s.Stages, f)
}

func eachStageOf(stages map[string]StageSnapshot, f func(name string, st StageSnapshot)) {
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f(name, stages[name])
	}
}

// eachShard visits shards in ascending numeric index order.
func eachShard(s *Snapshot, f func(shard string, ss ShardSnapshot)) {
	idx := make([]int, 0, len(s.Shards))
	for k := range s.Shards {
		if i, err := strconv.Atoi(k); err == nil {
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	for _, i := range idx {
		k := strconv.Itoa(i)
		f(k, s.Shards[k])
	}
}

// WriteText renders a snapshot as a short human-readable summary — the
// -telemetry end-of-run report.
func (s *Snapshot) WriteText(w io.Writer) {
	fmt.Fprintf(w, "telemetry (uptime %v):\n", time.Duration(s.UptimeNs).Round(time.Millisecond))
	eachStage(s, func(name string, st StageSnapshot) {
		fmt.Fprintf(w, "  stage %-12s %4d spans  total %-12v mean %-10v max %v\n",
			name, st.Count, time.Duration(st.TotalNs).Round(time.Microsecond),
			st.Mean().Round(time.Microsecond), time.Duration(st.MaxNs).Round(time.Microsecond))
	})
	eachShard(s, func(shard string, ss ShardSnapshot) {
		eachStageOf(ss.Stages, func(name string, st StageSnapshot) {
			fmt.Fprintf(w, "  shard %s %-12s %4d spans  total %-12v mean %v\n",
				shard, name, st.Count, time.Duration(st.TotalNs).Round(time.Microsecond),
				st.Mean().Round(time.Microsecond))
		})
	})
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %-26s %d\n", name, s.Counters[name])
	}
	gnames := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		fmt.Fprintf(w, "  %-26s %d (gauge)\n", name, s.Gauges[name])
	}
	for _, h := range []Hist{HistNodeOccupancy, HistEdgeOccupancy, HistDriftBatchViolations, HistEpochDiffChanges} {
		if hs, ok := s.Hists[h.String()]; ok {
			fmt.Fprintf(w, "  %-26s %d buckets, mean %.1f, max %d\n",
				h.String(), hs.Count, hs.Mean(), hs.Max)
		}
	}
}
