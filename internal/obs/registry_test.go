package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryAggregates(t *testing.T) {
	r := NewRegistry()
	r.Add(CtrNodes, 100)
	r.Add(CtrNodes, 50)
	r.Add(CtrRetries, 3)
	r.Span(Span{Stage: StageCluster, Duration: 2 * time.Millisecond, Elements: 10})
	r.Span(Span{Stage: StageCluster, Duration: 4 * time.Millisecond, Elements: 20})
	r.Span(Span{Stage: StageExtract, Duration: time.Millisecond})
	for _, v := range []uint64{1, 1, 2, 3, 5, 100000} {
		r.Observe(HistNodeOccupancy, v)
	}

	s := r.Snapshot()
	if got := s.Counter(CtrNodes); got != 150 {
		t.Errorf("nodes = %d, want 150", got)
	}
	if got := s.Counter(CtrRetries); got != 3 {
		t.Errorf("retries = %d, want 3", got)
	}
	if _, ok := s.Counters[CtrQuarantined.String()]; ok {
		t.Error("zero counters must be omitted from the snapshot")
	}
	cl := s.Stage(StageCluster)
	if cl.Count != 2 || cl.TotalNs != (6*time.Millisecond).Nanoseconds() ||
		cl.MinNs != (2*time.Millisecond).Nanoseconds() || cl.MaxNs != (4*time.Millisecond).Nanoseconds() ||
		cl.Elements != 30 {
		t.Errorf("cluster stage aggregate wrong: %+v", cl)
	}
	if cl.Mean() != 3*time.Millisecond {
		t.Errorf("mean = %v, want 3ms", cl.Mean())
	}
	h := s.Hist(HistNodeOccupancy)
	if h.Count != 6 || h.Sum != 100012 || h.Max != 100000 {
		t.Errorf("hist aggregate wrong: %+v", h)
	}
	// 1,1 → le 1; 2 → le 2; 3 → le 4; 5 → le 8; 100000 → overflow (le 0).
	want := []BucketCount{{1, 2}, {2, 1}, {4, 1}, {8, 1}, {0, 1}}
	if len(h.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", h.Buckets, want)
	}
	for i, b := range want {
		if h.Buckets[i] != b {
			t.Errorf("bucket %d = %+v, want %+v", i, h.Buckets[i], b)
		}
	}
}

func TestRegistryJSONAndPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Add(CtrBatches, 8)
	r.Add(CtrCheckpointBytes, 4096)
	r.Span(Span{Stage: StagePreprocess, Duration: 3 * time.Millisecond, Elements: 500})
	r.Observe(HistEdgeOccupancy, 4)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if snap.Counters["batches"] != 8 || snap.Counters["checkpoint_bytes"] != 4096 {
		t.Errorf("JSON counters wrong: %+v", snap.Counters)
	}
	if snap.Stages["preprocess"].Elements != 500 {
		t.Errorf("JSON stage wrong: %+v", snap.Stages)
	}

	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE pghive_batches_total counter",
		"pghive_batches_total 8",
		"pghive_checkpoint_bytes_total 4096",
		`pghive_stage_seconds_total{stage="preprocess"} 0.003`,
		`pghive_stage_spans_total{stage="preprocess"} 1`,
		"# TYPE pghive_lsh_edge_bucket_occupancy histogram",
		`pghive_lsh_edge_bucket_occupancy_bucket{le="4"} 1`,
		`pghive_lsh_edge_bucket_occupancy_bucket{le="+Inf"} 1`,
		"pghive_lsh_edge_bucket_occupancy_sum 4",
		"pghive_lsh_edge_bucket_occupancy_count 1",
		"pghive_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, text)
		}
	}
}

func TestHandlerContentNegotiation(t *testing.T) {
	r := NewRegistry()
	r.Add(CtrBatches, 1)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(url, accept string) (string, string) {
		req := httptest.NewRequest("GET", url, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		rec := httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, req)
		return rec.Header().Get("Content-Type"), rec.Body.String()
	}

	ct, body := get("/metrics", "")
	if !strings.Contains(ct, "application/json") {
		t.Errorf("default content type = %q, want JSON", ct)
	}
	if !json.Valid([]byte(body)) {
		t.Errorf("default body is not JSON: %s", body)
	}

	ct, body = get("/metrics?format=prometheus", "")
	if !strings.Contains(ct, "text/plain") {
		t.Errorf("prometheus content type = %q", ct)
	}
	if !strings.Contains(body, "pghive_batches_total 1") {
		t.Errorf("prometheus body missing counter:\n%s", body)
	}

	ct, _ = get("/metrics", "text/plain")
	if !strings.Contains(ct, "text/plain") {
		t.Errorf("Accept: text/plain ignored, content type = %q", ct)
	}
}

// TestRegistryConcurrentScrape hammers the registry with writers and
// scrapers at once; under -race this pins the torn-read-free contract at
// the aggregation layer (the pipeline-level scrape test lives in core).
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				r.Add(CtrNodes, 1)
				r.Span(Span{Stage: Stage(i % NumStages), Duration: time.Duration(i), Elements: i})
				r.Observe(HistNodeOccupancy, uint64(i%1000+1))
				select {
				case <-done:
					return
				default:
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatal("scrape produced invalid JSON")
		}
		buf.Reset()
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	var buf bytes.Buffer
	(r.Snapshot()).WriteText(&buf)
	if !strings.Contains(buf.String(), "nodes") {
		t.Errorf("text summary missing counters:\n%s", buf.String())
	}
}
