package pg

// Canonical wire codec for whole batches. The byte layout is exactly the
// per-batch encoding datagen.HashStream has always fed its SHA-256 — node
// and edge counts, then each record with sorted property keys — so the
// stream-hash goldens double as a regression suite for this codec. The
// spill-to-disk ingest queue (stream.SpillQueue) persists overflow batches
// in this format.

// Codec bounds for untrusted batch headers: a batch larger than this is
// rejected rather than pre-allocated.
const maxBatchElements = 1 << 28

// WriteBatch encodes one batch: node count, edge count, then every node
// (ID, labels, sorted props) and every edge (ID, labels, endpoints,
// endpoint labels, sorted props).
func WriteBatch(w *WireWriter, b *Batch) error {
	w.Uvarint(uint64(len(b.Nodes)))
	w.Uvarint(uint64(len(b.Edges)))
	for i := range b.Nodes {
		n := &b.Nodes[i]
		w.Varint(int64(n.ID))
		writeWireLabels(w, n.Labels)
		if err := writeWireProps(w, n.Props); err != nil {
			return err
		}
	}
	for i := range b.Edges {
		e := &b.Edges[i]
		w.Varint(int64(e.ID))
		writeWireLabels(w, e.Labels)
		w.Varint(int64(e.Src))
		w.Varint(int64(e.Dst))
		writeWireLabels(w, e.SrcLabels)
		writeWireLabels(w, e.DstLabels)
		if err := writeWireProps(w, e.Props); err != nil {
			return err
		}
	}
	return nil
}

// ReadBatch decodes one batch written by WriteBatch.
func ReadBatch(r *WireReader) (*Batch, error) {
	nodes, err := r.Uvarint(maxBatchElements)
	if err != nil {
		return nil, err
	}
	edges, err := r.Uvarint(maxBatchElements)
	if err != nil {
		return nil, err
	}
	b := &Batch{}
	if nodes > 0 {
		b.Nodes = make([]NodeRecord, nodes)
	}
	if edges > 0 {
		b.Edges = make([]EdgeRecord, edges)
	}
	for i := range b.Nodes {
		n := &b.Nodes[i]
		id, err := r.Varint()
		if err != nil {
			return nil, err
		}
		n.ID = ID(id)
		if n.Labels, err = readWireLabels(r); err != nil {
			return nil, err
		}
		if n.Props, err = readWireProps(r); err != nil {
			return nil, err
		}
	}
	for i := range b.Edges {
		e := &b.Edges[i]
		id, err := r.Varint()
		if err != nil {
			return nil, err
		}
		e.ID = ID(id)
		if e.Labels, err = readWireLabels(r); err != nil {
			return nil, err
		}
		src, err := r.Varint()
		if err != nil {
			return nil, err
		}
		dst, err := r.Varint()
		if err != nil {
			return nil, err
		}
		e.Src, e.Dst = ID(src), ID(dst)
		if e.SrcLabels, err = readWireLabels(r); err != nil {
			return nil, err
		}
		if e.DstLabels, err = readWireLabels(r); err != nil {
			return nil, err
		}
		if e.Props, err = readWireProps(r); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func writeWireLabels(w *WireWriter, labels []string) {
	w.Uvarint(uint64(len(labels)))
	for _, l := range labels {
		w.String(l)
	}
}

func readWireLabels(r *WireReader) ([]string, error) {
	n, err := r.Uvarint(maxBatchElements)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	labels := make([]string, n)
	for i := range labels {
		if labels[i], err = r.InternedString(); err != nil {
			return nil, err
		}
	}
	return labels, nil
}

func writeWireProps(w *WireWriter, props Properties) error {
	keys := SortedPropKeys(props)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.String(k)
		if err := w.Value(props[k]); err != nil {
			return err
		}
	}
	return nil
}

func readWireProps(r *WireReader) (Properties, error) {
	n, err := r.Uvarint(maxBatchElements)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	props := make(Properties, n)
	for i := uint64(0); i < n; i++ {
		k, err := r.InternedString()
		if err != nil {
			return nil, err
		}
		v, err := r.Value()
		if err != nil {
			return nil, err
		}
		props[k] = v
	}
	return props, nil
}
