package pg

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzParseValue: arbitrary text must parse without panicking and the
// result must render back to text losslessly enough to re-parse to the
// same kind.
func FuzzParseValue(f *testing.F) {
	for _, s := range []string{"", "42", "-3.5", "true", "2024-01-01", "19/12/1999", "2024-01-31T10:30:00Z", "plain", "1e309"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		v := ParseValue(input)
		rendered := v.String()
		again := ParseValue(rendered)
		if v.Kind() != KindString && v.Kind() != KindNull && again.Kind() != v.Kind() {
			// Permitted narrowings: DOUBLE -> INT for integral floats
			// ("2.0" renders as "2"); NULL renders as the text "null".
			if !(v.Kind() == KindFloat && again.Kind() == KindInt) {
				t.Fatalf("kind unstable: %q -> %v -> %q -> %v", input, v.Kind(), rendered, again.Kind())
			}
		}
	})
}

// FuzzReadJSONL: arbitrary bytes must never panic the graph loader.
func FuzzReadJSONL(f *testing.F) {
	var buf bytes.Buffer
	g := NewGraph()
	n := g.AddNode([]string{"A"}, Properties{"k": Int(1)})
	m := g.AddNode(nil, nil)
	if _, err := g.AddEdge([]string{"R"}, n, m, nil); err != nil {
		f.Fatal(err)
	}
	if err := WriteJSONL(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"type":"node","id":1}`)
	f.Add(`{"type":"edge","id":1,"src":0,"dst":0}`)
	f.Add("{}")
	// Truncation and malformation crashers from the fault-injection work:
	// streams cut mid-object, mistyped fields, duplicate IDs, nested noise.
	f.Add("{\"type\":\"node\",\"id\":1}\n{\"type\":\"no")
	f.Add(`{"type":"node","id":"two"}`)
	f.Add("{\"type\":\"node\",\"id\":1}\n{\"type\":\"node\",\"id\":1}")
	f.Add(`{"type":"node","id":2,"props":{"k":"v","k2":""}}`)
	f.Add(`{"type":"edge","id":9,"src":1,"dst":1,"labels":[]}`)
	f.Add("\xff\xfe{\"type\":\"node\"}")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadJSONL(strings.NewReader(input))
		if err != nil {
			// Failures must be typed ParseErrors with a positive line.
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("ReadJSONL error %v (%T) is not a *ParseError", err, err)
			}
			if pe.Line < 1 {
				t.Fatalf("ParseError.Line = %d, want >= 1", pe.Line)
			}
			return
		}
		// A successfully loaded graph must round-trip.
		var out bytes.Buffer
		if err := WriteJSONL(&out, g); err != nil {
			t.Fatalf("loaded graph fails to serialize: %v", err)
		}
	})
}

// FuzzReadCSV: arbitrary node CSVs must never panic the loader.
func FuzzReadCSV(f *testing.F) {
	f.Add("_id,_labels,name\n1,Person,Ann\n")
	f.Add("_id,_labels\n")
	f.Add("not,a,header\n1,2,3\n")
	// Truncation and malformation crashers: short rows, unbalanced quotes,
	// duplicate IDs, streams cut mid-row.
	f.Add("_id,_labels,name\n1,Person,Ann\n2,Person\n")
	f.Add("_id,_labels\n1,\"A\n")
	f.Add("_id,_labels\n1,A\n1,B\n")
	f.Add("_id,_labels,a,b\n1,A,x")
	f.Add("_id,_labels\nxyz,A\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadCSV(strings.NewReader(input), nil)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("ReadCSV error %v (%T) is not a *ParseError", err, err)
			}
			if pe.Line < 1 {
				t.Fatalf("ParseError.Line = %d, want >= 1", pe.Line)
			}
			return
		}
		g.ComputeStats()
	})
}
