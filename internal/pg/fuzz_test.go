package pg

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseValue: arbitrary text must parse without panicking and the
// result must render back to text losslessly enough to re-parse to the
// same kind.
func FuzzParseValue(f *testing.F) {
	for _, s := range []string{"", "42", "-3.5", "true", "2024-01-01", "19/12/1999", "2024-01-31T10:30:00Z", "plain", "1e309"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		v := ParseValue(input)
		rendered := v.String()
		again := ParseValue(rendered)
		if v.Kind() != KindString && v.Kind() != KindNull && again.Kind() != v.Kind() {
			// Permitted narrowings: DOUBLE -> INT for integral floats
			// ("2.0" renders as "2"); NULL renders as the text "null".
			if !(v.Kind() == KindFloat && again.Kind() == KindInt) {
				t.Fatalf("kind unstable: %q -> %v -> %q -> %v", input, v.Kind(), rendered, again.Kind())
			}
		}
	})
}

// FuzzReadJSONL: arbitrary bytes must never panic the graph loader.
func FuzzReadJSONL(f *testing.F) {
	var buf bytes.Buffer
	g := NewGraph()
	n := g.AddNode([]string{"A"}, Properties{"k": Int(1)})
	m := g.AddNode(nil, nil)
	if _, err := g.AddEdge([]string{"R"}, n, m, nil); err != nil {
		f.Fatal(err)
	}
	if err := WriteJSONL(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"type":"node","id":1}`)
	f.Add(`{"type":"edge","id":1,"src":0,"dst":0}`)
	f.Add("{}")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadJSONL(strings.NewReader(input))
		if err != nil {
			return
		}
		// A successfully loaded graph must round-trip.
		var out bytes.Buffer
		if err := WriteJSONL(&out, g); err != nil {
			t.Fatalf("loaded graph fails to serialize: %v", err)
		}
	})
}

// FuzzReadCSV: arbitrary node CSVs must never panic the loader.
func FuzzReadCSV(f *testing.F) {
	f.Add("_id,_labels,name\n1,Person,Ann\n")
	f.Add("_id,_labels\n")
	f.Add("not,a,header\n1,2,3\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadCSV(strings.NewReader(input), nil)
		if err != nil {
			return
		}
		g.ComputeStats()
	})
}
