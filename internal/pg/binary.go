package pg

import (
	"fmt"
	"io"
)

// Binary snapshot format: a compact length-prefixed encoding that loads
// several times faster than JSONL for large graphs (property keys and
// labels are interned in a string table; values carry their kind, so no
// re-inference happens on load).
//
// Layout: magic, string table (varint count, then varint-length strings),
// node count + nodes, edge count + edges. Nodes are (id, label refs, props);
// edges add src/dst. Property values are (kind byte, payload). The low-level
// primitives live in wire.go and are shared with the pipeline checkpoint
// format.

const binaryMagic = "PGHV1\n"

// WriteBinary writes the graph in the binary snapshot format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := NewWireWriter(w)
	bw.Raw([]byte(binaryMagic))

	// Build the string table: all labels and property keys.
	table := map[string]uint64{}
	var strings []string
	intern := func(s string) uint64 {
		if idx, ok := table[s]; ok {
			return idx
		}
		idx := uint64(len(strings))
		table[s] = idx
		strings = append(strings, s)
		return idx
	}
	g.Nodes(func(n *Node) bool {
		for _, l := range n.Labels {
			intern(l)
		}
		for k := range n.Props {
			intern(k)
		}
		return true
	})
	g.Edges(func(e *Edge) bool {
		for _, l := range e.Labels {
			intern(l)
		}
		for k := range e.Props {
			intern(k)
		}
		return true
	})

	bw.Uvarint(uint64(len(strings)))
	for _, s := range strings {
		bw.String(s)
	}

	bw.Uvarint(uint64(g.NumNodes()))
	var err error
	g.Nodes(func(n *Node) bool {
		err = writeElement(bw, table, int64(n.ID), n.Labels, n.Props, nil)
		return err == nil
	})
	if err != nil {
		return err
	}
	bw.Uvarint(uint64(g.NumEdges()))
	g.Edges(func(e *Edge) bool {
		endpoints := []int64{int64(e.Src), int64(e.Dst)}
		err = writeElement(bw, table, int64(e.ID), e.Labels, e.Props, endpoints)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

func writeElement(bw *WireWriter, table map[string]uint64, id int64, labels []string, props Properties, endpoints []int64) error {
	bw.Varint(id)
	for _, ep := range endpoints {
		bw.Varint(ep)
	}
	bw.Uvarint(uint64(len(labels)))
	for _, l := range labels {
		bw.Uvarint(table[l])
	}
	keys := SortedPropKeys(props)
	bw.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		bw.Uvarint(table[k])
		if err := bw.Value(props[k]); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary loads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := NewWireReader(r)
	if err := br.Expect(binaryMagic); err != nil {
		return nil, fmt.Errorf("pg: not a binary graph snapshot: %w", err)
	}

	tableLen, err := br.Uvarint(1 << 31)
	if err != nil {
		return nil, fmt.Errorf("pg: string table length: %w", err)
	}
	// Grow by appending: the claimed length is untrusted, so preallocation
	// is capped (a corrupt header must not allocate gigabytes up front).
	strings := make([]string, 0, min(tableLen, 4096))
	for i := uint64(0); i < tableLen; i++ {
		s, err := br.String()
		if err != nil {
			return nil, fmt.Errorf("pg: string table entry %d: %w", i, err)
		}
		strings = append(strings, s)
	}
	lookup := func(idx uint64) (string, error) {
		if idx >= uint64(len(strings)) {
			return "", fmt.Errorf("pg: string ref %d out of table (%d entries)", idx, len(strings))
		}
		return strings[idx], nil
	}

	g := NewGraph()
	nodeCount, err := br.Uvarint(1 << 40)
	if err != nil {
		return nil, fmt.Errorf("pg: node count: %w", err)
	}
	for i := uint64(0); i < nodeCount; i++ {
		id, labels, props, _, err := readElement(br, lookup, 0)
		if err != nil {
			return nil, fmt.Errorf("pg: node %d: %w", i, err)
		}
		if err := g.AddNodeWithID(ID(id), labels, props); err != nil {
			return nil, err
		}
	}
	edgeCount, err := br.Uvarint(1 << 40)
	if err != nil {
		return nil, fmt.Errorf("pg: edge count: %w", err)
	}
	for i := uint64(0); i < edgeCount; i++ {
		id, labels, props, endpoints, err := readElement(br, lookup, 2)
		if err != nil {
			return nil, fmt.Errorf("pg: edge %d: %w", i, err)
		}
		if err := g.AddEdgeWithID(ID(id), labels, ID(endpoints[0]), ID(endpoints[1]), props); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func readElement(br *WireReader, lookup func(uint64) (string, error), endpointCount int) (int64, []string, Properties, []int64, error) {
	id, err := br.Varint()
	if err != nil {
		return 0, nil, nil, nil, err
	}
	endpoints := make([]int64, endpointCount)
	for i := range endpoints {
		if endpoints[i], err = br.Varint(); err != nil {
			return 0, nil, nil, nil, err
		}
	}
	labelCount, err := br.Uvarint(1 << 16)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	var labels []string
	for i := uint64(0); i < labelCount; i++ {
		ref, err := br.Uvarint(1 << 31)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		l, err := lookup(ref)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		labels = append(labels, l)
	}
	propCount, err := br.Uvarint(1 << 24)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	props := Properties{}
	for i := uint64(0); i < propCount; i++ {
		ref, err := br.Uvarint(1 << 31)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		key, err := lookup(ref)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		v, err := br.Value()
		if err != nil {
			return 0, nil, nil, nil, err
		}
		props[key] = v
	}
	return id, labels, props, endpoints, nil
}
