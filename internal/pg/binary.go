package pg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// Binary snapshot format: a compact length-prefixed encoding that loads
// several times faster than JSONL for large graphs (property keys and
// labels are interned in a string table; values carry their kind, so no
// re-inference happens on load).
//
// Layout: magic, string table (varint count, then varint-length strings),
// node count + nodes, edge count + edges. Nodes are (id, label refs, props);
// edges add src/dst. Property values are (kind byte, payload).

const binaryMagic = "PGHV1\n"

// WriteBinary writes the graph in the binary snapshot format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}

	// Build the string table: all labels and property keys.
	table := map[string]uint64{}
	var strings []string
	intern := func(s string) uint64 {
		if idx, ok := table[s]; ok {
			return idx
		}
		idx := uint64(len(strings))
		table[s] = idx
		strings = append(strings, s)
		return idx
	}
	g.Nodes(func(n *Node) bool {
		for _, l := range n.Labels {
			intern(l)
		}
		for k := range n.Props {
			intern(k)
		}
		return true
	})
	g.Edges(func(e *Edge) bool {
		for _, l := range e.Labels {
			intern(l)
		}
		for k := range e.Props {
			intern(k)
		}
		return true
	})

	putUvarint(bw, uint64(len(strings)))
	for _, s := range strings {
		putString(bw, s)
	}

	putUvarint(bw, uint64(g.NumNodes()))
	var err error
	g.Nodes(func(n *Node) bool {
		err = writeElement(bw, table, int64(n.ID), n.Labels, n.Props, nil)
		return err == nil
	})
	if err != nil {
		return err
	}
	putUvarint(bw, uint64(g.NumEdges()))
	g.Edges(func(e *Edge) bool {
		endpoints := []int64{int64(e.Src), int64(e.Dst)}
		err = writeElement(bw, table, int64(e.ID), e.Labels, e.Props, endpoints)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

func writeElement(bw *bufio.Writer, table map[string]uint64, id int64, labels []string, props Properties, endpoints []int64) error {
	putVarint(bw, id)
	for _, ep := range endpoints {
		putVarint(bw, ep)
	}
	putUvarint(bw, uint64(len(labels)))
	for _, l := range labels {
		putUvarint(bw, table[l])
	}
	keys := SortedPropKeys(props)
	putUvarint(bw, uint64(len(keys)))
	for _, k := range keys {
		putUvarint(bw, table[k])
		if err := writeValue(bw, props[k]); err != nil {
			return err
		}
	}
	return nil
}

func writeValue(bw *bufio.Writer, v Value) error {
	if err := bw.WriteByte(byte(v.Kind())); err != nil {
		return err
	}
	switch v.Kind() {
	case KindNull:
	case KindInt:
		putVarint(bw, v.AsInt())
	case KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.AsFloat()))
		bw.Write(buf[:]) //nolint:errcheck // flushed error surfaces at Flush
	case KindBool:
		b := byte(0)
		if v.AsBool() {
			b = 1
		}
		bw.WriteByte(b) //nolint:errcheck
	case KindDate, KindTimestamp:
		putVarint(bw, v.AsTime().Unix())
	case KindString:
		putString(bw, v.AsString())
	default:
		return fmt.Errorf("pg: cannot encode value kind %v", v.Kind())
	}
	return nil
}

func putUvarint(bw *bufio.Writer, x uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	bw.Write(buf[:n]) //nolint:errcheck
}

func putVarint(bw *bufio.Writer, x int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], x)
	bw.Write(buf[:n]) //nolint:errcheck
}

func putString(bw *bufio.Writer, s string) {
	putUvarint(bw, uint64(len(s)))
	bw.WriteString(s) //nolint:errcheck
}

// ReadBinary loads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("pg: reading binary magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("pg: not a binary graph snapshot (magic %q)", magic)
	}

	tableLen, err := readUvarint(br, 1<<31)
	if err != nil {
		return nil, fmt.Errorf("pg: string table length: %w", err)
	}
	// Grow by appending: the claimed length is untrusted, so preallocation
	// is capped (a corrupt header must not allocate gigabytes up front).
	strings := make([]string, 0, min(tableLen, 4096))
	for i := uint64(0); i < tableLen; i++ {
		s, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("pg: string table entry %d: %w", i, err)
		}
		strings = append(strings, s)
	}
	lookup := func(idx uint64) (string, error) {
		if idx >= uint64(len(strings)) {
			return "", fmt.Errorf("pg: string ref %d out of table (%d entries)", idx, len(strings))
		}
		return strings[idx], nil
	}

	g := NewGraph()
	nodeCount, err := readUvarint(br, 1<<40)
	if err != nil {
		return nil, fmt.Errorf("pg: node count: %w", err)
	}
	for i := uint64(0); i < nodeCount; i++ {
		id, labels, props, _, err := readElement(br, lookup, 0)
		if err != nil {
			return nil, fmt.Errorf("pg: node %d: %w", i, err)
		}
		if err := g.AddNodeWithID(ID(id), labels, props); err != nil {
			return nil, err
		}
	}
	edgeCount, err := readUvarint(br, 1<<40)
	if err != nil {
		return nil, fmt.Errorf("pg: edge count: %w", err)
	}
	for i := uint64(0); i < edgeCount; i++ {
		id, labels, props, endpoints, err := readElement(br, lookup, 2)
		if err != nil {
			return nil, fmt.Errorf("pg: edge %d: %w", i, err)
		}
		if err := g.AddEdgeWithID(ID(id), labels, ID(endpoints[0]), ID(endpoints[1]), props); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func readElement(br *bufio.Reader, lookup func(uint64) (string, error), endpointCount int) (int64, []string, Properties, []int64, error) {
	id, err := binary.ReadVarint(br)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	endpoints := make([]int64, endpointCount)
	for i := range endpoints {
		if endpoints[i], err = binary.ReadVarint(br); err != nil {
			return 0, nil, nil, nil, err
		}
	}
	labelCount, err := readUvarint(br, 1<<16)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	var labels []string
	for i := uint64(0); i < labelCount; i++ {
		ref, err := readUvarint(br, 1<<31)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		l, err := lookup(ref)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		labels = append(labels, l)
	}
	propCount, err := readUvarint(br, 1<<24)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	props := Properties{}
	for i := uint64(0); i < propCount; i++ {
		ref, err := readUvarint(br, 1<<31)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		key, err := lookup(ref)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		v, err := readValue(br)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		props[key] = v
	}
	return id, labels, props, endpoints, nil
}

func readValue(br *bufio.Reader) (Value, error) {
	kindByte, err := br.ReadByte()
	if err != nil {
		return Null(), err
	}
	switch Kind(kindByte) {
	case KindNull:
		return Null(), nil
	case KindInt:
		x, err := binary.ReadVarint(br)
		return Int(x), err
	case KindFloat:
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return Null(), err
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case KindBool:
		b, err := br.ReadByte()
		return Bool(b != 0), err
	case KindDate:
		sec, err := binary.ReadVarint(br)
		return Date(time.Unix(sec, 0).UTC()), err
	case KindTimestamp:
		sec, err := binary.ReadVarint(br)
		return Timestamp(time.Unix(sec, 0).UTC()), err
	case KindString:
		s, err := readString(br)
		return Str(s), err
	default:
		return Null(), fmt.Errorf("pg: unknown value kind byte %d", kindByte)
	}
}

func readUvarint(br *bufio.Reader, max uint64) (uint64, error) {
	x, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	if x > max {
		return 0, fmt.Errorf("pg: varint %d exceeds bound %d (corrupt snapshot)", x, max)
	}
	return x, nil
}

func readString(br *bufio.Reader) (string, error) {
	n, err := readUvarint(br, 1<<30)
	if err != nil {
		return "", err
	}
	// Chunked reads keep a corrupt length claim from allocating the whole
	// (bogus) size up front.
	const chunk = 64 * 1024
	if n <= chunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	var sb bytesBuilder
	tmp := make([]byte, chunk)
	for remaining := n; remaining > 0; {
		step := min(remaining, chunk)
		if _, err := io.ReadFull(br, tmp[:step]); err != nil {
			return "", err
		}
		sb.write(tmp[:step])
		remaining -= step
	}
	return sb.String(), nil
}

// bytesBuilder is a minimal growable byte accumulator (strings.Builder
// without the import churn in this file's hot path).
type bytesBuilder struct{ b []byte }

func (s *bytesBuilder) write(p []byte) { s.b = append(s.b, p...) }
func (s *bytesBuilder) String() string { return string(s.b) }

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
