package pg

// Hash partitioning for sharded discovery: every element is assigned to a
// shard by a fixed hash of its own ID, so the assignment is a pure function
// of (element, shard count) — deterministic across runs and completely
// independent of how the stream happens to be chopped into batches. An edge
// is routed by its edge ID and travels with its resolved endpoint labels
// (EdgeRecord is self-contained), so the owning shard folds the edge's
// endpoint evidence without ever seeing the endpoint node records, which may
// live on other shards.

// shardHash is splitmix64's finalizer — a cheap, well-mixed 64-bit hash, so
// consecutive IDs spread uniformly across shards.
func shardHash(id ID) uint64 {
	z := uint64(id) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ShardOf returns the shard in [0, n) that owns the element with this ID.
// n ≤ 1 maps everything to shard 0.
func ShardOf(id ID, n int) int {
	if n <= 1 {
		return 0
	}
	return int(shardHash(id) % uint64(n))
}

// PartitionBatch splits b into exactly n sub-batches by ShardOf: sub-batch i
// holds, in stream order, every element the hash assigns to shard i (some
// sub-batches may be empty). Each element of b lands in exactly one
// sub-batch, and because the assignment ignores batch boundaries, chopping a
// stream into different batch sizes changes only how a shard's elements are
// grouped, never which shard owns them. Records are copied by value; their
// label/property slices alias b's.
func PartitionBatch(b *Batch, n int) []*Batch {
	if n < 1 {
		n = 1
	}
	parts := make([]*Batch, n)
	for i := range parts {
		parts[i] = &Batch{}
	}
	for i := range b.Nodes {
		p := parts[ShardOf(b.Nodes[i].ID, n)]
		p.Nodes = append(p.Nodes, b.Nodes[i])
	}
	for i := range b.Edges {
		p := parts[ShardOf(b.Edges[i].ID, n)]
		p.Edges = append(p.Edges, b.Edges[i])
	}
	return parts
}
