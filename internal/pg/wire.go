package pg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// Wire codec: the length-prefixed varint encoding shared by the binary
// graph snapshot (binary.go) and the pipeline checkpoint format
// (internal/schema, internal/vectorize, internal/core). WireWriter buffers
// and defers error checks to Flush; WireReader bounds every claimed length
// so corrupt input cannot trigger huge allocations.

// WireWriter writes wire-format primitives to a buffered stream. Write
// errors are sticky and surface at Flush (the bufio contract), so encoders
// can emit unconditionally and check once.
type WireWriter struct {
	bw *bufio.Writer
}

// NewWireWriter wraps w for wire-format output.
func NewWireWriter(w io.Writer) *WireWriter {
	if bw, ok := w.(*bufio.Writer); ok {
		return &WireWriter{bw: bw}
	}
	return &WireWriter{bw: bufio.NewWriter(w)}
}

// Uvarint writes an unsigned varint.
func (w *WireWriter) Uvarint(x uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	w.bw.Write(buf[:n]) //nolint:errcheck // surfaces at Flush
}

// Varint writes a signed varint.
func (w *WireWriter) Varint(x int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], x)
	w.bw.Write(buf[:n]) //nolint:errcheck
}

// Byte writes one byte.
func (w *WireWriter) Byte(b byte) {
	w.bw.WriteByte(b) //nolint:errcheck
}

// Bool writes a boolean as one byte.
func (w *WireWriter) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.Byte(b)
}

// Float64 writes a little-endian IEEE-754 double.
func (w *WireWriter) Float64(f float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	w.bw.Write(buf[:]) //nolint:errcheck
}

// String writes a length-prefixed string.
func (w *WireWriter) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.bw.WriteString(s) //nolint:errcheck
}

// Raw writes the magic or other pre-formatted bytes verbatim.
func (w *WireWriter) Raw(p []byte) {
	w.bw.Write(p) //nolint:errcheck
}

// Value writes a property value as (kind byte, payload).
func (w *WireWriter) Value(v Value) error {
	w.Byte(byte(v.Kind()))
	switch v.Kind() {
	case KindNull:
	case KindInt:
		w.Varint(v.AsInt())
	case KindFloat:
		w.Float64(v.AsFloat())
	case KindBool:
		w.Bool(v.AsBool())
	case KindDate, KindTimestamp:
		w.Varint(v.AsTime().Unix())
	case KindString:
		w.String(v.AsString())
	default:
		return fmt.Errorf("pg: cannot encode value kind %v", v.Kind())
	}
	return nil
}

// Flush drains the buffer and returns the first error encountered by any
// prior write.
func (w *WireWriter) Flush() error { return w.bw.Flush() }

// WireReader reads wire-format primitives.
type WireReader struct {
	br *bufio.Reader
}

// NewWireReader wraps r for wire-format input.
func NewWireReader(r io.Reader) *WireReader {
	if br, ok := r.(*bufio.Reader); ok {
		return &WireReader{br: br}
	}
	return &WireReader{br: bufio.NewReader(r)}
}

// Uvarint reads an unsigned varint and rejects values above max (a corrupt
// length claim must not drive huge allocations downstream).
func (r *WireReader) Uvarint(max uint64) (uint64, error) {
	x, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, err
	}
	if x > max {
		return 0, fmt.Errorf("pg: varint %d exceeds bound %d (corrupt snapshot)", x, max)
	}
	return x, nil
}

// Varint reads a signed varint.
func (r *WireReader) Varint() (int64, error) {
	return binary.ReadVarint(r.br)
}

// Byte reads one byte.
func (r *WireReader) Byte() (byte, error) {
	return r.br.ReadByte()
}

// Bool reads a one-byte boolean.
func (r *WireReader) Bool() (bool, error) {
	b, err := r.br.ReadByte()
	return b != 0, err
}

// Float64 reads a little-endian IEEE-754 double.
func (r *WireReader) Float64() (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r.br, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// String reads a length-prefixed string (length capped at 1 GiB). Chunked
// reads keep a corrupt length claim from allocating the whole bogus size up
// front.
func (r *WireReader) String() (string, error) {
	n, err := r.Uvarint(1 << 30)
	if err != nil {
		return "", err
	}
	const chunk = 64 * 1024
	if n <= chunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	var sb bytesBuilder
	tmp := make([]byte, chunk)
	for remaining := n; remaining > 0; {
		step := min(remaining, chunk)
		if _, err := io.ReadFull(r.br, tmp[:step]); err != nil {
			return "", err
		}
		sb.write(tmp[:step])
		remaining -= step
	}
	return sb.String(), nil
}

// Expect consumes len(magic) bytes and verifies them.
func (r *WireReader) Expect(magic string) error {
	buf := make([]byte, len(magic))
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return fmt.Errorf("pg: reading magic: %w", err)
	}
	if string(buf) != magic {
		return fmt.Errorf("pg: bad magic %q (want %q)", buf, magic)
	}
	return nil
}

// Value reads a property value written by WireWriter.Value.
func (r *WireReader) Value() (Value, error) {
	kindByte, err := r.Byte()
	if err != nil {
		return Null(), err
	}
	switch Kind(kindByte) {
	case KindNull:
		return Null(), nil
	case KindInt:
		x, err := r.Varint()
		return Int(x), err
	case KindFloat:
		f, err := r.Float64()
		return Float(f), err
	case KindBool:
		b, err := r.Bool()
		return Bool(b), err
	case KindDate:
		sec, err := r.Varint()
		return Date(time.Unix(sec, 0).UTC()), err
	case KindTimestamp:
		sec, err := r.Varint()
		return Timestamp(time.Unix(sec, 0).UTC()), err
	case KindString:
		s, err := r.String()
		return Str(s), err
	default:
		return Null(), fmt.Errorf("pg: unknown value kind byte %d", kindByte)
	}
}

// bytesBuilder is a minimal growable byte accumulator (strings.Builder
// without the import churn in this file's hot path).
type bytesBuilder struct{ b []byte }

func (s *bytesBuilder) write(p []byte) { s.b = append(s.b, p...) }
func (s *bytesBuilder) String() string { return string(s.b) }

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
