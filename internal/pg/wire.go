package pg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// Wire codec: the length-prefixed varint encoding shared by the binary
// graph snapshot (binary.go) and the pipeline checkpoint format
// (internal/schema, internal/vectorize, internal/core). WireWriter buffers
// and defers error checks to Flush; WireReader bounds every claimed length
// so corrupt input cannot trigger huge allocations.

// WireWriter writes wire-format primitives to a buffered stream. Write
// errors are sticky and surface at Flush (the bufio contract), so encoders
// can emit unconditionally and check once.
type WireWriter struct {
	bw *bufio.Writer
}

// NewWireWriter wraps w for wire-format output.
func NewWireWriter(w io.Writer) *WireWriter {
	if bw, ok := w.(*bufio.Writer); ok {
		return &WireWriter{bw: bw}
	}
	return &WireWriter{bw: bufio.NewWriter(w)}
}

// Uvarint writes an unsigned varint.
func (w *WireWriter) Uvarint(x uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	w.bw.Write(buf[:n]) //nolint:errcheck // surfaces at Flush
}

// Varint writes a signed varint.
func (w *WireWriter) Varint(x int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], x)
	w.bw.Write(buf[:n]) //nolint:errcheck
}

// Byte writes one byte.
func (w *WireWriter) Byte(b byte) {
	w.bw.WriteByte(b) //nolint:errcheck
}

// Bool writes a boolean as one byte.
func (w *WireWriter) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.Byte(b)
}

// Float64 writes a little-endian IEEE-754 double.
func (w *WireWriter) Float64(f float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	w.bw.Write(buf[:]) //nolint:errcheck
}

// String writes a length-prefixed string.
func (w *WireWriter) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.bw.WriteString(s) //nolint:errcheck
}

// Raw writes the magic or other pre-formatted bytes verbatim.
func (w *WireWriter) Raw(p []byte) {
	w.bw.Write(p) //nolint:errcheck
}

// Value writes a property value as (kind byte, payload).
func (w *WireWriter) Value(v Value) error {
	w.Byte(byte(v.Kind()))
	switch v.Kind() {
	case KindNull:
	case KindInt:
		w.Varint(v.AsInt())
	case KindFloat:
		w.Float64(v.AsFloat())
	case KindBool:
		w.Bool(v.AsBool())
	case KindDate, KindTimestamp:
		w.Varint(v.AsTime().Unix())
	case KindString:
		w.String(v.AsString())
	default:
		return fmt.Errorf("pg: cannot encode value kind %v", v.Kind())
	}
	return nil
}

// Flush drains the buffer and returns the first error encountered by any
// prior write.
func (w *WireWriter) Flush() error { return w.bw.Flush() }

// WireReader reads wire-format primitives. It keeps two pieces of reusable
// decode state: a scratch buffer that string reads stage their bytes in, and
// an intern table that dedups the short, endlessly repeated strings of a
// graph stream (labels, property keys) so decoding a million "Person" nodes
// allocates the label string once. Reset lets one reader (and its warm
// state) decode many streams.
type WireReader struct {
	br *bufio.Reader
	// scratch is the staging buffer for string payloads; valid only until
	// the next read call.
	scratch []byte
	// intern maps seen short strings to their canonical copy. Bounded by
	// maxInternEntries; lookups use the m[string(bytes)] form the compiler
	// optimizes to zero allocations.
	intern map[string]string
}

// Intern-table bounds: only short strings (label/key-sized) are interned,
// and the table stops growing — but keeps hitting — past the entry cap, so
// an adversarial high-cardinality stream cannot balloon it.
const (
	maxInternLen     = 128
	maxInternEntries = 1 << 16
)

// NewWireReader wraps r for wire-format input.
func NewWireReader(r io.Reader) *WireReader {
	if br, ok := r.(*bufio.Reader); ok {
		return &WireReader{br: br}
	}
	return &WireReader{br: bufio.NewReader(r)}
}

// Reset redirects the reader to a new stream, keeping the scratch buffer
// and intern table warm. Decode loops over many streams (the spill queue,
// checkpoint shards) reuse one reader instead of allocating per stream.
func (r *WireReader) Reset(rd io.Reader) {
	if br, ok := rd.(*bufio.Reader); ok {
		r.br = br
		return
	}
	if r.br == nil {
		r.br = bufio.NewReader(rd)
		return
	}
	r.br.Reset(rd)
}

// Uvarint reads an unsigned varint and rejects values above max (a corrupt
// length claim must not drive huge allocations downstream).
func (r *WireReader) Uvarint(max uint64) (uint64, error) {
	x, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, err
	}
	if x > max {
		return 0, fmt.Errorf("pg: varint %d exceeds bound %d (corrupt snapshot)", x, max)
	}
	return x, nil
}

// Varint reads a signed varint.
func (r *WireReader) Varint() (int64, error) {
	return binary.ReadVarint(r.br)
}

// Byte reads one byte.
func (r *WireReader) Byte() (byte, error) {
	return r.br.ReadByte()
}

// Bool reads a one-byte boolean.
func (r *WireReader) Bool() (bool, error) {
	b, err := r.br.ReadByte()
	return b != 0, err
}

// Float64 reads a little-endian IEEE-754 double.
func (r *WireReader) Float64() (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r.br, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// String reads a length-prefixed string (length capped at 1 GiB). The
// payload stages through the reusable scratch buffer, so each call allocates
// only the returned string itself.
func (r *WireReader) String() (string, error) {
	buf, err := r.stringBytes()
	if err != nil {
		return "", err
	}
	return string(buf), nil
}

// InternedString is String for low-cardinality strings — labels, property
// keys — that a stream repeats millions of times: short payloads resolve
// through the intern table, so every occurrence after the first allocates
// nothing. Long or over-cap strings fall back to a plain copy.
func (r *WireReader) InternedString() (string, error) {
	buf, err := r.stringBytes()
	if err != nil {
		return "", err
	}
	if len(buf) > maxInternLen {
		return string(buf), nil
	}
	if s, ok := r.intern[string(buf)]; ok {
		return s, nil
	}
	s := string(buf)
	if r.intern == nil {
		r.intern = make(map[string]string)
	}
	if len(r.intern) < maxInternEntries {
		r.intern[s] = s
	}
	return s, nil
}

// scratchChunk bounds both the chunked-read step and how much scratch a
// single oversized string may leave retained.
const scratchChunk = 64 * 1024

// stringBytes reads a length-prefixed payload into the scratch buffer and
// returns the filled slice, valid until the next read call. Payloads beyond
// scratchChunk stream in chunk-sized steps so a corrupt length claim fails
// on a short read before its bogus size is ever allocated.
func (r *WireReader) stringBytes() ([]byte, error) {
	n, err := r.Uvarint(1 << 30)
	if err != nil {
		return nil, err
	}
	if n <= scratchChunk {
		buf := r.scratchFor(int(n))
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	tmp := r.scratchFor(scratchChunk)
	var out []byte
	for remaining := n; remaining > 0; {
		step := min(remaining, scratchChunk)
		if _, err := io.ReadFull(r.br, tmp[:step]); err != nil {
			return nil, err
		}
		out = append(out, tmp[:step]...)
		remaining -= step
	}
	return out, nil
}

// scratchFor returns the scratch buffer resized to n bytes, growing it
// geometrically up to the chunk bound.
func (r *WireReader) scratchFor(n int) []byte {
	if cap(r.scratch) < n {
		c := 2 * cap(r.scratch)
		if c < n {
			c = n
		}
		if c < 64 {
			c = 64
		}
		r.scratch = make([]byte, c)
	}
	return r.scratch[:n]
}

// Expect consumes len(magic) bytes and verifies them.
func (r *WireReader) Expect(magic string) error {
	buf := r.scratchFor(len(magic))
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return fmt.Errorf("pg: reading magic: %w", err)
	}
	if string(buf) != magic {
		return fmt.Errorf("pg: bad magic %q (want %q)", buf, magic)
	}
	return nil
}

// Value reads a property value written by WireWriter.Value.
func (r *WireReader) Value() (Value, error) {
	kindByte, err := r.Byte()
	if err != nil {
		return Null(), err
	}
	switch Kind(kindByte) {
	case KindNull:
		return Null(), nil
	case KindInt:
		x, err := r.Varint()
		return Int(x), err
	case KindFloat:
		f, err := r.Float64()
		return Float(f), err
	case KindBool:
		b, err := r.Bool()
		return Bool(b), err
	case KindDate:
		sec, err := r.Varint()
		return Date(time.Unix(sec, 0).UTC()), err
	case KindTimestamp:
		sec, err := r.Varint()
		return Timestamp(time.Unix(sec, 0).UTC()), err
	case KindString:
		s, err := r.String()
		return Str(s), err
	default:
		return Null(), fmt.Errorf("pg: unknown value kind byte %d", kindByte)
	}
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
