package pg

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pghive/internal/obs"
)

// testBatches builds n tiny distinct batches.
func testBatches(n int) []*Batch {
	out := make([]*Batch, n)
	for i := range out {
		out[i] = &Batch{Nodes: []NodeRecord{{
			ID:     ID(i),
			Labels: []string{"T"},
			Props:  Properties{"k": Int(int64(i))},
		}}}
	}
	return out
}

// drainErrSource pulls src to exhaustion, returning delivered batches and
// every error seen along the way.
func drainErrSource(t *testing.T, src ErrSource, maxSteps int) (batches []*Batch, errs []error) {
	t.Helper()
	for i := 0; i < maxSteps; i++ {
		b, err := src.Next()
		if err != nil {
			errs = append(errs, err)
			if !IsTransient(err) && !IsCorrupt(err) {
				return
			}
			continue
		}
		if b == nil {
			return
		}
		batches = append(batches, b)
	}
	t.Fatalf("source did not terminate within %d steps", maxSteps)
	return
}

func TestAsErrSourcePassThrough(t *testing.T) {
	src := AsErrSource(NewSliceSource(testBatches(3)...))
	batches, errs := drainErrSource(t, src, 100)
	if len(batches) != 3 || len(errs) != 0 {
		t.Fatalf("got %d batches, %d errors; want 3, 0", len(batches), len(errs))
	}
}

func TestFaultSourceTransientEventuallyDelivers(t *testing.T) {
	src := NewFaultSource(AsErrSource(NewSliceSource(testBatches(10)...)),
		FaultProfile{TransientRate: 0.5, Seed: 7})
	batches, errs := drainErrSource(t, src, 1000)
	if len(batches) != 10 {
		t.Fatalf("delivered %d batches, want all 10 despite transient faults", len(batches))
	}
	if len(errs) == 0 {
		t.Fatal("rate 0.5 over 10 batches should inject at least one transient error")
	}
	for _, err := range errs {
		if !IsTransient(err) {
			t.Errorf("unexpected non-transient error: %v", err)
		}
	}
	// Batches arrive in order and intact.
	for i, b := range batches {
		if b.Nodes[0].ID != ID(i) {
			t.Errorf("batch %d carries node %d; deliveries out of order", i, b.Nodes[0].ID)
		}
	}
}

func TestFaultSourceDeterministic(t *testing.T) {
	run := func() []error {
		src := NewFaultSource(AsErrSource(NewSliceSource(testBatches(20)...)),
			FaultProfile{TransientRate: 0.3, CorruptRate: 0.2, Seed: 42})
		_, errs := drainErrSource(t, src, 1000)
		return errs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("two identical runs injected %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i].Error() != b[i].Error() {
			t.Errorf("fault %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestFaultSourceCorruptAdvances(t *testing.T) {
	src := NewFaultSource(AsErrSource(NewSliceSource(testBatches(10)...)),
		FaultProfile{CorruptRate: 0.4, Seed: 3})
	batches, errs := drainErrSource(t, src, 1000)
	corrupt := 0
	for _, err := range errs {
		var ce *CorruptBatchError
		if !errors.As(err, &ce) {
			t.Fatalf("unexpected error kind: %v", err)
		}
		corrupt++
	}
	if corrupt == 0 {
		t.Fatal("rate 0.4 over 10 batches should poison at least one")
	}
	if len(batches)+corrupt != 10 {
		t.Errorf("delivered %d + poisoned %d != 10: a poisoned batch must advance the stream", len(batches), corrupt)
	}
}

func TestFaultSourceTruncationCarriesPartial(t *testing.T) {
	big := &Batch{}
	for i := 0; i < 100; i++ {
		big.Nodes = append(big.Nodes, NodeRecord{ID: ID(i), Labels: []string{"T"}})
	}
	// TruncateRate 1: the only batch is always truncated.
	src := NewFaultSource(AsErrSource(NewSliceSource(big)), FaultProfile{TruncateRate: 1, Seed: 1})
	b, err := src.Next()
	if b != nil || err == nil {
		t.Fatalf("want truncation error, got batch=%v err=%v", b, err)
	}
	var ce *CorruptBatchError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not CorruptBatchError", err)
	}
	if ce.Partial == nil || ce.Partial.Len() >= big.Len() {
		t.Errorf("truncation must carry a strictly smaller partial batch (got %v)", ce.Partial)
	}
}

func TestFaultSourceFailAfter(t *testing.T) {
	src := NewFaultSource(AsErrSource(NewSliceSource(testBatches(10)...)),
		FaultProfile{FailAfter: 4, Seed: 1})
	delivered := 0
	var lastErr error
	for i := 0; i < 100; i++ {
		b, err := src.Next()
		if err != nil {
			lastErr = err
			break
		}
		if b == nil {
			t.Fatal("stream exhausted before injected permanent failure")
		}
		delivered++
	}
	if delivered != 4 {
		t.Errorf("delivered %d batches before permanent failure, want 4", delivered)
	}
	if !errors.Is(lastErr, ErrPermanentFault) {
		t.Errorf("want ErrPermanentFault, got %v", lastErr)
	}
	// The failure is sticky.
	if _, err := src.Next(); !errors.Is(err, ErrPermanentFault) {
		t.Errorf("permanent failure must be sticky, got %v", err)
	}
}

func TestFaultSourceLatency(t *testing.T) {
	var slept time.Duration
	src := NewFaultSource(AsErrSource(NewSliceSource(testBatches(3)...)),
		FaultProfile{Latency: 5 * time.Millisecond, Seed: 1})
	src.SetSleep(func(d time.Duration) { slept += d })
	drainErrSource(t, src, 100)
	if slept < 15*time.Millisecond {
		t.Errorf("slept %v, want >= 15ms (3 deliveries + exhaustion probe)", slept)
	}
}

func TestRetrySourceAbsorbsTransients(t *testing.T) {
	var slept []time.Duration
	fault := NewFaultSource(AsErrSource(NewSliceSource(testBatches(10)...)),
		FaultProfile{TransientRate: 0.4, Seed: 11})
	retry := NewRetrySource(fault, RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   time.Millisecond,
		Jitter:      0.5,
		Seed:        1,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	batches, errs := drainErrSource(t, retry, 1000)
	if len(errs) != 0 {
		t.Fatalf("retry should absorb all transient faults, surfaced %v", errs)
	}
	if len(batches) != 10 {
		t.Fatalf("delivered %d batches, want 10", len(batches))
	}
	retries, total := retry.Stats()
	if retries == 0 || len(slept) != retries {
		t.Errorf("stats: %d retries, %d sleeps recorded", retries, len(slept))
	}
	if total <= 0 {
		t.Error("cumulative backoff should be positive")
	}
}

func TestRetrySourceBackoffGrowsAndCaps(t *testing.T) {
	// A source that always fails transiently.
	always := errSourceFunc(func() (*Batch, error) { return nil, &TransientError{} })
	var slept []time.Duration
	retry := NewRetrySource(always, RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	_, err := retry.Next()
	var re *RetryExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("want RetryExhaustedError, got %v", err)
	}
	if re.Attempts != 6 {
		t.Errorf("attempts = %d, want 6", re.Attempts)
	}
	want := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(slept), slept, len(want))
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("backoff %d = %v, want %v (no jitter)", i, slept[i], want[i])
		}
	}
}

func TestRetryExhaustedIsPermanent(t *testing.T) {
	// An exhausted budget escalates to permanent even though the error
	// still wraps its transient cause: an outer consumer must not retry
	// what the retry layer already gave up on.
	err := &RetryExhaustedError{Attempts: 3, Err: &TransientError{Seq: 1, Attempt: 2}}
	if IsTransient(err) {
		t.Fatal("RetryExhaustedError must not report as transient")
	}
	if IsTransient(fmt.Errorf("drain: %w", err)) {
		t.Fatal("wrapped RetryExhaustedError must not report as transient")
	}
	var te *TransientError
	if !errors.As(err, &te) {
		t.Fatal("the transient cause should stay reachable for diagnostics")
	}
	if IsTransient(&TransientError{}) != true {
		t.Fatal("plain TransientError must stay transient")
	}
}

func TestRetrySourcePassesCorruptThrough(t *testing.T) {
	calls := 0
	src := errSourceFunc(func() (*Batch, error) {
		calls++
		if calls == 1 {
			return nil, &CorruptBatchError{Seq: 0, Reason: "boom"}
		}
		return nil, nil
	})
	retry := NewRetrySource(src, RetryPolicy{Sleep: func(time.Duration) {}})
	_, err := retry.Next()
	if !IsCorrupt(err) {
		t.Fatalf("corrupt error must pass through untouched, got %v", err)
	}
	if b, err := retry.Next(); b != nil || err != nil {
		t.Fatalf("stream should be exhausted, got %v, %v", b, err)
	}
	if calls != 2 {
		t.Errorf("corrupt batch retried: %d inner calls, want 2", calls)
	}
}

// TestRetrySourceAttemptsAccessor: a delivery that needs 3 attempts (two
// absorbed transients, then success) reports Attempts() == 3, keeps the
// last absorbed error reachable, and emits the matching telemetry counters.
func TestRetrySourceAttemptsAccessor(t *testing.T) {
	calls := 0
	batches := testBatches(2)
	src := errSourceFunc(func() (*Batch, error) {
		calls++
		switch calls {
		case 1, 2:
			return nil, &TransientError{Seq: 0, Attempt: calls - 1}
		case 3:
			return batches[0], nil
		case 4:
			return batches[1], nil
		}
		return nil, nil
	})
	reg := obs.NewRegistry()
	retry := NewRetrySource(src, RetryPolicy{Sleep: func(time.Duration) {}})
	retry.Instrument(reg)

	if retry.Attempts() != 0 || retry.LastErr() != nil {
		t.Fatal("fresh RetrySource must report zero attempts and no error")
	}
	if b, err := retry.Next(); err != nil || b != batches[0] {
		t.Fatalf("Next = %v, %v; want first batch", b, err)
	}
	if got := retry.Attempts(); got != 3 {
		t.Errorf("Attempts() = %d, want 3 (two transients + success)", got)
	}
	var te *TransientError
	if !errors.As(retry.LastErr(), &te) || te.Attempt != 1 {
		t.Errorf("LastErr() = %v, want the last absorbed transient (attempt 1)", retry.LastErr())
	}

	if b, err := retry.Next(); err != nil || b != batches[1] {
		t.Fatalf("Next = %v, %v; want second batch", b, err)
	}
	if got := retry.Attempts(); got != 1 {
		t.Errorf("Attempts() after clean delivery = %d, want 1", got)
	}

	snap := reg.Snapshot()
	if got := snap.Counter(obs.CtrRetries); got != 2 {
		t.Errorf("retries counter = %d, want 2", got)
	}
	if got := snap.Counter(obs.CtrRetryAttempts); got != 4 {
		t.Errorf("retry_attempts counter = %d, want 4 (3 + 1)", got)
	}
}

// TestRetrySourceAttemptsOnExhaustion: when the budget is spent, Attempts()
// reports the full budget — the same number RetryExhaustedError carries.
func TestRetrySourceAttemptsOnExhaustion(t *testing.T) {
	always := errSourceFunc(func() (*Batch, error) { return nil, &TransientError{} })
	retry := NewRetrySource(always, RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}})
	_, err := retry.Next()
	var re *RetryExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("want RetryExhaustedError, got %v", err)
	}
	if retry.Attempts() != re.Attempts || retry.Attempts() != 3 {
		t.Errorf("Attempts() = %d, error carries %d, want both 3", retry.Attempts(), re.Attempts)
	}
	if retry.LastErr() == nil {
		t.Error("LastErr() must hold the escalated transient cause")
	}
}

// errSourceFunc adapts a function to ErrSource.
type errSourceFunc func() (*Batch, error)

func (f errSourceFunc) Next() (*Batch, error) { return f() }
