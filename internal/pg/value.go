// Package pg implements the property-graph data model used throughout
// PG-HIVE: nodes and edges carrying label sets and key-value properties
// (Definition 3.1 of the paper), an in-memory store with label indexes and
// degree queries, batched scans for incremental processing, and CSV/JSONL
// import/export. It is the substrate standing in for the PG storage system
// (e.g. Neo4j) used by the paper.
package pg

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Kind identifies the dynamic type of a property Value. The set mirrors the
// GQL-style data types PG-Schema supports (§3 of the paper): BOOLEAN, INT,
// DOUBLE, STRING, DATE and TIMESTAMP.
type Kind uint8

// Property value kinds, ordered roughly by inference priority (§4.4).
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindBool
	KindDate
	KindTimestamp
	KindString
)

// String returns the PG-Schema spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "DOUBLE"
	case KindBool:
		return "BOOLEAN"
	case KindDate:
		return "DATE"
	case KindTimestamp:
		return "TIMESTAMP"
	case KindString:
		return "STRING"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is an immutable property value: a tagged union over the supported
// kinds. The zero Value is the null value.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	t    time.Time
}

// Null returns the null value.
func Null() Value { return Value{} }

// Int returns an INT value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a DOUBLE value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Bool returns a BOOLEAN value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// String returns a STRING value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Date returns a DATE value (the time component is ignored).
func Date(t time.Time) Value {
	y, m, d := t.Date()
	return Value{kind: KindDate, t: time.Date(y, m, d, 0, 0, 0, 0, time.UTC)}
}

// Timestamp returns a TIMESTAMP value.
func Timestamp(t time.Time) Value { return Value{kind: KindTimestamp, t: t.UTC()} }

// Kind reports the value's dynamic kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload; it is only meaningful for KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the numeric payload as a float64 for KindInt and KindFloat.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsBool returns the boolean payload; it is only meaningful for KindBool.
func (v Value) AsBool() bool { return v.i != 0 }

// AsString returns the string payload; it is only meaningful for KindString.
func (v Value) AsString() string { return v.s }

// AsTime returns the temporal payload for KindDate and KindTimestamp.
func (v Value) AsTime() time.Time { return v.t }

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindInt, KindBool:
		return v.i == w.i
	case KindFloat:
		return v.f == w.f || (math.IsNaN(v.f) && math.IsNaN(w.f))
	case KindString:
		return v.s == w.s
	case KindDate, KindTimestamp:
		return v.t.Equal(w.t)
	}
	return false
}

// String renders the value in its canonical textual form, the same form
// ParseValue accepts.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return v.t.Format("2006-01-02")
	case KindTimestamp:
		return v.t.Format(time.RFC3339)
	case KindString:
		return v.s
	default:
		return ""
	}
}

var (
	isoDateRE      = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}$`)
	slashDateRE    = regexp.MustCompile(`^\d{1,2}/\d{1,2}/\d{4}$`)
	isoTimestampRE = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}[T ]\d{2}:\d{2}(:\d{2})?(\.\d+)?(Z|[+-]\d{2}:?\d{2})?$`)
)

// KindFromString parses the PG-Schema spelling produced by Kind.String.
// Unknown spellings return KindString.
func KindFromString(s string) Kind {
	switch s {
	case "NULL":
		return KindNull
	case "INT":
		return KindInt
	case "DOUBLE":
		return KindFloat
	case "BOOLEAN":
		return KindBool
	case "DATE":
		return KindDate
	case "TIMESTAMP":
		return KindTimestamp
	default:
		return KindString
	}
}

// ParseValue infers a Value from its textual form using the paper's
// priority-based rules (§4.4): integers, then floats, then booleans, then
// ISO-style date/time formats, defaulting to a string. The empty string
// parses to null.
func ParseValue(s string) Value {
	if s == "" {
		return Null()
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	switch s {
	case "true", "TRUE", "True":
		return Bool(true)
	case "false", "FALSE", "False":
		return Bool(false)
	}
	if isoDateRE.MatchString(s) {
		if t, err := time.Parse("2006-01-02", s); err == nil {
			return Date(t)
		}
	}
	if slashDateRE.MatchString(s) {
		if t, err := time.Parse("2/1/2006", s); err == nil {
			return Date(t)
		}
	}
	if isoTimestampRE.MatchString(s) {
		for _, layout := range []string{time.RFC3339, "2006-01-02T15:04:05", "2006-01-02 15:04:05", "2006-01-02T15:04", "2006-01-02 15:04"} {
			if t, err := time.Parse(layout, s); err == nil {
				return Timestamp(t)
			}
		}
	}
	return Str(s)
}

// Properties is the key-value map attached to a node or edge.
type Properties map[string]Value

// Keys returns the property keys in unspecified order.
func (p Properties) Keys() []string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	return keys
}

// Clone returns a copy of the map. A nil map clones to nil.
func (p Properties) Clone() Properties {
	if p == nil {
		return nil
	}
	c := make(Properties, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// LabelSetKey canonicalizes a label set: labels are sorted alphabetically and
// joined with "&". This is the paper's convention for multi-labeled elements
// (§4.1): the sorted concatenation is treated as one token, so identical
// label sets map to identical keys. The empty set maps to "".
func LabelSetKey(labels []string) string {
	switch len(labels) {
	case 0:
		return ""
	case 1:
		return labels[0]
	}
	sorted := make([]string, len(labels))
	copy(sorted, labels)
	sortStrings(sorted)
	return strings.Join(sorted, "&")
}

func sortStrings(s []string) {
	// Insertion sort: label sets are tiny (1-3 elements).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
