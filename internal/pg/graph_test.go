package pg

import (
	"reflect"
	"testing"
)

// figure1Graph builds the paper's running example (Figure 1): Person,
// Organization, Post, Place nodes plus an unlabeled "Alice", connected by
// KNOWS, LIKES, WORKS_AT and LOCATED_IN edges.
func figure1Graph(t testing.TB) *Graph {
	t.Helper()
	g := NewGraph()
	bob := g.AddNode([]string{"Person"}, Properties{"name": Str("Bob"), "gender": Str("m"), "bday": ParseValue("19/12/1999")})
	john := g.AddNode([]string{"Person"}, Properties{"name": Str("John"), "gender": Str("m"), "bday": ParseValue("01/05/1985")})
	alice := g.AddNode(nil, Properties{"name": Str("Alice"), "gender": Str("f"), "bday": ParseValue("07/07/1990")})
	org := g.AddNode([]string{"Organization"}, Properties{"name": Str("FORTH"), "url": Str("https://ics.forth.gr")})
	post1 := g.AddNode([]string{"Post"}, Properties{"imgFile": Str("x.png")})
	post2 := g.AddNode([]string{"Post"}, Properties{"content": Str("hello")})
	place := g.AddNode([]string{"Place"}, Properties{"name": Str("Heraklion")})

	mustEdge(t, g, []string{"KNOWS"}, alice, john, Properties{"since": Int(2017)})
	mustEdge(t, g, []string{"KNOWS"}, bob, john, nil)
	mustEdge(t, g, []string{"LIKES"}, alice, post1, nil)
	mustEdge(t, g, []string{"LIKES"}, john, post2, nil)
	mustEdge(t, g, []string{"WORKS_AT"}, bob, org, Properties{"from": Int(2020)})
	mustEdge(t, g, []string{"LOCATED_IN"}, alice, place, nil)
	_ = post2
	return g
}

func mustEdge(t testing.TB, g *Graph, labels []string, src, dst ID, props Properties) ID {
	t.Helper()
	id, err := g.AddEdge(labels, src, dst, props)
	if err != nil {
		t.Fatalf("AddEdge(%v, %d, %d): %v", labels, src, dst, err)
	}
	return id
}

func TestGraphCounts(t *testing.T) {
	g := figure1Graph(t)
	if g.NumNodes() != 7 {
		t.Errorf("NumNodes = %d, want 7", g.NumNodes())
	}
	if g.NumEdges() != 6 {
		t.Errorf("NumEdges = %d, want 6", g.NumEdges())
	}
}

func TestGraphLabelIndexes(t *testing.T) {
	g := figure1Graph(t)
	if got := len(g.NodesWithLabel("Person")); got != 2 {
		t.Errorf("Person nodes = %d, want 2", got)
	}
	if got := len(g.NodesWithLabel("Post")); got != 2 {
		t.Errorf("Post nodes = %d, want 2", got)
	}
	if got := len(g.EdgesWithLabel("KNOWS")); got != 2 {
		t.Errorf("KNOWS edges = %d, want 2", got)
	}
	wantNodeLabels := []string{"Organization", "Person", "Place", "Post"}
	if got := g.NodeLabels(); !reflect.DeepEqual(got, wantNodeLabels) {
		t.Errorf("NodeLabels = %v, want %v", got, wantNodeLabels)
	}
	wantEdgeLabels := []string{"KNOWS", "LIKES", "LOCATED_IN", "WORKS_AT"}
	if got := g.EdgeLabels(); !reflect.DeepEqual(got, wantEdgeLabels) {
		t.Errorf("EdgeLabels = %v, want %v", got, wantEdgeLabels)
	}
}

func TestGraphPropertyKeys(t *testing.T) {
	g := figure1Graph(t)
	wantNode := []string{"bday", "content", "gender", "imgFile", "name", "url"}
	if got := g.NodePropertyKeys(); !reflect.DeepEqual(got, wantNode) {
		t.Errorf("NodePropertyKeys = %v, want %v", got, wantNode)
	}
	wantEdge := []string{"from", "since"}
	if got := g.EdgePropertyKeys(); !reflect.DeepEqual(got, wantEdge) {
		t.Errorf("EdgePropertyKeys = %v, want %v", got, wantEdge)
	}
}

func TestGraphStatsMatchExample2(t *testing.T) {
	// Example 2 of the paper enumerates 6 node patterns and 6 edge patterns
	// for Figure 1.
	g := figure1Graph(t)
	s := g.ComputeStats()
	if s.NodePatterns != 6 {
		t.Errorf("NodePatterns = %d, want 6", s.NodePatterns)
	}
	if s.EdgePatterns != 6 {
		t.Errorf("EdgePatterns = %d, want 6", s.EdgePatterns)
	}
	if s.NodeLabels != 4 || s.EdgeLabels != 4 {
		t.Errorf("labels = (%d,%d), want (4,4)", s.NodeLabels, s.EdgeLabels)
	}
}

func TestAddEdgeRejectsMissingEndpoints(t *testing.T) {
	g := NewGraph()
	n := g.AddNode([]string{"A"}, nil)
	if _, err := g.AddEdge([]string{"E"}, n, 999, nil); err == nil {
		t.Error("AddEdge with missing target should fail")
	}
	if _, err := g.AddEdge([]string{"E"}, 999, n, nil); err == nil {
		t.Error("AddEdge with missing source should fail")
	}
}

func TestAddNodeWithIDDuplicate(t *testing.T) {
	g := NewGraph()
	if err := g.AddNodeWithID(5, []string{"A"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNodeWithID(5, []string{"B"}, nil); err == nil {
		t.Error("duplicate node ID should fail")
	}
	// Fresh IDs must not collide with explicit ones.
	if id := g.AddNode([]string{"C"}, nil); id <= 5 {
		t.Errorf("AddNode after AddNodeWithID(5) returned %d, want > 5", id)
	}
}

func TestNodeEdgeLookup(t *testing.T) {
	g := figure1Graph(t)
	if g.Node(0) == nil || g.Node(0).Props["name"].AsString() != "Bob" {
		t.Error("Node(0) should be Bob")
	}
	if g.Node(1234) != nil {
		t.Error("Node(1234) should be nil")
	}
	if g.Edge(0) == nil || g.Edge(0).LabelKey() != "KNOWS" {
		t.Error("Edge(0) should be KNOWS")
	}
	if g.Edge(999) != nil {
		t.Error("Edge(999) should be nil")
	}
}

func TestNodesEdgesEarlyStop(t *testing.T) {
	g := figure1Graph(t)
	count := 0
	g.Nodes(func(*Node) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early-stopped node scan visited %d, want 3", count)
	}
	count = 0
	g.Edges(func(*Edge) bool { count++; return false })
	if count != 1 {
		t.Errorf("early-stopped edge scan visited %d, want 1", count)
	}
}

func TestMaxDegrees(t *testing.T) {
	g := figure1Graph(t)
	deg := g.MaxDegrees()
	// KNOWS: alice->john, bob->john. Max out-degree 1, max in-degree 2.
	if d := deg["KNOWS"]; d.MaxOut != 1 || d.MaxIn != 2 {
		t.Errorf("KNOWS degrees = %+v, want MaxOut=1 MaxIn=2", d)
	}
	if d := deg["WORKS_AT"]; d.MaxOut != 1 || d.MaxIn != 1 {
		t.Errorf("WORKS_AT degrees = %+v, want MaxOut=1 MaxIn=1", d)
	}
}

func TestMaxDegreesMultiEdge(t *testing.T) {
	g := NewGraph()
	a := g.AddNode([]string{"A"}, nil)
	b1 := g.AddNode([]string{"B"}, nil)
	b2 := g.AddNode([]string{"B"}, nil)
	b3 := g.AddNode([]string{"B"}, nil)
	for _, dst := range []ID{b1, b2, b3} {
		mustEdge(t, g, []string{"R"}, a, dst, nil)
	}
	d := g.MaxDegrees()["R"]
	if d.MaxOut != 3 || d.MaxIn != 1 {
		t.Errorf("R degrees = %+v, want MaxOut=3 MaxIn=1", d)
	}
}
