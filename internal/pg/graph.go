package pg

import (
	"fmt"
	"sort"
)

// ID identifies a node or edge within a graph. Node and edge ID spaces are
// independent.
type ID int64

// Node is a property-graph node: an element of V with a (possibly empty)
// label set λ(v) and a property map π(v, ·) (Definition 3.1).
type Node struct {
	ID     ID
	Labels []string
	Props  Properties
}

// LabelKey returns the canonical key of the node's label set (sorted,
// "&"-joined; "" when unlabeled).
func (n *Node) LabelKey() string { return LabelSetKey(n.Labels) }

// Edge is a property-graph edge: an element of E with ρ(e) = (Src, Dst),
// a label set, and a property map (Definition 3.1).
type Edge struct {
	ID     ID
	Labels []string
	Src    ID
	Dst    ID
	Props  Properties
}

// LabelKey returns the canonical key of the edge's label set.
func (e *Edge) LabelKey() string { return LabelSetKey(e.Labels) }

// Graph is an in-memory property graph. It is append-only: elements are
// added and never removed, matching the paper's insertion-only incremental
// setting (§4.6; deletions are future work there too).
//
// Graph is not safe for concurrent mutation; concurrent reads are safe once
// loading has finished.
type Graph struct {
	nodes []Node
	edges []Edge

	nodeIndex map[ID]int32 // node ID -> position in nodes
	edgeIndex map[ID]int32 // edge ID -> position in edges

	nodeLabelIndex map[string][]ID // single label -> node IDs
	edgeLabelIndex map[string][]ID // single label -> edge IDs

	outEdges map[ID][]ID // node -> outgoing edge IDs
	inEdges  map[ID][]ID // node -> incoming edge IDs

	nextNodeID ID
	nextEdgeID ID
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		nodeIndex:      make(map[ID]int32),
		edgeIndex:      make(map[ID]int32),
		nodeLabelIndex: make(map[string][]ID),
		edgeLabelIndex: make(map[string][]ID),
		outEdges:       make(map[ID][]ID),
		inEdges:        make(map[ID][]ID),
	}
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode inserts a node with a fresh ID and returns it. The label slice and
// property map are retained by the graph and must not be mutated afterwards.
func (g *Graph) AddNode(labels []string, props Properties) ID {
	id := g.nextNodeID
	g.nextNodeID++
	g.addNodeWithID(id, labels, props)
	return id
}

// AddNodeWithID inserts a node under an explicit ID (used by loaders).
// It returns an error if the ID is already taken.
func (g *Graph) AddNodeWithID(id ID, labels []string, props Properties) error {
	if _, ok := g.nodeIndex[id]; ok {
		return fmt.Errorf("pg: duplicate node ID %d", id)
	}
	g.addNodeWithID(id, labels, props)
	if id >= g.nextNodeID {
		g.nextNodeID = id + 1
	}
	return nil
}

func (g *Graph) addNodeWithID(id ID, labels []string, props Properties) {
	g.nodeIndex[id] = int32(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Labels: labels, Props: props})
	for _, l := range labels {
		g.nodeLabelIndex[l] = append(g.nodeLabelIndex[l], id)
	}
}

// AddEdge inserts an edge with a fresh ID between existing nodes and returns
// its ID. It returns an error if either endpoint does not exist.
func (g *Graph) AddEdge(labels []string, src, dst ID, props Properties) (ID, error) {
	if _, ok := g.nodeIndex[src]; !ok {
		return 0, fmt.Errorf("pg: edge source node %d not found", src)
	}
	if _, ok := g.nodeIndex[dst]; !ok {
		return 0, fmt.Errorf("pg: edge target node %d not found", dst)
	}
	id := g.nextEdgeID
	g.nextEdgeID++
	g.insertEdge(id, labels, src, dst, props)
	return id, nil
}

func (g *Graph) insertEdge(id ID, labels []string, src, dst ID, props Properties) {
	g.edgeIndex[id] = int32(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, Labels: labels, Src: src, Dst: dst, Props: props})
	for _, l := range labels {
		g.edgeLabelIndex[l] = append(g.edgeLabelIndex[l], id)
	}
	g.outEdges[src] = append(g.outEdges[src], id)
	g.inEdges[dst] = append(g.inEdges[dst], id)
}

// AddEdgeWithID inserts an edge under an explicit ID (used by loaders and
// graph copies). It returns an error if the ID is taken or an endpoint is
// missing.
func (g *Graph) AddEdgeWithID(id ID, labels []string, src, dst ID, props Properties) error {
	if _, ok := g.edgeIndex[id]; ok {
		return fmt.Errorf("pg: duplicate edge ID %d", id)
	}
	if _, ok := g.nodeIndex[src]; !ok {
		return fmt.Errorf("pg: edge source node %d not found", src)
	}
	if _, ok := g.nodeIndex[dst]; !ok {
		return fmt.Errorf("pg: edge target node %d not found", dst)
	}
	g.insertEdge(id, labels, src, dst, props)
	if id >= g.nextEdgeID {
		g.nextEdgeID = id + 1
	}
	return nil
}

// Node returns the node with the given ID, or nil if absent. The returned
// pointer aliases graph storage and is invalidated by further AddNode calls.
func (g *Graph) Node(id ID) *Node {
	pos, ok := g.nodeIndex[id]
	if !ok {
		return nil
	}
	return &g.nodes[pos]
}

// Edge returns the edge with the given ID, or nil if absent.
func (g *Graph) Edge(id ID) *Edge {
	pos, ok := g.edgeIndex[id]
	if !ok {
		return nil
	}
	return &g.edges[pos]
}

// Nodes calls fn for every node in insertion order until fn returns false.
func (g *Graph) Nodes(fn func(*Node) bool) {
	for i := range g.nodes {
		if !fn(&g.nodes[i]) {
			return
		}
	}
}

// Edges calls fn for every edge in insertion order until fn returns false.
func (g *Graph) Edges(fn func(*Edge) bool) {
	for i := range g.edges {
		if !fn(&g.edges[i]) {
			return
		}
	}
}

// NodeAt returns the i-th node in insertion order.
func (g *Graph) NodeAt(i int) *Node { return &g.nodes[i] }

// EdgeAt returns the i-th edge in insertion order.
func (g *Graph) EdgeAt(i int) *Edge { return &g.edges[i] }

// NodesWithLabel returns the IDs of all nodes carrying the given label
// (possibly among others). The returned slice aliases the index.
func (g *Graph) NodesWithLabel(label string) []ID { return g.nodeLabelIndex[label] }

// EdgesWithLabel returns the IDs of all edges carrying the given label.
func (g *Graph) EdgesWithLabel(label string) []ID { return g.edgeLabelIndex[label] }

// NodeLabels returns the distinct node labels in sorted order.
func (g *Graph) NodeLabels() []string { return sortedKeys(g.nodeLabelIndex) }

// EdgeLabels returns the distinct edge labels in sorted order.
func (g *Graph) EdgeLabels() []string { return sortedKeys(g.edgeLabelIndex) }

func sortedKeys(m map[string][]ID) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NodePropertyKeys returns the distinct node property keys (the paper's K)
// in sorted order.
func (g *Graph) NodePropertyKeys() []string {
	seen := map[string]struct{}{}
	for i := range g.nodes {
		for k := range g.nodes[i].Props {
			seen[k] = struct{}{}
		}
	}
	return sortedSet(seen)
}

// EdgePropertyKeys returns the distinct edge property keys (the paper's Q)
// in sorted order.
func (g *Graph) EdgePropertyKeys() []string {
	seen := map[string]struct{}{}
	for i := range g.edges {
		for k := range g.edges[i].Props {
			seen[k] = struct{}{}
		}
	}
	return sortedSet(seen)
}

func sortedSet(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stats summarizes a graph the way the paper's Table 2 does.
type Stats struct {
	Nodes        int
	Edges        int
	NodeLabels   int // distinct single labels on nodes
	EdgeLabels   int // distinct single labels on edges
	NodePatterns int // distinct (label set, property key set) pairs (Def. 3.5)
	EdgePatterns int // distinct (label set, property key set, endpoint label sets) triples (Def. 3.6)
}

// ComputeStats scans the graph and returns its Table 2-style statistics.
func (g *Graph) ComputeStats() Stats {
	nodePat := map[string]struct{}{}
	for i := range g.nodes {
		n := &g.nodes[i]
		nodePat[n.LabelKey()+"|"+propKeySig(n.Props)] = struct{}{}
	}
	edgePat := map[string]struct{}{}
	for i := range g.edges {
		e := &g.edges[i]
		src, dst := g.Node(e.Src), g.Node(e.Dst)
		sig := e.LabelKey() + "|" + propKeySig(e.Props) + "|" + src.LabelKey() + ">" + dst.LabelKey()
		edgePat[sig] = struct{}{}
	}
	return Stats{
		Nodes:        len(g.nodes),
		Edges:        len(g.edges),
		NodeLabels:   len(g.nodeLabelIndex),
		EdgeLabels:   len(g.edgeLabelIndex),
		NodePatterns: len(nodePat),
		EdgePatterns: len(edgePat),
	}
}

func propKeySig(p Properties) string {
	keys := p.Keys()
	sort.Strings(keys)
	sig := ""
	for i, k := range keys {
		if i > 0 {
			sig += ","
		}
		sig += k
	}
	return sig
}

// MaxDegrees returns, for each edge label-set key, the maximum out-degree
// (distinct targets per source) and in-degree (distinct sources per target)
// observed in the data. This is the raw input to cardinality inference
// (§4.4): the counts are per edge type as approximated by the label key.
func (g *Graph) MaxDegrees() map[string]DegreePair {
	out := map[string]map[ID]int{}
	in := map[string]map[ID]int{}
	for i := range g.edges {
		e := &g.edges[i]
		key := e.LabelKey()
		if out[key] == nil {
			out[key] = map[ID]int{}
			in[key] = map[ID]int{}
		}
		out[key][e.Src]++
		in[key][e.Dst]++
	}
	res := make(map[string]DegreePair, len(out))
	for key, m := range out {
		var p DegreePair
		for _, c := range m {
			if c > p.MaxOut {
				p.MaxOut = c
			}
		}
		for _, c := range in[key] {
			if c > p.MaxIn {
				p.MaxIn = c
			}
		}
		res[key] = p
	}
	return res
}

// OutEdges returns the IDs of edges leaving the node (insertion order).
// The returned slice aliases the index.
func (g *Graph) OutEdges(node ID) []ID { return g.outEdges[node] }

// InEdges returns the IDs of edges entering the node.
func (g *Graph) InEdges(node ID) []ID { return g.inEdges[node] }

// DegreePair holds the maximum out- and in-degree of an edge type.
type DegreePair struct {
	MaxOut int
	MaxIn  int
}
