package pg

import (
	"bytes"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := figure1Graph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEquivalent(t, g, got)
	// Binary round trips preserve value kinds exactly (no textual
	// narrowing), so check one exactly.
	if v := got.Node(0).Props["bday"]; v.Kind() != KindDate {
		t.Errorf("bday kind = %v, want DATE", v.Kind())
	}
}

func TestBinaryAllValueKinds(t *testing.T) {
	g := NewGraph()
	g.AddNode([]string{"T"}, Properties{
		"i":  Int(-42),
		"f":  Float(3.75),
		"f2": Float(2), // integral float must stay DOUBLE in binary form
		"b":  Bool(true),
		"d":  ParseValue("2024-02-29"),
		"ts": ParseValue("2024-02-29T12:00:00Z"),
		"s":  Str("hello \x00 world"),
		"n":  Null(),
	})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	props := got.Node(0).Props
	orig := g.Node(0).Props
	for k, v := range orig {
		if !props[k].Equal(v) {
			t.Errorf("prop %q: %v (%v) != %v (%v)", k, props[k], props[k].Kind(), v, v.Kind())
		}
	}
	if props["f2"].Kind() != KindFloat {
		t.Errorf("integral float narrowed to %v in binary round trip", props["f2"].Kind())
	}
}

func TestBinarySmallerThanJSONL(t *testing.T) {
	g := NewGraph()
	ids := make([]ID, 0, 500)
	for i := 0; i < 500; i++ {
		ids = append(ids, g.AddNode([]string{"Person"}, Properties{
			"name": Str("someone"), "age": Int(int64(i % 90)), "active": Bool(i%2 == 0),
		}))
	}
	for i := 0; i < 499; i++ {
		if _, err := g.AddEdge([]string{"KNOWS"}, ids[i], ids[i+1], nil); err != nil {
			t.Fatal(err)
		}
	}
	var bin, jsonl bytes.Buffer
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&jsonl, g); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= jsonl.Len()/2 {
		t.Errorf("binary %d bytes vs JSONL %d bytes; want < half", bin.Len(), jsonl.Len())
	}
}

func TestBinaryErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad magic":  "NOPE!\nxxxxxx",
		"truncated":  binaryMagic,
		"corrupt":    binaryMagic + "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff",
		"string ref": binaryMagic + "\x00\x01\x00\x00",
	}
	for name, in := range cases {
		if _, err := ReadBinary(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	g := NewGraph()
	a := g.AddNode([]string{"A"}, Properties{"k": Int(1), "s": Str("x")})
	b := g.AddNode(nil, nil)
	if _, err := g.AddEdge([]string{"R"}, a, b, Properties{"w": Float(1.5)}); err != nil {
		f.Fatal(err)
	}
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(binaryMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		g.ComputeStats()
	})
}
