package pg

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The CSV format follows the Neo4j bulk-export convention the paper's
// datasets ship in: a node file with columns `_id,_labels,<prop>...` and an
// edge file with `_id,_labels,_src,_dst,<prop>...`. Labels are ";"-joined
// inside one cell; empty cells mean "property absent". Values are rendered
// and re-inferred with ParseValue.

// ParseError reports where a JSONL or CSV graph stream went bad: the
// format, the 1-based line (JSONL) or row (CSV) number, and the underlying
// cause. Loaders return it for every malformed-input failure, so ingestion
// layers can quarantine the offending line instead of discarding the whole
// stream.
type ParseError struct {
	// Format names the input format: "jsonl", "node csv" or "edge csv".
	Format string
	// Line is the 1-based line/row number of the offending element.
	Line int
	// Err is the underlying cause.
	Err error
}

// Error formats the position and cause.
func (e *ParseError) Error() string {
	return fmt.Sprintf("pg: %s line %d: %v", e.Format, e.Line, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *ParseError) Unwrap() error { return e.Err }

func parseErrorf(format string, line int, msg string, args ...any) *ParseError {
	return &ParseError{Format: format, Line: line, Err: fmt.Errorf(msg, args...)}
}

// WriteNodesCSV writes all nodes of g to w.
func WriteNodesCSV(w io.Writer, g *Graph) error {
	keys := g.NodePropertyKeys()
	cw := csv.NewWriter(w)
	header := append([]string{"_id", "_labels"}, keys...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	var werr error
	g.Nodes(func(n *Node) bool {
		row[0] = strconv.FormatInt(int64(n.ID), 10)
		row[1] = strings.Join(n.Labels, ";")
		for i, k := range keys {
			if v, ok := n.Props[k]; ok {
				row[2+i] = v.String()
			} else {
				row[2+i] = ""
			}
		}
		werr = cw.Write(row)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	cw.Flush()
	return cw.Error()
}

// WriteEdgesCSV writes all edges of g to w.
func WriteEdgesCSV(w io.Writer, g *Graph) error {
	keys := g.EdgePropertyKeys()
	cw := csv.NewWriter(w)
	header := append([]string{"_id", "_labels", "_src", "_dst"}, keys...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	var werr error
	g.Edges(func(e *Edge) bool {
		row[0] = strconv.FormatInt(int64(e.ID), 10)
		row[1] = strings.Join(e.Labels, ";")
		row[2] = strconv.FormatInt(int64(e.Src), 10)
		row[3] = strconv.FormatInt(int64(e.Dst), 10)
		for i, k := range keys {
			if v, ok := e.Props[k]; ok {
				row[4+i] = v.String()
			} else {
				row[4+i] = ""
			}
		}
		werr = cw.Write(row)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a graph from a node CSV stream and an edge CSV stream in the
// format produced by WriteNodesCSV / WriteEdgesCSV.
func ReadCSV(nodes, edges io.Reader) (*Graph, error) {
	g := NewGraph()
	if err := readNodesCSV(g, nodes); err != nil {
		return nil, err
	}
	if edges != nil {
		if err := readEdgesCSV(g, edges); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func readNodesCSV(g *Graph, r io.Reader) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return &ParseError{Format: "node csv", Line: 1, Err: fmt.Errorf("reading header: %w", err)}
	}
	if len(header) < 2 || header[0] != "_id" || header[1] != "_labels" {
		return parseErrorf("node csv", 1, "header must start with _id,_labels columns, got %v", header)
	}
	keys := append([]string(nil), header[2:]...)
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return &ParseError{Format: "node csv", Line: line, Err: err}
		}
		id, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return parseErrorf("node csv", line, "bad _id %q", row[0])
		}
		labels := splitLabels(row[1])
		props := Properties{}
		for i, k := range keys {
			if cell := row[2+i]; cell != "" {
				props[k] = ParseValue(cell)
			}
		}
		if err := g.AddNodeWithID(ID(id), labels, props); err != nil {
			return &ParseError{Format: "node csv", Line: line, Err: err}
		}
	}
}

func readEdgesCSV(g *Graph, r io.Reader) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return &ParseError{Format: "edge csv", Line: 1, Err: fmt.Errorf("reading header: %w", err)}
	}
	if len(header) < 4 || header[0] != "_id" || header[1] != "_labels" || header[2] != "_src" || header[3] != "_dst" {
		return parseErrorf("edge csv", 1, "header must start with _id,_labels,_src,_dst columns, got %v", header)
	}
	keys := append([]string(nil), header[4:]...)
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return &ParseError{Format: "edge csv", Line: line, Err: err}
		}
		src, err1 := strconv.ParseInt(row[2], 10, 64)
		dst, err2 := strconv.ParseInt(row[3], 10, 64)
		if err1 != nil || err2 != nil {
			return parseErrorf("edge csv", line, "bad endpoints %q -> %q", row[2], row[3])
		}
		labels := splitLabels(row[1])
		props := Properties{}
		for i, k := range keys {
			if cell := row[4+i]; cell != "" {
				props[k] = ParseValue(cell)
			}
		}
		if _, err := g.AddEdge(labels, ID(src), ID(dst), props); err != nil {
			return &ParseError{Format: "edge csv", Line: line, Err: err}
		}
	}
}

func splitLabels(cell string) []string {
	if cell == "" {
		return nil
	}
	return strings.Split(cell, ";")
}

// jsonElement is the JSONL wire form of one graph element.
type jsonElement struct {
	Type   string            `json:"type"` // "node" or "edge"
	ID     int64             `json:"id"`
	Labels []string          `json:"labels,omitempty"`
	Src    int64             `json:"src,omitempty"`
	Dst    int64             `json:"dst,omitempty"`
	Props  map[string]string `json:"props,omitempty"`
}

// WriteJSONL writes the graph as JSON Lines: one element per line, nodes
// first. Property values are rendered canonically and re-inferred on read.
func WriteJSONL(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var err error
	g.Nodes(func(n *Node) bool {
		err = enc.Encode(jsonElement{Type: "node", ID: int64(n.ID), Labels: n.Labels, Props: renderProps(n.Props)})
		return err == nil
	})
	if err != nil {
		return err
	}
	g.Edges(func(e *Edge) bool {
		err = enc.Encode(jsonElement{Type: "edge", ID: int64(e.ID), Labels: e.Labels, Src: int64(e.Src), Dst: int64(e.Dst), Props: renderProps(e.Props)})
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

func renderProps(p Properties) map[string]string {
	if len(p) == 0 {
		return nil
	}
	out := make(map[string]string, len(p))
	for k, v := range p {
		out[k] = v.String()
	}
	return out
}

// ReadJSONL loads a graph written by WriteJSONL. Edges may reference nodes
// on any earlier line.
func ReadJSONL(r io.Reader) (*Graph, error) {
	g := NewGraph()
	dec := json.NewDecoder(bufio.NewReader(r))
	for line := 1; ; line++ {
		var el jsonElement
		if err := dec.Decode(&el); err == io.EOF {
			return g, nil
		} else if err != nil {
			return nil, &ParseError{Format: "jsonl", Line: line, Err: err}
		}
		props := Properties{}
		for k, s := range el.Props {
			props[k] = ParseValue(s)
		}
		switch el.Type {
		case "node":
			if err := g.AddNodeWithID(ID(el.ID), el.Labels, props); err != nil {
				return nil, &ParseError{Format: "jsonl", Line: line, Err: err}
			}
		case "edge":
			if _, err := g.AddEdge(el.Labels, ID(el.Src), ID(el.Dst), props); err != nil {
				return nil, &ParseError{Format: "jsonl", Line: line, Err: err}
			}
		default:
			return nil, parseErrorf("jsonl", line, "unknown type %q", el.Type)
		}
	}
}

// SortedPropKeys returns the keys of p in sorted order. It is a shared
// helper for deterministic iteration in serializers and tests.
func SortedPropKeys(p Properties) []string {
	keys := p.Keys()
	sort.Strings(keys)
	return keys
}
