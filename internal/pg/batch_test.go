package pg

import (
	"testing"
	"testing/quick"
)

func TestSnapshotResolvesEndpointLabels(t *testing.T) {
	g := figure1Graph(t)
	b := g.Snapshot()
	if len(b.Nodes) != g.NumNodes() || len(b.Edges) != g.NumEdges() {
		t.Fatalf("snapshot size (%d,%d), want (%d,%d)", len(b.Nodes), len(b.Edges), g.NumNodes(), g.NumEdges())
	}
	for _, e := range b.Edges {
		wantSrc := LabelSetKey(g.Node(e.Src).Labels)
		wantDst := LabelSetKey(g.Node(e.Dst).Labels)
		if LabelSetKey(e.SrcLabels) != wantSrc || LabelSetKey(e.DstLabels) != wantDst {
			t.Errorf("edge %d endpoint labels (%q,%q), want (%q,%q)",
				e.ID, LabelSetKey(e.SrcLabels), LabelSetKey(e.DstLabels), wantSrc, wantDst)
		}
	}
}

func TestSplitRandomPartitions(t *testing.T) {
	g := figure1Graph(t)
	batches := g.SplitRandom(3, 42)
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3", len(batches))
	}
	nodes, edges := 0, 0
	seenNodes := map[ID]bool{}
	for _, b := range batches {
		nodes += len(b.Nodes)
		edges += len(b.Edges)
		for _, n := range b.Nodes {
			if seenNodes[n.ID] {
				t.Errorf("node %d appears in two batches", n.ID)
			}
			seenNodes[n.ID] = true
		}
	}
	if nodes != g.NumNodes() || edges != g.NumEdges() {
		t.Errorf("split covers (%d,%d) elements, want (%d,%d)", nodes, edges, g.NumNodes(), g.NumEdges())
	}
}

func TestSplitRandomDeterministic(t *testing.T) {
	g := figure1Graph(t)
	a := g.SplitRandom(4, 7)
	b := g.SplitRandom(4, 7)
	for i := range a {
		if len(a[i].Nodes) != len(b[i].Nodes) || len(a[i].Edges) != len(b[i].Edges) {
			t.Fatalf("batch %d differs across identical seeds", i)
		}
	}
}

func TestSplitRandomEdgesSelfContained(t *testing.T) {
	// Every edge record must carry endpoint labels even when the endpoint
	// node landed in a different batch.
	g := figure1Graph(t)
	for _, b := range g.SplitRandom(5, 1) {
		for _, e := range b.Edges {
			if g.Node(e.Src).LabelKey() != LabelSetKey(e.SrcLabels) {
				t.Errorf("edge %d src labels not resolved", e.ID)
			}
		}
	}
}

func TestSplitRandomPropertyQuick(t *testing.T) {
	g := figure1Graph(t)
	f := func(seed int64, n uint8) bool {
		k := int(n%10) + 1
		total := 0
		for _, b := range g.SplitRandom(k, seed) {
			total += b.Len()
		}
		return total == g.NumNodes()+g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSplitRandomClampsN(t *testing.T) {
	g := figure1Graph(t)
	if got := len(g.SplitRandom(0, 1)); got != 1 {
		t.Errorf("SplitRandom(0) produced %d batches, want 1", got)
	}
}

func TestSliceSource(t *testing.T) {
	b1, b2 := &Batch{}, &Batch{}
	s := NewSliceSource(b1, b2)
	if s.Remaining() != 2 {
		t.Errorf("Remaining = %d, want 2", s.Remaining())
	}
	if s.Next() != b1 || s.Next() != b2 {
		t.Error("SliceSource yielded batches out of order")
	}
	if s.Next() != nil {
		t.Error("exhausted source should return nil")
	}
	if s.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", s.Remaining())
	}
}
