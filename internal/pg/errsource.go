package pg

import (
	"errors"
	"fmt"
	"time"

	"pghive/internal/obs"
)

// Fault-tolerant ingestion: the fallible source interface and the fault
// model the discovery pipeline degrades under.
//
// A batch stream can fail three ways:
//
//   - Transiently (a flaky loader, a network hiccup): the delivery attempt
//     fails but a retry can succeed. Modeled by TransientError; RetrySource
//     absorbs these with exponential backoff.
//   - Poisoned batch (truncated file, corrupted records): the batch itself
//     is unusable but the stream continues. Modeled by CorruptBatchError;
//     the pipeline quarantines the batch (Result.Skipped) and keeps going —
//     the schema stays monotone, it just misses that batch's evidence.
//   - Permanently (the backing store died): any other error. The pipeline
//     aborts; with checkpointing enabled the run resumes from the last
//     checkpoint instead of starting over.

// ErrSource streams a property graph as a sequence of batches from a
// fallible backend. Next returns (nil, nil) when the stream is exhausted.
// A non-nil error classifies the failure: transient errors are retryable,
// corrupt-batch errors poison exactly one batch, anything else is
// permanent.
type ErrSource interface {
	Next() (*Batch, error)
}

// infallible adapts a legacy Source to ErrSource.
type infallible struct{ src Source }

func (a infallible) Next() (*Batch, error) { return a.src.Next(), nil }

// AsErrSource adapts a legacy infallible Source to the fallible interface.
// (The two interfaces cannot be implemented by one type — the Next
// signatures conflict — so the adapter is always a wrapper.)
func AsErrSource(src Source) ErrSource {
	return infallible{src: src}
}

// TransientError marks a retryable delivery failure: the batch at Seq was
// not delivered, but asking again may succeed.
type TransientError struct {
	// Seq is the 0-based index of the batch whose delivery failed.
	Seq int
	// Attempt is the 0-based delivery attempt that failed.
	Attempt int
	// Err is the underlying cause (may be nil for injected faults).
	Err error
}

// Error formats the failure.
func (e *TransientError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("pg: transient failure delivering batch %d (attempt %d): %v", e.Seq, e.Attempt, e.Err)
	}
	return fmt.Sprintf("pg: transient failure delivering batch %d (attempt %d)", e.Seq, e.Attempt)
}

// Unwrap exposes the cause.
func (e *TransientError) Unwrap() error { return e.Err }

// IsTransient reports whether err is (or wraps) a retryable delivery
// failure. A RetryExhaustedError is NOT transient even though it wraps the
// last transient cause: the budget is spent, so it escalates to permanent —
// otherwise an outer consumer would retry what the retry layer already
// gave up on.
func IsTransient(err error) bool {
	var ree *RetryExhaustedError
	if errors.As(err, &ree) {
		return false
	}
	var te *TransientError
	return errors.As(err, &te)
}

// CorruptBatchError marks a poisoned batch: the stream delivered garbage
// (truncated file, parse failure, checksum mismatch) for exactly one batch
// and has already moved past it. Retrying cannot help; the consumer should
// quarantine the batch and continue.
type CorruptBatchError struct {
	// Seq is the 0-based index of the poisoned batch.
	Seq int
	// Reason describes the corruption.
	Reason string
	// Partial holds whatever could still be decoded (nil when nothing),
	// for diagnostics; the pipeline does not ingest it.
	Partial *Batch
	// Err is the underlying cause when the corruption came from a real
	// decoder (e.g. a *ParseError); nil for injected faults.
	Err error
}

// Error formats the failure.
func (e *CorruptBatchError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("pg: corrupt batch %d (%s): %v", e.Seq, e.Reason, e.Err)
	}
	return fmt.Sprintf("pg: corrupt batch %d: %s", e.Seq, e.Reason)
}

// Unwrap exposes the cause.
func (e *CorruptBatchError) Unwrap() error { return e.Err }

// IsCorrupt reports whether err is (or wraps) a poisoned-batch failure.
func IsCorrupt(err error) bool {
	var ce *CorruptBatchError
	return errors.As(err, &ce)
}

// FaultProfile configures deterministic, seeded fault injection. Every
// rate is a probability in [0, 1]; decisions are pure functions of
// (Seed, batch seq, attempt), so two FaultSources with the same profile
// over the same stream inject byte-identical faults — the property the
// fault-injection test harness relies on.
type FaultProfile struct {
	// TransientRate is the per-attempt probability that a delivery fails
	// with a TransientError. Consecutive failures for one batch are capped
	// at MaxConsecutive, so a retrying consumer always converges.
	TransientRate float64
	// MaxConsecutive caps consecutive transient failures per batch
	// (0 means 8).
	MaxConsecutive int
	// CorruptRate is the per-batch probability that the batch is poisoned:
	// delivered as a CorruptBatchError with no payload.
	CorruptRate float64
	// TruncateRate is the per-batch probability that the batch arrives
	// truncated: a CorruptBatchError carrying the decodable prefix in
	// Partial.
	TruncateRate float64
	// FailAfter, when > 0, injects a permanent failure once that many
	// batches have been pulled from the wrapped source — the mid-stream
	// crash the checkpoint/resume path recovers from.
	FailAfter int
	// Latency, when > 0, delays every delivery attempt (a slow loader).
	Latency time.Duration
	// Seed drives all injection decisions.
	Seed int64
}

// ErrPermanentFault is the terminal error injected once FailAfter batches
// were pulled.
var ErrPermanentFault = errors.New("pg: injected permanent source failure")

// FaultSource wraps an ErrSource and injects deterministic, seeded
// failures according to a FaultProfile. It is the test double for every
// dirty-input scenario the fault-tolerant ingestion layer must survive.
type FaultSource struct {
	inner   ErrSource
	profile FaultProfile
	sleep   func(time.Duration)

	pending *Batch // pulled but not yet delivered (held across transient failures)
	seq     int    // index of the pending/next batch
	attempt int    // delivery attempts for the pending batch
	pulled  int    // batches pulled from inner (FailAfter budget)
	dead    bool   // permanent failure reached

	transients int // injected transient failures
	corrupted  int // injected poisoned batches (incl. truncations)
}

// NewFaultSource wraps src with fault injection.
func NewFaultSource(src ErrSource, p FaultProfile) *FaultSource {
	if p.MaxConsecutive <= 0 {
		p.MaxConsecutive = 8
	}
	return &FaultSource{inner: src, profile: p, sleep: time.Sleep}
}

// SetSleep overrides the latency clock (tests).
func (f *FaultSource) SetSleep(fn func(time.Duration)) { f.sleep = fn }

// Stats reports how many faults were injected so far.
func (f *FaultSource) Stats() (transients, corrupted int) {
	return f.transients, f.corrupted
}

// decide hashes (seed, seq, attempt, salt) to a uniform float in [0, 1).
func (f *FaultSource) decide(seq, attempt int, salt uint64) float64 {
	x := uint64(f.profile.Seed)
	x = splitmix64(x ^ uint64(seq)*0x9e3779b97f4a7c15)
	x = splitmix64(x ^ uint64(attempt)*0xbf58476d1ce4e5b9)
	x = splitmix64(x ^ salt)
	return float64(x>>11) / float64(1<<53)
}

const (
	saltTransient = 0x7472616e7369656e // "transien"
	saltCorrupt   = 0x636f727275707400 // "corrupt\0"
	saltTruncate  = 0x7472756e63617465 // "truncate"
	saltJitter    = 0x6a69747465720000 // "jitter\0\0"
)

// Next delivers the next batch, injecting faults per the profile.
func (f *FaultSource) Next() (*Batch, error) {
	if f.profile.Latency > 0 {
		f.sleep(f.profile.Latency)
	}
	if f.dead {
		return nil, ErrPermanentFault
	}

	// Pull the next batch if none is pending delivery.
	if f.pending == nil {
		if f.profile.FailAfter > 0 && f.pulled >= f.profile.FailAfter {
			f.dead = true
			return nil, ErrPermanentFault
		}
		b, err := f.inner.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		f.pulled++
		seq := f.pulled - 1

		// Poison decisions are made once per batch, at pull time.
		if f.profile.CorruptRate > 0 && f.decide(seq, 0, saltCorrupt) < f.profile.CorruptRate {
			f.corrupted++
			return nil, &CorruptBatchError{Seq: seq, Reason: "injected corruption"}
		}
		if f.profile.TruncateRate > 0 && f.decide(seq, 0, saltTruncate) < f.profile.TruncateRate {
			f.corrupted++
			return nil, &CorruptBatchError{Seq: seq, Reason: "injected truncation", Partial: truncateBatch(b, f.decide(seq, 1, saltTruncate))}
		}
		f.pending, f.seq, f.attempt = b, seq, 0
	}

	// Transient failure for this delivery attempt?
	if f.profile.TransientRate > 0 && f.attempt < f.profile.MaxConsecutive &&
		f.decide(f.seq, f.attempt, saltTransient) < f.profile.TransientRate {
		f.attempt++
		f.transients++
		return nil, &TransientError{Seq: f.seq, Attempt: f.attempt - 1}
	}

	b := f.pending
	f.pending = nil
	return b, nil
}

// truncateBatch keeps a frac prefix of the batch's records (at least one
// element short of complete, so a truncation is never a no-op).
func truncateBatch(b *Batch, frac float64) *Batch {
	n := int(float64(len(b.Nodes)) * frac)
	e := int(float64(len(b.Edges)) * frac)
	if n >= len(b.Nodes) && e >= len(b.Edges) {
		if e > 0 {
			e--
		} else if n > 0 {
			n--
		}
	}
	return &Batch{Nodes: b.Nodes[:n], Edges: b.Edges[:e]}
}

// RetryPolicy configures RetrySource: exponential backoff with jitter and
// a per-batch attempt budget.
type RetryPolicy struct {
	// MaxAttempts is the per-batch delivery budget, counting the first try
	// (0 means 5). When exhausted, the last transient error escalates to a
	// permanent RetryExhaustedError.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (0 means 10ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (0 means 5s).
	MaxDelay time.Duration
	// Jitter is the fraction of the delay randomized (0..1; scales the
	// delay by a uniform factor in [1-Jitter, 1+Jitter]). Deterministic
	// for a given Seed.
	Jitter float64
	// Seed drives the jitter.
	Seed int64
	// Sleep overrides the clock (tests); nil means time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// RetryExhaustedError escalates a transient failure after the attempt
// budget is spent.
type RetryExhaustedError struct {
	// Attempts is how many deliveries were tried.
	Attempts int
	// Err is the last transient error.
	Err error
}

// Error formats the failure.
func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("pg: retry budget exhausted after %d attempts: %v", e.Attempts, e.Err)
}

// Unwrap exposes the last transient error.
func (e *RetryExhaustedError) Unwrap() error { return e.Err }

// RetrySource wraps an ErrSource and absorbs transient failures with
// exponential backoff + jitter, within a per-batch attempt budget.
// Corrupt-batch and permanent errors pass through untouched — retrying
// cannot fix them.
type RetrySource struct {
	inner  ErrSource
	policy RetryPolicy
	instr  obs.Instr

	attempt  int // attempts spent on the current batch
	batchIdx int // monotone counter for jitter decorrelation

	retries      int           // total absorbed transient failures
	totalSleep   time.Duration // total backoff slept
	lastAttempts int           // delivery attempts the last Next outcome consumed
	lastErr      error         // last transient error absorbed or escalated
}

// NewRetrySource wraps src with the given retry policy.
func NewRetrySource(src ErrSource, p RetryPolicy) *RetrySource {
	return &RetrySource{inner: src, policy: p.withDefaults()}
}

// Stats reports absorbed retries and cumulative backoff.
func (r *RetrySource) Stats() (retries int, slept time.Duration) {
	return r.retries, r.totalSleep
}

// Attempts reports how many delivery attempts the most recent Next outcome
// consumed: 1 for a first-try success, n for a success after n-1 absorbed
// transients, and the full budget when it escalated to RetryExhaustedError.
// 0 before the first delivery completes.
func (r *RetrySource) Attempts() int { return r.lastAttempts }

// LastErr returns the most recent transient error seen (absorbed or
// escalated), nil if none occurred yet. Useful for logging what the retry
// layer has been hiding.
func (r *RetrySource) LastErr() error { return r.lastErr }

// Instrument attaches a telemetry sink: every absorbed transient emits
// CtrRetries, and every completed delivery (success or exhaustion) emits its
// attempt count as CtrRetryAttempts. A nil sink disables emission.
func (r *RetrySource) Instrument(s obs.Sink) { r.instr = obs.NewInstr(s) }

// Next delivers the next batch, retrying transient failures.
func (r *RetrySource) Next() (*Batch, error) {
	for {
		b, err := r.inner.Next()
		if err == nil {
			r.lastAttempts = r.attempt + 1
			r.instr.Add(obs.CtrRetryAttempts, uint64(r.lastAttempts))
			r.attempt = 0
			r.batchIdx++
			return b, nil
		}
		if !IsTransient(err) {
			// Corrupt or permanent: not retryable, pass through. A corrupt
			// batch still resets the budget — the next batch starts fresh.
			if IsCorrupt(err) {
				r.lastAttempts = r.attempt + 1
				r.instr.Add(obs.CtrRetryAttempts, uint64(r.lastAttempts))
				r.attempt = 0
				r.batchIdx++
			}
			return nil, err
		}
		r.lastErr = err
		r.attempt++
		if r.attempt >= r.policy.MaxAttempts {
			attempts := r.attempt
			r.lastAttempts = attempts
			r.instr.Add(obs.CtrRetryAttempts, uint64(attempts))
			r.attempt = 0
			r.batchIdx++
			return nil, &RetryExhaustedError{Attempts: attempts, Err: err}
		}
		r.retries++
		r.instr.Add(obs.CtrRetries, 1)
		d := r.backoff(r.attempt)
		r.totalSleep += d
		r.policy.Sleep(d)
	}
}

// backoff computes the attempt's delay: BaseDelay doubling per attempt,
// capped at MaxDelay, scaled by the deterministic jitter factor.
func (r *RetrySource) backoff(attempt int) time.Duration {
	d := r.policy.BaseDelay << (attempt - 1)
	if d > r.policy.MaxDelay || d <= 0 { // <= 0 guards shift overflow
		d = r.policy.MaxDelay
	}
	if r.policy.Jitter > 0 {
		x := splitmix64(uint64(r.policy.Seed) ^ uint64(r.batchIdx)*0x9e3779b97f4a7c15 ^ uint64(attempt) ^ saltJitter)
		u := float64(x>>11)/float64(1<<53)*2 - 1 // uniform in [-1, 1)
		d = time.Duration(float64(d) * (1 + r.policy.Jitter*u))
		if d < 0 {
			d = 0
		}
	}
	return d
}

// splitmix64 scrambles a 64-bit state into well-distributed bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
