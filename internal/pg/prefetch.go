package pg

import "sync"

// PrefetchSource wraps a Source with a background loader goroutine so the
// next batches are already in memory when the consumer asks for them — the
// load stage of the overlapped execution engine. Up to depth batches are
// buffered ahead of the consumer. Next returns batches in the wrapped
// source's order; the wrapper itself is a Source, so prefetching can be
// slotted in front of any pipeline.
//
// Next must not be called concurrently with itself. The wrapped source is
// only touched from the loader goroutine, so a Source reading from disk or
// a network store overlaps its I/O with the consumer's compute.
type PrefetchSource struct {
	ch   chan *Batch
	stop chan struct{}
	once sync.Once
}

// NewPrefetchSource starts prefetching from src, keeping up to depth
// batches (at least 1) buffered. Call Close when abandoning the source
// before exhaustion, or the loader goroutine blocks forever on a full
// buffer.
func NewPrefetchSource(src Source, depth int) *PrefetchSource {
	if depth < 1 {
		depth = 1
	}
	s := &PrefetchSource{
		ch:   make(chan *Batch, depth),
		stop: make(chan struct{}),
	}
	go func() {
		defer close(s.ch)
		for b := src.Next(); b != nil; b = src.Next() {
			select {
			case s.ch <- b:
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// Next returns the next batch, blocking until one is loaded, or nil when
// the wrapped source is exhausted (and forever after).
func (s *PrefetchSource) Next() *Batch {
	b, ok := <-s.ch
	if !ok {
		return nil
	}
	return b
}

// Close releases the loader goroutine. It is safe to call multiple times,
// after exhaustion, and concurrently with Next; batches already buffered
// remain readable.
func (s *PrefetchSource) Close() {
	s.once.Do(func() { close(s.stop) })
}
