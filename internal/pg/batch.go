package pg

import "math/rand"

// NodeRecord is the row shape the discovery pipeline consumes for a node:
// everything the paper's single load query returns (§4.1).
type NodeRecord struct {
	ID     ID
	Labels []string
	Props  Properties
}

// EdgeRecord is the row shape for an edge. Endpoint label sets are resolved
// at load time, so a batch is self-contained even when the endpoints were
// loaded in an earlier batch.
type EdgeRecord struct {
	ID        ID
	Labels    []string
	Src, Dst  ID
	SrcLabels []string
	DstLabels []string
	Props     Properties
}

// Batch is one unit of work for the incremental pipeline: a slice of the
// graph's nodes and edges (the paper's Gs_i).
type Batch struct {
	Nodes []NodeRecord
	Edges []EdgeRecord
}

// Len returns the total number of elements in the batch.
func (b *Batch) Len() int { return len(b.Nodes) + len(b.Edges) }

// Source streams a property graph as a sequence of batches. Next returns
// nil when the stream is exhausted.
type Source interface {
	Next() *Batch
}

// Snapshot extracts the whole graph as a single batch, resolving endpoint
// labels for every edge.
func (g *Graph) Snapshot() *Batch {
	b := &Batch{
		Nodes: make([]NodeRecord, 0, len(g.nodes)),
		Edges: make([]EdgeRecord, 0, len(g.edges)),
	}
	for i := range g.nodes {
		n := &g.nodes[i]
		b.Nodes = append(b.Nodes, NodeRecord{ID: n.ID, Labels: n.Labels, Props: n.Props})
	}
	for i := range g.edges {
		e := &g.edges[i]
		b.Edges = append(b.Edges, EdgeRecord{
			ID: e.ID, Labels: e.Labels, Src: e.Src, Dst: e.Dst,
			SrcLabels: g.Node(e.Src).Labels,
			DstLabels: g.Node(e.Dst).Labels,
			Props:     e.Props,
		})
	}
	return b
}

// SplitRandom partitions the graph into n batches by assigning each node and
// each edge to a uniformly random batch (the paper's incremental evaluation
// splits the graph into 10 random batches, §5.1). The split is deterministic
// for a given seed. Every batch's edges carry resolved endpoint labels from
// the full graph.
func (g *Graph) SplitRandom(n int, seed int64) []*Batch {
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	batches := make([]*Batch, n)
	for i := range batches {
		batches[i] = &Batch{}
	}
	for i := range g.nodes {
		nd := &g.nodes[i]
		b := batches[rng.Intn(n)]
		b.Nodes = append(b.Nodes, NodeRecord{ID: nd.ID, Labels: nd.Labels, Props: nd.Props})
	}
	for i := range g.edges {
		e := &g.edges[i]
		b := batches[rng.Intn(n)]
		b.Edges = append(b.Edges, EdgeRecord{
			ID: e.ID, Labels: e.Labels, Src: e.Src, Dst: e.Dst,
			SrcLabels: g.Node(e.Src).Labels,
			DstLabels: g.Node(e.Dst).Labels,
			Props:     e.Props,
		})
	}
	return batches
}

// SliceSource is a Source backed by a fixed slice of batches.
type SliceSource struct {
	batches []*Batch
	pos     int
}

// NewSliceSource returns a Source that yields the given batches in order.
func NewSliceSource(batches ...*Batch) *SliceSource {
	return &SliceSource{batches: batches}
}

// Next returns the next batch or nil when exhausted.
func (s *SliceSource) Next() *Batch {
	if s.pos >= len(s.batches) {
		return nil
	}
	b := s.batches[s.pos]
	s.pos++
	return b
}

// Remaining returns how many batches have not been consumed yet.
func (s *SliceSource) Remaining() int { return len(s.batches) - s.pos }
