package pg

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestParseValueKinds(t *testing.T) {
	tests := []struct {
		in   string
		kind Kind
	}{
		{"", KindNull},
		{"42", KindInt},
		{"-7", KindInt},
		{"0", KindInt},
		{"3.14", KindFloat},
		{"-0.5", KindFloat},
		{"1e9", KindFloat},
		{"true", KindBool},
		{"false", KindBool},
		{"TRUE", KindBool},
		{"2024-01-31", KindDate},
		{"19/12/1999", KindDate}, // the paper's Example 7 format
		{"2024-01-31T10:30:00Z", KindTimestamp},
		{"2024-01-31 10:30:00", KindTimestamp},
		{"hello", KindString},
		{"2024-13-45", KindString}, // date-shaped but invalid
		{"not/a/date", KindString},
	}
	for _, tc := range tests {
		if got := ParseValue(tc.in).Kind(); got != tc.kind {
			t.Errorf("ParseValue(%q).Kind() = %v, want %v", tc.in, got, tc.kind)
		}
	}
}

func TestParseValuePayloads(t *testing.T) {
	if v := ParseValue("42"); v.AsInt() != 42 {
		t.Errorf("AsInt = %d, want 42", v.AsInt())
	}
	if v := ParseValue("2.5"); v.AsFloat() != 2.5 {
		t.Errorf("AsFloat = %v, want 2.5", v.AsFloat())
	}
	if v := ParseValue("true"); !v.AsBool() {
		t.Error("AsBool = false, want true")
	}
	v := ParseValue("19/12/1999")
	if y, m, d := v.AsTime().Date(); y != 1999 || m != time.December || d != 19 {
		t.Errorf("date payload = %v, want 1999-12-19", v.AsTime())
	}
}

func TestValueStringRoundTrip(t *testing.T) {
	values := []Value{
		Int(0), Int(-12345), Int(1 << 40),
		Float(3.25), Float(-1e-9),
		Bool(true), Bool(false),
		Date(time.Date(2020, 2, 29, 0, 0, 0, 0, time.UTC)),
		Timestamp(time.Date(2021, 6, 1, 12, 30, 15, 0, time.UTC)),
		Str("plain"),
	}
	for _, v := range values {
		got := ParseValue(v.String())
		if !got.Equal(v) {
			t.Errorf("round trip of %v (%v): got %v (%v)", v, v.Kind(), got, got.Kind())
		}
	}
}

func TestFloatRoundTripAmbiguity(t *testing.T) {
	// A float with an integral value renders like an int and is re-inferred
	// as int. This is inherent to textual round-tripping; it is the same
	// DOUBLE-vs-INTEGER ambiguity the paper discusses for Figure 8.
	v := ParseValue(Float(2).String())
	if v.Kind() != KindInt || v.AsInt() != 2 {
		t.Errorf("Float(2) round trip = %v (%v), want INT 2", v, v.Kind())
	}
}

// randomValue builds an arbitrary Value from quick-generated inputs.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Int(r.Int63() - r.Int63())
	case 1:
		return Float(r.NormFloat64() * 100)
	case 2:
		return Bool(r.Intn(2) == 0)
	case 3:
		return Date(time.Unix(r.Int63n(4e9), 0).UTC())
	case 4:
		return Timestamp(time.Unix(r.Int63n(4e9), int64(r.Intn(1e9))).UTC().Truncate(time.Second))
	default:
		letters := []rune("abcdefg XYZ-_.")
		n := r.Intn(12)
		s := make([]rune, n)
		for i := range s {
			s[i] = letters[r.Intn(len(letters))]
		}
		return Str(string(s))
	}
}

func TestValueEqualReflexiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		v := randomValue(rand.New(rand.NewSource(seed)))
		return v.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseValueNeverPanicsQuick(t *testing.T) {
	f := func(s string) bool {
		v := ParseValue(s)
		_ = v.String()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseValueCompatibleRoundTripQuick(t *testing.T) {
	// For every generated value v, ParseValue(v.String()) must produce a
	// value whose payload is numerically/temporally compatible with v even
	// when the kind narrows (e.g. 2.0 -> 2).
	f := func(seed int64) bool {
		v := randomValue(rand.New(rand.NewSource(seed)))
		got := ParseValue(v.String())
		switch v.Kind() {
		case KindInt:
			return got.Kind() == KindInt && got.AsInt() == v.AsInt()
		case KindFloat:
			return (got.Kind() == KindFloat || got.Kind() == KindInt) &&
				math.Abs(got.AsFloat()-v.AsFloat()) <= 1e-9*math.Max(1, math.Abs(v.AsFloat()))
		case KindBool:
			return got.Kind() == KindBool && got.AsBool() == v.AsBool()
		case KindDate:
			return got.Kind() == KindDate && got.AsTime().Equal(v.AsTime())
		case KindTimestamp:
			return got.Kind() == KindTimestamp && got.AsTime().Equal(v.AsTime())
		default:
			// Strings may re-infer as anything; String() must round-trip text.
			return got.String() == v.String() || v.AsString() == ""
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestLabelSetKey(t *testing.T) {
	tests := []struct {
		in   []string
		want string
	}{
		{nil, ""},
		{[]string{}, ""},
		{[]string{"Person"}, "Person"},
		{[]string{"Student", "Person"}, "Person&Student"},
		{[]string{"Person", "Student"}, "Person&Student"},
		{[]string{"c", "a", "b"}, "a&b&c"},
	}
	for _, tc := range tests {
		if got := LabelSetKey(tc.in); got != tc.want {
			t.Errorf("LabelSetKey(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestLabelSetKeyPermutationInvariantQuick(t *testing.T) {
	f := func(a, b, c string, seed int64) bool {
		labels := []string{a, b, c}
		shuffled := append([]string(nil), labels...)
		rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		return LabelSetKey(labels) == LabelSetKey(shuffled)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLabelSetKeyDoesNotMutate(t *testing.T) {
	labels := []string{"b", "a"}
	LabelSetKey(labels)
	if !reflect.DeepEqual(labels, []string{"b", "a"}) {
		t.Errorf("LabelSetKey mutated its argument: %v", labels)
	}
}

func TestPropertiesClone(t *testing.T) {
	p := Properties{"a": Int(1)}
	c := p.Clone()
	c["b"] = Int(2)
	if _, ok := p["b"]; ok {
		t.Error("Clone shares storage with original")
	}
	if Properties(nil).Clone() != nil {
		t.Error("nil Clone should be nil")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "DOUBLE",
		KindBool: "BOOLEAN", KindDate: "DATE", KindTimestamp: "TIMESTAMP",
		KindString: "STRING",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestKindFromStringRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindNull, KindInt, KindFloat, KindBool, KindDate, KindTimestamp, KindString} {
		if got := KindFromString(k.String()); got != k {
			t.Errorf("KindFromString(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if KindFromString("nonsense") != KindString {
		t.Error("unknown spellings should default to STRING")
	}
}
