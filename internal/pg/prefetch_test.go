package pg

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestPrefetchPreservesOrder(t *testing.T) {
	batches := make([]*Batch, 5)
	for i := range batches {
		batches[i] = &Batch{Nodes: make([]NodeRecord, i+1)}
	}
	pf := NewPrefetchSource(NewSliceSource(batches...), 2)
	defer pf.Close()
	for i, want := range batches {
		got := pf.Next()
		if got != want {
			t.Fatalf("batch %d: got %p, want %p", i, got, want)
		}
	}
	if pf.Next() != nil || pf.Next() != nil {
		t.Error("exhausted prefetch source must keep returning nil")
	}
}

func TestPrefetchDepthClamped(t *testing.T) {
	pf := NewPrefetchSource(NewSliceSource(&Batch{}), 0)
	defer pf.Close()
	if pf.Next() == nil {
		t.Fatal("depth clamp broke delivery")
	}
	if pf.Next() != nil {
		t.Error("want nil after exhaustion")
	}
}

// endlessSource yields batches forever, counting how many were pulled.
type endlessSource struct{ calls atomic.Int64 }

func (s *endlessSource) Next() *Batch {
	s.calls.Add(1)
	return &Batch{}
}

func TestPrefetchCloseStopsLoader(t *testing.T) {
	src := &endlessSource{}
	pf := NewPrefetchSource(src, 1)
	if pf.Next() == nil {
		t.Fatal("expected a batch")
	}
	pf.Close()
	pf.Close() // idempotent

	// The loader may complete at most a couple of in-flight Next calls
	// after Close; afterwards the count must stop growing.
	var settled int64
	deadline := time.Now().Add(2 * time.Second)
	for {
		settled = src.calls.Load()
		time.Sleep(20 * time.Millisecond)
		if src.calls.Load() == settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("loader did not settle after Close")
		}
	}
	time.Sleep(50 * time.Millisecond)
	if got := src.calls.Load(); got != settled {
		t.Errorf("loader kept pulling after Close: %d -> %d", settled, got)
	}
}

func TestPrefetchBuffersAhead(t *testing.T) {
	src := &endlessSource{}
	pf := NewPrefetchSource(src, 3)
	defer pf.Close()
	// Without consuming anything, the loader should fill the buffer (3)
	// plus hold one batch in flight.
	deadline := time.Now().Add(2 * time.Second)
	for src.calls.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("loader prefetched only %d batches", src.calls.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
