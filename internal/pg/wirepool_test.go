package pg

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// poolBatch builds a batch whose strings are massively repeated — the shape
// interning exists for: every node is a Person with the same two property
// keys.
func poolBatch(nodes int) *Batch {
	b := &Batch{}
	for i := 0; i < nodes; i++ {
		b.Nodes = append(b.Nodes, NodeRecord{
			ID:     ID(i + 1),
			Labels: []string{"Person"},
			Props:  Properties{"name": Str("p"), "age": Int(int64(i))},
		})
	}
	for i := 0; i < nodes/2; i++ {
		b.Edges = append(b.Edges, EdgeRecord{
			ID: ID(nodes + i + 1), Labels: []string{"KNOWS"},
			Src: ID(2*i + 1), Dst: ID(2*i + 2),
			SrcLabels: []string{"Person"}, DstLabels: []string{"Person"},
			Props: Properties{"since": Int(2020)},
		})
	}
	return b
}

func encodeBatch(t testing.TB, b *Batch) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWireWriter(&buf)
	if err := WriteBatch(w, b); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWireReaderReset(t *testing.T) {
	b := poolBatch(8)
	enc := encodeBatch(t, b)
	r := NewWireReader(bytes.NewReader(enc))
	first, err := ReadBatch(r)
	if err != nil {
		t.Fatal(err)
	}
	// Same reader, fresh stream: the warm scratch buffer and intern table
	// must decode an identical batch.
	r.Reset(bytes.NewReader(enc))
	second, err := ReadBatch(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Nodes) != len(second.Nodes) || len(first.Edges) != len(second.Edges) {
		t.Fatalf("reset decode differs: %d/%d vs %d/%d nodes/edges",
			len(first.Nodes), len(first.Edges), len(second.Nodes), len(second.Edges))
	}
	for i := range first.Nodes {
		if first.Nodes[i].Labels[0] != second.Nodes[i].Labels[0] {
			t.Fatalf("node %d labels differ after reset", i)
		}
	}
}

func TestInternedStringRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWireWriter(&buf)
	long := strings.Repeat("x", maxInternLen+1)
	huge := strings.Repeat("y", 3*scratchChunk+17)
	for _, s := range []string{"Person", "Person", "", "age", long, huge, "Person"} {
		w.String(s)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewWireReader(bytes.NewReader(buf.Bytes()))
	for i, want := range []string{"Person", "Person", "", "age", long, huge, "Person"} {
		got, err := r.InternedString()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("read %d = %q, want %q", i, got[:min2(len(got), 32)], want[:min2(len(want), 32)])
		}
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestInternTableBounded: strings past the entry cap still decode correctly,
// the table just stops growing.
func TestInternTableBounded(t *testing.T) {
	var buf bytes.Buffer
	w := NewWireWriter(&buf)
	const n = maxInternEntries + 64
	for i := 0; i < n; i++ {
		w.String(fmt.Sprintf("k%06d", i))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewWireReader(bytes.NewReader(buf.Bytes()))
	for i := 0; i < n; i++ {
		got, err := r.InternedString()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("k%06d", i); got != want {
			t.Fatalf("string %d = %q, want %q", i, got, want)
		}
	}
	if len(r.intern) > maxInternEntries {
		t.Fatalf("intern table grew past the cap: %d", len(r.intern))
	}
}

// TestReadBatchAllocBound pins the interning win: with a warm reader, a
// decode's allocations are bounded by the batch's structural needs (record
// slices, label slices, property maps, value strings) — the label and
// property-key strings themselves, ~4 per element here, come from the intern
// table and cost nothing. Without interning this workload allocates roughly
// double.
func TestReadBatchAllocBound(t *testing.T) {
	const nodes = 256
	b := poolBatch(nodes)
	enc := encodeBatch(t, b)
	r := NewWireReader(bytes.NewReader(enc))
	if _, err := ReadBatch(r); err != nil { // warm the intern table
		t.Fatal(err)
	}
	elements := len(b.Nodes) + len(b.Edges)
	allocs := testing.AllocsPerRun(20, func() {
		r.Reset(bytes.NewReader(enc))
		if _, err := ReadBatch(r); err != nil {
			t.Fatal(err)
		}
	})
	// Structural floor per element: labels slice + props map + one value
	// string ≈ 3–4 allocs. The uninterned decoder adds ~4 string allocs per
	// element on top (label, key, src/dst labels), landing near 8/element.
	// 5.5/element holds the interned path with headroom while staying far
	// below the uninterned cost.
	if perElem := allocs / float64(elements); perElem > 5.5 {
		t.Fatalf("ReadBatch allocs/element = %.2f (total %.0f for %d elements) — interning regressed",
			perElem, allocs, elements)
	}
}

// BenchmarkReadBatchWarm measures the steady-state spill-queue decode path:
// one reader, warm intern table, reused scratch buffer.
func BenchmarkReadBatchWarm(bm *testing.B) {
	b := poolBatch(512)
	enc := encodeBatch(bm, b)
	r := NewWireReader(bytes.NewReader(enc))
	if _, err := ReadBatch(r); err != nil {
		bm.Fatal(err)
	}
	bm.SetBytes(int64(len(enc)))
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		r.Reset(bytes.NewReader(enc))
		if _, err := ReadBatch(r); err != nil {
			bm.Fatal(err)
		}
	}
}

// BenchmarkReadBatchCold decodes with a fresh reader every time — a cold
// scratch buffer and intern table per batch, which is what the spill queue
// paid before it started reusing its decoder.
func BenchmarkReadBatchCold(bm *testing.B) {
	b := poolBatch(512)
	enc := encodeBatch(bm, b)
	bm.SetBytes(int64(len(enc)))
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		if _, err := ReadBatch(NewWireReader(bytes.NewReader(enc))); err != nil {
			bm.Fatal(err)
		}
	}
}
