package pg

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func graphsEquivalent(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)", a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	a.Nodes(func(n *Node) bool {
		m := b.Node(n.ID)
		if m == nil {
			t.Fatalf("node %d missing after round trip", n.ID)
		}
		if n.LabelKey() != m.LabelKey() {
			t.Errorf("node %d labels %q != %q", n.ID, n.LabelKey(), m.LabelKey())
		}
		if len(n.Props) != len(m.Props) {
			t.Errorf("node %d props %d != %d", n.ID, len(n.Props), len(m.Props))
		}
		for k, v := range n.Props {
			if got, ok := m.Props[k]; !ok || !valuesCompatible(v, got) {
				t.Errorf("node %d prop %q: %v (%v) != %v (%v)", n.ID, k, v, v.Kind(), got, got.Kind())
			}
		}
		return true
	})
	sa, sb := a.ComputeStats(), b.ComputeStats()
	if sa != sb {
		t.Errorf("stats differ after round trip: %+v vs %+v", sa, sb)
	}
}

// valuesCompatible tolerates the INT/DOUBLE textual narrowing (2.0 -> 2).
func valuesCompatible(a, b Value) bool {
	if a.Equal(b) {
		return true
	}
	numeric := func(k Kind) bool { return k == KindInt || k == KindFloat }
	return numeric(a.Kind()) && numeric(b.Kind()) && a.AsFloat() == b.AsFloat()
}

func TestCSVRoundTrip(t *testing.T) {
	g := figure1Graph(t)
	var nodes, edges bytes.Buffer
	if err := WriteNodesCSV(&nodes, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgesCSV(&edges, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&nodes, &edges)
	if err != nil {
		t.Fatal(err)
	}
	graphsEquivalent(t, g, got)
}

func TestJSONLRoundTrip(t *testing.T) {
	g := figure1Graph(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEquivalent(t, g, got)
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name     string
		nodes    string
		edges    string
		wantFmt  string
		wantLine int
	}{
		{"bad node header", "id,stuff\n1,x\n", "", "node csv", 1},
		{"bad node id", "_id,_labels\nxyz,A\n", "", "node csv", 2},
		{"bad edge header", "_id,_labels\n1,A\n", "foo,bar\n", "edge csv", 1},
		{"bad edge endpoint", "_id,_labels\n1,A\n", "_id,_labels,_src,_dst\n1,R,1,zz\n", "edge csv", 2},
		{"dangling edge", "_id,_labels\n1,A\n", "_id,_labels,_src,_dst\n1,R,1,99\n", "edge csv", 2},
		{"duplicate node id", "_id,_labels\n1,A\n1,B\n", "", "node csv", 3},
		{"truncated node row", "_id,_labels,name\n1,A,x\n2,B\n", "", "node csv", 3},
		{"unbalanced quotes", "_id,_labels\n1,\"A\n", "", "node csv", 2},
		{"short row line 4", "_id,_labels,a,b\n1,A,x,y\n2,A,x,y\n3,A\n", "", "node csv", 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var edges *strings.Reader
			if tc.edges != "" {
				edges = strings.NewReader(tc.edges)
			}
			var err error
			if edges != nil {
				_, err = ReadCSV(strings.NewReader(tc.nodes), edges)
			} else {
				_, err = ReadCSV(strings.NewReader(tc.nodes), nil)
			}
			if err == nil {
				t.Fatal("want error, got nil")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v (%T) is not a *ParseError", err, err)
			}
			if pe.Format != tc.wantFmt {
				t.Errorf("ParseError.Format = %q, want %q", pe.Format, tc.wantFmt)
			}
			if pe.Line != tc.wantLine {
				t.Errorf("ParseError.Line = %d, want %d (err: %v)", pe.Line, tc.wantLine, pe)
			}
			if pe.Err == nil {
				t.Error("ParseError.Err is nil")
			}
		})
	}
}

func TestReadJSONLErrors(t *testing.T) {
	tests := []struct {
		name     string
		in       string
		wantLine int
	}{
		{"unknown type", `{"type":"blob","id":1}`, 1},
		{"dangling edge", `{"type":"edge","id":1,"src":5,"dst":6}`, 1},
		{"garbage", `{{{`, 1},
		{"duplicate node", "{\"type\":\"node\",\"id\":1}\n{\"type\":\"node\",\"id\":1}", 2},
		{"truncated mid-object", "{\"type\":\"node\",\"id\":1}\n{\"type\":\"no", 2},
		{"wrong field type", "{\"type\":\"node\",\"id\":1}\n{\"type\":\"node\",\"id\":\"two\"}", 2},
		{"bare text", "not json at all", 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSONL(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v (%T) is not a *ParseError", err, err)
			}
			if pe.Format != "jsonl" {
				t.Errorf("ParseError.Format = %q, want jsonl", pe.Format)
			}
			if pe.Line != tc.wantLine {
				t.Errorf("ParseError.Line = %d, want %d (err: %v)", pe.Line, tc.wantLine, pe)
			}
		})
	}
}

func TestParseErrorUnwrap(t *testing.T) {
	cause := errors.New("boom")
	pe := &ParseError{Format: "jsonl", Line: 3, Err: cause}
	if !errors.Is(pe, cause) {
		t.Error("ParseError should unwrap to its cause")
	}
	if got := pe.Error(); !strings.Contains(got, "line 3") || !strings.Contains(got, "jsonl") {
		t.Errorf("ParseError.Error() = %q, want format and line in message", got)
	}
}

func TestCSVMissingCellMeansAbsentProperty(t *testing.T) {
	nodes := "_id,_labels,name,age\n1,Person,Ann,30\n2,Person,Ben,\n"
	g, err := ReadCSV(strings.NewReader(nodes), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Node(2).Props["age"]; ok {
		t.Error("empty CSV cell should mean property absent, not empty value")
	}
	if g.Node(1).Props["age"].AsInt() != 30 {
		t.Error("age should parse as INT 30")
	}
}

func TestCSVUnlabeledNode(t *testing.T) {
	nodes := "_id,_labels,name\n1,,Ann\n"
	g, err := ReadCSV(strings.NewReader(nodes), nil)
	if err != nil {
		t.Fatal(err)
	}
	if k := g.Node(1).LabelKey(); k != "" {
		t.Errorf("unlabeled node key = %q, want empty", k)
	}
}
