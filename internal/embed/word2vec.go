// Package embed implements Word2Vec — skip-gram with negative sampling
// (Mikolov et al. 2013) — over label-token sentences. PG-HIVE trains a
// Word2Vec model on the node and edge labels observed in the dataset so
// that identical label sets map to identical embeddings and co-occurring
// labels map to nearby ones (§4.1 of the paper).
//
// The implementation is deterministic for a fixed seed and depends only on
// the standard library.
package embed

import (
	"math"
	"math/rand"
	"sort"
)

// Config holds Word2Vec training hyperparameters.
type Config struct {
	// Dim is the embedding dimensionality d. The paper's examples use small
	// fixed dimensions; the default is 16.
	Dim int
	// Window is the skip-gram context window radius. Default 2 (label
	// sentences are short triples).
	Window int
	// Epochs is the number of passes over the corpus. Default 15.
	Epochs int
	// Negative is the number of negative samples per positive pair.
	// Default 5.
	Negative int
	// LearningRate is the initial SGD step size, linearly decayed to 10% of
	// its initial value. Default 0.05.
	LearningRate float64
	// Seed drives all randomness (initialization, negative sampling,
	// shuffling).
	Seed int64
	// Normalize, if true, rescales each output vector to unit L2 norm so
	// embedding distances are on a stable scale next to binary property
	// indicators. Default true (set by DefaultConfig).
	Normalize bool
}

// DefaultConfig returns the configuration used by the PG-HIVE pipeline.
func DefaultConfig() Config {
	return Config{Dim: 16, Window: 2, Epochs: 15, Negative: 5, LearningRate: 0.05, Seed: 1, Normalize: true}
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 16
	}
	if c.Window <= 0 {
		c.Window = 2
	}
	if c.Epochs <= 0 {
		c.Epochs = 15
	}
	if c.Negative <= 0 {
		c.Negative = 5
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.05
	}
	return c
}

// Model is a trained Word2Vec model: a dense vector per vocabulary token.
type Model struct {
	dim    int
	vocab  map[string]int
	vecs   [][]float64 // input (word) vectors, one per vocab entry
	tokens []string
}

// NewModel returns an empty model of the given dimensionality. Tokens are
// added with Set. The vectorize session uses this to grow a combined
// embedding table across batches instead of retraining from scratch.
func NewModel(dim int) *Model {
	return &Model{dim: dim, vocab: map[string]int{}}
}

// Set inserts or replaces a token's embedding. The vector is stored by
// reference (the caller must not mutate it afterwards) and must match the
// model's dimensionality. Not safe for use concurrently with Vector.
func (m *Model) Set(token string, vec []float64) {
	if len(vec) != m.dim {
		panic("embed: Set vector dimensionality mismatch")
	}
	if idx, ok := m.vocab[token]; ok {
		m.vecs[idx] = vec
		return
	}
	m.vocab[token] = len(m.tokens)
	m.tokens = append(m.tokens, token)
	m.vecs = append(m.vecs, vec)
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.dim }

// VocabSize returns the number of distinct tokens.
func (m *Model) VocabSize() int { return len(m.tokens) }

// Tokens returns the vocabulary in sorted order.
func (m *Model) Tokens() []string {
	out := append([]string(nil), m.tokens...)
	sort.Strings(out)
	return out
}

// Vector returns the embedding of token, or a zero vector when the token is
// unknown or empty. This matches the paper's treatment of unlabeled
// elements: the label slot is a zero vector of size d (§4.1, Example 3).
// The returned slice must not be mutated.
func (m *Model) Vector(token string) []float64 {
	if idx, ok := m.vocab[token]; ok {
		return m.vecs[idx]
	}
	return make([]float64, m.dim)
}

// Has reports whether the token is in the vocabulary.
func (m *Model) Has(token string) bool {
	_, ok := m.vocab[token]
	return ok
}

// CosineSimilarity returns the cosine similarity of two tokens' embeddings,
// or 0 when either is unknown.
func (m *Model) CosineSimilarity(a, b string) float64 {
	va, vb := m.Vector(a), m.Vector(b)
	var dot, na, nb float64
	for i := range va {
		dot += va[i] * vb[i]
		na += va[i] * va[i]
		nb += vb[i] * vb[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Train fits a skip-gram-with-negative-sampling model on the corpus: a
// slice of sentences, each a slice of tokens. Empty tokens are skipped
// (they denote missing labels). Sentences with fewer than two non-empty
// tokens contribute nothing to training but still enter the vocabulary so
// that every observed label has a stable embedding.
func Train(corpus [][]string, cfg Config) *Model {
	cfg = cfg.withDefaults()
	m := &Model{dim: cfg.Dim, vocab: map[string]int{}}

	counts := []int{}
	var clean [][]int
	for _, sentence := range corpus {
		ids := make([]int, 0, len(sentence))
		for _, tok := range sentence {
			if tok == "" {
				continue
			}
			idx, ok := m.vocab[tok]
			if !ok {
				idx = len(m.tokens)
				m.vocab[tok] = idx
				m.tokens = append(m.tokens, tok)
				counts = append(counts, 0)
			}
			counts[idx]++
			ids = append(ids, idx)
		}
		if len(ids) >= 2 {
			clean = append(clean, ids)
		}
	}

	v := len(m.tokens)
	rng := rand.New(rand.NewSource(cfg.Seed))
	m.vecs = make([][]float64, v)
	ctx := make([][]float64, v) // output (context) vectors
	for i := 0; i < v; i++ {
		m.vecs[i] = make([]float64, cfg.Dim)
		ctx[i] = make([]float64, cfg.Dim)
		for d := 0; d < cfg.Dim; d++ {
			m.vecs[i][d] = (rng.Float64() - 0.5) / float64(cfg.Dim)
		}
	}

	if len(clean) > 0 && v > 1 {
		table := buildSamplingTable(counts)
		trainSGNS(m.vecs, ctx, clean, table, cfg, rng)
	}

	if cfg.Normalize {
		for i := range m.vecs {
			normalize(m.vecs[i])
		}
	}
	return m
}

// buildSamplingTable returns a cumulative distribution over the vocabulary
// proportional to count^0.75, the standard unigram smoothing for negative
// sampling.
func buildSamplingTable(counts []int) []float64 {
	cdf := make([]float64, len(counts))
	total := 0.0
	for i, c := range counts {
		total += math.Pow(float64(c), 0.75)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return cdf
}

func sampleToken(cdf []float64, rng *rand.Rand) int {
	x := rng.Float64()
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func trainSGNS(vecs, ctx [][]float64, sentences [][]int, cdf []float64, cfg Config, rng *rand.Rand) {
	totalPairs := 0
	for _, s := range sentences {
		totalPairs += len(s) * (2 * cfg.Window)
	}
	step := 0
	grad := make([]float64, cfg.Dim)
	order := make([]int, len(sentences))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, si := range order {
			s := sentences[si]
			for pos, center := range s {
				for off := -cfg.Window; off <= cfg.Window; off++ {
					cpos := pos + off
					if off == 0 || cpos < 0 || cpos >= len(s) {
						continue
					}
					progress := float64(step) / float64(cfg.Epochs*totalPairs+1)
					lr := cfg.LearningRate * (1 - 0.9*progress)
					step++
					trainPair(vecs[center], ctx, s[cpos], cdf, cfg.Negative, lr, rng, grad)
				}
			}
		}
	}
}

// trainPair performs one SGD step for (center, context) plus negatives.
func trainPair(center []float64, ctx [][]float64, target int, cdf []float64, negative int, lr float64, rng *rand.Rand, grad []float64) {
	for i := range grad {
		grad[i] = 0
	}
	for k := 0; k <= negative; k++ {
		tok := target
		label := 1.0
		if k > 0 {
			tok = sampleToken(cdf, rng)
			if tok == target {
				continue
			}
			label = 0
		}
		out := ctx[tok]
		var dot float64
		for i := range center {
			dot += center[i] * out[i]
		}
		g := (sigmoid(dot) - label) * lr
		for i := range center {
			grad[i] += g * out[i]
			out[i] -= g * center[i]
		}
	}
	for i := range center {
		center[i] -= grad[i]
	}
}

func sigmoid(x float64) float64 {
	if x > 30 {
		return 1
	}
	if x < -30 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

func normalize(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] /= n
	}
}
