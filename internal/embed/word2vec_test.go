package embed

import (
	"math"
	"testing"
	"testing/quick"
)

// toyCorpus mimics label sentences from a small social graph: Person labels
// co-occur with KNOWS/WORKS_AT and Organization; Post co-occurs with LIKES.
func toyCorpus() [][]string {
	var corpus [][]string
	for i := 0; i < 40; i++ {
		corpus = append(corpus,
			[]string{"Person", "KNOWS", "Person"},
			[]string{"Person", "WORKS_AT", "Organization"},
			[]string{"Person", "LIKES", "Post"},
			[]string{"Student&Person", "KNOWS", "Person"},
			[]string{"Organization", "LOCATED_IN", "Place"},
		)
	}
	return corpus
}

func TestTrainDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := Train(toyCorpus(), cfg)
	b := Train(toyCorpus(), cfg)
	for _, tok := range a.Tokens() {
		va, vb := a.Vector(tok), b.Vector(tok)
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("token %q differs between identically seeded runs", tok)
			}
		}
	}
}

func TestTrainSeedChangesVectors(t *testing.T) {
	cfg := DefaultConfig()
	a := Train(toyCorpus(), cfg)
	cfg.Seed = 99
	b := Train(toyCorpus(), cfg)
	diff := false
	for _, tok := range a.Tokens() {
		va, vb := a.Vector(tok), b.Vector(tok)
		for i := range va {
			if va[i] != vb[i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical models")
	}
}

func TestVocabAndDim(t *testing.T) {
	m := Train(toyCorpus(), DefaultConfig())
	if m.Dim() != 16 {
		t.Errorf("Dim = %d, want 16", m.Dim())
	}
	if m.VocabSize() != 9 {
		t.Errorf("VocabSize = %d, want 9 (tokens: %v)", m.VocabSize(), m.Tokens())
	}
	if !m.Has("Person") || m.Has("Ghost") {
		t.Error("Has misreports vocabulary membership")
	}
}

func TestUnknownAndEmptyTokenZeroVector(t *testing.T) {
	m := Train(toyCorpus(), DefaultConfig())
	for _, tok := range []string{"", "NeverSeen"} {
		v := m.Vector(tok)
		if len(v) != m.Dim() {
			t.Fatalf("Vector(%q) has len %d, want %d", tok, len(v), m.Dim())
		}
		for _, x := range v {
			if x != 0 {
				t.Errorf("Vector(%q) should be the zero vector, got %v", tok, v)
			}
		}
	}
}

func TestVectorsNormalized(t *testing.T) {
	m := Train(toyCorpus(), DefaultConfig())
	for _, tok := range m.Tokens() {
		v := m.Vector(tok)
		var n float64
		for _, x := range v {
			n += x * x
		}
		if math.Abs(math.Sqrt(n)-1) > 1e-9 {
			t.Errorf("token %q norm = %v, want 1", tok, math.Sqrt(n))
		}
	}
}

func TestSemanticStructure(t *testing.T) {
	// Tokens sharing contexts should be more similar than unrelated ones:
	// Person and Student&Person both appear as KNOWS sources.
	m := Train(toyCorpus(), DefaultConfig())
	related := m.CosineSimilarity("Person", "Student&Person")
	unrelated := m.CosineSimilarity("Person", "LOCATED_IN")
	if related <= unrelated {
		t.Errorf("cos(Person, Student&Person)=%.3f should exceed cos(Person, LOCATED_IN)=%.3f", related, unrelated)
	}
}

func TestEmptyCorpus(t *testing.T) {
	m := Train(nil, DefaultConfig())
	if m.VocabSize() != 0 {
		t.Errorf("VocabSize = %d, want 0", m.VocabSize())
	}
	if v := m.Vector("anything"); len(v) != 16 {
		t.Errorf("zero-vocab model Vector len = %d, want 16", len(v))
	}
}

func TestSingleTokenSentencesEnterVocab(t *testing.T) {
	m := Train([][]string{{"Lonely"}, {"Lonely"}}, DefaultConfig())
	if !m.Has("Lonely") {
		t.Error("single-token sentences should still populate the vocabulary")
	}
}

func TestEmptyTokensSkipped(t *testing.T) {
	m := Train([][]string{{"", "A", ""}, {"A", "B"}}, DefaultConfig())
	if m.Has("") {
		t.Error("empty token must not enter vocabulary")
	}
	if m.VocabSize() != 2 {
		t.Errorf("VocabSize = %d, want 2", m.VocabSize())
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	// A zero config must not panic or divide by zero.
	m := Train(toyCorpus(), Config{})
	if m.Dim() != 16 {
		t.Errorf("zero config Dim = %d, want default 16", m.Dim())
	}
}

func TestSamplingTableQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int, len(raw))
		for i, r := range raw {
			counts[i] = int(r) + 1
		}
		cdf := buildSamplingTable(counts)
		// CDF must be nondecreasing and end at 1.
		prev := 0.0
		for _, x := range cdf {
			if x < prev {
				return false
			}
			prev = x
		}
		return math.Abs(cdf[len(cdf)-1]-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSigmoidBounds(t *testing.T) {
	for _, x := range []float64{-1000, -30.0001, -1, 0, 1, 30.0001, 1000} {
		s := sigmoid(x)
		if s < 0 || s > 1 {
			t.Errorf("sigmoid(%v) = %v out of [0,1]", x, s)
		}
	}
	if sigmoid(0) != 0.5 {
		t.Errorf("sigmoid(0) = %v, want 0.5", sigmoid(0))
	}
}

func TestIdenticalLabelSetsSameEmbedding(t *testing.T) {
	// The paper's core requirement (§4.1): identical label-set tokens always
	// yield identical embeddings. Trivially true for one model instance, but
	// guard the accessor anyway.
	m := Train(toyCorpus(), DefaultConfig())
	a := m.Vector("Person")
	b := m.Vector("Person")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("repeated Vector calls disagree")
		}
	}
}
