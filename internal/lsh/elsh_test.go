package lsh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewELSHValidation(t *testing.T) {
	mustPanic(t, func() { NewELSH(4, 0, 3, 1) }, "zero bucket")
	mustPanic(t, func() { NewELSH(4, -1, 3, 1) }, "negative bucket")
	mustPanic(t, func() { NewELSH(4, 1, 0, 1) }, "zero tables")
	mustPanic(t, func() { NewELSH(0, 1, 1, 1) }, "zero dim")
}

func mustPanic(t *testing.T, f func(), name string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestELSHSignatureDeterministic(t *testing.T) {
	e := NewELSH(8, 2.0, 10, 7)
	x := []float64{1, 0, 0.5, -0.3, 0, 1, 1, 0}
	a, b := e.Signature(x), e.Signature(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signature not deterministic")
		}
	}
	e2 := NewELSH(8, 2.0, 10, 7)
	c := e2.Signature(x)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("same seed must give same family")
		}
	}
}

func TestELSHDimensionMismatchPanics(t *testing.T) {
	e := NewELSH(4, 1, 2, 1)
	mustPanic(t, func() { e.Signature([]float64{1, 2}) }, "dim mismatch")
}

func TestELSHIdenticalVectorsCollide(t *testing.T) {
	e := NewELSH(6, 1.5, 20, 3)
	x := []float64{0.2, -0.4, 1, 0, 1, 0}
	y := append([]float64(nil), x...)
	if e.SignatureKey(x) != e.SignatureKey(y) {
		t.Error("identical vectors must share every bucket")
	}
}

func TestELSHClusterSeparatesDistantPoints(t *testing.T) {
	// Two tight groups far apart must form (at least) two clusters, and no
	// cluster may mix the groups.
	rng := rand.New(rand.NewSource(5))
	var vectors [][]float64
	group := make([]int, 0, 200)
	for i := 0; i < 100; i++ {
		vectors = append(vectors, jitter([]float64{0, 0, 0, 0, 10, 10, 10, 10}, 0.01, rng))
		group = append(group, 0)
	}
	for i := 0; i < 100; i++ {
		vectors = append(vectors, jitter([]float64{10, 10, 10, 10, 0, 0, 0, 0}, 0.01, rng))
		group = append(group, 1)
	}
	e := NewELSH(8, 2.0, 10, 1)
	clusters := e.Cluster(vectors)
	if len(clusters) < 2 {
		t.Fatalf("got %d clusters, want at least 2", len(clusters))
	}
	for _, c := range clusters {
		g := group[c.Members[0]]
		for _, m := range c.Members {
			if group[m] != g {
				t.Fatal("cluster mixes distant groups")
			}
		}
	}
}

func TestELSHClusterGroupsNearPoints(t *testing.T) {
	// Points much closer than the bucket length should mostly collide.
	rng := rand.New(rand.NewSource(9))
	var vectors [][]float64
	for i := 0; i < 50; i++ {
		vectors = append(vectors, jitter([]float64{1, 2, 3, 4}, 0.001, rng))
	}
	e := NewELSH(4, 5.0, 5, 2)
	clusters := e.Cluster(vectors)
	if len(clusters) > 3 {
		t.Errorf("near-identical points split into %d clusters, want few", len(clusters))
	}
}

func jitter(base []float64, eps float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(base))
	for i, v := range base {
		out[i] = v + eps*rng.NormFloat64()
	}
	return out
}

func TestMoreTablesFinerClusters(t *testing.T) {
	// The AND-combined signature: T2 > T1 clusters must refine T1 clusters
	// statistically (count can only grow for the same data and bucket).
	rng := rand.New(rand.NewSource(11))
	var vectors [][]float64
	for i := 0; i < 300; i++ {
		vectors = append(vectors, jitter(make([]float64, 8), 1.0, rng))
	}
	few := NewELSH(8, 1.0, 2, 1).Cluster(vectors)
	many := NewELSH(8, 1.0, 25, 1).Cluster(vectors)
	if len(many) < len(few) {
		t.Errorf("25 tables gave %d clusters, 2 tables gave %d; want more tables to be finer", len(many), len(few))
	}
}

func TestWiderBucketsCoarserClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var vectors [][]float64
	for i := 0; i < 300; i++ {
		vectors = append(vectors, jitter(make([]float64, 8), 1.0, rng))
	}
	narrow := NewELSH(8, 0.2, 5, 1).Cluster(vectors)
	wide := NewELSH(8, 50.0, 5, 1).Cluster(vectors)
	if len(wide) > len(narrow) {
		t.Errorf("wide buckets gave %d clusters, narrow gave %d; want wide to be coarser", len(wide), len(narrow))
	}
}

func TestCollisionProbabilityMonotone(t *testing.T) {
	e := NewELSH(4, 2.0, 5, 1)
	if p := e.CollisionProbability(0); p != 1 {
		t.Errorf("p(0) = %v, want 1", p)
	}
	prev := 1.0
	for d := 0.1; d < 20; d += 0.1 {
		p := e.CollisionProbability(d)
		if p < 0 || p > 1 {
			t.Fatalf("p(%v) = %v out of range", d, p)
		}
		if p > prev+1e-12 {
			t.Fatalf("p not decreasing at d=%v: %v > %v", d, p, prev)
		}
		prev = p
	}
}

func TestOrAndCollisionProbabilityBounds(t *testing.T) {
	e := NewELSH(4, 2.0, 8, 1)
	for _, d := range []float64{0.1, 1, 5, 20} {
		p := e.CollisionProbability(d)
		or := e.OrCollisionProbability(d)
		and := e.AndCollisionProbability(d)
		if or < p-1e-12 {
			t.Errorf("OR(%v)=%v < single %v", d, or, p)
		}
		if and > p+1e-12 {
			t.Errorf("AND(%v)=%v > single %v", d, and, p)
		}
	}
}

func TestCollisionProbabilityEmpirical(t *testing.T) {
	// The analytic p_b(d) should match the observed single-table collision
	// rate within a loose tolerance.
	const dim, trials = 16, 3000
	b := 4.0
	d := 2.0
	rng := rand.New(rand.NewSource(21))
	hits := 0
	for i := 0; i < trials; i++ {
		e := NewELSH(dim, b, 1, int64(i+1))
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		y := append([]float64(nil), x...)
		// Displace y by exactly distance d in a random direction.
		dir := make([]float64, dim)
		var norm float64
		for j := range dir {
			dir[j] = rng.NormFloat64()
			norm += dir[j] * dir[j]
		}
		norm = math.Sqrt(norm)
		for j := range dir {
			y[j] += d * dir[j] / norm
		}
		if e.Signature(x)[0] == e.Signature(y)[0] {
			hits++
		}
	}
	got := float64(hits) / trials
	want := collisionProbability(d, b)
	if math.Abs(got-want) > 0.05 {
		t.Errorf("empirical collision rate %.3f vs analytic %.3f", got, want)
	}
}

func TestEuclideanDistance(t *testing.T) {
	if d := EuclideanDistance([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Errorf("distance = %v, want 5", d)
	}
	if d := EuclideanDistance([]float64{1, 1}, []float64{1, 1}); d != 0 {
		t.Errorf("distance = %v, want 0", d)
	}
}

func TestEuclideanDistanceSymmetricQuick(t *testing.T) {
	f := func(a, b [4]float64) bool {
		d1 := EuclideanDistance(a[:], b[:])
		d2 := EuclideanDistance(b[:], a[:])
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClusterCoversAllInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var vectors [][]float64
	for i := 0; i < 123; i++ {
		vectors = append(vectors, jitter(make([]float64, 5), 1, rng))
	}
	clusters := NewELSH(5, 1, 4, 1).Cluster(vectors)
	seen := map[int]bool{}
	total := 0
	for _, c := range clusters {
		for _, m := range c.Members {
			if seen[m] {
				t.Fatalf("element %d in two clusters", m)
			}
			seen[m] = true
			total++
		}
	}
	if total != len(vectors) {
		t.Errorf("clusters cover %d elements, want %d", total, len(vectors))
	}
}
