package lsh

import (
	"math/rand"
	"testing"
)

func TestGroupByHashMatchesGroupByKeys(t *testing.T) {
	// Hash grouping must produce the same clusters as string-key grouping
	// for the same signatures.
	rng := rand.New(rand.NewSource(8))
	var vectors [][]float64
	for i := 0; i < 500; i++ {
		vectors = append(vectors, jitter(make([]float64, 6), 1, rng))
	}
	e := NewELSH(6, 1.0, 8, 3)
	keys := make([]string, len(vectors))
	hashes := make([]uint64, len(vectors))
	for i, v := range vectors {
		keys[i] = e.SignatureKey(v)
		hashes[i] = e.SignatureHash(v)
	}
	a := GroupByKeys(keys)
	b := GroupByHash(hashes)
	if len(a) != len(b) {
		t.Fatalf("cluster counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Members) != len(b[i].Members) {
			t.Fatalf("cluster %d sizes differ: %d vs %d", i, len(a[i].Members), len(b[i].Members))
		}
		for j := range a[i].Members {
			if a[i].Members[j] != b[i].Members[j] {
				t.Fatalf("cluster %d member %d differs", i, j)
			}
		}
	}
}

func TestMinHashSignatureHashMatchesSignature(t *testing.T) {
	m := NewMinHash(12, 5)
	sets := [][]uint64{
		nil,
		{},
		{1, 2, 3},
		{3, 2, 1},
		{42},
		{7, 8, 9, 10, 11},
	}
	for i, a := range sets {
		for j, b := range sets {
			sameSig := sigKey(m.Signature(a)) == sigKey(m.Signature(b))
			sameHash := m.SignatureHash(a) == m.SignatureHash(b)
			if sameSig != sameHash {
				t.Errorf("sets %d,%d: signature equality %v but hash equality %v", i, j, sameSig, sameHash)
			}
		}
	}
}

func TestUnionFindBasics(t *testing.T) {
	uf := newUnionFind(5)
	uf.union(0, 1)
	uf.union(3, 4)
	uf.union(1, 3)
	clusters := uf.clusters()
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters, want 2", len(clusters))
	}
	if len(clusters[0].Members) != 4 {
		t.Errorf("merged cluster size = %d, want 4", len(clusters[0].Members))
	}
	if clusters[1].Members[0] != 2 {
		t.Errorf("singleton = %v, want [2]", clusters[1].Members)
	}
}

func TestGroupByHashSizedMatchesDefault(t *testing.T) {
	// The bucket-count hint is a pure allocation optimization: any hint,
	// including absurd ones, must leave the clustering unchanged.
	rng := rand.New(rand.NewSource(3))
	hashes := make([]uint64, 2000)
	for i := range hashes {
		hashes[i] = uint64(rng.Intn(40)) // ~40 clusters
	}
	want := GroupByHash(hashes)
	for _, hint := range []int{-1, 0, 1, 40, 45, 100000} {
		got := GroupByHashSized(hashes, hint)
		if len(got) != len(want) {
			t.Fatalf("hint=%d: %d clusters, want %d", hint, len(got), len(want))
		}
		for i := range want {
			if len(got[i].Members) != len(want[i].Members) || got[i].Members[0] != want[i].Members[0] {
				t.Fatalf("hint=%d: cluster %d differs", hint, i)
			}
		}
	}
}

// BenchmarkGroupByHash pins the satellite optimization: batches of the same
// stream keep producing roughly the same cluster count, so presizing the
// bucket map from the previous batch's count (sized/hinted) beats the
// blind n/4+1 default (default), which overallocates by orders of
// magnitude whenever clusters ≪ n.
func BenchmarkGroupByHash(b *testing.B) {
	const n, clusters = 20000, 48
	rng := rand.New(rand.NewSource(1))
	hashes := make([]uint64, n)
	for i := range hashes {
		hashes[i] = uint64(rng.Intn(clusters))
	}
	b.Run("default", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			GroupByHash(hashes)
		}
	})
	b.Run("sized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			GroupByHashSized(hashes, clusters+clusters/8+16)
		}
	})
}
