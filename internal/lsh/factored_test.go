package lsh

import (
	"fmt"
	"math/rand"
	"testing"
)

// hybridCase builds a synthetic hybrid-vector workload: a pool of distinct
// prefixes (the weighted-embedding block) and per-element sparse 0/1
// suffixes, plus the materialized dense vectors the reference kernel hashes.
type hybridCase struct {
	prefixDim int
	suffixLen int
	prefixes  [][]float64
	tokenIDs  []int
	suffixes  [][]int32
	dense     [][]float64
}

// genHybrid draws elements over nPrefix distinct prefixes with ~nnzFrac of
// the suffix bits set. blocks > 1 emulates the edge layout (three embedding
// blocks, some of them possibly zero).
func genHybrid(rng *rand.Rand, elements, prefixDim, suffixLen, nPrefix int, nnzFrac float64) hybridCase {
	c := hybridCase{prefixDim: prefixDim, suffixLen: suffixLen}
	for p := 0; p < nPrefix; p++ {
		w := make([]float64, prefixDim)
		if p > 0 { // prefix 0 stays all-zero: the unlabeled-element case
			for d := range w {
				w[d] = rng.NormFloat64() * 2
			}
		}
		c.prefixes = append(c.prefixes, w)
	}
	for i := 0; i < elements; i++ {
		id := rng.Intn(nPrefix)
		var suffix []int32
		for k := 0; k < suffixLen; k++ {
			if rng.Float64() < nnzFrac {
				suffix = append(suffix, int32(k))
			}
		}
		v := make([]float64, prefixDim+suffixLen)
		copy(v, c.prefixes[id])
		for _, k := range suffix {
			v[prefixDim+int(k)] = 1
		}
		c.tokenIDs = append(c.tokenIDs, id)
		c.suffixes = append(c.suffixes, suffix)
		c.dense = append(c.dense, v)
	}
	return c
}

// TestFactoredMatchesDenseELSH is the kernel's bit-identity property: over
// random prefix pools (including the all-zero prefix), suffix vocabularies
// up to K=512 and sparse-to-dense occupancy, the factored Signature and
// SignatureHash agree bit-for-bit with the dense loops on the materialized
// vector — for the node layout (one embedding block) and the edge layout
// (wide prefix standing for three concatenated blocks).
func TestFactoredMatchesDenseELSH(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name      string
		prefixDim int
		suffixLen int
		nnz       float64
	}{
		{"node-sparse", 16, 512, 0.01},
		{"node-mid", 32, 256, 0.10},
		{"node-dense", 16, 64, 0.50},
		{"edge-sparse", 96, 512, 0.01}, // 3×32: the concatenated edge prefix
		{"edge-mid", 48, 128, 0.10},
		{"suffix-only", 0, 128, 0.25},
		{"prefix-only", 24, 1, 0.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := genHybrid(rng, 200, tc.prefixDim, tc.suffixLen, 5, tc.nnz)
			dim := tc.prefixDim + tc.suffixLen
			for trial := 0; trial < 3; trial++ {
				bucket := 0.5 + rng.Float64()*4
				tables := 1 + rng.Intn(34)
				e := NewELSH(dim, bucket, tables, rng.Int63())
				f := NewFactoredELSH(e, tc.prefixDim, c.prefixes)
				h := f.Hasher()
				for i := range c.dense {
					wantSig := e.Signature(c.dense[i])
					gotSig := h.Signature(c.tokenIDs[i], c.suffixes[i])
					for ti := range wantSig {
						if wantSig[ti] != gotSig[ti] {
							t.Fatalf("element %d table %d: factored bucket %d, dense %d",
								i, ti, gotSig[ti], wantSig[ti])
						}
					}
					if want, got := e.SignatureHash(c.dense[i]), h.SignatureHash(c.tokenIDs[i], c.suffixes[i]); want != got {
						t.Fatalf("element %d: factored hash %#x, dense %#x", i, got, want)
					}
				}
			}
		})
	}
}

// TestFactoredELSHValidation pins the constructor's contract checks.
func TestFactoredELSHValidation(t *testing.T) {
	e := NewELSH(8, 1, 4, 1)
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"prefix dim too large", func() { NewFactoredELSH(e, 9, nil) }},
		{"prefix dim negative", func() { NewFactoredELSH(e, -1, nil) }},
		{"prefix length mismatch", func() { NewFactoredELSH(e, 4, [][]float64{make([]float64, 3)}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.f()
		})
	}
}

// BenchmarkSignatureDenseVsFactored measures the tentpole speedup across
// suffix occupancy: at K=512 and 1 % nnz the dense kernel multiplies through
// ~500 zeros per table while the factored kernel adds ~5 cached columns.
func BenchmarkSignatureDenseVsFactored(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const (
		prefixDim = 32
		suffixLen = 512
		tables    = 25
		elements  = 512
	)
	for _, nnz := range []float64{0.01, 0.10, 0.50} {
		c := genHybrid(rng, elements, prefixDim, suffixLen, 8, nnz)
		e := NewELSH(prefixDim+suffixLen, 2.0, tables, 1)
		f := NewFactoredELSH(e, prefixDim, c.prefixes)
		b.Run(fmt.Sprintf("nnz=%g/dense", nnz), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.SignatureHash(c.dense[i%elements])
			}
		})
		b.Run(fmt.Sprintf("nnz=%g/factored", nnz), func(b *testing.B) {
			b.ReportAllocs()
			h := f.Hasher()
			for i := 0; i < b.N; i++ {
				h.SignatureHash(c.tokenIDs[i%elements], c.suffixes[i%elements])
			}
		})
	}
}
