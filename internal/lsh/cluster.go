// Package lsh implements the two Locality-Sensitive Hashing families
// PG-HIVE clusters with (§4.2): Euclidean LSH (p-stable bucketed random
// projections, Datar et al. 2004) for the hybrid embedding+indicator
// vectors, and MinHash (Broder 1997) for set representations. Both group
// elements by their full T-value signature — the behaviour of grouping on
// Spark MLlib hash columns that the paper's parameter study exhibits (more
// tables ⇒ finer clusters) — with banded grouping available for MinHash.
//
// The package also provides the paper's adaptive parameter selection:
// bucket length from a sampled distance scale µ and a label-count factor α,
// and table count from the dataset size (§4.2, "Adaptive parameterization").
package lsh

import "sort"

// Cluster is one group of input elements, identified by their indexes into
// the input slice.
type Cluster struct {
	Members []int
}

// GroupByKeys buckets items by precomputed signature keys (callers may
// compute keys in parallel). Cluster order is deterministic: clusters are
// sorted by their smallest member index.
func GroupByKeys(keys []string) []Cluster {
	return GroupByKeysSized(keys, 0)
}

// GroupByKeysSized is GroupByKeys with a bucket-count hint (see
// GroupByHashSized); hint <= 0 falls back to the n/4+1 default.
func GroupByKeysSized(keys []string, hint int) []Cluster {
	return groupBySignature(len(keys), hint, func(i int) string { return keys[i] })
}

// GroupByHash buckets items by precomputed 64-bit signature hashes — the
// allocation-free fast path for full-signature grouping. A cross-signature
// hash collision would merge two clusters; at 64 bits the probability is
// ~n²/2⁶⁵ (≈ 5·10⁻⁸ for a million elements), far below the LSH
// approximation error, and the downstream label/Jaccard merge step is
// tolerant to occasional merges by design.
func GroupByHash(hashes []uint64) []Cluster {
	return GroupByHashSized(hashes, 0)
}

// GroupByHashSized is GroupByHash with a bucket-count hint — typically a
// running estimate of the cluster count from previous batches, which is
// orders of magnitude below the default n/4+1 guess (batches of the same
// stream keep producing roughly the same clusters, so the default
// overallocates the map by ~n/4 buckets every batch). hint <= 0 falls back
// to the default.
func GroupByHashSized(hashes []uint64, hint int) []Cluster {
	if hint <= 0 {
		hint = len(hashes)/4 + 1
	}
	buckets := make(map[uint64][]int, hint)
	for i, h := range hashes {
		buckets[h] = append(buckets[h], i)
	}
	clusters := make([]Cluster, 0, len(buckets))
	for _, members := range buckets {
		clusters = append(clusters, Cluster{Members: members})
	}
	sort.Slice(clusters, func(a, b int) bool {
		return clusters[a].Members[0] < clusters[b].Members[0]
	})
	return clusters
}

// fnv64 constants for inline signature hashing.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

// groupBySignature buckets n items by a string key derived from their
// signatures. Cluster order is deterministic: clusters are sorted by their
// smallest member index. hint <= 0 presizes the bucket map at the n/4+1
// default.
func groupBySignature(n, hint int, key func(i int) string) []Cluster {
	if hint <= 0 {
		hint = n/4 + 1
	}
	buckets := make(map[string][]int, hint)
	for i := 0; i < n; i++ {
		k := key(i)
		buckets[k] = append(buckets[k], i)
	}
	clusters := make([]Cluster, 0, len(buckets))
	for _, members := range buckets {
		clusters = append(clusters, Cluster{Members: members})
	}
	sort.Slice(clusters, func(a, b int) bool {
		return clusters[a].Members[0] < clusters[b].Members[0]
	})
	return clusters
}

// unionFind is a classic disjoint-set forest with path halving and union by
// size, used for banded MinHash clustering.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

// clusters extracts the disjoint sets in deterministic order.
func (u *unionFind) clusters() []Cluster {
	groups := map[int][]int{}
	for i := range u.parent {
		r := u.find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([]Cluster, 0, len(groups))
	for _, members := range groups {
		out = append(out, Cluster{Members: members})
	}
	sort.Slice(out, func(a, b int) bool {
		return out[a].Members[0] < out[b].Members[0]
	})
	return out
}
