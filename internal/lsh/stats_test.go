package lsh

import "testing"

func TestOccupancy(t *testing.T) {
	clusters := []Cluster{
		{Members: []int{0, 2, 5}},
		{Members: []int{1}},
		{Members: []int{3, 4}},
		{Members: []int{6}},
	}
	o := Occupancy(clusters)
	if o.Buckets != 4 || o.Elements != 7 || o.Singletons != 2 || o.Largest != 3 {
		t.Errorf("Occupancy = %+v, want Buckets 4, Elements 7, Singletons 2, Largest 3", o)
	}
	if o.Mean() != 1.75 {
		t.Errorf("Mean = %v, want 1.75", o.Mean())
	}

	empty := Occupancy(nil)
	if empty != (OccupancyStats{}) || empty.Mean() != 0 {
		t.Errorf("empty Occupancy = %+v, Mean %v", empty, empty.Mean())
	}
}
