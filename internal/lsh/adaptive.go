package lsh

import (
	"math"
	"math/rand"
)

// Params are the LSH parameters chosen for one batch of elements.
type Params struct {
	// Mu is the sampled average pairwise Euclidean distance (the distance
	// scale of the data).
	Mu float64
	// BBase = 1.2·Mu, the base bucket length before the label factor.
	BBase float64
	// Alpha is the label-count factor: 0.8 for L ≤ 3, 1.0 for 4 ≤ L ≤ 10,
	// 1.5 for L > 10.
	Alpha float64
	// Bucket is the final ELSH bucket length b = BBase·Alpha.
	Bucket float64
	// Tables is the number of hash tables T.
	Tables int
}

// Clamp bounds for T: the paper's empirically effective range ("T ∈ [15, 35]
// work well across datasets", §4.2). The printed formula can yield smaller
// values on tiny batches, where so few tables lose all selectivity, so the
// result is clamped into the reported range.
const (
	minTables = 15
	maxTables = 35
)

// edgeAlphaScale maps the node α range [0.8, 1.5] onto the paper's edge
// range [0.5, 1.5] (≈ ×0.75): tighter buckets keep differently-labeled
// edge types apart, and the label-merge step repairs any over-separation.
const edgeAlphaScale = 0.75

// SampleSize returns the paper's element sample size for parameter
// adaptation: 1 % of the population or at least 10 000, capped at the
// population itself (§4.2).
func SampleSize(population int) int {
	s := population / 100
	if s < sampleFloor {
		s = sampleFloor
	}
	if s > population {
		s = population
	}
	return s
}

// SampleIndexes draws the adaptation sample: SampleSize(population) distinct
// indexes, deterministic for a given seed.
func SampleIndexes(population int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Perm(population)[:SampleSize(population)]
}

// AdaptParams implements the paper's adaptive parameterization (§4.2).
// sample holds the vectorized adaptation sample (use SampleIndexes to draw
// it), population is the full batch size N, labelCount is the number of
// distinct label-set tokens L, and isEdge selects the edge variant of the
// T formula (floor 3 and cap 20 instead of 5 and 25).
//
//	µ     = average Euclidean distance over sampled pairs,
//	b_base = 1.2·µ,  b = b_base·α,
//	T = b_base · max(floor, α·min(cap, log10 N)), clamped to [5, 50].
func AdaptParams(sample [][]float64, population int, labelCount int, isEdge bool, seed int64) Params {
	mu := pairDistanceScale(sample, seed)
	bBase := 1.2 * mu
	if bBase <= 0 {
		// Degenerate batch (all vectors identical or < 2 elements): any
		// positive bucket groups everything together, which is correct.
		bBase = 1
	}
	alpha := alphaForLabels(labelCount)
	floor, cap := 5.0, 25.0
	if isEdge {
		// Edges benefit from slightly smaller α due to their larger vector
		// representation (§4.2: edge α ∈ [0.5, 1.5] vs node [0.5, 2]).
		alpha *= edgeAlphaScale
		floor, cap = 3.0, 20.0
	}
	logN := 0.0
	if population > 1 {
		logN = math.Log10(float64(population))
	}
	t := bBase * math.Max(floor, alpha*math.Min(cap, logN))
	tables := int(math.Round(t))
	if tables < minTables {
		tables = minTables
	}
	if tables > maxTables {
		tables = maxTables
	}
	return Params{
		Mu:     mu,
		BBase:  bBase,
		Alpha:  alpha,
		Bucket: bBase * alpha,
		Tables: tables,
	}
}

// AdaptParamsAll is a convenience wrapper for callers that already hold all
// vectors in memory: it draws the paper's sample internally and adapts on
// it, with population = len(vectors).
func AdaptParamsAll(vectors [][]float64, labelCount int, isEdge bool, seed int64) Params {
	n := len(vectors)
	if n == 0 {
		return AdaptParams(nil, 0, labelCount, isEdge, seed)
	}
	idx := SampleIndexes(n, seed)
	sample := make([][]float64, len(idx))
	for i, j := range idx {
		sample[i] = vectors[j]
	}
	return AdaptParams(sample, n, labelCount, isEdge, seed)
}

// alphaForLabels returns the label-count factor α (§4.2): graphs with few
// labels need tighter buckets to keep types distinct; graphs with many
// labels need wider buckets to avoid over-fragmentation.
func alphaForLabels(labels int) float64 {
	switch {
	case labels <= 3:
		return 0.8
	case labels <= 10:
		return 1.0
	default:
		return 1.5
	}
}

// Sampling limits for the distance-scale estimate.
const (
	sampleFloor = 10_000 // paper: at least 10k elements
	maxPairs    = 20_000 // distance evaluations, not all O(S²) pairs
)

// pairDistanceScale estimates µ, the average pairwise Euclidean distance
// over the sample, evaluating at most maxPairs random pairs.
func pairDistanceScale(sample [][]float64, seed int64) float64 {
	n := len(sample)
	if n < 2 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	allPairs := n * (n - 1) / 2
	var sum float64
	count := 0
	if allPairs <= maxPairs {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				sum += EuclideanDistance(sample[i], sample[j])
				count++
			}
		}
	} else {
		for k := 0; k < maxPairs; k++ {
			i := rng.Intn(n)
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			sum += EuclideanDistance(sample[i], sample[j])
			count++
		}
	}
	return sum / float64(count)
}
