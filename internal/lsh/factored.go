package lsh

import (
	"fmt"
	"math"
)

// FactoredELSH is the structure-exploiting signature kernel for hybrid
// vectors (§4.1/§4.2): every vector is a shared weighted-embedding prefix
// (one of few distinct vectors) followed by a sparse 0/1 property-presence
// suffix, and the p-stable projection is linear, so the dot product factors:
//
//	a_t · x = a_t[:P] · prefix  +  Σ_{k : suffix bit k set} a_t[P+k]
//
// The prefix dots are precomputed once per (distinct prefix, table) and the
// suffix columns are transposed into key-major order, so hashing one element
// costs O(T·nnz) adds instead of the dense O(T·(P+K)) multiply-adds.
//
// The result is bit-identical to ELSH.Signature/SignatureHash on the
// materialized vector: the prefix dot accumulates the same floats in the
// same order as the dense loop, the set suffix bits contribute a_t[P+k]·1.0
// = a_t[P+k] exactly, and the skipped zero bits contribute ±0.0 terms that
// can only flip the sign of an all-zero accumulator — a distinction
// ⌊(dot+u)/b⌋ erases (see TestFactoredMatchesDenseELSH).
//
// A FactoredELSH is immutable after construction; obtain one Hasher per
// goroutine for the accumulator scratch.
type FactoredELSH struct {
	e         *ELSH
	prefixDim int
	prefDots  [][]float64 // per prefix id: T per-table prefix dots
	cols      []float64   // key-major suffix columns: cols[k*T+t] = proj[t][prefixDim+k]
}

// NewFactoredELSH factors the family over the given distinct prefixes
// (each of length prefixDim ≤ the family's dimension). Elements are later
// hashed by prefix id plus ascending suffix indexes in [0, dim-prefixDim).
func NewFactoredELSH(e *ELSH, prefixDim int, prefixes [][]float64) *FactoredELSH {
	if prefixDim < 0 || prefixDim > e.dim {
		panic(fmt.Sprintf("lsh: prefix dimension %d outside [0, %d]", prefixDim, e.dim))
	}
	tables := len(e.proj)
	f := &FactoredELSH{
		e:         e,
		prefixDim: prefixDim,
		prefDots:  make([][]float64, len(prefixes)),
		cols:      make([]float64, (e.dim-prefixDim)*tables),
	}
	for id, w := range prefixes {
		if len(w) != prefixDim {
			panic(fmt.Sprintf("lsh: prefix %d has dimension %d, want %d", id, len(w), prefixDim))
		}
		dots := make([]float64, tables)
		for t, p := range e.proj {
			// Accumulate in ascending dimension order — the dense loop's
			// exact operation sequence over the prefix block.
			var dot float64
			for d, v := range w {
				dot += p[d] * v
			}
			dots[t] = dot
		}
		f.prefDots[id] = dots
	}
	for k := 0; k < e.dim-prefixDim; k++ {
		for t, p := range e.proj {
			f.cols[k*tables+t] = p[prefixDim+k]
		}
	}
	return f
}

// Tables returns T.
func (f *FactoredELSH) Tables() int { return len(f.e.proj) }

// Hasher returns a signature hasher with its own accumulator scratch. A
// Hasher is not safe for concurrent use; Hashers of one family are.
func (f *FactoredELSH) Hasher() *FactoredHasher {
	return &FactoredHasher{f: f, acc: make([]float64, len(f.e.proj))}
}

// FactoredHasher computes factored signatures. Methods must not be called
// concurrently on one Hasher.
type FactoredHasher struct {
	f   *FactoredELSH
	acc []float64
}

// dots fills the accumulator with the element's T projection dots: the
// cached prefix dots plus the suffix columns of its set bits, added in
// ascending index order (the dense loop's order within each table).
func (h *FactoredHasher) dots(prefixID int, suffix []int32) []float64 {
	f := h.f
	acc := h.acc
	copy(acc, f.prefDots[prefixID])
	T := len(acc)
	for _, k := range suffix {
		col := f.cols[int(k)*T : int(k)*T+T]
		for t, c := range col {
			acc[t] += c
		}
	}
	return acc
}

// Signature returns the element's T bucket ids, bit-identical to
// ELSH.Signature on the materialized vector.
func (h *FactoredHasher) Signature(prefixID int, suffix []int32) []int64 {
	acc := h.dots(prefixID, suffix)
	e := h.f.e
	sig := make([]int64, len(acc))
	for t, dot := range acc {
		sig[t] = int64(math.Floor((dot + e.offsets[t]) / e.bucket))
	}
	return sig
}

// SignatureHash hashes the element's full T-value signature into 64 bits
// without allocating, bit-identical to ELSH.SignatureHash on the
// materialized vector.
func (h *FactoredHasher) SignatureHash(prefixID int, suffix []int32) uint64 {
	acc := h.dots(prefixID, suffix)
	e := h.f.e
	hash := uint64(fnvOffset)
	for t, dot := range acc {
		hash = fnvMix(hash, uint64(int64(math.Floor((dot+e.offsets[t])/e.bucket))))
	}
	return hash
}
