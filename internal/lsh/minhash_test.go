package lsh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMinHashValidation(t *testing.T) {
	mustPanic(t, func() { NewMinHash(0, 1) }, "zero tables")
}

func TestMinHashSignatureDeterministic(t *testing.T) {
	m := NewMinHash(16, 5)
	set := []uint64{10, 20, 30, 99}
	a, b := m.Signature(set), m.Signature(set)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signature not deterministic")
		}
	}
}

func TestMinHashOrderInvariant(t *testing.T) {
	m := NewMinHash(16, 5)
	a := m.Signature([]uint64{1, 2, 3})
	b := m.Signature([]uint64{3, 1, 2})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signature depends on element order")
		}
	}
}

func TestMinHashIdenticalSetsAgreeEverywhere(t *testing.T) {
	m := NewMinHash(32, 9)
	set := []uint64{5, 17, 400, 12345678901}
	if m.EstimateJaccard(m.Signature(set), m.Signature(set)) != 1 {
		t.Error("identical sets must agree in every hash")
	}
}

func TestMinHashEstimatesJaccard(t *testing.T) {
	// J({1..50}, {26..75}) = 25/75 = 1/3; with 512 hashes the estimate
	// should be close.
	a := make([]uint64, 0, 50)
	b := make([]uint64, 0, 50)
	for i := uint64(1); i <= 50; i++ {
		a = append(a, i)
	}
	for i := uint64(26); i <= 75; i++ {
		b = append(b, i)
	}
	m := NewMinHash(512, 11)
	est := m.EstimateJaccard(m.Signature(a), m.Signature(b))
	if math.Abs(est-1.0/3) > 0.08 {
		t.Errorf("estimated Jaccard %.3f, want ~0.333", est)
	}
}

func TestMinHashEmptySetsShareBucket(t *testing.T) {
	m := NewMinHash(8, 1)
	a := m.Signature(nil)
	b := m.Signature([]uint64{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("empty sets must share a signature")
		}
	}
	c := m.Signature([]uint64{42})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("empty and nonempty sets should not share a full signature")
	}
}

func TestMinHashClusterExactDuplicates(t *testing.T) {
	sets := [][]uint64{
		{1, 2, 3}, {3, 2, 1}, {1, 2, 3},
		{7, 8}, {8, 7},
		{100},
	}
	m := NewMinHash(24, 2)
	clusters := m.Cluster(sets)
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters, want 3: %v", len(clusters), clusters)
	}
	if len(clusters[0].Members) != 3 {
		t.Errorf("first cluster size %d, want 3", len(clusters[0].Members))
	}
}

func TestMinHashClusterBandedHigherRecall(t *testing.T) {
	// Sets with Jaccard ~0.9 rarely share a full 32-hash signature but
	// usually share a 2-row band.
	rng := rand.New(rand.NewSource(4))
	base := make([]uint64, 20)
	for i := range base {
		base[i] = rng.Uint64()
	}
	var sets [][]uint64
	for i := 0; i < 30; i++ {
		s := append([]uint64(nil), base...)
		s[rng.Intn(len(s))] = rng.Uint64() // ~0.9 Jaccard vs base
		sets = append(sets, s)
	}
	m := NewMinHash(32, 6)
	full := m.Cluster(sets)
	banded := m.ClusterBanded(sets, 2)
	if len(banded) > len(full) {
		t.Errorf("banded clustering gave %d clusters, full signature %d; banding must not be finer", len(banded), len(full))
	}
	if len(banded) != 1 {
		t.Errorf("banded clustering gave %d clusters for highly similar sets, want 1", len(banded))
	}
}

func TestClusterBandedRowsClamped(t *testing.T) {
	sets := [][]uint64{{1}, {2}, {1}}
	m := NewMinHash(4, 1)
	// rowsPerBand out of range must not panic.
	for _, r := range []int{-1, 0, 100} {
		clusters := m.ClusterBanded(sets, r)
		total := 0
		for _, c := range clusters {
			total += len(c.Members)
		}
		if total != len(sets) {
			t.Errorf("rows=%d: clusters cover %d, want %d", r, total, len(sets))
		}
	}
}

func TestPermuteStaysInField(t *testing.T) {
	f := func(x, a, b uint64) bool {
		a = a%(mersennePrime-1) + 1
		b = b % mersennePrime
		return permute(x, a, b) < mersennePrime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPermuteMatchesBigIntReference(t *testing.T) {
	// Cross-check the 128-bit modular arithmetic against a slow reference
	// on fixed awkward values.
	cases := []struct{ x, a, b uint64 }{
		{0, 1, 0},
		{mersennePrime - 1, mersennePrime - 1, mersennePrime - 1},
		{1 << 62, 123456789, 987654321},
		{^uint64(0), mersennePrime - 2, 7},
	}
	for _, c := range cases {
		want := refPermute(c.x, c.a, c.b)
		if got := permute(c.x, c.a, c.b); got != want {
			t.Errorf("permute(%d,%d,%d) = %d, want %d", c.x, c.a, c.b, got, want)
		}
	}
}

// refPermute computes (a·x + b) mod p with 128-bit arithmetic via math/big
// semantics implemented manually in four 32-bit limbs.
func refPermute(x, a, b uint64) uint64 {
	x %= mersennePrime
	// Use the same decomposition identity but reduce step by step with
	// repeated subtraction over a widened accumulator.
	hi, lo := mul64(a, x)
	// value = hi*2^64 + lo; 2^64 mod p: p = 2^61-1 so 2^64 = 8*2^61 = 8*(p+1) ≡ 8.
	mod := func(v uint64) uint64 { return v % mersennePrime }
	r := mod(mod(lo) + mod(lo>>61+(lo&mersennePrime)-mod(lo)) + 0) // lo mod p computed directly below
	_ = r
	// Simpler: lo mod p and hi mod p, then (hi*8 + lo) mod p. hi*8 fits in
	// uint64 only if hi < 2^61, which holds since hi < 2^64/2^32 for our
	// 61-bit inputs... a,x < 2^61 so product < 2^122, hi < 2^58. Safe.
	return (hi%mersennePrime*8%mersennePrime + lo%mersennePrime + b%mersennePrime) % mersennePrime
}

func TestJaccardExact(t *testing.T) {
	tests := []struct {
		a, b []uint64
		want float64
	}{
		{nil, nil, 1},
		{[]uint64{1}, nil, 0},
		{[]uint64{1, 2}, []uint64{1, 2}, 1},
		{[]uint64{1, 2}, []uint64{2, 3}, 1.0 / 3},
		{[]uint64{1, 2, 3, 4}, []uint64{3, 4, 5, 6}, 1.0 / 3},
		{[]uint64{1, 1, 2}, []uint64{2, 2, 3}, 1.0 / 3}, // duplicates ignored
	}
	for _, tc := range tests {
		if got := Jaccard(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Jaccard(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaccardSymmetricQuick(t *testing.T) {
	f := func(a, b []uint64) bool {
		return Jaccard(a, b) == Jaccard(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
