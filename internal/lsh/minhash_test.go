package lsh

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewMinHashValidation(t *testing.T) {
	mustPanic(t, func() { NewMinHash(0, 1) }, "zero tables")
}

func TestMinHashSignatureDeterministic(t *testing.T) {
	m := NewMinHash(16, 5)
	set := []uint64{10, 20, 30, 99}
	a, b := m.Signature(set), m.Signature(set)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signature not deterministic")
		}
	}
}

func TestMinHashOrderInvariant(t *testing.T) {
	m := NewMinHash(16, 5)
	a := m.Signature([]uint64{1, 2, 3})
	b := m.Signature([]uint64{3, 1, 2})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signature depends on element order")
		}
	}
}

func TestMinHashIdenticalSetsAgreeEverywhere(t *testing.T) {
	m := NewMinHash(32, 9)
	set := []uint64{5, 17, 400, 12345678901}
	if m.EstimateJaccard(m.Signature(set), m.Signature(set)) != 1 {
		t.Error("identical sets must agree in every hash")
	}
}

func TestMinHashEstimatesJaccard(t *testing.T) {
	// J({1..50}, {26..75}) = 25/75 = 1/3; with 512 hashes the estimate
	// should be close.
	a := make([]uint64, 0, 50)
	b := make([]uint64, 0, 50)
	for i := uint64(1); i <= 50; i++ {
		a = append(a, i)
	}
	for i := uint64(26); i <= 75; i++ {
		b = append(b, i)
	}
	m := NewMinHash(512, 11)
	est := m.EstimateJaccard(m.Signature(a), m.Signature(b))
	if math.Abs(est-1.0/3) > 0.08 {
		t.Errorf("estimated Jaccard %.3f, want ~0.333", est)
	}
}

func TestMinHashEmptySetsShareBucket(t *testing.T) {
	m := NewMinHash(8, 1)
	a := m.Signature(nil)
	b := m.Signature([]uint64{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("empty sets must share a signature")
		}
	}
	c := m.Signature([]uint64{42})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("empty and nonempty sets should not share a full signature")
	}
}

func TestMinHashClusterExactDuplicates(t *testing.T) {
	sets := [][]uint64{
		{1, 2, 3}, {3, 2, 1}, {1, 2, 3},
		{7, 8}, {8, 7},
		{100},
	}
	m := NewMinHash(24, 2)
	clusters := m.Cluster(sets)
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters, want 3: %v", len(clusters), clusters)
	}
	if len(clusters[0].Members) != 3 {
		t.Errorf("first cluster size %d, want 3", len(clusters[0].Members))
	}
}

func TestMinHashClusterBandedHigherRecall(t *testing.T) {
	// Sets with Jaccard ~0.9 rarely share a full 32-hash signature but
	// usually share a 2-row band.
	rng := rand.New(rand.NewSource(4))
	base := make([]uint64, 20)
	for i := range base {
		base[i] = rng.Uint64()
	}
	var sets [][]uint64
	for i := 0; i < 30; i++ {
		s := append([]uint64(nil), base...)
		s[rng.Intn(len(s))] = rng.Uint64() // ~0.9 Jaccard vs base
		sets = append(sets, s)
	}
	m := NewMinHash(32, 6)
	full := m.Cluster(sets)
	banded := m.ClusterBanded(sets, 2)
	if len(banded) > len(full) {
		t.Errorf("banded clustering gave %d clusters, full signature %d; banding must not be finer", len(banded), len(full))
	}
	if len(banded) != 1 {
		t.Errorf("banded clustering gave %d clusters for highly similar sets, want 1", len(banded))
	}
}

func TestClusterBandedRowsClamped(t *testing.T) {
	sets := [][]uint64{{1}, {2}, {1}}
	m := NewMinHash(4, 1)
	// rowsPerBand out of range must not panic.
	for _, r := range []int{-1, 0, 100} {
		clusters := m.ClusterBanded(sets, r)
		total := 0
		for _, c := range clusters {
			total += len(c.Members)
		}
		if total != len(sets) {
			t.Errorf("rows=%d: clusters cover %d, want %d", r, total, len(sets))
		}
	}
}

func TestPermuteStaysInField(t *testing.T) {
	f := func(x, a, b uint64) bool {
		a = a%(mersennePrime-1) + 1
		b = b % mersennePrime
		return permute(x, a, b) < mersennePrime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPermuteMatchesBigIntReference(t *testing.T) {
	// Cross-check the 128-bit modular arithmetic against a slow reference
	// on fixed awkward values.
	cases := []struct{ x, a, b uint64 }{
		{0, 1, 0},
		{mersennePrime - 1, mersennePrime - 1, mersennePrime - 1},
		{1 << 62, 123456789, 987654321},
		{^uint64(0), mersennePrime - 2, 7},
	}
	for _, c := range cases {
		want := refPermute(c.x, c.a, c.b)
		if got := permute(c.x, c.a, c.b); got != want {
			t.Errorf("permute(%d,%d,%d) = %d, want %d", c.x, c.a, c.b, got, want)
		}
	}
}

// refPermute computes (a·x + b) mod p with 128-bit arithmetic via math/big
// semantics implemented manually in four 32-bit limbs.
func refPermute(x, a, b uint64) uint64 {
	x %= mersennePrime
	// Use the same decomposition identity but reduce step by step with
	// repeated subtraction over a widened accumulator.
	hi, lo := mul64(a, x)
	// value = hi*2^64 + lo; 2^64 mod p: p = 2^61-1 so 2^64 = 8*2^61 = 8*(p+1) ≡ 8.
	mod := func(v uint64) uint64 { return v % mersennePrime }
	r := mod(mod(lo) + mod(lo>>61+(lo&mersennePrime)-mod(lo)) + 0) // lo mod p computed directly below
	_ = r
	// Simpler: lo mod p and hi mod p, then (hi*8 + lo) mod p. hi*8 fits in
	// uint64 only if hi < 2^61, which holds since hi < 2^64/2^32 for our
	// 61-bit inputs... a,x < 2^61 so product < 2^122, hi < 2^58. Safe.
	return (hi%mersennePrime*8%mersennePrime + lo%mersennePrime + b%mersennePrime) % mersennePrime
}

func TestJaccardExact(t *testing.T) {
	tests := []struct {
		a, b []uint64
		want float64
	}{
		{nil, nil, 1},
		{[]uint64{1}, nil, 0},
		{[]uint64{1, 2}, []uint64{1, 2}, 1},
		{[]uint64{1, 2}, []uint64{2, 3}, 1.0 / 3},
		{[]uint64{1, 2, 3, 4}, []uint64{3, 4, 5, 6}, 1.0 / 3},
		{[]uint64{1, 1, 2}, []uint64{2, 2, 3}, 1.0 / 3}, // duplicates ignored
	}
	for _, tc := range tests {
		if got := Jaccard(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Jaccard(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaccardSymmetricQuick(t *testing.T) {
	f := func(a, b []uint64) bool {
		return Jaccard(a, b) == Jaccard(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPermuteOutputRange pins the invariant the signature minimum
// initializer relies on (see minInit): permute reduces modulo the Mersenne
// prime, so its output is always < 2^61−1 — including at the extremes of
// the coefficient and token domains.
func TestPermuteOutputRange(t *testing.T) {
	extremes := []uint64{0, 1, mersennePrime - 1, mersennePrime, mersennePrime + 1, 1 << 61, 1 << 62, ^uint64(0)}
	for _, x := range extremes {
		for _, a := range []uint64{1, 2, mersennePrime - 1} {
			for _, b := range []uint64{0, 1, mersennePrime - 1} {
				if got := permute(x, a, b); got >= mersennePrime {
					t.Fatalf("permute(%d,%d,%d) = %d, outside [0, 2^61-1)", x, a, b, got)
				}
			}
		}
	}
	if minInit <= mersennePrime-1 {
		t.Fatalf("minInit %d does not dominate permute's range bound %d", uint64(minInit), uint64(mersennePrime-1))
	}
}

// stringKeyClusterBanded is the pre-optimization reference: band buckets
// keyed by decimal strings. Kept to pin that the FNV band keys preserve the
// cluster output.
func stringKeyClusterBanded(m *MinHash, sets [][]uint64, rowsPerBand int) []Cluster {
	if rowsPerBand < 1 {
		rowsPerBand = 1
	}
	if rowsPerBand > len(m.a) {
		rowsPerBand = len(m.a)
	}
	uf := newUnionFind(len(sets))
	bands := (len(m.a) + rowsPerBand - 1) / rowsPerBand
	buckets := make(map[string]int)
	for i, s := range sets {
		sig := m.Signature(s)
		for b := 0; b < bands; b++ {
			lo := b * rowsPerBand
			hi := lo + rowsPerBand
			if hi > len(sig) {
				hi = len(sig)
			}
			key := strconv.Itoa(b) + "|" + sigKey(sig[lo:hi])
			if first, ok := buckets[key]; ok {
				uf.union(first, i)
			} else {
				buckets[key] = i
			}
		}
	}
	return uf.clusters()
}

// TestClusterBandedMatchesStringKeyReference: the allocation-free FNV band
// keys produce the same clusters as the former string keys over random
// workloads of near-duplicate and disjoint sets.
func TestClusterBandedMatchesStringKeyReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		m := NewMinHash(8+rng.Intn(28), rng.Int63())
		var sets [][]uint64
		nFamilies := 1 + rng.Intn(6)
		families := make([][]uint64, nFamilies)
		for f := range families {
			base := make([]uint64, 5+rng.Intn(20))
			for i := range base {
				base[i] = rng.Uint64()
			}
			families[f] = base
		}
		for i := 0; i < 40; i++ {
			base := families[rng.Intn(nFamilies)]
			s := append([]uint64(nil), base...)
			if rng.Intn(2) == 0 && len(s) > 1 {
				s[rng.Intn(len(s))] = rng.Uint64()
			}
			sets = append(sets, s)
		}
		rows := 1 + rng.Intn(6)
		want := stringKeyClusterBanded(m, sets, rows)
		got := m.ClusterBanded(sets, rows)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d (rows=%d): FNV band keys changed the clustering\nwant %v\ngot  %v", trial, rows, want, got)
		}
	}
}

// TestClusterBandedSignaturesSharedSlices: the precomputed-signature entry
// point — including one signature slice shared by many elements, as the
// factored pipeline does — matches hashing every element's set.
func TestClusterBandedSignaturesSharedSlices(t *testing.T) {
	m := NewMinHash(16, 3)
	sets := [][]uint64{{1, 2, 3}, {1, 2, 3}, {9, 10}, {1, 2, 3}, {9, 10}, {42}}
	want := m.ClusterBanded(sets, 4)

	distinct := map[string][]uint64{}
	sigs := make([][]uint64, len(sets))
	for i, s := range sets {
		k := sigKey(m.Signature(s))
		if _, ok := distinct[k]; !ok {
			distinct[k] = m.Signature(s)
		}
		sigs[i] = distinct[k] // shared slice across duplicates
	}
	got := m.ClusterBandedSignatures(sigs, 4)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("shared-slice signatures diverge: want %v, got %v", want, got)
	}
}

// mapJaccard is the pre-optimization reference implementation (two maps per
// call), kept for equivalence testing and the before/after benchmark.
func mapJaccard(a, b []uint64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	seen := make(map[uint64]struct{}, len(a))
	for _, x := range a {
		seen[x] = struct{}{}
	}
	inter := 0
	seenB := make(map[uint64]struct{}, len(b))
	for _, x := range b {
		if _, dup := seenB[x]; dup {
			continue
		}
		seenB[x] = struct{}{}
		if _, ok := seen[x]; ok {
			inter++
		}
	}
	union := len(seen) + len(seenB) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// TestJaccardMatchesMapReference: the sort-based rewrite is exactly the old
// map-based similarity, duplicates and all.
func TestJaccardMatchesMapReference(t *testing.T) {
	f := func(a, b []uint64) bool {
		return Jaccard(a, b) == mapJaccard(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Duplicate-heavy small-alphabet inputs, where map dedup matters most.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		gen := func() []uint64 {
			s := make([]uint64, rng.Intn(12))
			for i := range s {
				s[i] = uint64(rng.Intn(6))
			}
			return s
		}
		a, b := gen(), gen()
		if got, want := Jaccard(a, b), mapJaccard(a, b); got != want {
			t.Fatalf("Jaccard(%v,%v) = %v, map reference %v", a, b, got, want)
		}
	}
}

// TestJaccardConcurrent exercises the scratch pool under the race detector.
func TestJaccardConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				a := []uint64{rng.Uint64(), rng.Uint64(), rng.Uint64()}
				b := []uint64{a[0], rng.Uint64()}
				if Jaccard(a, a) != 1 {
					t.Error("self similarity != 1")
					return
				}
				_ = Jaccard(a, b)
			}
		}(int64(w))
	}
	wg.Wait()
}

// BenchmarkJaccard records the satellite's before/after: the sort-based
// rewrite with pooled scratch vs the former two-maps-per-call version, at
// the small set sizes type extraction compares.
func BenchmarkJaccard(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	mkSet := func(n int) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = rng.Uint64() % 64
		}
		return s
	}
	for _, n := range []int{4, 16, 64} {
		x, y := mkSet(n), mkSet(n)
		b.Run(fmt.Sprintf("n=%d/sorted", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Jaccard(x, y)
			}
		})
		b.Run(fmt.Sprintf("n=%d/maps", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mapJaccard(x, y)
			}
		})
	}
}
