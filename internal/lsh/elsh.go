package lsh

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// ELSH is Euclidean (p-stable, bucketed-random-projection) LSH: T hash
// functions h_i(x) = ⌊(a_i·x + u_i)/b⌋ with Gaussian a_i and offsets
// u_i ~ U[0, b). Two parameters govern it (§4.2): the bucket length b
// (wider buckets ⇒ more collisions ⇒ coarser clusters) and the number of
// tables T (more tables in the AND-combined signature ⇒ finer clusters).
type ELSH struct {
	dim     int
	bucket  float64
	proj    [][]float64 // T × dim Gaussian projections
	offsets []float64   // T offsets in [0, bucket)
}

// NewELSH builds an ELSH family for dim-dimensional vectors. It panics if
// bucket ≤ 0 or tables < 1 — these are programmer errors; the adaptive
// selector always produces valid values.
func NewELSH(dim int, bucket float64, tables int, seed int64) *ELSH {
	if bucket <= 0 {
		panic(fmt.Sprintf("lsh: bucket length must be positive, got %v", bucket))
	}
	if tables < 1 {
		panic(fmt.Sprintf("lsh: table count must be at least 1, got %d", tables))
	}
	if dim < 1 {
		panic(fmt.Sprintf("lsh: dimension must be at least 1, got %d", dim))
	}
	rng := rand.New(rand.NewSource(seed))
	e := &ELSH{
		dim:     dim,
		bucket:  bucket,
		proj:    make([][]float64, tables),
		offsets: make([]float64, tables),
	}
	for t := 0; t < tables; t++ {
		p := make([]float64, dim)
		for d := range p {
			p[d] = rng.NormFloat64()
		}
		e.proj[t] = p
		e.offsets[t] = rng.Float64() * bucket
	}
	return e
}

// Tables returns T.
func (e *ELSH) Tables() int { return len(e.proj) }

// Bucket returns the bucket length b.
func (e *ELSH) Bucket() float64 { return e.bucket }

// Signature hashes one vector into its T bucket ids.
func (e *ELSH) Signature(x []float64) []int64 {
	if len(x) != e.dim {
		panic(fmt.Sprintf("lsh: vector dimension %d, family expects %d", len(x), e.dim))
	}
	sig := make([]int64, len(e.proj))
	for t, p := range e.proj {
		var dot float64
		for d, v := range x {
			dot += p[d] * v
		}
		sig[t] = int64(math.Floor((dot + e.offsets[t]) / e.bucket))
	}
	return sig
}

// SignatureKey renders the full signature as a map key.
func (e *ELSH) SignatureKey(x []float64) string {
	sig := e.Signature(x)
	var sb strings.Builder
	for i, s := range sig {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatInt(s, 10))
	}
	return sb.String()
}

// SignatureHash hashes the full T-value signature into 64 bits without
// allocating (the fast path for full-signature grouping; see GroupByHash).
func (e *ELSH) SignatureHash(x []float64) uint64 {
	if len(x) != e.dim {
		panic(fmt.Sprintf("lsh: vector dimension %d, family expects %d", len(x), e.dim))
	}
	h := uint64(fnvOffset)
	for t, p := range e.proj {
		var dot float64
		for d, v := range x {
			dot += p[d] * v
		}
		h = fnvMix(h, uint64(int64(math.Floor((dot+e.offsets[t])/e.bucket))))
	}
	return h
}

// Cluster groups vectors that share the full T-value signature. Vectors
// whose Euclidean distance is well below b collide in every table with high
// probability and land together; distant vectors separate.
func (e *ELSH) Cluster(vectors [][]float64) []Cluster {
	keys := make([]string, len(vectors))
	for i, v := range vectors {
		keys[i] = e.SignatureKey(v)
	}
	return groupBySignature(len(vectors), 0, func(i int) string { return keys[i] })
}

// CollisionProbability returns p_b(d): the probability that two points at
// Euclidean distance d collide in one table, for the Gaussian p-stable
// family (Datar et al. 2004):
//
//	p(d) = 1 − 2Φ(−b/d) − (2d/(√(2π)·b))·(1 − exp(−b²/(2d²)))
//
// For d = 0 the probability is 1. It is monotonically decreasing in d.
func (e *ELSH) CollisionProbability(d float64) float64 {
	return collisionProbability(d, e.bucket)
}

func collisionProbability(d, b float64) float64 {
	if d <= 0 {
		return 1
	}
	r := b / d
	p := 1 - 2*stdNormalCDF(-r) - (2/(math.Sqrt(2*math.Pi)*r))*(1-math.Exp(-r*r/2))
	if p < 0 {
		return 0
	}
	return p
}

// OrCollisionProbability returns P_{b,T}(d) = 1 − (1 − p_b(d))^T, the
// probability of colliding in at least one of T independent tables (the OR
// rule from §4.2's analysis).
func (e *ELSH) OrCollisionProbability(d float64) float64 {
	p := e.CollisionProbability(d)
	return 1 - math.Pow(1-p, float64(len(e.proj)))
}

// AndCollisionProbability returns p_b(d)^T, the probability of agreeing in
// all T tables — the event that actually merges two elements under
// full-signature grouping.
func (e *ELSH) AndCollisionProbability(d float64) float64 {
	return math.Pow(e.CollisionProbability(d), float64(len(e.proj)))
}

func stdNormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// EuclideanDistance returns the L2 distance between two equal-length
// vectors.
func EuclideanDistance(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
