package lsh

import (
	"math"
	"math/rand"
	"testing"
)

func randomVectors(n, dim int, spread float64, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = spread * rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func TestAlphaForLabels(t *testing.T) {
	tests := []struct {
		labels int
		want   float64
	}{
		{0, 0.8}, {1, 0.8}, {3, 0.8},
		{4, 1.0}, {7, 1.0}, {10, 1.0},
		{11, 1.5}, {100, 1.5},
	}
	for _, tc := range tests {
		if got := alphaForLabels(tc.labels); got != tc.want {
			t.Errorf("alphaForLabels(%d) = %v, want %v", tc.labels, got, tc.want)
		}
	}
}

func TestSampleSize(t *testing.T) {
	tests := []struct{ population, want int }{
		{0, 0},
		{5, 5},
		{9_999, 9_999},
		{10_000, 10_000},
		{500_000, 10_000},   // 1% = 5000 < floor 10k
		{2_000_000, 20_000}, // 1% = 20k > floor
	}
	for _, tc := range tests {
		if got := SampleSize(tc.population); got != tc.want {
			t.Errorf("SampleSize(%d) = %d, want %d", tc.population, got, tc.want)
		}
	}
}

func TestSampleIndexesDistinct(t *testing.T) {
	idx := SampleIndexes(500, 3)
	if len(idx) != 500 {
		t.Fatalf("len = %d, want 500", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 500 || seen[i] {
			t.Fatalf("bad or duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestAdaptParamsBucketScalesWithData(t *testing.T) {
	tight := AdaptParamsAll(randomVectors(500, 8, 0.1, 1), 5, false, 1)
	loose := AdaptParamsAll(randomVectors(500, 8, 10.0, 1), 5, false, 1)
	if tight.Bucket >= loose.Bucket {
		t.Errorf("tight data bucket %v should be below loose data bucket %v", tight.Bucket, loose.Bucket)
	}
	// b = 1.2·µ·α with α=1 here.
	if math.Abs(tight.Bucket-1.2*tight.Mu) > 1e-9 {
		t.Errorf("Bucket = %v, want 1.2µ = %v", tight.Bucket, 1.2*tight.Mu)
	}
}

func TestAdaptParamsAlphaApplied(t *testing.T) {
	vecs := randomVectors(300, 8, 1, 2)
	few := AdaptParamsAll(vecs, 2, false, 1)
	mid := AdaptParamsAll(vecs, 7, false, 1)
	many := AdaptParamsAll(vecs, 20, false, 1)
	if few.Alpha != 0.8 || mid.Alpha != 1.0 || many.Alpha != 1.5 {
		t.Fatalf("alphas = %v %v %v, want 0.8 1.0 1.5", few.Alpha, mid.Alpha, many.Alpha)
	}
	if !(few.Bucket < mid.Bucket && mid.Bucket < many.Bucket) {
		t.Errorf("buckets should grow with label count: %v %v %v", few.Bucket, mid.Bucket, many.Bucket)
	}
}

func TestAdaptParamsTablesClamped(t *testing.T) {
	for _, tc := range []struct {
		n      int
		spread float64
		labels int
		isEdge bool
	}{
		{10, 0.01, 1, false},
		{5000, 100, 20, true}, // large spread pushes T up
		{2, 0.5, 3, false},
		{1, 0, 0, false}, // degenerate: single vector
		{0, 0, 0, true},  // empty input
	} {
		var vecs [][]float64
		if tc.n > 0 {
			vecs = randomVectors(tc.n, 6, tc.spread, 3)
		}
		p := AdaptParamsAll(vecs, tc.labels, tc.isEdge, 1)
		if p.Tables < minTables || p.Tables > maxTables {
			t.Errorf("n=%d spread=%v: Tables = %d outside [%d,%d]", tc.n, tc.spread, p.Tables, minTables, maxTables)
		}
		if p.Bucket <= 0 {
			t.Errorf("n=%d: Bucket = %v, want positive", tc.n, p.Bucket)
		}
	}
}

func TestAdaptParamsDeterministic(t *testing.T) {
	vecs := randomVectors(400, 8, 1, 7)
	a := AdaptParamsAll(vecs, 5, false, 42)
	b := AdaptParamsAll(vecs, 5, false, 42)
	if a != b {
		t.Errorf("AdaptParams not deterministic: %+v vs %+v", a, b)
	}
}

func TestAdaptParamsEdgeVariant(t *testing.T) {
	// With tiny logN, the node floor is 5 and the edge floor is 3, so for
	// identical small inputs T_node ≥ T_edge.
	vecs := randomVectors(20, 6, 1, 9)
	node := AdaptParamsAll(vecs, 5, false, 1)
	edge := AdaptParamsAll(vecs, 5, true, 1)
	if node.Tables < edge.Tables {
		t.Errorf("node T %d < edge T %d; node floor should dominate on small data", node.Tables, edge.Tables)
	}
}

func TestAdaptParamsPopulationDrivesT(t *testing.T) {
	// The same sample with a larger claimed population must not shrink T
	// (T grows with log10 N until the cap).
	sample := randomVectors(100, 6, 3, 4)
	small := AdaptParams(sample, 100, 5, false, 1)
	large := AdaptParams(sample, 10_000_000, 5, false, 1)
	if large.Tables < small.Tables {
		t.Errorf("T(large N) = %d < T(small N) = %d", large.Tables, small.Tables)
	}
}

func TestPairDistanceScaleExactSmall(t *testing.T) {
	// Three points on a line: distances 1, 1, 2 → mean 4/3.
	vecs := [][]float64{{0}, {1}, {2}}
	mu := pairDistanceScale(vecs, 1)
	if math.Abs(mu-4.0/3) > 1e-12 {
		t.Errorf("µ = %v, want 4/3", mu)
	}
}

func TestPairDistanceScaleDegenerate(t *testing.T) {
	if mu := pairDistanceScale(nil, 1); mu != 0 {
		t.Errorf("µ(nil) = %v, want 0", mu)
	}
	if mu := pairDistanceScale([][]float64{{1, 2}}, 1); mu != 0 {
		t.Errorf("µ(single) = %v, want 0", mu)
	}
	// All identical vectors: µ = 0, AdaptParams must still be usable.
	same := make([][]float64, 100)
	for i := range same {
		same[i] = []float64{1, 2, 3}
	}
	p := AdaptParamsAll(same, 1, false, 1)
	if p.Bucket <= 0 {
		t.Errorf("degenerate Bucket = %v, want positive fallback", p.Bucket)
	}
}

func TestPairDistanceScaleLargeInputSampled(t *testing.T) {
	// A large sample must cap pair evaluations and land near the true scale
	// for i.i.d. Gaussians: E||x−y|| ≈ 2.66 for N(0, I₄).
	vecs := randomVectors(30000, 4, 1, 5)
	mu := pairDistanceScale(vecs, 1)
	if mu < 2.2 || mu > 3.2 {
		t.Errorf("µ = %v, want ≈ 2.7 for N(0,I₄) pairs", mu)
	}
}

func TestGroupByKeys(t *testing.T) {
	clusters := GroupByKeys([]string{"a", "b", "a", "c", "b", "a"})
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters, want 3", len(clusters))
	}
	if got := clusters[0].Members; len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 5 {
		t.Errorf("cluster 0 members = %v, want [0 2 5]", got)
	}
}
