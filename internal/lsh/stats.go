package lsh

// OccupancyStats summarizes how elements distributed over the buckets a
// clustering round produced. It is the telemetry view of LSH behaviour: a
// well-parameterized family yields few singletons and a largest bucket far
// below the element count, while a bucket length that is too wide collapses
// everything into one bucket and one that is too narrow shatters the batch
// into singletons.
type OccupancyStats struct {
	// Buckets is the number of clusters (occupied buckets).
	Buckets int
	// Elements is the total number of clustered elements.
	Elements int
	// Singletons counts buckets holding exactly one element.
	Singletons int
	// Largest is the size of the biggest bucket.
	Largest int
}

// Mean returns the average bucket occupancy (0 when there are no buckets).
func (o OccupancyStats) Mean() float64 {
	if o.Buckets == 0 {
		return 0
	}
	return float64(o.Elements) / float64(o.Buckets)
}

// Occupancy computes bucket-occupancy statistics for one clustering result.
func Occupancy(clusters []Cluster) OccupancyStats {
	var o OccupancyStats
	o.Buckets = len(clusters)
	for _, c := range clusters {
		n := len(c.Members)
		o.Elements += n
		if n == 1 {
			o.Singletons++
		}
		if n > o.Largest {
			o.Largest = n
		}
	}
	return o
}
