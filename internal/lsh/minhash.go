package lsh

import (
	"fmt"
	"math/rand"
	"slices"
	"strconv"
	"strings"
	"sync"
)

// MinHash approximates Jaccard similarity between token sets (§4.2): the
// probability that one hash function's minimum agrees for two sets equals
// their Jaccard similarity. Its only parameter is the number of hash
// functions T. Signatures can be grouped whole (AND: all T minima agree) or
// in bands of r rows (classic LSH banding) for higher recall.
type MinHash struct {
	a, b []uint64 // T pairs of multiply-add coefficients
}

const mersennePrime = (1 << 61) - 1

// NewMinHash builds a MinHash family with the given number of hash
// functions. It panics if tables < 1.
func NewMinHash(tables int, seed int64) *MinHash {
	if tables < 1 {
		panic(fmt.Sprintf("lsh: table count must be at least 1, got %d", tables))
	}
	rng := rand.New(rand.NewSource(seed))
	m := &MinHash{a: make([]uint64, tables), b: make([]uint64, tables)}
	for i := 0; i < tables; i++ {
		// a must be nonzero for the permutation to be injective-ish.
		m.a[i] = uint64(rng.Int63n(mersennePrime-1)) + 1
		m.b[i] = uint64(rng.Int63n(mersennePrime))
	}
	return m
}

// Tables returns T.
func (m *MinHash) Tables() int { return len(m.a) }

// emptySetSentinel marks the signature slot of an empty set so that all
// empty sets land in one bucket (their Jaccard similarity is conventionally
// 1 against each other).
const emptySetSentinel = ^uint64(0)

// minInit initializes the running minimum of a signature slot. permute
// returns values < mersennePrime = 2^61−1 (reduction modulo the Mersenne
// prime; pinned by TestPermuteOutputRange), so any initializer ≥
// mersennePrime acts as +∞ over a non-empty set. All-ones stays safe even
// if permute's range ever widens to the full uint64 domain, and non-empty
// sets can never be mistaken for empty ones: their minima stay below
// mersennePrime < emptySetSentinel.
const minInit = ^uint64(0)

// Signature returns the T minima of the permuted token set.
func (m *MinHash) Signature(set []uint64) []uint64 {
	sig := make([]uint64, len(m.a))
	if len(set) == 0 {
		for i := range sig {
			sig[i] = emptySetSentinel
		}
		return sig
	}
	for i := range m.a {
		min := uint64(minInit)
		a, b := m.a[i], m.b[i]
		for _, tok := range set {
			h := permute(tok, a, b)
			if h < min {
				min = h
			}
		}
		sig[i] = min
	}
	return sig
}

// permute maps a token through (a·x + b) mod p for the Mersenne prime
// p = 2^61 − 1, using 128-bit intermediate arithmetic via math/bits-free
// decomposition.
func permute(x, a, b uint64) uint64 {
	// Split multiplication into 32-bit halves to stay exact in uint64.
	x %= mersennePrime
	hi, lo := mul64(a, x)
	// Reduce (hi·2^64 + lo) mod 2^61−1: 2^64 ≡ 8 (mod 2^61−1).
	r := (lo & mersennePrime) + (lo >> 61) + ((hi << 3) & mersennePrime) + (hi >> 58)
	r += b
	for r >= mersennePrime {
		r -= mersennePrime
	}
	return r
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := al * bl
	lo = t & mask
	c := t >> 32
	t = ah*bl + c
	c = t >> 32
	t2 := al*bh + (t & mask)
	lo |= (t2 & mask) << 32
	hi = ah*bh + c + (t2 >> 32)
	return hi, lo
}

// EstimateJaccard estimates the Jaccard similarity of two sets from their
// signatures: the fraction of agreeing positions.
func (m *MinHash) EstimateJaccard(sigA, sigB []uint64) float64 {
	agree := 0
	for i := range sigA {
		if sigA[i] == sigB[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(sigA))
}

// SignatureKey renders the full signature as a map key.
func (m *MinHash) SignatureKey(set []uint64) string {
	return sigKey(m.Signature(set))
}

// SignatureHash hashes the full T-value signature into 64 bits without
// allocating (the fast path for full-signature grouping; see GroupByHash).
func (m *MinHash) SignatureHash(set []uint64) uint64 {
	h := uint64(fnvOffset)
	if len(set) == 0 {
		for range m.a {
			h = fnvMix(h, emptySetSentinel)
		}
		return h
	}
	for i := range m.a {
		min := uint64(minInit)
		a, b := m.a[i], m.b[i]
		for _, tok := range set {
			if v := permute(tok, a, b); v < min {
				min = v
			}
		}
		h = fnvMix(h, min)
	}
	return h
}

// Cluster groups sets sharing the full T-value signature.
func (m *MinHash) Cluster(sets [][]uint64) []Cluster {
	keys := make([]string, len(sets))
	for i, s := range sets {
		keys[i] = sigKey(m.Signature(s))
	}
	return groupBySignature(len(sets), 0, func(i int) string { return keys[i] })
}

// ClusterBanded groups sets with classic LSH banding: the signature is cut
// into bands of rowsPerBand values; sets colliding in at least one band are
// unioned into one cluster. Smaller bands raise recall and lower precision.
func (m *MinHash) ClusterBanded(sets [][]uint64, rowsPerBand int) []Cluster {
	sigs := make([][]uint64, len(sets))
	for i, s := range sets {
		sigs[i] = m.Signature(s)
	}
	return m.ClusterBandedSignatures(sigs, rowsPerBand)
}

// ClusterBandedSignatures is ClusterBanded over precomputed signatures (the
// factored pipeline computes each distinct element record's signature once
// and shares the slice across duplicates). Band buckets are keyed by an
// allocation-free 64-bit FNV hash of (band index, band values) instead of
// the former decimal strings; a cross-band hash collision would union two
// clusters, with the same negligible probability and the same downstream
// tolerance as GroupByHash.
func (m *MinHash) ClusterBandedSignatures(sigs [][]uint64, rowsPerBand int) []Cluster {
	if rowsPerBand < 1 {
		rowsPerBand = 1
	}
	if rowsPerBand > len(m.a) {
		rowsPerBand = len(m.a)
	}
	uf := newUnionFind(len(sigs))
	bands := (len(m.a) + rowsPerBand - 1) / rowsPerBand
	buckets := make(map[uint64]int)
	for i, sig := range sigs {
		for b := 0; b < bands; b++ {
			lo := b * rowsPerBand
			hi := lo + rowsPerBand
			if hi > len(sig) {
				hi = len(sig)
			}
			key := fnvMix(uint64(fnvOffset), uint64(b))
			for _, s := range sig[lo:hi] {
				key = fnvMix(key, s)
			}
			if first, ok := buckets[key]; ok {
				uf.union(first, i)
			} else {
				buckets[key] = i
			}
		}
	}
	return uf.clusters()
}

func sigKey(sig []uint64) string {
	var sb strings.Builder
	for i, s := range sig {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatUint(s, 10))
	}
	return sb.String()
}

// jaccardScratch pools the sort buffers of Jaccard: the function runs per
// candidate pair during similarity checks, and the former two-map
// implementation allocated both maps on every call.
var jaccardScratch = sync.Pool{New: func() any { return new(jaccardBuf) }}

type jaccardBuf struct{ a, b []uint64 }

// Jaccard computes the exact Jaccard similarity of two token sets
// (duplicate tokens are ignored). Sort-and-merge over pooled scratch
// buffers: zero steady-state allocations versus two maps per call
// (BenchmarkJaccard).
func Jaccard(a, b []uint64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	buf := jaccardScratch.Get().(*jaccardBuf)
	sa := append(buf.a[:0], a...)
	sb := append(buf.b[:0], b...)
	slices.Sort(sa)
	slices.Sort(sb)
	inter, union := 0, 0
	i, j := 0, 0
	for i < len(sa) || j < len(sb) {
		var v uint64
		switch {
		case j >= len(sb) || (i < len(sa) && sa[i] < sb[j]):
			v = sa[i]
		case i >= len(sa) || sb[j] < sa[i]:
			v = sb[j]
		default:
			v = sa[i]
			inter++
		}
		union++
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
	}
	buf.a, buf.b = sa, sb
	jaccardScratch.Put(buf)
	return float64(inter) / float64(union)
}
