// Package stream adapts live element insertions to the incremental
// pipeline: a thread-safe Collector buffers nodes and edges as they arrive
// and flushes them into a core.Pipeline in fixed-size batches — the
// "dynamic environments where updates are frequent" deployment the paper
// targets (§4.6). The schema is queryable at any time and grows
// monotonically with every flush.
package stream

import (
	"sync"

	"pghive/internal/core"
	"pghive/internal/pg"
	"pghive/internal/schema"
)

// Collector buffers inserted elements and feeds the pipeline batch-wise.
// All methods are safe for concurrent use.
type Collector struct {
	mu        sync.Mutex
	pipe      *core.Pipeline
	batchSize int
	buf       pg.Batch
	flushes   int
	elements  int
}

// DefaultBatchSize is used when NewCollector receives batchSize ≤ 0.
const DefaultBatchSize = 10_000

// NewCollector wraps a pipeline. Each time batchSize buffered elements
// accumulate, they are flushed into the pipeline as one batch.
func NewCollector(pipe *core.Pipeline, batchSize int) *Collector {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &Collector{pipe: pipe, batchSize: batchSize}
}

// AddNode buffers one node record, flushing if the batch is full.
func (c *Collector) AddNode(rec pg.NodeRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf.Nodes = append(c.buf.Nodes, rec)
	c.elements++
	c.maybeFlushLocked()
}

// AddEdge buffers one edge record (endpoint labels must be resolved by the
// caller, as in pg.EdgeRecord), flushing if the batch is full.
func (c *Collector) AddEdge(rec pg.EdgeRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf.Edges = append(c.buf.Edges, rec)
	c.elements++
	c.maybeFlushLocked()
}

func (c *Collector) maybeFlushLocked() {
	if c.buf.Len() >= c.batchSize {
		c.flushLocked()
	}
}

func (c *Collector) flushLocked() {
	if c.buf.Len() == 0 {
		return
	}
	batch := c.buf
	c.buf = pg.Batch{}
	c.pipe.ProcessBatch(&batch)
	c.flushes++
}

// Flush forces buffered elements into the pipeline immediately.
func (c *Collector) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
}

// Close flushes any remainder; the collector stays usable (Close is a
// synonym for Flush, provided for defer-friendly call sites).
func (c *Collector) Close() { c.Flush() }

// Schema returns the pipeline's evolving schema. Call Flush first to
// include buffered elements. The returned schema aliases pipeline state:
// reading it is only safe while no other goroutine is concurrently adding
// elements (take a Finalize snapshot for concurrent consumption).
func (c *Collector) Schema() *schema.Schema {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pipe.Schema()
}

// Finalize flushes and runs post-processing, returning the schema
// definition.
func (c *Collector) Finalize() *schema.Def {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
	return c.pipe.Finalize()
}

// Stats reports collector progress.
func (c *Collector) Stats() (elements, flushes, buffered int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elements, c.flushes, c.buf.Len()
}
