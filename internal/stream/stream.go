// Package stream adapts live element insertions to the incremental
// pipeline: a thread-safe Collector buffers nodes and edges as they arrive
// and flushes them into a core.Pipeline in fixed-size batches — the
// "dynamic environments where updates are frequent" deployment the paper
// targets (§4.6). The schema is queryable at any time and grows
// monotonically with every flush.
package stream

import (
	"sync"

	"pghive/internal/core"
	"pghive/internal/obs"
	"pghive/internal/pg"
	"pghive/internal/schema"
)

// Collector buffers inserted elements and feeds the pipeline batch-wise.
// All methods are safe for concurrent use.
type Collector struct {
	mu        sync.Mutex
	pipe      *core.Pipeline
	batchSize int
	buf       pg.Batch
	flushes   int
	elements  int
	// Adaptive batch sizing (active when the pipeline runs under a memory
	// budget): memBudget mirrors Config.MemBudgetBytes and evBytes caches
	// the schema's evidence footprint after each processed batch, so the
	// flush threshold can shrink as the budget fills without re-walking the
	// schema on every insert.
	memBudget int64
	evBytes   int64
	// onFlush, when set, inspects each batch before it enters the
	// pipeline; see SetOnFlush for the error contract.
	onFlush func(*pg.Batch) error
	skipped []core.SkipReport
	err     error // last non-transient flush error
	slot    int   // flush slots consumed (processed + quarantined)

	// Spill mode (EnableSpill): full batches queue on spill instead of
	// being processed synchronously; drainLoop feeds them to the pipeline.
	spill       *SpillQueue
	spillCond   *sync.Cond
	spillStop   bool // CloseSpill asked the drainer to exit
	drainerDone bool
	inFlight    bool // drainer is mid-ProcessBatch (outside the lock)
	instr       obs.Instr
	lastSpilled uint64
}

// DefaultBatchSize is used when NewCollector receives batchSize ≤ 0.
const DefaultBatchSize = 10_000

// NewCollector wraps a pipeline. Each time batchSize buffered elements
// accumulate, they are flushed into the pipeline as one batch. When the
// pipeline runs under a memory budget (Config.MemBudgetBytes), the flush
// threshold adapts: as retained evidence (plus any spill-queue residency)
// approaches the budget, batches shrink — down to batchSize/8 — so the
// buffer stops amplifying peak memory right when memory is scarce.
func NewCollector(pipe *core.Pipeline, batchSize int) *Collector {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &Collector{pipe: pipe, batchSize: batchSize, memBudget: pipe.Config().MemBudgetBytes}
}

// adaptiveThreshold scales a flush threshold by memory pressure: below half
// the budget the base holds; past 1/2, 3/4 and 9/10 of the budget the
// threshold drops to base/2, base/4 and base/8 (never below 1). A zero
// budget disables adaptation.
func adaptiveThreshold(base int, used, budget int64) int {
	if budget <= 0 || used*2 < budget {
		return base
	}
	t := base / 2
	switch {
	case used*10 >= budget*9:
		t = base / 8
	case used*4 >= budget*3:
		t = base / 4
	}
	if t < 1 {
		t = 1
	}
	return t
}

// thresholdLocked is the current flush threshold under the adaptive policy.
func (c *Collector) thresholdLocked() int {
	if c.memBudget <= 0 {
		return c.batchSize
	}
	used := c.evBytes
	if c.spill != nil {
		used += c.spill.MemBytes()
	}
	return adaptiveThreshold(c.batchSize, used, c.memBudget)
}

// BatchThreshold reports the flush threshold currently in effect (equal to
// the configured batch size unless memory pressure has scaled it down).
func (c *Collector) BatchThreshold() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.thresholdLocked()
}

// SetOnFlush installs a pre-flight check invoked on each batch before it
// enters the pipeline (e.g. validation against an upstream contract, or a
// write-ahead persist that may fail). Its error decides the batch's fate
// using the pg fault taxonomy:
//
//   - a transient error (pg.IsTransient) keeps the batch buffered — the
//     next Flush retries it;
//   - any other error quarantines the batch (recorded in Skipped, dropped
//     from the buffer) and is remembered as Err.
//
// Must be set before elements arrive; not safe to change concurrently.
func (c *Collector) SetOnFlush(fn func(*pg.Batch) error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onFlush = fn
}

// AddNode buffers one node record, flushing if the batch is full. A flush
// failure is reported by Err (and by the next explicit Flush).
func (c *Collector) AddNode(rec pg.NodeRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf.Nodes = append(c.buf.Nodes, rec)
	c.elements++
	c.maybeFlushLocked()
}

// AddEdge buffers one edge record (endpoint labels must be resolved by the
// caller, as in pg.EdgeRecord), flushing if the batch is full. A flush
// failure is reported by Err (and by the next explicit Flush).
func (c *Collector) AddEdge(rec pg.EdgeRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf.Edges = append(c.buf.Edges, rec)
	c.elements++
	c.maybeFlushLocked()
}

func (c *Collector) maybeFlushLocked() {
	if c.buf.Len() >= c.thresholdLocked() {
		c.flushLocked()
	}
}

func (c *Collector) flushLocked() error {
	if c.buf.Len() == 0 {
		return nil
	}
	if c.onFlush != nil {
		if err := c.onFlush(&c.buf); err != nil {
			if pg.IsTransient(err) {
				return err // keep the buffer; retry on the next flush
			}
			c.skipped = append(c.skipped, core.SkipReport{Seq: c.slot, Reason: err.Error()})
			c.slot++
			c.buf = pg.Batch{}
			c.err = err
			return err
		}
	}
	batch := c.buf
	c.buf = pg.Batch{}
	if c.spill != nil && !c.spillStop {
		if err := c.spill.Enqueue(&batch); err == nil {
			c.flushes++
			c.slot++
			c.publishSpillLocked()
			c.spillCond.Broadcast()
			return nil
		}
		// Enqueue failed (spill-file I/O): degrade to synchronous
		// processing — correctness over backpressure relief. Wait out any
		// in-flight drain so the pipeline sees batches one at a time.
		for c.inFlight {
			c.spillCond.Wait()
		}
	}
	c.pipe.ProcessBatch(&batch)
	c.flushes++
	c.slot++
	c.refreshPressureLocked()
	return nil
}

// refreshPressureLocked re-reads the schema's evidence footprint after a
// processed batch — the only moment it can have grown.
func (c *Collector) refreshPressureLocked() {
	if c.memBudget > 0 {
		c.evBytes = c.pipe.Schema().EvidenceBytes()
	}
}

// Flush forces buffered elements into the pipeline immediately. The error
// is the OnFlush verdict: transient errors leave the buffer intact for a
// retry, others quarantine the batch.
func (c *Collector) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.flushLocked()
	c.waitDrainedLocked()
	return err
}

// Close flushes any remainder; the collector stays usable (Close is a
// synonym for Flush, provided for defer-friendly call sites).
func (c *Collector) Close() error { return c.Flush() }

// Err returns the last non-transient flush error, nil if every flush
// succeeded.
func (c *Collector) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Skipped lists batches quarantined by OnFlush.
func (c *Collector) Skipped() []core.SkipReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]core.SkipReport(nil), c.skipped...)
}

// Schema returns the pipeline's evolving schema. Call Flush first to
// include buffered elements. The returned schema aliases pipeline state:
// reading it is only safe while no other goroutine is concurrently adding
// elements (take a Finalize snapshot for concurrent consumption).
func (c *Collector) Schema() *schema.Schema {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.waitDrainedLocked()
	return c.pipe.Schema()
}

// Finalize flushes and runs post-processing, returning the schema
// definition.
func (c *Collector) Finalize() *schema.Def {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
	c.waitDrainedLocked()
	return c.pipe.Finalize()
}

// Stats reports collector progress.
func (c *Collector) Stats() (elements, flushes, buffered int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elements, c.flushes, c.buf.Len()
}
