package stream

import (
	"sync"

	"pghive/internal/pg"
)

// Fanout hash-partitions one batch Source across N per-shard Sources
// (pg.ShardOf / pg.PartitionBatch): every element of the upstream lands in
// exactly one shard, edges travel with their resolved endpoint labels, and
// the element→shard assignment is independent of the upstream's batch
// boundaries. Shard sources may be consumed from different goroutines; a
// pull on an empty shard queue advances the shared upstream under one
// mutex, enqueueing the non-empty sub-batches for every shard. Empty
// sub-batches are dropped — a shard only sees batches that carry at least
// one of its elements, and it sees them in upstream order.
type Fanout struct {
	mu     sync.Mutex
	src    pg.Source
	done   bool
	queues [][]*pg.Batch
}

// NewFanout wraps src for n shards (n < 1 is treated as 1).
func NewFanout(src pg.Source, n int) *Fanout {
	if n < 1 {
		n = 1
	}
	return &Fanout{src: src, queues: make([][]*pg.Batch, n)}
}

// Shards returns the shard count.
func (f *Fanout) Shards() int { return len(f.queues) }

// Shard returns shard i's Source view.
func (f *Fanout) Shard(i int) pg.Source { return &fanoutShard{f: f, i: i} }

// pull returns shard i's next sub-batch, pulling and partitioning upstream
// batches until one arrives for i or the upstream ends.
func (f *Fanout) pull(i int) *pg.Batch {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.queues[i]) == 0 && !f.done {
		b := f.src.Next()
		if b == nil {
			f.done = true
			break
		}
		for j, part := range pg.PartitionBatch(b, len(f.queues)) {
			if part.Len() > 0 {
				f.queues[j] = append(f.queues[j], part)
			}
		}
	}
	q := f.queues[i]
	if len(q) == 0 {
		return nil
	}
	f.queues[i] = q[1:]
	return q[0]
}

type fanoutShard struct {
	f *Fanout
	i int
}

// Next implements pg.Source.
func (s *fanoutShard) Next() *pg.Batch { return s.f.pull(s.i) }
