package stream

import (
	"fmt"
	"sync"
	"testing"

	"pghive/internal/core"
	"pghive/internal/pg"
)

func person(i int) pg.NodeRecord {
	return pg.NodeRecord{
		ID:     pg.ID(i),
		Labels: []string{"Person"},
		Props:  pg.Properties{"name": pg.Str(fmt.Sprintf("p%d", i)), "age": pg.Int(int64(i % 80))},
	}
}

func TestCollectorAutoFlush(t *testing.T) {
	c := NewCollector(core.NewPipeline(core.DefaultConfig()), 10)
	for i := 0; i < 25; i++ {
		c.AddNode(person(i))
	}
	elements, flushes, buffered := c.Stats()
	if elements != 25 {
		t.Errorf("elements = %d, want 25", elements)
	}
	if flushes != 2 {
		t.Errorf("flushes = %d, want 2 (two full batches)", flushes)
	}
	if buffered != 5 {
		t.Errorf("buffered = %d, want 5", buffered)
	}
	def := c.Finalize()
	if len(def.Nodes) != 1 || def.Nodes[0].Instances != 25 {
		t.Errorf("def = %d types / %d instances, want 1/25", len(def.Nodes), def.Nodes[0].Instances)
	}
	if _, flushes, buffered := c.Stats(); buffered != 0 || flushes != 3 {
		t.Errorf("after Finalize: flushes=%d buffered=%d, want 3/0", flushes, buffered)
	}
}

func TestCollectorEdges(t *testing.T) {
	c := NewCollector(core.NewPipeline(core.DefaultConfig()), 100)
	for i := 0; i < 10; i++ {
		c.AddNode(person(i))
	}
	for i := 0; i < 9; i++ {
		c.AddEdge(pg.EdgeRecord{
			ID: pg.ID(i), Labels: []string{"KNOWS"},
			Src: pg.ID(i), Dst: pg.ID(i + 1),
			SrcLabels: []string{"Person"}, DstLabels: []string{"Person"},
		})
	}
	def := c.Finalize()
	if len(def.Edges) != 1 || def.Edges[0].Name != "KNOWS" {
		t.Fatalf("edges = %+v, want one KNOWS type", def.Edges)
	}
}

func TestCollectorConcurrentProducers(t *testing.T) {
	c := NewCollector(core.NewPipeline(core.DefaultConfig()), 50)
	var wg sync.WaitGroup
	const producers, perProducer = 8, 200
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				c.AddNode(person(p*perProducer + i))
			}
		}(p)
	}
	wg.Wait()
	def := c.Finalize()
	total := 0
	for _, n := range def.Nodes {
		total += n.Instances
	}
	if total != producers*perProducer {
		t.Errorf("instances = %d, want %d (no element lost under concurrency)", total, producers*perProducer)
	}
}

func TestCollectorDefaultBatchSize(t *testing.T) {
	c := NewCollector(core.NewPipeline(core.DefaultConfig()), 0)
	if c.batchSize != DefaultBatchSize {
		t.Errorf("batchSize = %d, want %d", c.batchSize, DefaultBatchSize)
	}
}

func TestCollectorFlushEmptyIsNoop(t *testing.T) {
	c := NewCollector(core.NewPipeline(core.DefaultConfig()), 10)
	c.Flush()
	c.Close()
	if _, flushes, _ := c.Stats(); flushes != 0 {
		t.Errorf("empty flushes counted: %d", flushes)
	}
}

func TestCollectorSchemaVisibleMidStream(t *testing.T) {
	c := NewCollector(core.NewPipeline(core.DefaultConfig()), 5)
	for i := 0; i < 7; i++ {
		c.AddNode(person(i))
	}
	// One batch flushed; the schema already covers Person.
	s := c.Schema()
	if len(s.NodeTypes) != 1 || s.NodeTypes[0].Instances != 5 {
		t.Errorf("mid-stream schema = %d types / %d instances, want 1/5",
			len(s.NodeTypes), s.NodeTypes[0].Instances)
	}
}

// failNth returns an OnFlush hook that fails the nth flush attempt
// (0-based) with the given error.
func failNth(n int, err error) func(*pg.Batch) error {
	calls := 0
	return func(*pg.Batch) error {
		calls++
		if calls-1 == n {
			return err
		}
		return nil
	}
}

func TestCollectorOnFlushQuarantine(t *testing.T) {
	c := NewCollector(core.NewPipeline(core.DefaultConfig()), 5)
	c.SetOnFlush(failNth(1, &pg.CorruptBatchError{Seq: 1, Reason: "poisoned"}))
	for i := 0; i < 15; i++ {
		c.AddNode(person(i))
	}
	if err := c.Err(); err == nil || !pg.IsCorrupt(err) {
		t.Fatalf("Err() = %v, want the corrupt flush error", err)
	}
	skipped := c.Skipped()
	if len(skipped) != 1 || skipped[0].Seq != 1 || skipped[0].Reason == "" {
		t.Fatalf("Skipped() = %+v, want one report for slot 1", skipped)
	}
	// Two of three batches made it through; the schema reflects only them.
	_, flushes, _ := c.Stats()
	if flushes != 2 {
		t.Errorf("flushes = %d, want 2 (quarantined batch not processed)", flushes)
	}
	s := c.Schema()
	if len(s.NodeTypes) != 1 || s.NodeTypes[0].Instances != 10 {
		t.Errorf("schema has %d instances, want 10 (5 quarantined)", s.NodeTypes[0].Instances)
	}
}

func TestCollectorOnFlushTransientRetries(t *testing.T) {
	c := NewCollector(core.NewPipeline(core.DefaultConfig()), 100)
	c.SetOnFlush(failNth(0, &pg.TransientError{Err: fmt.Errorf("backpressure")}))
	for i := 0; i < 5; i++ {
		c.AddNode(person(i))
	}
	// First explicit flush hits the transient fault: buffer retained.
	if err := c.Flush(); err == nil || !pg.IsTransient(err) {
		t.Fatalf("first Flush = %v, want transient error", err)
	}
	if _, flushes, buffered := c.Stats(); flushes != 0 || buffered != 5 {
		t.Fatalf("after transient failure: flushes=%d buffered=%d, want 0/5", flushes, buffered)
	}
	if c.Err() != nil {
		t.Errorf("transient failures must not stick in Err: %v", c.Err())
	}
	// The retry succeeds and nothing was lost.
	if err := c.Flush(); err != nil {
		t.Fatalf("retry Flush: %v", err)
	}
	if _, flushes, buffered := c.Stats(); flushes != 1 || buffered != 0 {
		t.Errorf("after retry: flushes=%d buffered=%d, want 1/0", flushes, buffered)
	}
	if len(c.Skipped()) != 0 {
		t.Errorf("transient retry must not quarantine: %+v", c.Skipped())
	}
}

func TestCollectorFinalizeAfterQuarantine(t *testing.T) {
	c := NewCollector(core.NewPipeline(core.DefaultConfig()), 5)
	c.SetOnFlush(failNth(0, fmt.Errorf("sink unavailable")))
	for i := 0; i < 10; i++ {
		c.AddNode(person(i))
	}
	def := c.Finalize()
	if len(def.Nodes) != 1 {
		t.Fatalf("finalize after quarantine: %d node types, want 1", len(def.Nodes))
	}
	if len(c.Skipped()) != 1 {
		t.Errorf("Skipped() = %+v, want one report", c.Skipped())
	}
}
