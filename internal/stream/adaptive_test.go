package stream

import (
	"fmt"
	"testing"

	"pghive/internal/core"
	"pghive/internal/pg"
)

func TestAdaptiveThreshold(t *testing.T) {
	const base = 1000
	for _, tc := range []struct {
		used, budget int64
		want         int
	}{
		{0, 0, base}, // no budget: never adapts
		{1 << 40, 0, base},
		{0, 1000, base},
		{499, 1000, base}, // below half budget: base holds
		{500, 1000, 500},  // ≥ 1/2: halve
		{749, 1000, 500},
		{750, 1000, 250}, // ≥ 3/4: quarter
		{899, 1000, 250},
		{900, 1000, 125},  // ≥ 9/10: eighth
		{5000, 1000, 125}, // far over budget: clamped at base/8
	} {
		if got := adaptiveThreshold(base, tc.used, tc.budget); got != tc.want {
			t.Errorf("adaptiveThreshold(%d, %d, %d) = %d, want %d",
				base, tc.used, tc.budget, got, tc.want)
		}
	}
	// A tiny base never scales to zero.
	if got := adaptiveThreshold(4, 1000, 1000); got != 1 {
		t.Errorf("tiny base scaled to %d, want floor 1", got)
	}
}

// TestCollectorAdaptiveDownscale pins the wiring: under a memory budget the
// collector starts at the configured batch size, and once the evidence layer
// reports pressure past 9/10 of the budget the flush threshold drops to
// batchSize/8 — so the same insert stream produces more, smaller batches.
func TestCollectorAdaptiveDownscale(t *testing.T) {
	const batchSize = 64
	// A 1-byte budget means any non-empty schema saturates it, so the first
	// flush flips the collector to maximum downscale deterministically.
	cfg := core.Config{MemBudgetBytes: 1}
	c := NewCollector(core.NewPipeline(cfg), batchSize)

	if got := c.BatchThreshold(); got != batchSize {
		t.Fatalf("fresh collector threshold = %d, want %d", got, batchSize)
	}
	addNodes := func(n int) {
		for i := 0; i < n; i++ {
			c.AddNode(pg.NodeRecord{
				ID: pg.ID(c.elements + i + 1), Labels: []string{"Person"},
				Props: pg.Properties{"name": pg.Str(fmt.Sprintf("p%d", i))},
			})
		}
	}
	// The first flush happens at the full batch size (no pressure known yet).
	addNodes(batchSize)
	if _, flushes, buffered := c.stats(t); flushes != 1 || buffered != 0 {
		t.Fatalf("after %d inserts: flushes=%d buffered=%d, want 1 flush, empty buffer",
			batchSize, flushes, buffered)
	}
	// Evidence now exceeds the (1-byte) budget: threshold must be base/8.
	if got := c.BatchThreshold(); got != batchSize/8 {
		t.Fatalf("threshold under pressure = %d, want %d", got, batchSize/8)
	}
	// The next batchSize/8 inserts flush on their own — 8× smaller batches.
	addNodes(batchSize / 8)
	if _, flushes, buffered := c.stats(t); flushes != 2 || buffered != 0 {
		t.Fatalf("downscaled flush did not trigger: flushes=%d buffered=%d", flushes, buffered)
	}

	// An unbudgeted collector over the same stream keeps the full threshold.
	free := NewCollector(core.NewPipeline(core.Config{}), batchSize)
	for i := 0; i < batchSize+batchSize/8; i++ {
		free.AddNode(pg.NodeRecord{ID: pg.ID(i + 1), Labels: []string{"Person"},
			Props: pg.Properties{"name": pg.Str("p")}})
	}
	if _, flushes, buffered := free.stats(t); flushes != 1 || buffered != batchSize/8 {
		t.Fatalf("unbudgeted collector: flushes=%d buffered=%d, want 1 flush, %d buffered",
			flushes, buffered, batchSize/8)
	}
}

func (c *Collector) stats(t *testing.T) (elements, flushes, buffered int) {
	t.Helper()
	return c.Stats()
}
