package stream

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"pghive/internal/core"
	"pghive/internal/obs"
	"pghive/internal/pg"
)

func spillBatch(i, n int) *pg.Batch {
	b := &pg.Batch{}
	for j := 0; j < n; j++ {
		b.Nodes = append(b.Nodes, person(i*n+j))
	}
	if i > 0 {
		b.Edges = append(b.Edges, pg.EdgeRecord{
			ID: pg.ID(1000 + i), Labels: []string{"KNOWS"},
			Src: pg.ID(i * n), Dst: pg.ID(i*n - 1),
			SrcLabels: []string{"Person"}, DstLabels: []string{"Person"},
			Props: pg.Properties{"since": pg.Int(int64(i))},
		})
	}
	return b
}

// TestSpillQueueFIFO: batches come back in arrival order and structurally
// intact, whether they stayed resident or spilled through the wire codec.
func TestSpillQueueFIFO(t *testing.T) {
	for _, memLimit := range []int64{0, 1 << 20} {
		q := NewSpillQueue(t.TempDir(), memLimit)
		want := make([]*pg.Batch, 8)
		for i := range want {
			want[i] = spillBatch(i, 10)
			if err := q.Enqueue(want[i]); err != nil {
				t.Fatal(err)
			}
		}
		if memLimit == 0 && q.Spilled() != 8 {
			t.Errorf("memLimit=0: spilled %d of 8 batches", q.Spilled())
		}
		if memLimit > 0 && q.Spilled() != 0 {
			t.Errorf("roomy limit: spilled %d batches, want 0", q.Spilled())
		}
		for i := range want {
			got, err := q.Dequeue()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want[i]) {
				t.Fatalf("memLimit=%d: batch %d corrupted through the queue\nwant %+v\ngot  %+v",
					memLimit, i, want[i], got)
			}
		}
		if b, err := q.Dequeue(); b != nil || err != nil {
			t.Errorf("empty dequeue = (%v, %v), want (nil, nil)", b, err)
		}
		if err := q.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSpillQueueBounds: the resident estimate respects the limit, disk
// bytes drop back to zero when the backlog drains, and the spill file is
// reused rather than growing with the stream.
func TestSpillQueueBounds(t *testing.T) {
	limit := int64(4 << 10)
	q := NewSpillQueue(t.TempDir(), limit)
	defer q.Close()
	for round := 0; round < 3; round++ {
		for i := 0; i < 20; i++ {
			if err := q.Enqueue(spillBatch(i, 20)); err != nil {
				t.Fatal(err)
			}
			if q.MemBytes() > limit {
				t.Fatalf("resident %d bytes exceeds limit %d", q.MemBytes(), limit)
			}
		}
		if q.Spilled() == 0 {
			t.Fatal("20 batches under a 4KiB limit never spilled")
		}
		if q.DiskBytes() == 0 {
			t.Fatal("spilled batches report zero disk bytes")
		}
		for q.Len() > 0 {
			if _, err := q.Dequeue(); err != nil {
				t.Fatal(err)
			}
		}
		if q.DiskBytes() != 0 || q.MemBytes() != 0 {
			t.Fatalf("drained queue retains mem=%d disk=%d bytes", q.MemBytes(), q.DiskBytes())
		}
		if q.appendOff != 0 {
			t.Fatalf("round %d: spill file not truncated after drain (append offset %d)", round, q.appendOff)
		}
	}
}

// TestCollectorSpillMatchesSync: the same element stream through a spill
// collector and a plain one yields identical finalized schemas — the queue
// changes when batches are processed, never what they contain.
func TestCollectorSpillMatchesSync(t *testing.T) {
	feed := func(c *Collector) {
		for i := 0; i < 137; i++ {
			c.AddNode(person(i))
			if i > 0 && i%3 == 0 {
				c.AddEdge(pg.EdgeRecord{
					ID: pg.ID(10_000 + i), Labels: []string{"KNOWS"},
					Src: pg.ID(i), Dst: pg.ID(i - 1),
					SrcLabels: []string{"Person"}, DstLabels: []string{"Person"},
				})
			}
		}
	}

	plain := NewCollector(core.NewPipeline(core.DefaultConfig()), 25)
	feed(plain)
	wantDef := plain.Finalize()

	spilly := NewCollector(core.NewPipeline(core.DefaultConfig()), 25)
	spilly.EnableSpill(t.TempDir(), 0) // force every batch through disk
	feed(spilly)
	gotDef := spilly.Finalize()
	if err := spilly.CloseSpill(); err != nil {
		t.Fatal(err)
	}

	want, _ := json.Marshal(wantDef)
	got, _ := json.Marshal(gotDef)
	if !bytes.Equal(want, got) {
		t.Errorf("spill-mode schema diverges from synchronous\nwant %s\ngot  %s", want, got)
	}
}

// TestCollectorSpillConcurrentProducers: no element is lost when producers
// race the background drainer.
func TestCollectorSpillConcurrentProducers(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := core.DefaultConfig()
	cfg.Telemetry = reg
	c := NewCollector(core.NewPipeline(cfg), 50)
	c.EnableSpill(t.TempDir(), 2<<10)
	var wg sync.WaitGroup
	const producers, perProducer = 8, 200
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				c.AddNode(person(p*perProducer + i))
			}
		}(p)
	}
	wg.Wait()
	def := c.Finalize()
	if err := c.CloseSpill(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range def.Nodes {
		total += n.Instances
	}
	if total != producers*perProducer {
		t.Errorf("instances = %d, want %d (spill drainer lost elements)", total, producers*perProducer)
	}
	snap := reg.Snapshot()
	if snap.Counter(obs.CtrSpilledBatches) == 0 {
		t.Error("tight memory limit never spilled a batch (counter empty)")
	}
}

// TestCollectorSpillOnFlushContract: the OnFlush taxonomy survives spill
// mode — quarantined batches never reach the queue.
func TestCollectorSpillOnFlushContract(t *testing.T) {
	c := NewCollector(core.NewPipeline(core.DefaultConfig()), 5)
	c.EnableSpill(t.TempDir(), 0)
	c.SetOnFlush(failNth(1, &pg.CorruptBatchError{Seq: 1, Reason: "poisoned"}))
	for i := 0; i < 15; i++ {
		c.AddNode(person(i))
	}
	if err := c.Flush(); err != nil && !pg.IsCorrupt(err) {
		t.Fatalf("flush: %v", err)
	}
	s := c.Schema()
	if len(s.NodeTypes) != 1 || s.NodeTypes[0].Instances != 10 {
		t.Errorf("schema has %d instances, want 10 (5 quarantined)", s.NodeTypes[0].Instances)
	}
	if len(c.Skipped()) != 1 {
		t.Errorf("Skipped() = %+v, want one report", c.Skipped())
	}
	if err := c.CloseSpill(); err != nil {
		t.Fatal(err)
	}
}

// TestSpillQueueRejectsAfterClose guards the shutdown contract.
func TestSpillQueueRejectsAfterClose(t *testing.T) {
	q := NewSpillQueue(t.TempDir(), 0)
	if err := q.Enqueue(spillBatch(0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(spillBatch(1, 3)); err == nil {
		t.Error("enqueue after close succeeded")
	}
}
