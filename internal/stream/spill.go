package stream

import (
	"bytes"
	"fmt"
	"os"
	"sync"

	"pghive/internal/obs"
	"pghive/internal/pg"
)

// SpillQueue is a FIFO of batches with a bounded in-memory footprint:
// batches beyond the memory limit are encoded in the canonical wire format
// (pg.WriteBatch) and appended to a temp file, so ingestion backpressure —
// elements arriving faster than the pipeline extracts them — queues on disk
// instead of growing the heap without bound. Entries keep strict arrival
// order regardless of where they live. All methods are safe for concurrent
// use.
type SpillQueue struct {
	mu       sync.Mutex
	dir      string
	memLimit int64

	entries  []spillEntry
	memBytes int64

	f         *os.File // created lazily on first spill
	appendOff int64
	diskBytes int64
	spilled   uint64
	closed    bool

	// Dequeue decode scratch, reused across reads: the raw-bytes buffer and
	// a wire reader whose intern table keeps the stream's labels and
	// property keys deduped across every decoded batch.
	readBuf []byte
	dec     *pg.WireReader
	decSrc  *bytes.Reader
}

// spillEntry is one queued batch: resident (b != nil) or a [off, off+n)
// window of the spill file.
type spillEntry struct {
	b   *pg.Batch
	off int64
	n   int64
}

// NewSpillQueue returns an empty queue. Batches stay in memory until their
// estimated footprint exceeds memLimit bytes (≤ 0 means spill immediately —
// a pure disk queue); overflow goes to a temp file under dir ("" means the
// OS temp dir), removed again on Close.
func NewSpillQueue(dir string, memLimit int64) *SpillQueue {
	return &SpillQueue{dir: dir, memLimit: memLimit}
}

// batchMemEstimate approximates a batch's resident bytes: record headers
// plus label strings and rendered property payloads.
func batchMemEstimate(b *pg.Batch) int64 {
	est := int64(64)
	labels := func(ls []string) {
		est += 24
		for _, l := range ls {
			est += int64(len(l)) + 16
		}
	}
	props := func(p pg.Properties) {
		est += 48
		for k := range p {
			est += int64(len(k)) + 64
		}
	}
	for i := range b.Nodes {
		n := &b.Nodes[i]
		est += 48
		labels(n.Labels)
		props(n.Props)
	}
	for i := range b.Edges {
		e := &b.Edges[i]
		est += 96
		labels(e.Labels)
		labels(e.SrcLabels)
		labels(e.DstLabels)
		props(e.Props)
	}
	return est
}

// Enqueue appends one batch. The batch is retained (resident) or encoded
// (spilled); either way the caller must not mutate it afterwards.
func (q *SpillQueue) Enqueue(b *pg.Batch) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return fmt.Errorf("stream: spill queue closed")
	}
	est := batchMemEstimate(b)
	if q.memBytes+est <= q.memLimit {
		q.entries = append(q.entries, spillEntry{b: b})
		q.memBytes += est
		return nil
	}
	return q.spillLocked(b)
}

// spillLocked encodes b and appends it to the spill file.
func (q *SpillQueue) spillLocked(b *pg.Batch) error {
	if q.f == nil {
		f, err := os.CreateTemp(q.dir, "pghive-spill-*.bin")
		if err != nil {
			return fmt.Errorf("stream: create spill file: %w", err)
		}
		q.f = f
	}
	var buf bytes.Buffer
	w := pg.NewWireWriter(&buf)
	if err := pg.WriteBatch(w, b); err != nil {
		return fmt.Errorf("stream: encode spill batch: %w", err)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	n, err := q.f.WriteAt(buf.Bytes(), q.appendOff)
	if err != nil {
		return fmt.Errorf("stream: write spill batch: %w", err)
	}
	q.entries = append(q.entries, spillEntry{off: q.appendOff, n: int64(n)})
	q.appendOff += int64(n)
	q.diskBytes += int64(n)
	q.spilled++
	return nil
}

// Dequeue removes and returns the oldest batch, or (nil, nil) when the
// queue is empty. Draining the queue completely truncates the spill file,
// so disk usage is bounded by the largest backlog, not the stream length.
func (q *SpillQueue) Dequeue() (*pg.Batch, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.entries) == 0 {
		return nil, nil
	}
	e := q.entries[0]
	q.entries = q.entries[1:]
	if e.b != nil {
		q.memBytes -= batchMemEstimate(e.b)
		q.maybeResetLocked()
		return e.b, nil
	}
	if int64(cap(q.readBuf)) < e.n {
		q.readBuf = make([]byte, e.n)
	}
	raw := q.readBuf[:e.n]
	if _, err := q.f.ReadAt(raw, e.off); err != nil {
		return nil, fmt.Errorf("stream: read spill batch: %w", err)
	}
	if q.dec == nil {
		q.decSrc = bytes.NewReader(raw)
		q.dec = pg.NewWireReader(q.decSrc)
	} else {
		q.decSrc.Reset(raw)
		q.dec.Reset(q.decSrc)
	}
	b, err := pg.ReadBatch(q.dec)
	if err != nil {
		return nil, fmt.Errorf("stream: decode spill batch: %w", err)
	}
	q.diskBytes -= e.n
	q.maybeResetLocked()
	return b, nil
}

// maybeResetLocked truncates the spill file once nothing references it.
func (q *SpillQueue) maybeResetLocked() {
	if len(q.entries) != 0 || q.f == nil {
		return
	}
	if err := q.f.Truncate(0); err == nil {
		q.appendOff = 0
	}
	q.diskBytes = 0
	q.memBytes = 0
}

// Len returns the number of queued batches.
func (q *SpillQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.entries)
}

// MemBytes returns the estimated resident bytes of in-memory entries.
func (q *SpillQueue) MemBytes() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.memBytes
}

// DiskBytes returns the encoded bytes of live on-disk entries.
func (q *SpillQueue) DiskBytes() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.diskBytes
}

// Spilled returns how many batches overflowed to disk so far (monotone).
func (q *SpillQueue) Spilled() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.spilled
}

// Close releases the spill file (the temp file is removed). Queued entries
// are discarded; a closed queue rejects further enqueues.
func (q *SpillQueue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.entries = nil
	q.memBytes, q.diskBytes = 0, 0
	if q.f == nil {
		return nil
	}
	name := q.f.Name()
	err := q.f.Close()
	q.f = nil
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	return err
}

// EnableSpill decouples ingestion from processing: full batches are pushed
// onto a SpillQueue (resident up to memLimit bytes, then spill-to-disk in
// the canonical wire format) and a background drainer feeds them into the
// pipeline in arrival order. AddNode/AddEdge then never block on extraction
// — backpressure accumulates in the queue, bounded in memory by memLimit —
// and a burst that outruns the pipeline lands on disk instead of the heap.
//
// The OnFlush contract is unchanged (it runs when a batch leaves the
// collector buffer, before it is queued). Flush and Finalize wait for the
// queue to drain, so their "buffered elements are in the schema" guarantee
// holds. Queue telemetry (spill gauges, spilled-batch counter) goes to the
// pipeline's configured sink.
//
// Must be called before elements arrive; call CloseSpill to stop the
// drainer and remove the spill file.
func (c *Collector) EnableSpill(dir string, memLimit int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.spill != nil {
		return
	}
	c.spill = NewSpillQueue(dir, memLimit)
	c.spillCond = sync.NewCond(&c.mu)
	c.instr = obs.NewInstr(c.pipe.Config().Telemetry)
	c.drainerDone = false
	go c.drainLoop()
}

// CloseSpill flushes, waits for the drainer to finish every queued batch,
// stops it and removes the spill file. The collector reverts to synchronous
// flushing.
func (c *Collector) CloseSpill() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.spill == nil {
		return nil
	}
	c.flushLocked()
	c.waitDrainedLocked()
	c.spillStop = true
	c.spillCond.Broadcast()
	for !c.drainerDone {
		c.spillCond.Wait()
	}
	err := c.spill.Close()
	c.spill = nil
	c.spillStop = false
	return err
}

// drainLoop is the background consumer: it moves batches from the queue
// into the pipeline, one at a time, in arrival order.
func (c *Collector) drainLoop() {
	c.mu.Lock()
	for {
		for !c.spillStop && (c.spill == nil || c.spill.Len() == 0) {
			c.spillCond.Wait()
		}
		if c.spill == nil || c.spill.Len() == 0 {
			break // stopping and drained
		}
		b, err := c.spill.Dequeue()
		if err != nil {
			c.err = err
			c.spillCond.Broadcast()
			continue
		}
		if b == nil {
			continue
		}
		// Process outside the lock so ingestion keeps flowing; inFlight
		// keeps Flush/Finalize honest about the batch being mid-extraction.
		c.inFlight = true
		c.mu.Unlock()
		c.pipe.ProcessBatch(b)
		c.mu.Lock()
		c.inFlight = false
		c.refreshPressureLocked()
		c.publishSpillLocked()
		c.spillCond.Broadcast()
	}
	c.drainerDone = true
	c.spillCond.Broadcast()
	c.mu.Unlock()
}

// waitDrainedLocked blocks until the queue is empty and no batch is
// mid-extraction.
func (c *Collector) waitDrainedLocked() {
	for c.spill != nil && (c.spill.Len() > 0 || c.inFlight) {
		c.spillCond.Wait()
	}
}

// publishSpillLocked emits the queue's current levels and the cumulative
// spill counter delta.
func (c *Collector) publishSpillLocked() {
	if c.spill == nil {
		return
	}
	c.instr.Gauge(obs.GaugeSpillMemBytes, uint64(c.spill.MemBytes()))
	c.instr.Gauge(obs.GaugeSpillDiskBytes, uint64(c.spill.DiskBytes()))
	if s := c.spill.Spilled(); s > c.lastSpilled {
		c.instr.Add(obs.CtrSpilledBatches, s-c.lastSpilled)
		c.lastSpilled = s
	}
}
