package stream

import (
	"sync"
	"testing"

	"pghive/internal/pg"
)

// fanoutGraph builds a fixed element population chopped into batches of the
// given size — same elements, different batch boundaries.
func fanoutGraph(batchSize int) []*pg.Batch {
	const nodes, edges = 120, 80
	var all pg.Batch
	for i := 0; i < nodes; i++ {
		all.Nodes = append(all.Nodes, person(i))
	}
	for i := 0; i < edges; i++ {
		all.Edges = append(all.Edges, pg.EdgeRecord{
			ID: pg.ID(1000 + i), Labels: []string{"KNOWS"},
			Src: pg.ID(i), Dst: pg.ID((i + 1) % nodes),
			SrcLabels: []string{"Person"}, DstLabels: []string{"Person"},
		})
	}
	var out []*pg.Batch
	for len(all.Nodes) > 0 || len(all.Edges) > 0 {
		b := &pg.Batch{}
		for len(b.Nodes) < batchSize && len(all.Nodes) > 0 {
			b.Nodes = append(b.Nodes, all.Nodes[0])
			all.Nodes = all.Nodes[1:]
		}
		for b.Len() < batchSize && len(all.Edges) > 0 {
			b.Edges = append(b.Edges, all.Edges[0])
			all.Edges = all.Edges[1:]
		}
		out = append(out, b)
	}
	return out
}

// drainShard pulls shard i to exhaustion, recording element IDs in arrival
// order.
func drainShard(f *Fanout, i int) []pg.ID {
	var ids []pg.ID
	for b := f.Shard(i).Next(); b != nil; b = f.Shard(i).Next() {
		for _, n := range b.Nodes {
			ids = append(ids, n.ID)
		}
		for _, e := range b.Edges {
			ids = append(ids, e.ID)
		}
	}
	return ids
}

func TestFanoutExactlyOnce(t *testing.T) {
	const shards = 4
	f := NewFanout(pg.NewSliceSource(fanoutGraph(16)...), shards)
	seen := map[pg.ID]int{}
	total := 0
	for i := 0; i < shards; i++ {
		for _, id := range drainShard(f, i) {
			seen[id]++
			total++
		}
	}
	if total != 200 {
		t.Fatalf("delivered %d elements, want 200", total)
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("element %v delivered %d times", id, n)
		}
	}
}

func TestFanoutDeterministicAcrossBatchBoundaries(t *testing.T) {
	// The same population chopped into different batch sizes must give every
	// shard the same element set, in the same relative order — the hash
	// assignment may not depend on where the batch boundaries fall.
	const shards = 3
	perShard := func(batchSize int) [][]pg.ID {
		f := NewFanout(pg.NewSliceSource(fanoutGraph(batchSize)...), shards)
		out := make([][]pg.ID, shards)
		for i := range out {
			out[i] = drainShard(f, i)
		}
		return out
	}
	want := perShard(7)
	for _, size := range []int{1, 16, 50, 500} {
		got := perShard(size)
		for i := range got {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("batch size %d: shard %d got %d elements, want %d", size, i, len(got[i]), len(want[i]))
			}
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("batch size %d: shard %d diverges at position %d: %v vs %v",
						size, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestFanoutNoEmptyBatches(t *testing.T) {
	// With far more shards than elements, most sub-batches are empty and
	// must be dropped, not delivered.
	f := NewFanout(pg.NewSliceSource(&pg.Batch{Nodes: []pg.NodeRecord{person(1), person(2)}}), 64)
	batches := 0
	for i := 0; i < 64; i++ {
		for b := f.Shard(i).Next(); b != nil; b = f.Shard(i).Next() {
			batches++
			if b.Len() == 0 {
				t.Fatal("delivered an empty sub-batch")
			}
		}
	}
	if batches > 2 {
		t.Fatalf("delivered %d sub-batches for 2 elements", batches)
	}
}

func TestFanoutConcurrentConsumers(t *testing.T) {
	// Shard sources are pulled from one goroutine each (the sharded
	// discovery layout); the shared upstream advance must be safe and still
	// exactly-once.
	const shards = 8
	f := NewFanout(pg.NewSliceSource(fanoutGraph(10)...), shards)
	results := make([][]pg.ID, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = drainShard(f, i)
		}(i)
	}
	wg.Wait()
	seen := map[pg.ID]bool{}
	for i, ids := range results {
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("element %v delivered twice (last to shard %d)", id, i)
			}
			seen[id] = true
			if got := pg.ShardOf(id, shards); got != i {
				t.Fatalf("element %v delivered to shard %d, ShardOf says %d", id, i, got)
			}
		}
	}
	if len(seen) != 200 {
		t.Fatalf("delivered %d distinct elements, want 200", len(seen))
	}
}

func TestFanoutSingleShardPassesEverything(t *testing.T) {
	f := NewFanout(pg.NewSliceSource(fanoutGraph(16)...), 1)
	if f.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", f.Shards())
	}
	if got := len(drainShard(f, 0)); got != 200 {
		t.Fatalf("single shard got %d elements, want 200", got)
	}
	// n < 1 clamps to 1.
	if NewFanout(pg.NewSliceSource(), 0).Shards() != 1 {
		t.Fatal("NewFanout(.., 0) must clamp to one shard")
	}
}
