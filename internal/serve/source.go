package serve

import (
	"sync/atomic"
	"time"

	"pghive/internal/pg"
)

// StopSource wraps a fallible batch source with a graceful stop switch:
// after Stop the source reports end-of-stream, so the engine finishes the
// in-flight batches, writes its last checkpoint and finalizes cleanly. A
// restarted server resumes from that checkpoint byte-identically — the
// batches already folded in are skipped, the rest replay.
type StopSource struct {
	src     pg.ErrSource
	stopped atomic.Bool
}

// NewStopSource wraps src.
func NewStopSource(src pg.ErrSource) *StopSource { return &StopSource{src: src} }

// Next pulls the next batch, or reports end-of-stream once stopped.
func (s *StopSource) Next() (*pg.Batch, error) {
	if s.stopped.Load() {
		return nil, nil
	}
	return s.src.Next()
}

// Stop makes every subsequent Next report end-of-stream. Safe to call from
// any goroutine, any number of times.
func (s *StopSource) Stop() { s.stopped.Store(true) }

// Stopped reports whether Stop was called.
func (s *StopSource) Stopped() bool { return s.stopped.Load() }

// PaceSource throttles a batch stream: every pull after the first sleeps
// for the configured delay, so a pre-materialized workload replays as a
// live trickle and the server stays observably resident (demos, soak).
type PaceSource struct {
	src    pg.ErrSource
	delay  time.Duration
	pulled bool
}

// NewPaceSource wraps src with a fixed inter-batch delay (≤ 0 returns src's
// batches unthrottled).
func NewPaceSource(src pg.ErrSource, delay time.Duration) *PaceSource {
	return &PaceSource{src: src, delay: delay}
}

// Next pulls the next batch after the pacing delay.
func (p *PaceSource) Next() (*pg.Batch, error) {
	if p.pulled && p.delay > 0 {
		time.Sleep(p.delay)
	}
	p.pulled = true
	return p.src.Next()
}
