// Package serve is the resident schema service: a long-running process that
// ingests a property-graph stream through the existing discovery engines
// (serial, overlapped or sharded, fault-tolerant, checkpointed) while
// concurrent readers query the current schema over HTTP at four progressive
// detail tiers.
//
// The performance contract is on the read path. At every EpochInterval
// batches the writer publishes an immutable Epoch — the finalized schema
// Def plus its diff against the previous epoch — through a copy-on-write
// atomic.Pointer swap, so readers never take a lock and never observe a
// half-merged schema. On top of each epoch sits a render-once response
// cache: every (epoch, tier, type-filter) response is materialized exactly
// once (sync.Once) and then served as pre-encoded bytes until the next
// epoch swap implicitly invalidates the whole cache by replacing the
// pointer. A cache hit costs one atomic load and zero allocations
// (BenchmarkServeCacheHit, asserted in CI).
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pghive/internal/obs"
	"pghive/internal/schema"
)

// Tier is one progressive detail level of the schema API, mirroring the
// indra_cogex schema-discovery tool's detail_level parameter: summary
// (counts + type names), types (per-type property statistics), patterns
// (edge connectivity triples), full (the complete schema JSON).
type Tier uint8

// Detail tiers, cheapest first.
const (
	TierSummary Tier = iota
	TierTypes
	TierPatterns
	TierFull
	numTiers
)

// NumTiers is the number of detail tiers.
const NumTiers = int(numTiers)

var tierNames = [numTiers]string{"summary", "types", "patterns", "full"}

// String returns the tier's query-parameter spelling.
func (t Tier) String() string {
	if int(t) < len(tierNames) {
		return tierNames[t]
	}
	return "unknown"
}

// ParseTier parses a ?detail= value ("" means summary).
func ParseTier(s string) (Tier, error) {
	switch s {
	case "", "summary":
		return TierSummary, nil
	case "types":
		return TierTypes, nil
	case "patterns":
		return TierPatterns, nil
	case "full":
		return TierFull, nil
	default:
		return TierSummary, fmt.Errorf("serve: unknown detail tier %q (want summary, types, patterns or full)", s)
	}
}

// Rendered is one materialized response: the pre-encoded body plus the
// one-time cost of producing it. Immutable after construction; served
// verbatim on every subsequent hit.
type Rendered struct {
	// Body is the response payload (JSON).
	Body []byte
	// RenderTime is what materializing the body cost, once.
	RenderTime time.Duration
	// TokenEstimate approximates the response's LLM token footprint
	// (len/4), mirroring the snippet the tier API follows.
	TokenEstimate int
}

// renderSlot holds one response's render-once machinery: the fast path is a
// single atomic load; the slow path funnels every racing miss through one
// sync.Once so the body is rendered exactly once per epoch.
type renderSlot struct {
	once sync.Once
	r    atomic.Pointer[Rendered]
}

func (s *renderSlot) get(render func() *Rendered) (resp *Rendered, hit bool) {
	if r := s.r.Load(); r != nil {
		return r, true
	}
	s.once.Do(func() { s.r.Store(render()) })
	return s.r.Load(), false
}

// Epoch is one published schema snapshot: immutable, safe to retain and to
// read from any number of goroutines while the writer merges batches into
// the next epoch underneath.
type Epoch struct {
	// ID is the 1-based publication sequence (0 is the boot placeholder
	// served before the first interval completes).
	ID int
	// Batches is how many batches had been extracted when the snapshot was
	// taken; Seq is the stream sequence number of the closing batch.
	Batches int
	Seq     int
	// Final marks the epoch published when ingestion completed.
	Final bool
	// Published is the wall-clock publication instant.
	Published time.Time
	// Def is the finalized schema at this epoch.
	Def *schema.Def
	// Diff is the change report against the previously published epoch
	// (empty for the baseline).
	Diff schema.DiffReport

	// tiers caches the unfiltered response per detail tier; filtered caches
	// (tier, type-filter) responses under string keys. Both are lock-free on
	// the hit path (atomic pointer load / sync.Map read).
	tiers    [numTiers]renderSlot
	filtered sync.Map // "tier|type" -> *renderSlot
	instr    obs.Instr
}

// Rendered returns the epoch's response for one tier, rendering it on the
// first call and serving the cached bytes afterwards. The hit path performs
// one atomic load, takes no mutex and allocates nothing.
func (e *Epoch) Rendered(t Tier) (*Rendered, bool) {
	return e.tiers[t].get(func() *Rendered { return e.render(t, "") })
}

// RenderedFiltered is Rendered with an optional type-name filter; the empty
// filter is the unfiltered tier cache.
func (e *Epoch) RenderedFiltered(t Tier, typeName string) (*Rendered, bool) {
	if typeName == "" {
		return e.Rendered(t)
	}
	key := t.String() + "|" + typeName
	v, ok := e.filtered.Load(key)
	if !ok {
		v, _ = e.filtered.LoadOrStore(key, &renderSlot{})
	}
	return v.(*renderSlot).get(func() *Rendered { return e.render(t, typeName) })
}

// render materializes one response body and records the one-time cost.
func (e *Epoch) render(t Tier, typeFilter string) *Rendered {
	start := time.Now()
	body := renderTier(e, t, typeFilter)
	d := time.Since(start)
	e.instr.Add(obs.CtrServeRenders, 1)
	e.instr.Observe(obs.HistServeRenderMicros, uint64(d.Microseconds()))
	return &Rendered{Body: body, RenderTime: d, TokenEstimate: (len(body) + 3) / 4}
}
