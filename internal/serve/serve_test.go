package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"pghive/internal/core"
	"pghive/internal/pg"
	"pghive/internal/serialize"
)

// stream builds a deterministic batched workload: Person/Org nodes joined by
// WORKS_AT edges, with a schema that keeps growing (a new property every few
// batches) so consecutive epochs actually differ.
func stream(batches int) []*pg.Batch {
	var out []*pg.Batch
	id := pg.ID(1)
	next := func() pg.ID { id++; return id - 1 }
	for i := 0; i < batches; i++ {
		b := &pg.Batch{}
		o := pg.NodeRecord{ID: next(), Labels: []string{"Org"}, Props: pg.Properties{"name": pg.Str("o")}}
		b.Nodes = append(b.Nodes, o)
		for j := 0; j < 10; j++ {
			props := pg.Properties{"name": pg.Str("p"), "age": pg.Int(int64(20 + j))}
			// Schema growth: later batches introduce new properties so the
			// published epochs differ and /epochs carries real diffs.
			if i >= 4 {
				props["email"] = pg.Str("p@example.com")
			}
			if i >= 8 {
				props["city"] = pg.Str("x")
			}
			p := pg.NodeRecord{ID: next(), Labels: []string{"Person"}, Props: props}
			b.Nodes = append(b.Nodes, p)
			b.Edges = append(b.Edges, pg.EdgeRecord{
				ID: next(), Labels: []string{"WORKS_AT"}, Src: p.ID, Dst: o.ID,
				SrcLabels: []string{"Person"}, DstLabels: []string{"Org"},
				Props: pg.Properties{"since": pg.Int(2020)},
			})
		}
		out = append(out, b)
	}
	return out
}

func src(batches []*pg.Batch) pg.ErrSource {
	return pg.AsErrSource(pg.NewSliceSource(batches...))
}

// TestServeFullByteIdentical is the acceptance criterion: after ingest
// completes, the served detail=full response is byte-identical to the batch
// Discover output over the same input.
func TestServeFullByteIdentical(t *testing.T) {
	batches := stream(12)
	cfg := core.Config{EpochInterval: 4}

	want := core.Discover(pg.NewSliceSource(batches...), cfg)
	var wantJSON bytes.Buffer
	if err := serialize.WriteJSON(&wantJSON, want.Def); err != nil {
		t.Fatal(err)
	}

	s := NewServer(nil)
	res, err := s.Ingest(src(batches), IngestOptions{Config: cfg})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if len(res.Reports) != 12 {
		t.Fatalf("reports = %d, want 12", len(res.Reports))
	}
	e := s.Current()
	if !e.Final {
		t.Fatalf("current epoch not final after ingest: %+v", e.ID)
	}
	resp, hit := e.Rendered(TierFull)
	if hit {
		t.Fatal("first render must be a miss")
	}
	if !bytes.Equal(resp.Body, wantJSON.Bytes()) {
		t.Fatalf("served full schema differs from batch Discover output\nserved: %s\nbatch:  %s",
			resp.Body, wantJSON.Bytes())
	}
	if _, hit := e.Rendered(TierFull); !hit {
		t.Fatal("second render must be a cache hit")
	}
}

// TestServeEpochProgression pins the epoch publication cadence: interval 4
// over 12 batches publishes epochs at batch frontiers 4, 8, 12 — the last one
// final — each carrying the diff against its predecessor.
func TestServeEpochProgression(t *testing.T) {
	s := NewServer(nil)
	if _, err := s.Ingest(src(stream(12)), IngestOptions{Config: core.Config{EpochInterval: 4}}); err != nil {
		t.Fatal(err)
	}
	hist := s.Epochs()
	if len(hist) != 3 {
		t.Fatalf("epochs = %d, want 3 (frontiers 4, 8, 12)", len(hist))
	}
	for i, wantBatches := range []int{4, 8, 12} {
		if hist[i].Batches != wantBatches {
			t.Errorf("epoch %d frontier = %d, want %d", i+1, hist[i].Batches, wantBatches)
		}
		if hist[i].ID != i+1 {
			t.Errorf("epoch ID = %d, want %d", hist[i].ID, i+1)
		}
	}
	if hist[0].Final || hist[1].Final || !hist[2].Final {
		t.Errorf("finality flags wrong: %v %v %v", hist[0].Final, hist[1].Final, hist[2].Final)
	}
	// The stream grows (email at batch 4, city at batch 8), so both later
	// epochs must report changes against their predecessors.
	if len(hist[1].Diff.Changes) == 0 || len(hist[2].Diff.Changes) == 0 {
		t.Errorf("expected non-empty diffs, got %d and %d changes",
			len(hist[1].Diff.Changes), len(hist[2].Diff.Changes))
	}
}

// TestServeShardedPublishes runs a sharded ingest and checks that the
// checkpoint-tee path publishes mid-stream fleet epochs (not only the final
// one) and that the final schema matches the batch sharded run.
func TestServeShardedPublishes(t *testing.T) {
	batches := stream(16)
	cfg := core.Config{Shards: 2, EpochInterval: 4}

	want := core.DiscoverSharded(pg.NewSliceSource(batches...), cfg)
	var wantJSON bytes.Buffer
	if err := serialize.WriteJSON(&wantJSON, want.Def); err != nil {
		t.Fatal(err)
	}

	s := NewServer(nil)
	if _, err := s.Ingest(src(batches), IngestOptions{Config: cfg}); err != nil {
		t.Fatal(err)
	}
	e := s.Current()
	if !e.Final {
		t.Fatal("final epoch not published")
	}
	resp, _ := e.Rendered(TierFull)
	if !bytes.Equal(resp.Body, wantJSON.Bytes()) {
		t.Fatalf("sharded served schema differs from DiscoverSharded output")
	}
	// The async merge may skip boundaries under scheduler pressure, but the
	// final publish always lands, so at least one epoch exists and the
	// frontier is monotone.
	hist := s.Epochs()
	if len(hist) == 0 {
		t.Fatal("no epochs published")
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Batches < hist[i-1].Batches {
			t.Fatalf("epoch frontier regressed: %d after %d", hist[i].Batches, hist[i-1].Batches)
		}
	}
}

// TestServeGracefulResume stops an ingest mid-stream via StopIngest, then
// resumes a fresh server from the checkpoint: the resumed run's final schema
// must be byte-identical to an uninterrupted run.
func TestServeGracefulResume(t *testing.T) {
	batches := stream(12)
	cfg := core.Config{EpochInterval: 4}

	want := core.Discover(pg.NewSliceSource(batches...), cfg)
	var wantJSON bytes.Buffer
	if err := serialize.WriteJSON(&wantJSON, want.Def); err != nil {
		t.Fatal(err)
	}

	// First server: stop after the 5th batch has been pulled.
	ck := &memCheckpointer{}
	s1 := NewServer(nil)
	var pulled atomic.Int64
	gate := &gateSource{src: src(batches), after: 5, hit: func() { s1.StopIngest() }, pulled: &pulled}
	if _, err := s1.Ingest(gate, IngestOptions{Config: cfg, FT: core.FTOptions{Checkpoint: ck}}); err != nil {
		t.Fatalf("interrupted ingest: %v", err)
	}
	if pulled.Load() >= int64(len(batches)) {
		t.Fatalf("stop did not interrupt the stream (pulled %d)", pulled.Load())
	}
	ck.mu.Lock()
	state := append([]byte(nil), ck.state...)
	ck.mu.Unlock()
	if len(state) == 0 {
		t.Fatal("no checkpoint written before stop")
	}

	// Second server: resume from the checkpoint over a full replay.
	s2 := NewServer(nil)
	if _, err := s2.Ingest(src(batches), IngestOptions{Config: cfg, FT: core.FTOptions{Checkpoint: ck}, Resume: state}); err != nil {
		t.Fatalf("resumed ingest: %v", err)
	}
	resp, _ := s2.Current().Rendered(TierFull)
	if !bytes.Equal(resp.Body, wantJSON.Bytes()) {
		t.Fatal("resumed served schema differs from uninterrupted run")
	}
}

// gateSource counts pulls and fires a hook once after the Nth.
type gateSource struct {
	src    pg.ErrSource
	after  int64
	hit    func()
	fired  bool
	pulled *atomic.Int64
}

func (g *gateSource) Next() (*pg.Batch, error) {
	n := g.pulled.Add(1)
	if n > g.after && !g.fired {
		g.fired = true
		g.hit()
	}
	return g.src.Next()
}

// TestServeHTTPEndpoints exercises the four endpoints over a real listener.
func TestServeHTTPEndpoints(t *testing.T) {
	s := NewServer(nil)
	if _, err := s.Ingest(src(stream(8)), IngestOptions{Config: core.Config{EpochInterval: 4}}); err != nil {
		t.Fatal(err)
	}
	addr, closer, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	get := func(path string) (int, http.Header, []byte) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header, body
	}

	for _, tier := range []string{"summary", "types", "patterns", "full"} {
		code, hdr, body := get("/schema?detail=" + tier)
		if code != http.StatusOK {
			t.Fatalf("/schema?detail=%s -> %d", tier, code)
		}
		if !json.Valid(body) {
			t.Fatalf("detail=%s body is not valid JSON", tier)
		}
		if hdr.Get("X-PGHive-Epoch") == "" || hdr.Get("X-PGHive-Serve-Micros") == "" {
			t.Fatalf("detail=%s missing timing headers: %v", tier, hdr)
		}
		if tier != "full" {
			var env struct {
				DetailLevel   string `json:"detail_level"`
				Epoch         int    `json:"epoch"`
				RenderTimeUs  *int64 `json:"render_time_us"`
				TokenEstimate int    `json:"token_estimate"`
			}
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("detail=%s envelope: %v", tier, err)
			}
			if env.DetailLevel != tier || env.Epoch == 0 || env.RenderTimeUs == nil || env.TokenEstimate == 0 {
				t.Fatalf("detail=%s envelope wrong: %+v", tier, env)
			}
		}
		// Second request must be a cache hit serving identical bytes.
		_, hdr2, body2 := get("/schema?detail=" + tier)
		if hdr2.Get("X-PGHive-Cache") != "hit" {
			t.Fatalf("detail=%s second request not a cache hit", tier)
		}
		if !bytes.Equal(body, body2) {
			t.Fatalf("detail=%s cached bytes differ", tier)
		}
	}

	// Type filter narrows the summary.
	code, _, body := get("/schema?detail=summary&type=Person")
	if code != http.StatusOK {
		t.Fatalf("filtered summary -> %d", code)
	}
	var sum struct {
		NodeTypes []string `json:"node_types"`
		EdgeTypes []string `json:"edge_types"`
	}
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.NodeTypes) != 1 || sum.NodeTypes[0] != "Person" || len(sum.EdgeTypes) != 0 {
		t.Fatalf("type filter leaked: %+v", sum)
	}

	// Unknown tier is a 400 with a JSON error body.
	code, _, body = get("/schema?detail=everything")
	if code != http.StatusBadRequest || !json.Valid(body) {
		t.Fatalf("bad tier -> %d %s", code, body)
	}

	code, _, body = get("/epochs")
	if code != http.StatusOK {
		t.Fatalf("/epochs -> %d", code)
	}
	var eps struct {
		Current int `json:"current_epoch"`
		Epochs  []struct {
			Epoch   int  `json:"epoch"`
			Batches int  `json:"batches"`
			Final   bool `json:"final"`
		} `json:"epochs"`
	}
	if err := json.Unmarshal(body, &eps); err != nil {
		t.Fatal(err)
	}
	if len(eps.Epochs) != 2 || eps.Current != 2 || !eps.Epochs[1].Final {
		t.Fatalf("/epochs wrong: %+v", eps)
	}

	code, _, body = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz -> %d", code)
	}
	var hz struct {
		Status string `json:"status"`
		Ingest string `json:"ingest"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Ingest != "done" {
		t.Fatalf("/healthz wrong: %+v", hz)
	}

	code, _, body = get("/metrics")
	if code != http.StatusOK || !json.Valid(body) {
		t.Fatalf("/metrics -> %d", code)
	}
}

// TestServeConcurrentReadIngest is the -race hammer: readers pound all four
// tiers over HTTP while a multi-epoch ingest runs underneath. Every response
// must be valid JSON, epochs observed by any one reader must be monotone, and
// a retained early epoch must serve identical bytes afterwards (immutability).
func TestServeConcurrentReadIngest(t *testing.T) {
	s := NewServer(nil)
	addr, closer, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	// Retain the first real epoch and its rendered bytes as the immutability
	// witness.
	var witness struct {
		mu   sync.Mutex
		e    *Epoch
		body []byte
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	tiers := []string{"summary", "types", "patterns", "full"}
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastEpoch := 0
			client := &http.Client{}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				resp, err := client.Get(fmt.Sprintf("http://%s/schema?detail=%s", addr, tiers[i%len(tiers)]))
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if !json.Valid(body) {
					t.Errorf("reader %d: invalid JSON at tier %s", r, tiers[i%len(tiers)])
					return
				}
				var epoch int
				fmt.Sscanf(resp.Header.Get("X-PGHive-Epoch"), "%d", &epoch)
				if epoch < lastEpoch {
					t.Errorf("reader %d: epoch regressed %d -> %d", r, lastEpoch, epoch)
					return
				}
				lastEpoch = epoch
				if epoch >= 1 {
					witness.mu.Lock()
					if witness.e == nil {
						e := s.Current()
						rd, _ := e.Rendered(TierFull)
						witness.e, witness.body = e, append([]byte(nil), rd.Body...)
					}
					witness.mu.Unlock()
				}
			}
		}(r)
	}

	if _, err := s.Ingest(src(stream(24)), IngestOptions{Config: core.Config{EpochInterval: 2}}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	close(done)
	wg.Wait()

	if len(s.Epochs()) < 3 {
		t.Fatalf("want multiple epochs during hammer, got %d", len(s.Epochs()))
	}
	witness.mu.Lock()
	defer witness.mu.Unlock()
	if witness.e != nil {
		rd, hit := witness.e.Rendered(TierFull)
		if !hit {
			t.Error("witness epoch lost its cache")
		}
		if !bytes.Equal(rd.Body, witness.body) {
			t.Error("retained epoch's bytes changed after later publishes — epoch not immutable")
		}
	}
}

// TestPublishMonotone pins the frontier guard: a stale async publish (lower
// batch frontier) is dropped, an equal-frontier non-final republish is
// dropped, and finality can only be stamped once.
func TestPublishMonotone(t *testing.T) {
	s := NewServer(nil)
	d1 := core.Discover(pg.NewSliceSource(stream(4)...), core.Config{}).Def
	d2 := core.Discover(pg.NewSliceSource(stream(8)...), core.Config{}).Def

	e1 := s.publish(d1, 8, 7, false)
	if e1.ID != 1 {
		t.Fatalf("first publish ID = %d", e1.ID)
	}
	if e := s.publish(d2, 4, 3, false); e.ID != 1 {
		t.Fatal("stale frontier must be dropped")
	}
	if e := s.publish(d2, 8, 7, false); e.ID != 1 {
		t.Fatal("equal-frontier non-final republish must be dropped")
	}
	if e := s.publish(d2, 8, 7, true); e.ID != 1 || !e.Final {
		t.Fatal("final publish over equal frontier must upgrade in place")
	}
	if e := s.publish(d2, 8, 7, true); e.ID != 1 {
		t.Fatal("double-final must be dropped")
	}
	if e := s.publish(d2, 12, 11, false); e.ID != 2 {
		t.Fatal("a fresher frontier after finality must still land")
	}
	if got := len(s.Epochs()); got != 2 {
		t.Fatalf("history length = %d, want 2", got)
	}
}

// TestParseTierRoundTrip pins the tier spelling table.
func TestParseTierRoundTrip(t *testing.T) {
	for _, name := range []string{"summary", "types", "patterns", "full"} {
		tier, err := ParseTier(name)
		if err != nil || tier.String() != name {
			t.Errorf("ParseTier(%q) = %v, %v", name, tier, err)
		}
	}
	if tier, err := ParseTier(""); err != nil || tier != TierSummary {
		t.Errorf("empty detail must mean summary")
	}
	if _, err := ParseTier("verbose"); err == nil {
		t.Error("unknown tier must error")
	}
}

// BenchmarkServeCacheHit is the CI-gated zero-alloc contract: after the first
// render, serving a tier costs one atomic load and zero allocations.
func BenchmarkServeCacheHit(b *testing.B) {
	s := NewServer(nil)
	if _, err := s.Ingest(src(stream(8)), IngestOptions{Config: core.Config{EpochInterval: 4}}); err != nil {
		b.Fatal(err)
	}
	e := s.Current()
	for t := TierSummary; t < Tier(NumTiers); t++ {
		if _, hit := e.Rendered(t); hit {
			b.Fatal("warm-up render unexpectedly hit")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd, hit := e.Rendered(Tier(i % NumTiers))
		if !hit || rd == nil {
			b.Fatal("cache miss on hot path")
		}
	}
}
