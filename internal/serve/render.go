package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"pghive/internal/schema"
	"pghive/internal/serialize"
)

// Tier renderers. Every structured tier carries the snippet-style envelope
// fields — detail_level, epoch, render_time_us (the one-time materialization
// cost) and token_estimate (len/4) — rendered in two passes so the estimate
// reflects the actual body. The full tier is the exception: its body is the
// exact serialize.WriteJSON encoding of the epoch's Def, byte-identical to
// the batch CLI's -format json output, so clients (and the acceptance gate)
// can diff a served schema against an offline discovery run; its timing and
// size ride on HTTP headers instead.

// renderTier dispatches one (tier, filter) render.
func renderTier(e *Epoch, t Tier, typeFilter string) []byte {
	switch t {
	case TierTypes:
		return renderTypes(e, typeFilter)
	case TierPatterns:
		return renderPatterns(e, typeFilter)
	case TierFull:
		return renderFull(e, typeFilter)
	default:
		return renderSummary(e, typeFilter)
	}
}

// envelope is the shared header of every structured tier payload.
type envelope struct {
	DetailLevel   string `json:"detail_level"`
	Epoch         int    `json:"epoch"`
	Batches       int    `json:"batches"`
	RenderTimeUs  int64  `json:"render_time_us"`
	TokenEstimate int    `json:"token_estimate"`
	TypeFilter    string `json:"type_filter,omitempty"`
}

// seal fills the envelope's timing and size estimate, then marshals the
// payload a second time: the first pass measures, the second is what ships.
func seal(env *envelope, payload any, start time.Time) []byte {
	probe, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return errorBody(err)
	}
	env.TokenEstimate = (len(probe) + 3) / 4
	env.RenderTimeUs = time.Since(start).Microseconds()
	body, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return errorBody(err)
	}
	return append(body, '\n')
}

func errorBody(err error) []byte {
	b, _ := json.Marshal(map[string]string{"error": err.Error()})
	return b
}

type summaryPayload struct {
	*envelope
	NodeTypeCount int      `json:"node_type_count"`
	EdgeTypeCount int      `json:"edge_type_count"`
	Instances     int      `json:"instances"`
	NodeTypes     []string `json:"node_types"`
	EdgeTypes     []string `json:"edge_types"`
}

func renderSummary(e *Epoch, typeFilter string) []byte {
	start := time.Now()
	p := summaryPayload{envelope: &envelope{
		DetailLevel: TierSummary.String(), Epoch: e.ID, Batches: e.Batches,
		TypeFilter: typeFilter,
	}}
	p.NodeTypes, p.EdgeTypes = []string{}, []string{}
	for i := range e.Def.Nodes {
		n := &e.Def.Nodes[i]
		if typeFilter != "" && n.Name != typeFilter {
			continue
		}
		p.NodeTypes = append(p.NodeTypes, n.Name)
		p.Instances += n.Instances
	}
	for i := range e.Def.Edges {
		ed := &e.Def.Edges[i]
		if typeFilter != "" && ed.Name != typeFilter {
			continue
		}
		p.EdgeTypes = append(p.EdgeTypes, ed.Name)
		p.Instances += ed.Instances
	}
	p.NodeTypeCount, p.EdgeTypeCount = len(p.NodeTypes), len(p.EdgeTypes)
	return seal(p.envelope, &p, start)
}

type typeEntry struct {
	Name          string   `json:"name"`
	Labels        []string `json:"labels,omitempty"`
	Abstract      bool     `json:"abstract,omitempty"`
	Instances     int      `json:"instances"`
	PropertyCount int      `json:"property_count"`
	Mandatory     int      `json:"mandatory_properties"`
	Cardinality   string   `json:"cardinality,omitempty"` // edges only
}

type typesPayload struct {
	*envelope
	NodeTypes []typeEntry `json:"node_types"`
	EdgeTypes []typeEntry `json:"edge_types"`
}

func renderTypes(e *Epoch, typeFilter string) []byte {
	start := time.Now()
	p := typesPayload{envelope: &envelope{
		DetailLevel: TierTypes.String(), Epoch: e.ID, Batches: e.Batches,
		TypeFilter: typeFilter,
	}}
	p.NodeTypes, p.EdgeTypes = []typeEntry{}, []typeEntry{}
	mandatory := func(props []schema.PropertyDef) int {
		m := 0
		for i := range props {
			if props[i].Mandatory {
				m++
			}
		}
		return m
	}
	for i := range e.Def.Nodes {
		n := &e.Def.Nodes[i]
		if typeFilter != "" && n.Name != typeFilter {
			continue
		}
		p.NodeTypes = append(p.NodeTypes, typeEntry{
			Name: n.Name, Labels: n.Labels, Abstract: n.Abstract,
			Instances: n.Instances, PropertyCount: len(n.Properties),
			Mandatory: mandatory(n.Properties),
		})
	}
	for i := range e.Def.Edges {
		ed := &e.Def.Edges[i]
		if typeFilter != "" && ed.Name != typeFilter {
			continue
		}
		p.EdgeTypes = append(p.EdgeTypes, typeEntry{
			Name: ed.Name, Labels: ed.Labels, Abstract: ed.Abstract,
			Instances: ed.Instances, PropertyCount: len(ed.Properties),
			Mandatory: mandatory(ed.Properties), Cardinality: ed.CardinalityString(),
		})
	}
	return seal(p.envelope, &p, start)
}

type patternEntry struct {
	// Pattern is the Cypher-style connectivity triple, e.g.
	// "(:Person)-[:WORKS_AT]->(:Org)".
	Pattern     string `json:"pattern"`
	EdgeType    string `json:"edge_type"`
	Src         string `json:"src"`
	Dst         string `json:"dst"`
	Cardinality string `json:"cardinality"`
	Instances   int    `json:"instances"`
}

type patternsPayload struct {
	*envelope
	PatternCount int            `json:"pattern_count"`
	Patterns     []patternEntry `json:"patterns"`
}

func renderPatterns(e *Epoch, typeFilter string) []byte {
	start := time.Now()
	p := patternsPayload{envelope: &envelope{
		DetailLevel: TierPatterns.String(), Epoch: e.ID, Batches: e.Batches,
		TypeFilter: typeFilter,
	}}
	p.Patterns = []patternEntry{}
	for i := range e.Def.Edges {
		ed := &e.Def.Edges[i]
		srcs, dsts := ed.SrcTypes, ed.DstTypes
		if len(srcs) == 0 {
			srcs = []string{"?"}
		}
		if len(dsts) == 0 {
			dsts = []string{"?"}
		}
		for _, s := range srcs {
			for _, d := range dsts {
				if typeFilter != "" && ed.Name != typeFilter && s != typeFilter && d != typeFilter {
					continue
				}
				p.Patterns = append(p.Patterns, patternEntry{
					Pattern:     fmt.Sprintf("(:%s)-[:%s]->(:%s)", s, ed.Name, d),
					EdgeType:    ed.Name,
					Src:         s,
					Dst:         d,
					Cardinality: ed.CardinalityString(),
					Instances:   ed.Instances,
				})
			}
		}
	}
	p.PatternCount = len(p.Patterns)
	return seal(p.envelope, &p, start)
}

func renderFull(e *Epoch, typeFilter string) []byte {
	def := e.Def
	if typeFilter != "" {
		filtered := &schema.Def{}
		for i := range def.Nodes {
			if def.Nodes[i].Name == typeFilter {
				filtered.Nodes = append(filtered.Nodes, def.Nodes[i])
			}
		}
		for i := range def.Edges {
			if def.Edges[i].Name == typeFilter {
				filtered.Edges = append(filtered.Edges, def.Edges[i])
			}
		}
		def = filtered
	}
	var buf bytes.Buffer
	if err := serialize.WriteJSON(&buf, def); err != nil {
		return errorBody(err)
	}
	return buf.Bytes()
}
