package serve

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"pghive/internal/obs"
	"pghive/internal/schema"
)

// Handler returns the service's HTTP mux:
//
//	GET /schema?detail=summary|types|patterns|full[&type=Name]
//	GET /epochs     — publication history with per-epoch diffs
//	GET /healthz    — liveness + ingest status
//	GET /metrics    — telemetry registry (JSON or Prometheus)
//
// The /schema path is the hot one: it loads the current epoch with a single
// atomic pointer read and serves pre-rendered bytes on a cache hit — no
// mutex anywhere between accept and write.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/schema", s.handleSchema)
	mux.HandleFunc("/epochs", s.handleEpochs)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.reg.Handler())
	return mux
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.instr.Gauge(obs.GaugeServeInflightReads, uint64(s.inflight.Add(1)))
	defer func() {
		s.instr.Gauge(obs.GaugeServeInflightReads, uint64(s.inflight.Add(-1)))
	}()
	s.instr.Add(obs.CtrServeRequests, 1)

	tier, err := ParseTier(r.URL.Query().Get("detail"))
	if err != nil {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write(errorBody(err))
		return
	}
	e := s.cur.Load()
	resp, hit := e.RenderedFiltered(tier, r.URL.Query().Get("type"))
	if hit {
		s.instr.Add(obs.CtrServeCacheHits, 1)
	}

	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("X-PGHive-Epoch", strconv.Itoa(e.ID))
	h.Set("X-PGHive-Detail", tier.String())
	if hit {
		h.Set("X-PGHive-Cache", "hit")
	} else {
		h.Set("X-PGHive-Cache", "miss")
	}
	h.Set("X-PGHive-Render-Micros", strconv.FormatInt(resp.RenderTime.Microseconds(), 10))
	h.Set("X-PGHive-Token-Estimate", strconv.Itoa(resp.TokenEstimate))
	h.Set("X-PGHive-Serve-Micros", strconv.FormatInt(time.Since(start).Microseconds(), 10))
	_, _ = w.Write(resp.Body)
}

// epochEntry is one /epochs history row.
type epochEntry struct {
	Epoch     int               `json:"epoch"`
	Batches   int               `json:"batches"`
	Seq       int               `json:"seq"`
	Final     bool              `json:"final"`
	Published time.Time         `json:"published"`
	Changes   int               `json:"changes"`
	Diff      schema.DiffReport `json:"diff"`
}

func (s *Server) handleEpochs(w http.ResponseWriter, r *http.Request) {
	hist := s.Epochs()
	out := struct {
		Current int          `json:"current_epoch"`
		Epochs  []epochEntry `json:"epochs"`
	}{Current: s.cur.Load().ID, Epochs: []epochEntry{}}
	for _, e := range hist {
		out.Epochs = append(out.Epochs, epochEntry{
			Epoch: e.ID, Batches: e.Batches, Seq: e.Seq, Final: e.Final,
			Published: e.Published, Changes: len(e.Diff.Changes), Diff: e.Diff,
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ingest, ingestErr, elements := s.ingest, s.ingestEr, s.elements
	s.mu.Unlock()
	e := s.cur.Load()
	writeJSON(w, struct {
		Status   string  `json:"status"`
		Epoch    int     `json:"epoch"`
		Batches  int     `json:"batches"`
		Final    bool    `json:"final"`
		Ingest   string  `json:"ingest"`
		Error    string  `json:"error,omitempty"`
		Elements uint64  `json:"elements"`
		UptimeS  float64 `json:"uptime_seconds"`
	}{
		Status: "ok", Epoch: e.ID, Batches: e.Batches, Final: e.Final,
		Ingest: ingest, Error: ingestErr, Elements: elements,
		UptimeS: time.Since(s.start).Seconds(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write(errorBody(err))
		return
	}
	_, _ = w.Write(append(b, '\n'))
}

// ListenAndServe binds addr (host:port; port 0 picks a free port) and serves
// the handler in the background. It returns the bound address and a closer
// that stops the listener; in-flight requests finish on their own.
func (s *Server) ListenAndServe(addr string) (string, io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	go func() { _ = http.Serve(ln, s.Handler()) }()
	return ln.Addr().String(), ln, nil
}
