package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pghive/internal/core"
	"pghive/internal/infer"
	"pghive/internal/obs"
	"pghive/internal/pg"
	"pghive/internal/schema"
)

// IngestOptions configures a server's ingest run.
type IngestOptions struct {
	// Config is the discovery configuration: the existing engine knobs
	// (Shards, PipelineDepth, MemBudgetBytes, DriftPolicy, EpochInterval, …)
	// select the engine exactly as the batch CLI does. The server installs
	// its own OnEpoch publication hook (chained after any caller-supplied
	// one) and routes Telemetry into its registry.
	Config core.Config
	// FT carries the fault-tolerance options (checkpointer, retry budget).
	FT core.FTOptions
	// Resume, when non-nil, is a checkpoint state to resume from.
	Resume []byte
}

// Ingest drains src through the discovery engine, publishing schema epochs
// as it goes, and blocks until the stream ends (or StopIngest is called).
// The final Result's Def is published as the final epoch, so a served
// detail=full response is then byte-identical to a batch Discover run over
// the same input. Single ingest per server.
func (s *Server) Ingest(src pg.ErrSource, opts IngestOptions) (*core.Result, error) {
	cfg := opts.Config
	cfg.Telemetry = obs.Multi(cfg.Telemetry, s.reg)
	stop := NewStopSource(src)

	s.mu.Lock()
	if s.ingest == "running" {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: ingest already running")
	}
	s.ingest = "running"
	s.stopper = stop
	s.mu.Unlock()

	if cfg.Shards <= 1 {
		// Single-pipeline engines publish straight from the serialized
		// extract point: the epoch hook hands over an immutable Def.
		chain := cfg.OnEpoch
		cfg.OnEpoch = func(snap core.EpochSnapshot) {
			if chain != nil {
				chain(snap)
			}
			s.publish(snap.Def, snap.Batches, snap.Seq, snap.Final)
		}
	} else {
		// Sharded runs merge only at stream end, so mid-stream epochs ride
		// the checkpoint layer instead: every shard extraction persists a
		// fleet container, and every EpochInterval containers a background
		// goroutine decodes it, merges the shard schemas and publishes the
		// global view. No checkpointer configured means epochs ride an
		// in-memory one.
		if opts.FT.Checkpoint == nil {
			opts.FT.Checkpoint = &memCheckpointer{}
		}
		interval := cfg.EpochInterval
		if interval <= 0 {
			interval = core.DefaultEpochInterval
		}
		opts.FT.Checkpoint = &epochTee{inner: opts.FT.Checkpoint, s: s, cfg: publishConfig(cfg), every: interval}
	}

	var res *core.Result
	var err error
	if opts.Resume != nil {
		res, err = core.ResumeDiscoverShardedFT(opts.Resume, stop, cfg, opts.FT)
	} else {
		res, err = core.DiscoverShardedFT(stop, cfg, opts.FT)
	}

	s.mu.Lock()
	if err != nil {
		s.ingest, s.ingestEr = "failed", err.Error()
	} else {
		s.ingest = "done"
		for _, r := range res.Reports {
			s.elements += uint64(r.Nodes + r.Edges)
		}
	}
	s.mu.Unlock()
	if err == nil {
		s.publish(res.Def, len(res.Reports), lastSeq(res), true)
	}
	return res, err
}

// lastSeq returns the stream sequence number of the last extracted batch.
func lastSeq(res *core.Result) int {
	if len(res.Reports) == 0 {
		return -1
	}
	return res.Reports[len(res.Reports)-1].Batch
}

// StopIngest asks the running ingest to stop at the next batch boundary:
// the source reports end-of-stream, the engine writes its final checkpoint
// and Ingest returns with the partial (but internally consistent) schema.
func (s *Server) StopIngest() {
	s.mu.Lock()
	st := s.stopper
	s.mu.Unlock()
	if st != nil {
		st.Stop()
	}
}

// publishConfig strips the execution-only hooks off a config used to decode
// checkpoints on the publication path (the decoded pipelines must not
// re-instrument or re-publish).
func publishConfig(cfg core.Config) core.Config {
	cfg.Telemetry = nil
	cfg.OnEpoch = nil
	cfg.DriftLog = nil
	return cfg
}

// memCheckpointer keeps the latest state in memory — enough for the sharded
// epoch tee when the operator did not ask for durability.
type memCheckpointer struct {
	mu    sync.Mutex
	state []byte
}

func (m *memCheckpointer) Save(state []byte) error {
	m.mu.Lock()
	m.state = append(m.state[:0], state...)
	m.mu.Unlock()
	return nil
}

// epochTee wraps a sharded run's checkpointer: every save persists as
// before, and every `every` saves the container bytes are handed to a
// background merge that publishes the fleet-wide schema. Merges never block
// the ingest path — if the previous merge is still running the boundary is
// skipped (the next one publishes a fresher frontier anyway).
type epochTee struct {
	inner core.Checkpointer
	s     *Server
	cfg   core.Config
	every int

	mu    sync.Mutex
	saves int
	busy  atomic.Bool
}

func (t *epochTee) Save(state []byte) error {
	if err := t.inner.Save(state); err != nil {
		return err
	}
	t.mu.Lock()
	t.saves++
	due := t.saves%t.every == 0
	saves := t.saves
	t.mu.Unlock()
	if !due || !t.busy.CompareAndSwap(false, true) {
		return nil
	}
	snap := append([]byte(nil), state...)
	go func() {
		defer t.busy.Store(false)
		t.s.publishFromCheckpoint(snap, t.cfg, saves)
	}()
	return nil
}

// publishFromCheckpoint decodes a fleet container, merges the shard schemas
// exactly as finishSharded would, finalizes and publishes. Decode errors are
// dropped — the next epoch boundary retries on a fresher container, and the
// durable checkpoint itself already succeeded.
func (s *Server) publishFromCheckpoint(state []byte, cfg core.Config, batches int) {
	schemas, err := core.DecodeCheckpointSchemas(state, cfg)
	if err != nil {
		return
	}
	global := schema.NewSchema()
	if cfg.MemBudgetBytes > 0 && !cfg.ExactEvidence {
		global.SetEvidencePolicy(schema.PolicyForBudget(cfg.MemBudgetBytes))
	}
	theta := cfg.Theta
	if theta <= 0 {
		theta = 0.9
	}
	for _, sh := range schemas {
		schema.MergeSchemas(global, sh, theta)
	}
	def := infer.Finalize(global, infer.Options{
		SampleBased:   cfg.SampleDatatypes,
		Participation: cfg.Participation,
	})
	s.publish(def, batches, batches-1, false)
}
