package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"pghive/internal/obs"
	"pghive/internal/schema"
)

// Server is the resident schema service: one writer (the ingest loop)
// publishes epochs, any number of readers load the current epoch with a
// single atomic pointer read. The zero value is not usable; construct with
// NewServer.
type Server struct {
	reg   *obs.Registry
	instr obs.Instr
	start time.Time

	// cur is the copy-on-write publication point: readers atomically load
	// the current epoch and work entirely inside that immutable snapshot.
	cur atomic.Pointer[Epoch]

	// inflight tracks /schema requests mid-flight (exported as a gauge).
	inflight atomic.Int64

	// Writer-side state: the publication history behind /epochs and the
	// ingest outcome behind /healthz. Never touched by the /schema path.
	mu       sync.Mutex
	epochs   []*Epoch
	ingest   string // "idle", "running", "done", "failed"
	ingestEr string
	elements uint64

	stopper *StopSource
}

// NewServer builds a server around a telemetry registry (nil allocates a
// fresh one); the registry backs /metrics and receives the read-path
// counters.
func NewServer(reg *obs.Registry) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{reg: reg, instr: obs.NewInstr(reg), start: time.Now(), ingest: "idle"}
	// Boot epoch: an empty schema, so readers get valid JSON from the very
	// first request instead of a 503 while the first window fills.
	s.cur.Store(&Epoch{ID: 0, Published: s.start, Def: &schema.Def{}, instr: s.instr})
	return s
}

// Registry returns the server's telemetry registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Current returns the currently published epoch (never nil).
func (s *Server) Current() *Epoch { return s.cur.Load() }

// Epochs returns the published epoch history, oldest first (the boot
// placeholder is not part of the history).
func (s *Server) Epochs() []*Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Epoch(nil), s.epochs...)
}

// publish installs def as the next epoch. Monotone and idempotent: a
// snapshot that does not advance the batch frontier is dropped (the sharded
// checkpoint-tee path publishes asynchronously, so a slow merge must not
// regress the served schema), and a final publish over an identical frontier
// only re-stamps finality. Returns the current epoch after the call.
func (s *Server) publish(def *schema.Def, batches, seq int, final bool) *Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.cur.Load()
	if prev.ID > 0 && batches < prev.Batches {
		return prev
	}
	if prev.ID > 0 && batches == prev.Batches && !final {
		return prev
	}
	if prev.ID > 0 && batches == prev.Batches && final && prev.Final {
		return prev
	}
	if prev.ID > 0 && batches == prev.Batches && final {
		// Finality upgrade: the stream ended exactly on an epoch boundary, so
		// the schema already published IS the final one — re-stamp it in
		// place (fresh Epoch, same ID and diff) instead of appending a
		// duplicate frontier to the history.
		e := &Epoch{
			ID: prev.ID, Batches: batches, Seq: seq, Final: true,
			Published: prev.Published, Def: def, Diff: prev.Diff, instr: s.instr,
		}
		s.epochs[len(s.epochs)-1] = e
		s.cur.Store(e)
		return e
	}
	var diff schema.DiffReport
	if prev.ID > 0 {
		diff = schema.NewDiffReport(schema.Diff(prev.Def, def))
	}
	e := &Epoch{
		ID: prev.ID + 1, Batches: batches, Seq: seq, Final: final,
		Published: time.Now(), Def: def, Diff: diff, instr: s.instr,
	}
	s.epochs = append(s.epochs, e)
	s.cur.Store(e)
	s.instr.Gauge(obs.GaugeServeEpoch, uint64(e.ID))
	return e
}
