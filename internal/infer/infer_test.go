package infer

import (
	"math"
	"testing"

	"pghive/internal/pg"
	"pghive/internal/schema"
)

func alwaysSample(uint32, string) bool { return true }

func kinds(pairs ...interface{}) map[pg.Kind]int {
	m := map[pg.Kind]int{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(pg.Kind)] = pairs[i+1].(int)
	}
	return m
}

func TestGeneralizeKinds(t *testing.T) {
	tests := []struct {
		name string
		in   map[pg.Kind]int
		want pg.Kind
	}{
		{"empty", kinds(), pg.KindString},
		{"only null", kinds(pg.KindNull, 3), pg.KindString},
		{"pure int", kinds(pg.KindInt, 10), pg.KindInt},
		{"pure float", kinds(pg.KindFloat, 10), pg.KindFloat},
		{"int+float", kinds(pg.KindInt, 5, pg.KindFloat, 5), pg.KindFloat},
		{"pure bool", kinds(pg.KindBool, 4), pg.KindBool},
		{"pure date", kinds(pg.KindDate, 4), pg.KindDate},
		{"pure timestamp", kinds(pg.KindTimestamp, 4), pg.KindTimestamp},
		{"date+timestamp", kinds(pg.KindDate, 2, pg.KindTimestamp, 2), pg.KindTimestamp},
		{"any string", kinds(pg.KindInt, 99, pg.KindString, 1), pg.KindString},
		{"bool+int", kinds(pg.KindBool, 1, pg.KindInt, 1), pg.KindString},
		{"date+int", kinds(pg.KindDate, 1, pg.KindInt, 1), pg.KindString},
	}
	for _, tc := range tests {
		if got := GeneralizeKinds(tc.in); got != tc.want {
			t.Errorf("%s: GeneralizeKinds = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPropertyDefMandatoryOptional(t *testing.T) {
	// Example 6 of the paper: a property in every instance is mandatory,
	// a property in some instances is optional.
	stat := schema.NewPropStat()
	for i := 0; i < 10; i++ {
		stat.Observe(pg.Str("x"), false)
	}
	d := PropertyDef("name", stat, 10, Options{})
	if !d.Mandatory || d.Frequency != 1 {
		t.Errorf("full-coverage property: %+v, want mandatory f=1", d)
	}
	d = PropertyDef("name", stat, 20, Options{})
	if d.Mandatory || d.Frequency != 0.5 {
		t.Errorf("half-coverage property: %+v, want optional f=0.5", d)
	}
}

func TestPropertyDefZeroInstances(t *testing.T) {
	d := PropertyDef("x", schema.NewPropStat(), 0, Options{})
	if d.Mandatory || d.Frequency != 0 {
		t.Errorf("zero-instance type property: %+v", d)
	}
	if d.DataType != pg.KindString {
		t.Errorf("DataType = %v, want STRING default", d.DataType)
	}
}

func TestPropertyDefSampleBasedFallback(t *testing.T) {
	// A property never sampled falls back to STRING under sample-based
	// inference (the paper's fallback), even if the full scan saw ints.
	stat := schema.NewPropStat()
	stat.Observe(pg.Int(7), false)
	d := PropertyDef("n", stat, 1, Options{SampleBased: true})
	if d.DataType != pg.KindString {
		t.Errorf("unsampled DataType = %v, want STRING", d.DataType)
	}
	d = PropertyDef("n", stat, 1, Options{})
	if d.DataType != pg.KindInt {
		t.Errorf("full-scan DataType = %v, want INT", d.DataType)
	}
}

func TestSamplingError(t *testing.T) {
	// Full scan: 90 ints + 10 floats → DOUBLE. Sample: 8 ints, 2 floats →
	// 8/10 sampled values disagree with DOUBLE.
	stat := schema.NewPropStat()
	for i := 0; i < 82; i++ {
		stat.Observe(pg.Int(int64(i)), false)
	}
	for i := 0; i < 8; i++ {
		stat.Observe(pg.Int(int64(100+i)), true)
	}
	for i := 0; i < 8; i++ {
		stat.Observe(pg.Float(float64(i)+0.5), false)
	}
	for i := 0; i < 2; i++ {
		stat.Observe(pg.Float(float64(i)+99.5), true)
	}
	if got := SamplingError(stat); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("SamplingError = %v, want 0.8", got)
	}
}

func TestSamplingErrorHomogeneous(t *testing.T) {
	stat := schema.NewPropStat()
	for i := 0; i < 50; i++ {
		stat.Observe(pg.Int(int64(i)), i%10 == 0)
	}
	if got := SamplingError(stat); got != 0 {
		t.Errorf("homogeneous SamplingError = %v, want 0", got)
	}
}

func TestSamplingErrorNoSample(t *testing.T) {
	stat := schema.NewPropStat()
	stat.Observe(pg.Int(1), false)
	if got := SamplingError(stat); got != 0 {
		t.Errorf("no-sample SamplingError = %v, want 0", got)
	}
}

func buildExampleSchema() *schema.Schema {
	s := schema.NewSchema()
	person := s.NewType(schema.NodeKind)
	for i := 0; i < 3; i++ {
		person.ObserveNode(&pg.NodeRecord{ID: pg.ID(i), Labels: []string{"Person"},
			Props: pg.Properties{"name": pg.Str("x"), "bday": pg.Date(pg.ParseValue("1999-12-19").AsTime())}},
			alwaysSample, false)
	}
	person.ObserveNode(&pg.NodeRecord{ID: 3, Labels: []string{"Person"},
		Props: pg.Properties{"name": pg.Str("y")}}, alwaysSample, false)
	s.Add(person)

	org := s.NewType(schema.NodeKind)
	org.ObserveNode(&pg.NodeRecord{ID: 4, Labels: []string{"Organization"},
		Props: pg.Properties{"name": pg.Str("o"), "url": pg.Str("u")}}, alwaysSample, false)
	s.Add(org)

	abstract := s.NewType(schema.NodeKind)
	abstract.Abstract = true
	abstract.ObserveNode(&pg.NodeRecord{ID: 5, Props: pg.Properties{"blob": pg.Str("?")}},
		alwaysSample, false)
	s.Add(abstract)

	worksAt := s.NewType(schema.EdgeKind)
	worksAt.ObserveEdge(&pg.EdgeRecord{ID: 0, Labels: []string{"WORKS_AT"}, Src: 0, Dst: 4,
		SrcLabels: []string{"Person"}, DstLabels: []string{"Organization"},
		Props: pg.Properties{"from": pg.Int(2020)}}, alwaysSample, false)
	worksAt.ObserveEdge(&pg.EdgeRecord{ID: 1, Labels: []string{"WORKS_AT"}, Src: 1, Dst: 4,
		SrcLabels: []string{"Person"}, DstLabels: []string{"Organization"}},
		alwaysSample, false)
	s.Add(worksAt)
	return s
}

func TestFinalizeExample(t *testing.T) {
	def := Finalize(buildExampleSchema(), Options{})
	if len(def.Nodes) != 3 || len(def.Edges) != 1 {
		t.Fatalf("def sizes = (%d,%d), want (3,1)", len(def.Nodes), len(def.Edges))
	}

	person := def.NodeType("Person")
	if person == nil {
		t.Fatal("Person type missing")
	}
	name := schema.Property(person.Properties, "name")
	if name == nil || !name.Mandatory || name.DataType != pg.KindString {
		t.Errorf("name = %+v, want mandatory STRING", name)
	}
	bday := schema.Property(person.Properties, "bday")
	if bday == nil || bday.Mandatory || bday.DataType != pg.KindDate {
		t.Errorf("bday = %+v, want optional DATE", bday)
	}

	abstract := def.Nodes[2]
	if !abstract.Abstract || abstract.Name != "Abstract0" {
		t.Errorf("abstract node = %+v, want Abstract0", abstract)
	}

	worksAt := def.EdgeType("WORKS_AT")
	if worksAt == nil {
		t.Fatal("WORKS_AT missing")
	}
	// Example 8: a person works at exactly one org; an org has several
	// employees → N:1... here max_out=1, max_in=2 → 0:N per the paper's
	// literal mapping of (1, >1).
	if worksAt.Cardinality != schema.CardZeroN {
		t.Errorf("cardinality = %v, want 0:N (max_out=1, max_in=2)", worksAt.Cardinality)
	}
	if len(worksAt.SrcTypes) != 1 || worksAt.SrcTypes[0] != "Person" {
		t.Errorf("SrcTypes = %v, want [Person]", worksAt.SrcTypes)
	}
	if len(worksAt.DstTypes) != 1 || worksAt.DstTypes[0] != "Organization" {
		t.Errorf("DstTypes = %v, want [Organization]", worksAt.DstTypes)
	}
	from := schema.Property(worksAt.Properties, "from")
	if from == nil || from.Mandatory || from.DataType != pg.KindInt {
		t.Errorf("from = %+v, want optional INT", from)
	}
}

func TestFinalizePropertiesSorted(t *testing.T) {
	def := Finalize(buildExampleSchema(), Options{})
	person := def.NodeType("Person")
	for i := 1; i < len(person.Properties); i++ {
		if person.Properties[i-1].Key >= person.Properties[i].Key {
			t.Errorf("properties not sorted: %v", person.Properties)
		}
	}
}

func TestResolveEndpointsUnlabeledGoesAbstract(t *testing.T) {
	nodes := []schema.NodeTypeDef{
		{Name: "Person", Labels: []string{"Person"}},
		{Name: "Abstract0", Abstract: true},
	}
	got := resolveEndpoints(nodes, schema.StringSet{})
	if len(got) != 1 || got[0] != "Abstract0" {
		t.Errorf("unlabeled endpoint resolved to %v, want [Abstract0]", got)
	}
}

func TestResolveEndpointsIntersection(t *testing.T) {
	nodes := []schema.NodeTypeDef{
		{Name: "Person&Student", Labels: []string{"Person", "Student"}},
		{Name: "Org", Labels: []string{"Org"}},
	}
	got := resolveEndpoints(nodes, schema.NewStringSet("Student"))
	if len(got) != 1 || got[0] != "Person&Student" {
		t.Errorf("resolved to %v, want [Person&Student]", got)
	}
}

func TestFinalizeMultipleAbstractNamesDistinct(t *testing.T) {
	s := schema.NewSchema()
	for i := 0; i < 3; i++ {
		ty := s.NewType(schema.NodeKind)
		ty.Abstract = true
		ty.ObserveNode(&pg.NodeRecord{ID: pg.ID(i), Props: pg.Properties{"k": pg.Int(1)}},
			schema.NeverSample, false)
		s.Add(ty)
	}
	def := Finalize(s, Options{})
	seen := map[string]bool{}
	for _, n := range def.Nodes {
		if seen[n.Name] {
			t.Errorf("duplicate abstract name %q", n.Name)
		}
		seen[n.Name] = true
	}
}
