package infer

import (
	"fmt"
	"testing"

	"pghive/internal/pg"
	"pghive/internal/schema"
)

func nodeType(n int, props func(i int) pg.Properties) *schema.Type {
	t := schema.NewType(schema.NewSymtab(), schema.NodeKind)
	for i := 0; i < n; i++ {
		t.ObserveNode(&pg.NodeRecord{ID: pg.ID(i), Labels: []string{"T"}, Props: props(i)},
			schema.NeverSample, false)
	}
	return t
}

func TestKeyConstraintDiscovered(t *testing.T) {
	ty := nodeType(50, func(i int) pg.Properties {
		return pg.Properties{
			"id":   pg.Str(fmt.Sprintf("id-%d", i)), // unique, mandatory → KEY
			"name": pg.Str("same"),                  // mandatory, duplicated
		}
	})
	id := PropertyDef("id", ty.Prop("id"), ty.Instances, Options{})
	if !id.Unique {
		t.Error("id should be a key candidate")
	}
	name := PropertyDef("name", ty.Prop("name"), ty.Instances, Options{})
	if name.Unique {
		t.Error("duplicated name must not be a key")
	}
}

func TestKeyRequiresMandatory(t *testing.T) {
	// Unique values but present on half the instances: not a key.
	ty := nodeType(50, func(i int) pg.Properties {
		p := pg.Properties{"name": pg.Str("x")}
		if i%2 == 0 {
			p["code"] = pg.Str(fmt.Sprintf("c%d", i))
		}
		return p
	})
	code := PropertyDef("code", ty.Prop("code"), ty.Instances, Options{})
	if code.Unique {
		t.Error("optional property must not be a key")
	}
}

func TestKeyRequiresSupport(t *testing.T) {
	ty := nodeType(1, func(i int) pg.Properties {
		return pg.Properties{"id": pg.Str("only")}
	})
	id := PropertyDef("id", ty.Prop("id"), ty.Instances, Options{})
	if id.Unique {
		t.Error("a single instance cannot certify a key")
	}
}

func TestEnumDiscovered(t *testing.T) {
	ty := nodeType(60, func(i int) pg.Properties {
		return pg.Properties{"status": pg.Str([]string{"open", "closed"}[i%2])}
	})
	status := PropertyDef("status", ty.Prop("status"), ty.Instances, Options{})
	if len(status.Enum) != 2 || status.Enum[0] != "closed" || status.Enum[1] != "open" {
		t.Errorf("Enum = %v, want [closed open]", status.Enum)
	}
}

func TestEnumRequiresSupport(t *testing.T) {
	// Below enumMinSupport observations nothing is reported.
	ty := nodeType(5, func(i int) pg.Properties {
		return pg.Properties{"status": pg.Str("open")}
	})
	status := PropertyDef("status", ty.Prop("status"), ty.Instances, Options{})
	if status.Enum != nil {
		t.Errorf("Enum = %v on %d observations, want nil", status.Enum, 5)
	}
}

func TestRangeDiscovered(t *testing.T) {
	ty := nodeType(30, func(i int) pg.Properties {
		return pg.Properties{"age": pg.Int(int64(10 + i))}
	})
	age := PropertyDef("age", ty.Prop("age"), ty.Instances, Options{})
	if !age.HasRange || age.MinNum != 10 || age.MaxNum != 39 {
		t.Errorf("age range = %+v, want [10, 39]", age)
	}
}

func TestRangeOnlyForNumericTypes(t *testing.T) {
	// A property generalized to STRING gets no range even if some values
	// were numeric.
	ty := nodeType(30, func(i int) pg.Properties {
		if i%2 == 0 {
			return pg.Properties{"mixed": pg.Int(int64(i))}
		}
		return pg.Properties{"mixed": pg.Str("zzz")}
	})
	mixed := PropertyDef("mixed", ty.Prop("mixed"), ty.Instances, Options{})
	if mixed.HasRange {
		t.Error("STRING-typed property must not carry a numeric range")
	}
}

func buildParticipationSchema(participating int) *schema.Schema {
	s := schema.NewSchema()
	person := s.NewType(schema.NodeKind)
	for i := 0; i < 10; i++ {
		person.ObserveNode(&pg.NodeRecord{ID: pg.ID(i), Labels: []string{"Person"}},
			schema.NeverSample, false)
	}
	s.Add(person)
	org := s.NewType(schema.NodeKind)
	org.ObserveNode(&pg.NodeRecord{ID: 100, Labels: []string{"Org"}},
		schema.NeverSample, false)
	s.Add(org)

	worksAt := s.NewType(schema.EdgeKind)
	for i := 0; i < participating; i++ {
		worksAt.ObserveEdge(&pg.EdgeRecord{ID: pg.ID(i), Labels: []string{"WORKS_AT"},
			Src: pg.ID(i), Dst: 100,
			SrcLabels: []string{"Person"}, DstLabels: []string{"Org"}},
			schema.NeverSample, false)
	}
	s.Add(worksAt)
	return s
}

func TestParticipationTotal(t *testing.T) {
	// All 10 Person instances carry a WORKS_AT edge → lower bound 1.
	def := Finalize(buildParticipationSchema(10), Options{Participation: true})
	e := def.EdgeType("WORKS_AT")
	if !e.SrcTotal {
		t.Error("SrcTotal should hold when every Person participates")
	}
	if !e.DstTotal {
		t.Error("DstTotal should hold when the only Org participates")
	}
	if got := e.CardinalityString(); got != "1:N" {
		t.Errorf("CardinalityString = %q, want 1:N", got)
	}
}

func TestParticipationPartial(t *testing.T) {
	def := Finalize(buildParticipationSchema(7), Options{Participation: true})
	e := def.EdgeType("WORKS_AT")
	if e.SrcTotal {
		t.Error("SrcTotal must not hold with 7 of 10 participating")
	}
	if got := e.CardinalityString(); got != "0:N" {
		t.Errorf("CardinalityString = %q, want 0:N", got)
	}
}

func TestParticipationDisabledByDefault(t *testing.T) {
	def := Finalize(buildParticipationSchema(10), Options{})
	e := def.EdgeType("WORKS_AT")
	if e.SrcTotal || e.DstTotal {
		t.Error("participation analysis must be opt-in")
	}
}

func TestParticipationRejectsForeignSources(t *testing.T) {
	// Edges from nodes outside the resolved source types must not fake a
	// total-participation upgrade.
	s := buildParticipationSchema(10)
	// Add an extra source outside the Person type: an 11th distinct source
	// appears in the degree evidence but not in any resolved type.
	worksAt := s.EdgeTypes[0]
	worksAt.ObserveEdge(&pg.EdgeRecord{ID: 99, Labels: []string{"WORKS_AT"},
		Src: 999, Dst: 100,
		SrcLabels: []string{"Person"}, DstLabels: []string{"Org"}},
		schema.NeverSample, false)
	def := Finalize(s, Options{Participation: true})
	e := def.EdgeType("WORKS_AT")
	if e.SrcTotal {
		t.Error("11 participants over 10 Person instances must not count as total participation")
	}
}
