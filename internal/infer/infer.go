// Package infer implements PG-HIVE's post-processing (§4.4): it turns the
// accumulated type evidence into a finalized schema definition with
// MANDATORY/OPTIONAL property constraints, inferred property data types
// (full-scan or sample-based), resolved edge connectivity, and edge
// cardinalities derived from maximum in/out degrees.
package infer

import (
	"sort"

	"pghive/internal/pg"
	"pghive/internal/schema"
)

// Options selects how finalization runs.
type Options struct {
	// SampleBased selects the sample-based data-type inference (the paper's
	// optional flag): types come from the sampled kind counters, falling
	// back to STRING when a property has no sampled observations.
	SampleBased bool
	// Participation enables the edge lower-bound analysis the paper defers
	// to future work (§4.4): an edge type's cardinality lower bound
	// upgrades from 0 to 1 when every instance of its source (target) node
	// types carries such an edge.
	Participation bool
}

// enumMinSupport is the minimum number of observations before a small
// distinct value set is reported as an enumeration (fewer observations
// make every property look enumerated).
const enumMinSupport = 20

// keyMinSupport is the minimum instance count before a unique mandatory
// property is reported as a key candidate.
const keyMinSupport = 2

// GeneralizeKinds returns the most specific data type compatible with every
// observed value kind, following the paper's hierarchy (§4.4/§4.7):
// INT ⊔ DOUBLE = DOUBLE, DATE ⊔ TIMESTAMP = TIMESTAMP, and any other mix
// generalizes to STRING. A property with no observed values defaults to
// STRING.
func GeneralizeKinds(kinds map[pg.Kind]int) pg.Kind {
	present := func(k pg.Kind) bool { return kinds[k] > 0 }
	total := 0
	for k, c := range kinds {
		if k != pg.KindNull {
			total += c
		}
	}
	if total == 0 {
		return pg.KindString
	}
	if present(pg.KindString) {
		return pg.KindString
	}
	numeric := kinds[pg.KindInt] + kinds[pg.KindFloat]
	temporal := kinds[pg.KindDate] + kinds[pg.KindTimestamp]
	boolean := kinds[pg.KindBool]
	switch {
	case numeric == total:
		if present(pg.KindFloat) {
			return pg.KindFloat
		}
		return pg.KindInt
	case temporal == total:
		if present(pg.KindTimestamp) {
			return pg.KindTimestamp
		}
		return pg.KindDate
	case boolean == total:
		return pg.KindBool
	default:
		return pg.KindString
	}
}

// PropertyDef finalizes one property of a type: the MANDATORY constraint
// holds iff the property appears in every instance (f_T(p) = 1), and the
// data type comes from the full-scan or sampled kind counters.
func PropertyDef(key string, stat *schema.PropStat, instances int, opts Options) schema.PropertyDef {
	freq := 0.0
	if instances > 0 {
		freq = float64(stat.Count) / float64(instances)
	}
	kinds := stat.Kinds
	if opts.SampleBased {
		kinds = stat.SampleKinds
	}
	def := schema.PropertyDef{
		Key:       key,
		DataType:  GeneralizeKinds(kinds),
		Mandatory: instances > 0 && stat.Count == instances,
		Frequency: freq,
	}
	def.Unique = def.Mandatory && instances >= keyMinSupport && stat.Values.AllDistinct()
	if stat.Count >= enumMinSupport {
		def.Enum = stat.Values.EnumValues()
	}
	if def.DataType == pg.KindInt || def.DataType == pg.KindFloat {
		if min, max, ok := stat.Values.NumRange(); ok {
			def.HasRange = true
			def.MinNum = min
			def.MaxNum = max
		}
	}
	return def
}

// SamplingError computes the paper's per-property sampling error:
// error(p) = (1/|S_p|) Σ_{v∈S_p} 1(f(v) ≠ f(D_p)), the fraction of sampled
// values whose individual kind disagrees with the full-scan inferred type.
// It returns 0 when nothing was sampled.
func SamplingError(stat *schema.PropStat) float64 {
	n := stat.SampleSize()
	if n == 0 {
		return 0
	}
	full := GeneralizeKinds(stat.Kinds)
	agree := stat.SampleKinds[full]
	return 1 - float64(agree)/float64(n)
}

// Finalize assembles the finalized schema definition from the accumulated
// types: named node and edge types with sorted property lists, resolved
// endpoint node types, and cardinalities.
func Finalize(s *schema.Schema, opts Options) *schema.Def {
	def := &schema.Def{}
	abstractIdx := 0
	for _, t := range s.NodeTypes {
		name := schema.TypeName(t, abstractIdx)
		if !t.Labeled() {
			abstractIdx++
		}
		def.Nodes = append(def.Nodes, schema.NodeTypeDef{
			Name:       name,
			Labels:     t.LabelStrings(),
			Abstract:   t.Abstract || !t.Labeled(),
			Properties: finalizeProps(t, opts),
			Instances:  t.Instances,
		})
	}
	abstractIdx = 0
	for _, t := range s.EdgeTypes {
		name := schema.TypeName(t, abstractIdx)
		if !t.Labeled() {
			abstractIdx++
		}
		deg := t.MaxDegrees()
		ed := schema.EdgeTypeDef{
			Name:        name,
			Labels:      t.LabelStrings(),
			Abstract:    t.Abstract || !t.Labeled(),
			Properties:  finalizeProps(t, opts),
			Instances:   t.Instances,
			SrcTypes:    resolveEndpoints(def.Nodes, t.SrcLabels()),
			DstTypes:    resolveEndpoints(def.Nodes, t.DstLabels()),
			Cardinality: schema.CardinalityFromDegrees(deg),
			MaxOut:      deg.MaxOut,
			MaxIn:       deg.MaxIn,
		}
		if opts.Participation {
			ed.SrcTotal = totalParticipation(def.Nodes, ed.SrcTypes, t.OutDistinct())
			ed.DstTotal = totalParticipation(def.Nodes, ed.DstTypes, t.InDistinct())
		}
		def.Edges = append(def.Edges, ed)
	}
	return def
}

// totalParticipation reports whether the participating endpoint count
// equals the total instance count of the resolved node types (node types
// partition the instances, so the sum is exact). Strict equality guards
// both directions: fewer participants means some instances lack the edge,
// and more participants means the edge also touches nodes outside the
// resolved types — either way the lower bound must stay 0.
func totalParticipation(nodes []schema.NodeTypeDef, typeNames []string, participating int) bool {
	if len(typeNames) == 0 {
		return false
	}
	total := 0
	for _, name := range typeNames {
		for i := range nodes {
			if nodes[i].Name == name {
				total += nodes[i].Instances
				break
			}
		}
	}
	return total > 0 && participating == total
}

func finalizeProps(t *schema.Type, opts Options) []schema.PropertyDef {
	keys := t.PropKeyStrings()
	sort.Strings(keys)
	out := make([]schema.PropertyDef, 0, len(keys))
	for _, k := range keys {
		out = append(out, PropertyDef(k, t.Prop(k), t.Instances, opts))
	}
	return out
}

// resolveEndpoints maps an endpoint label set to the node types it touches:
// every node type whose label set intersects the endpoint labels. An
// unlabeled endpoint set resolves to the abstract node types (the elements
// it could instantiate).
func resolveEndpoints(nodes []schema.NodeTypeDef, labels schema.StringSet) []string {
	var out []string
	if labels.Len() == 0 {
		for i := range nodes {
			if nodes[i].Abstract {
				out = append(out, nodes[i].Name)
			}
		}
		return out
	}
	for i := range nodes {
		for _, l := range nodes[i].Labels {
			if labels.Has(l) {
				out = append(out, nodes[i].Name)
				break
			}
		}
	}
	return out
}
