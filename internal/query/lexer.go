// Package query implements a compact Cypher-style query language over the
// in-memory property-graph store: single-hop MATCH patterns with label and
// property predicates, WHERE filters, RETURN projections with count()
// aggregation, ORDER BY, SKIP and LIMIT. It is the query substrate standing
// in for the storage system the paper loads from ("using a single query",
// §4.1), and powers ad-hoc inspection in examples and tools:
//
//	MATCH (p:Person)-[r:WORKS_AT]->(o:Organization)
//	WHERE p.age >= 30 AND o.name CONTAINS "Lab"
//	RETURN p.name, r.from ORDER BY p.name LIMIT 10
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokLParen   // (
	tokRParen   // )
	tokLBracket // [
	tokRBracket // ]
	tokLBrace   // {
	tokRBrace   // }
	tokColon    // :
	tokComma    // ,
	tokDot      // .
	tokDash     // -
	tokArrowR   // ->
	tokArrowL   // <-
	tokLT       // <
	tokLE       // <=
	tokGT       // >
	tokGE       // >=
	tokEQ       // =
	tokNE       // <>
	tokStar     // *
)

var tokenNames = map[tokenKind]string{
	tokEOF: "end of query", tokIdent: "identifier", tokString: "string",
	tokNumber: "number", tokLParen: "(", tokRParen: ")", tokLBracket: "[",
	tokRBracket: "]", tokLBrace: "{", tokRBrace: "}", tokColon: ":",
	tokComma: ",", tokDot: ".", tokDash: "-", tokArrowR: "->",
	tokArrowL: "<-", tokLT: "<", tokLE: "<=", tokGT: ">", tokGE: ">=",
	tokEQ: "=", tokNE: "<>", tokStar: "*",
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokIdent || t.kind == tokString || t.kind == tokNumber {
		return fmt.Sprintf("%s %q", tokenNames[t.kind], t.text)
	}
	return fmt.Sprintf("%q", tokenNames[t.kind])
}

// lex tokenizes the query. Identifiers may be backtick-quoted to include
// arbitrary characters.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			out = append(out, token{tokLParen, "(", i})
			i++
		case c == ')':
			out = append(out, token{tokRParen, ")", i})
			i++
		case c == '[':
			out = append(out, token{tokLBracket, "[", i})
			i++
		case c == ']':
			out = append(out, token{tokRBracket, "]", i})
			i++
		case c == '{':
			out = append(out, token{tokLBrace, "{", i})
			i++
		case c == '}':
			out = append(out, token{tokRBrace, "}", i})
			i++
		case c == ':':
			out = append(out, token{tokColon, ":", i})
			i++
		case c == ',':
			out = append(out, token{tokComma, ",", i})
			i++
		case c == '.':
			out = append(out, token{tokDot, ".", i})
			i++
		case c == '*':
			out = append(out, token{tokStar, "*", i})
			i++
		case c == '-':
			if i+1 < len(input) && input[i+1] == '>' {
				out = append(out, token{tokArrowR, "->", i})
				i += 2
			} else {
				out = append(out, token{tokDash, "-", i})
				i++
			}
		case c == '<':
			switch {
			case i+1 < len(input) && input[i+1] == '-':
				out = append(out, token{tokArrowL, "<-", i})
				i += 2
			case i+1 < len(input) && input[i+1] == '=':
				out = append(out, token{tokLE, "<=", i})
				i += 2
			case i+1 < len(input) && input[i+1] == '>':
				out = append(out, token{tokNE, "<>", i})
				i += 2
			default:
				out = append(out, token{tokLT, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				out = append(out, token{tokGE, ">=", i})
				i += 2
			} else {
				out = append(out, token{tokGT, ">", i})
				i++
			}
		case c == '=':
			out = append(out, token{tokEQ, "=", i})
			i++
		case c == '\'' || c == '"':
			s, next, err := lexString(input, i)
			if err != nil {
				return nil, err
			}
			out = append(out, token{tokString, s, i})
			i = next
		case c == '`':
			end := strings.IndexByte(input[i+1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("query: unterminated backtick identifier at %d", i)
			}
			out = append(out, token{tokIdent, input[i+1 : i+1+end], i})
			i += end + 2
		case c >= '0' && c <= '9':
			j := i
			for j < len(input) && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				j++
			}
			out = append(out, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(input) && isIdentPart(rune(input[j])) {
				j++
			}
			out = append(out, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at %d", c, i)
		}
	}
	out = append(out, token{tokEOF, "", len(input)})
	return out, nil
}

func lexString(input string, start int) (string, int, error) {
	quote := input[start]
	var sb strings.Builder
	i := start + 1
	for i < len(input) {
		c := input[i]
		if c == '\\' && i+1 < len(input) {
			next := input[i+1]
			switch next {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '\'', '"':
				sb.WriteByte(next)
			default:
				sb.WriteByte(next)
			}
			i += 2
			continue
		}
		if c == quote {
			return sb.String(), i + 1, nil
		}
		sb.WriteByte(c)
		i++
	}
	return "", 0, fmt.Errorf("query: unterminated string at %d", start)
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
