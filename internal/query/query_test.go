package query

import (
	"strings"
	"testing"

	"pghive/internal/pg"
)

// socialGraph builds the fixture: 3 people, 2 orgs, KNOWS and WORKS_AT.
func socialGraph(t testing.TB) *pg.Graph {
	t.Helper()
	g := pg.NewGraph()
	ann := g.AddNode([]string{"Person"}, pg.Properties{"name": pg.Str("Ann"), "age": pg.Int(34)})
	bob := g.AddNode([]string{"Person"}, pg.Properties{"name": pg.Str("Bob"), "age": pg.Int(28)})
	cat := g.AddNode([]string{"Person", "Admin"}, pg.Properties{"name": pg.Str("Cat"), "age": pg.Int(41)})
	lab := g.AddNode([]string{"Org"}, pg.Properties{"name": pg.Str("GraphLab")})
	inc := g.AddNode([]string{"Org"}, pg.Properties{"name": pg.Str("DataInc")})
	mustEdge(t, g, "KNOWS", ann, bob, pg.Properties{"since": pg.Int(2015)})
	mustEdge(t, g, "KNOWS", bob, cat, pg.Properties{"since": pg.Int(2020)})
	mustEdge(t, g, "WORKS_AT", ann, lab, nil)
	mustEdge(t, g, "WORKS_AT", bob, lab, nil)
	mustEdge(t, g, "WORKS_AT", cat, inc, nil)
	return g
}

func mustEdge(t testing.TB, g *pg.Graph, label string, src, dst pg.ID, props pg.Properties) {
	t.Helper()
	if _, err := g.AddEdge([]string{label}, src, dst, props); err != nil {
		t.Fatal(err)
	}
}

func runQ(t *testing.T, g *pg.Graph, q string) *Result {
	t.Helper()
	res, err := Run(g, q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

func TestMatchAllNodes(t *testing.T) {
	g := socialGraph(t)
	res := runQ(t, g, "MATCH (n) RETURN n")
	if len(res.Rows) != 5 {
		t.Errorf("got %d rows, want 5", len(res.Rows))
	}
}

func TestMatchByLabel(t *testing.T) {
	g := socialGraph(t)
	res := runQ(t, g, "MATCH (p:Person) RETURN p.name ORDER BY p.name")
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	names := []string{}
	for _, row := range res.Rows {
		names = append(names, row[0].Value.AsString())
	}
	if strings.Join(names, ",") != "Ann,Bob,Cat" {
		t.Errorf("names = %v", names)
	}
}

func TestMatchMultiLabel(t *testing.T) {
	g := socialGraph(t)
	res := runQ(t, g, "MATCH (p:Person:Admin) RETURN p.name")
	if len(res.Rows) != 1 || res.Rows[0][0].Value.AsString() != "Cat" {
		t.Errorf("rows = %v, want just Cat", res.Rows)
	}
}

func TestMatchInlineProps(t *testing.T) {
	g := socialGraph(t)
	res := runQ(t, g, `MATCH (p:Person {name: "Bob"}) RETURN p.age`)
	if len(res.Rows) != 1 || res.Rows[0][0].Value.AsInt() != 28 {
		t.Errorf("rows = %v, want Bob's age 28", res.Rows)
	}
}

func TestWhereComparisons(t *testing.T) {
	g := socialGraph(t)
	tests := []struct {
		where string
		want  int
	}{
		{"p.age > 30", 2},
		{"p.age >= 34", 2},
		{"p.age < 30", 1},
		{"p.age <= 28", 1},
		{"p.age = 41", 1},
		{"p.age <> 41", 2},
		{"p.name CONTAINS \"a\"", 1}, // Cat (case-sensitive)
		{"p.age > 30 AND p.age < 40", 1},
		{"p.age < 30 OR p.age > 40", 2},
		{"NOT p.age < 40", 1},
		{"(p.age < 30 OR p.age > 40) AND p.name = \"Cat\"", 1},
	}
	for _, tc := range tests {
		res := runQ(t, g, "MATCH (p:Person) WHERE "+tc.where+" RETURN p")
		if len(res.Rows) != tc.want {
			t.Errorf("WHERE %s: got %d rows, want %d", tc.where, len(res.Rows), tc.want)
		}
	}
}

func TestWhereExists(t *testing.T) {
	g := pg.NewGraph()
	g.AddNode([]string{"X"}, pg.Properties{"a": pg.Int(1)})
	g.AddNode([]string{"X"}, nil)
	res := runQ(t, g, "MATCH (x:X) WHERE EXISTS(x.a) RETURN x")
	if len(res.Rows) != 1 {
		t.Errorf("EXISTS matched %d rows, want 1", len(res.Rows))
	}
	res = runQ(t, g, "MATCH (x:X) WHERE NOT EXISTS(x.a) RETURN x")
	if len(res.Rows) != 1 {
		t.Errorf("NOT EXISTS matched %d rows, want 1", len(res.Rows))
	}
}

func TestPathPattern(t *testing.T) {
	g := socialGraph(t)
	res := runQ(t, g, `MATCH (p:Person)-[w:WORKS_AT]->(o:Org {name: "GraphLab"}) RETURN p.name ORDER BY p.name`)
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	if res.Rows[0][0].Value.AsString() != "Ann" || res.Rows[1][0].Value.AsString() != "Bob" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestPathDirection(t *testing.T) {
	g := socialGraph(t)
	// Incoming: who is known BY someone.
	res := runQ(t, g, "MATCH (p:Person)<-[:KNOWS]-(q:Person) RETURN p.name ORDER BY p.name")
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2 (Bob, Cat)", len(res.Rows))
	}
	if res.Rows[0][0].Value.AsString() != "Bob" || res.Rows[1][0].Value.AsString() != "Cat" {
		t.Errorf("rows = %v", res.Rows)
	}
	// Undirected matches both orientations.
	res = runQ(t, g, "MATCH (p:Person)-[:KNOWS]-(q:Person) RETURN count(*)")
	if res.Rows[0][0].Value.AsInt() != 4 {
		t.Errorf("undirected KNOWS count = %v, want 4 (2 edges x 2 orientations)", res.Rows[0][0].Value)
	}
}

func TestEdgePropertyPredicate(t *testing.T) {
	g := socialGraph(t)
	res := runQ(t, g, "MATCH (a)-[k:KNOWS]->(b) WHERE k.since >= 2020 RETURN a.name, b.name")
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
	if res.Rows[0][0].Value.AsString() != "Bob" || res.Rows[0][1].Value.AsString() != "Cat" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestEdgeInlineProps(t *testing.T) {
	g := socialGraph(t)
	res := runQ(t, g, "MATCH (a)-[k:KNOWS {since: 2015}]->(b) RETURN b.name")
	if len(res.Rows) != 1 || res.Rows[0][0].Value.AsString() != "Bob" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestAnonymousEdge(t *testing.T) {
	g := socialGraph(t)
	res := runQ(t, g, "MATCH (a:Person)-[]->(o:Org) RETURN count(*)")
	if res.Rows[0][0].Value.AsInt() != 3 {
		t.Errorf("count = %v, want 3", res.Rows[0][0].Value)
	}
	// A bare dash works too.
	res = runQ(t, g, "MATCH (a:Person)-[w]->(o:Org) RETURN count(w)")
	if res.Rows[0][0].Value.AsInt() != 3 {
		t.Errorf("count = %v, want 3", res.Rows[0][0].Value)
	}
}

func TestCountStar(t *testing.T) {
	g := socialGraph(t)
	res := runQ(t, g, "MATCH (n:Person) RETURN count(*)")
	if len(res.Rows) != 1 || res.Rows[0][0].Value.AsInt() != 3 {
		t.Errorf("count(*) = %v", res.Rows)
	}
	if res.Columns[0] != "count(*)" {
		t.Errorf("column = %q", res.Columns[0])
	}
}

func TestCountExprSkipsNulls(t *testing.T) {
	g := pg.NewGraph()
	g.AddNode([]string{"X"}, pg.Properties{"a": pg.Int(1)})
	g.AddNode([]string{"X"}, nil)
	res := runQ(t, g, "MATCH (x:X) RETURN count(x.a)")
	if res.Rows[0][0].Value.AsInt() != 1 {
		t.Errorf("count(x.a) = %v, want 1", res.Rows[0][0].Value)
	}
}

func TestOrderSkipLimit(t *testing.T) {
	g := socialGraph(t)
	res := runQ(t, g, "MATCH (p:Person) RETURN p.name ORDER BY p.age DESC SKIP 1 LIMIT 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Value.AsString() != "Ann" {
		t.Errorf("rows = %v, want [Ann] (middle age)", res.Rows)
	}
	// SKIP past the end.
	res = runQ(t, g, "MATCH (p:Person) RETURN p ORDER BY p.age SKIP 10")
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v, want none", res.Rows)
	}
}

func TestReturnEntityCells(t *testing.T) {
	g := socialGraph(t)
	res := runQ(t, g, `MATCH (p:Person {name: "Ann"})-[w:WORKS_AT]->(o) RETURN p, w, o`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	row := res.Rows[0]
	if row[0].Node == nil || row[1].Edge == nil || row[2].Node == nil {
		t.Fatalf("cells not entity refs: %v", row)
	}
	if !strings.Contains(row[0].String(), "Person") {
		t.Errorf("node cell = %q", row[0].String())
	}
	if !strings.Contains(row[1].String(), "WORKS_AT") {
		t.Errorf("edge cell = %q", row[1].String())
	}
}

func TestMissingPropertyIsNull(t *testing.T) {
	g := socialGraph(t)
	// Orgs lack age: comparisons against null are false, never errors.
	res := runQ(t, g, "MATCH (o:Org) WHERE o.age > 0 RETURN o")
	if len(res.Rows) != 0 {
		t.Errorf("null comparison matched %d rows", len(res.Rows))
	}
	res = runQ(t, g, "MATCH (o:Org) WHERE o.age = o.age RETURN o")
	if len(res.Rows) != 0 {
		t.Errorf("null = null should be false, matched %d", len(res.Rows))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"RETURN 1",
		"MATCH (n RETURN n",
		"MATCH (n) WHERE RETURN n",
		"MATCH (n) RETURN",
		"MATCH (n) RETURN n LIMIT -1",
		"MATCH (n) RETURN n extra",
		"MATCH (n)-[r:]->(m) RETURN n",
		"MATCH (n) WHERE n.age >> 3 RETURN n",
		"MATCH (n) RETURN count(n",
		"MATCH (n) WHERE EXISTS(42) RETURN n",
		`MATCH (n {x: }) RETURN n`,
		"MATCH (n) RETURN n ORDER RETURN",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, q := range []string{"MATCH (n) WHERE n.x = 'unterminated", "MATCH (`bad", "MATCH (n) WHERE n.x = @"} {
		if _, err := lex(q); err == nil {
			t.Errorf("lex(%q) should fail", q)
		}
	}
}

func TestRunUnknownVariable(t *testing.T) {
	g := socialGraph(t)
	if _, err := Run(g, "MATCH (p:Person) RETURN q.name"); err == nil {
		t.Error("unknown variable should error")
	}
	if _, err := Run(g, "MATCH (p:Person) WHERE z.age > 1 RETURN p"); err == nil {
		t.Error("unknown variable in WHERE should error")
	}
}

func TestMixedCountAndPlainRejected(t *testing.T) {
	g := socialGraph(t)
	if _, err := Run(g, "MATCH (p:Person) RETURN count(*), p.name"); err == nil {
		t.Error("mixed aggregation should error")
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	q, err := Parse(`MATCH (p:Person)-[k:KNOWS]->(q:Person) WHERE p.age > 30 RETURN p.name, count(*) ORDER BY p.name DESC SKIP 1 LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"MATCH (p:Person)-[k:KNOWS]->(q:Person)", "WHERE (p.age > 30)", "RETURN p.name, count(*)", "ORDER BY p.name DESC", "SKIP 1", "LIMIT 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String = %q missing %q", s, want)
		}
	}
}

func TestBacktickIdentifiers(t *testing.T) {
	g := pg.NewGraph()
	g.AddNode([]string{"Weird Label"}, pg.Properties{"odd key": pg.Int(1)})
	res := runQ(t, g, "MATCH (n:`Weird Label`) WHERE n.`odd key` = 1 RETURN n")
	if len(res.Rows) != 1 {
		t.Errorf("backtick query matched %d rows", len(res.Rows))
	}
}

func TestNegativeNumberLiteral(t *testing.T) {
	g := pg.NewGraph()
	g.AddNode([]string{"X"}, pg.Properties{"t": pg.Int(-5)})
	res := runQ(t, g, "MATCH (x:X {t: -5}) RETURN x")
	if len(res.Rows) != 1 {
		t.Errorf("negative literal matched %d rows", len(res.Rows))
	}
}

func TestBooleanLiterals(t *testing.T) {
	g := pg.NewGraph()
	g.AddNode([]string{"X"}, pg.Properties{"flag": pg.Bool(true)})
	g.AddNode([]string{"X"}, pg.Properties{"flag": pg.Bool(false)})
	res := runQ(t, g, "MATCH (x:X) WHERE x.flag = true RETURN x")
	if len(res.Rows) != 1 {
		t.Errorf("boolean predicate matched %d rows", len(res.Rows))
	}
}

func TestNumericCrossKindEquality(t *testing.T) {
	g := pg.NewGraph()
	g.AddNode([]string{"X"}, pg.Properties{"v": pg.Float(3)})
	res := runQ(t, g, "MATCH (x:X) WHERE x.v = 3 RETURN x")
	if len(res.Rows) != 1 {
		t.Errorf("3.0 = 3 should match, got %d rows", len(res.Rows))
	}
}

func TestAdjacencyDriverMatchesFullScan(t *testing.T) {
	// Unlabeled-edge patterns driven from a labeled endpoint must agree
	// with the label-scan results in every direction.
	g := socialGraph(t)
	pairs := [][2]string{
		{"MATCH (p:Person)-[]->(x) RETURN count(*)", "MATCH (p)-[]->(x) WHERE EXISTS(p.age) RETURN count(*)"},
		{"MATCH (p:Person)<-[]-(x) RETURN count(*)", "MATCH (p)<-[]-(x) WHERE EXISTS(p.age) RETURN count(*)"},
		{"MATCH (p:Person)-[]-(x) RETURN count(*)", "MATCH (p)-[]-(x) WHERE EXISTS(p.age) RETURN count(*)"},
		{"MATCH (x)-[]->(o:Org) RETURN count(*)", "MATCH (x)-[]->(o) WHERE EXISTS(o.name) AND NOT EXISTS(o.age) RETURN count(*)"},
	}
	for _, pair := range pairs {
		fast := runQ(t, g, pair[0]).Rows[0][0].Value.AsInt()
		slow := runQ(t, g, pair[1]).Rows[0][0].Value.AsInt()
		if fast != slow {
			t.Errorf("%q = %d but full scan %q = %d", pair[0], fast, pair[1], slow)
		}
	}
}

func TestAdjacencyDriverNoDuplicateUndirected(t *testing.T) {
	// A self-referencing undirected pattern must not double-count edges
	// reached via both adjacency lists of one node.
	g := pg.NewGraph()
	a := g.AddNode([]string{"X"}, nil)
	b := g.AddNode([]string{"X"}, nil)
	mustEdge(t, g, "R", a, b, nil)
	res := runQ(t, g, "MATCH (p:X)-[]-(q:X) RETURN count(*)")
	// One edge, two orientations, reachable from both endpoints: the match
	// count is per-orientation (2), not per-adjacency-visit (4).
	if res.Rows[0][0].Value.AsInt() != 2 {
		t.Errorf("undirected count = %v, want 2", res.Rows[0][0].Value)
	}
}

func TestAggregates(t *testing.T) {
	g := socialGraph(t) // ages 34, 28, 41
	res := runQ(t, g, "MATCH (p:Person) RETURN min(p.age), max(p.age), sum(p.age), avg(p.age), count(p.age)")
	row := res.Rows[0]
	if row[0].Value.AsInt() != 28 {
		t.Errorf("min = %v, want 28", row[0].Value)
	}
	if row[1].Value.AsInt() != 41 {
		t.Errorf("max = %v, want 41", row[1].Value)
	}
	if row[2].Value.AsFloat() != 103 {
		t.Errorf("sum = %v, want 103", row[2].Value)
	}
	if got := row[3].Value.AsFloat(); got < 34.3 || got > 34.4 {
		t.Errorf("avg = %v, want 103/3", got)
	}
	if row[4].Value.AsInt() != 3 {
		t.Errorf("count = %v, want 3", row[4].Value)
	}
}

func TestAggregateMinMaxStrings(t *testing.T) {
	g := socialGraph(t)
	res := runQ(t, g, "MATCH (p:Person) RETURN min(p.name), max(p.name)")
	if res.Rows[0][0].Value.AsString() != "Ann" || res.Rows[0][1].Value.AsString() != "Cat" {
		t.Errorf("string min/max = %v", res.Rows[0])
	}
}

func TestAggregateAvgOverNoNumericIsNull(t *testing.T) {
	g := socialGraph(t)
	res := runQ(t, g, "MATCH (p:Person) RETURN avg(p.name)")
	if !res.Rows[0][0].Value.IsNull() {
		t.Errorf("avg over strings = %v, want null", res.Rows[0][0].Value)
	}
}

func TestAggregateSkipsNulls(t *testing.T) {
	g := socialGraph(t)
	// Orgs have no age: every aggregate sees zero observations.
	res := runQ(t, g, "MATCH (o:Org) RETURN min(o.age), count(o.age), sum(o.age)")
	row := res.Rows[0]
	if !row[0].Value.IsNull() {
		t.Errorf("min over empty = %v, want null", row[0].Value)
	}
	if row[1].Value.AsInt() != 0 {
		t.Errorf("count over empty = %v, want 0", row[1].Value)
	}
	if row[2].Value.AsFloat() != 0 {
		t.Errorf("sum over empty = %v, want 0", row[2].Value)
	}
}

func TestAggregateMixedWithPlainRejected(t *testing.T) {
	g := socialGraph(t)
	if _, err := Run(g, "MATCH (p:Person) RETURN min(p.age), p.name"); err == nil {
		t.Error("mixed aggregate and plain item should error")
	}
}

func TestAggregateNameNotReservedAsVariable(t *testing.T) {
	// A variable named "min" still works when not followed by '('.
	g := pg.NewGraph()
	g.AddNode([]string{"X"}, pg.Properties{"v": pg.Int(1)})
	res := runQ(t, g, "MATCH (q:X) RETURN q.v")
	if res.Rows[0][0].Value.AsInt() != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestStartsEndsWith(t *testing.T) {
	g := socialGraph(t)
	tests := []struct {
		where string
		want  int
	}{
		{`p.name STARTS WITH "A"`, 1}, // Ann
		{`p.name ENDS WITH "t"`, 1},   // Cat
		{`p.name STARTS WITH ""`, 3},  // everyone
		{`p.name ENDS WITH "nope"`, 0},
		{`NOT p.name STARTS WITH "A"`, 2},
	}
	for _, tc := range tests {
		res := runQ(t, g, "MATCH (p:Person) WHERE "+tc.where+" RETURN p")
		if len(res.Rows) != tc.want {
			t.Errorf("WHERE %s: got %d rows, want %d", tc.where, len(res.Rows), tc.want)
		}
	}
}

func TestStartsEndsWithParseErrors(t *testing.T) {
	for _, q := range []string{
		`MATCH (p) WHERE p.x STARTS p.y RETURN p`,
		`MATCH (p) WHERE p.x ENDS "z" RETURN p`,
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestStartsWithRendersAndReparses(t *testing.T) {
	q, err := Parse(`MATCH (p:Person) WHERE p.name STARTS WITH "A" AND p.name ENDS WITH "n" RETURN p`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(q.String()); err != nil {
		t.Fatalf("rendered %q does not re-parse: %v", q.String(), err)
	}
}
