package query

import (
	"testing"

	"pghive/internal/pg"
)

// FuzzParse ensures the lexer/parser never panic on arbitrary input and
// that anything that parses also renders and re-parses.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"MATCH (n) RETURN n",
		"MATCH (p:Person)-[k:KNOWS]->(q) WHERE p.age > 30 RETURN p.name LIMIT 3",
		"MATCH (a)<-[r]-(b) RETURN count(*)",
		"MATCH (n:`weird label`) WHERE n.x = 'str' OR NOT n.y <> 2.5 RETURN n ORDER BY n.x DESC SKIP 1",
		"MATCH (n {k: true, j: -4}) RETURN n.k, count(n)",
		"MATCH",
		"MATCH (((",
		"RETURN 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		rendered := q.String()
		if _, err := Parse(rendered); err != nil {
			t.Fatalf("rendered form does not re-parse: %q -> %q: %v", input, rendered, err)
		}
	})
}

// FuzzRun executes arbitrary parseable queries against a fixed graph; no
// input may panic the executor.
func FuzzRun(f *testing.F) {
	f.Add("MATCH (p:Person) RETURN p.name")
	f.Add("MATCH (a)-[r]->(b) WHERE a.x CONTAINS 'q' RETURN count(r)")
	g := pg.NewGraph()
	p1 := g.AddNode([]string{"Person"}, pg.Properties{"name": pg.Str("a"), "age": pg.Int(3)})
	p2 := g.AddNode([]string{"Person"}, pg.Properties{"name": pg.Str("b")})
	if _, err := g.AddEdge([]string{"KNOWS"}, p1, p2, nil); err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, input string) {
		res, err := Run(g, input)
		if err != nil {
			return
		}
		for _, row := range res.Rows {
			if len(row) != len(res.Columns) {
				t.Fatalf("row width %d != %d columns", len(row), len(res.Columns))
			}
		}
	})
}
