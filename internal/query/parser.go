package query

import (
	"fmt"
	"strconv"
	"strings"

	"pghive/internal/pg"
)

// Parse compiles a query string.
func Parse(input string) (*Query, error) {
	tokens, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	tokens []token
	pos    int
}

func (p *parser) peek() token { return p.tokens[p.pos] }
func (p *parser) next() token { t := p.tokens[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// keyword reports whether the next token is the given (case-insensitive)
// keyword and consumes it if so.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("query: expected %s at %d, got %s", tokenNames[kind], t.pos, t)
	}
	return t, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if !p.keyword("MATCH") {
		return nil, fmt.Errorf("query: must start with MATCH, got %s", p.peek())
	}
	q := &Query{Skip: -1, Limit: -1}
	var err error
	if q.Match, err = p.parsePattern(); err != nil {
		return nil, err
	}
	if p.keyword("WHERE") {
		if q.Where, err = p.parseOr(); err != nil {
			return nil, err
		}
	}
	if !p.keyword("RETURN") {
		return nil, fmt.Errorf("query: expected RETURN at %d, got %s", p.peek().pos, p.peek())
	}
	if q.Return, err = p.parseReturnItems(); err != nil {
		return nil, err
	}
	if p.keyword("ORDER") {
		if !p.keyword("BY") {
			return nil, fmt.Errorf("query: expected BY after ORDER at %d", p.peek().pos)
		}
		expr, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		ob := &OrderBy{Expr: expr}
		if p.keyword("DESC") {
			ob.Desc = true
		} else {
			p.keyword("ASC")
		}
		q.OrderBy = ob
	}
	if p.keyword("SKIP") {
		if q.Skip, err = p.parseInt(); err != nil {
			return nil, err
		}
	}
	if p.keyword("LIMIT") {
		if q.Limit, err = p.parseInt(); err != nil {
			return nil, err
		}
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("query: trailing input at %d: %s", p.peek().pos, p.peek())
	}
	return q, nil
}

func (p *parser) parseInt() (int, error) {
	t, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("query: expected non-negative integer at %d, got %q", t.pos, t.text)
	}
	return n, nil
}

func (p *parser) parsePattern() (Pattern, error) {
	var pat Pattern
	src, err := p.parseNodePattern()
	if err != nil {
		return pat, err
	}
	pat.Src = src

	switch p.peek().kind {
	case tokDash: // -[...]-> or -[...]-
		p.next()
		edge, err := p.parseEdgeBody()
		if err != nil {
			return pat, err
		}
		switch p.peek().kind {
		case tokArrowR:
			p.next()
			edge.Dir = DirOut
		case tokDash:
			p.next()
			edge.Dir = DirAny
		default:
			return pat, fmt.Errorf("query: expected -> or - after edge pattern at %d", p.peek().pos)
		}
		dst, err := p.parseNodePattern()
		if err != nil {
			return pat, err
		}
		pat.Edge = &edge
		pat.Dst = &dst
	case tokArrowL: // <-[...]-
		p.next()
		edge, err := p.parseEdgeBody()
		if err != nil {
			return pat, err
		}
		if _, err := p.expect(tokDash); err != nil {
			return pat, err
		}
		edge.Dir = DirIn
		dst, err := p.parseNodePattern()
		if err != nil {
			return pat, err
		}
		pat.Edge = &edge
		pat.Dst = &dst
	}
	return pat, nil
}

func (p *parser) parseNodePattern() (NodePattern, error) {
	var n NodePattern
	if _, err := p.expect(tokLParen); err != nil {
		return n, err
	}
	if p.peek().kind == tokIdent {
		n.Var = p.next().text
	}
	var err error
	if n.Labels, err = p.parseLabels(); err != nil {
		return n, err
	}
	if n.Props, err = p.parsePropMap(); err != nil {
		return n, err
	}
	_, err = p.expect(tokRParen)
	return n, err
}

// parseEdgeBody parses [var:LABEL {props}]; the brackets may be omitted for
// an anonymous untyped edge (a bare dash).
func (p *parser) parseEdgeBody() (EdgePattern, error) {
	var e EdgePattern
	if p.peek().kind != tokLBracket {
		return e, nil
	}
	p.next()
	if p.peek().kind == tokIdent {
		e.Var = p.next().text
	}
	var err error
	if e.Labels, err = p.parseLabels(); err != nil {
		return e, err
	}
	if e.Props, err = p.parsePropMap(); err != nil {
		return e, err
	}
	_, err = p.expect(tokRBracket)
	return e, err
}

func (p *parser) parseLabels() ([]string, error) {
	var labels []string
	for p.peek().kind == tokColon {
		p.next()
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		labels = append(labels, t.text)
	}
	return labels, nil
}

func (p *parser) parsePropMap() (map[string]pg.Value, error) {
	if p.peek().kind != tokLBrace {
		return nil, nil
	}
	p.next()
	props := map[string]pg.Value{}
	for {
		key, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		props[key.text] = v
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return props, nil
}

func (p *parser) parseLiteral() (pg.Value, error) {
	t := p.next()
	switch t.kind {
	case tokString:
		return pg.Str(t.text), nil
	case tokNumber:
		return pg.ParseValue(t.text), nil
	case tokDash:
		num, err := p.expect(tokNumber)
		if err != nil {
			return pg.Null(), err
		}
		return pg.ParseValue("-" + num.text), nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			return pg.Bool(true), nil
		case "false":
			return pg.Bool(false), nil
		case "null":
			return pg.Null(), nil
		}
	}
	return pg.Null(), fmt.Errorf("query: expected literal at %d, got %s", t.pos, t)
}

// parseOr handles OR (lowest precedence), parseAnd AND, parseNot NOT, and
// parseComparison the relational operators.
func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = binaryOp{kind: opOr, left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = binaryOp{kind: opAnd, left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.keyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return notOp{inner: inner}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	if p.peek().kind == tokLParen {
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	}
	if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "EXISTS") {
		p.next()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		operand, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		prop, ok := operand.(propAccess)
		if !ok {
			return nil, fmt.Errorf("query: EXISTS expects var.property at %d", t.pos)
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return existsOp{prop: prop}, nil
	}

	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	var kind binOpKind
	switch t := p.peek(); {
	case t.kind == tokEQ:
		kind = opEQ
	case t.kind == tokNE:
		kind = opNE
	case t.kind == tokLT:
		kind = opLT
	case t.kind == tokLE:
		kind = opLE
	case t.kind == tokGT:
		kind = opGT
	case t.kind == tokGE:
		kind = opGE
	case t.kind == tokIdent && strings.EqualFold(t.text, "CONTAINS"):
		kind = opContains
	case t.kind == tokIdent && strings.EqualFold(t.text, "STARTS"):
		p.next()
		if !p.keyword("WITH") {
			return nil, fmt.Errorf("query: expected WITH after STARTS at %d", p.peek().pos)
		}
		right, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return binaryOp{kind: opStartsWith, left: left, right: right}, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "ENDS"):
		p.next()
		if !p.keyword("WITH") {
			return nil, fmt.Errorf("query: expected WITH after ENDS at %d", p.peek().pos)
		}
		right, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return binaryOp{kind: opEndsWith, left: left, right: right}, nil
	default:
		return nil, fmt.Errorf("query: expected comparison operator at %d, got %s", t.pos, t)
	}
	p.next()
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return binaryOp{kind: kind, left: left, right: right}, nil
}

// parseOperand parses a literal, variable, or var.property access.
func (p *parser) parseOperand() (Expr, error) {
	t := p.peek()
	if t.kind == tokIdent && !isReserved(t.text) {
		p.next()
		if p.peek().kind == tokDot {
			p.next()
			key, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			return propAccess{varName: t.text, key: key.text}, nil
		}
		switch strings.ToLower(t.text) {
		case "true":
			return literal{pg.Bool(true)}, nil
		case "false":
			return literal{pg.Bool(false)}, nil
		case "null":
			return literal{pg.Null()}, nil
		}
		return varRef{name: t.text}, nil
	}
	v, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return literal{v}, nil
}

func isReserved(s string) bool {
	switch strings.ToUpper(s) {
	case "AND", "OR", "NOT", "RETURN", "WHERE", "ORDER", "BY", "SKIP",
		"LIMIT", "ASC", "DESC", "CONTAINS", "STARTS", "ENDS", "WITH",
		"EXISTS", "MATCH", "COUNT":
		return true
	}
	return false
}

func (p *parser) parseReturnItems() ([]ReturnItem, error) {
	var items []ReturnItem
	for {
		item, err := p.parseReturnItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		return items, nil
	}
}

func (p *parser) parseReturnItem() (ReturnItem, error) {
	if t := p.peek(); t.kind == tokIdent {
		if agg, ok := aggKindOf(t.text); ok && p.tokens[p.pos+1].kind == tokLParen {
			p.next()
			p.next() // consume (
			if agg == AggCount && p.peek().kind == tokStar {
				p.next()
				if _, err := p.expect(tokRParen); err != nil {
					return ReturnItem{}, err
				}
				return ReturnItem{Agg: AggCount, Name: "count(*)"}, nil
			}
			inner, err := p.parseOperand()
			if err != nil {
				return ReturnItem{}, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return ReturnItem{}, err
			}
			return ReturnItem{Agg: agg, Expr: inner, Name: aggNames[agg] + "(" + inner.String() + ")"}, nil
		}
	}
	expr, err := p.parseOperand()
	if err != nil {
		return ReturnItem{}, err
	}
	return ReturnItem{Expr: expr, Name: expr.String()}, nil
}

// aggKindOf recognizes aggregate function names (case-insensitive).
func aggKindOf(name string) (AggKind, bool) {
	switch strings.ToLower(name) {
	case "count":
		return AggCount, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	case "sum":
		return AggSum, true
	case "avg":
		return AggAvg, true
	default:
		return AggNone, false
	}
}
