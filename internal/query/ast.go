package query

import (
	"fmt"
	"strings"

	"pghive/internal/pg"
)

// Query is a parsed statement: MATCH pattern [WHERE expr] RETURN items
// [ORDER BY item [ASC|DESC]] [SKIP n] [LIMIT n].
type Query struct {
	Match   Pattern
	Where   Expr // nil when absent
	Return  []ReturnItem
	OrderBy *OrderBy
	Skip    int // -1 when absent
	Limit   int // -1 when absent
}

// Pattern is a node pattern or a single-hop path.
type Pattern struct {
	Src NodePattern
	// Edge and Dst are nil for node-only patterns.
	Edge *EdgePattern
	Dst  *NodePattern
}

// NodePattern matches nodes by labels and property equalities.
type NodePattern struct {
	Var    string // binding variable, may be empty
	Labels []string
	Props  map[string]pg.Value
}

// Direction of an edge pattern.
type Direction uint8

// Directions.
const (
	// DirOut matches (src)-[]->(dst).
	DirOut Direction = iota
	// DirIn matches (src)<-[]-(dst).
	DirIn
	// DirAny matches either orientation.
	DirAny
)

// EdgePattern matches edges by labels, property equalities and direction.
type EdgePattern struct {
	Var    string
	Labels []string
	Props  map[string]pg.Value
	Dir    Direction
}

// AggKind selects a RETURN aggregation.
type AggKind uint8

// Aggregations.
const (
	AggNone AggKind = iota
	AggCount
	AggMin
	AggMax
	AggSum
	AggAvg
)

var aggNames = map[AggKind]string{
	AggCount: "count", AggMin: "min", AggMax: "max", AggSum: "sum", AggAvg: "avg",
}

// ReturnItem is one projection: an expression with an optional
// aggregation. count(*) has Agg = AggCount and a nil Expr.
type ReturnItem struct {
	Expr Expr
	Agg  AggKind
	// Name is the rendered column header.
	Name string
}

// OrderBy sorts rows by one return expression.
type OrderBy struct {
	Expr Expr
	Desc bool
}

// Expr is a boolean/value expression evaluated against a binding
// environment.
type Expr interface {
	eval(env *env) (pg.Value, error)
	String() string
}

// literal is a constant value.
type literal struct{ v pg.Value }

func (l literal) eval(*env) (pg.Value, error) { return l.v, nil }
func (l literal) String() string {
	if l.v.Kind() == pg.KindString {
		return fmt.Sprintf("%q", l.v.AsString())
	}
	return l.v.String()
}

// propAccess is var.key.
type propAccess struct {
	varName string
	key     string
}

func (p propAccess) String() string { return qIdent(p.varName) + "." + qIdent(p.key) }

// varRef references a bound entity (meaningful in RETURN; in predicates it
// evaluates to its ID for equality checks).
type varRef struct{ name string }

func (v varRef) String() string { return qIdent(v.name) }

// qIdent backtick-quotes identifiers that are not plain, so rendered
// queries re-parse.
func qIdent(s string) string {
	if s == "" {
		return s
	}
	plain := true
	for i, r := range s {
		if !(isIdentStart(r) || (i > 0 && isIdentPart(r))) {
			plain = false
			break
		}
	}
	if plain && !isReserved(s) {
		return s
	}
	return "`" + strings.ReplaceAll(s, "`", "``") + "`"
}

// binaryOp kinds.
type binOpKind uint8

const (
	opEQ binOpKind = iota
	opNE
	opLT
	opLE
	opGT
	opGE
	opContains
	opStartsWith
	opEndsWith
	opAnd
	opOr
)

var binOpNames = map[binOpKind]string{
	opEQ: "=", opNE: "<>", opLT: "<", opLE: "<=", opGT: ">", opGE: ">=",
	opContains: "CONTAINS", opStartsWith: "STARTS WITH", opEndsWith: "ENDS WITH",
	opAnd: "AND", opOr: "OR",
}

type binaryOp struct {
	kind        binOpKind
	left, right Expr
}

func (b binaryOp) String() string {
	return fmt.Sprintf("(%s %s %s)", b.left, binOpNames[b.kind], b.right)
}

type notOp struct{ inner Expr }

func (n notOp) String() string { return "(NOT " + n.inner.String() + ")" }

// existsOp is EXISTS(var.key): true when the property is present.
type existsOp struct{ prop propAccess }

func (e existsOp) String() string { return "EXISTS(" + e.prop.String() + ")" }

// String renders the query canonically (useful in tests and logs).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("MATCH ")
	sb.WriteString(patternString(q.Match))
	if q.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Where.String())
	}
	sb.WriteString(" RETURN ")
	for i, r := range q.Return {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(r.Name)
	}
	if q.OrderBy != nil {
		sb.WriteString(" ORDER BY " + q.OrderBy.Expr.String())
		if q.OrderBy.Desc {
			sb.WriteString(" DESC")
		}
	}
	if q.Skip >= 0 {
		fmt.Fprintf(&sb, " SKIP %d", q.Skip)
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}

func patternString(p Pattern) string {
	out := nodePatternString(p.Src)
	if p.Edge != nil {
		edge := "[" + qIdent(p.Edge.Var)
		for _, l := range p.Edge.Labels {
			edge += ":" + qIdent(l)
		}
		edge += "]"
		switch p.Edge.Dir {
		case DirOut:
			out += "-" + edge + "->"
		case DirIn:
			out += "<-" + edge + "-"
		default:
			out += "-" + edge + "-"
		}
		out += nodePatternString(*p.Dst)
	}
	return out
}

func nodePatternString(n NodePattern) string {
	out := "(" + qIdent(n.Var)
	for _, l := range n.Labels {
		out += ":" + qIdent(l)
	}
	out += ")"
	return out
}
