package query

import (
	"errors"
	"fmt"
	"sort"

	"pghive/internal/pg"
)

// Cell is one result value: a plain value, or an entity reference when a
// RETURN item names a bound variable.
type Cell struct {
	// Value holds scalar results (including count()).
	Value pg.Value
	// Node / Edge are set when the cell is an entity reference.
	Node *pg.Node
	Edge *pg.Edge
}

// String renders the cell.
func (c Cell) String() string {
	switch {
	case c.Node != nil:
		return fmt.Sprintf("(%d:%s)", c.Node.ID, c.Node.LabelKey())
	case c.Edge != nil:
		return fmt.Sprintf("[%d:%s]", c.Edge.ID, c.Edge.LabelKey())
	default:
		return c.Value.String()
	}
}

// Result is a query outcome: column names and rows.
type Result struct {
	Columns []string
	Rows    [][]Cell
}

// Run parses and executes a query against g.
func Run(g *pg.Graph, input string) (*Result, error) {
	q, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return Execute(g, q)
}

// env is a binding environment: variables bound by the MATCH pattern.
type env struct {
	nodes map[string]*pg.Node
	edges map[string]*pg.Edge
}

func (e *env) props(varName string) (pg.Properties, bool) {
	if n, ok := e.nodes[varName]; ok {
		return n.Props, true
	}
	if ed, ok := e.edges[varName]; ok {
		return ed.Props, true
	}
	return nil, false
}

// errUnknownVar distinguishes binding errors from value mismatches.
var errUnknownVar = errors.New("query: unknown variable")

func (p propAccess) eval(e *env) (pg.Value, error) {
	props, ok := e.props(p.varName)
	if !ok {
		return pg.Null(), fmt.Errorf("%w %q", errUnknownVar, p.varName)
	}
	return props[p.key], nil // zero Value (null) when absent
}

func (v varRef) eval(e *env) (pg.Value, error) {
	if n, ok := e.nodes[v.name]; ok {
		return pg.Int(int64(n.ID)), nil
	}
	if ed, ok := e.edges[v.name]; ok {
		return pg.Int(int64(ed.ID)), nil
	}
	return pg.Null(), fmt.Errorf("%w %q", errUnknownVar, v.name)
}

func (e existsOp) eval(env *env) (pg.Value, error) {
	props, ok := env.props(e.prop.varName)
	if !ok {
		return pg.Null(), fmt.Errorf("%w %q", errUnknownVar, e.prop.varName)
	}
	_, present := props[e.prop.key]
	return pg.Bool(present), nil
}

func (n notOp) eval(e *env) (pg.Value, error) {
	v, err := n.inner.eval(e)
	if err != nil {
		return pg.Null(), err
	}
	return pg.Bool(!truthy(v)), nil
}

func (b binaryOp) eval(e *env) (pg.Value, error) {
	left, err := b.left.eval(e)
	if err != nil {
		return pg.Null(), err
	}
	// Short-circuit logic operators.
	switch b.kind {
	case opAnd:
		if !truthy(left) {
			return pg.Bool(false), nil
		}
		right, err := b.right.eval(e)
		if err != nil {
			return pg.Null(), err
		}
		return pg.Bool(truthy(right)), nil
	case opOr:
		if truthy(left) {
			return pg.Bool(true), nil
		}
		right, err := b.right.eval(e)
		if err != nil {
			return pg.Null(), err
		}
		return pg.Bool(truthy(right)), nil
	}
	right, err := b.right.eval(e)
	if err != nil {
		return pg.Null(), err
	}
	switch b.kind {
	case opEQ:
		return pg.Bool(valuesEqual(left, right)), nil
	case opNE:
		return pg.Bool(!left.IsNull() && !right.IsNull() && !valuesEqual(left, right)), nil
	case opContains, opStartsWith, opEndsWith:
		if left.Kind() != pg.KindString || right.Kind() != pg.KindString {
			return pg.Bool(false), nil
		}
		l, r := left.AsString(), right.AsString()
		switch b.kind {
		case opStartsWith:
			return pg.Bool(len(l) >= len(r) && l[:len(r)] == r), nil
		case opEndsWith:
			return pg.Bool(len(l) >= len(r) && l[len(l)-len(r):] == r), nil
		default:
			return pg.Bool(containsFold(l, r)), nil
		}
	default:
		cmp, ok := compareValues(left, right)
		if !ok {
			return pg.Bool(false), nil
		}
		switch b.kind {
		case opLT:
			return pg.Bool(cmp < 0), nil
		case opLE:
			return pg.Bool(cmp <= 0), nil
		case opGT:
			return pg.Bool(cmp > 0), nil
		default:
			return pg.Bool(cmp >= 0), nil
		}
	}
}

func truthy(v pg.Value) bool {
	return v.Kind() == pg.KindBool && v.AsBool()
}

// valuesEqual compares across numeric kinds; null equals nothing.
func valuesEqual(a, b pg.Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	if a.Equal(b) {
		return true
	}
	if isNumeric(a) && isNumeric(b) {
		return a.AsFloat() == b.AsFloat()
	}
	return false
}

func isNumeric(v pg.Value) bool {
	return v.Kind() == pg.KindInt || v.Kind() == pg.KindFloat
}

func isTemporal(v pg.Value) bool {
	return v.Kind() == pg.KindDate || v.Kind() == pg.KindTimestamp
}

// compareValues orders two values when they are comparable.
func compareValues(a, b pg.Value) (int, bool) {
	switch {
	case isNumeric(a) && isNumeric(b):
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	case a.Kind() == pg.KindString && b.Kind() == pg.KindString:
		switch {
		case a.AsString() < b.AsString():
			return -1, true
		case a.AsString() > b.AsString():
			return 1, true
		default:
			return 0, true
		}
	case isTemporal(a) && isTemporal(b):
		at, bt := a.AsTime(), b.AsTime()
		switch {
		case at.Before(bt):
			return -1, true
		case at.After(bt):
			return 1, true
		default:
			return 0, true
		}
	default:
		return 0, false
	}
}

func containsFold(haystack, needle string) bool {
	// Case-sensitive CONTAINS, like Cypher.
	return len(needle) == 0 || indexOf(haystack, needle) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Execute runs a parsed query against g.
func Execute(g *pg.Graph, q *Query) (*Result, error) {
	res := &Result{}
	for _, item := range q.Return {
		res.Columns = append(res.Columns, item.Name)
	}
	hasAgg := false
	for _, item := range q.Return {
		if item.Agg != AggNone {
			hasAgg = true
		}
	}

	var matchErr error
	var matches []*env
	forEachMatch(g, q.Match, func(e *env) bool {
		if q.Where != nil {
			v, err := q.Where.eval(e)
			if err != nil {
				matchErr = err
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		snapshot := &env{nodes: map[string]*pg.Node{}, edges: map[string]*pg.Edge{}}
		for k, v := range e.nodes {
			snapshot.nodes[k] = v
		}
		for k, v := range e.edges {
			snapshot.edges[k] = v
		}
		matches = append(matches, snapshot)
		return true
	})
	if matchErr != nil {
		return nil, matchErr
	}

	if hasAgg {
		return aggregate(q, matches, res)
	}

	for _, e := range matches {
		row, err := project(q.Return, e)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	if err := orderAndPage(q, res, matches); err != nil {
		return nil, err
	}
	return res, nil
}

// aggregate collapses matches into one row. count(*) counts matches;
// count(expr) counts non-null evaluations; min/max order comparable
// values; sum/avg require numeric values and skip non-numeric ones.
func aggregate(q *Query, matches []*env, res *Result) (*Result, error) {
	row := make([]Cell, len(q.Return))
	for i, item := range q.Return {
		if item.Agg == AggNone {
			return nil, fmt.Errorf("query: mixing aggregates with plain return items is not supported")
		}
		cell, err := aggregateItem(item, matches)
		if err != nil {
			return nil, err
		}
		row[i] = cell
	}
	res.Rows = [][]Cell{row}
	return res, nil
}

func aggregateItem(item ReturnItem, matches []*env) (Cell, error) {
	count := 0
	numCount := 0
	sum := 0.0
	best := pg.Null()
	for _, e := range matches {
		if item.Expr == nil { // count(*)
			count++
			continue
		}
		v, err := item.Expr.eval(e)
		if err != nil {
			return Cell{}, err
		}
		if v.IsNull() {
			continue
		}
		count++
		if isNumeric(v) {
			numCount++
			sum += v.AsFloat()
		}
		switch item.Agg {
		case AggMin:
			if best.IsNull() {
				best = v
			} else if cmp, ok := compareValues(v, best); ok && cmp < 0 {
				best = v
			}
		case AggMax:
			if best.IsNull() {
				best = v
			} else if cmp, ok := compareValues(v, best); ok && cmp > 0 {
				best = v
			}
		}
	}
	switch item.Agg {
	case AggCount:
		return Cell{Value: pg.Int(int64(count))}, nil
	case AggMin, AggMax:
		return Cell{Value: best}, nil
	case AggSum:
		return Cell{Value: pg.Float(sum)}, nil
	case AggAvg:
		if numCount == 0 {
			return Cell{Value: pg.Null()}, nil
		}
		return Cell{Value: pg.Float(sum / float64(numCount))}, nil
	default:
		return Cell{}, fmt.Errorf("query: unknown aggregate")
	}
}

func project(items []ReturnItem, e *env) ([]Cell, error) {
	row := make([]Cell, len(items))
	for i, item := range items {
		if ref, ok := item.Expr.(varRef); ok {
			if n, bound := e.nodes[ref.name]; bound {
				row[i] = Cell{Node: n}
				continue
			}
			if ed, bound := e.edges[ref.name]; bound {
				row[i] = Cell{Edge: ed}
				continue
			}
			return nil, fmt.Errorf("%w %q", errUnknownVar, ref.name)
		}
		v, err := item.Expr.eval(e)
		if err != nil {
			return nil, err
		}
		row[i] = Cell{Value: v}
	}
	return row, nil
}

func orderAndPage(q *Query, res *Result, matches []*env) error {
	if q.OrderBy != nil {
		keys := make([]pg.Value, len(matches))
		for i, e := range matches {
			v, err := q.OrderBy.Expr.eval(e)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		idx := make([]int, len(res.Rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			cmp, ok := compareValues(keys[idx[a]], keys[idx[b]])
			if !ok {
				return false
			}
			if q.OrderBy.Desc {
				return cmp > 0
			}
			return cmp < 0
		})
		sorted := make([][]Cell, len(res.Rows))
		for i, j := range idx {
			sorted[i] = res.Rows[j]
		}
		res.Rows = sorted
	}
	if q.Skip > 0 {
		if q.Skip >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[q.Skip:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(res.Rows) {
		res.Rows = res.Rows[:q.Limit]
	}
	return nil
}

// forEachMatch enumerates pattern bindings. fn returns false to stop.
func forEachMatch(g *pg.Graph, pat Pattern, fn func(*env) bool) {
	if pat.Edge == nil {
		forEachNode(g, pat.Src, func(n *pg.Node) bool {
			e := &env{nodes: map[string]*pg.Node{}, edges: map[string]*pg.Edge{}}
			bindNode(e, pat.Src, n)
			return fn(e)
		})
		return
	}

	// Path pattern: drive from the edge set (edge labels are selective).
	scan := func(edge *pg.Edge) bool {
		if !edgeMatches(pat.Edge, edge) {
			return true
		}
		// Try both orientations permitted by the direction.
		orientations := [][2]pg.ID{}
		if pat.Edge.Dir == DirOut || pat.Edge.Dir == DirAny {
			orientations = append(orientations, [2]pg.ID{edge.Src, edge.Dst})
		}
		if pat.Edge.Dir == DirIn || pat.Edge.Dir == DirAny {
			orientations = append(orientations, [2]pg.ID{edge.Dst, edge.Src})
		}
		for _, o := range orientations {
			src, dst := g.Node(o[0]), g.Node(o[1])
			if !nodeMatches(pat.Src, src) || !nodeMatches(*pat.Dst, dst) {
				continue
			}
			e := &env{nodes: map[string]*pg.Node{}, edges: map[string]*pg.Edge{}}
			bindNode(e, pat.Src, src)
			bindNode(e, *pat.Dst, dst)
			if pat.Edge.Var != "" {
				e.edges[pat.Edge.Var] = edge
			}
			if !fn(e) {
				return false
			}
		}
		return true
	}

	if len(pat.Edge.Labels) > 0 {
		for _, id := range g.EdgesWithLabel(pat.Edge.Labels[0]) {
			if !scan(g.Edge(id)) {
				return
			}
		}
		return
	}
	// Unlabeled edge: drive from a labeled endpoint's adjacency lists when
	// one exists — candidate edges shrink from |E| to the endpoint nodes'
	// degrees.
	if side, labels := adjacencyDriver(pat); labels != nil {
		seen := map[pg.ID]struct{}{}
		for _, nid := range g.NodesWithLabel(labels[0]) {
			var edgeIDs []pg.ID
			if side == driveFromSrc {
				edgeIDs = append(edgeIDs, g.OutEdges(nid)...)
				if pat.Edge.Dir == DirAny || pat.Edge.Dir == DirIn {
					edgeIDs = append(edgeIDs, g.InEdges(nid)...)
				}
			} else {
				edgeIDs = append(edgeIDs, g.InEdges(nid)...)
				if pat.Edge.Dir == DirAny || pat.Edge.Dir == DirIn {
					edgeIDs = append(edgeIDs, g.OutEdges(nid)...)
				}
			}
			for _, eid := range edgeIDs {
				if _, dup := seen[eid]; dup {
					continue
				}
				seen[eid] = struct{}{}
				if !scan(g.Edge(eid)) {
					return
				}
			}
		}
		return
	}
	g.Edges(scan)
}

type driverSide uint8

const (
	driveNone driverSide = iota
	driveFromSrc
	driveFromDst
)

// adjacencyDriver picks the labeled endpoint to drive an unlabeled-edge
// scan from, or (driveNone, nil) when neither endpoint is labeled.
func adjacencyDriver(pat Pattern) (driverSide, []string) {
	if len(pat.Src.Labels) > 0 {
		return driveFromSrc, pat.Src.Labels
	}
	if pat.Dst != nil && len(pat.Dst.Labels) > 0 {
		return driveFromDst, pat.Dst.Labels
	}
	return driveNone, nil
}

func forEachNode(g *pg.Graph, pat NodePattern, fn func(*pg.Node) bool) {
	if len(pat.Labels) > 0 {
		for _, id := range g.NodesWithLabel(pat.Labels[0]) {
			n := g.Node(id)
			if nodeMatches(pat, n) && !fn(n) {
				return
			}
		}
		return
	}
	g.Nodes(func(n *pg.Node) bool {
		if nodeMatches(pat, n) {
			return fn(n)
		}
		return true
	})
}

func bindNode(e *env, pat NodePattern, n *pg.Node) {
	if pat.Var != "" {
		e.nodes[pat.Var] = n
	}
}

func nodeMatches(pat NodePattern, n *pg.Node) bool {
	if n == nil {
		return false
	}
	for _, l := range pat.Labels {
		if !hasLabel(n.Labels, l) {
			return false
		}
	}
	return propsMatch(pat.Props, n.Props)
}

func edgeMatches(pat *EdgePattern, e *pg.Edge) bool {
	for _, l := range pat.Labels {
		if !hasLabel(e.Labels, l) {
			return false
		}
	}
	return propsMatch(pat.Props, e.Props)
}

func hasLabel(labels []string, want string) bool {
	for _, l := range labels {
		if l == want {
			return true
		}
	}
	return false
}

func propsMatch(want map[string]pg.Value, have pg.Properties) bool {
	for k, v := range want {
		got, ok := have[k]
		if !ok || !valuesEqual(got, v) {
			return false
		}
	}
	return true
}
