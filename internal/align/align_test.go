package align

import (
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"organization", "organisation", 1},
		{"same", "same", 0},
		{"ab", "ba", 2},
	}
	for _, tc := range tests {
		if got := Levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLevenshteinSymmetricQuick(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFold(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Given_Name", "givenname"},
		{"PERSON", "person"},
		{"two words", "twowords"},
		{"", ""},
	}
	for _, tc := range tests {
		if got := Fold(tc.in); got != tc.want {
			t.Errorf("Fold(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestDefaultSimilarity(t *testing.T) {
	if s := DefaultSimilarity("Organization", "Organisation"); s < 0.9 {
		t.Errorf("spelling variants similarity = %v, want ≥ 0.9", s)
	}
	if s := DefaultSimilarity("Person", "person"); s != 1 {
		t.Errorf("case variants similarity = %v, want 1", s)
	}
	if s := DefaultSimilarity("Person", "Vehicle"); s > 0.5 {
		t.Errorf("unrelated labels similarity = %v, want low", s)
	}
	if s := DefaultSimilarity("", ""); s != 1 {
		t.Errorf("empty labels similarity = %v, want 1", s)
	}
}

func TestAlignerCanonical(t *testing.T) {
	a := NewAligner(nil, 0.85)
	if a.Canonical("Organization") != "Organization" {
		t.Error("first label should represent its class")
	}
	if a.Canonical("Organisation") != "Organization" {
		t.Error("spelling variant should align to the first-seen form")
	}
	if a.Canonical("Person") != "Person" {
		t.Error("unrelated label should start a new class")
	}
	// Stability: repeated lookups return the same representative.
	if a.Canonical("Organisation") != "Organization" {
		t.Error("alignment not stable")
	}
}

func TestAlignerCanonicalSet(t *testing.T) {
	a := NewAligner(nil, 0.85)
	got := a.CanonicalSet([]string{"Organisation", "Organization", "Person"})
	if len(got) != 2 {
		t.Fatalf("CanonicalSet = %v, want 2 entries (variants deduplicated)", got)
	}
	if got[0] != "Organisation" || got[1] != "Person" {
		t.Errorf("CanonicalSet = %v", got)
	}
	if out := a.CanonicalSet(nil); out != nil {
		t.Errorf("nil set should stay nil, got %v", out)
	}
}

func TestAlignerClasses(t *testing.T) {
	a := NewAligner(nil, 0.8) // sim(color, colour) = 1 − 1/6 ≈ 0.83
	for _, l := range []string{"Color", "Colour", "Person"} {
		a.Canonical(l)
	}
	classes := a.Classes()
	if len(classes["Color"]) != 2 {
		t.Errorf("Color class = %v, want [Color Colour]", classes["Color"])
	}
	if len(classes["Person"]) != 1 {
		t.Errorf("Person class = %v", classes["Person"])
	}
}

func TestAlignerCustomSimilarity(t *testing.T) {
	// A dictionary-backed similarity (what an LLM aligner would provide).
	synonyms := map[string]string{"Company": "Org", "Organization": "Org", "Firm": "Org"}
	sim := func(a, b string) float64 {
		if a == b || synonyms[a] == synonyms[b] && synonyms[a] != "" {
			return 1
		}
		return 0
	}
	a := NewAligner(sim, 0.9)
	if a.Canonical("Company") != "Company" || a.Canonical("Firm") != "Company" {
		t.Error("custom similarity not honored")
	}
}

func TestAlignerThresholdDefaults(t *testing.T) {
	a := NewAligner(nil, 0)
	if a.threshold != 0.8 {
		t.Errorf("default threshold = %v, want 0.8", a.threshold)
	}
	a = NewAligner(nil, 2)
	if a.threshold != 0.8 {
		t.Errorf("out-of-range threshold = %v, want 0.8", a.threshold)
	}
}
