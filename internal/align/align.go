// Package align implements label alignment for integration scenarios — the
// paper's future-work item (c): "support integration scenarios when label
// semantics are not consistent (e.g., labels in different languages)". The
// paper proposes LLMs for semantic alignment; as an offline substitute this
// package aligns label variants by normalized string similarity (edit
// distance over case/punctuation-folded labels), which captures spelling
// variants (Organization/Organisation), case conventions (person/Person)
// and morphological variants (Employee/Employees). The similarity function
// is pluggable, so an embedding- or LLM-backed aligner can drop in.
package align

import (
	"strings"
	"unicode"
)

// Similarity scores two labels in [0, 1]; 1 means identical.
type Similarity func(a, b string) float64

// DefaultSimilarity is the normalized-edit-distance similarity over folded
// labels: 1 − dist/maxLen after lowercasing and stripping non-alphanumerics.
func DefaultSimilarity(a, b string) float64 {
	fa, fb := Fold(a), Fold(b)
	if fa == fb {
		return 1
	}
	maxLen := len(fa)
	if len(fb) > maxLen {
		maxLen = len(fb)
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(fa, fb))/float64(maxLen)
}

// Fold lowercases a label and strips separators, so "Given_Name" and
// "givenname" compare equal.
func Fold(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			sb.WriteRune(unicode.ToLower(r))
		}
	}
	return sb.String()
}

// Levenshtein computes the edit distance between two strings with the
// classic two-row dynamic program.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Aligner groups labels into alignment classes: labels whose similarity
// meets the threshold share a canonical representative.
type Aligner struct {
	sim       Similarity
	threshold float64

	// canonical maps each seen label to its class representative (the
	// first label of the class, deterministic in insertion order).
	canonical map[string]string
	order     []string // class representatives in insertion order
}

// NewAligner builds an aligner. A nil similarity uses DefaultSimilarity;
// the threshold is clamped into (0, 1] with 0.8 as the default for 0.
func NewAligner(sim Similarity, threshold float64) *Aligner {
	if sim == nil {
		sim = DefaultSimilarity
	}
	if threshold <= 0 || threshold > 1 {
		threshold = 0.8
	}
	return &Aligner{sim: sim, threshold: threshold, canonical: map[string]string{}}
}

// Canonical returns the alignment-class representative for the label,
// registering a new class when nothing similar has been seen. The first
// label of a class is its representative, so alignment is stable across a
// run.
func (a *Aligner) Canonical(label string) string {
	if rep, ok := a.canonical[label]; ok {
		return rep
	}
	best, bestSim := "", a.threshold
	for _, rep := range a.order {
		if s := a.sim(label, rep); s >= bestSim {
			best, bestSim = rep, s
		}
	}
	if best == "" {
		best = label
		a.order = append(a.order, label)
	}
	a.canonical[label] = best
	return best
}

// CanonicalSet maps a label set through the aligner, deduplicating labels
// that collapse onto one representative.
func (a *Aligner) CanonicalSet(labels []string) []string {
	if len(labels) == 0 {
		return labels
	}
	seen := map[string]struct{}{}
	out := make([]string, 0, len(labels))
	for _, l := range labels {
		rep := a.Canonical(l)
		if _, dup := seen[rep]; dup {
			continue
		}
		seen[rep] = struct{}{}
		out = append(out, rep)
	}
	return out
}

// State exposes the aligner's mutable state for checkpointing: the class
// representatives in registration order and a copy of the label →
// representative map. Together with the similarity function and threshold
// (which come from configuration, not state) they fully determine future
// alignment decisions.
func (a *Aligner) State() (order []string, canonical map[string]string) {
	order = append([]string(nil), a.order...)
	canonical = make(map[string]string, len(a.canonical))
	for l, rep := range a.canonical {
		canonical[l] = rep
	}
	return order, canonical
}

// Restore replaces the aligner's state with a snapshot taken by State.
// Registration order matters: Canonical scans representatives in order, so
// a restored aligner keeps making the decisions the snapshotted one would.
func (a *Aligner) Restore(order []string, canonical map[string]string) {
	a.order = append([]string(nil), order...)
	a.canonical = make(map[string]string, len(canonical))
	for l, rep := range canonical {
		a.canonical[l] = rep
	}
}

// Classes returns the registered alignment classes: representative →
// members (including itself), for reporting.
func (a *Aligner) Classes() map[string][]string {
	out := map[string][]string{}
	for label, rep := range a.canonical {
		out[rep] = append(out[rep], label)
	}
	return out
}
