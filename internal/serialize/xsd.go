package serialize

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"pghive/internal/schema"
)

// WriteXSD renders the schema as an XML Schema document: one complexType
// per node and edge type, with one element per property (minOccurs="0" for
// optional ones) and, for edge types, source/target attributes naming the
// connected node types.
func WriteXSD(w io.Writer, def *schema.Def) error {
	var sb strings.Builder
	sb.WriteString(xml.Header)
	sb.WriteString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">` + "\n")

	for i := range def.Nodes {
		n := &def.Nodes[i]
		fmt.Fprintf(&sb, "  <xs:complexType name=%q>\n", xmlName(n.Name)+"NodeType")
		writeXSDAnnotation(&sb, fmt.Sprintf("node type %s (%d instances)%s",
			n.Name, n.Instances, abstractNote(n.Abstract)))
		writeXSDProps(&sb, n.Properties)
		fmt.Fprintf(&sb, "    <xs:attribute name=\"labels\" type=\"xs:string\" fixed=%q/>\n",
			strings.Join(n.Labels, ";"))
		sb.WriteString("  </xs:complexType>\n")
	}
	for i := range def.Edges {
		e := &def.Edges[i]
		fmt.Fprintf(&sb, "  <xs:complexType name=%q>\n", xmlName(e.Name)+"EdgeType")
		writeXSDAnnotation(&sb, fmt.Sprintf("edge type %s (%d instances, cardinality %s)%s",
			e.Name, e.Instances, e.Cardinality, abstractNote(e.Abstract)))
		writeXSDProps(&sb, e.Properties)
		fmt.Fprintf(&sb, "    <xs:attribute name=\"source\" type=\"xs:string\" fixed=%q/>\n",
			strings.Join(e.SrcTypes, "|"))
		fmt.Fprintf(&sb, "    <xs:attribute name=\"target\" type=\"xs:string\" fixed=%q/>\n",
			strings.Join(e.DstTypes, "|"))
		sb.WriteString("  </xs:complexType>\n")
	}
	sb.WriteString("</xs:schema>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func abstractNote(abstract bool) string {
	if abstract {
		return " [ABSTRACT]"
	}
	return ""
}

func writeXSDAnnotation(sb *strings.Builder, doc string) {
	sb.WriteString("    <xs:annotation><xs:documentation>")
	xml.EscapeText(sb, []byte(doc)) //nolint:errcheck // strings.Builder cannot fail
	sb.WriteString("</xs:documentation></xs:annotation>\n")
}

func writeXSDProps(sb *strings.Builder, props []schema.PropertyDef) {
	sb.WriteString("    <xs:sequence>\n")
	for _, p := range props {
		minOccurs := ""
		if !p.Mandatory {
			minOccurs = ` minOccurs="0"`
		}
		if len(p.Enum) > 0 {
			// Enumerations render as inline restrictions.
			fmt.Fprintf(sb, "      <xs:element name=%q%s>\n", xmlName(p.Key), minOccurs)
			sb.WriteString("        <xs:simpleType><xs:restriction base=\"" + kindXSD(p.DataType) + "\">\n")
			for _, v := range p.Enum {
				sb.WriteString("          <xs:enumeration value=\"")
				xml.EscapeText(sb, []byte(v)) //nolint:errcheck // strings.Builder cannot fail
				sb.WriteString("\"/>\n")
			}
			sb.WriteString("        </xs:restriction></xs:simpleType>\n")
			sb.WriteString("      </xs:element>\n")
			continue
		}
		fmt.Fprintf(sb, "      <xs:element name=%q type=%q%s/>\n", xmlName(p.Key), kindXSD(p.DataType), minOccurs)
	}
	sb.WriteString("    </xs:sequence>\n")
}

// xmlName sanitizes a discovered name into a valid XML NCName.
func xmlName(s string) string {
	var sb strings.Builder
	for i, r := range s {
		ok := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' ||
			(i > 0 && ((r >= '0' && r <= '9') || r == '-' || r == '.'))
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}
