package serialize

import (
	"fmt"
	"io"
	"strings"

	"pghive/internal/schema"
)

// WriteDOT renders the schema graph in GraphViz DOT: one record-shaped node
// per node type (listing its properties) and one directed edge per edge
// type and (source, target) node-type pair, labeled with the edge name and
// cardinality.
func WriteDOT(w io.Writer, def *schema.Def) error {
	var sb strings.Builder
	sb.WriteString("digraph schema {\n  rankdir=LR;\n  node [shape=record];\n")
	for i := range def.Nodes {
		n := &def.Nodes[i]
		var props []string
		for _, p := range n.Properties {
			mark := ""
			if !p.Mandatory {
				mark = "?"
			}
			props = append(props, fmt.Sprintf("%s%s: %s", dotEscape(p.Key), mark, p.DataType))
		}
		style := ""
		if n.Abstract {
			style = ", style=dashed"
		}
		fmt.Fprintf(&sb, "  %q [label=\"{%s|%s}\"%s];\n",
			n.Name, dotEscape(n.Name), strings.Join(props, `\l`), style)
	}
	for i := range def.Edges {
		e := &def.Edges[i]
		label := dotEscape(e.Name)
		if e.Cardinality != schema.CardUnknown {
			label += " [" + e.CardinalityString() + "]"
		}
		srcs := e.SrcTypes
		if len(srcs) == 0 {
			srcs = []string{"?"}
		}
		dsts := e.DstTypes
		if len(dsts) == 0 {
			dsts = []string{"?"}
		}
		for _, s := range srcs {
			for _, d := range dsts {
				fmt.Fprintf(&sb, "  %q -> %q [label=%q];\n", s, d, label)
			}
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func dotEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "{", `\{`)
	s = strings.ReplaceAll(s, "}", `\}`)
	s = strings.ReplaceAll(s, "|", `\|`)
	return s
}
