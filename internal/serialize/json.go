package serialize

import (
	"encoding/json"
	"fmt"
	"io"

	"pghive/internal/pg"
	"pghive/internal/schema"
)

// jsonSchema is the JSON wire form of a schema definition.
type jsonSchema struct {
	NodeTypes []jsonNodeType `json:"nodeTypes"`
	EdgeTypes []jsonEdgeType `json:"edgeTypes"`
}

type jsonNodeType struct {
	Name       string         `json:"name"`
	Labels     []string       `json:"labels,omitempty"`
	Abstract   bool           `json:"abstract,omitempty"`
	Properties []jsonProperty `json:"properties"`
	Instances  int            `json:"instances"`
}

type jsonEdgeType struct {
	Name        string         `json:"name"`
	Labels      []string       `json:"labels,omitempty"`
	Abstract    bool           `json:"abstract,omitempty"`
	Properties  []jsonProperty `json:"properties"`
	Instances   int            `json:"instances"`
	SrcTypes    []string       `json:"sourceTypes,omitempty"`
	DstTypes    []string       `json:"targetTypes,omitempty"`
	Cardinality string         `json:"cardinality"`
	MaxOut      int            `json:"maxOutDegree"`
	MaxIn       int            `json:"maxInDegree"`
	SrcTotal    bool           `json:"sourceTotalParticipation,omitempty"`
	DstTotal    bool           `json:"targetTotalParticipation,omitempty"`
}

type jsonProperty struct {
	Key       string   `json:"key"`
	DataType  string   `json:"dataType"`
	Mandatory bool     `json:"mandatory"`
	Frequency float64  `json:"frequency"`
	Unique    bool     `json:"unique,omitempty"`
	Enum      []string `json:"enum,omitempty"`
	Min       *float64 `json:"min,omitempty"`
	Max       *float64 `json:"max,omitempty"`
}

// ReadJSON parses a schema definition previously written by WriteJSON,
// enabling schema round-trips, diffing stored snapshots, and validating
// against a saved schema.
func ReadJSON(r io.Reader) (*schema.Def, error) {
	var in jsonSchema
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("serialize: parsing schema JSON: %w", err)
	}
	def := &schema.Def{}
	for _, n := range in.NodeTypes {
		def.Nodes = append(def.Nodes, schema.NodeTypeDef{
			Name:       n.Name,
			Labels:     n.Labels,
			Abstract:   n.Abstract,
			Properties: defProps(n.Properties),
			Instances:  n.Instances,
		})
	}
	for _, e := range in.EdgeTypes {
		card, srcTotal := parseCardinality(e.Cardinality)
		def.Edges = append(def.Edges, schema.EdgeTypeDef{
			Name:       e.Name,
			Labels:     e.Labels,
			Abstract:   e.Abstract,
			Properties: defProps(e.Properties),
			Instances:  e.Instances,
			SrcTypes:   e.SrcTypes,
			DstTypes:   e.DstTypes,
			// Wire form renders the participation-refined string; keep the
			// explicit flags authoritative when present.
			Cardinality: card,
			MaxOut:      e.MaxOut,
			MaxIn:       e.MaxIn,
			SrcTotal:    e.SrcTotal || srcTotal,
			DstTotal:    e.DstTotal,
		})
	}
	return def, nil
}

func defProps(props []jsonProperty) []schema.PropertyDef {
	out := make([]schema.PropertyDef, 0, len(props))
	for _, p := range props {
		def := schema.PropertyDef{
			Key:       p.Key,
			DataType:  pg.KindFromString(p.DataType),
			Mandatory: p.Mandatory,
			Frequency: p.Frequency,
			Unique:    p.Unique,
			Enum:      p.Enum,
		}
		if p.Min != nil && p.Max != nil {
			def.HasRange = true
			def.MinNum = *p.Min
			def.MaxNum = *p.Max
		}
		out = append(out, def)
	}
	return out
}

// parseCardinality maps the rendered cardinality (possibly
// participation-refined) back to its class plus the source-total flag.
func parseCardinality(s string) (schema.Cardinality, bool) {
	switch s {
	case "0:1":
		return schema.CardZeroOne, false
	case "1:1":
		return schema.CardZeroOne, true
	case "N:1":
		return schema.CardNOne, false
	case "0:N":
		return schema.CardZeroN, false
	case "1:N":
		return schema.CardZeroN, true
	case "M:N":
		return schema.CardMN, false
	default:
		return schema.CardUnknown, false
	}
}

// WriteJSON renders the schema definition as indented JSON.
func WriteJSON(w io.Writer, def *schema.Def) error {
	out := jsonSchema{
		NodeTypes: make([]jsonNodeType, 0, len(def.Nodes)),
		EdgeTypes: make([]jsonEdgeType, 0, len(def.Edges)),
	}
	for i := range def.Nodes {
		n := &def.Nodes[i]
		out.NodeTypes = append(out.NodeTypes, jsonNodeType{
			Name:       n.Name,
			Labels:     n.Labels,
			Abstract:   n.Abstract,
			Properties: jsonProps(n.Properties),
			Instances:  n.Instances,
		})
	}
	for i := range def.Edges {
		e := &def.Edges[i]
		out.EdgeTypes = append(out.EdgeTypes, jsonEdgeType{
			Name:        e.Name,
			Labels:      e.Labels,
			Abstract:    e.Abstract,
			Properties:  jsonProps(e.Properties),
			Instances:   e.Instances,
			SrcTypes:    e.SrcTypes,
			DstTypes:    e.DstTypes,
			Cardinality: e.CardinalityString(),
			MaxOut:      e.MaxOut,
			MaxIn:       e.MaxIn,
			SrcTotal:    e.SrcTotal,
			DstTotal:    e.DstTotal,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func jsonProps(props []schema.PropertyDef) []jsonProperty {
	out := make([]jsonProperty, 0, len(props))
	for _, p := range props {
		jp := jsonProperty{
			Key:       p.Key,
			DataType:  p.DataType.String(),
			Mandatory: p.Mandatory,
			Frequency: p.Frequency,
			Unique:    p.Unique,
			Enum:      p.Enum,
		}
		if p.HasRange {
			min, max := p.MinNum, p.MaxNum
			jp.Min, jp.Max = &min, &max
		}
		out = append(out, jp)
	}
	return out
}
