package serialize

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"strings"
	"testing"

	"pghive/internal/pg"
	"pghive/internal/schema"
)

func exampleDef() *schema.Def {
	return &schema.Def{
		Nodes: []schema.NodeTypeDef{
			{
				Name:   "Person",
				Labels: []string{"Person"},
				Properties: []schema.PropertyDef{
					{Key: "bday", DataType: pg.KindDate, Mandatory: false, Frequency: 0.75},
					{Key: "name", DataType: pg.KindString, Mandatory: true, Frequency: 1},
				},
				Instances: 4,
			},
			{
				Name:       "Abstract0",
				Abstract:   true,
				Properties: []schema.PropertyDef{{Key: "blob", DataType: pg.KindString, Mandatory: true, Frequency: 1}},
				Instances:  1,
			},
		},
		Edges: []schema.EdgeTypeDef{
			{
				Name:   "WORKS_AT",
				Labels: []string{"WORKS_AT"},
				Properties: []schema.PropertyDef{
					{Key: "from", DataType: pg.KindInt, Mandatory: false, Frequency: 0.5},
				},
				Instances:   2,
				SrcTypes:    []string{"Person"},
				DstTypes:    []string{"Organization"},
				Cardinality: schema.CardNOne,
				MaxOut:      3,
				MaxIn:       1,
			},
		},
	}
}

func TestWritePGSchemaStrict(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePGSchema(&buf, exampleDef(), "SocialGraphType", Strict); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"CREATE GRAPH TYPE SocialGraphType STRICT {",
		"(personType : Person {OPTIONAL bday DATE, name STRING})",
		"(abstract0Type ABSTRACT {blob STRING})",
		"(: personType)-[worksAtType : WORKS_AT {OPTIONAL from INT}]->(: organizationType)",
		"/* N:1 */",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("STRICT output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "OPEN") {
		t.Error("STRICT output must not contain OPEN")
	}
}

func TestWritePGSchemaLoose(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePGSchema(&buf, exampleDef(), "", Loose); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "CREATE GRAPH TYPE DiscoveredGraphType LOOSE {") {
		t.Errorf("LOOSE header missing:\n%s", out)
	}
	// In LOOSE mode every property is optional and blocks are OPEN.
	if !strings.Contains(out, "OPTIONAL name STRING") {
		t.Error("LOOSE mode should mark all properties optional")
	}
	if !strings.Contains(out, "OPEN}") {
		t.Error("LOOSE mode should mark property blocks OPEN")
	}
}

func TestTypeIdent(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Person", "personType"},
		{"WORKS_AT", "worksAtType"},
		{"Person&Student", "personStudentType"},
		{"", "anonType"},
		{"ALL-CAPS NAME", "allCapsNameType"},
	}
	for _, tc := range tests {
		if got := typeIdent(tc.in); got != tc.want {
			t.Errorf("typeIdent(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestIdentQuoting(t *testing.T) {
	tests := []struct{ in, want string }{
		{"name", "name"},
		{"_private", "_private"},
		{"a1", "a1"},
		{"1bad", "`1bad`"},
		{"with space", "`with space`"},
		{"tick`inside", "`tick``inside`"},
		{"", "``"},
	}
	for _, tc := range tests {
		if got := ident(tc.in); got != tc.want {
			t.Errorf("ident(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestWriteXSDWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteXSD(&buf, exampleDef()); err != nil {
		t.Fatal(err)
	}
	// The output must be well-formed XML.
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("XSD is not well-formed XML: %v\n%s", err, buf.String())
		}
	}
	out := buf.String()
	for _, want := range []string{
		`name="PersonNodeType"`,
		`name="WORKS_ATEdgeType"`,
		`<xs:element name="bday" type="xs:date" minOccurs="0"/>`,
		`<xs:element name="name" type="xs:string"/>`,
		`fixed="Person"`,
		`cardinality N:1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("XSD missing %q", want)
		}
	}
}

func TestKindXSDMapping(t *testing.T) {
	want := map[pg.Kind]string{
		pg.KindInt:       "xs:long",
		pg.KindFloat:     "xs:double",
		pg.KindBool:      "xs:boolean",
		pg.KindDate:      "xs:date",
		pg.KindTimestamp: "xs:dateTime",
		pg.KindString:    "xs:string",
		pg.KindNull:      "xs:string",
	}
	for k, s := range want {
		if got := kindXSD(k); got != s {
			t.Errorf("kindXSD(%v) = %q, want %q", k, got, s)
		}
	}
}

func TestXMLNameSanitizes(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Person", "Person"},
		{"A&B", "A_B"},
		{"9lives", "_lives"},
		{"", "_"},
		{"a.b-c", "a.b-c"},
	}
	for _, tc := range tests {
		if got := xmlName(tc.in); got != tc.want {
			t.Errorf("xmlName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, exampleDef()); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	nodes := decoded["nodeTypes"].([]interface{})
	if len(nodes) != 2 {
		t.Fatalf("nodeTypes len = %d, want 2", len(nodes))
	}
	person := nodes[0].(map[string]interface{})
	if person["name"] != "Person" || person["instances"].(float64) != 4 {
		t.Errorf("person JSON wrong: %v", person)
	}
	edges := decoded["edgeTypes"].([]interface{})
	e := edges[0].(map[string]interface{})
	if e["cardinality"] != "N:1" || e["maxOutDegree"].(float64) != 3 {
		t.Errorf("edge JSON wrong: %v", e)
	}
}

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDOT(&buf, exampleDef()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph schema {",
		`"Person" [label=`,
		`"Person" -> "Organization" [label="WORKS_AT [N:1]"];`,
		"style=dashed", // abstract type
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTUnresolvedEndpoints(t *testing.T) {
	def := &schema.Def{
		Edges: []schema.EdgeTypeDef{{Name: "R", Labels: []string{"R"}}},
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, def); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"?" -> "?"`) {
		t.Errorf("unresolved endpoints should render as ?: %s", buf.String())
	}
}

func TestDotEscape(t *testing.T) {
	if got := dotEscape(`a"b{c}|d\e`); got != `a\"b\{c\}\|d\\e` {
		t.Errorf("dotEscape = %q", got)
	}
}

func TestModeString(t *testing.T) {
	if Strict.String() != "STRICT" || Loose.String() != "LOOSE" {
		t.Error("mode names wrong")
	}
}

func TestStrictRendersKeyEnumRange(t *testing.T) {
	def := &schema.Def{
		Nodes: []schema.NodeTypeDef{{
			Name:   "Ticket",
			Labels: []string{"Ticket"},
			Properties: []schema.PropertyDef{
				{Key: "id", DataType: pg.KindString, Mandatory: true, Frequency: 1, Unique: true},
				{Key: "priority", DataType: pg.KindInt, Mandatory: true, Frequency: 1, HasRange: true, MinNum: 0, MaxNum: 2},
				{Key: "status", DataType: pg.KindString, Mandatory: true, Frequency: 1, Enum: []string{"closed", "open"}},
			},
			Instances: 9,
		}},
	}
	var buf bytes.Buffer
	if err := WritePGSchema(&buf, def, "T", Strict); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"id STRING KEY",
		"priority INT /* range 0..2 */",
		"status STRING /* enum: closed | open */",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("STRICT output missing %q:\n%s", want, out)
		}
	}
	// LOOSE mode omits the value constraints.
	buf.Reset()
	if err := WritePGSchema(&buf, def, "T", Loose); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "KEY") || strings.Contains(buf.String(), "enum") {
		t.Error("LOOSE output should omit value-level constraints")
	}
}

func TestXSDEnumRestriction(t *testing.T) {
	def := &schema.Def{
		Nodes: []schema.NodeTypeDef{{
			Name:   "T",
			Labels: []string{"T"},
			Properties: []schema.PropertyDef{
				{Key: "status", DataType: pg.KindString, Mandatory: true, Enum: []string{"a<b", "c"}},
			},
		}},
	}
	var buf bytes.Buffer
	if err := WriteXSD(&buf, def); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `<xs:enumeration value="a&lt;b"/>`) {
		t.Errorf("XSD enum not escaped/rendered:\n%s", out)
	}
	// Still well-formed.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("not well-formed: %v", err)
		}
	}
}

func TestJSONIncludesConstraints(t *testing.T) {
	def := &schema.Def{
		Nodes: []schema.NodeTypeDef{{
			Name: "T", Labels: []string{"T"},
			Properties: []schema.PropertyDef{
				{Key: "n", DataType: pg.KindInt, Mandatory: true, Unique: true, HasRange: true, MinNum: 1, MaxNum: 5},
			},
		}},
		Edges: []schema.EdgeTypeDef{{
			Name: "R", Labels: []string{"R"}, Cardinality: schema.CardZeroN, SrcTotal: true,
		}},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, def); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"unique": true`, `"min": 1`, `"max": 5`, `"cardinality": "1:N"`, `"sourceTotalParticipation": true`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
}

func TestJSONSchemaRoundTrip(t *testing.T) {
	def := exampleDef()
	def.Nodes[0].Properties[1].Unique = true
	def.Nodes[0].Properties = append(def.Nodes[0].Properties, schema.PropertyDef{
		Key: "age", DataType: pg.KindInt, Mandatory: true, Frequency: 1,
		HasRange: true, MinNum: 1, MaxNum: 99,
	})
	def.Edges[0].SrcTotal = true

	var buf bytes.Buffer
	if err := WriteJSON(&buf, def); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(def.Nodes) || len(got.Edges) != len(def.Edges) {
		t.Fatalf("sizes differ: (%d,%d) vs (%d,%d)", len(got.Nodes), len(got.Edges), len(def.Nodes), len(def.Edges))
	}
	person := got.NodeType("Person")
	name := schema.Property(person.Properties, "name")
	if name == nil || !name.Unique || name.DataType != pg.KindString {
		t.Errorf("name = %+v after round trip", name)
	}
	age := schema.Property(person.Properties, "age")
	if age == nil || !age.HasRange || age.MinNum != 1 || age.MaxNum != 99 {
		t.Errorf("age = %+v after round trip", age)
	}
	e := got.EdgeType("WORKS_AT")
	if e.Cardinality != schema.CardNOne || e.MaxOut != 3 {
		t.Errorf("edge = %+v after round trip", e)
	}
	if !e.SrcTotal {
		t.Error("SrcTotal lost in round trip")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{{{")); err == nil {
		t.Error("garbage JSON should fail")
	}
}

func TestParseCardinality(t *testing.T) {
	tests := []struct {
		in       string
		card     schema.Cardinality
		srcTotal bool
	}{
		{"0:1", schema.CardZeroOne, false},
		{"1:1", schema.CardZeroOne, true},
		{"N:1", schema.CardNOne, false},
		{"0:N", schema.CardZeroN, false},
		{"1:N", schema.CardZeroN, true},
		{"M:N", schema.CardMN, false},
		{"?", schema.CardUnknown, false},
		{"junk", schema.CardUnknown, false},
	}
	for _, tc := range tests {
		card, total := parseCardinality(tc.in)
		if card != tc.card || total != tc.srcTotal {
			t.Errorf("parseCardinality(%q) = (%v,%v), want (%v,%v)", tc.in, card, total, tc.card, tc.srcTotal)
		}
	}
}
