// Package serialize exports a discovered schema definition in the formats
// PG-HIVE emits (§4.5): PG-Schema DDL in both LOOSE and STRICT modes, XSD,
// JSON, and GraphViz DOT for visual inspection.
package serialize

import (
	"fmt"
	"io"
	"strings"

	"pghive/internal/pg"
	"pghive/internal/schema"
)

// Mode selects the PG-Schema constraint level (§4.5): STRICT demands the
// full structure with data types and constraints; LOOSE allows nodes and
// edges to deviate (open types, no mandatory markers).
type Mode uint8

// PG-Schema modes.
const (
	Strict Mode = iota
	Loose
)

// String returns the keyword.
func (m Mode) String() string {
	if m == Loose {
		return "LOOSE"
	}
	return "STRICT"
}

// WritePGSchema renders the schema as a PG-Schema CREATE GRAPH TYPE
// declaration. In STRICT mode each type lists every property with its data
// type, marking optional ones; in LOOSE mode types are OPEN and properties
// are all optional.
func WritePGSchema(w io.Writer, def *schema.Def, name string, mode Mode) error {
	if name == "" {
		name = "DiscoveredGraphType"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "CREATE GRAPH TYPE %s %s {\n", ident(name), mode)

	lines := make([]string, 0, len(def.Nodes)+len(def.Edges))
	for i := range def.Nodes {
		lines = append(lines, nodeTypeDecl(&def.Nodes[i], mode))
	}
	for i := range def.Edges {
		lines = append(lines, edgeTypeDecl(&def.Edges[i], mode))
	}
	sb.WriteString(strings.Join(lines, ",\n"))
	sb.WriteString("\n}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// nodeTypeDecl renders e.g.
//
//	(personType : Person {name STRING, OPTIONAL bday DATE})
//	(abstract0Type ABSTRACT {k STRING})
func nodeTypeDecl(n *schema.NodeTypeDef, mode Mode) string {
	var sb strings.Builder
	sb.WriteString("  (")
	sb.WriteString(typeIdent(n.Name))
	if n.Abstract {
		sb.WriteString(" ABSTRACT")
	}
	if len(n.Labels) > 0 {
		sb.WriteString(" : ")
		sb.WriteString(labelConj(n.Labels))
	}
	sb.WriteString(propBlock(n.Properties, mode))
	sb.WriteString(")")
	return sb.String()
}

// edgeTypeDecl renders e.g.
//
//	(: personType)-[worksAtType : WORKS_AT {OPTIONAL from INT}]->(: organizationType) /* N:1 */
func edgeTypeDecl(e *schema.EdgeTypeDef, mode Mode) string {
	var sb strings.Builder
	sb.WriteString("  (: ")
	sb.WriteString(endpointList(e.SrcTypes))
	sb.WriteString(")-[")
	sb.WriteString(typeIdent(e.Name))
	if e.Abstract {
		sb.WriteString(" ABSTRACT")
	}
	if len(e.Labels) > 0 {
		sb.WriteString(" : ")
		sb.WriteString(labelConj(e.Labels))
	}
	sb.WriteString(propBlock(e.Properties, mode))
	sb.WriteString("]->(: ")
	sb.WriteString(endpointList(e.DstTypes))
	sb.WriteString(")")
	if e.Cardinality != schema.CardUnknown {
		fmt.Fprintf(&sb, " /* %s */", e.CardinalityString())
	}
	return sb.String()
}

func propBlock(props []schema.PropertyDef, mode Mode) string {
	if len(props) == 0 {
		if mode == Loose {
			return " {OPEN}"
		}
		return ""
	}
	parts := make([]string, 0, len(props)+1)
	for _, p := range props {
		decl := ident(p.Key) + " " + p.DataType.String()
		if mode == Loose || !p.Mandatory {
			decl = "OPTIONAL " + decl
		}
		if mode == Strict {
			// STRICT mode carries the value-level constraints: key
			// candidates, enumerations and numeric ranges.
			if p.Unique {
				decl += " KEY"
			}
			if len(p.Enum) > 0 {
				decl += " /* enum: " + strings.Join(p.Enum, " | ") + " */"
			} else if p.HasRange {
				decl += fmt.Sprintf(" /* range %g..%g */", p.MinNum, p.MaxNum)
			}
		}
		parts = append(parts, decl)
	}
	if mode == Loose {
		parts = append(parts, "OPEN")
	}
	return " {" + strings.Join(parts, ", ") + "}"
}

func endpointList(types []string) string {
	if len(types) == 0 {
		return "ANY"
	}
	out := make([]string, len(types))
	for i, t := range types {
		out[i] = typeIdent(t)
	}
	return strings.Join(out, " | ")
}

// labelConj renders a label set as a conjunction: Person & Student.
func labelConj(labels []string) string {
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = ident(l)
	}
	return strings.Join(out, " & ")
}

// typeIdent derives a camel-cased type identifier: "WORKS_AT" →
// "worksAtType", "Person&Student" → "personStudentType".
func typeIdent(name string) string {
	var sb strings.Builder
	upperNext := false
	for _, r := range name {
		switch {
		case r == '_' || r == '&' || r == ' ' || r == '-':
			upperNext = true
		case sb.Len() == 0:
			sb.WriteRune(asciiLower(r))
		case upperNext:
			sb.WriteRune(asciiUpper(r))
			upperNext = false
		default:
			sb.WriteRune(asciiLower(r))
		}
	}
	if sb.Len() == 0 {
		return "anonType"
	}
	return sb.String() + "Type"
}

// ident quotes an identifier when it contains characters outside the plain
// identifier set.
func ident(s string) string {
	plain := true
	for i, r := range s {
		isAlpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		isDigit := r >= '0' && r <= '9'
		if !(isAlpha || (isDigit && i > 0)) {
			plain = false
			break
		}
	}
	if plain && s != "" {
		return s
	}
	return "`" + strings.ReplaceAll(s, "`", "``") + "`"
}

func asciiLower(r rune) rune {
	if r >= 'A' && r <= 'Z' {
		return r + ('a' - 'A')
	}
	return r
}

func asciiUpper(r rune) rune {
	if r >= 'a' && r <= 'z' {
		return r - ('a' - 'A')
	}
	return r
}

// kindXSD maps a property data type to its XML Schema type.
func kindXSD(k pg.Kind) string {
	switch k {
	case pg.KindInt:
		return "xs:long"
	case pg.KindFloat:
		return "xs:double"
	case pg.KindBool:
		return "xs:boolean"
	case pg.KindDate:
		return "xs:date"
	case pg.KindTimestamp:
		return "xs:dateTime"
	default:
		return "xs:string"
	}
}
