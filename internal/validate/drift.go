// Streaming drift detection: unlike Validate, which audits a materialized
// graph after the fact, the StreamChecker sits inside the discovery
// pipeline and classifies how each incoming batch deviates from the schema
// of the current epoch *before* the batch is merged. Its verdicts drive the
// obs drift counters and the -drift-policy decision (evolve / quarantine /
// alert), so the classification is deliberately conservative: a class fires
// only when the batch carries positive evidence of drift, never on data the
// epoch schema already explains.
package validate

import (
	"fmt"

	"pghive/internal/pg"
	"pghive/internal/schema"
)

// DriftClass classifies one way a batch can deviate from the epoch schema.
type DriftClass uint8

// Drift classes, in taxonomy order. The obs layer exposes one counter per
// class (CtrDriftNewType …), indexed by the same order.
const (
	// DriftNewType: an element's label set contains at least one label no
	// epoch type has ever carried — a genuinely new entity kind.
	DriftNewType DriftClass = iota
	// DriftNewLabelSet: every individual label is known, but the combination
	// matches no epoch type — known vocabulary, new composition.
	DriftNewLabelSet
	// DriftWidenedType: a property value does not fit its declared data type
	// under the type-priority lattice, so merging the batch would widen the
	// property (e.g. INT property receiving a STRING).
	DriftWidenedType
	// DriftMissingMandatory: a property the epoch declares MANDATORY
	// (f_T(p) = 1) is absent from an instance of that type.
	DriftMissingMandatory
	// DriftCardinalityBreak: an edge type the epoch declares with a maximum
	// degree of 1 on a side (the *:1 / 1:* / 1:1 shapes) shows within-batch
	// degree ≥ 2 on that side — the relationship is becoming M:N.
	DriftCardinalityBreak
	// DriftTypeDowngrade: a property value sits strictly below its declared
	// type in the priority lattice (INT under DOUBLE, DATE under TIMESTAMP) —
	// conforming data, but evidence the property is narrowing.
	DriftTypeDowngrade
	// NumDriftClasses is the number of defined classes.
	NumDriftClasses
)

var driftClassNames = [NumDriftClasses]string{
	"new_type", "new_label_set", "widened_type",
	"missing_mandatory", "cardinality_break", "type_downgrade",
}

// String returns the class's snake-case name (matching the obs counter
// suffix: drift_<name>).
func (c DriftClass) String() string {
	if int(c) < len(driftClassNames) {
		return driftClassNames[c]
	}
	return "unknown"
}

// DriftViolation is one classified deviation, with enough context to log.
type DriftViolation struct {
	Class   DriftClass `json:"class"`
	Element pg.ID      `json:"element"`
	IsEdge  bool       `json:"is_edge,omitempty"`
	Detail  string     `json:"detail"`
}

// MarshalJSON renders the class by name so JSONL drift logs are readable
// without the enum table.
func (c DriftClass) MarshalJSON() ([]byte, error) {
	return []byte(`"` + c.String() + `"`), nil
}

// BatchVerdict is the outcome of checking one batch against an epoch.
type BatchVerdict struct {
	// Counts is the number of violations per class.
	Counts [NumDriftClasses]uint64
	// Details holds the first maxDetails violations, for the JSONL sink.
	Details []DriftViolation
	// NodesChecked and EdgesChecked count the elements examined.
	NodesChecked int
	EdgesChecked int
}

// Total sums the per-class counts.
func (v *BatchVerdict) Total() uint64 {
	var t uint64
	for _, c := range v.Counts {
		t += c
	}
	return t
}

// Clean reports whether the batch conforms to the epoch.
func (v *BatchVerdict) Clean() bool { return v.Total() == 0 }

// StreamChecker validates batches against a schema epoch. It is rebuilt
// from a Def at every epoch boundary (SetEpoch) and is not safe for
// concurrent use — the pipeline calls it from the serialized extract point,
// which is exactly the ordering the epoch semantics need.
type StreamChecker struct {
	nodeByKey map[string]*schema.NodeTypeDef
	edgeByKey map[string]*schema.EdgeTypeDef
	// knownNodeLabels / knownEdgeLabels are the label vocabularies of the
	// epoch, used to split new_type from new_label_set.
	knownNodeLabels map[string]struct{}
	knownEdgeLabels map[string]struct{}
	// maxDetails caps recorded violation details per batch (counts are
	// always exact); 0 keeps none.
	maxDetails int

	// outDeg / inDeg are scratch within-batch degree counters, reused
	// across batches to avoid per-batch allocation.
	outDeg map[degKey]int
	inDeg  map[degKey]int
}

type degKey struct {
	ty string
	id pg.ID
}

// NewStreamChecker returns a checker with no epoch: CheckBatch reports
// every batch clean until SetEpoch installs a schema to validate against.
func NewStreamChecker(maxDetails int) *StreamChecker {
	return &StreamChecker{
		maxDetails: maxDetails,
		outDeg:     map[degKey]int{},
		inDeg:      map[degKey]int{},
	}
}

// Ready reports whether an epoch schema is installed.
func (c *StreamChecker) Ready() bool { return c.nodeByKey != nil }

// SetEpoch rebuilds the checker's indexes from an epoch schema definition.
func (c *StreamChecker) SetEpoch(def *schema.Def) {
	c.nodeByKey = make(map[string]*schema.NodeTypeDef, len(def.Nodes))
	c.knownNodeLabels = map[string]struct{}{}
	for i := range def.Nodes {
		n := &def.Nodes[i]
		key := pg.LabelSetKey(n.Labels)
		if _, dup := c.nodeByKey[key]; !dup {
			c.nodeByKey[key] = n
		}
		for _, l := range n.Labels {
			c.knownNodeLabels[l] = struct{}{}
		}
	}
	c.edgeByKey = make(map[string]*schema.EdgeTypeDef, len(def.Edges))
	c.knownEdgeLabels = map[string]struct{}{}
	for i := range def.Edges {
		e := &def.Edges[i]
		key := pg.LabelSetKey(e.Labels)
		if _, dup := c.edgeByKey[key]; !dup {
			c.edgeByKey[key] = e
		}
		for _, l := range e.Labels {
			c.knownEdgeLabels[l] = struct{}{}
		}
	}
}

// CheckBatch classifies every deviation in b from the current epoch. With
// no epoch installed the verdict is empty (warm-up batches validate
// trivially, so stable streams stay at zero across all windows).
func (c *StreamChecker) CheckBatch(b *pg.Batch) BatchVerdict {
	var v BatchVerdict
	if !c.Ready() || b == nil {
		return v
	}
	for i := range b.Nodes {
		n := &b.Nodes[i]
		v.NodesChecked++
		if len(n.Labels) == 0 {
			continue // unlabeled elements carry no type evidence
		}
		ty, ok := c.nodeByKey[pg.LabelSetKey(n.Labels)]
		if !ok {
			c.classifyUnknown(&v, n.ID, false, n.Labels, c.knownNodeLabels)
			continue
		}
		c.checkProps(&v, n.ID, false, ty.Name, ty.Properties, n.Props)
	}
	clear(c.outDeg)
	clear(c.inDeg)
	for i := range b.Edges {
		e := &b.Edges[i]
		v.EdgesChecked++
		if len(e.Labels) == 0 {
			continue
		}
		ty, ok := c.edgeByKey[pg.LabelSetKey(e.Labels)]
		if !ok {
			c.classifyUnknown(&v, e.ID, true, e.Labels, c.knownEdgeLabels)
			continue
		}
		c.checkProps(&v, e.ID, true, ty.Name, ty.Properties, e.Props)
		c.checkDegree(&v, e, ty)
	}
	return v
}

// classifyUnknown splits an unmatched label set into new_type (some label
// is outside the epoch's vocabulary) vs new_label_set (all labels known,
// combination unseen).
func (c *StreamChecker) classifyUnknown(v *BatchVerdict, id pg.ID, isEdge bool, labels []string, known map[string]struct{}) {
	for _, l := range labels {
		if _, ok := known[l]; !ok {
			c.record(v, DriftNewType, id, isEdge, "label %q unknown to epoch (set %q)", l, pg.LabelSetKey(labels))
			return
		}
	}
	c.record(v, DriftNewLabelSet, id, isEdge, "new combination %q of known labels", pg.LabelSetKey(labels))
}

func (c *StreamChecker) checkProps(v *BatchVerdict, id pg.ID, isEdge bool, typeName string, defs []schema.PropertyDef, props pg.Properties) {
	for i := range defs {
		p := &defs[i]
		val, present := props[p.Key]
		if !present {
			if p.Mandatory {
				c.record(v, DriftMissingMandatory, id, isEdge, "type %s mandatory %q absent", typeName, p.Key)
			}
			continue
		}
		got := val.Kind()
		if got == pg.KindNull || got == p.DataType {
			continue
		}
		if !kindCompatible(p.DataType, got) {
			c.record(v, DriftWidenedType, id, isEdge, "%q is %s, epoch declares %s on %s", p.Key, got, p.DataType, typeName)
		} else if strictlyNarrower(got, p.DataType) {
			c.record(v, DriftTypeDowngrade, id, isEdge, "%q is %s under declared %s on %s", p.Key, got, p.DataType, typeName)
		}
	}
}

// strictlyNarrower reports whether got sits strictly below declared in the
// numeric/temporal branches of the type-priority lattice. The STRING top is
// deliberately excluded: sample-based inference defaults unobserved
// properties to STRING, and flagging every concrete value under a STRING
// declaration would drown the signal.
func strictlyNarrower(got, declared pg.Kind) bool {
	return (declared == pg.KindFloat && got == pg.KindInt) ||
		(declared == pg.KindTimestamp && got == pg.KindDate)
}

// checkDegree detects *:1 → M:N breaks using within-batch degrees: the
// check is stateless across batches (so quarantining a batch leaves no
// residue), firing only when a single window shows degree ≥ 2 on a side the
// epoch bounds at 1.
func (c *StreamChecker) checkDegree(v *BatchVerdict, e *pg.EdgeRecord, ty *schema.EdgeTypeDef) {
	if ty.MaxOut == 1 {
		k := degKey{ty.Name, e.Src}
		c.outDeg[k]++
		if c.outDeg[k] == 2 {
			c.record(v, DriftCardinalityBreak, e.ID, true, "source %d out-degree 2 on %s (epoch max 1)", e.Src, ty.Name)
		}
	}
	if ty.MaxIn == 1 {
		k := degKey{ty.Name, e.Dst}
		c.inDeg[k]++
		if c.inDeg[k] == 2 {
			c.record(v, DriftCardinalityBreak, e.ID, true, "target %d in-degree 2 on %s (epoch max 1)", e.Dst, ty.Name)
		}
	}
}

// record counts the violation and, under the detail cap, formats it. The
// format arguments are only evaluated into a string when a detail is
// actually kept.
func (c *StreamChecker) record(v *BatchVerdict, class DriftClass, id pg.ID, isEdge bool, format string, args ...any) {
	v.Counts[class]++
	if len(v.Details) < c.maxDetails {
		v.Details = append(v.Details, DriftViolation{
			Class: class, Element: id, IsEdge: isEdge,
			Detail: fmt.Sprintf(format, args...),
		})
	}
}
