package validate

import (
	"testing"

	"pghive/internal/pg"
)

func TestKindCompatibleHierarchy(t *testing.T) {
	tests := []struct {
		declared, got pg.Kind
		want          bool
	}{
		{pg.KindString, pg.KindInt, true}, // everything fits STRING
		{pg.KindFloat, pg.KindInt, true},
		{pg.KindInt, pg.KindFloat, false},
		{pg.KindTimestamp, pg.KindDate, true},
		{pg.KindDate, pg.KindTimestamp, false},
		{pg.KindBool, pg.KindBool, true},
	}
	for _, tc := range tests {
		if got := kindCompatible(tc.declared, tc.got); got != tc.want {
			t.Errorf("kindCompatible(%v, %v) = %v, want %v", tc.declared, tc.got, got, tc.want)
		}
	}
}
