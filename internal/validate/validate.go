// Package validate checks a property graph against a discovered schema
// definition — the downstream use the paper motivates for schema discovery
// (§4.4: "supports validation processes", "data validation, consistency
// enforcement"). STRICT mode enforces the full structure: every element
// must match a type, carry all mandatory properties, respect inferred data
// types, enumerations and key constraints, and edge types must respect
// their cardinality upper bounds. LOOSE mode only requires that element
// labels and property keys are known to the schema (open types).
package validate

import (
	"fmt"
	"sort"

	"pghive/internal/infer"
	"pghive/internal/pg"
	"pghive/internal/schema"
	"pghive/internal/serialize"
)

// Violation is one conformance failure.
type Violation struct {
	// Kind classifies the failure.
	Kind ViolationKind
	// Element identifies the offending node or edge.
	Element pg.ID
	// IsEdge distinguishes the ID space.
	IsEdge bool
	// Detail is a human-readable description.
	Detail string
}

// String renders the violation.
func (v Violation) String() string {
	el := "node"
	if v.IsEdge {
		el = "edge"
	}
	return fmt.Sprintf("%s %d: %s: %s", el, v.Element, v.Kind, v.Detail)
}

// ViolationKind classifies conformance failures.
type ViolationKind uint8

// Violation kinds.
const (
	// UnknownType: no schema type covers the element's label set.
	UnknownType ViolationKind = iota
	// UnknownProperty: the element carries a property key its type does
	// not declare (STRICT only).
	UnknownProperty
	// MissingMandatory: a mandatory property is absent.
	MissingMandatory
	// WrongDataType: a value's kind is incompatible with the declared type.
	WrongDataType
	// EnumViolation: a value falls outside the declared enumeration.
	EnumViolation
	// KeyViolation: two elements of one type share a key property value.
	KeyViolation
	// CardinalityViolation: an endpoint exceeds the declared maximum
	// degree.
	CardinalityViolation
	// UnknownEndpoint: an edge connects node types outside its declaration.
	UnknownEndpoint
)

// String names the kind.
func (k ViolationKind) String() string {
	switch k {
	case UnknownType:
		return "unknown type"
	case UnknownProperty:
		return "unknown property"
	case MissingMandatory:
		return "missing mandatory property"
	case WrongDataType:
		return "wrong data type"
	case EnumViolation:
		return "enum violation"
	case KeyViolation:
		return "key violation"
	case CardinalityViolation:
		return "cardinality violation"
	case UnknownEndpoint:
		return "unknown endpoint type"
	default:
		return fmt.Sprintf("violation(%d)", uint8(k))
	}
}

// Report is the outcome of validating a graph.
type Report struct {
	Violations []Violation
	// NodesChecked and EdgesChecked count validated elements.
	NodesChecked int
	EdgesChecked int
}

// Valid reports whether no violations were found.
func (r *Report) Valid() bool { return len(r.Violations) == 0 }

// CountByKind groups the violations.
func (r *Report) CountByKind() map[ViolationKind]int {
	out := map[ViolationKind]int{}
	for _, v := range r.Violations {
		out[v.Kind]++
	}
	return out
}

// Options bound a validation run.
type Options struct {
	// Mode selects STRICT or LOOSE conformance.
	Mode serialize.Mode
	// MaxViolations stops after this many findings (0 = unlimited).
	MaxViolations int
}

// Validate checks g against the schema definition.
func Validate(g *pg.Graph, def *schema.Def, opts Options) *Report {
	v := &validator{def: def, opts: opts, report: &Report{}}
	v.indexTypes()
	g.Nodes(func(n *pg.Node) bool {
		v.checkNode(n)
		return !v.full()
	})
	g.Edges(func(e *pg.Edge) bool {
		v.checkEdge(g, e)
		return !v.full()
	})
	return v.report
}

type validator struct {
	def    *schema.Def
	opts   Options
	report *Report

	nodeByKey map[string]*schema.NodeTypeDef
	edgeByKey map[string]*schema.EdgeTypeDef
	// nodeTypeName maps a node label-set key to its type name, for
	// endpoint checks.
	nodeTypeName map[string]string
	// keySeen tracks (type, property, value) triples for key constraints.
	keySeen map[string]pg.ID
	// outDeg/inDeg track per-edge-type endpoint degrees for cardinality
	// checks.
	outDeg map[string]map[pg.ID]int
	inDeg  map[string]map[pg.ID]int
}

func (v *validator) indexTypes() {
	v.nodeByKey = map[string]*schema.NodeTypeDef{}
	v.nodeTypeName = map[string]string{}
	for i := range v.def.Nodes {
		n := &v.def.Nodes[i]
		key := pg.LabelSetKey(n.Labels)
		if _, dup := v.nodeByKey[key]; !dup {
			v.nodeByKey[key] = n
			v.nodeTypeName[key] = n.Name
		}
	}
	v.edgeByKey = map[string]*schema.EdgeTypeDef{}
	for i := range v.def.Edges {
		e := &v.def.Edges[i]
		key := pg.LabelSetKey(e.Labels)
		if _, dup := v.edgeByKey[key]; !dup {
			v.edgeByKey[key] = e
		}
	}
	v.keySeen = map[string]pg.ID{}
	v.outDeg = map[string]map[pg.ID]int{}
	v.inDeg = map[string]map[pg.ID]int{}
}

func (v *validator) full() bool {
	return v.opts.MaxViolations > 0 && len(v.report.Violations) >= v.opts.MaxViolations
}

func (v *validator) add(kind ViolationKind, id pg.ID, isEdge bool, format string, args ...interface{}) {
	if v.full() {
		return
	}
	v.report.Violations = append(v.report.Violations, Violation{
		Kind: kind, Element: id, IsEdge: isEdge, Detail: fmt.Sprintf(format, args...),
	})
}

func (v *validator) checkNode(n *pg.Node) {
	v.report.NodesChecked++
	key := n.LabelKey()
	ty, ok := v.nodeByKey[key]
	if !ok {
		// LOOSE tolerates subset label matches against a covering type.
		if ty = v.coveringNodeType(n.Labels); ty == nil {
			v.add(UnknownType, n.ID, false, "no type for label set %q", key)
			return
		}
	}
	v.checkProps(n.ID, false, ty.Name, ty.Properties, n.Props)
}

// coveringNodeType finds a type whose label set is a superset of the
// element's labels (covers partially-labeled data in LOOSE mode).
func (v *validator) coveringNodeType(labels []string) *schema.NodeTypeDef {
	if v.opts.Mode != serialize.Loose {
		return nil
	}
	var best *schema.NodeTypeDef
	for i := range v.def.Nodes {
		ty := &v.def.Nodes[i]
		if containsAll(ty.Labels, labels) && (best == nil || len(ty.Labels) < len(best.Labels)) {
			best = ty
		}
	}
	return best
}

func containsAll(super, sub []string) bool {
	set := map[string]struct{}{}
	for _, s := range super {
		set[s] = struct{}{}
	}
	for _, s := range sub {
		if _, ok := set[s]; !ok {
			return false
		}
	}
	return true
}

func (v *validator) checkProps(id pg.ID, isEdge bool, typeName string, defs []schema.PropertyDef, props pg.Properties) {
	for _, p := range defs {
		val, present := props[p.Key]
		if !present {
			if p.Mandatory && v.opts.Mode == serialize.Strict {
				v.add(MissingMandatory, id, isEdge, "type %s requires %q", typeName, p.Key)
			}
			continue
		}
		if v.opts.Mode != serialize.Strict {
			continue
		}
		if !kindCompatible(p.DataType, val.Kind()) {
			v.add(WrongDataType, id, isEdge, "%q is %s, type %s declares %s", p.Key, val.Kind(), typeName, p.DataType)
		}
		if len(p.Enum) > 0 && !enumContains(p.Enum, val.String()) {
			v.add(EnumViolation, id, isEdge, "%q = %q outside enum of type %s", p.Key, val.String(), typeName)
		}
		if p.Unique {
			kindMark := "n"
			if isEdge {
				kindMark = "e"
			}
			keyID := kindMark + "\x00" + typeName + "\x00" + p.Key + "\x00" + val.String()
			if prev, dup := v.keySeen[keyID]; dup {
				v.add(KeyViolation, id, isEdge, "%q = %q duplicates element %d", p.Key, val.String(), prev)
			} else {
				v.keySeen[keyID] = id
			}
		}
	}
	if v.opts.Mode == serialize.Strict {
		declared := map[string]struct{}{}
		for _, p := range defs {
			declared[p.Key] = struct{}{}
		}
		for _, k := range pg.SortedPropKeys(props) {
			if _, ok := declared[k]; !ok {
				v.add(UnknownProperty, id, isEdge, "type %s does not declare %q", typeName, k)
			}
		}
	}
}

// kindCompatible accepts a value kind for a declared data type following
// the inference hierarchy: everything fits STRING, INT fits DOUBLE, DATE
// fits TIMESTAMP.
func kindCompatible(declared, got pg.Kind) bool {
	if declared == got || declared == pg.KindString {
		return true
	}
	if declared == pg.KindFloat && got == pg.KindInt {
		return true
	}
	if declared == pg.KindTimestamp && got == pg.KindDate {
		return true
	}
	return false
}

func enumContains(enum []string, v string) bool {
	i := sort.SearchStrings(enum, v)
	return i < len(enum) && enum[i] == v
}

func (v *validator) checkEdge(g *pg.Graph, e *pg.Edge) {
	v.report.EdgesChecked++
	key := e.LabelKey()
	ty, ok := v.edgeByKey[key]
	if !ok {
		v.add(UnknownType, e.ID, true, "no edge type for label set %q", key)
		return
	}
	v.checkProps(e.ID, true, ty.Name, ty.Properties, e.Props)

	if v.opts.Mode == serialize.Strict {
		v.checkEndpoint(g, e, ty.SrcTypes, e.Src, "source")
		v.checkEndpoint(g, e, ty.DstTypes, e.Dst, "target")

		// Cardinality upper bounds.
		if v.outDeg[ty.Name] == nil {
			v.outDeg[ty.Name] = map[pg.ID]int{}
			v.inDeg[ty.Name] = map[pg.ID]int{}
		}
		v.outDeg[ty.Name][e.Src]++
		v.inDeg[ty.Name][e.Dst]++
		if ty.MaxOut > 0 && v.outDeg[ty.Name][e.Src] == ty.MaxOut+1 {
			v.add(CardinalityViolation, e.ID, true, "source %d exceeds max out-degree %d of %s", e.Src, ty.MaxOut, ty.Name)
		}
		if ty.MaxIn > 0 && v.inDeg[ty.Name][e.Dst] == ty.MaxIn+1 {
			v.add(CardinalityViolation, e.ID, true, "target %d exceeds max in-degree %d of %s", e.Dst, ty.MaxIn, ty.Name)
		}
	}
}

func (v *validator) checkEndpoint(g *pg.Graph, e *pg.Edge, allowed []string, id pg.ID, side string) {
	if len(allowed) == 0 {
		return // unresolved endpoints validate openly
	}
	node := g.Node(id)
	if node == nil {
		v.add(UnknownEndpoint, e.ID, true, "%s node %d missing", side, id)
		return
	}
	name, ok := v.nodeTypeName[node.LabelKey()]
	if !ok {
		v.add(UnknownEndpoint, e.ID, true, "%s node %d has no type", side, id)
		return
	}
	for _, a := range allowed {
		if a == name {
			return
		}
	}
	v.add(UnknownEndpoint, e.ID, true, "%s type %s not in %v for edge type %s", side, name, allowed, typeNameOf(e))
}

func typeNameOf(e *pg.Edge) string { return e.LabelKey() }

// ValidateSelf is a convenience: discover-then-validate consistency. A
// schema finalized from a graph (with full-scan data types) must validate
// that same graph in LOOSE mode with zero violations, and in STRICT mode
// too when the graph was fully labeled. It is used by tests and examples
// as an end-to-end invariant.
func ValidateSelf(g *pg.Graph, s *schema.Schema, mode serialize.Mode) *Report {
	def := infer.Finalize(s, infer.Options{})
	return Validate(g, def, Options{Mode: mode})
}
