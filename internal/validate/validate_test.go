package validate_test

import (
	"strings"
	"testing"

	"pghive/internal/core"
	"pghive/internal/pg"
	"pghive/internal/schema"
	"pghive/internal/serialize"
	. "pghive/internal/validate"
)

// fixtureDef builds a small schema by hand.
func fixtureDef() *schema.Def {
	return &schema.Def{
		Nodes: []schema.NodeTypeDef{
			{
				Name: "Person", Labels: []string{"Person"},
				Properties: []schema.PropertyDef{
					{Key: "id", DataType: pg.KindString, Mandatory: true, Unique: true},
					{Key: "age", DataType: pg.KindInt, Mandatory: false},
					{Key: "status", DataType: pg.KindString, Mandatory: false, Enum: []string{"active", "idle"}},
				},
				Instances: 2,
			},
			{
				Name: "Org", Labels: []string{"Org"},
				Properties: []schema.PropertyDef{{Key: "name", DataType: pg.KindString, Mandatory: true}},
				Instances:  1,
			},
		},
		Edges: []schema.EdgeTypeDef{
			{
				Name: "WORKS_AT", Labels: []string{"WORKS_AT"},
				SrcTypes: []string{"Person"}, DstTypes: []string{"Org"},
				Cardinality: schema.CardZeroN, MaxOut: 1, MaxIn: 5,
			},
		},
	}
}

func conformingGraph(t testing.TB) *pg.Graph {
	t.Helper()
	g := pg.NewGraph()
	p1 := g.AddNode([]string{"Person"}, pg.Properties{"id": pg.Str("a"), "age": pg.Int(30), "status": pg.Str("active")})
	p2 := g.AddNode([]string{"Person"}, pg.Properties{"id": pg.Str("b")})
	org := g.AddNode([]string{"Org"}, pg.Properties{"name": pg.Str("x")})
	for _, p := range []pg.ID{p1, p2} {
		if _, err := g.AddEdge([]string{"WORKS_AT"}, p, org, nil); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestValidateConforming(t *testing.T) {
	g := conformingGraph(t)
	for _, mode := range []serialize.Mode{serialize.Strict, serialize.Loose} {
		r := Validate(g, fixtureDef(), Options{Mode: mode})
		if !r.Valid() {
			t.Errorf("%v: unexpected violations: %v", mode, r.Violations)
		}
		if r.NodesChecked != 3 || r.EdgesChecked != 2 {
			t.Errorf("%v: checked (%d,%d), want (3,2)", mode, r.NodesChecked, r.EdgesChecked)
		}
	}
}

func TestValidateUnknownType(t *testing.T) {
	g := conformingGraph(t)
	g.AddNode([]string{"Ghost"}, nil)
	r := Validate(g, fixtureDef(), Options{Mode: serialize.Strict})
	if r.CountByKind()[UnknownType] != 1 {
		t.Errorf("violations = %v, want one unknown type", r.Violations)
	}
}

func TestValidateMissingMandatory(t *testing.T) {
	g := pg.NewGraph()
	g.AddNode([]string{"Person"}, pg.Properties{"age": pg.Int(1)}) // no id
	r := Validate(g, fixtureDef(), Options{Mode: serialize.Strict})
	if r.CountByKind()[MissingMandatory] != 1 {
		t.Errorf("violations = %v, want one missing mandatory", r.Violations)
	}
	// LOOSE tolerates it.
	r = Validate(g, fixtureDef(), Options{Mode: serialize.Loose})
	if !r.Valid() {
		t.Errorf("LOOSE should tolerate a missing property: %v", r.Violations)
	}
}

func TestValidateWrongDataType(t *testing.T) {
	g := pg.NewGraph()
	g.AddNode([]string{"Person"}, pg.Properties{"id": pg.Str("a"), "age": pg.Str("old")})
	r := Validate(g, fixtureDef(), Options{Mode: serialize.Strict})
	if r.CountByKind()[WrongDataType] != 1 {
		t.Errorf("violations = %v, want one wrong data type", r.Violations)
	}
}

func TestValidateEnumViolation(t *testing.T) {
	g := pg.NewGraph()
	g.AddNode([]string{"Person"}, pg.Properties{"id": pg.Str("a"), "status": pg.Str("zombie")})
	r := Validate(g, fixtureDef(), Options{Mode: serialize.Strict})
	if r.CountByKind()[EnumViolation] != 1 {
		t.Errorf("violations = %v, want one enum violation", r.Violations)
	}
}

func TestValidateKeyViolation(t *testing.T) {
	g := pg.NewGraph()
	g.AddNode([]string{"Person"}, pg.Properties{"id": pg.Str("same")})
	g.AddNode([]string{"Person"}, pg.Properties{"id": pg.Str("same")})
	r := Validate(g, fixtureDef(), Options{Mode: serialize.Strict})
	if r.CountByKind()[KeyViolation] != 1 {
		t.Errorf("violations = %v, want one key violation", r.Violations)
	}
}

func TestValidateUnknownProperty(t *testing.T) {
	g := pg.NewGraph()
	g.AddNode([]string{"Person"}, pg.Properties{"id": pg.Str("a"), "shoeSize": pg.Int(44)})
	r := Validate(g, fixtureDef(), Options{Mode: serialize.Strict})
	if r.CountByKind()[UnknownProperty] != 1 {
		t.Errorf("violations = %v, want one unknown property", r.Violations)
	}
	// LOOSE is open.
	if r := Validate(g, fixtureDef(), Options{Mode: serialize.Loose}); !r.Valid() {
		t.Errorf("LOOSE should tolerate extra properties: %v", r.Violations)
	}
}

func TestValidateCardinalityViolation(t *testing.T) {
	g := pg.NewGraph()
	p := g.AddNode([]string{"Person"}, pg.Properties{"id": pg.Str("a")})
	o1 := g.AddNode([]string{"Org"}, pg.Properties{"name": pg.Str("x")})
	o2 := g.AddNode([]string{"Org"}, pg.Properties{"name": pg.Str("y")})
	for _, o := range []pg.ID{o1, o2} { // MaxOut is 1
		if _, err := g.AddEdge([]string{"WORKS_AT"}, p, o, nil); err != nil {
			t.Fatal(err)
		}
	}
	r := Validate(g, fixtureDef(), Options{Mode: serialize.Strict})
	if r.CountByKind()[CardinalityViolation] != 1 {
		t.Errorf("violations = %v, want one cardinality violation", r.Violations)
	}
}

func TestValidateUnknownEndpoint(t *testing.T) {
	g := pg.NewGraph()
	o1 := g.AddNode([]string{"Org"}, pg.Properties{"name": pg.Str("x")})
	o2 := g.AddNode([]string{"Org"}, pg.Properties{"name": pg.Str("y")})
	if _, err := g.AddEdge([]string{"WORKS_AT"}, o1, o2, nil); err != nil {
		t.Fatal(err)
	}
	r := Validate(g, fixtureDef(), Options{Mode: serialize.Strict})
	if r.CountByKind()[UnknownEndpoint] == 0 {
		t.Errorf("violations = %v, want an unknown endpoint", r.Violations)
	}
}

func TestValidateMaxViolations(t *testing.T) {
	g := pg.NewGraph()
	for i := 0; i < 10; i++ {
		g.AddNode([]string{"Ghost"}, nil)
	}
	r := Validate(g, fixtureDef(), Options{Mode: serialize.Strict, MaxViolations: 3})
	if len(r.Violations) != 3 {
		t.Errorf("got %d violations, want capped at 3", len(r.Violations))
	}
}

func TestSelfValidationInvariant(t *testing.T) {
	// A schema discovered from a fully labeled graph validates that graph
	// in both modes — the end-to-end soundness property of §4.7.
	g := pg.NewGraph()
	var people []pg.ID
	for i := 0; i < 40; i++ {
		people = append(people, g.AddNode([]string{"Person"}, pg.Properties{
			"name": pg.Str("p"), "n": pg.Int(int64(i)),
		}))
	}
	org := g.AddNode([]string{"Org"}, pg.Properties{"name": pg.Str("o")})
	for _, p := range people {
		if _, err := g.AddEdge([]string{"WORKS_AT"}, p, org, nil); err != nil {
			t.Fatal(err)
		}
	}
	res := core.DiscoverGraph(g, core.DefaultConfig())
	for _, mode := range []serialize.Mode{serialize.Strict, serialize.Loose} {
		r := Validate(g, res.Def, Options{Mode: mode})
		if !r.Valid() {
			t.Errorf("%v: self-validation failed: %v", mode, r.Violations[:min(5, len(r.Violations))])
		}
	}
}

func TestSelfValidationLooseOnNoisyGraph(t *testing.T) {
	// With unlabeled elements merged into labeled types, LOOSE
	// self-validation must still pass (covering types absorb them).
	g := pg.NewGraph()
	for i := 0; i < 30; i++ {
		labels := []string{"Person"}
		if i%3 == 0 {
			labels = nil
		}
		g.AddNode(labels, pg.Properties{"name": pg.Str("p"), "n": pg.Int(int64(i))})
	}
	res := core.DiscoverGraph(g, core.DefaultConfig())
	r := ValidateSelf(g, res.Schema, serialize.Loose)
	if !r.Valid() {
		t.Errorf("LOOSE self-validation failed: %v", r.Violations)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: KeyViolation, Element: 7, IsEdge: true, Detail: "dup"}
	if !strings.Contains(v.String(), "edge 7") || !strings.Contains(v.String(), "key violation") {
		t.Errorf("String = %q", v.String())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
