package vectorize

import (
	"fmt"
	"testing"

	"pghive/internal/pg"
)

func labeledBatch(labels ...string) *pg.Batch {
	b := &pg.Batch{}
	for i, l := range labels {
		b.Nodes = append(b.Nodes, pg.NodeRecord{
			ID:     pg.ID(i),
			Labels: []string{l},
			Props:  pg.Properties{"name": pg.Str("x")},
		})
	}
	return b
}

func TestNewMatchesSessionFirstBatch(t *testing.T) {
	b := exampleBatch(t)
	oneShot := New(b, DefaultConfig())
	sess := NewSession(DefaultConfig()).Vectorize(b)
	for i := range b.Nodes {
		a, c := oneShot.NodeVector(&b.Nodes[i]), sess.NodeVector(&b.Nodes[i])
		for j := range a {
			if a[j] != c[j] {
				t.Fatalf("node %d slot %d: one-shot %v != session %v", i, j, a[j], c[j])
			}
		}
	}
}

// TestSessionReusesTokenVectors is the cross-batch cache contract: a token
// keeps the embedding it was assigned when first observed, even as later
// batches introduce new vocabulary.
func TestSessionReusesTokenVectors(t *testing.T) {
	s := NewSession(DefaultConfig())
	b1 := labeledBatch("Person", "Person", "Organization")
	v1 := s.Vectorize(b1)
	before := v1.NodeVector(&b1.Nodes[0])

	b2 := labeledBatch("Person", "Post", "Comment")
	v2 := s.Vectorize(b2)
	after := v2.NodeVector(&b2.Nodes[0])

	if len(before) != len(after) {
		t.Fatalf("vector length changed: %d -> %d", len(before), len(after))
	}
	d := v2.Model().Dim()
	for i := 0; i < d; i++ {
		if before[i] != after[i] {
			t.Fatalf("Person embedding changed across batches at slot %d: %v != %v", i, before[i], after[i])
		}
	}
	for _, tok := range []string{"Person", "Organization", "Post", "Comment"} {
		if !v2.Model().Has(tok) {
			t.Errorf("combined model missing token %q", tok)
		}
	}
}

// TestSessionVectorizerSnapshotIsolated: a Vectorizer must not see tokens
// introduced by later batches — it is an immutable snapshot, which is what
// makes it safe to read while the next batch is being vectorized.
func TestSessionVectorizerSnapshotIsolated(t *testing.T) {
	s := NewSession(DefaultConfig())
	v1 := s.Vectorize(labeledBatch("Person"))
	s.Vectorize(labeledBatch("Organization"))

	rec := pg.NodeRecord{Labels: []string{"Organization"}, Props: pg.Properties{"name": pg.Str("x")}}
	vec := v1.NodeVector(&rec)
	for i := 0; i < v1.Model().Dim(); i++ {
		if vec[i] != 0 {
			t.Fatal("snapshot from batch 1 should render batch-2 tokens as unknown (zero block)")
		}
	}
}

// TestSessionDimInvalidation: when the cumulative vocabulary crosses an
// adaptiveDim threshold, the whole table is retrained at the new
// dimensionality; earlier snapshots keep the old one.
func TestSessionDimInvalidation(t *testing.T) {
	s := NewSession(Config{})
	var first []string
	for i := 0; i < 10; i++ {
		first = append(first, fmt.Sprintf("T%02d", i))
	}
	v1 := s.Vectorize(labeledBatch(first...))
	if v1.Model().Dim() != 16 {
		t.Fatalf("batch 1 dim = %d, want 16 (10 tokens)", v1.Model().Dim())
	}

	var second []string
	for i := 10; i < 40; i++ {
		second = append(second, fmt.Sprintf("T%02d", i))
	}
	v2 := s.Vectorize(labeledBatch(second...))
	if v2.Model().Dim() != 32 {
		t.Fatalf("batch 2 dim = %d, want 32 (40 cumulative tokens)", v2.Model().Dim())
	}
	if v1.NodeDim() != 16+1 {
		t.Errorf("batch-1 snapshot dim changed retroactively: NodeDim = %d", v1.NodeDim())
	}
	// Every token — cached and new — must render at the new dimensionality.
	for _, tok := range []string{"T00", "T39"} {
		rec := pg.NodeRecord{Labels: []string{tok}}
		vec := v2.NodeVector(&rec)
		nonzero := false
		for i := 0; i < 32; i++ {
			if vec[i] != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			t.Errorf("token %q has a zero embedding after invalidation", tok)
		}
	}
}

// TestVectorIntoMatchesAllocating: the arena renderers must fully overwrite
// dst, so recycled (dirty) slices render identically to fresh allocations.
func TestVectorIntoMatchesAllocating(t *testing.T) {
	b := exampleBatch(t)
	v := New(b, DefaultConfig())
	dirtyN := make([]float64, v.NodeDim())
	dirtyE := make([]float64, v.EdgeDim())
	for i := range dirtyN {
		dirtyN[i] = -99
	}
	for i := range dirtyE {
		dirtyE[i] = -99
	}
	for i := range b.Nodes {
		want := v.NodeVector(&b.Nodes[i])
		v.NodeVectorInto(&b.Nodes[i], dirtyN)
		for j := range want {
			if dirtyN[j] != want[j] {
				t.Fatalf("node %d slot %d: Into %v != alloc %v", i, j, dirtyN[j], want[j])
			}
		}
	}
	for i := range b.Edges {
		want := v.EdgeVector(&b.Edges[i])
		v.EdgeVectorInto(&b.Edges[i], dirtyE)
		for j := range want {
			if dirtyE[j] != want[j] {
				t.Fatalf("edge %d slot %d: Into %v != alloc %v", i, j, dirtyE[j], want[j])
			}
		}
	}
}

// TestWeightedBlockMemoized: records sharing a label-set token share the
// same weighted prefix (scaled once per token, not once per record).
func TestWeightedBlockMemoized(t *testing.T) {
	s := NewSession(Config{LabelWeight: 3})
	b := labeledBatch("Person", "Person")
	v := s.Vectorize(b)
	v1, v2 := v.NodeVector(&b.Nodes[0]), v.NodeVector(&b.Nodes[1])
	d := v.Model().Dim()
	for i := 0; i < d; i++ {
		if v1[i] != v2[i] {
			t.Fatal("same token must render the same weighted block")
		}
		if want := 3 * v.Model().Vector("Person")[i]; v1[i] != want {
			t.Fatalf("slot %d = %v, want %v (3x raw)", i, v1[i], want)
		}
	}
}
