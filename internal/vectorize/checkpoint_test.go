package vectorize

import (
	"bytes"
	"fmt"
	"testing"

	"pghive/internal/pg"
)

// checkpointBatch builds a batch whose elements carry distinct label sets so
// the session trains several tokens.
func checkpointBatch(start, n int) *pg.Batch {
	b := &pg.Batch{}
	for i := 0; i < n; i++ {
		b.Nodes = append(b.Nodes, pg.NodeRecord{
			ID:     pg.ID(start + i),
			Labels: []string{fmt.Sprintf("L%d", (start+i)%5)},
			Props:  pg.Properties{"p": pg.Int(int64(i))},
		})
	}
	return b
}

func encodeSession(t *testing.T, s *Session) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := pg.NewWireWriter(&buf)
	if err := s.WriteState(w); err != nil {
		t.Fatalf("WriteState: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

func TestSessionStateRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Embedding.Seed = 9

	orig := NewSession(cfg)
	orig.Vectorize(checkpointBatch(0, 20))
	orig.Vectorize(checkpointBatch(20, 20))
	state := encodeSession(t, orig)

	restored := NewSession(cfg)
	if err := restored.ReadState(pg.NewWireReader(bytes.NewReader(state))); err != nil {
		t.Fatalf("ReadState: %v", err)
	}
	if re := encodeSession(t, restored); !bytes.Equal(state, re) {
		t.Fatal("restored session re-encodes to different bytes")
	}

	// The restored session must continue the run exactly as the original:
	// feed both a batch with a brand-new label set and compare rendered
	// vectors for every element.
	next := checkpointBatch(40, 10)
	next.Nodes = append(next.Nodes, pg.NodeRecord{ID: 99, Labels: []string{"Brand", "New"}})
	va, vb := orig.Vectorize(next), restored.Vectorize(next)
	for i := range next.Nodes {
		a, b := va.NodeVector(&next.Nodes[i]), vb.NodeVector(&next.Nodes[i])
		if len(a) != len(b) {
			t.Fatalf("node %d: dim %d vs %d", i, len(a), len(b))
		}
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("node %d dim %d: %v vs %v — resumed session diverged", i, d, a[d], b[d])
			}
		}
	}

	// And their post-batch states stay byte-identical.
	if !bytes.Equal(encodeSession(t, orig), encodeSession(t, restored)) {
		t.Error("sessions diverge after one more batch")
	}
}

func TestSessionStateEmpty(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSession(cfg)
	state := encodeSession(t, s)
	restored := NewSession(cfg)
	if err := restored.ReadState(pg.NewWireReader(bytes.NewReader(state))); err != nil {
		t.Fatalf("ReadState on empty state: %v", err)
	}
	if restored.model != nil || len(restored.sentences) != 0 {
		t.Error("restored empty session is not empty")
	}
}

func TestSessionStateTruncated(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSession(cfg)
	s.Vectorize(checkpointBatch(0, 10))
	state := encodeSession(t, s)
	for _, cut := range []int{0, 1, len(state) / 2, len(state) - 1} {
		r := NewSession(cfg)
		if err := r.ReadState(pg.NewWireReader(bytes.NewReader(state[:cut]))); err == nil {
			t.Errorf("decoding %d/%d bytes succeeded, want error", cut, len(state))
		}
	}
}
