package vectorize

import (
	"encoding/binary"
	"sort"

	"pghive/internal/pg"
)

// Record is the compact factored form of one element (§4.1 exploited as
// structure rather than materialized): an index into the batch's distinct
// weighted-prefix table plus the ascending indexes of the element's present
// property keys in the kind's sorted key layout. Together they determine the
// element's hybrid vector exactly — prefix floats plus 0/1 suffix — without
// storing any of its d+K (or 3d+Q) entries.
type Record struct {
	// TokenID indexes Encoding.Prefixes / Encoding.PrefixSets.
	TokenID int
	// Props holds the indexes of the element's property keys in the layout,
	// sorted ascending — the suffix positions the dense vector sets to 1, in
	// the order the dense dot-product loop visits them.
	Props []int32
}

// Encoding is the factored representation of one batch kind (nodes or
// edges): every element as a Record over a table of distinct prefix vectors.
// The prefix of a node is its weighted label-set embedding (d floats); the
// prefix of an edge is the concatenation of its label, source and target
// embeddings (3d floats). Distinct prefixes are few (one per label-set token
// for nodes, one per observed (label, src, dst) triple for edges), so the
// factored LSH kernel can precompute per-table projection dots once per
// prefix instead of once per element.
//
// An Encoding is only meaningful against the Vectorizer that produced it:
// Props indexes the Vectorizer's property-key layout, and the prefix floats
// are shared with its weighted-embedding memo. It is immutable after
// construction and safe for concurrent use.
type Encoding struct {
	// Dim is the full hybrid dimensionality (d+K for nodes, 3d+Q for edges).
	Dim int
	// PrefixDim is the width of the shared embedding prefix (d or 3d).
	PrefixDim int
	// Prefixes holds the distinct weighted prefix vectors, indexed by
	// Record.TokenID. Entries are read-only (node prefixes alias the
	// session's weighted memo).
	Prefixes [][]float64
	// PrefixSets holds, per TokenID, the MinHash tokens contributed by the
	// prefix (the L/S/T label-set tokens; empty label sets contribute none).
	PrefixSets [][]uint64
	// PropTokens maps each property-key index of the layout to its MinHash
	// token (hash of 'P' + key).
	PropTokens []uint64
	// Records holds one compact record per element, aligned with the batch.
	Records []Record
}

// encodingBuilder accumulates the distinct-prefix table while scanning a
// batch.
type encodingBuilder struct {
	enc    *Encoding
	ids    map[string]int // prefix fingerprint -> TokenID
	keyPos map[string]int // property key -> layout index
	arena  []int32        // shared backing for all Records' Props
}

func newEncodingBuilder(dim, prefixDim, elements, totalProps int, keyPos map[string]int, propKeys []string) *encodingBuilder {
	enc := &Encoding{
		Dim:        dim,
		PrefixDim:  prefixDim,
		PropTokens: make([]uint64, len(propKeys)),
		Records:    make([]Record, 0, elements),
	}
	for i, k := range propKeys {
		enc.PropTokens[i] = hashToken('P', k)
	}
	return &encodingBuilder{
		enc:    enc,
		ids:    make(map[string]int),
		keyPos: keyPos,
		arena:  make([]int32, 0, totalProps),
	}
}

// add appends one element: resolve (or install) its prefix and collect its
// sorted property indexes from the shared arena.
func (eb *encodingBuilder) add(fingerprint string, props pg.Properties, prefix func() ([]float64, []uint64)) {
	id, ok := eb.ids[fingerprint]
	if !ok {
		id = len(eb.enc.Prefixes)
		eb.ids[fingerprint] = id
		vec, set := prefix()
		eb.enc.Prefixes = append(eb.enc.Prefixes, vec)
		eb.enc.PrefixSets = append(eb.enc.PrefixSets, set)
	}
	start := len(eb.arena)
	for k := range props {
		if pos, ok := eb.keyPos[k]; ok {
			eb.arena = append(eb.arena, int32(pos))
		}
	}
	idx := eb.arena[start:len(eb.arena):len(eb.arena)]
	sortInt32(idx)
	eb.enc.Records = append(eb.enc.Records, Record{TokenID: id, Props: idx})
}

// sortInt32 sorts the typically tiny per-element index slices by insertion;
// large outliers fall back to the library sort.
func sortInt32(a []int32) {
	if len(a) > 48 {
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		return
	}
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// zeroPrefix returns a shared all-zero prefix for unlabeled (or
// out-of-snapshot) tokens, matching the dense renderer's cleared embedding
// block.
func (v *Vectorizer) zeroPrefix(n int) []float64 { return make([]float64, n) }

// nodePrefix resolves one label-set token to its weighted embedding block
// and MinHash token set.
func (v *Vectorizer) nodePrefix(key string) ([]float64, []uint64) {
	var set []uint64
	if key != "" {
		set = []uint64{hashToken('L', key)}
	}
	if w, ok := v.weighted[key]; ok && key != "" {
		return w, set
	}
	return v.zeroPrefix(v.dim), set
}

// NodeEncoding renders the batch's nodes as compact factored records. The
// receiver must be the Vectorizer built from the same batch (the property
// layout and token snapshot must cover every element).
func (v *Vectorizer) NodeEncoding(b *pg.Batch) *Encoding {
	total := 0
	for i := range b.Nodes {
		total += len(b.Nodes[i].Props)
	}
	eb := newEncodingBuilder(v.NodeDim(), v.dim, len(b.Nodes), total, v.nodeKeyPos, v.nodeKeys)
	for i := range b.Nodes {
		n := &b.Nodes[i]
		key := pg.LabelSetKey(n.Labels)
		eb.add(key, n.Props, func() ([]float64, []uint64) { return v.nodePrefix(key) })
	}
	return eb.enc
}

// EdgeEncoding renders the batch's edges as compact factored records: one
// distinct prefix per observed (label, source, target) label-set triple,
// materialized as the 3d-float concatenation the dense renderer would write.
func (v *Vectorizer) EdgeEncoding(b *pg.Batch) *Encoding {
	total := 0
	for i := range b.Edges {
		total += len(b.Edges[i].Props)
	}
	eb := newEncodingBuilder(v.EdgeDim(), 3*v.dim, len(b.Edges), total, v.edgeKeyPos, v.edgeKeys)
	var fp []byte
	for i := range b.Edges {
		e := &b.Edges[i]
		lk := pg.LabelSetKey(e.Labels)
		sk := pg.LabelSetKey(e.SrcLabels)
		dk := pg.LabelSetKey(e.DstLabels)
		// Length-prefixed parts make the triple fingerprint unambiguous
		// (label keys may contain any byte).
		fp = fp[:0]
		for _, part := range [3]string{lk, sk, dk} {
			fp = binary.LittleEndian.AppendUint32(fp, uint32(len(part)))
			fp = append(fp, part...)
		}
		if id, ok := eb.ids[string(fp)]; ok {
			eb.addKnown(id, e.Props)
			continue
		}
		eb.add(string(fp), e.Props, func() ([]float64, []uint64) { return v.edgePrefix(lk, sk, dk) })
	}
	return eb.enc
}

// addKnown appends one element whose prefix is already installed.
func (eb *encodingBuilder) addKnown(id int, props pg.Properties) {
	start := len(eb.arena)
	for k := range props {
		if pos, ok := eb.keyPos[k]; ok {
			eb.arena = append(eb.arena, int32(pos))
		}
	}
	idx := eb.arena[start:len(eb.arena):len(eb.arena)]
	sortInt32(idx)
	eb.enc.Records = append(eb.enc.Records, Record{TokenID: id, Props: idx})
}

// edgePrefix materializes the concatenated (label, src, dst) weighted
// embedding blocks, exactly as EdgeVectorInto writes them.
func (v *Vectorizer) edgePrefix(lk, sk, dk string) ([]float64, []uint64) {
	d := v.dim
	vec := make([]float64, 3*d)
	v.copyEmbedding(vec[:d], lk)
	v.copyEmbedding(vec[d:2*d], sk)
	v.copyEmbedding(vec[2*d:3*d], dk)
	set := make([]uint64, 0, 3)
	if lk != "" {
		set = append(set, hashToken('L', lk))
	}
	if sk != "" {
		set = append(set, hashToken('S', sk))
	}
	if dk != "" {
		set = append(set, hashToken('T', dk))
	}
	return vec, set
}

// AppendSet appends element i's MinHash token set (the same multiset
// NodeSet/EdgeSet produce — order differs, which MinHash minima ignore) to
// dst and returns it.
func (e *Encoding) AppendSet(dst []uint64, i int) []uint64 {
	r := e.Records[i]
	dst = append(dst, e.PrefixSets[r.TokenID]...)
	for _, k := range r.Props {
		dst = append(dst, e.PropTokens[k])
	}
	return dst
}

// AppendRecordKey appends a canonical byte fingerprint of element i's record
// to dst: two records compare equal exactly when they share the prefix and
// the property-index set, i.e. when their hybrid vectors and token sets are
// identical. Used to memoize signatures per distinct record.
func (e *Encoding) AppendRecordKey(dst []byte, i int) []byte {
	r := e.Records[i]
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.TokenID))
	for _, k := range r.Props {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(k))
	}
	return dst
}

// DistinctRecords deduplicates the encoding's records: recID maps every
// element to its distinct-record id, and reps holds one representative
// element index per distinct record, in first-appearance order. Signatures
// need computing only once per distinct record — most elements share a type
// and therefore a record.
func (e *Encoding) DistinctRecords() (recID []int, reps []int) {
	recID = make([]int, len(e.Records))
	memo := make(map[string]int, len(e.Records)/4+1)
	var key []byte
	for i := range e.Records {
		key = e.AppendRecordKey(key[:0], i)
		id, ok := memo[string(key)]
		if !ok {
			id = len(reps)
			memo[string(key)] = id
			reps = append(reps, i)
		}
		recID[i] = id
	}
	return recID, reps
}
