package vectorize

import (
	"testing"

	"pghive/internal/pg"
)

func exampleBatch(t testing.TB) *pg.Batch {
	t.Helper()
	g := pg.NewGraph()
	bob := g.AddNode([]string{"Person"}, pg.Properties{"name": pg.Str("Bob"), "gender": pg.Str("m"), "bday": pg.ParseValue("19/12/1999")})
	alice := g.AddNode(nil, pg.Properties{"name": pg.Str("Alice"), "gender": pg.Str("f"), "bday": pg.ParseValue("07/07/1990")})
	org := g.AddNode([]string{"Organization"}, pg.Properties{"name": pg.Str("FORTH"), "url": pg.Str("u")})
	if _, err := g.AddEdge([]string{"WORKS_AT"}, bob, org, pg.Properties{"from": pg.Int(2020)}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge([]string{"KNOWS"}, alice, bob, nil); err != nil {
		t.Fatal(err)
	}
	return g.Snapshot()
}

func TestDimensions(t *testing.T) {
	b := exampleBatch(t)
	v := New(b, DefaultConfig())
	d := v.Model().Dim()
	// K = {bday, gender, name, url} = 4, Q = {from} = 1.
	if got, want := v.NodeDim(), d+4; got != want {
		t.Errorf("NodeDim = %d, want %d", got, want)
	}
	if got, want := v.EdgeDim(), 3*d+1; got != want {
		t.Errorf("EdgeDim = %d, want %d", got, want)
	}
}

func TestPropertyKeyLayoutSorted(t *testing.T) {
	b := exampleBatch(t)
	v := New(b, DefaultConfig())
	want := []string{"bday", "gender", "name", "url"}
	got := v.NodePropertyKeys()
	if len(got) != len(want) {
		t.Fatalf("NodePropertyKeys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NodePropertyKeys = %v, want %v", got, want)
		}
	}
}

func TestUnlabeledNodeHasZeroEmbeddingBlock(t *testing.T) {
	b := exampleBatch(t)
	v := New(b, DefaultConfig())
	var alice *pg.NodeRecord
	for i := range b.Nodes {
		if len(b.Nodes[i].Labels) == 0 {
			alice = &b.Nodes[i]
		}
	}
	if alice == nil {
		t.Fatal("batch should contain an unlabeled node")
	}
	vec := v.NodeVector(alice)
	d := v.Model().Dim()
	for i := 0; i < d; i++ {
		if vec[i] != 0 {
			t.Fatalf("unlabeled node embedding block should be zero, got %v at %d", vec[i], i)
		}
	}
	// Property block: bday, gender, name present; url absent.
	wantBits := []float64{1, 1, 1, 0}
	for i, want := range wantBits {
		if vec[d+i] != want {
			t.Errorf("property bit %d = %v, want %v", i, vec[d+i], want)
		}
	}
}

func TestSameLabelSameStructureSameVector(t *testing.T) {
	g := pg.NewGraph()
	g.AddNode([]string{"Person"}, pg.Properties{"name": pg.Str("a")})
	g.AddNode([]string{"Person"}, pg.Properties{"name": pg.Str("b")})
	b := g.Snapshot()
	v := New(b, DefaultConfig())
	v1 := v.NodeVector(&b.Nodes[0])
	v2 := v.NodeVector(&b.Nodes[1])
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("identical label+structure should produce identical vectors")
		}
	}
}

func TestMultiLabelOrderInvariant(t *testing.T) {
	g := pg.NewGraph()
	g.AddNode([]string{"Student", "Person"}, pg.Properties{"name": pg.Str("a")})
	g.AddNode([]string{"Person", "Student"}, pg.Properties{"name": pg.Str("b")})
	b := g.Snapshot()
	v := New(b, DefaultConfig())
	v1, v2 := v.NodeVector(&b.Nodes[0]), v.NodeVector(&b.Nodes[1])
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("label order must not affect the vector")
		}
	}
}

func TestEdgeVectorLayout(t *testing.T) {
	b := exampleBatch(t)
	v := New(b, DefaultConfig())
	var worksAt *pg.EdgeRecord
	for i := range b.Edges {
		if pg.LabelSetKey(b.Edges[i].Labels) == "WORKS_AT" {
			worksAt = &b.Edges[i]
		}
	}
	vec := v.EdgeVector(worksAt)
	d := v.Model().Dim()
	if len(vec) != 3*d+1 {
		t.Fatalf("edge vector len = %d, want %d", len(vec), 3*d+1)
	}
	// "from" property bit set.
	if vec[3*d] != 1 {
		t.Error("edge property bit should be 1")
	}
	// Source is Person (labeled) so the second block must be nonzero.
	nonzero := false
	for i := d; i < 2*d; i++ {
		if vec[i] != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("source-label embedding block should be nonzero")
	}
}

func TestKnowsEdgeUnlabeledSourceBlockZero(t *testing.T) {
	b := exampleBatch(t)
	v := New(b, DefaultConfig())
	var knows *pg.EdgeRecord
	for i := range b.Edges {
		if pg.LabelSetKey(b.Edges[i].Labels) == "KNOWS" {
			knows = &b.Edges[i]
		}
	}
	vec := v.EdgeVector(knows)
	d := v.Model().Dim()
	for i := d; i < 2*d; i++ { // source is the unlabeled Alice
		if vec[i] != 0 {
			t.Fatal("unlabeled source block should be zero")
		}
	}
}

func TestLabelTokensCountsEndpoints(t *testing.T) {
	b := exampleBatch(t)
	v := New(b, DefaultConfig())
	// Distinct tokens: Person, Organization, WORKS_AT, KNOWS.
	if v.LabelTokens() != 4 {
		t.Errorf("LabelTokens = %d, want 4", v.LabelTokens())
	}
}

func TestNodeSetTokens(t *testing.T) {
	b := exampleBatch(t)
	v := New(b, DefaultConfig())
	var bob, alice *pg.NodeRecord
	for i := range b.Nodes {
		switch {
		case len(b.Nodes[i].Labels) == 0:
			alice = &b.Nodes[i]
		case pg.LabelSetKey(b.Nodes[i].Labels) == "Person":
			bob = &b.Nodes[i]
		}
	}
	// Bob: 1 label token + 3 property tokens; Alice: 3 property tokens.
	if got := len(v.NodeSet(bob)); got != 4 {
		t.Errorf("len(NodeSet(bob)) = %d, want 4", got)
	}
	if got := len(v.NodeSet(alice)); got != 3 {
		t.Errorf("len(NodeSet(alice)) = %d, want 3", got)
	}
}

func TestSetTokenNamespacesDisjoint(t *testing.T) {
	// A label token "X" and a property token "X" must hash differently.
	if hashToken('L', "X") == hashToken('P', "X") {
		t.Error("token namespaces collide")
	}
	if hashToken('S', "X") == hashToken('T', "X") {
		t.Error("source/target namespaces collide")
	}
}

func TestEdgeSetIncludesEndpoints(t *testing.T) {
	b := exampleBatch(t)
	v := New(b, DefaultConfig())
	for i := range b.Edges {
		e := &b.Edges[i]
		set := v.EdgeSet(e)
		want := len(e.Props) + 1 // label token
		if len(e.SrcLabels) > 0 {
			want++
		}
		if len(e.DstLabels) > 0 {
			want++
		}
		if len(set) != want {
			t.Errorf("edge %d set size = %d, want %d", e.ID, len(set), want)
		}
	}
}

func TestBulkRenderAligned(t *testing.T) {
	b := exampleBatch(t)
	v := New(b, DefaultConfig())
	nv := v.NodeVectors(b)
	if len(nv) != len(b.Nodes) {
		t.Fatalf("NodeVectors len = %d, want %d", len(nv), len(b.Nodes))
	}
	ev := v.EdgeVectors(b)
	if len(ev) != len(b.Edges) {
		t.Fatalf("EdgeVectors len = %d, want %d", len(ev), len(b.Edges))
	}
	ns := v.NodeSets(b)
	es := v.EdgeSets(b)
	if len(ns) != len(b.Nodes) || len(es) != len(b.Edges) {
		t.Error("set renders misaligned")
	}
}

func TestEmptyBatch(t *testing.T) {
	v := New(&pg.Batch{}, DefaultConfig())
	if v.NodeDim() != v.Model().Dim() {
		t.Errorf("empty batch NodeDim = %d, want %d", v.NodeDim(), v.Model().Dim())
	}
	if v.LabelTokens() != 0 {
		t.Errorf("LabelTokens = %d, want 0", v.LabelTokens())
	}
}

func TestLabelWeightScalesEmbeddingBlock(t *testing.T) {
	b := exampleBatch(t)
	base := New(b, Config{LabelWeight: 1})
	heavy := New(b, Config{LabelWeight: 3})
	var bob *pg.NodeRecord
	for i := range b.Nodes {
		if pg.LabelSetKey(b.Nodes[i].Labels) == "Person" {
			bob = &b.Nodes[i]
		}
	}
	vBase, vHeavy := base.NodeVector(bob), heavy.NodeVector(bob)
	d := base.Model().Dim()
	for i := 0; i < d; i++ {
		if vHeavy[i] != 3*vBase[i] {
			t.Fatalf("embedding slot %d: %v != 3x%v", i, vHeavy[i], vBase[i])
		}
	}
	// Property bits are untouched.
	for i := d; i < len(vBase); i++ {
		if vHeavy[i] != vBase[i] {
			t.Fatalf("property slot %d scaled unexpectedly", i)
		}
	}
}

func TestLabelWeightDefaultApplied(t *testing.T) {
	b := exampleBatch(t)
	zero := New(b, Config{})
	explicit := New(b, Config{LabelWeight: DefaultLabelWeight})
	v1 := zero.NodeVector(&b.Nodes[0])
	v2 := explicit.NodeVector(&b.Nodes[0])
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("zero LabelWeight should mean the default")
		}
	}
}
