package vectorize

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"pghive/internal/pg"
)

// materialize reconstructs element i's dense hybrid vector from its compact
// record: prefix floats then 0/1 suffix.
func materialize(e *Encoding, i int) []float64 {
	v := make([]float64, e.Dim)
	r := e.Records[i]
	copy(v, e.Prefixes[r.TokenID])
	for _, k := range r.Props {
		v[e.PrefixDim+int(k)] = 1
	}
	return v
}

// randomBatch draws a batch over a property vocabulary of size keys with
// ~nnz presence per key and a small pool of (multi-)label sets, including
// unlabeled elements — the §4.1 shapes the factored encoding must cover.
func randomBatch(rng *rand.Rand, nodes, edges, keys int, nnz float64) *pg.Batch {
	labelPool := [][]string{nil, {"A"}, {"B"}, {"A", "B"}, {"C"}, {"Long", "Set", "C"}}
	props := func() pg.Properties {
		p := pg.Properties{}
		for k := 0; k < keys; k++ {
			if rng.Float64() < nnz {
				p[fmt.Sprintf("k%03d", k)] = pg.Int(int64(k))
			}
		}
		return p
	}
	b := &pg.Batch{}
	for i := 0; i < nodes; i++ {
		b.Nodes = append(b.Nodes, pg.NodeRecord{
			Labels: labelPool[rng.Intn(len(labelPool))],
			Props:  props(),
		})
	}
	for i := 0; i < edges; i++ {
		b.Edges = append(b.Edges, pg.EdgeRecord{
			Labels:    labelPool[rng.Intn(len(labelPool))],
			SrcLabels: labelPool[rng.Intn(len(labelPool))],
			DstLabels: labelPool[rng.Intn(len(labelPool))],
			Props:     props(),
		})
	}
	return b
}

// TestEncodingMatchesDenseVectors: for random batches over vocabularies up
// to K=512, the compact records reconstruct exactly the vectors
// NodeVector/EdgeVector render — same floats, same suffix bits — and the
// property indexes arrive sorted ascending (the dense dot loop's visit
// order, which the factored kernel's bit-identity depends on).
func TestEncodingMatchesDenseVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		keys int
		nnz  float64
	}{{8, 0.5}, {64, 0.1}, {512, 0.01}} {
		t.Run(fmt.Sprintf("K=%d", tc.keys), func(t *testing.T) {
			b := randomBatch(rng, 60, 60, tc.keys, tc.nnz)
			v := New(b, DefaultConfig())
			for kind, enc := range map[string]*Encoding{
				"nodes": v.NodeEncoding(b),
				"edges": v.EdgeEncoding(b),
			} {
				var n int
				var dense func(i int) []float64
				if kind == "nodes" {
					n = len(b.Nodes)
					dense = func(i int) []float64 { return v.NodeVector(&b.Nodes[i]) }
				} else {
					n = len(b.Edges)
					dense = func(i int) []float64 { return v.EdgeVector(&b.Edges[i]) }
				}
				if len(enc.Records) != n {
					t.Fatalf("%s: %d records for %d elements", kind, len(enc.Records), n)
				}
				for i := 0; i < n; i++ {
					want := dense(i)
					got := materialize(enc, i)
					if len(want) != len(got) {
						t.Fatalf("%s[%d]: dim %d vs %d", kind, i, len(got), len(want))
					}
					for d := range want {
						if want[d] != got[d] {
							t.Fatalf("%s[%d] dim %d: %v vs dense %v", kind, i, d, got[d], want[d])
						}
					}
					if !sort.SliceIsSorted(enc.Records[i].Props, func(a, b int) bool {
						return enc.Records[i].Props[a] < enc.Records[i].Props[b]
					}) {
						t.Fatalf("%s[%d]: property indexes not ascending: %v", kind, i, enc.Records[i].Props)
					}
				}
			}
		})
	}
}

// TestEncodingSetsMatchDenseSets: AppendSet yields the same token multiset
// as NodeSet/EdgeSet (order-insensitive — MinHash minima ignore order).
func TestEncodingSetsMatchDenseSets(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := randomBatch(rng, 80, 80, 32, 0.3)
	v := New(b, DefaultConfig())

	sorted := func(s []uint64) []uint64 {
		out := append([]uint64(nil), s...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	check := func(kind string, enc *Encoding, n int, dense func(i int) []uint64) {
		for i := 0; i < n; i++ {
			want := sorted(dense(i))
			got := sorted(enc.AppendSet(nil, i))
			if len(want) != len(got) {
				t.Fatalf("%s[%d]: set size %d vs dense %d", kind, i, len(got), len(want))
			}
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("%s[%d]: token multiset diverges at %d: %v vs %v", kind, i, j, got, want)
				}
			}
		}
	}
	check("nodes", v.NodeEncoding(b), len(b.Nodes), func(i int) []uint64 { return v.NodeSet(&b.Nodes[i]) })
	check("edges", v.EdgeEncoding(b), len(b.Edges), func(i int) []uint64 { return v.EdgeSet(&b.Edges[i]) })
}

// TestDistinctRecords: dedup groups exactly the elements with equal
// (prefix, property-set) records, representatives come in first-appearance
// order, and two distinct records never share an id.
func TestDistinctRecords(t *testing.T) {
	b := &pg.Batch{Nodes: []pg.NodeRecord{
		{Labels: []string{"A"}, Props: pg.Properties{"x": pg.Int(1)}},
		{Labels: []string{"B"}, Props: pg.Properties{"x": pg.Int(1)}},
		{Labels: []string{"A"}, Props: pg.Properties{"x": pg.Int(2)}}, // same record as 0
		{Labels: []string{"A"}, Props: pg.Properties{"y": pg.Int(1)}},
		{Labels: []string{"A"}, Props: pg.Properties{"x": pg.Int(1), "y": pg.Int(1)}},
		{Labels: nil, Props: pg.Properties{"x": pg.Int(1)}},
	}}
	v := New(b, DefaultConfig())
	enc := v.NodeEncoding(b)
	recID, reps := enc.DistinctRecords()
	if len(recID) != len(b.Nodes) {
		t.Fatalf("recID covers %d elements, want %d", len(recID), len(b.Nodes))
	}
	if want := []int{0, 1, 0, 2, 3, 4}; !equalInts(recID, want) {
		t.Fatalf("recID = %v, want %v", recID, want)
	}
	if want := []int{0, 1, 3, 4, 5}; !equalInts(reps, want) {
		t.Fatalf("reps = %v, want %v", reps, want)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEncodingPrefixSharing: node prefixes alias the session's weighted
// memo (no per-element copies), and edges observe one prefix per distinct
// label triple.
func TestEncodingPrefixSharing(t *testing.T) {
	b := &pg.Batch{}
	for i := 0; i < 10; i++ {
		b.Nodes = append(b.Nodes, pg.NodeRecord{Labels: []string{"P"}, Props: pg.Properties{"a": pg.Int(1)}})
		b.Edges = append(b.Edges, pg.EdgeRecord{
			Labels: []string{"E"}, SrcLabels: []string{"P"}, DstLabels: []string{"P"},
		})
	}
	v := New(b, DefaultConfig())
	ne := v.NodeEncoding(b)
	if len(ne.Prefixes) != 1 {
		t.Fatalf("10 identically-labeled nodes produced %d prefixes, want 1", len(ne.Prefixes))
	}
	ee := v.EdgeEncoding(b)
	if len(ee.Prefixes) != 1 {
		t.Fatalf("10 identical-triple edges produced %d prefixes, want 1", len(ee.Prefixes))
	}
	if got, want := len(ee.Prefixes[0]), ee.PrefixDim; got != want {
		t.Fatalf("edge prefix length %d, want %d", got, want)
	}
	if len(ee.PrefixSets[0]) != 3 {
		t.Fatalf("edge prefix carries %d tokens, want 3 (L, S, T)", len(ee.PrefixSets[0]))
	}
}
