package vectorize

import (
	"fmt"
	"sort"

	"pghive/internal/embed"
	"pghive/internal/pg"
)

// Session checkpoint codec. The embedding session is the one piece of
// cross-batch preprocessing state whose exact contents matter for replaying
// a run: a label-set token keeps the vector it was assigned when first
// trained, so a resumed pipeline must restore the token → vector table
// verbatim (retraining would converge to different — equally valid, but not
// identical — embeddings). Sentences are also retained: they are the dedup
// set and the corpus for the adaptive-dimensionality retrain.
//
// The weighted (labelWeight-scaled) memo is derived state and is rebuilt on
// restore rather than serialized.

// Codec bounds for untrusted counts.
const (
	maxTokens = 1 << 24
	maxDim    = 1 << 12
)

// WriteState encodes the session's cross-batch state onto a wire stream.
func (s *Session) WriteState(w *pg.WireWriter) error {
	tokens := make([]string, 0, len(s.sentences))
	for tok := range s.sentences {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)
	w.Uvarint(uint64(len(tokens)))
	for _, tok := range tokens {
		w.String(tok)
		sentence := s.sentences[tok]
		w.Uvarint(uint64(len(sentence)))
		for _, word := range sentence {
			w.String(word)
		}
	}

	if s.model == nil {
		w.Bool(false)
		return nil
	}
	w.Bool(true)
	w.Uvarint(uint64(s.model.Dim()))
	vocab := s.model.Tokens() // sorted
	w.Uvarint(uint64(len(vocab)))
	for _, tok := range vocab {
		w.String(tok)
		for _, x := range s.model.Vector(tok) {
			w.Float64(x)
		}
	}
	return nil
}

// ReadState restores the session's cross-batch state from a wire stream.
// The session must be freshly built with the same Config as the run that
// wrote the state.
func (s *Session) ReadState(r *pg.WireReader) error {
	tokenCount, err := r.Uvarint(maxTokens)
	if err != nil {
		return fmt.Errorf("vectorize: sentence count: %w", err)
	}
	s.sentences = make(map[string][]string, tokenCount)
	for i := uint64(0); i < tokenCount; i++ {
		tok, err := r.String()
		if err != nil {
			return fmt.Errorf("vectorize: sentence token %d: %w", i, err)
		}
		wordCount, err := r.Uvarint(maxTokens)
		if err != nil {
			return err
		}
		sentence := make([]string, wordCount)
		for j := range sentence {
			if sentence[j], err = r.String(); err != nil {
				return err
			}
		}
		s.sentences[tok] = sentence
	}

	hasModel, err := r.Bool()
	if err != nil {
		return err
	}
	s.model = nil
	s.weighted = map[string][]float64{}
	if !hasModel {
		return nil
	}
	dim, err := r.Uvarint(maxDim)
	if err != nil {
		return fmt.Errorf("vectorize: model dim: %w", err)
	}
	vocabCount, err := r.Uvarint(maxTokens)
	if err != nil {
		return fmt.Errorf("vectorize: vocab count: %w", err)
	}
	model := embed.NewModel(int(dim))
	for i := uint64(0); i < vocabCount; i++ {
		tok, err := r.String()
		if err != nil {
			return fmt.Errorf("vectorize: vocab token %d: %w", i, err)
		}
		vec := make([]float64, dim)
		for d := range vec {
			if vec[d], err = r.Float64(); err != nil {
				return err
			}
		}
		model.Set(tok, vec)
	}
	s.model = model
	s.weighted = make(map[string][]float64, vocabCount)
	for _, tok := range model.Tokens() {
		s.memoize(tok, model.Vector(tok))
	}
	return nil
}
