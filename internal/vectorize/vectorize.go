// Package vectorize turns batches of property-graph elements into the hybrid
// vector representation of PG-HIVE (§4.1): each node becomes a vector in
// R^{d+K} — a Word2Vec embedding of its (sorted, concatenated) label set
// followed by a binary property-presence vector over the batch's K distinct
// node property keys — and each edge becomes a vector in R^{3d+Q} with three
// embeddings (edge label, source labels, target labels) followed by its
// property indicator over the Q distinct edge property keys.
//
// It also produces the set representation consumed by MinHash LSH: hashed
// tokens for the label set, endpoints and property keys.
package vectorize

import (
	"hash/fnv"

	"pghive/internal/embed"
	"pghive/internal/pg"
)

// Config controls vectorization.
type Config struct {
	// Embedding configures the Word2Vec model trained on the batch's label
	// sentences.
	Embedding embed.Config
	// LabelWeight scales the embedding block(s) relative to the binary
	// property indicators. Labels are exact evidence while property
	// presence is noisy, so weighting the semantic part keeps
	// differently-labeled elements apart when property noise shrinks the
	// structural distance. 0 means the default of 2.
	LabelWeight float64
	// SemanticLabels trains the embedding on multi-label co-occurrence
	// (each label set contributes a sentence of its member labels plus its
	// set token), so overlapping label sets land nearby. The default
	// (false) keeps every distinct label set maximally separated — under
	// the paper's type model distinct label sets ARE distinct types, and
	// attraction between {AS} and {AS, Tag} merges types that must stay
	// apart (the IYP failure mode). Enable for integration scenarios where
	// overlapping sets should cluster.
	SemanticLabels bool
}

// DefaultLabelWeight is the default scale of the embedding block.
const DefaultLabelWeight = 2.0

// DefaultConfig returns the pipeline defaults.
func DefaultConfig() Config {
	return Config{Embedding: embed.DefaultConfig(), LabelWeight: DefaultLabelWeight}
}

// Vectorizer holds the per-batch vocabulary (property-key indexes) and the
// Word2Vec model, and renders element vectors. Algorithm 1 constructs one
// Vectorizer per batch (the preprocess step).
type Vectorizer struct {
	model       *embed.Model
	labelWeight float64

	nodeKeys    []string       // sorted distinct node property keys (K)
	nodeKeyPos  map[string]int // key -> offset in the binary block
	edgeKeys    []string       // sorted distinct edge property keys (Q)
	edgeKeyPos  map[string]int
	labelTokens int // distinct non-empty label-set tokens seen in the batch
}

// New scans the batch, trains the label embedding on the batch's
// co-occurrence sentences, and returns a ready Vectorizer.
func New(b *pg.Batch, cfg Config) *Vectorizer {
	v := &Vectorizer{
		nodeKeyPos:  map[string]int{},
		edgeKeyPos:  map[string]int{},
		labelWeight: cfg.LabelWeight,
	}
	if v.labelWeight <= 0 {
		v.labelWeight = DefaultLabelWeight
	}
	nodeKeySet := map[string]struct{}{}
	edgeKeySet := map[string]struct{}{}
	labelSet := map[string]struct{}{}

	// The Word2Vec corpus is the set of observed label sets (§4.1). By
	// default each distinct set contributes a single-token sentence — the
	// model assigns every set token a well-separated embedding, keeping
	// semantically different elements apart even when their structure
	// matches (distinct label sets are distinct types under the paper's
	// model). With SemanticLabels, sentences also carry the member labels,
	// so overlapping sets attract.
	sentences := map[string][]string{}
	observe := func(labels []string) {
		key := pg.LabelSetKey(labels)
		if key == "" {
			return
		}
		labelSet[key] = struct{}{}
		if _, seen := sentences[key]; seen {
			return
		}
		if !cfg.SemanticLabels || len(labels) == 1 {
			sentences[key] = []string{key}
			return
		}
		sentence := make([]string, 0, len(labels)+1)
		sentence = append(sentence, key)
		sentence = append(sentence, labels...)
		sentences[key] = sentence
	}
	for i := range b.Nodes {
		n := &b.Nodes[i]
		for k := range n.Props {
			nodeKeySet[k] = struct{}{}
		}
		observe(n.Labels)
	}
	for i := range b.Edges {
		e := &b.Edges[i]
		for k := range e.Props {
			edgeKeySet[k] = struct{}{}
		}
		observe(e.Labels)
		observe(e.SrcLabels)
		observe(e.DstLabels)
	}
	corpus := make([][]string, 0, len(sentences))
	for _, key := range sortedSlice(labelSet) {
		corpus = append(corpus, sentences[key])
	}

	v.nodeKeys = sortedSlice(nodeKeySet)
	for i, k := range v.nodeKeys {
		v.nodeKeyPos[k] = i
	}
	v.edgeKeys = sortedSlice(edgeKeySet)
	for i, k := range v.edgeKeys {
		v.edgeKeyPos[k] = i
	}
	v.labelTokens = len(labelSet)
	if cfg.Embedding.Dim <= 0 {
		cfg.Embedding.Dim = adaptiveDim(v.labelTokens)
	}
	v.model = embed.Train(corpus, cfg.Embedding)
	return v
}

// adaptiveDim picks the embedding dimensionality from the label-token
// vocabulary: many distinct label sets need more room for near-orthogonal
// embeddings, or type separation degrades (at 86 types in 16 dimensions the
// closest token pairs crowd together and ELSH mixes their clusters).
func adaptiveDim(labelTokens int) int {
	switch {
	case labelTokens <= 24:
		return 16
	case labelTokens <= 96:
		return 32
	default:
		return 48
	}
}

func sortedSlice(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	// Insertion sort keeps this dependency-free; key sets are small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Model exposes the trained label embedding.
func (v *Vectorizer) Model() *embed.Model { return v.model }

// NodeDim returns d + K, the node vector dimensionality.
func (v *Vectorizer) NodeDim() int { return v.model.Dim() + len(v.nodeKeys) }

// EdgeDim returns 3d + Q, the edge vector dimensionality.
func (v *Vectorizer) EdgeDim() int { return 3*v.model.Dim() + len(v.edgeKeys) }

// NodePropertyKeys returns the batch's distinct node property keys in sorted
// order (the binary block layout).
func (v *Vectorizer) NodePropertyKeys() []string { return v.nodeKeys }

// EdgePropertyKeys returns the batch's distinct edge property keys.
func (v *Vectorizer) EdgePropertyKeys() []string { return v.edgeKeys }

// LabelTokens returns the number of distinct non-empty label-set tokens
// observed, the L used by adaptive LSH parameterization (§4.2).
func (v *Vectorizer) LabelTokens() int { return v.labelTokens }

// NodeVector renders one node record as f_v ∈ R^{d+K}: the label embedding
// (zero vector when unlabeled) concatenated with the property indicator.
func (v *Vectorizer) NodeVector(n *pg.NodeRecord) []float64 {
	d := v.model.Dim()
	out := make([]float64, v.NodeDim())
	v.copyEmbedding(out, pg.LabelSetKey(n.Labels))
	for k := range n.Props {
		if pos, ok := v.nodeKeyPos[k]; ok {
			out[d+pos] = 1
		}
	}
	return out
}

// copyEmbedding writes the weighted embedding of the label token into
// dst's first d slots.
func (v *Vectorizer) copyEmbedding(dst []float64, token string) {
	vec := v.model.Vector(token)
	for i, x := range vec {
		dst[i] = v.labelWeight * x
	}
}

// EdgeVector renders one edge record as f_e ∈ R^{3d+Q}: embeddings of the
// edge label, the source label set and the target label set, then the edge
// property indicator.
func (v *Vectorizer) EdgeVector(e *pg.EdgeRecord) []float64 {
	d := v.model.Dim()
	out := make([]float64, v.EdgeDim())
	v.copyEmbedding(out, pg.LabelSetKey(e.Labels))
	v.copyEmbedding(out[d:], pg.LabelSetKey(e.SrcLabels))
	v.copyEmbedding(out[2*d:], pg.LabelSetKey(e.DstLabels))
	for k := range e.Props {
		if pos, ok := v.edgeKeyPos[k]; ok {
			out[3*d+pos] = 1
		}
	}
	return out
}

// NodeVectors renders all node records of the batch, aligned by index.
func (v *Vectorizer) NodeVectors(b *pg.Batch) [][]float64 {
	out := make([][]float64, len(b.Nodes))
	for i := range b.Nodes {
		out[i] = v.NodeVector(&b.Nodes[i])
	}
	return out
}

// EdgeVectors renders all edge records of the batch, aligned by index.
func (v *Vectorizer) EdgeVectors(b *pg.Batch) [][]float64 {
	out := make([][]float64, len(b.Edges))
	for i := range b.Edges {
		out[i] = v.EdgeVector(&b.Edges[i])
	}
	return out
}

// Token hashing for the MinHash set representation. Prefixes keep the token
// namespaces (labels, endpoints, properties) disjoint.
func hashToken(prefix byte, s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte{prefix, ':'})
	h.Write([]byte(s))
	return h.Sum64()
}

// NodeSet renders a node as a set of hashed tokens: its label-set token (if
// labeled) plus one token per property key.
func (v *Vectorizer) NodeSet(n *pg.NodeRecord) []uint64 {
	out := make([]uint64, 0, len(n.Props)+1)
	if key := pg.LabelSetKey(n.Labels); key != "" {
		out = append(out, hashToken('L', key))
	}
	for k := range n.Props {
		out = append(out, hashToken('P', k))
	}
	return out
}

// EdgeSet renders an edge as a set of hashed tokens: label, source and
// target label-set tokens plus property-key tokens.
func (v *Vectorizer) EdgeSet(e *pg.EdgeRecord) []uint64 {
	out := make([]uint64, 0, len(e.Props)+3)
	if key := pg.LabelSetKey(e.Labels); key != "" {
		out = append(out, hashToken('L', key))
	}
	if key := pg.LabelSetKey(e.SrcLabels); key != "" {
		out = append(out, hashToken('S', key))
	}
	if key := pg.LabelSetKey(e.DstLabels); key != "" {
		out = append(out, hashToken('T', key))
	}
	for k := range e.Props {
		out = append(out, hashToken('P', k))
	}
	return out
}

// NodeSets renders all node records as token sets, aligned by index.
func (v *Vectorizer) NodeSets(b *pg.Batch) [][]uint64 {
	out := make([][]uint64, len(b.Nodes))
	for i := range b.Nodes {
		out[i] = v.NodeSet(&b.Nodes[i])
	}
	return out
}

// EdgeSets renders all edge records as token sets, aligned by index.
func (v *Vectorizer) EdgeSets(b *pg.Batch) [][]uint64 {
	out := make([][]uint64, len(b.Edges))
	for i := range b.Edges {
		out[i] = v.EdgeSet(&b.Edges[i])
	}
	return out
}
