// Package vectorize turns batches of property-graph elements into the hybrid
// vector representation of PG-HIVE (§4.1): each node becomes a vector in
// R^{d+K} — a Word2Vec embedding of its (sorted, concatenated) label set
// followed by a binary property-presence vector over the batch's K distinct
// node property keys — and each edge becomes a vector in R^{3d+Q} with three
// embeddings (edge label, source labels, target labels) followed by its
// property indicator over the Q distinct edge property keys.
//
// It also produces the set representation consumed by MinHash LSH: hashed
// tokens for the label set, endpoints and property keys.
//
// Embeddings are cached across batches by a Session: a label-set token keeps
// the vector it was assigned when first observed, and only the tokens a batch
// introduces are trained. The weighted embedding block (LabelWeight × vector)
// is memoized per token, so rendering a record copies a precomputed prefix
// instead of re-scaling the embedding for every element that shares a token.
package vectorize

import (
	"hash/fnv"
	"sort"

	"pghive/internal/embed"
	"pghive/internal/pg"
)

// Config controls vectorization.
type Config struct {
	// Embedding configures the Word2Vec model trained on the batch's label
	// sentences.
	Embedding embed.Config
	// LabelWeight scales the embedding block(s) relative to the binary
	// property indicators. Labels are exact evidence while property
	// presence is noisy, so weighting the semantic part keeps
	// differently-labeled elements apart when property noise shrinks the
	// structural distance. 0 means the default of 2.
	LabelWeight float64
	// SemanticLabels trains the embedding on multi-label co-occurrence
	// (each label set contributes a sentence of its member labels plus its
	// set token), so overlapping label sets land nearby. The default
	// (false) keeps every distinct label set maximally separated — under
	// the paper's type model distinct label sets ARE distinct types, and
	// attraction between {AS} and {AS, Tag} merges types that must stay
	// apart (the IYP failure mode). Enable for integration scenarios where
	// overlapping sets should cluster.
	SemanticLabels bool
}

// DefaultLabelWeight is the default scale of the embedding block.
const DefaultLabelWeight = 2.0

// DefaultConfig returns the pipeline defaults.
func DefaultConfig() Config {
	return Config{Embedding: embed.DefaultConfig(), LabelWeight: DefaultLabelWeight}
}

// Session carries the label-embedding state of an incremental discovery run
// across batches. The first batch trains a Word2Vec model over its label-set
// sentences exactly as a one-shot run would; each subsequent batch reuses the
// cached vectors of already-seen tokens and trains only on the sentences its
// new tokens introduce. When the adaptive embedding dimensionality outgrows
// the current model (the vocabulary crossed an adaptiveDim threshold), the
// whole corpus is retrained at the new dimensionality — the explicit
// invalidation path.
//
// A Session is not safe for concurrent use: Vectorize calls must be
// serialized in batch order (the cache is order-dependent). The Vectorizers
// it returns are immutable snapshots and may be used concurrently with later
// Vectorize calls — this is what lets the overlapped execution engine
// cluster batch i while batch i+1 is being vectorized.
type Session struct {
	labelWeight float64
	semantic    bool
	adaptive    bool         // Embedding.Dim was 0: pick dim from vocab size
	embCfg      embed.Config // training hyperparameters; Dim set per round
	model       *embed.Model // combined embedding table, grows across batches
	// sentences maps every label-set token ever observed to its training
	// sentence; it is both the dedup set and the retained corpus for the
	// dim-invalidation retrain.
	sentences map[string][]string
	// weighted memoizes labelWeight × vector per token. Entry slices are
	// never mutated after insertion; invalidation replaces the whole map.
	weighted map[string][]float64
	// stats counts cache behaviour across the session's lifetime. Telemetry
	// only — never persisted in checkpoints (a resumed run restarts at
	// zero) and never consulted by the pipeline.
	stats SessionStats
}

// SessionStats counts the embedding session's cross-batch cache behaviour.
// Hits and misses are per batch per distinct label-set token: a token a
// batch needs that was trained by an earlier batch is a reuse, a token the
// batch introduces is a training.
type SessionStats struct {
	// TokensReused counts tokens served from the cross-batch cache.
	TokensReused uint64
	// TokensTrained counts tokens newly trained.
	TokensTrained uint64
	// Retrains counts full-corpus retrains forced by adaptive embedding
	// dimensionality growth (the explicit invalidation path).
	Retrains uint64
}

// Stats returns the session's cumulative cache counters. Like Vectorize,
// it must be serialized with other Session calls.
func (s *Session) Stats() SessionStats { return s.stats }

// NewSession starts an embedding session for one discovery run.
func NewSession(cfg Config) *Session {
	s := &Session{
		labelWeight: cfg.LabelWeight,
		semantic:    cfg.SemanticLabels,
		adaptive:    cfg.Embedding.Dim <= 0,
		embCfg:      cfg.Embedding,
		sentences:   map[string][]string{},
		weighted:    map[string][]float64{},
	}
	if s.labelWeight <= 0 {
		s.labelWeight = DefaultLabelWeight
	}
	return s
}

// New scans the batch, trains the label embedding, and returns a ready
// Vectorizer — a one-shot Session for callers without cross-batch state.
func New(b *pg.Batch, cfg Config) *Vectorizer {
	return NewSession(cfg).Vectorize(b)
}

// Vectorize scans the batch (property-key vocabulary, label-set tokens),
// trains the embedding on the tokens this batch introduces, and returns a
// Vectorizer rendering against an immutable snapshot of the session's
// embedding table.
func (s *Session) Vectorize(b *pg.Batch) *Vectorizer {
	nodeKeySet := map[string]struct{}{}
	edgeKeySet := map[string]struct{}{}
	batchTokens := map[string]struct{}{}
	var newTokens []string

	// The Word2Vec corpus is the set of observed label sets (§4.1). By
	// default each distinct set contributes a single-token sentence — the
	// model assigns every set token a well-separated embedding, keeping
	// semantically different elements apart even when their structure
	// matches (distinct label sets are distinct types under the paper's
	// model). With SemanticLabels, sentences also carry the member labels,
	// so overlapping sets attract.
	observe := func(labels []string) {
		key := pg.LabelSetKey(labels)
		if key == "" {
			return
		}
		batchTokens[key] = struct{}{}
		if _, seen := s.sentences[key]; seen {
			return
		}
		if !s.semantic || len(labels) == 1 {
			s.sentences[key] = []string{key}
		} else {
			sentence := make([]string, 0, len(labels)+1)
			sentence = append(sentence, key)
			sentence = append(sentence, labels...)
			s.sentences[key] = sentence
		}
		newTokens = append(newTokens, key)
	}
	for i := range b.Nodes {
		n := &b.Nodes[i]
		for k := range n.Props {
			nodeKeySet[k] = struct{}{}
		}
		observe(n.Labels)
	}
	for i := range b.Edges {
		e := &b.Edges[i]
		for k := range e.Props {
			edgeKeySet[k] = struct{}{}
		}
		observe(e.Labels)
		observe(e.SrcLabels)
		observe(e.DstLabels)
	}

	s.train(newTokens)
	s.stats.TokensTrained += uint64(len(newTokens))
	s.stats.TokensReused += uint64(len(batchTokens) - len(newTokens))

	v := &Vectorizer{
		model:       s.model,
		dim:         s.model.Dim(),
		labelWeight: s.labelWeight,
		labelTokens: len(batchTokens),
		nodeKeys:    sortedSlice(nodeKeySet),
		edgeKeys:    sortedSlice(edgeKeySet),
	}
	v.nodeKeyPos = make(map[string]int, len(v.nodeKeys))
	for i, k := range v.nodeKeys {
		v.nodeKeyPos[k] = i
	}
	v.edgeKeyPos = make(map[string]int, len(v.edgeKeys))
	for i, k := range v.edgeKeys {
		v.edgeKeyPos[k] = i
	}
	// Snapshot the weighted table so this Vectorizer stays safe to read
	// while later Vectorize calls insert new tokens.
	v.weighted = make(map[string][]float64, len(s.weighted))
	for k, w := range s.weighted {
		v.weighted[k] = w
	}
	return v
}

// train brings the session's embedding table up to date with the given new
// tokens (sorted before training so the run is deterministic in batch
// order).
func (s *Session) train(newTokens []string) {
	dim := s.embCfg.Dim
	if s.adaptive {
		dim = adaptiveDim(len(s.sentences))
	}
	if s.model == nil || s.model.Dim() != dim {
		if s.model != nil {
			// The first batch's full training is expected; only dim-growth
			// invalidations count as retrains.
			s.stats.Retrains++
		}
		s.retrainAll(dim)
		return
	}
	if len(newTokens) == 0 {
		return
	}
	sort.Strings(newTokens)
	corpus := make([][]string, 0, len(newTokens))
	for _, tok := range newTokens {
		corpus = append(corpus, s.sentences[tok])
	}
	cfg := s.embCfg
	cfg.Dim = dim
	sub := embed.Train(corpus, cfg)
	for _, tok := range newTokens {
		s.adopt(tok, sub.Vector(tok))
	}
}

// retrainAll rebuilds the whole embedding table at the given dimensionality
// from every sentence seen so far — the invalidation path taken on the first
// batch and whenever the adaptive dim changes.
func (s *Session) retrainAll(dim int) {
	tokens := make([]string, 0, len(s.sentences))
	for tok := range s.sentences {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)
	corpus := make([][]string, 0, len(tokens))
	for _, tok := range tokens {
		corpus = append(corpus, s.sentences[tok])
	}
	cfg := s.embCfg
	cfg.Dim = dim
	s.model = embed.Train(corpus, cfg)
	s.weighted = make(map[string][]float64, len(tokens))
	for _, tok := range tokens {
		s.memoize(tok, s.model.Vector(tok))
	}
}

// adopt installs a newly trained token into the combined model and the
// weighted memo.
func (s *Session) adopt(token string, vec []float64) {
	s.model.Set(token, vec)
	s.memoize(token, vec)
}

// memoize stores the labelWeight-scaled copy of the token's vector. The
// scaling happens once per token instead of once per record.
func (s *Session) memoize(token string, vec []float64) {
	w := make([]float64, len(vec))
	for i, x := range vec {
		w[i] = s.labelWeight * x
	}
	s.weighted[token] = w
}

// adaptiveDim picks the embedding dimensionality from the label-token
// vocabulary: many distinct label sets need more room for near-orthogonal
// embeddings, or type separation degrades (at 86 types in 16 dimensions the
// closest token pairs crowd together and ELSH mixes their clusters).
func adaptiveDim(labelTokens int) int {
	switch {
	case labelTokens <= 24:
		return 16
	case labelTokens <= 96:
		return 32
	default:
		return 48
	}
}

func sortedSlice(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Vectorizer renders one batch's element vectors: it holds the batch's
// property-key layout and an immutable snapshot of the session's embedding
// table. Algorithm 1 constructs one Vectorizer per batch (the preprocess
// step). All methods except Model are safe for concurrent use.
type Vectorizer struct {
	model       *embed.Model
	dim         int
	weighted    map[string][]float64
	labelWeight float64

	nodeKeys    []string       // sorted distinct node property keys (K)
	nodeKeyPos  map[string]int // key -> offset in the binary block
	edgeKeys    []string       // sorted distinct edge property keys (Q)
	edgeKeyPos  map[string]int
	labelTokens int // distinct non-empty label-set tokens seen in the batch
}

// Model exposes the session's combined label embedding as of this batch. It
// is a live reference: do not call its methods concurrently with a later
// Session.Vectorize.
func (v *Vectorizer) Model() *embed.Model { return v.model }

// NodeDim returns d + K, the node vector dimensionality.
func (v *Vectorizer) NodeDim() int { return v.dim + len(v.nodeKeys) }

// EdgeDim returns 3d + Q, the edge vector dimensionality.
func (v *Vectorizer) EdgeDim() int { return 3*v.dim + len(v.edgeKeys) }

// NodePropertyKeys returns the batch's distinct node property keys in sorted
// order (the binary block layout).
func (v *Vectorizer) NodePropertyKeys() []string { return v.nodeKeys }

// EdgePropertyKeys returns the batch's distinct edge property keys.
func (v *Vectorizer) EdgePropertyKeys() []string { return v.edgeKeys }

// LabelTokens returns the number of distinct non-empty label-set tokens
// observed, the L used by adaptive LSH parameterization (§4.2).
func (v *Vectorizer) LabelTokens() int { return v.labelTokens }

// NodeVector renders one node record as f_v ∈ R^{d+K}: the label embedding
// (zero vector when unlabeled) concatenated with the property indicator.
func (v *Vectorizer) NodeVector(n *pg.NodeRecord) []float64 {
	out := make([]float64, v.NodeDim())
	v.NodeVectorInto(n, out)
	return out
}

// NodeVectorInto renders the node into dst, which must have length
// NodeDim(). Every slot is written, so dst may be a recycled or arena-backed
// slice.
func (v *Vectorizer) NodeVectorInto(n *pg.NodeRecord, dst []float64) {
	v.copyEmbedding(dst[:v.dim], pg.LabelSetKey(n.Labels))
	ind := dst[v.dim:]
	clear(ind)
	for k := range n.Props {
		if pos, ok := v.nodeKeyPos[k]; ok {
			ind[pos] = 1
		}
	}
}

// copyEmbedding writes the weighted embedding of the label token into dst
// (sliced to exactly d slots), zeroing it for unknown or empty tokens.
func (v *Vectorizer) copyEmbedding(dst []float64, token string) {
	if w, ok := v.weighted[token]; ok {
		copy(dst, w)
		return
	}
	clear(dst)
}

// EdgeVector renders one edge record as f_e ∈ R^{3d+Q}: embeddings of the
// edge label, the source label set and the target label set, then the edge
// property indicator.
func (v *Vectorizer) EdgeVector(e *pg.EdgeRecord) []float64 {
	out := make([]float64, v.EdgeDim())
	v.EdgeVectorInto(e, out)
	return out
}

// EdgeVectorInto renders the edge into dst, which must have length
// EdgeDim(). Every slot is written, so dst may be a recycled or arena-backed
// slice.
func (v *Vectorizer) EdgeVectorInto(e *pg.EdgeRecord, dst []float64) {
	d := v.dim
	v.copyEmbedding(dst[:d], pg.LabelSetKey(e.Labels))
	v.copyEmbedding(dst[d:2*d], pg.LabelSetKey(e.SrcLabels))
	v.copyEmbedding(dst[2*d:3*d], pg.LabelSetKey(e.DstLabels))
	ind := dst[3*d:]
	clear(ind)
	for k := range e.Props {
		if pos, ok := v.edgeKeyPos[k]; ok {
			ind[pos] = 1
		}
	}
}

// NodeVectors renders all node records of the batch, aligned by index.
func (v *Vectorizer) NodeVectors(b *pg.Batch) [][]float64 {
	out := make([][]float64, len(b.Nodes))
	for i := range b.Nodes {
		out[i] = v.NodeVector(&b.Nodes[i])
	}
	return out
}

// EdgeVectors renders all edge records of the batch, aligned by index.
func (v *Vectorizer) EdgeVectors(b *pg.Batch) [][]float64 {
	out := make([][]float64, len(b.Edges))
	for i := range b.Edges {
		out[i] = v.EdgeVector(&b.Edges[i])
	}
	return out
}

// Token hashing for the MinHash set representation. Prefixes keep the token
// namespaces (labels, endpoints, properties) disjoint.
func hashToken(prefix byte, s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte{prefix, ':'})
	h.Write([]byte(s))
	return h.Sum64()
}

// NodeSet renders a node as a set of hashed tokens: its label-set token (if
// labeled) plus one token per property key.
func (v *Vectorizer) NodeSet(n *pg.NodeRecord) []uint64 {
	out := make([]uint64, 0, len(n.Props)+1)
	if key := pg.LabelSetKey(n.Labels); key != "" {
		out = append(out, hashToken('L', key))
	}
	for k := range n.Props {
		out = append(out, hashToken('P', k))
	}
	return out
}

// EdgeSet renders an edge as a set of hashed tokens: label, source and
// target label-set tokens plus property-key tokens.
func (v *Vectorizer) EdgeSet(e *pg.EdgeRecord) []uint64 {
	out := make([]uint64, 0, len(e.Props)+3)
	if key := pg.LabelSetKey(e.Labels); key != "" {
		out = append(out, hashToken('L', key))
	}
	if key := pg.LabelSetKey(e.SrcLabels); key != "" {
		out = append(out, hashToken('S', key))
	}
	if key := pg.LabelSetKey(e.DstLabels); key != "" {
		out = append(out, hashToken('T', key))
	}
	for k := range e.Props {
		out = append(out, hashToken('P', k))
	}
	return out
}

// NodeSets renders all node records as token sets, aligned by index.
func (v *Vectorizer) NodeSets(b *pg.Batch) [][]uint64 {
	out := make([][]uint64, len(b.Nodes))
	for i := range b.Nodes {
		out[i] = v.NodeSet(&b.Nodes[i])
	}
	return out
}

// EdgeSets renders all edge records as token sets, aligned by index.
func (v *Vectorizer) EdgeSets(b *pg.Batch) [][]uint64 {
	out := make([][]uint64, len(b.Edges))
	for i := range b.Edges {
		out[i] = v.EdgeSet(&b.Edges[i])
	}
	return out
}
