// Package schema models the property-graph schema PG-HIVE discovers: node
// and edge types with label sets, property statistics, endpoint
// connectivity and instance evidence (Definitions 3.2-3.4 of the paper),
// plus the monotone merge operations of §4.3/§4.6 (Lemmas 1 and 2: merging
// unions labels, properties and endpoints, never discarding information).
package schema

import (
	"fmt"
	"sort"
	"strings"

	"pghive/internal/pg"
)

// StringSet is a set of strings (labels or property keys).
type StringSet map[string]struct{}

// NewStringSet builds a set from the given elements.
func NewStringSet(elems ...string) StringSet {
	s := make(StringSet, len(elems))
	for _, e := range elems {
		s[e] = struct{}{}
	}
	return s
}

// Add inserts an element.
func (s StringSet) Add(e string) { s[e] = struct{}{} }

// AddAll inserts every element of other.
func (s StringSet) AddAll(other StringSet) {
	for e := range other {
		s[e] = struct{}{}
	}
}

// Has reports membership.
func (s StringSet) Has(e string) bool {
	_, ok := s[e]
	return ok
}

// Len returns the cardinality.
func (s StringSet) Len() int { return len(s) }

// Sorted returns the elements in sorted order.
func (s StringSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for e := range s {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Key returns the canonical "&"-joined sorted form (matching
// pg.LabelSetKey).
func (s StringSet) Key() string { return strings.Join(s.Sorted(), "&") }

// Clone returns a copy.
func (s StringSet) Clone() StringSet {
	c := make(StringSet, len(s))
	for e := range s {
		c[e] = struct{}{}
	}
	return c
}

// Jaccard returns |A∩B| / |A∪B|; two empty sets have similarity 1.
func Jaccard(a, b StringSet) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for e := range a {
		if b.Has(e) {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// PropStat accumulates evidence about one property key within one type:
// how many instances carry it (for MANDATORY/OPTIONAL inference), the
// observed value kinds under full scan and under sampling (for data-type
// inference and the Figure 8 sampling-error experiment), and value-level
// evidence for key constraints, enumerations and ranges.
type PropStat struct {
	// Count is the number of instances of the type carrying this key.
	Count int
	// Kinds counts every observed value's kind (full scan).
	Kinds map[pg.Kind]int
	// SampleKinds counts the kinds of sampled values only.
	SampleKinds map[pg.Kind]int
	// Values accumulates value-level evidence.
	Values *ValueStat
}

// NewPropStat returns an empty accumulator.
func NewPropStat() *PropStat {
	return &PropStat{
		Kinds:       map[pg.Kind]int{},
		SampleKinds: map[pg.Kind]int{},
		Values:      NewValueStat(),
	}
}

// Observe records one value occurrence; sampled marks it as part of the
// data-type sample.
func (p *PropStat) Observe(v pg.Value, sampled bool) {
	p.Count++
	p.Kinds[v.Kind()]++
	if sampled {
		p.SampleKinds[v.Kind()]++
	}
	p.Values.Observe(v)
}

// Merge folds other into p.
func (p *PropStat) Merge(other *PropStat) {
	p.Count += other.Count
	for k, c := range other.Kinds {
		p.Kinds[k] += c
	}
	for k, c := range other.SampleKinds {
		p.SampleKinds[k] += c
	}
	p.Values.Merge(other.Values)
}

// SampleSize returns the number of sampled observations.
func (p *PropStat) SampleSize() int {
	n := 0
	for _, c := range p.SampleKinds {
		n += c
	}
	return n
}

// ElementKind distinguishes node types from edge types.
type ElementKind uint8

// Element kinds.
const (
	NodeKind ElementKind = iota
	EdgeKind
)

// Type is a discovered (candidate or merged) node or edge type: the cluster
// representative of §4.2 plus the accumulated evidence the post-processing
// steps need. For node types SrcLabels/DstLabels/degree maps are unused.
type Type struct {
	Kind ElementKind
	// Labels is the union of all labels observed on the type's instances
	// (the representative's L).
	Labels StringSet
	// Props maps each observed property key to its accumulated statistics
	// (the representative's K plus evidence).
	Props map[string]*PropStat
	// Instances is the number of elements assigned to this type.
	Instances int
	// Abstract marks an unlabeled type kept as ABSTRACT (PG-Schema) after
	// the merging step failed to attach it to a labeled type.
	Abstract bool

	// SrcLabels and DstLabels are, for edge types, the unions of labels
	// observed on source and target endpoints (the representative's R).
	SrcLabels StringSet
	DstLabels StringSet

	// OutDeg and InDeg count, per endpoint node, how many edges of this
	// type leave/enter it — the evidence for cardinality inference (§4.4).
	OutDeg map[pg.ID]int
	InDeg  map[pg.ID]int

	// Members records the element IDs assigned to the type when member
	// tracking is enabled (used by the evaluation harness).
	Members []pg.ID
}

// NewType returns an empty type of the given kind.
func NewType(kind ElementKind) *Type {
	t := &Type{
		Kind:   kind,
		Labels: StringSet{},
		Props:  map[string]*PropStat{},
	}
	if kind == EdgeKind {
		t.SrcLabels = StringSet{}
		t.DstLabels = StringSet{}
		t.OutDeg = map[pg.ID]int{}
		t.InDeg = map[pg.ID]int{}
	}
	return t
}

// LabelKey returns the canonical key of the type's label set ("" when
// unlabeled).
func (t *Type) LabelKey() string { return t.Labels.Key() }

// Labeled reports whether the type carries at least one label.
func (t *Type) Labeled() bool { return len(t.Labels) > 0 }

// PropKeySet returns the property keys as a StringSet (the K used in the
// Jaccard merge test of Algorithm 2).
func (t *Type) PropKeySet() StringSet {
	s := make(StringSet, len(t.Props))
	for k := range t.Props {
		s[k] = struct{}{}
	}
	return s
}

// prop returns the accumulator for key, creating it on first use.
func (t *Type) prop(key string) *PropStat {
	p, ok := t.Props[key]
	if !ok {
		p = NewPropStat()
		t.Props[key] = p
	}
	return p
}

// ObserveNode folds one node record into the type. sampled reports, per
// property key, whether this occurrence joins the data-type sample.
func (t *Type) ObserveNode(n *pg.NodeRecord, sampled func(key string) bool, trackMembers bool) {
	if t.Kind != NodeKind {
		panic("schema: ObserveNode on edge type")
	}
	t.Instances++
	for _, l := range n.Labels {
		t.Labels.Add(l)
	}
	for k, v := range n.Props {
		t.prop(k).Observe(v, sampled(k))
	}
	if trackMembers {
		t.Members = append(t.Members, n.ID)
	}
}

// ObserveEdge folds one edge record into the type.
func (t *Type) ObserveEdge(e *pg.EdgeRecord, sampled func(key string) bool, trackMembers bool) {
	if t.Kind != EdgeKind {
		panic("schema: ObserveEdge on node type")
	}
	t.Instances++
	for _, l := range e.Labels {
		t.Labels.Add(l)
	}
	for _, l := range e.SrcLabels {
		t.SrcLabels.Add(l)
	}
	for _, l := range e.DstLabels {
		t.DstLabels.Add(l)
	}
	for k, v := range e.Props {
		t.prop(k).Observe(v, sampled(k))
	}
	t.OutDeg[e.Src]++
	t.InDeg[e.Dst]++
	if trackMembers {
		t.Members = append(t.Members, e.ID)
	}
}

// Merge folds other (of the same kind) into t, unioning labels, properties
// and endpoints and summing evidence. This is the operation of Lemmas 1 and
// 2: no label, property key or endpoint label is ever lost.
func (t *Type) Merge(other *Type) {
	if t.Kind != other.Kind {
		panic(fmt.Sprintf("schema: merging %v type into %v type", other.Kind, t.Kind))
	}
	t.Labels.AddAll(other.Labels)
	for k, p := range other.Props {
		t.prop(k).Merge(p)
	}
	t.Instances += other.Instances
	if t.Kind == EdgeKind {
		t.SrcLabels.AddAll(other.SrcLabels)
		t.DstLabels.AddAll(other.DstLabels)
		for id, c := range other.OutDeg {
			t.OutDeg[id] += c
		}
		for id, c := range other.InDeg {
			t.InDeg[id] += c
		}
	}
	t.Members = append(t.Members, other.Members...)
	// A merge with a labeled type rescues an abstract one.
	if t.Labeled() {
		t.Abstract = false
	}
}

// MaxDegrees returns the maximum out- and in-degree observed for an edge
// type.
func (t *Type) MaxDegrees() pg.DegreePair {
	var d pg.DegreePair
	for _, c := range t.OutDeg {
		if c > d.MaxOut {
			d.MaxOut = c
		}
	}
	for _, c := range t.InDeg {
		if c > d.MaxIn {
			d.MaxIn = c
		}
	}
	return d
}

// Schema is the evolving schema graph S_G: the node and edge types
// accumulated so far (Definition 3.4). Types are stored in discovery order.
type Schema struct {
	NodeTypes []*Type
	EdgeTypes []*Type
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{}
}

// Types returns the node or edge type list for the given kind.
func (s *Schema) Types(kind ElementKind) []*Type {
	if kind == NodeKind {
		return s.NodeTypes
	}
	return s.EdgeTypes
}

// Add appends a type of its kind.
func (s *Schema) Add(t *Type) {
	if t.Kind == NodeKind {
		s.NodeTypes = append(s.NodeTypes, t)
	} else {
		s.EdgeTypes = append(s.EdgeTypes, t)
	}
}

// FindByLabelKey returns the first type of the given kind whose label-set
// key equals key, or nil.
func (s *Schema) FindByLabelKey(kind ElementKind, key string) *Type {
	for _, t := range s.Types(kind) {
		if t.LabelKey() == key {
			return t
		}
	}
	return nil
}

// AllLabels returns the union of labels across all types of the kind.
func (s *Schema) AllLabels(kind ElementKind) StringSet {
	out := StringSet{}
	for _, t := range s.Types(kind) {
		out.AddAll(t.Labels)
	}
	return out
}

// AllPropertyKeys returns the union of property keys across all types of
// the kind.
func (s *Schema) AllPropertyKeys(kind ElementKind) StringSet {
	out := StringSet{}
	for _, t := range s.Types(kind) {
		for k := range t.Props {
			out.Add(k)
		}
	}
	return out
}

// Covers reports whether the schema has a type of the given kind whose
// labels include all of labels and whose property keys include all of keys
// — the type-completeness guarantee of §4.7.
func (s *Schema) Covers(kind ElementKind, labels []string, keys []string) bool {
	for _, t := range s.Types(kind) {
		ok := true
		for _, l := range labels {
			if !t.Labels.Has(l) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, k := range keys {
			if _, has := t.Props[k]; !has {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
