// Package schema models the property-graph schema PG-HIVE discovers: node
// and edge types with label sets, property statistics, endpoint
// connectivity and instance evidence (Definitions 3.2-3.4 of the paper),
// plus the monotone merge operations of §4.3/§4.6 (Lemmas 1 and 2: merging
// unions labels, properties and endpoints, never discarding information).
//
// Types store their evidence in interned form — sorted uint32 ID slices
// and flat tables backed by a per-pipeline Symtab — so the hot path never
// hashes strings or builds joined keys; accessors resolve IDs back to
// strings for inference, serialization and tests.
package schema

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pghive/internal/pg"
)

// StringSet is a set of strings (labels or property keys).
type StringSet map[string]struct{}

// NewStringSet builds a set from the given elements.
func NewStringSet(elems ...string) StringSet {
	s := make(StringSet, len(elems))
	for _, e := range elems {
		s[e] = struct{}{}
	}
	return s
}

// Add inserts an element.
func (s StringSet) Add(e string) { s[e] = struct{}{} }

// AddAll inserts every element of other.
func (s StringSet) AddAll(other StringSet) {
	for e := range other {
		s[e] = struct{}{}
	}
}

// Has reports membership.
func (s StringSet) Has(e string) bool {
	_, ok := s[e]
	return ok
}

// Len returns the cardinality.
func (s StringSet) Len() int { return len(s) }

// Sorted returns the elements in sorted order.
func (s StringSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for e := range s {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Key returns a collision-free canonical encoding of the set: each element
// in sorted order, length-prefixed ("1:a1:b"). Unlike a plain separator
// join, {"a&b"} and {"a","b"} encode differently. Display names use
// Type.LabelKey instead.
func (s StringSet) Key() string {
	sorted := s.Sorted()
	var sb strings.Builder
	for _, e := range sorted {
		sb.WriteString(strconv.Itoa(len(e)))
		sb.WriteByte(':')
		sb.WriteString(e)
	}
	return sb.String()
}

// Clone returns a copy.
func (s StringSet) Clone() StringSet {
	c := make(StringSet, len(s))
	for e := range s {
		c[e] = struct{}{}
	}
	return c
}

// Jaccard returns |A∩B| / |A∪B|; two empty sets have similarity 1.
func Jaccard(a, b StringSet) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for e := range a {
		if b.Has(e) {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// PropStat accumulates evidence about one property key within one type:
// how many instances carry it (for MANDATORY/OPTIONAL inference), the
// observed value kinds under full scan and under sampling (for data-type
// inference and the Figure 8 sampling-error experiment), and value-level
// evidence for key constraints, enumerations and ranges.
type PropStat struct {
	// Count is the number of instances of the type carrying this key.
	Count int
	// Kinds counts every observed value's kind (full scan).
	Kinds map[pg.Kind]int
	// SampleKinds counts the kinds of sampled values only.
	SampleKinds map[pg.Kind]int
	// Values accumulates value-level evidence.
	Values *ValueStat
}

// NewPropStat returns an empty accumulator with exact value evidence.
func NewPropStat() *PropStat {
	return newPropStatPol(nil)
}

// newPropStatPol returns an empty accumulator whose value evidence follows
// the given policy (nil = exact).
func newPropStatPol(pol *EvidencePolicy) *PropStat {
	return &PropStat{
		Kinds:       map[pg.Kind]int{},
		SampleKinds: map[pg.Kind]int{},
		Values:      newValueStatPol(pol),
	}
}

// Observe records one value occurrence; sampled marks it as part of the
// data-type sample.
func (p *PropStat) Observe(v pg.Value, sampled bool) {
	p.Count++
	p.Kinds[v.Kind()]++
	if sampled {
		p.SampleKinds[v.Kind()]++
	}
	p.Values.Observe(v)
}

// Merge folds other into p.
func (p *PropStat) Merge(other *PropStat) {
	p.Count += other.Count
	for k, c := range other.Kinds {
		p.Kinds[k] += c
	}
	for k, c := range other.SampleKinds {
		p.SampleKinds[k] += c
	}
	p.Values.Merge(other.Values)
}

// SampleSize returns the number of sampled observations.
func (p *PropStat) SampleSize() int {
	n := 0
	for _, c := range p.SampleKinds {
		n += c
	}
	return n
}

// ElementKind distinguishes node types from edge types.
type ElementKind uint8

// Element kinds.
const (
	NodeKind ElementKind = iota
	EdgeKind
)

// SampleFunc decides, per property occurrence, whether the value joins the
// data-type sample. It receives the interned key ID and the key string (the
// string is already at hand in the record, so deciders can hash it without
// re-resolving).
type SampleFunc func(id uint32, key string) bool

// NeverSample is the SampleFunc that declines every occurrence.
func NeverSample(uint32, string) bool { return false }

// Type is a discovered (candidate or merged) node or edge type: the cluster
// representative of §4.2 plus the accumulated evidence the post-processing
// steps need. All evidence is interned against the type's Symtab; for node
// types the endpoint structures are unused.
type Type struct {
	Kind ElementKind
	// Instances is the number of elements assigned to this type.
	Instances int
	// Abstract marks an unlabeled type kept as ABSTRACT (PG-Schema) after
	// the merging step failed to attach it to a labeled type.
	Abstract bool
	// Members records the element IDs assigned to the type when member
	// tracking is enabled (used by the evaluation harness).
	Members []pg.ID

	tab *Symtab
	// labels is the union of all labels observed on the type's instances
	// (the representative's L), as sorted interned IDs.
	labels IDSet
	// props maps interned property keys to their accumulated statistics
	// (the representative's K plus evidence).
	props PropTable
	// srcLabels and dstLabels are, for edge types, the unions of labels
	// observed on source and target endpoints (the representative's R).
	srcLabels IDSet
	dstLabels IDSet
	// outDeg and inDeg count, per interned endpoint, how many edges of
	// this type leave/enter it — the evidence for cardinality inference
	// (§4.4).
	outDeg CounterTable
	inDeg  CounterTable
}

// NewType returns an empty type of the given kind, interning against tab.
func NewType(tab *Symtab, kind ElementKind) *Type {
	return &Type{Kind: kind, tab: tab}
}

// Tab returns the type's intern table.
func (t *Type) Tab() *Symtab { return t.tab }

// LabelKey returns the display key of the type's label set: the sorted
// labels joined with "&" ("" when unlabeled). It can conflate label sets
// whose elements contain "&" — type identity uses the interned label set
// (Schema.FindByLabelSet), this form only names types in rendered output.
func (t *Type) LabelKey() string { return strings.Join(t.LabelStrings(), "&") }

// Labeled reports whether the type carries at least one label.
func (t *Type) Labeled() bool { return len(t.labels) > 0 }

// LabelIDs returns the type's label set as sorted interned IDs. The slice
// aliases the type's state; callers must not modify it.
func (t *Type) LabelIDs() IDSet { return t.labels }

// LabelStrings returns the labels resolved and sorted lexically.
func (t *Type) LabelStrings() []string { return t.labels.Strings(t.tab) }

// Labels returns the labels as a freshly built StringSet.
func (t *Type) Labels() StringSet { return idSetStrings(t.labels, t.tab) }

// SrcLabels returns the source-endpoint labels as a freshly built
// StringSet.
func (t *Type) SrcLabels() StringSet { return idSetStrings(t.srcLabels, t.tab) }

// DstLabels returns the target-endpoint labels as a freshly built
// StringSet.
func (t *Type) DstLabels() StringSet { return idSetStrings(t.dstLabels, t.tab) }

// SrcLabelStrings returns the source-endpoint labels sorted lexically.
func (t *Type) SrcLabelStrings() []string { return t.srcLabels.Strings(t.tab) }

// DstLabelStrings returns the target-endpoint labels sorted lexically.
func (t *Type) DstLabelStrings() []string { return t.dstLabels.Strings(t.tab) }

func idSetStrings(s IDSet, tab *Symtab) StringSet {
	out := make(StringSet, len(s))
	for _, id := range s {
		out[tab.Str(id)] = struct{}{}
	}
	return out
}

// HasLabel reports whether the type carries the label.
func (t *Type) HasLabel(l string) bool {
	id, ok := t.tab.Lookup(l)
	return ok && t.labels.Contains(id)
}

// AddLabel inserts a label.
func (t *Type) AddLabel(l string) { t.labels.Insert(t.tab.Intern(l)) }

// AddSrcLabel inserts a source-endpoint label (edge types).
func (t *Type) AddSrcLabel(l string) { t.srcLabels.Insert(t.tab.Intern(l)) }

// AddDstLabel inserts a target-endpoint label (edge types).
func (t *Type) AddDstLabel(l string) { t.dstLabels.Insert(t.tab.Intern(l)) }

// NumProps returns the number of distinct property keys.
func (t *Type) NumProps() int { return t.props.Len() }

// Prop returns the accumulator for key, or nil when the type has no such
// property.
func (t *Type) Prop(key string) *PropStat {
	id, ok := t.tab.Lookup(key)
	if !ok {
		return nil
	}
	return t.props.Get(id)
}

// SetProp installs an accumulator for key (test/codec construction
// helper).
func (t *Type) SetProp(key string, p *PropStat) { t.props.put(t.tab.Intern(key), p) }

// EachProp calls f for every property key (in interned-ID order) with its
// accumulator.
func (t *Type) EachProp(f func(key string, p *PropStat)) {
	for i := 0; i < t.props.Len(); i++ {
		id, p := t.props.At(i)
		f(t.tab.Str(id), p)
	}
}

// PropKeyStrings returns the property keys sorted lexically.
func (t *Type) PropKeyStrings() []string { return t.props.ids.Strings(t.tab) }

// PropKeySet returns the property keys as a StringSet.
func (t *Type) PropKeySet() StringSet { return idSetStrings(t.props.ids, t.tab) }

// PropIDs returns the property-key IDs, sorted. The slice aliases the
// type's state; callers must not modify it.
func (t *Type) PropIDs() IDSet { return t.props.ids }

// Merge-key tags: MergeKeys distinguishes property keys from endpoint
// labels by tagging the interned ID's high word, mirroring the "\x00src:"
// namespacing of the string representation bijectively.
const (
	mergeTagSrc = uint64(1) << 32
	mergeTagDst = uint64(2) << 32
)

// MergeKeys returns the type's similarity fingerprint for the Jaccard
// merge test of Algorithm 2 as a sorted uint64 slice: property-key IDs,
// plus — for edge types — tagged source/target endpoint label IDs, so
// endpoint structure participates in edge similarity exactly as in the
// string form.
func (t *Type) MergeKeys() []uint64 {
	n := t.props.Len()
	if t.Kind == EdgeKind {
		n += len(t.srcLabels) + len(t.dstLabels)
	}
	out := make([]uint64, 0, n)
	for _, id := range t.props.ids {
		out = append(out, uint64(id))
	}
	if t.Kind == EdgeKind {
		// Tag groups ascend (0 < 1<<32 < 2<<32) and IDs ascend within each
		// group, so the concatenation is already sorted.
		for _, id := range t.srcLabels {
			out = append(out, mergeTagSrc|uint64(id))
		}
		for _, id := range t.dstLabels {
			out = append(out, mergeTagDst|uint64(id))
		}
	}
	return out
}

// AddOutDeg records n out-incidences for the endpoint (test/codec
// construction helper).
func (t *Type) AddOutDeg(ep pg.ID, n int) { t.outDeg.Add(t.tab.InternEp(ep), uint32(n)) }

// AddInDeg records n in-incidences for the endpoint.
func (t *Type) AddInDeg(ep pg.ID, n int) { t.inDeg.Add(t.tab.InternEp(ep), uint32(n)) }

// OutDistinct returns how many distinct source endpoints the type's edges
// were observed on (the out-participation evidence). In sketched mode it
// is an HLL estimate.
func (t *Type) OutDistinct() int {
	if t.outDeg.sketched {
		return t.outDeg.distinctSketched(t.tab.Evidence())
	}
	return t.outDeg.Distinct()
}

// InDistinct returns how many distinct target endpoints the type's edges
// were observed on.
func (t *Type) InDistinct() int {
	if t.inDeg.sketched {
		return t.inDeg.distinctSketched(t.tab.Evidence())
	}
	return t.inDeg.Distinct()
}

// ObserveNode folds one node record into the type. sampled reports, per
// property key, whether this occurrence joins the data-type sample.
func (t *Type) ObserveNode(n *pg.NodeRecord, sampled SampleFunc, trackMembers bool) {
	if t.Kind != NodeKind {
		panic("schema: ObserveNode on edge type")
	}
	t.Instances++
	for _, l := range n.Labels {
		t.labels.Insert(t.tab.Intern(l))
	}
	pol := t.tab.Evidence()
	for k, v := range n.Props {
		id := t.tab.Intern(k)
		t.props.getOrCreatePol(id, pol).Observe(v, sampled(id, k))
	}
	if trackMembers {
		t.Members = append(t.Members, n.ID)
	}
}

// ObserveEdge folds one edge record into the type.
func (t *Type) ObserveEdge(e *pg.EdgeRecord, sampled SampleFunc, trackMembers bool) {
	if t.Kind != EdgeKind {
		panic("schema: ObserveEdge on node type")
	}
	t.Instances++
	for _, l := range e.Labels {
		t.labels.Insert(t.tab.Intern(l))
	}
	for _, l := range e.SrcLabels {
		t.srcLabels.Insert(t.tab.Intern(l))
	}
	for _, l := range e.DstLabels {
		t.dstLabels.Insert(t.tab.Intern(l))
	}
	pol := t.tab.Evidence()
	for k, v := range e.Props {
		id := t.tab.Intern(k)
		t.props.getOrCreatePol(id, pol).Observe(v, sampled(id, k))
	}
	if pol != nil && pol.SketchDegrees {
		// Sketched degrees are keyed by the raw global endpoint ID —
		// skipping InternEp keeps the symtab's endpoint table (the
		// dominant retained structure on edge-heavy streams) empty.
		t.outDeg.ObserveKey(uint64(e.Src))
		t.inDeg.ObserveKey(uint64(e.Dst))
	} else {
		t.outDeg.Inc(t.tab.InternEp(e.Src))
		t.inDeg.Inc(t.tab.InternEp(e.Dst))
	}
	if trackMembers {
		t.Members = append(t.Members, e.ID)
	}
}

// Merge folds other (of the same kind) into t, unioning labels, properties
// and endpoints and summing evidence. This is the operation of Lemmas 1 and
// 2: no label, property key or endpoint label is ever lost. Discovery only
// ever merges types with equal or empty label sets, which is what keeps
// Schema's label index valid (see Schema.Add).
//
// When other was interned against a different Symtab (a partial schema from
// another discovery shard), its IDs are translated into t's table first —
// the same-table fast path is the common case and pays nothing for this.
// Set DebugSameTab to restore the old panic and catch cross-table merges
// that should have gone through MergeSchemas.
func (t *Type) Merge(other *Type) {
	if t.Kind != other.Kind {
		panic(fmt.Sprintf("schema: merging %v type into %v type", other.Kind, t.Kind))
	}
	if t.tab != other.tab {
		if DebugSameTab {
			panic("schema: merging types from different intern tables")
		}
		t.MergeRemapped(other, NewRemap(other.tab, t.tab))
		return
	}
	t.labels.Union(other.labels)
	pol := t.tab.Evidence()
	for i := 0; i < other.props.Len(); i++ {
		id, p := other.props.At(i)
		t.props.getOrCreatePol(id, pol).Merge(p)
	}
	t.Instances += other.Instances
	if t.Kind == EdgeKind {
		t.srcLabels.Union(other.srcLabels)
		t.dstLabels.Union(other.dstLabels)
		t.outDeg.mergeEvidence(&other.outDeg, nil, t.tab, pol)
		t.inDeg.mergeEvidence(&other.inDeg, nil, t.tab, pol)
	}
	t.Members = append(t.Members, other.Members...)
	// A merge with a labeled type rescues an abstract one.
	if t.Labeled() {
		t.Abstract = false
	}
}

// MaxDegrees returns the maximum out- and in-degree observed for an edge
// type (a sketch-estimated upper bound in sketched mode).
func (t *Type) MaxDegrees() pg.DegreePair {
	pol := t.tab.Evidence()
	out, in := 0, 0
	if t.outDeg.sketched {
		out = t.outDeg.maxSketched(pol)
	} else {
		out = t.outDeg.Max()
	}
	if t.inDeg.sketched {
		in = t.inDeg.maxSketched(pol)
	} else {
		in = t.inDeg.Max()
	}
	return pg.DegreePair{MaxOut: out, MaxIn: in}
}

// Schema is the evolving schema graph S_G: the node and edge types
// accumulated so far (Definition 3.4). Types are stored in discovery
// order; a hashed ID-tuple index resolves label-set lookups without
// building string keys.
type Schema struct {
	// Tab is the intern table every type in the schema shares.
	Tab       *Symtab
	NodeTypes []*Type
	EdgeTypes []*Type

	// byLabels indexes labeled types per kind by the 64-bit hash of their
	// label-ID tuple. Valid because discovery never changes the label set
	// of a type after it is added (merges union equal or empty sets).
	byLabels [2]map[uint64][]*Type
}

// NewSchema returns an empty schema with a fresh intern table.
func NewSchema() *Schema { return NewSchemaWith(NewSymtab()) }

// NewSchemaWith returns an empty schema sharing an existing intern table
// (the pipeline's, so candidate types can merge straight in).
func NewSchemaWith(tab *Symtab) *Schema {
	return &Schema{
		Tab:      tab,
		byLabels: [2]map[uint64][]*Type{{}, {}},
	}
}

// NewType returns an empty type of the given kind bound to the schema's
// intern table.
func (s *Schema) NewType(kind ElementKind) *Type { return NewType(s.Tab, kind) }

// Types returns the node or edge type list for the given kind.
func (s *Schema) Types(kind ElementKind) []*Type {
	if kind == NodeKind {
		return s.NodeTypes
	}
	return s.EdgeTypes
}

// Add appends a type of its kind and indexes its label set.
func (s *Schema) Add(t *Type) {
	if t.tab != s.Tab {
		panic("schema: adding type from a different intern table")
	}
	if t.Kind == NodeKind {
		s.NodeTypes = append(s.NodeTypes, t)
	} else {
		s.EdgeTypes = append(s.EdgeTypes, t)
	}
	if t.Labeled() {
		h := hashIDs(t.labels)
		s.byLabels[t.Kind][h] = append(s.byLabels[t.Kind][h], t)
	}
}

// FindByLabelSet returns the first type of the given kind whose label set
// equals labels (sorted interned IDs), or nil. Hash collisions are
// resolved by exact comparison, so distinct label sets never conflate.
func (s *Schema) FindByLabelSet(kind ElementKind, labels IDSet) *Type {
	for _, t := range s.byLabels[kind][hashIDs(labels)] {
		if t.labels.Equal(labels) {
			return t
		}
	}
	return nil
}

// FindByLabelKey returns the first type of the given kind whose display
// label key (LabelKey) equals key, or nil. Test convenience — discovery
// uses FindByLabelSet.
func (s *Schema) FindByLabelKey(kind ElementKind, key string) *Type {
	for _, t := range s.Types(kind) {
		if t.LabelKey() == key {
			return t
		}
	}
	return nil
}

// AllLabels returns the union of labels across all types of the kind.
func (s *Schema) AllLabels(kind ElementKind) StringSet {
	out := StringSet{}
	for _, t := range s.Types(kind) {
		for _, id := range t.labels {
			out.Add(s.Tab.Str(id))
		}
	}
	return out
}

// AllPropertyKeys returns the union of property keys across all types of
// the kind.
func (s *Schema) AllPropertyKeys(kind ElementKind) StringSet {
	out := StringSet{}
	for _, t := range s.Types(kind) {
		for _, id := range t.props.ids {
			out.Add(s.Tab.Str(id))
		}
	}
	return out
}

// Covers reports whether the schema has a type of the given kind whose
// labels include all of labels and whose property keys include all of keys
// — the type-completeness guarantee of §4.7.
func (s *Schema) Covers(kind ElementKind, labels []string, keys []string) bool {
	labelIDs := make(IDSet, 0, len(labels))
	for _, l := range labels {
		id, ok := s.Tab.Lookup(l)
		if !ok {
			return false // never observed, so no type can carry it
		}
		labelIDs = append(labelIDs, id)
	}
	keyIDs := make(IDSet, 0, len(keys))
	for _, k := range keys {
		id, ok := s.Tab.Lookup(k)
		if !ok {
			return false
		}
		keyIDs = append(keyIDs, id)
	}
	for _, t := range s.Types(kind) {
		ok := true
		for _, id := range labelIDs {
			if !t.labels.Contains(id) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, id := range keyIDs {
			if t.props.Get(id) == nil {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
