package schema

import (
	"fmt"
	"sort"

	"pghive/internal/pg"
)

// Checkpoint codec: a complete, deterministic wire encoding of the evolving
// schema — every type with its full evidence (property statistics, value
// stats, endpoint degrees, members). Encoding the same schema twice yields
// identical bytes (all map iteration is sorted), which is what lets the
// crash/resume tests compare checkpoints directly.

// Codec bounds: untrusted counts are capped so corrupt checkpoints cannot
// drive huge allocations.
const (
	maxTypes   = 1 << 24
	maxLabels  = 1 << 16
	maxProps   = 1 << 24
	maxMembers = 1 << 40
	maxDegrees = 1 << 40
	maxHashes  = distinctHashCap
)

// WriteSchema encodes the schema onto a wire stream. Errors surface at the
// caller's Flush.
func WriteSchema(w *pg.WireWriter, s *Schema) error {
	for _, types := range [][]*Type{s.NodeTypes, s.EdgeTypes} {
		w.Uvarint(uint64(len(types)))
		for _, t := range types {
			if err := writeType(w, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadSchema decodes a schema written by WriteSchema.
func ReadSchema(r *pg.WireReader) (*Schema, error) {
	s := NewSchema()
	for pass, kind := range []ElementKind{NodeKind, EdgeKind} {
		n, err := r.Uvarint(maxTypes)
		if err != nil {
			return nil, fmt.Errorf("schema: type count (pass %d): %w", pass, err)
		}
		for i := uint64(0); i < n; i++ {
			t, err := readType(r, kind)
			if err != nil {
				return nil, fmt.Errorf("schema: %v type %d: %w", kind, i, err)
			}
			s.Add(t)
		}
	}
	return s, nil
}

func writeStringSet(w *pg.WireWriter, s StringSet) {
	sorted := s.Sorted()
	w.Uvarint(uint64(len(sorted)))
	for _, e := range sorted {
		w.String(e)
	}
}

func readStringSet(r *pg.WireReader) (StringSet, error) {
	n, err := r.Uvarint(maxLabels)
	if err != nil {
		return nil, err
	}
	s := make(StringSet, n)
	for i := uint64(0); i < n; i++ {
		e, err := r.String()
		if err != nil {
			return nil, err
		}
		s.Add(e)
	}
	return s, nil
}

func writeDegrees(w *pg.WireWriter, deg map[pg.ID]int) {
	ids := make([]pg.ID, 0, len(deg))
	for id := range deg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		w.Varint(int64(id))
		w.Varint(int64(deg[id]))
	}
}

func readDegrees(r *pg.WireReader) (map[pg.ID]int, error) {
	n, err := r.Uvarint(maxDegrees)
	if err != nil {
		return nil, err
	}
	deg := make(map[pg.ID]int, n)
	for i := uint64(0); i < n; i++ {
		id, err := r.Varint()
		if err != nil {
			return nil, err
		}
		c, err := r.Varint()
		if err != nil {
			return nil, err
		}
		deg[pg.ID(id)] = int(c)
	}
	return deg, nil
}

func writeType(w *pg.WireWriter, t *Type) error {
	w.Byte(byte(t.Kind))
	writeStringSet(w, t.Labels)
	w.Varint(int64(t.Instances))
	w.Bool(t.Abstract)

	keys := make([]string, 0, len(t.Props))
	for k := range t.Props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.String(k)
		writePropStat(w, t.Props[k])
	}

	if t.Kind == EdgeKind {
		writeStringSet(w, t.SrcLabels)
		writeStringSet(w, t.DstLabels)
		writeDegrees(w, t.OutDeg)
		writeDegrees(w, t.InDeg)
	}

	w.Uvarint(uint64(len(t.Members)))
	for _, id := range t.Members {
		w.Varint(int64(id))
	}
	return nil
}

func readType(r *pg.WireReader, wantKind ElementKind) (*Type, error) {
	kindByte, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if ElementKind(kindByte) != wantKind {
		return nil, fmt.Errorf("kind %d out of place (want %d)", kindByte, wantKind)
	}
	t := NewType(wantKind)
	if t.Labels, err = readStringSet(r); err != nil {
		return nil, fmt.Errorf("labels: %w", err)
	}
	inst, err := r.Varint()
	if err != nil {
		return nil, err
	}
	t.Instances = int(inst)
	if t.Abstract, err = r.Bool(); err != nil {
		return nil, err
	}

	propCount, err := r.Uvarint(maxProps)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < propCount; i++ {
		k, err := r.String()
		if err != nil {
			return nil, err
		}
		p, err := readPropStat(r)
		if err != nil {
			return nil, fmt.Errorf("prop %q: %w", k, err)
		}
		t.Props[k] = p
	}

	if wantKind == EdgeKind {
		if t.SrcLabels, err = readStringSet(r); err != nil {
			return nil, fmt.Errorf("src labels: %w", err)
		}
		if t.DstLabels, err = readStringSet(r); err != nil {
			return nil, fmt.Errorf("dst labels: %w", err)
		}
		if t.OutDeg, err = readDegrees(r); err != nil {
			return nil, fmt.Errorf("out degrees: %w", err)
		}
		if t.InDeg, err = readDegrees(r); err != nil {
			return nil, fmt.Errorf("in degrees: %w", err)
		}
	}

	memberCount, err := r.Uvarint(maxMembers)
	if err != nil {
		return nil, err
	}
	if memberCount > 0 {
		t.Members = make([]pg.ID, memberCount)
		for i := range t.Members {
			id, err := r.Varint()
			if err != nil {
				return nil, err
			}
			t.Members[i] = pg.ID(id)
		}
	}
	return t, nil
}

func writeKindCounts(w *pg.WireWriter, m map[pg.Kind]int) {
	kinds := make([]int, 0, len(m))
	for k := range m {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	w.Uvarint(uint64(len(kinds)))
	for _, k := range kinds {
		w.Byte(byte(k))
		w.Varint(int64(m[pg.Kind(k)]))
	}
}

func readKindCounts(r *pg.WireReader) (map[pg.Kind]int, error) {
	n, err := r.Uvarint(256)
	if err != nil {
		return nil, err
	}
	m := make(map[pg.Kind]int, n)
	for i := uint64(0); i < n; i++ {
		k, err := r.Byte()
		if err != nil {
			return nil, err
		}
		c, err := r.Varint()
		if err != nil {
			return nil, err
		}
		m[pg.Kind(k)] = int(c)
	}
	return m, nil
}

func writePropStat(w *pg.WireWriter, p *PropStat) {
	w.Varint(int64(p.Count))
	writeKindCounts(w, p.Kinds)
	writeKindCounts(w, p.SampleKinds)
	p.Values.encode(w)
}

func readPropStat(r *pg.WireReader) (*PropStat, error) {
	p := NewPropStat()
	count, err := r.Varint()
	if err != nil {
		return nil, err
	}
	p.Count = int(count)
	if p.Kinds, err = readKindCounts(r); err != nil {
		return nil, fmt.Errorf("kinds: %w", err)
	}
	if p.SampleKinds, err = readKindCounts(r); err != nil {
		return nil, fmt.Errorf("sample kinds: %w", err)
	}
	if p.Values, err = decodeValueStat(r); err != nil {
		return nil, fmt.Errorf("values: %w", err)
	}
	return p, nil
}

// encode serializes the value-evidence accumulator, including the distinct
// hash set — resuming from a checkpoint must keep certifying uniqueness
// exactly where the crashed run left off.
func (s *ValueStat) encode(w *pg.WireWriter) {
	w.Bool(s.dup)
	w.Bool(s.overflow)
	hashes := make([]uint64, 0, len(s.hashes))
	for h := range s.hashes {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	w.Uvarint(uint64(len(hashes)))
	for _, h := range hashes {
		w.Uvarint(h)
	}

	enum := make([]string, 0, len(s.enum))
	for v := range s.enum {
		enum = append(enum, v)
	}
	sort.Strings(enum)
	w.Uvarint(uint64(len(enum)))
	for _, v := range enum {
		w.String(v)
	}

	w.Varint(int64(s.numCount))
	w.Float64(s.minNum)
	w.Float64(s.maxNum)
}

func decodeValueStat(r *pg.WireReader) (*ValueStat, error) {
	s := NewValueStat()
	var err error
	if s.dup, err = r.Bool(); err != nil {
		return nil, err
	}
	if s.overflow, err = r.Bool(); err != nil {
		return nil, err
	}
	hashCount, err := r.Uvarint(maxHashes)
	if err != nil {
		return nil, err
	}
	if s.dup || s.overflow {
		s.hashes = nil
	}
	for i := uint64(0); i < hashCount; i++ {
		h, err := r.Uvarint(^uint64(0))
		if err != nil {
			return nil, err
		}
		if s.hashes != nil {
			s.hashes[h] = struct{}{}
		}
	}

	enumCount, err := r.Uvarint(EnumCap + 2)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < enumCount; i++ {
		v, err := r.String()
		if err != nil {
			return nil, err
		}
		s.enum[v] = struct{}{}
	}

	numCount, err := r.Varint()
	if err != nil {
		return nil, err
	}
	s.numCount = int(numCount)
	if s.minNum, err = r.Float64(); err != nil {
		return nil, err
	}
	if s.maxNum, err = r.Float64(); err != nil {
		return nil, err
	}
	return s, nil
}
