package schema

import (
	"fmt"
	"sort"

	"pghive/internal/pg"
	"pghive/internal/sketch"
)

// Checkpoint codec: a complete, deterministic wire encoding of the evolving
// schema — the intern table first, then every type with its full evidence
// (property statistics, value stats, endpoint degrees, members) in interned
// form. Encoding the same schema twice yields identical bytes (ID slices
// are sorted, the symtab serializes in assignment order, and residual map
// iteration is sorted), which is what lets the crash/resume tests compare
// checkpoints directly. Restoring the symtab verbatim is what keeps ID
// assignment — and therefore the rest of the stream — deterministic across
// a resume.

// Codec bounds: untrusted counts are capped so corrupt checkpoints cannot
// drive huge allocations.
const (
	maxTypes   = 1 << 24
	maxLabels  = 1 << 16
	maxProps   = 1 << 24
	maxMembers = 1 << 40
	maxDegrees = 1 << 40
	maxHashes  = distinctHashCap
)

// WriteSchema encodes the schema onto a wire stream. Errors surface at the
// caller's Flush.
func WriteSchema(w *pg.WireWriter, s *Schema) error {
	WriteSymtab(w, s.Tab)
	for _, types := range [][]*Type{s.NodeTypes, s.EdgeTypes} {
		w.Uvarint(uint64(len(types)))
		for _, t := range types {
			if err := writeType(w, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadSchema decodes a schema written by WriteSchema.
func ReadSchema(r *pg.WireReader) (*Schema, error) {
	tab, err := ReadSymtab(r)
	if err != nil {
		return nil, fmt.Errorf("schema: %w", err)
	}
	s := NewSchemaWith(tab)
	for pass, kind := range []ElementKind{NodeKind, EdgeKind} {
		n, err := r.Uvarint(maxTypes)
		if err != nil {
			return nil, fmt.Errorf("schema: type count (pass %d): %w", pass, err)
		}
		for i := uint64(0); i < n; i++ {
			t, err := readType(r, tab, kind)
			if err != nil {
				return nil, fmt.Errorf("schema: %v type %d: %w", kind, i, err)
			}
			s.Add(t)
		}
	}
	return s, nil
}

func writeIDSet(w *pg.WireWriter, s IDSet) {
	w.Uvarint(uint64(len(s)))
	for _, id := range s {
		w.Uvarint(uint64(id))
	}
}

func readIDSet(r *pg.WireReader, tab *Symtab) (IDSet, error) {
	n, err := r.Uvarint(maxLabels)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	s := make(IDSet, 0, n)
	last := int64(-1)
	for i := uint64(0); i < n; i++ {
		id, err := r.Uvarint(uint64(tab.Strings()))
		if err != nil {
			return nil, err
		}
		if int64(id) <= last || id >= uint64(tab.Strings()) {
			return nil, fmt.Errorf("id %d out of order or range", id)
		}
		last = int64(id)
		s = append(s, uint32(id))
	}
	return s, nil
}

// writeDegrees encodes a degree table behind a mode byte: 0 = exact
// (id, count) pairs, 1 = sketched (self-describing sketch state). pol
// parameterizes the lazy fold of pending sketched observations.
func writeDegrees(w *pg.WireWriter, deg *CounterTable, pol *EvidencePolicy) {
	if deg.sketched {
		w.Byte(1)
		deg.fold(pol)
		if deg.sk == nil {
			deg.sk = newDegreeSketch(pol)
		}
		deg.sk.write(w)
		return
	}
	w.Byte(0)
	deg.normalize()
	w.Uvarint(uint64(len(deg.ids)))
	deg.each(func(id, count uint32) {
		w.Uvarint(uint64(id))
		w.Uvarint(uint64(count))
	})
}

func readDegrees(r *pg.WireReader, tab *Symtab) (CounterTable, error) {
	var deg CounterTable
	mode, err := r.Byte()
	if err != nil {
		return deg, err
	}
	switch mode {
	case 1:
		sk, err := readDegreeSketch(r)
		if err != nil {
			return deg, err
		}
		deg.sketched = true
		deg.sk = sk
		return deg, nil
	case 0:
	default:
		return deg, fmt.Errorf("degree mode byte %d invalid", mode)
	}
	n, err := r.Uvarint(maxDegrees)
	if err != nil {
		return deg, err
	}
	if n == 0 {
		return deg, nil
	}
	deg.ids = make([]uint32, 0, n)
	deg.counts = make([]uint32, 0, n)
	last := int64(-1)
	for i := uint64(0); i < n; i++ {
		id, err := r.Uvarint(uint64(tab.Endpoints()))
		if err != nil {
			return deg, err
		}
		if int64(id) <= last || id >= uint64(tab.Endpoints()) {
			return deg, fmt.Errorf("endpoint %d out of order or range", id)
		}
		last = int64(id)
		c, err := r.Uvarint(^uint64(0))
		if err != nil {
			return deg, err
		}
		deg.ids = append(deg.ids, uint32(id))
		deg.counts = append(deg.counts, uint32(c))
	}
	return deg, nil
}

func writeType(w *pg.WireWriter, t *Type) error {
	w.Byte(byte(t.Kind))
	writeIDSet(w, t.labels)
	w.Varint(int64(t.Instances))
	w.Bool(t.Abstract)

	w.Uvarint(uint64(t.props.Len()))
	for i := 0; i < t.props.Len(); i++ {
		id, p := t.props.At(i)
		w.Uvarint(uint64(id))
		writePropStat(w, p)
	}

	if t.Kind == EdgeKind {
		writeIDSet(w, t.srcLabels)
		writeIDSet(w, t.dstLabels)
		pol := t.tab.Evidence()
		writeDegrees(w, &t.outDeg, pol)
		writeDegrees(w, &t.inDeg, pol)
	}

	w.Uvarint(uint64(len(t.Members)))
	for _, id := range t.Members {
		w.Varint(int64(id))
	}
	return nil
}

func readType(r *pg.WireReader, tab *Symtab, wantKind ElementKind) (*Type, error) {
	kindByte, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if ElementKind(kindByte) != wantKind {
		return nil, fmt.Errorf("kind %d out of place (want %d)", kindByte, wantKind)
	}
	t := NewType(tab, wantKind)
	if t.labels, err = readIDSet(r, tab); err != nil {
		return nil, fmt.Errorf("labels: %w", err)
	}
	inst, err := r.Varint()
	if err != nil {
		return nil, err
	}
	t.Instances = int(inst)
	if t.Abstract, err = r.Bool(); err != nil {
		return nil, err
	}

	propCount, err := r.Uvarint(maxProps)
	if err != nil {
		return nil, err
	}
	last := int64(-1)
	for i := uint64(0); i < propCount; i++ {
		id, err := r.Uvarint(uint64(tab.Strings()))
		if err != nil {
			return nil, err
		}
		if int64(id) <= last || id >= uint64(tab.Strings()) {
			return nil, fmt.Errorf("prop id %d out of order or range", id)
		}
		last = int64(id)
		p, err := readPropStat(r)
		if err != nil {
			return nil, fmt.Errorf("prop %d: %w", id, err)
		}
		t.props.ids = append(t.props.ids, uint32(id))
		t.props.stats = append(t.props.stats, p)
	}

	if wantKind == EdgeKind {
		if t.srcLabels, err = readIDSet(r, tab); err != nil {
			return nil, fmt.Errorf("src labels: %w", err)
		}
		if t.dstLabels, err = readIDSet(r, tab); err != nil {
			return nil, fmt.Errorf("dst labels: %w", err)
		}
		if t.outDeg, err = readDegrees(r, tab); err != nil {
			return nil, fmt.Errorf("out degrees: %w", err)
		}
		if t.inDeg, err = readDegrees(r, tab); err != nil {
			return nil, fmt.Errorf("in degrees: %w", err)
		}
	}

	memberCount, err := r.Uvarint(maxMembers)
	if err != nil {
		return nil, err
	}
	if memberCount > 0 {
		t.Members = make([]pg.ID, memberCount)
		for i := range t.Members {
			id, err := r.Varint()
			if err != nil {
				return nil, err
			}
			t.Members[i] = pg.ID(id)
		}
	}
	return t, nil
}

func writeKindCounts(w *pg.WireWriter, m map[pg.Kind]int) {
	kinds := make([]int, 0, len(m))
	for k := range m {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	w.Uvarint(uint64(len(kinds)))
	for _, k := range kinds {
		w.Byte(byte(k))
		w.Varint(int64(m[pg.Kind(k)]))
	}
}

func readKindCounts(r *pg.WireReader) (map[pg.Kind]int, error) {
	n, err := r.Uvarint(256)
	if err != nil {
		return nil, err
	}
	m := make(map[pg.Kind]int, n)
	for i := uint64(0); i < n; i++ {
		k, err := r.Byte()
		if err != nil {
			return nil, err
		}
		c, err := r.Varint()
		if err != nil {
			return nil, err
		}
		m[pg.Kind(k)] = int(c)
	}
	return m, nil
}

func writePropStat(w *pg.WireWriter, p *PropStat) {
	w.Varint(int64(p.Count))
	writeKindCounts(w, p.Kinds)
	writeKindCounts(w, p.SampleKinds)
	p.Values.encode(w)
}

func readPropStat(r *pg.WireReader) (*PropStat, error) {
	p := NewPropStat()
	count, err := r.Varint()
	if err != nil {
		return nil, err
	}
	p.Count = int(count)
	if p.Kinds, err = readKindCounts(r); err != nil {
		return nil, fmt.Errorf("kinds: %w", err)
	}
	if p.SampleKinds, err = readKindCounts(r); err != nil {
		return nil, fmt.Errorf("sample kinds: %w", err)
	}
	if p.Values, err = decodeValueStat(r); err != nil {
		return nil, fmt.Errorf("values: %w", err)
	}
	return p, nil
}

// encode serializes the value-evidence accumulator behind a mode byte
// (0 = exact, 1 = sketched), including the distinct hash set or sketch
// state — resuming from a checkpoint must keep certifying uniqueness
// exactly where the crashed run left off.
func (s *ValueStat) encode(w *pg.WireWriter) {
	if s.sketched {
		w.Byte(1)
		w.Bool(s.dup)
		w.Bool(s.frontOver)
		w.Uvarint(s.n)
		writeHashSet(w, s.front)
		w.Bool(s.hll != nil)
		if s.hll != nil {
			s.hll.Write(w)
		}
	} else {
		w.Byte(0)
		w.Bool(s.dup)
		w.Bool(s.overflow)
		writeHashSet(w, s.hashes)
	}

	w.Bool(s.enumOver)
	enum := make([]string, 0, len(s.enum))
	for v := range s.enum {
		enum = append(enum, v)
	}
	sort.Strings(enum)
	w.Uvarint(uint64(len(enum)))
	for _, v := range enum {
		w.String(v)
	}

	w.Varint(int64(s.numCount))
	w.Float64(s.minNum)
	w.Float64(s.maxNum)
}

func writeHashSet(w *pg.WireWriter, set map[uint64]struct{}) {
	hashes := make([]uint64, 0, len(set))
	for h := range set {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	w.Uvarint(uint64(len(hashes)))
	for _, h := range hashes {
		w.Uvarint(h)
	}
}

func readHashSet(r *pg.WireReader, into map[uint64]struct{}) error {
	n, err := r.Uvarint(maxHashes)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		h, err := r.Uvarint(^uint64(0))
		if err != nil {
			return err
		}
		if into != nil {
			into[h] = struct{}{}
		}
	}
	return nil
}

func decodeValueStat(r *pg.WireReader) (*ValueStat, error) {
	mode, err := r.Byte()
	if err != nil {
		return nil, err
	}
	var s *ValueStat
	switch mode {
	case 0:
		s = NewValueStat()
		if s.dup, err = r.Bool(); err != nil {
			return nil, err
		}
		if s.overflow, err = r.Bool(); err != nil {
			return nil, err
		}
		if s.dup || s.overflow {
			s.hashes = nil
		}
		if err := readHashSet(r, s.hashes); err != nil {
			return nil, err
		}
	case 1:
		s = &ValueStat{sketched: true, enum: map[string]struct{}{}}
		if s.dup, err = r.Bool(); err != nil {
			return nil, err
		}
		if s.frontOver, err = r.Bool(); err != nil {
			return nil, err
		}
		if s.n, err = r.Uvarint(^uint64(0)); err != nil {
			return nil, err
		}
		if !s.dup {
			s.front = map[uint64]struct{}{}
		}
		if err := readHashSet(r, s.front); err != nil {
			return nil, err
		}
		if s.frontOver {
			for h := range s.front {
				if h > s.frontMax {
					s.frontMax = h
				}
			}
		}
		hasHLL, err := r.Bool()
		if err != nil {
			return nil, err
		}
		if hasHLL {
			if s.hll, err = sketch.ReadHLL(r); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("value stat mode byte %d invalid", mode)
	}

	if s.enumOver, err = r.Bool(); err != nil {
		return nil, err
	}
	if s.enumOver {
		s.enum = nil
	}
	enumCount, err := r.Uvarint(EnumCap + 2)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < enumCount; i++ {
		v, err := r.String()
		if err != nil {
			return nil, err
		}
		if s.enum != nil {
			s.enum[v] = struct{}{}
			s.enumBytes += len(v)
		}
	}

	numCount, err := r.Varint()
	if err != nil {
		return nil, err
	}
	s.numCount = int(numCount)
	if s.minNum, err = r.Float64(); err != nil {
		return nil, err
	}
	if s.maxNum, err = r.Float64(); err != nil {
		return nil, err
	}
	return s, nil
}
