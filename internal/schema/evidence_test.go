package schema

import (
	"bytes"
	"fmt"
	"testing"

	"pghive/internal/pg"
)

// evRNG is a tiny deterministic xorshift64 generator so the property tests
// replay identically across runs.
type evRNG uint64

func (r *evRNG) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = evRNG(x)
	return x
}

// genSketchEdges builds a skewed edge stream: endpoint 1 is a heavy source
// hub, everything else is drawn from a bounded ID range, every edge carries
// a globally unique "uid" and a three-valued "flag".
func genSketchEdges(seed int64, n int) []pg.EdgeRecord {
	rng := evRNG(uint64(seed)*2654435761 + 1)
	flags := []string{"a", "b", "c"}
	edges := make([]pg.EdgeRecord, n)
	for i := range edges {
		src := pg.ID(1)
		if rng.next()%4 != 0 { // hub takes ~1/4 of the out-degree mass
			src = pg.ID(2 + rng.next()%257)
		}
		dst := pg.ID(1000 + rng.next()%389)
		edges[i] = pg.EdgeRecord{
			ID: pg.ID(i), Labels: []string{"KNOWS"},
			Src: src, Dst: dst,
			SrcLabels: []string{"Person"}, DstLabels: []string{"Person"},
			Props: pg.Properties{
				"uid":  pg.Str(fmt.Sprintf("u%d-%d", seed, i)),
				"flag": pg.Str(flags[rng.next()%3]),
			},
		}
	}
	return edges
}

// sketchedEdgeSchema observes the edges into a fresh schema running under
// the given evidence policy.
func sketchedEdgeSchema(pol *EvidencePolicy, edges []pg.EdgeRecord) *Schema {
	s := NewSchema()
	s.SetEvidencePolicy(pol)
	t := NewType(s.Tab, EdgeKind)
	for i := range edges {
		t.ObserveEdge(&edges[i], NeverSample, false)
	}
	s.Add(t)
	return s
}

// TestSketchedShardMergeCommutesWithSerial is the shard-merge property of
// the sketched evidence layer: splitting a stream across two schemas (own
// symtabs, as discovery shards have) and folding them together through
// Remap+MergeSchemas must agree with serial accumulation — exactly for the
// HLL distinct estimates (register-max merge is order- and
// partition-invariant), and within sketch error bounds for degree maxima
// and against ground truth for distinct counts.
func TestSketchedShardMergeCommutesWithSerial(t *testing.T) {
	pol := PolicyForBudget(256 << 20)
	for seed := int64(1); seed <= 5; seed++ {
		edges := genSketchEdges(seed, 4000)

		// Ground truth.
		outDeg := map[pg.ID]int{}
		inDeg := map[pg.ID]int{}
		for i := range edges {
			outDeg[edges[i].Src]++
			inDeg[edges[i].Dst]++
		}
		trueMaxOut := 0
		for _, c := range outDeg {
			if c > trueMaxOut {
				trueMaxOut = c
			}
		}

		serial := sketchedEdgeSchema(pol, edges)

		// Interleaved split, merged in both orders.
		var left, right []pg.EdgeRecord
		for i := range edges {
			if i%2 == 0 {
				left = append(left, edges[i])
			} else {
				right = append(right, edges[i])
			}
		}
		merged := sketchedEdgeSchema(pol, left)
		MergeSchemas(merged, sketchedEdgeSchema(pol, right), 0.9)
		reversed := sketchedEdgeSchema(pol, right)
		MergeSchemas(reversed, sketchedEdgeSchema(pol, left), 0.9)

		if len(merged.EdgeTypes) != 1 || len(serial.EdgeTypes) != 1 {
			t.Fatalf("seed %d: %d merged / %d serial edge types, want 1/1",
				seed, len(merged.EdgeTypes), len(serial.EdgeTypes))
		}
		mt, rt, st := merged.EdgeTypes[0], reversed.EdgeTypes[0], serial.EdgeTypes[0]

		// HLL estimates must commute exactly with sharding and merge order.
		if mt.OutDistinct() != st.OutDistinct() || mt.InDistinct() != st.InDistinct() {
			t.Errorf("seed %d: merged distinct (%d out, %d in) != serial (%d out, %d in)",
				seed, mt.OutDistinct(), mt.InDistinct(), st.OutDistinct(), st.InDistinct())
		}
		if rt.OutDistinct() != mt.OutDistinct() || rt.InDistinct() != mt.InDistinct() {
			t.Errorf("seed %d: merge order changed distinct estimates: %d/%d vs %d/%d",
				seed, rt.OutDistinct(), rt.InDistinct(), mt.OutDistinct(), mt.InDistinct())
		}

		// Estimates track ground truth within the sketch's error bounds
		// (±1.6% at this precision; 5% gives 3σ headroom).
		within := func(name string, got, want int) {
			t.Helper()
			lo, hi := float64(want)*0.95, float64(want)*1.05
			if f := float64(got); f < lo || f > hi {
				t.Errorf("seed %d: %s = %d, want %d ±5%%", seed, name, got, want)
			}
		}
		within("serial OutDistinct", st.OutDistinct(), len(outDeg))
		within("serial InDistinct", st.InDistinct(), len(inDeg))

		// Degree maxima: the hub is heavy enough to be monitored everywhere;
		// count-min/space-saving never undercount a monitored key, and the
		// wide tables keep the overcount small.
		for name, got := range map[string]int{
			"serial": st.MaxDegrees().MaxOut,
			"merged": mt.MaxDegrees().MaxOut,
		} {
			if got < trueMaxOut || float64(got) > float64(trueMaxOut)*1.15+2 {
				t.Errorf("seed %d: %s MaxOut = %d, want in [%d, %d*1.15+2]",
					seed, name, got, trueMaxOut, trueMaxOut)
			}
		}

		// Value constraints survive the shard merge: the unique property
		// stays certified, the enum stays closed and exact.
		if !mt.Prop("uid").Values.AllDistinct() {
			t.Errorf("seed %d: merged uid lost its uniqueness certificate", seed)
		}
		if mt.Prop("flag").Values.AllDistinct() {
			t.Errorf("seed %d: three-valued flag certified unique after merge", seed)
		}
		if got := fmt.Sprint(mt.Prop("flag").Values.EnumValues()); got != "[a b c]" {
			t.Errorf("seed %d: merged flag enum = %s, want [a b c]", seed, got)
		}
	}
}

// TestSketchedMergeAdoptsExactSide: merging an exact-evidence shard into a
// sketched one funnels the exact counts through the raw endpoint IDs, so
// nothing is lost crossing modes (the resume-then-change-budget path).
func TestSketchedMergeAdoptsExactSide(t *testing.T) {
	edges := genSketchEdges(7, 1000)
	sketched := sketchedEdgeSchema(PolicyForBudget(256<<20), edges[:500])
	exact := sketchedEdgeSchema(nil, edges[500:])
	if exact.EdgeTypes[0].outDeg.Sketched() {
		t.Fatal("nil-policy schema accumulated sketched degrees")
	}

	outDeg := map[pg.ID]int{}
	for i := range edges {
		outDeg[edges[i].Src]++
	}
	MergeSchemas(sketched, exact, 0.9)
	mt := sketched.EdgeTypes[0]
	if !mt.outDeg.Sketched() {
		t.Fatal("merge dropped sketched mode")
	}
	got := mt.OutDistinct()
	if lo, hi := float64(len(outDeg))*0.95, float64(len(outDeg))*1.05; float64(got) < lo || float64(got) > hi {
		t.Errorf("cross-mode OutDistinct = %d, want %d ±5%%", got, len(outDeg))
	}
}

// FuzzSketchRoundTrip drives the checkpoint codec's sketched branches: a
// schema with sketched degree and value evidence derived from the fuzz
// input must encode → decode → re-encode byte-identically, and feeding the
// raw input straight into ReadSchema must fail cleanly rather than panic or
// over-allocate.
func FuzzSketchRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, int64(1))
	f.Add([]byte{0xff, 0x00, 0x7f}, int64(42))
	f.Add([]byte{}, int64(-9))
	f.Fuzz(func(t *testing.T, raw []byte, seed int64) {
		// Adversarial decode first: arbitrary bytes must never panic.
		if s, err := ReadSchema(pg.NewWireReader(bytes.NewReader(raw))); err == nil && s == nil {
			t.Fatal("ReadSchema returned nil schema with nil error")
		}

		// Deterministic sketched schema from the input.
		n := len(raw)%64 + 2
		edges := genSketchEdges(seed, n)
		for i := range raw {
			edges[i%n].Src = pg.ID(raw[i]) // fold input bytes into the key space
		}
		s := sketchedEdgeSchema(PolicyForBudget(64<<20), edges)

		var first bytes.Buffer
		w := pg.NewWireWriter(&first)
		if err := WriteSchema(w, s); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		decoded, err := ReadSchema(pg.NewWireReader(bytes.NewReader(first.Bytes())))
		if err != nil {
			t.Fatalf("decode of a fresh checkpoint failed: %v", err)
		}
		var second bytes.Buffer
		w2 := pg.NewWireWriter(&second)
		if err := WriteSchema(w2, decoded); err != nil {
			t.Fatal(err)
		}
		if err := w2.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("checkpoint not stable under decode/re-encode: %d vs %d bytes",
				first.Len(), second.Len())
		}

		// The decoded evidence answers like the original.
		dt, ot := decoded.EdgeTypes[0], s.EdgeTypes[0]
		if dt.OutDistinct() != ot.OutDistinct() || dt.MaxDegrees() != ot.MaxDegrees() {
			t.Fatal("decoded sketch state answers differently from the original")
		}
	})
}
