package schema

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ChangeKind classifies one schema evolution step between two finalized
// definitions (e.g. two incremental snapshots, §4.6).
type ChangeKind uint8

// Change kinds.
const (
	// TypeAdded: a node or edge type exists only in the newer schema.
	TypeAdded ChangeKind = iota
	// TypeRemoved: a type disappeared (cannot happen under monotone
	// incremental merging; surfaces manual edits).
	TypeRemoved
	// PropertyAdded / PropertyRemoved: a property (dis)appeared on a type.
	PropertyAdded
	PropertyRemoved
	// DataTypeChanged: the inferred data type generalized or changed.
	DataTypeChanged
	// ConstraintRelaxed: a MANDATORY property became OPTIONAL (new
	// instances arrived without it).
	ConstraintRelaxed
	// ConstraintTightened: an OPTIONAL property became MANDATORY.
	ConstraintTightened
	// CardinalityChanged: an edge type's cardinality class changed.
	CardinalityChanged
	// KeyGained / KeyLost: a property's uniqueness constraint appeared or
	// disappeared (a duplicate value arrived).
	KeyGained
	KeyLost
)

// Slug returns the kind's snake-case identifier, used for JSON output and
// per-kind counts.
func (k ChangeKind) Slug() string {
	switch k {
	case TypeAdded:
		return "type_added"
	case TypeRemoved:
		return "type_removed"
	case PropertyAdded:
		return "property_added"
	case PropertyRemoved:
		return "property_removed"
	case DataTypeChanged:
		return "data_type_changed"
	case ConstraintRelaxed:
		return "constraint_relaxed"
	case ConstraintTightened:
		return "constraint_tightened"
	case CardinalityChanged:
		return "cardinality_changed"
	case KeyGained:
		return "key_gained"
	case KeyLost:
		return "key_lost"
	default:
		return fmt.Sprintf("change_%d", uint8(k))
	}
}

// MarshalJSON renders the kind by slug so serialized diffs stay readable
// and stable across enum reordering.
func (k ChangeKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.Slug() + `"`), nil
}

// UnmarshalJSON parses a slug back into the kind, so serialized DiffReports
// (pgschema-diff -format json, the drift JSONL sink) round-trip.
func (k *ChangeKind) UnmarshalJSON(data []byte) error {
	var slug string
	if err := json.Unmarshal(data, &slug); err != nil {
		return err
	}
	for c := TypeAdded; c <= KeyLost; c++ {
		if c.Slug() == slug {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("schema: unknown change kind %q", slug)
}

// String names the change kind.
func (k ChangeKind) String() string {
	switch k {
	case TypeAdded:
		return "type added"
	case TypeRemoved:
		return "type removed"
	case PropertyAdded:
		return "property added"
	case PropertyRemoved:
		return "property removed"
	case DataTypeChanged:
		return "data type changed"
	case ConstraintRelaxed:
		return "constraint relaxed"
	case ConstraintTightened:
		return "constraint tightened"
	case CardinalityChanged:
		return "cardinality changed"
	case KeyGained:
		return "key constraint gained"
	case KeyLost:
		return "key constraint lost"
	default:
		return fmt.Sprintf("change(%d)", uint8(k))
	}
}

// Change is one schema evolution entry. It marshals to stable JSON (the
// kind by slug) for the pgschema-diff -format json output and the drift
// report sink.
type Change struct {
	Kind ChangeKind `json:"kind"`
	// TypeName identifies the affected type; IsEdge selects the space.
	TypeName string `json:"type"`
	IsEdge   bool   `json:"is_edge,omitempty"`
	// Property is set for property-level changes.
	Property string `json:"property,omitempty"`
	// Detail describes the transition (e.g. "INT -> DOUBLE").
	Detail string `json:"detail,omitempty"`
}

// String renders the change.
func (c Change) String() string {
	el := "node type"
	if c.IsEdge {
		el = "edge type"
	}
	out := fmt.Sprintf("%s %s: %s", el, c.TypeName, c.Kind)
	if c.Property != "" {
		out += " " + c.Property
	}
	if c.Detail != "" {
		out += " (" + c.Detail + ")"
	}
	return out
}

// Diff compares two finalized schemas and returns the changes from old to
// new, deterministically ordered (types by name, properties by key). Under
// the monotone incremental merge the result contains no removals, only
// additions and relaxations — a violated expectation signals external
// schema edits.
func Diff(old, new *Def) []Change {
	var changes []Change
	changes = append(changes, diffTypes(nodeMapOf(old), nodeMapOf(new), false)...)
	changes = append(changes, diffTypes(edgeMapOf(old), edgeMapOf(new), true)...)
	return changes
}

// typeView is the common shape diffing needs from node and edge types.
type typeView struct {
	name        string
	props       []PropertyDef
	cardinality string
}

// diffKey returns a collision-proof identity for a type: its label set as a
// netstring sequence ("4:User5:Admin"), so a single label containing the
// display separator '&' (e.g. "a&b") never aliases the two-label set
// {a, b}. Label-less (abstract) types fall back to a name-tagged key.
func diffKey(labels []string, name string) string {
	if len(labels) == 0 {
		return "name\x00" + name
	}
	key := ""
	for _, l := range sortedLabels(labels) {
		key += fmt.Sprintf("%d:%s", len(l), l)
	}
	return key
}

func sortedLabels(labels []string) []string {
	if sort.StringsAreSorted(labels) {
		return labels
	}
	out := make([]string, len(labels))
	copy(out, labels)
	sort.Strings(out)
	return out
}

func nodeMapOf(d *Def) map[string]typeView {
	out := make(map[string]typeView, len(d.Nodes))
	for i := range d.Nodes {
		n := &d.Nodes[i]
		out[diffKey(n.Labels, n.Name)] = typeView{name: n.Name, props: n.Properties}
	}
	return out
}

func edgeMapOf(d *Def) map[string]typeView {
	out := make(map[string]typeView, len(d.Edges))
	for i := range d.Edges {
		e := &d.Edges[i]
		out[diffKey(e.Labels, e.Name)] = typeView{
			name:        e.Name,
			props:       e.Properties,
			cardinality: e.CardinalityString(),
		}
	}
	return out
}

func diffTypes(old, new map[string]typeView, isEdge bool) []Change {
	var changes []Change
	for _, key := range sortedNames(new) {
		nv := new[key]
		ov, existed := old[key]
		if !existed {
			changes = append(changes, Change{Kind: TypeAdded, TypeName: nv.name, IsEdge: isEdge})
			continue
		}
		changes = append(changes, diffProps(nv.name, isEdge, ov.props, nv.props)...)
		if isEdge && ov.cardinality != nv.cardinality {
			changes = append(changes, Change{
				Kind: CardinalityChanged, TypeName: nv.name, IsEdge: isEdge,
				Detail: ov.cardinality + " -> " + nv.cardinality,
			})
		}
	}
	for _, key := range sortedNames(old) {
		if _, ok := new[key]; !ok {
			changes = append(changes, Change{Kind: TypeRemoved, TypeName: old[key].name, IsEdge: isEdge})
		}
	}
	return changes
}

// DiffReport is a serializable diff: the ordered changes plus per-kind
// counts, the payload of the epoch drift report and of
// pgschema-diff -format json.
type DiffReport struct {
	Changes []Change       `json:"changes"`
	Counts  map[string]int `json:"counts,omitempty"`
}

// NewDiffReport wraps a change list, tallying counts by kind slug.
func NewDiffReport(changes []Change) DiffReport {
	r := DiffReport{Changes: changes}
	if len(changes) > 0 {
		r.Counts = make(map[string]int)
		for _, c := range changes {
			r.Counts[c.Kind.Slug()]++
		}
	}
	return r
}

// Empty reports whether the two schemas were identical.
func (r DiffReport) Empty() bool { return len(r.Changes) == 0 }

func sortedNames(m map[string]typeView) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func diffProps(typeName string, isEdge bool, old, new []PropertyDef) []Change {
	var changes []Change
	oldByKey := map[string]*PropertyDef{}
	for i := range old {
		oldByKey[old[i].Key] = &old[i]
	}
	for i := range new {
		np := &new[i]
		op, existed := oldByKey[np.Key]
		if !existed {
			changes = append(changes, Change{Kind: PropertyAdded, TypeName: typeName, IsEdge: isEdge, Property: np.Key})
			continue
		}
		if op.DataType != np.DataType {
			changes = append(changes, Change{
				Kind: DataTypeChanged, TypeName: typeName, IsEdge: isEdge, Property: np.Key,
				Detail: op.DataType.String() + " -> " + np.DataType.String(),
			})
		}
		switch {
		case op.Mandatory && !np.Mandatory:
			changes = append(changes, Change{Kind: ConstraintRelaxed, TypeName: typeName, IsEdge: isEdge, Property: np.Key,
				Detail: "MANDATORY -> OPTIONAL"})
		case !op.Mandatory && np.Mandatory:
			changes = append(changes, Change{Kind: ConstraintTightened, TypeName: typeName, IsEdge: isEdge, Property: np.Key,
				Detail: "OPTIONAL -> MANDATORY"})
		}
		switch {
		case !op.Unique && np.Unique:
			changes = append(changes, Change{Kind: KeyGained, TypeName: typeName, IsEdge: isEdge, Property: np.Key})
		case op.Unique && !np.Unique:
			changes = append(changes, Change{Kind: KeyLost, TypeName: typeName, IsEdge: isEdge, Property: np.Key})
		}
	}
	newKeys := map[string]struct{}{}
	for i := range new {
		newKeys[new[i].Key] = struct{}{}
	}
	for i := range old {
		if _, ok := newKeys[old[i].Key]; !ok {
			changes = append(changes, Change{Kind: PropertyRemoved, TypeName: typeName, IsEdge: isEdge, Property: old[i].Key})
		}
	}
	return changes
}
