package schema

import (
	"fmt"
	"sort"
)

// ChangeKind classifies one schema evolution step between two finalized
// definitions (e.g. two incremental snapshots, §4.6).
type ChangeKind uint8

// Change kinds.
const (
	// TypeAdded: a node or edge type exists only in the newer schema.
	TypeAdded ChangeKind = iota
	// TypeRemoved: a type disappeared (cannot happen under monotone
	// incremental merging; surfaces manual edits).
	TypeRemoved
	// PropertyAdded / PropertyRemoved: a property (dis)appeared on a type.
	PropertyAdded
	PropertyRemoved
	// DataTypeChanged: the inferred data type generalized or changed.
	DataTypeChanged
	// ConstraintRelaxed: a MANDATORY property became OPTIONAL (new
	// instances arrived without it).
	ConstraintRelaxed
	// ConstraintTightened: an OPTIONAL property became MANDATORY.
	ConstraintTightened
	// CardinalityChanged: an edge type's cardinality class changed.
	CardinalityChanged
	// KeyGained / KeyLost: a property's uniqueness constraint appeared or
	// disappeared (a duplicate value arrived).
	KeyGained
	KeyLost
)

// String names the change kind.
func (k ChangeKind) String() string {
	switch k {
	case TypeAdded:
		return "type added"
	case TypeRemoved:
		return "type removed"
	case PropertyAdded:
		return "property added"
	case PropertyRemoved:
		return "property removed"
	case DataTypeChanged:
		return "data type changed"
	case ConstraintRelaxed:
		return "constraint relaxed"
	case ConstraintTightened:
		return "constraint tightened"
	case CardinalityChanged:
		return "cardinality changed"
	case KeyGained:
		return "key constraint gained"
	case KeyLost:
		return "key constraint lost"
	default:
		return fmt.Sprintf("change(%d)", uint8(k))
	}
}

// Change is one schema evolution entry.
type Change struct {
	Kind ChangeKind
	// TypeName identifies the affected type; IsEdge selects the space.
	TypeName string
	IsEdge   bool
	// Property is set for property-level changes.
	Property string
	// Detail describes the transition (e.g. "INT -> DOUBLE").
	Detail string
}

// String renders the change.
func (c Change) String() string {
	el := "node type"
	if c.IsEdge {
		el = "edge type"
	}
	out := fmt.Sprintf("%s %s: %s", el, c.TypeName, c.Kind)
	if c.Property != "" {
		out += " " + c.Property
	}
	if c.Detail != "" {
		out += " (" + c.Detail + ")"
	}
	return out
}

// Diff compares two finalized schemas and returns the changes from old to
// new, deterministically ordered (types by name, properties by key). Under
// the monotone incremental merge the result contains no removals, only
// additions and relaxations — a violated expectation signals external
// schema edits.
func Diff(old, new *Def) []Change {
	var changes []Change
	changes = append(changes, diffTypes(nodeMapOf(old), nodeMapOf(new), false)...)
	changes = append(changes, diffTypes(edgeMapOf(old), edgeMapOf(new), true)...)
	return changes
}

// typeView is the common shape diffing needs from node and edge types.
type typeView struct {
	props       []PropertyDef
	cardinality string
}

func nodeMapOf(d *Def) map[string]typeView {
	out := make(map[string]typeView, len(d.Nodes))
	for i := range d.Nodes {
		out[d.Nodes[i].Name] = typeView{props: d.Nodes[i].Properties}
	}
	return out
}

func edgeMapOf(d *Def) map[string]typeView {
	out := make(map[string]typeView, len(d.Edges))
	for i := range d.Edges {
		out[d.Edges[i].Name] = typeView{
			props:       d.Edges[i].Properties,
			cardinality: d.Edges[i].CardinalityString(),
		}
	}
	return out
}

func diffTypes(old, new map[string]typeView, isEdge bool) []Change {
	var changes []Change
	for _, name := range sortedNames(new) {
		nv := new[name]
		ov, existed := old[name]
		if !existed {
			changes = append(changes, Change{Kind: TypeAdded, TypeName: name, IsEdge: isEdge})
			continue
		}
		changes = append(changes, diffProps(name, isEdge, ov.props, nv.props)...)
		if isEdge && ov.cardinality != nv.cardinality {
			changes = append(changes, Change{
				Kind: CardinalityChanged, TypeName: name, IsEdge: isEdge,
				Detail: ov.cardinality + " -> " + nv.cardinality,
			})
		}
	}
	for _, name := range sortedNames(old) {
		if _, ok := new[name]; !ok {
			changes = append(changes, Change{Kind: TypeRemoved, TypeName: name, IsEdge: isEdge})
		}
	}
	return changes
}

func sortedNames(m map[string]typeView) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func diffProps(typeName string, isEdge bool, old, new []PropertyDef) []Change {
	var changes []Change
	oldByKey := map[string]*PropertyDef{}
	for i := range old {
		oldByKey[old[i].Key] = &old[i]
	}
	for i := range new {
		np := &new[i]
		op, existed := oldByKey[np.Key]
		if !existed {
			changes = append(changes, Change{Kind: PropertyAdded, TypeName: typeName, IsEdge: isEdge, Property: np.Key})
			continue
		}
		if op.DataType != np.DataType {
			changes = append(changes, Change{
				Kind: DataTypeChanged, TypeName: typeName, IsEdge: isEdge, Property: np.Key,
				Detail: op.DataType.String() + " -> " + np.DataType.String(),
			})
		}
		switch {
		case op.Mandatory && !np.Mandatory:
			changes = append(changes, Change{Kind: ConstraintRelaxed, TypeName: typeName, IsEdge: isEdge, Property: np.Key,
				Detail: "MANDATORY -> OPTIONAL"})
		case !op.Mandatory && np.Mandatory:
			changes = append(changes, Change{Kind: ConstraintTightened, TypeName: typeName, IsEdge: isEdge, Property: np.Key,
				Detail: "OPTIONAL -> MANDATORY"})
		}
		switch {
		case !op.Unique && np.Unique:
			changes = append(changes, Change{Kind: KeyGained, TypeName: typeName, IsEdge: isEdge, Property: np.Key})
		case op.Unique && !np.Unique:
			changes = append(changes, Change{Kind: KeyLost, TypeName: typeName, IsEdge: isEdge, Property: np.Key})
		}
	}
	newKeys := map[string]struct{}{}
	for i := range new {
		newKeys[new[i].Key] = struct{}{}
	}
	for i := range old {
		if _, ok := newKeys[old[i].Key]; !ok {
			changes = append(changes, Change{Kind: PropertyRemoved, TypeName: typeName, IsEdge: isEdge, Property: old[i].Key})
		}
	}
	return changes
}
