package schema

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"pghive/internal/pg"
)

func TestSymtabInternAssignsDenseIDs(t *testing.T) {
	tab := NewSymtab()
	a := tab.Intern("alpha")
	b := tab.Intern("beta")
	if a != 0 || b != 1 {
		t.Errorf("IDs = %d,%d, want dense 0,1", a, b)
	}
	if tab.Intern("alpha") != a {
		t.Error("re-interning must return the same ID")
	}
	if tab.Str(a) != "alpha" || tab.Str(b) != "beta" {
		t.Error("Str does not invert Intern")
	}
	if id, ok := tab.Lookup("beta"); !ok || id != b {
		t.Error("Lookup failed for interned string")
	}
	if _, ok := tab.Lookup("gamma"); ok {
		t.Error("Lookup succeeded for unseen string")
	}
	if tab.Strings() != 2 {
		t.Errorf("Strings = %d, want 2", tab.Strings())
	}
}

func TestSymtabInternEp(t *testing.T) {
	tab := NewSymtab()
	a := tab.InternEp(pg.ID(42))
	b := tab.InternEp(pg.ID(-7))
	if a != 0 || b != 1 {
		t.Errorf("endpoint indexes = %d,%d, want 0,1", a, b)
	}
	if tab.InternEp(pg.ID(42)) != a {
		t.Error("re-interning an endpoint must return the same index")
	}
	if tab.Ep(b) != pg.ID(-7) {
		t.Error("Ep does not invert InternEp")
	}
	if tab.Endpoints() != 2 {
		t.Errorf("Endpoints = %d, want 2", tab.Endpoints())
	}
}

func encodeSymtab(t testing.TB, tab *Symtab) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := pg.NewWireWriter(&buf)
	WriteSymtab(w, tab)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSymtabRoundTripPreservesIDs(t *testing.T) {
	tab := NewSymtab()
	for _, s := range []string{"Person", "name", "", "a&b", "KNOWS"} {
		tab.Intern(s)
	}
	for _, ep := range []pg.ID{9, 1, -3, 1 << 40} {
		tab.InternEp(ep)
	}
	enc := encodeSymtab(t, tab)
	got, err := ReadSymtab(pg.NewWireReader(bytes.NewReader(enc)))
	if err != nil {
		t.Fatalf("ReadSymtab: %v", err)
	}
	// Exact ID preservation is what keeps a resumed run deterministic.
	for _, s := range []string{"Person", "name", "", "a&b", "KNOWS"} {
		want, _ := tab.Lookup(s)
		if id, ok := got.Lookup(s); !ok || id != want {
			t.Errorf("Lookup(%q) = %d,%t, want %d", s, id, ok, want)
		}
	}
	for _, ep := range []pg.ID{9, 1, -3, 1 << 40} {
		want, _ := tab.LookupEp(ep)
		if ix, ok := got.LookupEp(ep); !ok || ix != want {
			t.Errorf("LookupEp(%d) = %d,%t, want %d", ep, ix, ok, want)
		}
	}
	if re := encodeSymtab(t, got); !bytes.Equal(enc, re) {
		t.Error("re-encoding the decoded symtab differs")
	}
}

func TestSymtabReadRejectsDuplicates(t *testing.T) {
	var buf bytes.Buffer
	w := pg.NewWireWriter(&buf)
	w.Uvarint(2)
	w.String("dup")
	w.String("dup")
	w.Uvarint(0)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSymtab(pg.NewWireReader(bytes.NewReader(buf.Bytes()))); err == nil {
		t.Error("duplicate string entry must be rejected")
	}
}

// FuzzReadSymtab feeds arbitrary bytes to the symtab decoder: it must never
// panic, and whatever decodes successfully must re-encode to a decodable
// table with the same contents (the checkpoint determinism invariant).
func FuzzReadSymtab(f *testing.F) {
	tab := NewSymtab()
	tab.Intern("Person")
	tab.Intern("name")
	tab.InternEp(pg.ID(7))
	tab.InternEp(pg.ID(-1))
	var seed bytes.Buffer
	w := pg.NewWireWriter(&seed)
	WriteSymtab(w, tab)
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x01, 0x41, 0x01, 0x41, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadSymtab(pg.NewWireReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		bw := pg.NewWireWriter(&buf)
		WriteSymtab(bw, got)
		if err := bw.Flush(); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := ReadSymtab(pg.NewWireReader(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatalf("decoded table failed to round-trip: %v", err)
		}
		if again.Strings() != got.Strings() || again.Endpoints() != got.Endpoints() {
			t.Fatalf("round trip changed sizes: (%d,%d) vs (%d,%d)",
				got.Strings(), got.Endpoints(), again.Strings(), again.Endpoints())
		}
	})
}

func TestIDSetOps(t *testing.T) {
	var s IDSet
	for _, id := range []uint32{5, 1, 3, 1, 5} {
		s.Insert(id)
	}
	if len(s) != 3 || s[0] != 1 || s[1] != 3 || s[2] != 5 {
		t.Fatalf("IDSet = %v, want [1 3 5]", s)
	}
	if !s.Contains(3) || s.Contains(2) {
		t.Error("Contains misreports membership")
	}
	u := s.Clone()
	u.Union(IDSet{0, 3, 9})
	if len(u) != 5 || u[0] != 0 || u[4] != 9 {
		t.Errorf("Union = %v, want [0 1 3 5 9]", u)
	}
	if !s.Equal(IDSet{1, 3, 5}) || s.Equal(u) {
		t.Error("Equal misreports")
	}
}

// TestJaccardIDsMatchesStringJaccard is the satellite property test: the
// ID-slice Jaccard must agree exactly with the string-set Jaccard on random
// sets interned through a shared table.
func TestJaccardIDsMatchesStringJaccard(t *testing.T) {
	universe := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := NewSymtab()
		// Pre-intern in random order so IDs are not alphabetical.
		for _, i := range rng.Perm(len(universe)) {
			tab.Intern(universe[i])
		}
		build := func() (StringSet, IDSet) {
			ss := NewStringSet()
			var ids IDSet
			for _, s := range universe {
				if rng.Intn(2) == 0 {
					ss.Add(s)
					ids.Insert(tab.Intern(s))
				}
			}
			return ss, ids
		}
		sa, ia := build()
		sb, ib := build()
		return Jaccard(sa, sb) == JaccardIDs(ia, ib)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestJaccardU64MatchesJaccardIDs pins the uint64 merge-key variant to the
// uint32 one on random sets.
func TestJaccardU64MatchesJaccardIDs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		build := func() (IDSet, []uint64) {
			var ids IDSet
			for v := uint32(0); v < 20; v++ {
				if rng.Intn(2) == 0 {
					ids.Insert(v)
				}
			}
			u := make([]uint64, len(ids))
			for i, id := range ids {
				u[i] = uint64(id)
			}
			return ids, u
		}
		a32, a64 := build()
		b32, b64 := build()
		return JaccardIDs(a32, b32) == JaccardU64(a64, b64)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCounterTableAccumulates(t *testing.T) {
	var c CounterTable
	c.Inc(7)
	c.Inc(3)
	c.Inc(7)
	if c.Distinct() != 2 || c.Max() != 2 {
		t.Errorf("Distinct=%d Max=%d, want 2,2", c.Distinct(), c.Max())
	}
	var d CounterTable
	d.Inc(7)
	d.Inc(1)
	c.Merge(&d)
	if c.Distinct() != 3 || c.Max() != 3 {
		t.Errorf("after merge Distinct=%d Max=%d, want 3,3", c.Distinct(), c.Max())
	}
}
