package schema

import (
	"bytes"
	"reflect"
	"testing"

	"pghive/internal/pg"
)

// checkpointSchema builds a schema with every field of the codec exercised:
// node and edge types, full prop statistics (distinct, duplicated, enum and
// numeric evidence), endpoint labels, degrees and members.
func checkpointSchema() *Schema {
	s := NewSchema()

	person := s.NewType(NodeKind)
	person.AddLabel("Person")
	person.AddLabel("Agent")
	person.Instances = 42
	name := NewPropStat()
	name.Observe(pg.Str("ada"), true)
	name.Observe(pg.Str("bob"), true)
	person.SetProp("name", name)
	age := NewPropStat()
	age.Observe(pg.Int(30), true)
	age.Observe(pg.Int(30), false) // duplicate → dup flag, hashes dropped
	age.Observe(pg.Float(29.5), true)
	person.SetProp("age", age)
	person.Members = []pg.ID{3, 1, 2}
	s.Add(person)

	city := s.NewType(NodeKind)
	city.AddLabel("City")
	city.Instances = 7
	city.Abstract = true
	s.Add(city)

	knows := s.NewType(EdgeKind)
	knows.AddLabel("KNOWS")
	knows.Instances = 9
	since := NewPropStat()
	since.Observe(pg.Int(1999), true)
	knows.SetProp("since", since)
	knows.AddSrcLabel("Person")
	knows.AddDstLabel("Person")
	knows.AddDstLabel("City")
	knows.AddOutDeg(pg.ID(1), 3)
	knows.AddOutDeg(pg.ID(2), 1)
	knows.AddInDeg(pg.ID(3), 4)
	s.Add(knows)

	return s
}

func encodeSchema(t *testing.T, s *Schema) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := pg.NewWireWriter(&buf)
	if err := WriteSchema(w, s); err != nil {
		t.Fatalf("WriteSchema: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

func TestSchemaCheckpointRoundTrip(t *testing.T) {
	s := checkpointSchema()
	enc := encodeSchema(t, s)

	got, err := ReadSchema(pg.NewWireReader(bytes.NewReader(enc)))
	if err != nil {
		t.Fatalf("ReadSchema: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("round trip changed the schema:\nwrote %+v\nread  %+v", s, got)
	}

	// Determinism: encoding the decoded schema reproduces the bytes.
	if re := encodeSchema(t, got); !bytes.Equal(enc, re) {
		t.Errorf("re-encoding differs: %d vs %d bytes", len(enc), len(re))
	}
}

func TestSchemaCheckpointDeterministic(t *testing.T) {
	a := encodeSchema(t, checkpointSchema())
	b := encodeSchema(t, checkpointSchema())
	if !bytes.Equal(a, b) {
		t.Error("two encodings of equal schemas differ")
	}
}

func TestSchemaCheckpointTruncated(t *testing.T) {
	enc := encodeSchema(t, checkpointSchema())
	for _, cut := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
		if _, err := ReadSchema(pg.NewWireReader(bytes.NewReader(enc[:cut]))); err == nil {
			t.Errorf("decoding %d/%d bytes succeeded, want error", cut, len(enc))
		}
	}
}

func TestValueStatRoundTripPreservesDistinctness(t *testing.T) {
	// A distinct accumulator must keep certifying uniqueness after resume:
	// the restored hash set catches a duplicate of a pre-checkpoint value.
	v := NewValueStat()
	v.Observe(pg.Str("a"))
	v.Observe(pg.Str("b"))

	var buf bytes.Buffer
	w := pg.NewWireWriter(&buf)
	v.encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := decodeValueStat(pg.NewWireReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatalf("decodeValueStat: %v", err)
	}
	if !got.AllDistinct() {
		t.Fatal("restored stat lost distinctness")
	}
	got.Observe(pg.Str("a"))
	if got.AllDistinct() {
		t.Error("restored stat failed to detect duplicate of pre-checkpoint value")
	}
}
