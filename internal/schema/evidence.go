package schema

import (
	"fmt"
	"math"

	"pghive/internal/pg"
	"pghive/internal/sketch"
)

// Memory-bounded evidence (ROADMAP item 5): exact per-endpoint degree
// tables and exact distinct-value hash sets grow with the graph, so a
// bounded-memory run swaps them for sketches — HyperLogLog for distinct
// counts, a space-saving top-k plus conservative-update count-min for
// degree maxima, and an HLL-backed uniqueness check with an exact
// "dup front" window for key constraints. The EvidencePolicy decides the
// mode and sketch parameters; it hangs off the Symtab (every Type reads it
// through t.tab) and is set by the pipeline from Config.MemBudgetBytes.
//
// Degree sketches are keyed by the raw global endpoint pg.ID, not the
// symtab-local interned index: sketch contents cannot be enumerated, so a
// cross-shard remap is impossible — with global keys none is needed, and
// shards merge by merging sketch state directly.

// EvidencePolicy selects the evidence mode and sketch parameters for one
// pipeline. A nil policy means exact evidence (today's behavior).
type EvidencePolicy struct {
	// SketchDegrees replaces exact CounterTables with degree sketches.
	SketchDegrees bool
	// SketchValues replaces the exact distinct-value hash set with an
	// HLL-backed uniqueness check.
	SketchValues bool

	// DegreeTopK is the space-saving capacity per degree direction.
	DegreeTopK int
	// CMSLogWidth/CMSDepth shape the count-min table per degree direction.
	CMSLogWidth int
	CMSDepth    int
	// HLLPrecision is the register-count exponent for all HLLs.
	HLLPrecision int

	// EnumByteCap bounds the total rendered bytes retained for enum
	// detection (applies in both modes; 0 = DefaultEnumByteCap).
	EnumByteCap int
	// DupFrontCap is the exact dup-front window size in sketched value
	// mode (0 = DefaultDupFrontCap).
	DupFrontCap int
}

// PolicyForBudget derives the evidence policy for a pipeline memory
// budget. A non-positive budget means unbounded: exact evidence (nil).
// Tiers trade sketch resolution for space — the per-edge-type cost is
// dominated by two count-min tables (depth × 2^logW × 4 B each).
func PolicyForBudget(budget int64) *EvidencePolicy {
	if budget <= 0 {
		return nil
	}
	p := &EvidencePolicy{
		SketchDegrees: true,
		SketchValues:  true,
		DegreeTopK:    sketch.DefaultTopK,
		CMSDepth:      sketch.DefaultCMSDepth,
		EnumByteCap:   DefaultEnumByteCap,
		DupFrontCap:   DefaultDupFrontCap,
	}
	switch {
	case budget < 128<<20:
		// HLL stays at p=12 even here: the 3 KiB saved at p=10 is noise
		// next to the CMS tables, and the ±3.2% error (±9.7% at 3σ) is
		// wide enough to falsely certify near-distinct degree streams as
		// all-distinct (max() in evidence.go) — p=12 halves the band.
		p.HLLPrecision = sketch.DefaultHLLPrecision // 4 KiB, ±1.6%
		p.CMSLogWidth = 12                          // 64 KiB per direction
		p.DegreeTopK = 16
	case budget < 512<<20:
		p.HLLPrecision = sketch.DefaultHLLPrecision // 4 KiB, ±1.6%
		p.CMSLogWidth = sketch.DefaultCMSLogWidth   // 256 KiB
	default:
		p.HLLPrecision = 14 // 16 KiB, ±0.8%
		p.CMSLogWidth = 16  // 1 MiB
		p.DegreeTopK = 64
	}
	return p
}

func (p *EvidencePolicy) enumByteCap() int {
	if p == nil || p.EnumByteCap <= 0 {
		return DefaultEnumByteCap
	}
	return p.EnumByteCap
}

func (p *EvidencePolicy) dupFrontCap() int {
	if p == nil || p.DupFrontCap <= 0 {
		return DefaultDupFrontCap
	}
	return p.DupFrontCap
}

func (p *EvidencePolicy) hllPrecision() int {
	if p == nil || p.HLLPrecision <= 0 {
		return sketch.DefaultHLLPrecision
	}
	return p.HLLPrecision
}

// SetEvidencePolicy installs the policy on the intern table (types read it
// through their tab binding) and on every value accumulator already in the
// schema — a decoded checkpoint carries sketch state but not the policy,
// so the pipeline re-installs it after ReadSchema.
func (s *Schema) SetEvidencePolicy(p *EvidencePolicy) {
	s.Tab.SetEvidencePolicy(p)
	for _, types := range [][]*Type{s.NodeTypes, s.EdgeTypes} {
		for _, t := range types {
			for i := 0; i < t.props.Len(); i++ {
				_, ps := t.props.At(i)
				ps.Values.pol = p
			}
		}
	}
}

// nanBits is the single bit pattern all NaNs hash to, mirroring the old
// rendered-string path where every NaN printed "NaN".
var nanBits = math.Float64bits(math.NaN())

// hashValue returns a 64-bit FNV-1a hash of (kind, payload) without
// allocating — the hot-path replacement for hashing the rendered string
// through a fresh fnv.New64a(). The induced equality matches the rendered
// form exactly: timestamps hash their Unix seconds (RFC3339 rendering has
// second precision and pg.Timestamp/Date are always UTC), and NaNs
// collapse to one pattern.
func hashValue(v pg.Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(byte(v.Kind()))
	h *= prime64
	switch v.Kind() {
	case pg.KindInt:
		h = hash8(h, uint64(v.AsInt()))
	case pg.KindFloat:
		bits := math.Float64bits(v.AsFloat())
		if v.AsFloat() != v.AsFloat() {
			bits = nanBits
		}
		h = hash8(h, bits)
	case pg.KindBool:
		if v.AsBool() {
			h ^= 1
		}
		h *= prime64
	case pg.KindDate, pg.KindTimestamp:
		h = hash8(h, uint64(v.AsTime().Unix()))
	case pg.KindString:
		s := v.AsString()
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	return h
}

func hash8(h, x uint64) uint64 {
	const prime64 = 1099511628211
	for i := 0; i < 64; i += 8 {
		h ^= (x >> i) & 0xff
		h *= prime64
	}
	return h
}

// degreeSketch is the bounded-memory replacement for an exact
// CounterTable: an HLL estimates the distinct-endpoint count, a
// space-saving summary monitors the heaviest endpoints, and a
// conservative-update count-min tightens their counts. Keys are raw
// global endpoint IDs, so sketches from different shards merge directly.
type degreeSketch struct {
	hll   *sketch.HLL
	cms   *sketch.CountMin
	top   *sketch.TopK
	total uint64 // observations (sum of all per-key counts)
}

func newDegreeSketch(pol *EvidencePolicy) *degreeSketch {
	logW, depth, topK := sketch.DefaultCMSLogWidth, sketch.DefaultCMSDepth, sketch.DefaultTopK
	if pol != nil {
		if pol.CMSLogWidth > 0 {
			logW = pol.CMSLogWidth
		}
		if pol.CMSDepth > 0 {
			depth = pol.CMSDepth
		}
		if pol.DegreeTopK > 0 {
			topK = pol.DegreeTopK
		}
	}
	return &degreeSketch{
		hll: sketch.NewHLL(pol.hllPrecision()),
		cms: sketch.NewCountMin(logW, depth),
		top: sketch.NewTopK(topK),
	}
}

// newDegreeSketchLike returns an empty sketch with other's parameters, so
// a merge target built lazily always matches the source's shape.
func newDegreeSketchLike(other *degreeSketch) *degreeSketch {
	return &degreeSketch{
		hll: sketch.NewHLL(other.hll.Precision()),
		cms: other.cms.CloneEmpty(),
		top: sketch.NewTopK(other.top.K()),
	}
}

func (d *degreeSketch) observe(key uint64) {
	d.hll.Add(key)
	d.cms.Inc(key)
	d.top.Offer(key)
	d.total++
}

func (d *degreeSketch) addN(key uint64, n uint32) {
	if n == 0 {
		return
	}
	d.hll.Add(key)
	d.cms.IncN(key, n)
	d.top.OfferN(key, uint64(n))
	d.total += uint64(n)
}

func (d *degreeSketch) merge(other *degreeSketch) error {
	if err := d.hll.Merge(other.hll); err != nil {
		return err
	}
	if err := d.cms.Merge(other.cms); err != nil {
		return err
	}
	d.total += other.total
	return d.top.Merge(other.top)
}

func (d *degreeSketch) distinct() uint64 { return d.hll.Estimate() }

// max estimates the maximum per-key count: for each monitored heavy
// hitter, both its space-saving count and its count-min estimate are
// upper bounds, so their minimum is the tightest available; the maximum
// over monitored keys estimates the stream maximum (the true-max key is
// monitored whenever its count exceeds the space-saving floor).
//
// An all-distinct certificate runs first: when the HLL's distinct
// estimate reaches the observation total (within three standard errors),
// statistically every key appeared once and the maximum is 1. Neither
// upper-bound structure can certify small maxima on its own — count-min
// collisions and space-saving inflation both grow with the distinct
// count, exactly when the true maximum is smallest. The certificate is
// what keeps `*:1` cardinalities (every comment has one creator) from
// degrading to M:N under a budget; its known failure mode is a hub
// below the space-saving floor (~total/k) hidden in an otherwise
// degree-1 stream, which is under the resolution of any fixed-size
// summary at these parameters.
func (d *degreeSketch) max() int {
	if d.total > 0 {
		if est := float64(d.hll.Estimate()); est >= (1-3*d.hll.RelativeError())*float64(d.total) {
			return 1
		}
	}
	var best uint64
	for _, e := range d.top.Entries() {
		ub := e.Count
		if c := uint64(d.cms.Estimate(e.Key)); c < ub {
			ub = c
		}
		if ub > best {
			best = ub
		}
	}
	return int(best)
}

func (d *degreeSketch) clone() *degreeSketch {
	return &degreeSketch{hll: d.hll.Clone(), cms: d.cms.Clone(), top: d.top.Clone(), total: d.total}
}

func (d *degreeSketch) memBytes() int64 {
	return int64(d.hll.MemBytes()+d.cms.MemBytes()+d.top.MemBytes()) + 8
}

func (d *degreeSketch) write(w *pg.WireWriter) {
	d.hll.Write(w)
	d.cms.Write(w)
	d.top.Write(w)
	w.Uvarint(d.total)
}

func readDegreeSketch(r *pg.WireReader) (*degreeSketch, error) {
	hll, err := sketch.ReadHLL(r)
	if err != nil {
		return nil, err
	}
	cms, err := sketch.ReadCountMin(r)
	if err != nil {
		return nil, err
	}
	top, err := sketch.ReadTopK(r)
	if err != nil {
		return nil, err
	}
	total, err := r.Uvarint(^uint64(0))
	if err != nil {
		return nil, err
	}
	return &degreeSketch{hll: hll, cms: cms, top: top, total: total}, nil
}

// ObserveKey records one incidence of a raw global endpoint ID in sketched
// mode. Observations accumulate in a flat pending buffer (candidate types
// are short-lived; allocating three sketches per candidate would dominate
// the hot path) and fold into sketches lazily at merge/query/encode time.
func (c *CounterTable) ObserveKey(key uint64) {
	c.sketched = true
	c.rawPending = append(c.rawPending, key)
}

// Sketched reports whether the table holds sketched evidence.
func (c *CounterTable) Sketched() bool { return c.sketched }

// fold drains the raw pending buffer into the sketches, allocating them
// from pol on first use.
func (c *CounterTable) fold(pol *EvidencePolicy) {
	if len(c.rawPending) == 0 {
		return
	}
	if c.sk == nil {
		c.sk = newDegreeSketch(pol)
	}
	for _, k := range c.rawPending {
		c.sk.observe(k)
	}
	c.rawPending = nil
}

func (c *CounterTable) distinctSketched(pol *EvidencePolicy) int {
	c.fold(pol)
	if c.sk == nil {
		return 0
	}
	return int(c.sk.distinct())
}

func (c *CounterTable) maxSketched(pol *EvidencePolicy) int {
	c.fold(pol)
	if c.sk == nil {
		return 0
	}
	return c.sk.max()
}

// mergeEvidence folds other into c in whichever mode the two tables carry.
// Both exact: the ordinary sorted merge (translating other's endpoint
// indexes through eps when remapping across symtabs). Any side sketched:
// everything funnels into c's sketches — exact entries are converted
// through tab (interned index → raw pg.ID), sketch state merges directly
// (raw keys need no remap), and pending buffers replay. tab must be c's
// own table; eps translates other's exact indexes into it.
func (c *CounterTable) mergeEvidence(other *CounterTable, eps []uint32, tab *Symtab, pol *EvidencePolicy) {
	if !c.sketched && !other.sketched {
		c.MergeRemapped(other, eps)
		return
	}
	c.sketched = true
	if c.sk == nil {
		if other.sk != nil {
			c.sk = newDegreeSketchLike(other.sk)
		} else {
			c.sk = newDegreeSketch(pol)
		}
	}
	// Own residual exact entries and pending raw keys first.
	c.normalize()
	for i, id := range c.ids {
		c.sk.addN(uint64(tab.Ep(id)), c.counts[i])
	}
	c.ids, c.counts = nil, nil
	for _, k := range c.rawPending {
		c.sk.observe(k)
	}
	c.rawPending = nil
	// Then other's evidence.
	other.normalize()
	for i, id := range other.ids {
		tid := id
		if eps != nil {
			tid = eps[id]
		}
		c.sk.addN(uint64(tab.Ep(tid)), other.counts[i])
	}
	if other.sk != nil {
		if err := c.sk.merge(other.sk); err != nil {
			panic(fmt.Sprintf("schema: degree sketch merge: %v", err))
		}
	}
	for _, k := range other.rawPending {
		c.sk.observe(k)
	}
}

// memBytes estimates the table's retained size.
func (c *CounterTable) memBytes() int64 {
	b := int64(len(c.ids)+len(c.counts)+len(c.pending))*4 + int64(len(c.rawPending))*8
	if c.sk != nil {
		b += c.sk.memBytes()
	}
	return b
}

// EvidenceBytes estimates the schema's retained evidence footprint: the
// intern table, label sets, members, property statistics (including value
// sketches or hash sets) and degree tables. It is an accounting estimate
// (map overheads are approximated), cheap enough to publish as a gauge
// after every batch and to check against the memory budget.
func (s *Schema) EvidenceBytes() int64 {
	var b int64
	for _, str := range s.Tab.strs {
		b += int64(len(str)) + 48 // string + map entry overhead
	}
	b += int64(len(s.Tab.eps)) * 24 // eps slice + byEp map entry
	for _, types := range [][]*Type{s.NodeTypes, s.EdgeTypes} {
		for _, t := range types {
			b += t.evidenceBytes()
		}
	}
	return b
}

func (t *Type) evidenceBytes() int64 {
	b := int64(len(t.labels)+len(t.srcLabels)+len(t.dstLabels)) * 4
	b += int64(len(t.Members)) * 8
	for i := 0; i < t.props.Len(); i++ {
		_, p := t.props.At(i)
		b += 128 // PropStat struct + kind count maps
		b += p.Values.MemBytes()
	}
	b += t.outDeg.memBytes() + t.inDeg.memBytes()
	return b
}
