package schema

import "sort"

// Cross-symtab ID translation: every shard of a sharded discovery run interns
// against its own Symtab, so the same label can carry different dense IDs in
// different shards. A Remap is the bridge — one dense lookup table per ID
// namespace (strings, endpoints), built by interning every symbol of the
// source table into the destination. Because interning is injective, the
// tables are injective too: remapping an IDSet never collapses elements, so
// the monotone-merge guarantees (Lemmas 1-2) survive the translation.

// DebugSameTab restores the pre-sharding invariant check: when set,
// Type.Merge panics on types from different intern tables instead of
// remapping. Discovery inside one pipeline always merges same-tab types, so
// enabling this in tests catches accidental cross-pipeline merges that
// should have gone through MergeSchemas.
var DebugSameTab = false

// Remap translates interned IDs minted by one Symtab into another's.
// The zero value (or a nil *Remap) is the identity.
type Remap struct {
	strs []uint32 // source string ID → destination string ID
	eps  []uint32 // source endpoint index → destination endpoint index
}

// NewRemap builds the translation from src to dst, interning every one of
// src's strings and endpoint IDs into dst. Symbols are visited in src's
// assignment order, so the IDs dst mints for previously unseen symbols are
// deterministic — merging shards in a fixed order yields one reproducible
// global symtab.
func NewRemap(src, dst *Symtab) *Remap {
	rm := &Remap{
		strs: make([]uint32, len(src.strs)),
		eps:  make([]uint32, len(src.eps)),
	}
	for i, s := range src.strs {
		rm.strs[i] = dst.Intern(s)
	}
	for i, ep := range src.eps {
		rm.eps[i] = dst.InternEp(ep)
	}
	return rm
}

// Str translates a source string ID.
func (rm *Remap) Str(id uint32) uint32 {
	if rm == nil {
		return id
	}
	return rm.strs[id]
}

// Ep translates a source endpoint index.
func (rm *Remap) Ep(ix uint32) uint32 {
	if rm == nil {
		return ix
	}
	return rm.eps[ix]
}

// StrTable returns the string translation table (nil for the identity).
func (rm *Remap) StrTable() []uint32 {
	if rm == nil {
		return nil
	}
	return rm.strs
}

// EpTable returns the endpoint translation table (nil for the identity).
func (rm *Remap) EpTable() []uint32 {
	if rm == nil {
		return nil
	}
	return rm.eps
}

// RemapIDs maps a sorted IDSet through a translation table, returning a
// fresh sorted IDSet. A nil table is the identity (the set is cloned). The
// table need not be monotone — destination symtabs assign IDs in their own
// observation order — so the result is re-sorted; injectivity of interning
// guarantees the output has the same cardinality as the input.
func RemapIDs(ids IDSet, table []uint32) IDSet {
	if len(ids) == 0 {
		return nil
	}
	out := make(IDSet, len(ids))
	if table == nil {
		copy(out, ids)
		return out
	}
	sorted := true
	for i, id := range ids {
		out[i] = table[id]
		if i > 0 && out[i] <= out[i-1] {
			sorted = false
		}
	}
	if !sorted {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out
}

// MergeRemapped folds other's counts into c, translating other's endpoint
// indexes through eps first (nil eps = plain Merge). other is normalized but
// its counts are not mutated.
func (c *CounterTable) MergeRemapped(other *CounterTable, eps []uint32) {
	if eps == nil {
		c.Merge(other)
		return
	}
	other.normalize()
	if len(other.ids) == 0 {
		c.normalize()
		return
	}
	// Build the translated view as an (id, count) pair list, sort it by the
	// destination id, and reuse the ordinary sorted merge.
	tmp := CounterTable{
		ids:    make([]uint32, len(other.ids)),
		counts: make([]uint32, len(other.ids)),
	}
	for i, id := range other.ids {
		tmp.ids[i] = eps[id]
		tmp.counts[i] = other.counts[i]
	}
	sort.Sort(&counterPairs{&tmp})
	c.Merge(&tmp)
}

// counterPairs sorts a CounterTable's parallel id/count slices by id
// (translation through an arbitrary table can break the sorted invariant).
type counterPairs struct{ c *CounterTable }

func (p *counterPairs) Len() int           { return len(p.c.ids) }
func (p *counterPairs) Less(i, j int) bool { return p.c.ids[i] < p.c.ids[j] }
func (p *counterPairs) Swap(i, j int) {
	p.c.ids[i], p.c.ids[j] = p.c.ids[j], p.c.ids[i]
	p.c.counts[i], p.c.counts[j] = p.c.counts[j], p.c.counts[i]
}

// MergeRemapped folds other into t, translating every interned ID of other
// through rm (nil = identity; other must then share t's table). t's own tab
// binding is unchanged — rm must map into t's table. Evidence accumulators
// (PropStat) are merged by value, so other remains structurally intact but
// must not be merged anywhere else afterwards (its evidence is now counted
// in t).
func (t *Type) MergeRemapped(other *Type, rm *Remap) {
	if t.Kind != other.Kind {
		panic("schema: merging types of different kinds")
	}
	t.labels.Union(RemapIDs(other.labels, rm.StrTable()))
	pol := t.tab.Evidence()
	for i := 0; i < other.props.Len(); i++ {
		id, p := other.props.At(i)
		t.props.getOrCreatePol(rm.Str(id), pol).Merge(p)
	}
	t.Instances += other.Instances
	if t.Kind == EdgeKind {
		t.srcLabels.Union(RemapIDs(other.srcLabels, rm.StrTable()))
		t.dstLabels.Union(RemapIDs(other.dstLabels, rm.StrTable()))
		t.outDeg.mergeEvidence(&other.outDeg, rm.EpTable(), t.tab, pol)
		t.inDeg.mergeEvidence(&other.inDeg, rm.EpTable(), t.tab, pol)
	}
	t.Members = append(t.Members, other.Members...)
	if t.Labeled() {
		t.Abstract = false
	}
}

// RebindRemapped rebinds t in place to tab, translating every interned ID
// through rm. After the call t behaves exactly as if its evidence had been
// interned against tab from the start. The shard-merge driver uses this to
// lift a finished shard type into the global symtab without deep-copying
// its evidence; the source schema must be discarded afterwards.
func (t *Type) RebindRemapped(tab *Symtab, rm *Remap) {
	t.tab = tab
	t.labels = RemapIDs(t.labels, rm.StrTable())
	t.remapProps(rm)
	if t.Kind == EdgeKind {
		t.srcLabels = RemapIDs(t.srcLabels, rm.StrTable())
		t.dstLabels = RemapIDs(t.dstLabels, rm.StrTable())
		t.outDeg.remapInPlace(rm.EpTable())
		t.inDeg.remapInPlace(rm.EpTable())
	}
}

// remapProps translates the property table's key IDs, restoring the
// sorted-parallel-slices invariant under the new ID order.
func (t *Type) remapProps(rm *Remap) {
	table := rm.StrTable()
	if table == nil || t.props.Len() == 0 {
		return
	}
	for i, id := range t.props.ids {
		t.props.ids[i] = table[id]
	}
	sort.Sort(&propPairs{&t.props})
}

// propPairs sorts a PropTable's parallel id/stat slices by id.
type propPairs struct{ pt *PropTable }

func (p *propPairs) Len() int           { return len(p.pt.ids) }
func (p *propPairs) Less(i, j int) bool { return p.pt.ids[i] < p.pt.ids[j] }
func (p *propPairs) Swap(i, j int) {
	p.pt.ids[i], p.pt.ids[j] = p.pt.ids[j], p.pt.ids[i]
	p.pt.stats[i], p.pt.stats[j] = p.pt.stats[j], p.pt.stats[i]
}

// remapInPlace translates the counter's endpoint indexes through table and
// re-sorts (nil table = no-op beyond normalization). Sketched state (sk,
// rawPending) is keyed by raw global endpoint IDs and passes through
// untouched — that is the invariant that makes sketches shard-mergeable.
func (c *CounterTable) remapInPlace(table []uint32) {
	c.normalize()
	if table == nil || len(c.ids) == 0 {
		return
	}
	for i, id := range c.ids {
		c.ids[i] = table[id]
	}
	sort.Sort(&counterPairs{c})
}
