package schema

import (
	"strings"
	"testing"

	"pghive/internal/pg"
)

func defWith(nodes []NodeTypeDef, edges []EdgeTypeDef) *Def {
	return &Def{Nodes: nodes, Edges: edges}
}

func TestDiffNoChanges(t *testing.T) {
	d := defWith(
		[]NodeTypeDef{{Name: "A", Properties: []PropertyDef{{Key: "x", DataType: pg.KindInt, Mandatory: true}}}},
		[]EdgeTypeDef{{Name: "R", Cardinality: CardMN}},
	)
	if changes := Diff(d, d); len(changes) != 0 {
		t.Errorf("identical defs should diff empty, got %v", changes)
	}
}

func TestDiffTypeAddedRemoved(t *testing.T) {
	old := defWith([]NodeTypeDef{{Name: "A"}}, nil)
	new := defWith([]NodeTypeDef{{Name: "B"}}, nil)
	changes := Diff(old, new)
	if len(changes) != 2 {
		t.Fatalf("got %v, want added B + removed A", changes)
	}
	if changes[0].Kind != TypeAdded || changes[0].TypeName != "B" {
		t.Errorf("first change = %v, want B added", changes[0])
	}
	if changes[1].Kind != TypeRemoved || changes[1].TypeName != "A" {
		t.Errorf("second change = %v, want A removed", changes[1])
	}
}

func TestDiffPropertyLifecycle(t *testing.T) {
	old := defWith([]NodeTypeDef{{Name: "A", Properties: []PropertyDef{
		{Key: "keep", DataType: pg.KindInt, Mandatory: true},
		{Key: "gone", DataType: pg.KindString},
	}}}, nil)
	new := defWith([]NodeTypeDef{{Name: "A", Properties: []PropertyDef{
		{Key: "keep", DataType: pg.KindFloat, Mandatory: false}, // widened + relaxed
		{Key: "fresh", DataType: pg.KindBool},
	}}}, nil)
	changes := Diff(old, new)
	byKind := map[ChangeKind]int{}
	for _, c := range changes {
		byKind[c.Kind]++
	}
	want := map[ChangeKind]int{
		PropertyAdded: 1, PropertyRemoved: 1, DataTypeChanged: 1, ConstraintRelaxed: 1,
	}
	for k, n := range want {
		if byKind[k] != n {
			t.Errorf("%v count = %d, want %d (all: %v)", k, byKind[k], n, changes)
		}
	}
}

func TestDiffConstraintTightened(t *testing.T) {
	old := defWith([]NodeTypeDef{{Name: "A", Properties: []PropertyDef{{Key: "x", Mandatory: false}}}}, nil)
	new := defWith([]NodeTypeDef{{Name: "A", Properties: []PropertyDef{{Key: "x", Mandatory: true}}}}, nil)
	changes := Diff(old, new)
	if len(changes) != 1 || changes[0].Kind != ConstraintTightened {
		t.Errorf("changes = %v, want one tightening", changes)
	}
}

func TestDiffCardinalityChanged(t *testing.T) {
	old := defWith(nil, []EdgeTypeDef{{Name: "R", Cardinality: CardZeroOne}})
	new := defWith(nil, []EdgeTypeDef{{Name: "R", Cardinality: CardZeroN}})
	changes := Diff(old, new)
	if len(changes) != 1 || changes[0].Kind != CardinalityChanged {
		t.Fatalf("changes = %v, want one cardinality change", changes)
	}
	if changes[0].Detail != "0:1 -> 0:N" {
		t.Errorf("Detail = %q", changes[0].Detail)
	}
	if !changes[0].IsEdge {
		t.Error("cardinality change should be on an edge type")
	}
}

// TestDiffAmpersandLabelNoAliasing: the netstring diff key must keep a
// single label containing the display separator '&' distinct from the
// two-label set it renders like — "a&b" and {a, b} are different types, not
// an unchanged one.
func TestDiffAmpersandLabelNoAliasing(t *testing.T) {
	old := defWith([]NodeTypeDef{{Name: "T1", Labels: []string{"a&b"}}}, nil)
	new := defWith([]NodeTypeDef{{Name: "T2", Labels: []string{"a", "b"}}}, nil)
	changes := Diff(old, new)
	byKind := map[ChangeKind]int{}
	for _, c := range changes {
		byKind[c.Kind]++
	}
	if byKind[TypeAdded] != 1 || byKind[TypeRemoved] != 1 {
		t.Errorf("aliased '&' label: got %v, want one added + one removed", changes)
	}
	// And the same label set must match regardless of declared order.
	reordered := defWith([]NodeTypeDef{{Name: "T3", Labels: []string{"b", "a"}}}, nil)
	if changes := Diff(new, reordered); len(changes) != 0 {
		t.Errorf("label order changed the diff key: %v", changes)
	}
}

// TestDiffCardinalityTightenVsWiden: both directions are reported, and the
// detail string keeps them distinguishable for the drift report.
func TestDiffCardinalityTightenVsWiden(t *testing.T) {
	one := defWith(nil, []EdgeTypeDef{{Name: "R", Cardinality: CardZeroOne}})
	many := defWith(nil, []EdgeTypeDef{{Name: "R", Cardinality: CardMN}})

	widen := Diff(one, many)
	if len(widen) != 1 || widen[0].Kind != CardinalityChanged || widen[0].Detail != "0:1 -> M:N" {
		t.Errorf("widening diff = %v, want one 0:1 -> M:N change", widen)
	}
	tighten := Diff(many, one)
	if len(tighten) != 1 || tighten[0].Kind != CardinalityChanged || tighten[0].Detail != "M:N -> 0:1" {
		t.Errorf("tightening diff = %v, want one M:N -> 0:1 change", tighten)
	}
}

func TestDiffReportCounts(t *testing.T) {
	old := defWith([]NodeTypeDef{{Name: "A"}}, nil)
	new := defWith([]NodeTypeDef{{Name: "A"}, {Name: "B"}, {Name: "C"}}, nil)
	rep := NewDiffReport(Diff(old, new))
	if rep.Empty() || rep.Counts["type_added"] != 2 {
		t.Errorf("report = %+v, want 2 type_added", rep)
	}
	if self := NewDiffReport(Diff(old, old)); !self.Empty() || self.Counts != nil {
		t.Errorf("self-diff report = %+v, want empty with nil counts", self)
	}
}

func TestDiffIncrementalMonotone(t *testing.T) {
	// A snapshot diffed against a later (grown) snapshot has no removals.
	old := defWith([]NodeTypeDef{
		{Name: "A", Properties: []PropertyDef{{Key: "x", DataType: pg.KindInt, Mandatory: true}}},
	}, nil)
	new := defWith([]NodeTypeDef{
		{Name: "A", Properties: []PropertyDef{
			{Key: "x", DataType: pg.KindInt, Mandatory: false},
			{Key: "y", DataType: pg.KindString},
		}},
		{Name: "B"},
	}, nil)
	for _, c := range Diff(old, new) {
		if c.Kind == TypeRemoved || c.Kind == PropertyRemoved {
			t.Errorf("monotone growth should not produce removals: %v", c)
		}
	}
}

func TestChangeString(t *testing.T) {
	c := Change{Kind: DataTypeChanged, TypeName: "A", Property: "x", Detail: "INT -> DOUBLE"}
	s := c.String()
	for _, want := range []string{"node type A", "data type changed", "x", "INT -> DOUBLE"} {
		if !strings.Contains(s, want) {
			t.Errorf("String = %q missing %q", s, want)
		}
	}
}

func TestDiffKeyTransitions(t *testing.T) {
	old := defWith([]NodeTypeDef{{Name: "A", Properties: []PropertyDef{
		{Key: "id", Unique: true},
		{Key: "code", Unique: false},
	}}}, nil)
	new := defWith([]NodeTypeDef{{Name: "A", Properties: []PropertyDef{
		{Key: "id", Unique: false}, // a duplicate arrived
		{Key: "code", Unique: true},
	}}}, nil)
	changes := Diff(old, new)
	kinds := map[ChangeKind]string{}
	for _, c := range changes {
		kinds[c.Kind] = c.Property
	}
	if kinds[KeyLost] != "id" {
		t.Errorf("want key lost on id, got %v", changes)
	}
	if kinds[KeyGained] != "code" {
		t.Errorf("want key gained on code, got %v", changes)
	}
}
