package schema

import (
	"fmt"
	"testing"
	"testing/quick"

	"pghive/internal/pg"
)

func TestValueStatAllDistinct(t *testing.T) {
	s := NewValueStat()
	for i := 0; i < 100; i++ {
		s.Observe(pg.Int(int64(i)))
	}
	if !s.AllDistinct() {
		t.Error("100 distinct ints should be AllDistinct")
	}
	s.Observe(pg.Int(5))
	if s.AllDistinct() {
		t.Error("duplicate should clear AllDistinct")
	}
	// Further observations keep it cleared.
	s.Observe(pg.Int(999))
	if s.AllDistinct() {
		t.Error("AllDistinct must stay false")
	}
}

func TestValueStatKindDisambiguation(t *testing.T) {
	// Int(1) and Str("1") render identically but differ in kind; they must
	// not count as duplicates.
	s := NewValueStat()
	s.Observe(pg.Int(1))
	s.Observe(pg.Str("1"))
	if !s.AllDistinct() {
		t.Error("same text, different kinds should stay distinct")
	}
}

func TestValueStatEnum(t *testing.T) {
	s := NewValueStat()
	for i := 0; i < 50; i++ {
		s.Observe(pg.Str([]string{"red", "green", "blue"}[i%3]))
	}
	enum := s.EnumValues()
	want := []string{"blue", "green", "red"}
	if len(enum) != 3 || enum[0] != want[0] || enum[1] != want[1] || enum[2] != want[2] {
		t.Errorf("EnumValues = %v, want %v", enum, want)
	}
}

func TestValueStatEnumOverflow(t *testing.T) {
	s := NewValueStat()
	for i := 0; i <= EnumCap; i++ {
		s.Observe(pg.Str(fmt.Sprintf("v%02d", i)))
	}
	if s.EnumValues() != nil {
		t.Errorf("more than %d distinct values should not be an enum", EnumCap)
	}
}

func TestValueStatEmptyEnum(t *testing.T) {
	if NewValueStat().EnumValues() != nil {
		t.Error("empty stat should have no enum")
	}
}

func TestValueStatNumRange(t *testing.T) {
	s := NewValueStat()
	if _, _, ok := s.NumRange(); ok {
		t.Error("empty stat should have no range")
	}
	s.Observe(pg.Int(10))
	s.Observe(pg.Float(-2.5))
	s.Observe(pg.Int(100))
	s.Observe(pg.Str("not numeric"))
	min, max, ok := s.NumRange()
	if !ok || min != -2.5 || max != 100 {
		t.Errorf("range = (%v, %v, %v), want (-2.5, 100, true)", min, max, ok)
	}
}

func TestValueStatMergeDetectsCrossBatchDuplicate(t *testing.T) {
	a, b := NewValueStat(), NewValueStat()
	a.Observe(pg.Int(1))
	a.Observe(pg.Int(2))
	b.Observe(pg.Int(2)) // duplicate across batches
	b.Observe(pg.Int(3))
	a.Merge(b)
	if a.AllDistinct() {
		t.Error("cross-batch duplicate must clear AllDistinct")
	}
}

func TestValueStatMergeKeepsDistinct(t *testing.T) {
	a, b := NewValueStat(), NewValueStat()
	a.Observe(pg.Int(1))
	b.Observe(pg.Int(2))
	a.Merge(b)
	if !a.AllDistinct() {
		t.Error("disjoint values should stay distinct after merge")
	}
}

func TestValueStatMergeCombinesRangesAndEnums(t *testing.T) {
	a, b := NewValueStat(), NewValueStat()
	a.Observe(pg.Int(5))
	a.Observe(pg.Str("x"))
	b.Observe(pg.Int(-5))
	b.Observe(pg.Str("y"))
	a.Merge(b)
	min, max, ok := a.NumRange()
	if !ok || min != -5 || max != 5 {
		t.Errorf("merged range = (%v, %v), want (-5, 5)", min, max)
	}
	if len(a.EnumValues()) != 4 {
		t.Errorf("merged enum = %v, want 4 values", a.EnumValues())
	}
}

func TestValueStatMergePropagatesDup(t *testing.T) {
	a, b := NewValueStat(), NewValueStat()
	b.Observe(pg.Int(1))
	b.Observe(pg.Int(1))
	a.Merge(b)
	if a.AllDistinct() {
		t.Error("merging a dup-containing stat must clear AllDistinct")
	}
}

func TestValueStatQuickDistinctInvariant(t *testing.T) {
	// AllDistinct ⟺ no rendered (kind, value) pair repeats.
	f := func(vals []int16) bool {
		s := NewValueStat()
		seen := map[int16]bool{}
		hasDup := false
		for _, v := range vals {
			if seen[v] {
				hasDup = true
			}
			seen[v] = true
			s.Observe(pg.Int(int64(v)))
		}
		return s.AllDistinct() == !hasDup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCardinalityStringParticipation(t *testing.T) {
	tests := []struct {
		card     Cardinality
		srcTotal bool
		want     string
	}{
		{CardZeroOne, false, "0:1"},
		{CardZeroOne, true, "1:1"},
		{CardZeroN, false, "0:N"},
		{CardZeroN, true, "1:N"},
		{CardNOne, true, "N:1"},
		{CardMN, true, "M:N"},
		{CardUnknown, true, "?"},
	}
	for _, tc := range tests {
		e := &EdgeTypeDef{Cardinality: tc.card, SrcTotal: tc.srcTotal}
		if got := e.CardinalityString(); got != tc.want {
			t.Errorf("CardinalityString(%v, total=%v) = %q, want %q", tc.card, tc.srcTotal, got, tc.want)
		}
	}
}
