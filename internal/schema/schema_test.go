package schema

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pghive/internal/pg"
)

func never(uint32, string) bool  { return false }
func always(uint32, string) bool { return true }

var _ SampleFunc = always

func TestStringSetBasics(t *testing.T) {
	s := NewStringSet("b", "a", "b")
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if !s.Has("a") || s.Has("c") {
		t.Error("Has misreports membership")
	}
	if s.Key() != "1:a1:b" {
		t.Errorf("Key = %q, want 1:a1:b", s.Key())
	}
	// The encoding is length-prefixed so {"a&b"} and {"a","b"} cannot
	// collide the way a plain "&"-join would.
	if NewStringSet("a&b").Key() == NewStringSet("a", "b").Key() {
		t.Error("Key conflates {a&b} with {a,b}")
	}
	c := s.Clone()
	c.Add("z")
	if s.Has("z") {
		t.Error("Clone shares storage")
	}
}

func TestJaccardSet(t *testing.T) {
	tests := []struct {
		a, b []string
		want float64
	}{
		{nil, nil, 1},
		{[]string{"x"}, nil, 0},
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a", "b", "c"}, []string{"b", "c", "d"}, 0.5},
	}
	for _, tc := range tests {
		got := Jaccard(NewStringSet(tc.a...), NewStringSet(tc.b...))
		if got != tc.want {
			t.Errorf("Jaccard(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestObserveNodeAccumulates(t *testing.T) {
	ty := NewType(NewSymtab(), NodeKind)
	ty.ObserveNode(&pg.NodeRecord{ID: 1, Labels: []string{"Person"},
		Props: pg.Properties{"name": pg.Str("a"), "age": pg.Int(3)}}, never, true)
	ty.ObserveNode(&pg.NodeRecord{ID: 2, Labels: []string{"Person", "Student"},
		Props: pg.Properties{"name": pg.Str("b")}}, never, true)
	if ty.Instances != 2 {
		t.Errorf("Instances = %d, want 2", ty.Instances)
	}
	if ty.LabelKey() != "Person&Student" {
		t.Errorf("LabelKey = %q, want Person&Student", ty.LabelKey())
	}
	if ty.Prop("name").Count != 2 || ty.Prop("age").Count != 1 {
		t.Errorf("prop counts = %d,%d, want 2,1", ty.Prop("name").Count, ty.Prop("age").Count)
	}
	if ty.Prop("age").Kinds[pg.KindInt] != 1 {
		t.Error("age INT kind not recorded")
	}
	if len(ty.Members) != 2 {
		t.Errorf("Members = %v, want 2 entries", ty.Members)
	}
}

func TestObserveEdgeAccumulates(t *testing.T) {
	ty := NewType(NewSymtab(), EdgeKind)
	ty.ObserveEdge(&pg.EdgeRecord{ID: 1, Labels: []string{"KNOWS"}, Src: 10, Dst: 20,
		SrcLabels: []string{"Person"}, DstLabels: []string{"Person"},
		Props: pg.Properties{"since": pg.Int(2017)}}, never, false)
	ty.ObserveEdge(&pg.EdgeRecord{ID: 2, Labels: []string{"KNOWS"}, Src: 10, Dst: 30,
		SrcLabels: []string{"Person"}, DstLabels: []string{"Admin"}}, never, false)
	if !ty.SrcLabels().Has("Person") || !ty.DstLabels().Has("Admin") {
		t.Error("endpoint labels not unioned")
	}
	d := ty.MaxDegrees()
	if d.MaxOut != 2 || d.MaxIn != 1 {
		t.Errorf("degrees = %+v, want MaxOut=2 MaxIn=1", d)
	}
	if len(ty.Members) != 0 {
		t.Error("members recorded despite trackMembers=false")
	}
}

func TestObserveKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewType(NewSymtab(), EdgeKind).ObserveNode(&pg.NodeRecord{}, never, false)
}

func TestMergeMonotonicityLemma1(t *testing.T) {
	// Lemma 1: K_i ⊆ K_M and L_i ⊆ L_M — merging never loses node labels
	// or property keys.
	tab := NewSymtab()
	a := NewType(tab, NodeKind)
	a.ObserveNode(&pg.NodeRecord{Labels: []string{"Person"}, Props: pg.Properties{"name": pg.Str("x")}}, never, false)
	b := NewType(tab, NodeKind)
	b.ObserveNode(&pg.NodeRecord{Labels: []string{"Student"}, Props: pg.Properties{"gpa": pg.Float(4)}}, never, false)
	a.Merge(b)
	for _, l := range []string{"Person", "Student"} {
		if !a.HasLabel(l) {
			t.Errorf("label %q lost in merge", l)
		}
	}
	for _, k := range []string{"name", "gpa"} {
		if a.Prop(k) == nil {
			t.Errorf("property %q lost in merge", k)
		}
	}
	if a.Instances != 2 {
		t.Errorf("Instances = %d, want 2", a.Instances)
	}
}

func TestMergeMonotonicityLemma2(t *testing.T) {
	// Lemma 2: endpoints union too.
	tab := NewSymtab()
	a := NewType(tab, EdgeKind)
	a.ObserveEdge(&pg.EdgeRecord{Labels: []string{"LIKES"}, Src: 1, Dst: 2,
		SrcLabels: []string{"Person"}, DstLabels: []string{"Post"}}, never, false)
	b := NewType(tab, EdgeKind)
	b.ObserveEdge(&pg.EdgeRecord{Labels: []string{"LIKES"}, Src: 3, Dst: 4,
		SrcLabels: []string{"Bot"}, DstLabels: []string{"Comment"}}, never, false)
	a.Merge(b)
	if !a.SrcLabels().Has("Person") || !a.SrcLabels().Has("Bot") {
		t.Error("source labels lost")
	}
	if !a.DstLabels().Has("Post") || !a.DstLabels().Has("Comment") {
		t.Error("target labels lost")
	}
}

func TestMergeKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tab := NewSymtab()
	NewType(tab, NodeKind).Merge(NewType(tab, EdgeKind))
}

func TestMergeRescuesAbstract(t *testing.T) {
	tab := NewSymtab()
	a := NewType(tab, NodeKind)
	a.Abstract = true
	a.ObserveNode(&pg.NodeRecord{Props: pg.Properties{"x": pg.Int(1)}}, never, false)
	b := NewType(tab, NodeKind)
	b.ObserveNode(&pg.NodeRecord{Labels: []string{"T"}}, never, false)
	a.Merge(b)
	if a.Abstract {
		t.Error("merge with labeled type should clear Abstract")
	}
}

func TestMergeDegreeEvidenceSums(t *testing.T) {
	// The same source node observed in two batches must sum its out-degree.
	tab := NewSymtab()
	a := NewType(tab, EdgeKind)
	a.ObserveEdge(&pg.EdgeRecord{Labels: []string{"R"}, Src: 1, Dst: 2}, never, false)
	b := NewType(tab, EdgeKind)
	b.ObserveEdge(&pg.EdgeRecord{Labels: []string{"R"}, Src: 1, Dst: 3}, never, false)
	a.Merge(b)
	if a.MaxDegrees().MaxOut != 2 {
		t.Errorf("MaxOut = %d, want 2 after cross-batch merge", a.MaxDegrees().MaxOut)
	}
}

func TestPropStatSampling(t *testing.T) {
	p := NewPropStat()
	p.Observe(pg.Int(1), true)
	p.Observe(pg.Int(2), false)
	p.Observe(pg.Float(1.5), true)
	if p.Count != 3 {
		t.Errorf("Count = %d, want 3", p.Count)
	}
	if p.SampleSize() != 2 {
		t.Errorf("SampleSize = %d, want 2", p.SampleSize())
	}
	if p.Kinds[pg.KindInt] != 2 || p.SampleKinds[pg.KindInt] != 1 {
		t.Error("kind counters wrong")
	}
}

func TestSchemaFindAndCovers(t *testing.T) {
	s := NewSchema()
	ty := s.NewType(NodeKind)
	ty.ObserveNode(&pg.NodeRecord{Labels: []string{"Person"},
		Props: pg.Properties{"name": pg.Str("x"), "age": pg.Int(1)}}, never, false)
	s.Add(ty)
	if s.FindByLabelKey(NodeKind, "Person") != ty {
		t.Error("FindByLabelKey failed")
	}
	if s.FindByLabelKey(NodeKind, "Ghost") != nil {
		t.Error("FindByLabelKey should return nil for unknown key")
	}
	if !s.Covers(NodeKind, []string{"Person"}, []string{"name", "age"}) {
		t.Error("Covers should hold for observed labels+props")
	}
	if s.Covers(NodeKind, []string{"Person"}, []string{"salary"}) {
		t.Error("Covers must fail for unseen property")
	}
	if s.Covers(EdgeKind, nil, nil) {
		t.Error("no edge types: Covers(EdgeKind) with empty requirements should be false")
	}
}

func TestSchemaAllAccessors(t *testing.T) {
	s := NewSchema()
	n := s.NewType(NodeKind)
	n.ObserveNode(&pg.NodeRecord{Labels: []string{"A"}, Props: pg.Properties{"p": pg.Int(1)}}, never, false)
	e := s.NewType(EdgeKind)
	e.ObserveEdge(&pg.EdgeRecord{Labels: []string{"R"}, Props: pg.Properties{"q": pg.Int(1)}}, never, false)
	s.Add(n)
	s.Add(e)
	if !s.AllLabels(NodeKind).Has("A") || !s.AllLabels(EdgeKind).Has("R") {
		t.Error("AllLabels missing entries")
	}
	if !s.AllPropertyKeys(NodeKind).Has("p") || !s.AllPropertyKeys(EdgeKind).Has("q") {
		t.Error("AllPropertyKeys missing entries")
	}
	if len(s.Types(NodeKind)) != 1 || len(s.Types(EdgeKind)) != 1 {
		t.Error("Types split wrong")
	}
}

func TestMergeMonotoneQuick(t *testing.T) {
	// Property-based Lemma 1: for random pairs of node types, every label
	// and key of both inputs survives the merge.
	labels := []string{"A", "B", "C", "D"}
	keys := []string{"k1", "k2", "k3", "k4", "k5"}
	build := func(rng *rand.Rand, tab *Symtab) *Type {
		ty := NewType(tab, NodeKind)
		n := rng.Intn(4) + 1
		for i := 0; i < n; i++ {
			rec := &pg.NodeRecord{Props: pg.Properties{}}
			if rng.Intn(3) > 0 {
				rec.Labels = []string{labels[rng.Intn(len(labels))]}
			}
			for _, k := range keys {
				if rng.Intn(2) == 0 {
					rec.Props[k] = pg.Int(int64(rng.Intn(10)))
				}
			}
			ty.ObserveNode(rec, never, false)
		}
		return ty
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := NewSymtab()
		a, b := build(rng, tab), build(rng, tab)
		wantLabels := a.Labels()
		wantLabels.AddAll(b.Labels())
		wantKeys := a.PropKeySet()
		wantKeys.AddAll(b.PropKeySet())
		wantInstances := a.Instances + b.Instances
		a.Merge(b)
		for l := range wantLabels {
			if !a.HasLabel(l) {
				return false
			}
		}
		for k := range wantKeys {
			if a.Prop(k) == nil {
				return false
			}
		}
		return a.Instances == wantInstances
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCardinalityFromDegrees(t *testing.T) {
	tests := []struct {
		out, in int
		want    Cardinality
	}{
		{1, 1, CardZeroOne},
		{5, 1, CardNOne},
		{1, 7, CardZeroN},
		{3, 3, CardMN},
		{0, 0, CardUnknown},
		{0, 5, CardUnknown},
	}
	for _, tc := range tests {
		got := CardinalityFromDegrees(pg.DegreePair{MaxOut: tc.out, MaxIn: tc.in})
		if got != tc.want {
			t.Errorf("Cardinality(%d,%d) = %v, want %v", tc.out, tc.in, got, tc.want)
		}
	}
}

func TestCardinalityString(t *testing.T) {
	want := map[Cardinality]string{
		CardZeroOne: "0:1", CardNOne: "N:1", CardZeroN: "0:N", CardMN: "M:N", CardUnknown: "?",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Cardinality(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestTypeName(t *testing.T) {
	labeled := NewType(NewSymtab(), NodeKind)
	labeled.AddLabel("Person")
	if TypeName(labeled, 0) != "Person" {
		t.Errorf("TypeName = %q, want Person", TypeName(labeled, 0))
	}
	abstract := NewType(NewSymtab(), NodeKind)
	if TypeName(abstract, 3) != "Abstract3" {
		t.Errorf("TypeName = %q, want Abstract3", TypeName(abstract, 3))
	}
}

func TestDefLookups(t *testing.T) {
	d := &Def{
		Nodes: []NodeTypeDef{{Name: "Person", Properties: []PropertyDef{{Key: "name"}}}},
		Edges: []EdgeTypeDef{{Name: "KNOWS"}},
	}
	if d.NodeType("Person") == nil || d.NodeType("X") != nil {
		t.Error("NodeType lookup wrong")
	}
	if d.EdgeType("KNOWS") == nil || d.EdgeType("X") != nil {
		t.Error("EdgeType lookup wrong")
	}
	if Property(d.Nodes[0].Properties, "name") == nil || Property(d.Nodes[0].Properties, "zz") != nil {
		t.Error("Property lookup wrong")
	}
}
