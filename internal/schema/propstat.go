package schema

import (
	"hash/fnv"
	"sort"

	"pghive/internal/pg"
)

// Value-evidence limits.
const (
	// EnumCap is the maximum number of distinct values a property may have
	// to be reported as an enumeration.
	EnumCap = 16
	// distinctHashCap bounds the memory spent checking uniqueness; beyond
	// it, uniqueness is reported as unknown (not a key).
	distinctHashCap = 1 << 20
)

// ValueStat accumulates value-level evidence for one property: enough to
// decide key constraints (all values distinct and present on every
// instance), enumerations (few distinct values), and numeric/temporal
// ranges. It extends PG-HIVE beyond the paper's §4.4 with the future-work
// items it names: key constraints (intro contribution list) and
// enumerations/bounded ranges.
type ValueStat struct {
	// hashes holds hashes of observed values while all are distinct; once
	// a duplicate appears the set is dropped.
	hashes map[uint64]struct{}
	// dup reports a duplicate value was observed.
	dup bool
	// overflow reports the distinct tracking cap was hit.
	overflow bool

	// enum holds up to EnumCap+1 distinct rendered values.
	enum map[string]struct{}

	// Numeric and temporal ranges (valid when the counts are nonzero).
	numCount int
	minNum   float64
	maxNum   float64
}

// NewValueStat returns an empty accumulator.
func NewValueStat() *ValueStat {
	return &ValueStat{
		hashes: map[uint64]struct{}{},
		enum:   map[string]struct{}{},
	}
}

// Observe folds one value in.
func (s *ValueStat) Observe(v pg.Value) {
	rendered := v.String()

	if !s.dup && !s.overflow {
		h := fnv.New64a()
		h.Write([]byte{byte(v.Kind())})
		h.Write([]byte(rendered))
		sum := h.Sum64()
		if _, seen := s.hashes[sum]; seen {
			s.dup = true
			s.hashes = nil
		} else if len(s.hashes) >= distinctHashCap {
			s.overflow = true
			s.hashes = nil
		} else {
			s.hashes[sum] = struct{}{}
		}
	}

	if len(s.enum) <= EnumCap {
		s.enum[rendered] = struct{}{}
	}

	switch v.Kind() {
	case pg.KindInt, pg.KindFloat:
		f := v.AsFloat()
		if s.numCount == 0 || f < s.minNum {
			s.minNum = f
		}
		if s.numCount == 0 || f > s.maxNum {
			s.maxNum = f
		}
		s.numCount++
	}
}

// Merge folds other into s. Uniqueness across two accumulators cannot be
// certified from hashes of disjoint batches alone, so the merged set keeps
// checking against the union while both sides are still duplicate-free.
func (s *ValueStat) Merge(other *ValueStat) {
	if other.dup {
		s.dup = true
		s.hashes = nil
	}
	if other.overflow {
		s.overflow = true
		s.hashes = nil
	}
	if !s.dup && !s.overflow {
		for h := range other.hashes {
			if _, seen := s.hashes[h]; seen {
				s.dup = true
				s.hashes = nil
				break
			}
			if len(s.hashes) >= distinctHashCap {
				s.overflow = true
				s.hashes = nil
				break
			}
			s.hashes[h] = struct{}{}
		}
	}
	for v := range other.enum {
		if len(s.enum) > EnumCap {
			break
		}
		s.enum[v] = struct{}{}
	}
	if other.numCount > 0 {
		if s.numCount == 0 || other.minNum < s.minNum {
			s.minNum = other.minNum
		}
		if s.numCount == 0 || other.maxNum > s.maxNum {
			s.maxNum = other.maxNum
		}
		s.numCount += other.numCount
	}
}

// AllDistinct reports whether every observed value was distinct (false
// when unknown due to overflow).
func (s *ValueStat) AllDistinct() bool { return !s.dup && !s.overflow }

// EnumValues returns the sorted distinct values if the property looks like
// an enumeration (at most EnumCap distinct values), else nil.
func (s *ValueStat) EnumValues() []string {
	if len(s.enum) == 0 || len(s.enum) > EnumCap {
		return nil
	}
	out := make([]string, 0, len(s.enum))
	for v := range s.enum {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// NumRange returns the observed numeric range and whether any numeric
// value was seen.
func (s *ValueStat) NumRange() (min, max float64, ok bool) {
	return s.minNum, s.maxNum, s.numCount > 0
}
