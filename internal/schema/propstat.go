package schema

import (
	"sort"

	"pghive/internal/pg"
	"pghive/internal/sketch"
)

// Value-evidence limits.
const (
	// EnumCap is the maximum number of distinct values a property may have
	// to be reported as an enumeration.
	EnumCap = 16
	// distinctHashCap bounds the memory spent checking uniqueness in exact
	// mode; beyond it, uniqueness is reported as unknown (not a key).
	distinctHashCap = 1 << 20
	// DefaultEnumByteCap bounds the total rendered bytes retained for enum
	// detection — a handful of huge values must not pin megabytes just
	// because they number fewer than EnumCap.
	DefaultEnumByteCap = 4096
	// DefaultDupFrontCap is the sketched-mode exact window: the first
	// DupFrontCap distinct values are checked for duplicates exactly;
	// beyond it uniqueness is certified statistically by the HLL.
	DefaultDupFrontCap = 1024
)

// ValueStat accumulates value-level evidence for one property: enough to
// decide key constraints (all values distinct and present on every
// instance), enumerations (few distinct values), and numeric/temporal
// ranges. It extends PG-HIVE beyond the paper's §4.4 with the future-work
// items it names: key constraints (intro contribution list) and
// enumerations/bounded ranges.
//
// Two modes. Exact (default): a hash set of observed values certifies
// uniqueness until distinctHashCap. Sketched (EvidencePolicy.SketchValues):
// a bounded exact "dup front" window catches early duplicates, then spills
// into a HyperLogLog whose estimate-vs-count ratio decides uniqueness —
// constant memory per property regardless of stream size.
type ValueStat struct {
	// Exact mode: hashes holds hashes of observed values while all are
	// distinct; once a duplicate appears the set is dropped.
	hashes map[uint64]struct{}
	// dup reports a duplicate value was observed (both modes; in sketched
	// mode only duplicates caught by the front window set it).
	dup bool
	// overflow reports the exact-mode distinct tracking cap was hit.
	overflow bool

	// Sketched mode state. Before the spill, front holds every value hash
	// seen and duplicate detection is exact. After the spill it degrades
	// into a bottom-k hash sample (the k smallest hashes seen, k =
	// DupFrontCap): a hash below frontMax is checked against the sample, so
	// a duplicated value is still caught whenever its hash lands in the
	// sample — a uniform ~k/distinct fraction of values, covering the whole
	// stream rather than just its prefix. The HLL certificate alone cannot
	// separate 100% distinct from 98% distinct; the sample can.
	sketched  bool
	front     map[uint64]struct{} // exact window, then bottom-k sample
	frontMax  uint64              // max hash in front once frontOver
	frontOver bool                // window spilled into the HLL
	hll       *sketch.HLL         // allocated at spill time
	n         uint64              // total observations

	// enum holds up to EnumCap+1 distinct rendered values, bounded in
	// total retained bytes; enumOver records that the byte cap dropped it.
	enum      map[string]struct{}
	enumBytes int
	enumOver  bool

	// Numeric and temporal ranges (valid when the counts are nonzero).
	numCount int
	minNum   float64
	maxNum   float64

	// pol supplies the caps; nil means the package defaults. Not
	// serialized — Schema.SetEvidencePolicy re-installs it after decode.
	pol *EvidencePolicy
}

// NewValueStat returns an empty exact-mode accumulator.
func NewValueStat() *ValueStat {
	return &ValueStat{
		hashes: map[uint64]struct{}{},
		enum:   map[string]struct{}{},
	}
}

// newValueStatPol returns an empty accumulator in the mode pol selects.
func newValueStatPol(pol *EvidencePolicy) *ValueStat {
	if pol == nil || !pol.SketchValues {
		s := NewValueStat()
		s.pol = pol
		return s
	}
	return &ValueStat{
		sketched: true,
		front:    map[uint64]struct{}{},
		enum:     map[string]struct{}{},
		pol:      pol,
	}
}

// Observe folds one value in.
func (s *ValueStat) Observe(v pg.Value) {
	h := hashValue(v)
	if s.sketched {
		s.n++
		s.observeHashSketched(h)
	} else if !s.dup && !s.overflow {
		if _, seen := s.hashes[h]; seen {
			s.dup = true
			s.hashes = nil
		} else if len(s.hashes) >= distinctHashCap {
			s.overflow = true
			s.hashes = nil
		} else {
			s.hashes[h] = struct{}{}
		}
	}

	// Render the value only while the enum set is still live — rendering
	// per observation was the hot-path cost the interned core left behind.
	if s.enum != nil && len(s.enum) <= EnumCap {
		s.addEnum(v.String())
	}

	switch v.Kind() {
	case pg.KindInt, pg.KindFloat:
		f := v.AsFloat()
		if s.numCount == 0 || f < s.minNum {
			s.minNum = f
		}
		if s.numCount == 0 || f > s.maxNum {
			s.maxNum = f
		}
		s.numCount++
	}
}

// observeHashSketched advances the sketched-mode uniqueness state machine
// by one value hash.
func (s *ValueStat) observeHashSketched(h uint64) {
	if s.dup {
		return
	}
	if s.frontOver {
		s.hll.Add(h)
		s.sampleCheck(h)
		return
	}
	if _, seen := s.front[h]; seen {
		s.dup = true
		s.front = nil
		s.hll = nil
		return
	}
	if len(s.front) >= s.pol.dupFrontCap() {
		s.spillFront()
		s.hll.Add(h)
		s.sampleCheck(h)
		return
	}
	s.front[h] = struct{}{}
}

// spillFront feeds the exact window into a freshly allocated HLL and keeps
// the window itself as the initial bottom-k sample. Lazy allocation
// matters: short-lived candidate accumulators rarely exceed the window, so
// they never pay for an HLL.
func (s *ValueStat) spillFront() {
	s.frontOver = true
	if s.hll == nil {
		s.hll = sketch.NewHLL(s.pol.hllPrecision())
	}
	s.frontMax = 0
	for k := range s.front {
		s.hll.Add(k)
		if k > s.frontMax {
			s.frontMax = k
		}
	}
}

// sampleCheck runs one hash through the post-spill bottom-k sample: a hash
// already in the sample is a duplicate value (64-bit hash equality is the
// same evidence exact mode accepts); a smaller hash displaces the sample's
// current maximum so the sample converges to the k smallest hashes of the
// stream. Eviction rescans for the new max — insertions below frontMax
// happen only ~k·ln(n/k) times over a stream, so the scan never shows up.
func (s *ValueStat) sampleCheck(h uint64) {
	if s.dup || s.front == nil {
		return
	}
	if _, seen := s.front[h]; seen {
		s.dup = true
		s.front = nil
		s.hll = nil
		return
	}
	if h >= s.frontMax {
		return
	}
	s.front[h] = struct{}{}
	if len(s.front) > s.pol.dupFrontCap() {
		delete(s.front, s.frontMax)
		s.frontMax = 0
		for k := range s.front {
			if k > s.frontMax {
				s.frontMax = k
			}
		}
	}
}

// addEnum inserts a rendered value, enforcing the byte cap.
func (s *ValueStat) addEnum(rendered string) {
	if _, ok := s.enum[rendered]; ok {
		return
	}
	if s.enumBytes+len(rendered) > s.pol.enumByteCap() {
		s.enumOver = true
		s.enum = nil
		s.enumBytes = 0
		return
	}
	s.enum[rendered] = struct{}{}
	s.enumBytes += len(rendered)
}

// isEmpty reports whether the accumulator has seen nothing (mode adoption
// in Merge is safe only then).
func (s *ValueStat) isEmpty() bool {
	return !s.dup && !s.overflow && !s.frontOver && s.n == 0 &&
		len(s.hashes) == 0 && len(s.front) == 0 && len(s.enum) == 0 && s.numCount == 0 && !s.enumOver
}

// convertToSketched switches an exact accumulator into sketched mode,
// replaying its hash set through the sketched state machine. like supplies
// the policy when s has none (cross-mode merges only happen when one side
// was built before the policy was known).
func (s *ValueStat) convertToSketched(like *ValueStat) {
	if s.sketched {
		return
	}
	s.sketched = true
	if s.pol == nil {
		s.pol = like.pol
	}
	hashes := s.hashes
	s.hashes = nil
	s.front = map[uint64]struct{}{}
	if s.overflow {
		// The exact set was already dropped: certify statistically from
		// here with an empty HLL (conservatively under-estimates, so
		// AllDistinct stays false — same answer overflow gave).
		s.overflow = false
		s.frontOver = true
		s.hll = sketch.NewHLL(s.pol.hllPrecision())
		s.front = nil
		return
	}
	if s.dup {
		s.front = nil
		return
	}
	s.n = uint64(len(hashes))
	for h := range hashes {
		s.observeHashSketched(h)
	}
}

// Merge folds other into s. Uniqueness across two accumulators cannot be
// certified from hashes of disjoint batches alone, so the merged set keeps
// checking against the union while both sides are still duplicate-free.
// Cross-mode merges adopt the sketched side (an empty receiver adopts the
// other's mode outright).
func (s *ValueStat) Merge(other *ValueStat) {
	if s.sketched != other.sketched {
		if other.sketched {
			s.convertToSketched(other)
		} else {
			// s sketched, other exact: convert other in place (it is
			// consumed by the merge contract).
			other.convertToSketched(s)
		}
	}

	if s.sketched {
		s.n += other.n
		if other.dup {
			s.dup = true
			s.front = nil
			s.hll = nil
		}
		if !s.dup {
			if !other.frontOver {
				for h := range other.front {
					s.observeHashSketched(h)
					if s.dup {
						break
					}
				}
			} else {
				if !s.frontOver {
					s.spillFront()
				}
				if other.hll != nil {
					if err := s.hll.Merge(other.hll); err != nil {
						panic("schema: value sketch merge: " + err.Error())
					}
				}
				s.mergeSample(other)
			}
		}
	} else {
		if other.dup {
			s.dup = true
			s.hashes = nil
		}
		if other.overflow {
			s.overflow = true
			s.hashes = nil
		}
		if !s.dup && !s.overflow {
			for h := range other.hashes {
				if _, seen := s.hashes[h]; seen {
					s.dup = true
					s.hashes = nil
					break
				}
				if len(s.hashes) >= distinctHashCap {
					s.overflow = true
					s.hashes = nil
					break
				}
				s.hashes[h] = struct{}{}
			}
		}
	}

	if other.enumOver {
		s.enumOver = true
		s.enum = nil
		s.enumBytes = 0
	}
	if s.enum != nil {
		for v := range other.enum {
			if len(s.enum) > EnumCap {
				break
			}
			s.addEnum(v)
		}
	}
	if other.numCount > 0 {
		if s.numCount == 0 || other.minNum < s.minNum {
			s.minNum = other.minNum
		}
		if s.numCount == 0 || other.maxNum > s.maxNum {
			s.maxNum = other.maxNum
		}
		s.numCount += other.numCount
	}
}

// mergeSample folds other's bottom-k sample into s's. A hash present in
// both samples means each side observed a value with that hash, so the
// merged stream holds a duplicate — the cross-shard analogue of exact
// mode's hash-intersection check. The union is then trimmed back to the
// k smallest hashes.
func (s *ValueStat) mergeSample(other *ValueStat) {
	if s.dup || s.front == nil {
		return
	}
	for h := range other.front {
		if _, seen := s.front[h]; seen {
			s.dup = true
			s.front = nil
			s.hll = nil
			return
		}
		s.front[h] = struct{}{}
		if h > s.frontMax {
			s.frontMax = h
		}
	}
	// Trim the union back to the k smallest in one sort — this runs per
	// property per batch merge, so one-at-a-time eviction (O(k) rescan
	// each) is too slow here.
	if cap := s.pol.dupFrontCap(); len(s.front) > cap {
		hashes := make([]uint64, 0, len(s.front))
		for h := range s.front {
			hashes = append(hashes, h)
		}
		sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
		s.front = make(map[uint64]struct{}, cap)
		for _, h := range hashes[:cap] {
			s.front[h] = struct{}{}
		}
		s.frontMax = hashes[cap-1]
	}
}

// AllDistinct reports whether every observed value was distinct. Exact
// mode: false when unknown due to overflow. Sketched mode: exact while
// the front window holds, then statistical — the HLL estimate must reach
// the observation count within three standard errors (a single duplicate
// among millions is below sketch resolution by construction).
func (s *ValueStat) AllDistinct() bool {
	if s.sketched {
		if s.dup {
			return false
		}
		if !s.frontOver {
			return true // the window caught every duplicate exactly
		}
		if s.hll == nil || s.n == 0 {
			return false
		}
		est := float64(s.hll.Estimate())
		return est >= (1-3*s.hll.RelativeError())*float64(s.n)
	}
	return !s.dup && !s.overflow
}

// DistinctEstimate returns the (possibly approximate) number of distinct
// values observed while uniqueness tracking was live, 0 once it was
// abandoned after a duplicate.
func (s *ValueStat) DistinctEstimate() uint64 {
	switch {
	case s.sketched && !s.frontOver:
		return uint64(len(s.front))
	case s.sketched:
		if s.hll == nil {
			return 0
		}
		return s.hll.Estimate()
	default:
		return uint64(len(s.hashes))
	}
}

// EnumValues returns the sorted distinct values if the property looks like
// an enumeration (at most EnumCap distinct values within the byte cap),
// else nil.
func (s *ValueStat) EnumValues() []string {
	if s.enumOver || len(s.enum) == 0 || len(s.enum) > EnumCap {
		return nil
	}
	out := make([]string, 0, len(s.enum))
	for v := range s.enum {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// NumRange returns the observed numeric range and whether any numeric
// value was seen.
func (s *ValueStat) NumRange() (min, max float64, ok bool) {
	return s.minNum, s.maxNum, s.numCount > 0
}

// MemBytes estimates the accumulator's retained size (map entries are
// approximated at 16 bytes over the key payload).
func (s *ValueStat) MemBytes() int64 {
	b := int64(96) // struct
	b += int64(len(s.hashes)+len(s.front)) * 24
	if s.hll != nil {
		b += int64(s.hll.MemBytes())
	}
	b += int64(s.enumBytes) + int64(len(s.enum))*32
	return b
}
