package schema

import (
	"fmt"
	"sort"
	"testing"

	"pghive/internal/pg"
)

func TestNewRemapRoundTrip(t *testing.T) {
	src := NewSymtab()
	dst := NewSymtab()
	// dst already knows some symbols, in a different order than src will
	// mint them — the remap must follow symbols, not ID arithmetic.
	dst.Intern("c")
	dst.Intern("a")
	dst.InternEp(pg.ID(30))
	for _, s := range []string{"a", "b", "c", "d"} {
		src.Intern(s)
	}
	for _, ep := range []pg.ID{10, 20, 30} {
		src.InternEp(ep)
	}

	rm := NewRemap(src, dst)
	for id := uint32(0); int(id) < src.Strings(); id++ {
		if got, want := dst.Str(rm.Str(id)), src.Str(id); got != want {
			t.Errorf("string %d: remapped to %q, want %q", id, got, want)
		}
	}
	for ix := uint32(0); int(ix) < src.Endpoints(); ix++ {
		if got, want := dst.Ep(rm.Ep(ix)), src.Ep(ix); got != want {
			t.Errorf("endpoint %d: remapped to %v, want %v", ix, got, want)
		}
	}

	// Injectivity: no two source IDs may collapse onto one destination ID.
	seen := map[uint32]uint32{}
	for id, to := range rm.StrTable() {
		if prev, dup := seen[to]; dup {
			t.Fatalf("string IDs %d and %d both remap to %d", prev, id, to)
		}
		seen[to] = uint32(id)
	}

	// A nil Remap is the identity.
	var nilRM *Remap
	if nilRM.Str(7) != 7 || nilRM.Ep(3) != 3 {
		t.Error("nil Remap is not the identity")
	}
}

func TestNewRemapDeterministic(t *testing.T) {
	src := NewSymtab()
	for _, s := range []string{"x", "y", "z"} {
		src.Intern(s)
	}
	dstA, dstB := NewSymtab(), NewSymtab()
	dstA.Intern("seed")
	dstB.Intern("seed")
	rmA, rmB := NewRemap(src, dstA), NewRemap(src, dstB)
	for id := range rmA.StrTable() {
		if rmA.Str(uint32(id)) != rmB.Str(uint32(id)) {
			t.Fatalf("remap into equal destinations diverged at string %d", id)
		}
	}
}

func TestRemapIDs(t *testing.T) {
	// A translation that reverses relative order: the result must come back
	// sorted with the same cardinality.
	table := []uint32{9, 7, 5, 3, 1}
	in := IDSet{0, 2, 4}
	out := RemapIDs(in, table)
	if want := (IDSet{1, 5, 9}); !out.Equal(want) {
		t.Fatalf("RemapIDs(%v) = %v, want %v", in, out, want)
	}
	if in[0] != 0 || in[1] != 2 || in[2] != 4 {
		t.Fatal("RemapIDs mutated its input")
	}

	clone := RemapIDs(in, nil)
	if !clone.Equal(in) {
		t.Fatalf("nil table: got %v, want clone of %v", clone, in)
	}
	clone[0] = 99
	if in[0] == 99 {
		t.Fatal("nil-table RemapIDs aliased its input")
	}

	if RemapIDs(nil, table) != nil {
		t.Fatal("empty set must remap to nil")
	}
}

func TestTypeMergeCrossTab(t *testing.T) {
	build := func(tab *Symtab) *Type {
		ty := NewType(tab, EdgeKind)
		ty.AddLabel("KNOWS")
		ty.AddSrcLabel("Person")
		ty.AddDstLabel("Person")
		p := NewPropStat()
		p.Observe(pg.Int(1), false)
		ty.SetProp("since", p)
		ty.AddOutDeg(pg.ID(1), 2)
		ty.AddInDeg(pg.ID(2), 1)
		ty.Instances = 3
		return ty
	}

	// Same evidence interned against two independent tables, where the
	// "other" table has extra symbols shifting every ID.
	tabA, tabB := NewSymtab(), NewSymtab()
	tabB.Intern("pad0")
	tabB.Intern("pad1")
	tabB.InternEp(pg.ID(999))
	a, b := build(tabA), build(tabB)
	p := NewPropStat()
	p.Observe(pg.Str("x"), false)
	b.SetProp("note", p)

	a.Merge(b) // cross-tab: must auto-remap, not panic

	if a.Instances != 6 {
		t.Errorf("Instances = %d, want 6", a.Instances)
	}
	if got := a.Labels().Sorted(); len(got) != 1 || got[0] != "KNOWS" {
		t.Errorf("labels = %v, want [KNOWS]", got)
	}
	keys := a.PropKeyStrings()
	sort.Strings(keys)
	if fmt.Sprint(keys) != "[note since]" {
		t.Errorf("prop keys = %v, want [note since]", keys)
	}
	if got := a.Prop("since").Count; got != 2 {
		t.Errorf("since.Count = %d, want 2", got)
	}
	// Degree evidence must land on the same endpoints, not on shifted IDs.
	deg := a.MaxDegrees()
	if deg.MaxOut != 4 || deg.MaxIn != 2 {
		t.Errorf("degrees = %+v, want MaxOut 4 MaxIn 2", deg)
	}
	if a.OutDistinct() != 1 || a.InDistinct() != 1 {
		t.Errorf("distinct endpoints = %d/%d, want 1/1", a.OutDistinct(), a.InDistinct())
	}
}

func TestDebugSameTabPanics(t *testing.T) {
	DebugSameTab = true
	defer func() { DebugSameTab = false }()
	a := NewType(NewSymtab(), NodeKind)
	b := NewType(NewSymtab(), NodeKind)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-tab Merge with DebugSameTab did not panic")
		}
	}()
	a.Merge(b)
}

func TestCounterTableMergeRemapped(t *testing.T) {
	var c, other CounterTable
	c.Add(0, 5)
	other.Add(0, 1) // remaps to 2
	other.Add(1, 7) // remaps to 0: must fold into c's existing count
	other.Inc(1)    // pending increments must be normalized through the table too
	eps := []uint32{2, 0}

	c.MergeRemapped(&other, eps)

	got := map[uint32]uint32{}
	c.each(func(id, count uint32) { got[id] = count })
	want := map[uint32]uint32{0: 13, 2: 1}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merged counts = %v, want %v", got, want)
	}

	// nil eps degrades to the plain same-tab Merge.
	var c2, other2 CounterTable
	c2.Add(3, 1)
	other2.Add(3, 2)
	c2.MergeRemapped(&other2, nil)
	if c2.Max() != 3 {
		t.Fatalf("nil-eps merge: Max = %d, want 3", c2.Max())
	}
}

// FuzzRemapIDs drives RemapIDs with arbitrary sets and translation tables
// derived from the fuzz input and checks the invariants the shard merge
// relies on: sorted output, cardinality preserved under injective tables,
// and exact round-trip through the inverse table.
func FuzzRemapIDs(f *testing.F) {
	f.Add([]byte{0, 1, 2}, uint8(5))
	f.Add([]byte{9, 3, 3, 7}, uint8(16))
	f.Add([]byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, size uint8) {
		n := int(size)%64 + 1
		// Injective table: a permutation of [0,n) seeded by the raw bytes.
		table := make([]uint32, n)
		for i := range table {
			table[i] = uint32(i)
		}
		for i, b := range raw {
			j, k := int(b)%n, (i+int(b)/8)%n
			table[j], table[k] = table[k], table[j]
		}
		inverse := make([]uint32, n)
		for from, to := range table {
			inverse[to] = uint32(from)
		}

		var in IDSet
		for _, b := range raw {
			in.Insert(uint32(b) % uint32(n))
		}

		out := RemapIDs(in, table)
		if len(out) != len(in) {
			t.Fatalf("cardinality changed: %d -> %d", len(in), len(out))
		}
		for i := 1; i < len(out); i++ {
			if out[i-1] >= out[i] {
				t.Fatalf("output not strictly sorted: %v", out)
			}
		}
		back := RemapIDs(out, inverse)
		if !back.Equal(in) {
			t.Fatalf("round-trip: %v -> %v -> %v", in, out, back)
		}
	})
}
