package schema

import (
	"fmt"
	"sort"

	"pghive/internal/pg"
)

// Symbol interning: every label, property key and endpoint ID the pipeline
// observes is mapped once to a dense uint32, and the schema hot path
// (candidate building, type extraction, cardinality evidence) operates on
// sorted ID slices and flat tables instead of string-keyed maps. IDs are
// assigned in first-observation order, so they are deterministic for a
// given batch stream and survive checkpoint/resume exactly; serializers
// resolve them back to strings, keeping the rendered schema byte-identical
// to the string-set representation.

// Symtab is a pipeline-lifetime intern table: strings (labels and property
// keys share one namespace) and endpoint IDs each map to dense uint32
// indexes. The zero value is not usable; call NewSymtab.
type Symtab struct {
	strs  []string
	byStr map[string]uint32
	eps   []pg.ID
	byEp  map[pg.ID]uint32

	// pol is the evidence policy every type bound to this table reads
	// (nil = exact evidence). It rides on the symtab because types carry a
	// tab pointer already and the policy must survive checkpoint decode
	// re-binding; it is not serialized — the pipeline re-installs it.
	pol *EvidencePolicy
}

// SetEvidencePolicy installs the evidence policy (nil = exact).
func (t *Symtab) SetEvidencePolicy(p *EvidencePolicy) { t.pol = p }

// Evidence returns the installed evidence policy (nil = exact).
func (t *Symtab) Evidence() *EvidencePolicy { return t.pol }

// NewSymtab returns an empty intern table.
func NewSymtab() *Symtab {
	return &Symtab{byStr: map[string]uint32{}, byEp: map[pg.ID]uint32{}}
}

// Intern returns the dense ID for s, assigning the next free one on first
// sight. Not safe for concurrent use; concurrent readers are fine once all
// strings of a batch are pre-interned (Lookup never writes).
func (t *Symtab) Intern(s string) uint32 {
	if id, ok := t.byStr[s]; ok {
		return id
	}
	id := uint32(len(t.strs))
	t.strs = append(t.strs, s)
	t.byStr[s] = id
	return id
}

// Lookup returns the ID for s without interning.
func (t *Symtab) Lookup(s string) (uint32, bool) {
	id, ok := t.byStr[s]
	return id, ok
}

// Str resolves an ID back to its string.
func (t *Symtab) Str(id uint32) string { return t.strs[id] }

// InternEp returns the dense index for an endpoint node ID.
func (t *Symtab) InternEp(id pg.ID) uint32 {
	if ix, ok := t.byEp[id]; ok {
		return ix
	}
	ix := uint32(len(t.eps))
	t.eps = append(t.eps, id)
	t.byEp[id] = ix
	return ix
}

// LookupEp returns the index for an endpoint ID without interning.
func (t *Symtab) LookupEp(id pg.ID) (uint32, bool) {
	ix, ok := t.byEp[id]
	return ix, ok
}

// Ep resolves an endpoint index back to the node ID.
func (t *Symtab) Ep(ix uint32) pg.ID { return t.eps[ix] }

// Strings returns the number of interned strings.
func (t *Symtab) Strings() int { return len(t.strs) }

// Endpoints returns the number of interned endpoint IDs.
func (t *Symtab) Endpoints() int { return len(t.eps) }

// Codec bounds for the symtab checkpoint section.
const (
	maxSymtabStrings   = 1 << 28
	maxSymtabEndpoints = 1 << 31
)

// WriteSymtab encodes the intern table onto a wire stream (slice order is
// the ID assignment, so the encoding is deterministic and the decode
// reproduces every ID exactly).
func WriteSymtab(w *pg.WireWriter, t *Symtab) {
	w.Uvarint(uint64(len(t.strs)))
	for _, s := range t.strs {
		w.String(s)
	}
	w.Uvarint(uint64(len(t.eps)))
	for _, ep := range t.eps {
		w.Varint(int64(ep))
	}
}

// ReadSymtab decodes an intern table written by WriteSymtab.
func ReadSymtab(r *pg.WireReader) (*Symtab, error) {
	n, err := r.Uvarint(maxSymtabStrings)
	if err != nil {
		return nil, fmt.Errorf("symtab: string count: %w", err)
	}
	t := &Symtab{
		strs:  make([]string, 0, n),
		byStr: make(map[string]uint32, n),
	}
	for i := uint64(0); i < n; i++ {
		s, err := r.String()
		if err != nil {
			return nil, fmt.Errorf("symtab: string %d: %w", i, err)
		}
		if _, dup := t.byStr[s]; dup {
			return nil, fmt.Errorf("symtab: duplicate string %q", s)
		}
		t.byStr[s] = uint32(len(t.strs))
		t.strs = append(t.strs, s)
	}
	m, err := r.Uvarint(maxSymtabEndpoints)
	if err != nil {
		return nil, fmt.Errorf("symtab: endpoint count: %w", err)
	}
	t.eps = make([]pg.ID, 0, m)
	t.byEp = make(map[pg.ID]uint32, m)
	for i := uint64(0); i < m; i++ {
		ep, err := r.Varint()
		if err != nil {
			return nil, fmt.Errorf("symtab: endpoint %d: %w", i, err)
		}
		if _, dup := t.byEp[pg.ID(ep)]; dup {
			return nil, fmt.Errorf("symtab: duplicate endpoint %d", ep)
		}
		t.byEp[pg.ID(ep)] = uint32(len(t.eps))
		t.eps = append(t.eps, pg.ID(ep))
	}
	return t, nil
}

// IDSet is a sorted slice of unique interned IDs — the flat replacement for
// StringSet on the hot path. The zero value is an empty set.
type IDSet []uint32

// Contains reports membership by binary search.
func (s IDSet) Contains(id uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// Insert adds id, keeping the slice sorted; no-op when present.
func (s *IDSet) Insert(id uint32) {
	a := *s
	// Fast paths: appends dominate during candidate building because IDs
	// are assigned in observation order.
	if n := len(a); n == 0 || a[n-1] < id {
		*s = append(a, id)
		return
	}
	i := sort.Search(len(a), func(i int) bool { return a[i] >= id })
	if i < len(a) && a[i] == id {
		return
	}
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = id
	*s = a
}

// Union folds other into s in place: a backwards sort-merge that allocates
// only when s lacks capacity for the new elements.
func (s *IDSet) Union(other IDSet) {
	a := *s
	extra := 0
	for i, j := 0, 0; j < len(other); {
		switch {
		case i >= len(a) || a[i] > other[j]:
			extra++
			j++
		case a[i] < other[j]:
			i++
		default:
			i++
			j++
		}
	}
	if extra == 0 {
		return
	}
	n := len(a)
	a = append(a, make(IDSet, extra)...)
	for i, j, k := n-1, len(other)-1, len(a)-1; j >= 0; k-- {
		if i >= 0 && a[i] > other[j] {
			a[k] = a[i]
			i--
		} else {
			if i >= 0 && a[i] == other[j] {
				i--
			}
			a[k] = other[j]
			j--
		}
	}
	*s = a
}

// Equal reports element-wise equality.
func (s IDSet) Equal(other IDSet) bool {
	if len(s) != len(other) {
		return false
	}
	for i, id := range s {
		if other[i] != id {
			return false
		}
	}
	return true
}

// Clone returns a copy.
func (s IDSet) Clone() IDSet {
	if len(s) == 0 {
		return nil
	}
	return append(IDSet(nil), s...)
}

// Strings resolves the set to its sorted string form.
func (s IDSet) Strings(tab *Symtab) []string {
	out := make([]string, len(s))
	for i, id := range s {
		out[i] = tab.Str(id)
	}
	sort.Strings(out)
	return out
}

// JaccardIDs returns |A∩B| / |A∪B| over sorted ID slices without
// allocating; two empty sets have similarity 1. It matches Jaccard on the
// resolved string sets exactly (interning is a bijection).
func JaccardIDs(a, b IDSet) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for i, j := 0, 0; i < len(a) && j < len(b); {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// JaccardU64 is JaccardIDs over sorted uint64 slices (the tagged merge-key
// form used by the edge-candidate similarity test).
func JaccardU64(a, b []uint64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for i, j := 0, 0; i < len(a) && j < len(b); {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// hashIDs returns a 64-bit FNV-1a hash of a sorted ID tuple — the label-set
// lookup key that replaces Labels.Key() string building. Collisions are
// tolerated: the index verifies candidates with IDSet.Equal.
func hashIDs(ids IDSet) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, id := range ids {
		h ^= uint64(id & 0xff)
		h *= prime64
		h ^= uint64((id >> 8) & 0xff)
		h *= prime64
		h ^= uint64((id >> 16) & 0xff)
		h *= prime64
		h ^= uint64(id >> 24)
		h *= prime64
	}
	return h
}

// PropTable maps interned property-key IDs to their accumulators via
// parallel slices sorted by ID — binary-search lookups, no string hashing,
// and deterministic iteration for the checkpoint codec.
type PropTable struct {
	ids   IDSet
	stats []*PropStat
}

// Len returns the number of keys.
func (pt *PropTable) Len() int { return len(pt.ids) }

// At returns the i-th (key ID, accumulator) pair in ID order.
func (pt *PropTable) At(i int) (uint32, *PropStat) { return pt.ids[i], pt.stats[i] }

// Get returns the accumulator for id, or nil.
func (pt *PropTable) Get(id uint32) *PropStat {
	i := sort.Search(len(pt.ids), func(i int) bool { return pt.ids[i] >= id })
	if i < len(pt.ids) && pt.ids[i] == id {
		return pt.stats[i]
	}
	return nil
}

// GetOrCreate returns the accumulator for id, inserting an empty
// exact-mode one on first use.
func (pt *PropTable) GetOrCreate(id uint32) *PropStat {
	return pt.getOrCreatePol(id, nil)
}

// getOrCreatePol is GetOrCreate with the evidence policy applied to a
// freshly created accumulator (Type methods pass their tab's policy).
func (pt *PropTable) getOrCreatePol(id uint32, pol *EvidencePolicy) *PropStat {
	i := sort.Search(len(pt.ids), func(i int) bool { return pt.ids[i] >= id })
	if i < len(pt.ids) && pt.ids[i] == id {
		return pt.stats[i]
	}
	p := newPropStatPol(pol)
	pt.ids = append(pt.ids, 0)
	copy(pt.ids[i+1:], pt.ids[i:])
	pt.ids[i] = id
	pt.stats = append(pt.stats, nil)
	copy(pt.stats[i+1:], pt.stats[i:])
	pt.stats[i] = p
	return p
}

// put inserts a decoded accumulator (codec path; id must be absent).
func (pt *PropTable) put(id uint32, p *PropStat) {
	i := sort.Search(len(pt.ids), func(i int) bool { return pt.ids[i] >= id })
	if i < len(pt.ids) && pt.ids[i] == id {
		pt.stats[i] = p
		return
	}
	pt.ids = append(pt.ids, 0)
	copy(pt.ids[i+1:], pt.ids[i:])
	pt.ids[i] = id
	pt.stats = append(pt.stats, nil)
	copy(pt.stats[i+1:], pt.stats[i:])
	pt.stats[i] = p
}

// CounterTable counts per-endpoint edge incidences (the cardinality
// evidence of §4.4) keyed by interned endpoint index: 8 bytes per distinct
// endpoint instead of a string-keyed map entry. Increments append to a
// pending buffer; reads normalize it into the sorted base with one sort +
// merge, so candidate building never pays per-increment insertion.
// In sketched mode (EvidencePolicy.SketchDegrees) the table holds no
// exact entries: observations are keyed by the raw global endpoint pg.ID,
// buffered in rawPending, and folded lazily into a degreeSketch — see
// evidence.go. Raw keys make sketches shard-mergeable without a remap.
type CounterTable struct {
	ids     []uint32 // sorted unique endpoint indexes
	counts  []uint32 // parallel to ids
	pending []uint32 // unaggregated increments (one entry per Inc)

	sketched   bool
	rawPending []uint64 // unfolded raw endpoint IDs (one entry per ObserveKey)
	sk         *degreeSketch
}

// Inc records one incidence for the endpoint index.
func (c *CounterTable) Inc(id uint32) { c.pending = append(c.pending, id) }

// normalize folds the pending increments into the sorted base.
func (c *CounterTable) normalize() {
	if len(c.pending) == 0 {
		return
	}
	p := c.pending
	sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	ids := make([]uint32, 0, len(c.ids)+len(p))
	counts := make([]uint32, 0, len(c.ids)+len(p))
	i, j := 0, 0
	for i < len(c.ids) || j < len(p) {
		if j >= len(p) || (i < len(c.ids) && c.ids[i] < p[j]) {
			ids = append(ids, c.ids[i])
			counts = append(counts, c.counts[i])
			i++
			continue
		}
		id := p[j]
		var n uint32
		for j < len(p) && p[j] == id {
			n++
			j++
		}
		if i < len(c.ids) && c.ids[i] == id {
			n += c.counts[i]
			i++
		}
		ids = append(ids, id)
		counts = append(counts, n)
	}
	c.ids, c.counts, c.pending = ids, counts, nil
}

// Merge folds other's counts into c.
func (c *CounterTable) Merge(other *CounterTable) {
	c.normalize()
	other.normalize()
	if len(other.ids) == 0 {
		return
	}
	ids := make([]uint32, 0, len(c.ids)+len(other.ids))
	counts := make([]uint32, 0, len(c.ids)+len(other.ids))
	i, j := 0, 0
	for i < len(c.ids) || j < len(other.ids) {
		switch {
		case j >= len(other.ids) || (i < len(c.ids) && c.ids[i] < other.ids[j]):
			ids = append(ids, c.ids[i])
			counts = append(counts, c.counts[i])
			i++
		case i >= len(c.ids) || other.ids[j] < c.ids[i]:
			ids = append(ids, other.ids[j])
			counts = append(counts, other.counts[j])
			j++
		default:
			ids = append(ids, c.ids[i])
			counts = append(counts, c.counts[i]+other.counts[j])
			i++
			j++
		}
	}
	c.ids, c.counts = ids, counts
}

// Add records n incidences for the endpoint index (test/codec helper).
func (c *CounterTable) Add(id uint32, n uint32) {
	for ; n > 0; n-- {
		c.Inc(id)
	}
}

// Distinct returns the number of endpoints with a nonzero count — the
// participation evidence cardinality inference reads.
func (c *CounterTable) Distinct() int {
	c.normalize()
	return len(c.ids)
}

// Max returns the largest per-endpoint count.
func (c *CounterTable) Max() int {
	c.normalize()
	m := uint32(0)
	for _, n := range c.counts {
		if n > m {
			m = n
		}
	}
	return int(m)
}

// each calls f for every (endpoint index, count) pair in ascending index
// order.
func (c *CounterTable) each(f func(id, count uint32)) {
	c.normalize()
	for i, id := range c.ids {
		f(id, c.counts[i])
	}
}
