package schema

// Algorithm 2 ("Extracting and Merging Types") and its shard-level lifting.
// MergeTypes folds candidate types into an evolving schema under the
// monotone rules of §4.3/§4.6; MergeSchemas applies the same rules to an
// entire partial schema, which is what makes partition-and-merge discovery
// sound: by Lemmas 1 and 2 the merge is monotone and order-insensitive over
// the evidence it unions, so N disjoint shards recombine without loss.

// MergeTypes merges candidate types (cluster representatives, or a shard's
// finished types) into the schema for one element kind:
//
//  1. Labeled candidates merge into the existing type with the same label
//     set, or are appended as new types.
//  2. Unlabeled candidates merge into the labeled type whose key set has
//     Jaccard similarity ≥ theta — the best-scoring candidate, so distinct
//     labeled types are never fused through an unlabeled bridge.
//  3. Remaining unlabeled candidates merge with each other (and with
//     previously discovered abstract types) under the same test; leftovers
//     join the schema as ABSTRACT types (PG-Schema).
//
// For node types the Jaccard test runs over property-key sets (§4.3); for
// edge types it also includes tagged endpoint labels, since edge patterns
// are distinguished by (L, K, R) (Definition 3.6). Everything runs on
// interned IDs: label-set lookup is a hashed ID-tuple probe and the
// similarity test is a sort-merge over uint64 merge keys — no string keys
// are built. Candidates must be bound to s.Tab (rebind shard types with
// RebindRemapped first); candidates not appended to the schema are consumed
// by merging and must not be reused.
func MergeTypes(s *Schema, kind ElementKind, candidates []*Type, theta float64) {
	var unlabeled []*Type
	for _, c := range candidates {
		if c.Labeled() {
			if existing := s.FindByLabelSet(kind, c.LabelIDs()); existing != nil {
				existing.Merge(c)
			} else {
				s.Add(c)
			}
		} else {
			unlabeled = append(unlabeled, c)
		}
	}

	var still []*Type
	for _, c := range unlabeled {
		if target := bestLabeledMatch(s, kind, c, theta); target != nil {
			target.Merge(c)
		} else {
			still = append(still, c)
		}
	}

	// Remaining unlabeled candidates: merge with existing abstract types
	// first (incremental consistency), then with each other.
	abstracts := abstractTypes(s, kind)
	for _, c := range still {
		cKeys := c.MergeKeys()
		merged := false
		for _, a := range abstracts {
			if JaccardU64(a.MergeKeys(), cKeys) >= theta {
				a.Merge(c)
				merged = true
				break
			}
		}
		if !merged {
			c.Abstract = true
			s.Add(c)
			abstracts = append(abstracts, c)
		}
	}
}

// bestLabeledMatch returns the labeled type of the given kind with the
// highest Jaccard similarity ≥ theta against the candidate, breaking ties
// toward more instances.
func bestLabeledMatch(s *Schema, kind ElementKind, c *Type, theta float64) *Type {
	cKeys := c.MergeKeys()
	var best *Type
	bestJ := -1.0
	for _, t := range s.Types(kind) {
		if !t.Labeled() {
			continue
		}
		j := JaccardU64(t.MergeKeys(), cKeys)
		if j < theta {
			continue
		}
		if j > bestJ || (j == bestJ && best != nil && t.Instances > best.Instances) {
			best, bestJ = t, j
		}
	}
	return best
}

func abstractTypes(s *Schema, kind ElementKind) []*Type {
	var out []*Type
	for _, t := range s.Types(kind) {
		if !t.Labeled() {
			out = append(out, t)
		}
	}
	return out
}

// MergeSchemas folds src into dst: src's interned IDs are remapped into
// dst's symtab (one dense lookup table per namespace, built by interning
// src's symbols in assignment order so the combined table is deterministic
// for a fixed merge order), then src's types are re-run through the
// Algorithm 2 merge — labeled types unify by label set, unlabeled types get
// a fresh chance to attach to labeled types across the shard boundary via
// the Jaccard test, and leftovers stay abstract. Degree evidence
// (CounterTable) and property statistics union exactly.
//
// src is consumed: its types are rebound to dst's symtab (some are aliased
// into dst directly), so it must not be read or merged again.
func MergeSchemas(dst, src *Schema, theta float64) {
	if dst.Tab != src.Tab {
		rm := NewRemap(src.Tab, dst.Tab)
		for _, t := range src.NodeTypes {
			t.RebindRemapped(dst.Tab, rm)
		}
		for _, t := range src.EdgeTypes {
			t.RebindRemapped(dst.Tab, rm)
		}
	}
	MergeTypes(dst, NodeKind, src.NodeTypes, theta)
	MergeTypes(dst, EdgeKind, src.EdgeTypes, theta)
}
