package schema

import (
	"fmt"

	"pghive/internal/pg"
)

// Cardinality is the inferred edge-type cardinality. The names follow the
// paper's mapping verbatim (§4.4): only edges are scanned, so lower bounds
// are unknown; the pair (max_out, max_in) maps to (1,1) → 0:1,
// (>1,1) → N:1, (1,>1) → 0:N, (>1,>1) → M:N.
type Cardinality uint8

// Cardinality values.
const (
	CardUnknown Cardinality = iota
	CardZeroOne             // (1, 1)
	CardNOne                // (>1, 1)
	CardZeroN               // (1, >1)
	CardMN                  // (>1, >1)
)

// String returns the paper's spelling.
func (c Cardinality) String() string {
	switch c {
	case CardZeroOne:
		return "0:1"
	case CardNOne:
		return "N:1"
	case CardZeroN:
		return "0:N"
	case CardMN:
		return "M:N"
	default:
		return "?"
	}
}

// CardinalityFromDegrees applies the paper's mapping to an observed degree
// pair. Degrees of zero (an edge type with no instances) map to
// CardUnknown.
func CardinalityFromDegrees(d pg.DegreePair) Cardinality {
	if d.MaxOut <= 0 || d.MaxIn <= 0 {
		return CardUnknown
	}
	switch {
	case d.MaxOut == 1 && d.MaxIn == 1:
		return CardZeroOne
	case d.MaxOut > 1 && d.MaxIn == 1:
		return CardNOne
	case d.MaxOut == 1 && d.MaxIn > 1:
		return CardZeroN
	default:
		return CardMN
	}
}

// PropertyDef is a finalized property of a type: its key, inferred data
// type, MANDATORY/OPTIONAL constraint (Definitions 3.2/3.3), and the
// value-level constraints PG-HIVE discovers beyond §4.4: key candidacy,
// enumerations and numeric ranges.
type PropertyDef struct {
	Key       string
	DataType  pg.Kind
	Mandatory bool
	// Frequency is f_T(p): the fraction of the type's instances carrying
	// the property (1.0 for mandatory ones).
	Frequency float64
	// Unique marks a key candidate (PG-Keys style): the property is
	// mandatory and every observed value is distinct.
	Unique bool
	// Enum lists the closed value set when the property takes few distinct
	// values over enough observations; nil otherwise.
	Enum []string
	// HasRange marks numeric properties with an observed [MinNum, MaxNum]
	// range.
	HasRange bool
	MinNum   float64
	MaxNum   float64
}

// NodeTypeDef is a finalized node type ready for serialization.
type NodeTypeDef struct {
	// Name is the display name: the label-set key, or "Abstract<N>" for
	// abstract types.
	Name       string
	Labels     []string
	Abstract   bool
	Properties []PropertyDef
	Instances  int
}

// EdgeTypeDef is a finalized edge type.
type EdgeTypeDef struct {
	Name       string
	Labels     []string
	Abstract   bool
	Properties []PropertyDef
	Instances  int
	// SrcTypes and DstTypes are the names of the node types this edge type
	// connects (ρ_s of Definition 3.4); multiple entries mean the endpoints
	// span several node types.
	SrcTypes []string
	DstTypes []string
	// Cardinality is the inferred constraint with its degree evidence.
	Cardinality Cardinality
	MaxOut      int
	MaxIn       int
	// SrcTotal and DstTotal report total participation: every instance of
	// the source (resp. target) node types carries at least one edge of
	// this type, upgrading the paper's unknown lower bound from 0 to 1
	// (§4.4's future-work analysis, computed when Options.Participation is
	// set).
	SrcTotal bool
	DstTotal bool
}

// CardinalityString renders the cardinality with participation-refined
// lower bounds: the paper's "0" components (unknowable lower bounds when
// only edges are scanned) upgrade to "1" once participation analysis
// proves every source-type instance carries such an edge.
func (e *EdgeTypeDef) CardinalityString() string {
	switch e.Cardinality {
	case CardZeroOne:
		if e.SrcTotal {
			return "1:1"
		}
		return "0:1"
	case CardZeroN:
		if e.SrcTotal {
			return "1:N"
		}
		return "0:N"
	default:
		return e.Cardinality.String()
	}
}

// Def is a finalized schema graph: the output of post-processing, the input
// to every serializer.
type Def struct {
	Nodes []NodeTypeDef
	Edges []EdgeTypeDef
}

// NodeType returns the node type definition with the given name, or nil.
func (d *Def) NodeType(name string) *NodeTypeDef {
	for i := range d.Nodes {
		if d.Nodes[i].Name == name {
			return &d.Nodes[i]
		}
	}
	return nil
}

// EdgeType returns the edge type definition with the given name, or nil.
func (d *Def) EdgeType(name string) *EdgeTypeDef {
	for i := range d.Edges {
		if d.Edges[i].Name == name {
			return &d.Edges[i]
		}
	}
	return nil
}

// Property returns the property definition with the given key from a
// definition's property list, or nil.
func Property(props []PropertyDef, key string) *PropertyDef {
	for i := range props {
		if props[i].Key == key {
			return &props[i]
		}
	}
	return nil
}

// TypeName renders a display name for a type: its label key, or a stable
// abstract placeholder.
func TypeName(t *Type, abstractIdx int) string {
	if t.Labeled() {
		return t.LabelKey()
	}
	return fmt.Sprintf("Abstract%d", abstractIdx)
}
