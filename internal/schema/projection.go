package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Canonical projections of a schema for equivalence and monotonicity
// checks. Two discovery strategies that are not byte-identical (a sharded
// run versus a serial one) still have to agree on these.

// LabeledProjection canonicalizes the labeled portion of a finalized
// schema: for every labeled type, the sorted label set maps to its instance
// count and per-property data type + mandatory flag. Abstract (unlabeled)
// types are summarized by their total instance count only — how unlabeled
// elements group is clustering-order-dependent across strategies, but
// every element must still be accounted for.
func LabeledProjection(def *Def) map[string]string {
	proj := map[string]string{}
	abstract := 0
	add := func(kind string, labels []string, isAbstract bool, instances int, props []PropertyDef) {
		if isAbstract {
			abstract += instances
			return
		}
		var b strings.Builder
		fmt.Fprintf(&b, "inst=%d", instances)
		sorted := append([]PropertyDef(nil), props...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
		for _, p := range sorted {
			fmt.Fprintf(&b, " %s:%v/mand=%t", p.Key, p.DataType, p.Mandatory)
		}
		key := append([]string(nil), labels...)
		sort.Strings(key)
		proj[kind+":"+strings.Join(key, "|")] = b.String()
	}
	for _, n := range def.Nodes {
		add("node", n.Labels, n.Abstract, n.Instances, n.Properties)
	}
	for _, e := range def.Edges {
		add("edge", e.Labels, e.Abstract, e.Instances, e.Properties)
	}
	proj["abstract-instances"] = fmt.Sprintf("%d", abstract)
	return proj
}

// TypeFingerprint folds an accumulating (pre-finalize) schema into the
// label-set → property-key-union map monotonicity checks compare: under
// Algorithm 2 both the type set and each union may only grow batch over
// batch (PG-HIVE Lemmas 1–2).
func TypeFingerprint(s *Schema) map[string][]string {
	out := map[string][]string{}
	fold := func(prefix string, types []*Type) {
		merged := map[string]map[string]struct{}{}
		for _, t := range types {
			key := prefix + strings.Join(t.LabelStrings(), "|")
			props := merged[key]
			if props == nil {
				props = map[string]struct{}{}
				merged[key] = props
			}
			for _, k := range t.PropKeyStrings() {
				props[k] = struct{}{}
			}
		}
		for key, props := range merged {
			keys := make([]string, 0, len(props))
			for k := range props {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			out[key] = keys
		}
	}
	fold("n:", s.NodeTypes)
	fold("e:", s.EdgeTypes)
	return out
}

// FingerprintSubset reports whether fingerprint a is contained in b: every
// type key of a exists in b and its property union is a subset of b's —
// the monotone-growth order on TypeFingerprint outputs.
func FingerprintSubset(a, b map[string][]string) bool {
	for key, props := range a {
		bProps, ok := b[key]
		if !ok {
			return false
		}
		set := make(map[string]struct{}, len(bProps))
		for _, k := range bProps {
			set[k] = struct{}{}
		}
		for _, k := range props {
			if _, ok := set[k]; !ok {
				return false
			}
		}
	}
	return true
}
