package core

import (
	"bytes"
	"testing"

	"pghive/internal/pg"
	"pghive/internal/schema"
	"pghive/internal/serialize"
)

// TestOnEpochWithoutDrift: the publication hook alone (DriftPolicy off)
// activates the epoch clock — snapshots fire every EpochInterval batches
// with monotone epoch numbers and immutable defs — while the discovered
// schema stays byte-identical to a hook-free run and Result.Drift stays nil
// (no policy means no drift activity).
func TestOnEpochWithoutDrift(t *testing.T) {
	batches := driftStream(6, 0)
	base := DefaultConfig()
	want := Discover(pg.NewSliceSource(batches...), base)
	wantJSON, _ := renderDef(t, want.Def)

	var snaps []EpochSnapshot
	cfg := base
	cfg.EpochInterval = 2
	cfg.OnEpoch = func(s EpochSnapshot) { snaps = append(snaps, s) }
	got := Discover(pg.NewSliceSource(batches...), cfg)
	gotJSON, _ := renderDef(t, got.Def)

	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("OnEpoch run diverges from hook-free run\nwant %s\ngot  %s", wantJSON, gotJSON)
	}
	if got.Drift != nil {
		t.Errorf("epoch-only mode must not report drift activity: %+v", got.Drift)
	}
	if len(snaps) != 3 {
		t.Fatalf("6 batches at interval 2 want 3 snapshots, got %d", len(snaps))
	}
	for i, s := range snaps {
		if s.Epoch != i+1 {
			t.Errorf("snapshot %d: epoch = %d, want %d", i, s.Epoch, i+1)
		}
		if s.Batches != (i+1)*2 {
			t.Errorf("snapshot %d: batches = %d, want %d", i, s.Batches, (i+1)*2)
		}
		if s.Def == nil {
			t.Fatalf("snapshot %d: nil def", i)
		}
		if i == 0 && s.Changes != nil {
			t.Errorf("baseline snapshot carries changes: %v", s.Changes)
		}
	}
	// The final snapshot's def matches the run's finalized schema: the last
	// window closed exactly at the stream end.
	var snapJSON, resJSON bytes.Buffer
	if err := serialize.WriteJSON(&snapJSON, snaps[2].Def); err != nil {
		t.Fatal(err)
	}
	if err := serialize.WriteJSON(&resJSON, got.Def); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapJSON.Bytes(), resJSON.Bytes()) {
		t.Errorf("final snapshot def differs from Result.Def")
	}
}

// TestOnEpochSnapshotImmutable: a retained snapshot def does not change as
// later batches merge — the published epochs are true copy-on-write views.
func TestOnEpochSnapshotImmutable(t *testing.T) {
	batches := driftStream(6, 2)
	var first *schema.Def
	var firstJSON []byte
	cfg := DefaultConfig()
	cfg.EpochInterval = 2
	cfg.OnEpoch = func(s EpochSnapshot) {
		if first == nil {
			first = s.Def
			var buf bytes.Buffer
			if err := serialize.WriteJSON(&buf, first); err != nil {
				t.Error(err)
			}
			firstJSON = buf.Bytes()
		}
	}
	Discover(pg.NewSliceSource(batches...), cfg)
	var after bytes.Buffer
	if err := serialize.WriteJSON(&after, first); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstJSON, after.Bytes()) {
		t.Error("epoch 1 def mutated by later batches")
	}
}

// TestOnEpochComposesWithDrift: with a policy set, the same hook rides the
// existing drift epochs (no separate clock) and drift reporting still works.
func TestOnEpochComposesWithDrift(t *testing.T) {
	batches := driftStream(4, 2)
	epochs := 0
	cfg := DefaultConfig()
	cfg.DriftPolicy = DriftEvolve
	cfg.EpochInterval = 2
	cfg.OnEpoch = func(s EpochSnapshot) { epochs++ }
	res := Discover(pg.NewSliceSource(batches...), cfg)
	if res.Drift == nil || res.Drift.Epochs != epochs {
		t.Fatalf("hook saw %d epochs, summary %+v", epochs, res.Drift)
	}
	if res.Drift.Total() == 0 {
		t.Error("drifting stream reported no violations under evolve+hook")
	}
}
