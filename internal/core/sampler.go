package core

import (
	"hash/fnv"
	"sync"
)

// sampler decides which property-value observations enter the data-type
// sample (§4.4: 10 % of a property's values, and at least SampleMin). The
// decision is a pure function of (element kind, key, per-key observation
// ordinal, seed), so it is deterministic regardless of map-iteration or
// goroutine order. It is safe for concurrent use.
type sampler struct {
	mu     sync.Mutex
	counts map[string]int
	frac   float64
	min    int
	seed   uint64
}

func newSampler(frac float64, min int, seed int64) *sampler {
	return &sampler{
		counts: map[string]int{},
		frac:   frac,
		min:    min,
		seed:   uint64(seed),
	}
}

// next reports whether the next observation of the given property key (with
// a kind prefix such as "n:" or "e:") joins the sample.
func (s *sampler) next(key string) bool {
	s.mu.Lock()
	c := s.counts[key]
	s.counts[key] = c + 1
	s.mu.Unlock()
	if c < s.min {
		return true
	}
	return s.uniform(key, c) < s.frac
}

// uniform hashes (key, ordinal, seed) to a float in [0, 1).
func (s *sampler) uniform(key string, ordinal int) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	var buf [16]byte
	o := uint64(ordinal)
	for i := 0; i < 8; i++ {
		buf[i] = byte(o >> (8 * i))
		buf[8+i] = byte(s.seed >> (8 * i))
	}
	h.Write(buf[:])
	x := splitmix64(h.Sum64())
	return float64(x>>11) / float64(1<<53)
}

// splitmix64 scrambles the hash into well-distributed bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
