package core

import (
	"sync"
)

// sampler decides which property-value observations enter the data-type
// sample (§4.4: 10 % of a property's values, and at least SampleMin). The
// decision is a pure function of (element kind, key, per-key observation
// ordinal, seed), so it is deterministic regardless of map-iteration or
// goroutine order. It is safe for concurrent use.
//
// Counters are keyed by (kind tag, interned key ID) packed into one uint64,
// so the hot path never concatenates a "n:"/"e:" prefix onto the key; the
// decision hash streams the same prefix and key bytes the concatenated form
// hashed, keeping every decision identical to the string-keyed
// implementation.
type sampler struct {
	mu     sync.Mutex
	counts map[uint64]int
	frac   float64
	min    int
	seed   uint64
}

// samplerEdgeTag marks edge-property counter keys; node keys use the bare
// interned ID (tag 0).
const samplerEdgeTag = uint64(1) << 32

func newSampler(frac float64, min int, seed int64) *sampler {
	return &sampler{
		counts: map[uint64]int{},
		frac:   frac,
		min:    min,
		seed:   uint64(seed),
	}
}

// nextNode reports whether the next observation of the node-property key
// joins the sample.
func (s *sampler) nextNode(id uint32, key string) bool {
	return s.next(uint64(id), "n:", key)
}

// nextEdge reports whether the next observation of the edge-property key
// joins the sample.
func (s *sampler) nextEdge(id uint32, key string) bool {
	return s.next(samplerEdgeTag|uint64(id), "e:", key)
}

func (s *sampler) next(ck uint64, prefix, key string) bool {
	s.mu.Lock()
	c := s.counts[ck]
	s.counts[ck] = c + 1
	s.mu.Unlock()
	if c < s.min {
		return true
	}
	return s.uniform(prefix, key, c) < s.frac
}

// FNV-1a parameters (hash/fnv's 64-bit variant, inlined so the decision
// path allocates nothing).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// uniform hashes (prefix, key, ordinal, seed) to a float in [0, 1). The
// prefix and key stream through the hash back to back, so the digest —
// and every sampling decision — equals the former prefix+key
// concatenation's.
func (s *sampler) uniform(prefix, key string, ordinal int) float64 {
	h := fnvString(fnvString(fnvOffset64, prefix), key)
	o := uint64(ordinal)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(o >> (8 * i)))
		h *= fnvPrime64
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(s.seed >> (8 * i)))
		h *= fnvPrime64
	}
	x := splitmix64(h)
	return float64(x>>11) / float64(1<<53)
}

// splitmix64 scrambles the hash into well-distributed bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
