// Package core implements the PG-HIVE schema-discovery pipeline: Algorithm 1
// (batch loop: preprocess → LSH clustering → type extraction → optional
// post-processing) and Algorithm 2 (extracting and merging types), including
// the incremental mode in which every batch's clusters are merged into the
// running schema under the monotone rules of §4.6.
package core

import (
	"runtime"
	"sync"

	"pghive/internal/align"
	"pghive/internal/embed"
	"pghive/internal/lsh"
	"pghive/internal/obs"
	"pghive/internal/schema"
	"pghive/internal/vectorize"
)

// Method selects the LSH clustering family (§4.2).
type Method uint8

// Clustering methods.
const (
	// MethodELSH clusters the hybrid embedding+indicator vectors with
	// Euclidean (p-stable) LSH.
	MethodELSH Method = iota
	// MethodMinHash clusters the token-set representation with MinHash.
	MethodMinHash
)

// String names the method the way the paper does.
func (m Method) String() string {
	switch m {
	case MethodELSH:
		return "PG-HIVE-ELSH"
	case MethodMinHash:
		return "PG-HIVE-MinHash"
	default:
		return "PG-HIVE-?"
	}
}

// Config controls a discovery run. The zero value plus DefaultConfig's
// fields reproduce the paper's configuration: adaptive LSH parameters,
// θ = 0.9, 10 %/≥1000 data-type sampling.
type Config struct {
	// Method is the clustering family.
	Method Method
	// Theta is the Jaccard merge threshold θ of Algorithm 2.
	Theta float64
	// Embedding configures the per-batch Word2Vec label model.
	Embedding embed.Config
	// LabelWeight scales the embedding block relative to the binary
	// property indicators (0 means the vectorizer default).
	LabelWeight float64
	// SemanticLabels trains the label embedding on multi-label
	// co-occurrence so overlapping label sets attract (off by default;
	// see vectorize.Config.SemanticLabels).
	SemanticLabels bool
	// AlignLabels enables label alignment for integration scenarios (the
	// paper's future-work item (c)): label variants such as Organization /
	// Organisation are canonicalized before clustering, so sources with
	// inconsistent label conventions land in shared types. Uses
	// AlignThreshold over AlignSimilarity.
	AlignLabels bool
	// AlignThreshold is the similarity threshold for label alignment
	// (0 means 0.8).
	AlignThreshold float64
	// AlignSimilarity overrides the label similarity function (nil means
	// normalized edit distance over folded labels; an embedding- or
	// LLM-backed scorer can drop in).
	AlignSimilarity align.Similarity
	// NodeParams and EdgeParams override the adaptive LSH parameters when
	// non-nil (the paper's manual mode; Figure 6 sweeps these).
	NodeParams *lsh.Params
	EdgeParams *lsh.Params
	// MinHashRows, when > 0, switches MinHash clustering to banded mode
	// with that many rows per band; 0 groups by the full signature.
	MinHashRows int
	// SampleDatatypes makes Finalize use the sample-based data-type
	// inference (the paper's optional flag, §4.4).
	SampleDatatypes bool
	// Participation enables edge lower-bound analysis in Finalize: the
	// cardinality lower bound upgrades from 0 to 1 when every source-type
	// instance carries such an edge (the paper's §4.4 future-work step).
	Participation bool
	// SampleFraction and SampleMin control the data-type sample: every
	// property's first SampleMin observations are always sampled, then a
	// SampleFraction share of the rest (paper: 10 %, at least 1000).
	SampleFraction float64
	SampleMin      int
	// TrackMembers records per-type member element IDs (needed by the
	// evaluation harness to compute F1*; costs memory).
	TrackMembers bool
	// DenseSignatures disables the factored signature kernels and hashes
	// every element through the dense O(T·(d+K)) loops over materialized
	// hybrid vectors — the pre-factoring behaviour, retained for A/B
	// benchmarking (pghive-bench -exp lsh) and as an escape hatch. The
	// default factored path exploits the shared-prefix/sparse-suffix
	// structure of §4.1's vectors: per-(label-token, table) projection dots
	// are cached and each element costs O(T·nnz); MinHash signatures are
	// memoized per distinct element record. Both paths produce bit-identical
	// signatures and therefore byte-identical schemas
	// (TestFactoredMatchesDense), so this knob — like Parallelism and
	// PipelineDepth — is excluded from the checkpoint fingerprint.
	DenseSignatures bool
	// Parallelism bounds worker goroutines for vectorization and hashing;
	// 0 means GOMAXPROCS.
	Parallelism int
	// Telemetry receives execution events during the run: per-stage spans,
	// counters (batches, elements, clusters, retries, cache hits, checkpoint
	// bytes) and LSH bucket-occupancy histograms. nil disables
	// instrumentation — the no-op path costs zero allocations and is pinned
	// by a benchmark. The sink must be safe for concurrent use: the
	// overlapped engine emits from several goroutines. Execution-only: like
	// Parallelism and PipelineDepth it never affects the discovered schema
	// and is excluded from the checkpoint fingerprint.
	Telemetry obs.Sink
	// Shards partitions the element stream across that many independent
	// discovery pipelines — each with its own schema, sampler and embedding
	// session — whose partial schemas are merged when the stream ends
	// (DiscoverSharded/DiscoverShardedFT). Elements are assigned to shards by
	// a fixed hash of their IDs (pg.ShardOf), so the partition is
	// deterministic and batch-boundary independent. 0 or 1 runs the single
	// unsharded pipeline and produces byte-identical output to Discover.
	// Values > 1 produce a deterministic schema for a fixed (Seed, Shards),
	// but not byte-identical to the serial run: each shard clusters and
	// samples only its own elements, so abstract-type composition and
	// SampleKinds can differ (see DESIGN.md §11). Not part of the checkpoint
	// fingerprint — sharded checkpoints use their own container format
	// (PGCK6) that records the shard count explicitly.
	Shards int
	// MemBudgetBytes caps the evidence layer's retained memory. 0 (the
	// default) keeps today's exact accumulators: per-endpoint degree
	// counters and per-property value hash sets, whose memory grows with
	// the number of distinct endpoints and values. A positive budget
	// switches the schema to sketch-backed evidence (HyperLogLog distinct
	// counts, count-min + space-saving degree maxima) sized by
	// schema.PolicyForBudget, so retained evidence memory is constant in
	// stream size. Sketched evidence changes what the constraints see —
	// uniqueness and max-degree become statistical estimates — so the
	// budget is part of the checkpoint fingerprint.
	MemBudgetBytes int64
	// ExactEvidence is the escape hatch: with a budget set it forces the
	// exact accumulators anyway (byte-identical output to an unbudgeted
	// run), so the budget then only governs the ingest spill thresholds.
	ExactEvidence bool
	// DriftPolicy enables streaming conformance checking: every batch is
	// validated against the schema of the current epoch at the serialized
	// extract point, before its candidates merge, and classified violations
	// flow out as obs drift counters and drift-log records (see drift.go).
	// DriftOff (the zero value) disables validation entirely. Evolve and
	// alert are execution-only — the discovered schema is byte-identical to
	// a validator-free run — so they are excluded from the checkpoint
	// fingerprint; quarantine withholds violating batches from the merge and
	// therefore fingerprints (together with EpochInterval).
	DriftPolicy DriftPolicy
	// EpochInterval is the epoch window length: every that many batches
	// through the extract gate (merged or quarantined), the engine snapshots
	// the finalized schema, diffs it against the previous epoch and installs
	// it as the new validation target. 0 means DefaultEpochInterval.
	EpochInterval int
	// DriftLog, when non-nil, receives JSONL drift records: classified
	// violation batches (under alert/quarantine) and epoch diffs. Shared by
	// every shard of a sharded run; execution-only.
	DriftLog *DriftLog
	// OnEpoch, when non-nil, receives an EpochSnapshot at every epoch
	// boundary — the resident schema service's publication hook. Setting it
	// activates the epoch clock even under DriftPolicy off (snapshot + diff
	// every EpochInterval batches, no validation), so a server can publish
	// copy-on-write schema epochs without paying for conformance checking.
	// The hook runs at the serialized extract point and must return quickly;
	// the snapshot Def is immutable and safe to retain. Execution-only: it
	// observes the schema but never feeds back, so — like Telemetry — it is
	// excluded from the checkpoint fingerprint. In a sharded run each shard
	// fires the hook for its own partial schema (Shard tags the origin);
	// whole-fleet publication goes through the checkpoint layer instead
	// (see internal/serve).
	OnEpoch func(EpochSnapshot)
	// driftShard tags this pipeline's drift-log records with its shard index
	// (set by shardConfig; 0 for unsharded runs).
	driftShard int
	// PipelineDepth controls the overlapped batch execution engine used by
	// Discover/Drain. Values > 1 allow that many batches in flight at once:
	// a prefetch goroutine keeps the next batch loaded while the current
	// one computes, preprocessing and LSH clustering of batch i+1 overlap
	// candidate-building/extraction of batch i, and node and edge
	// clustering of the same batch run concurrently. Extraction into the
	// shared schema stays serialized in batch order, so the finalized
	// schema is byte-identical to a serial run with the same seed (the
	// monotone guarantee S_i ⊑ S_{i+1} is scheduling-independent).
	// 1 forces the fully serial path; 0 means DefaultPipelineDepth.
	PipelineDepth int
	// Seed drives all randomness.
	Seed int64
}

// DefaultPipelineDepth is the batch-overlap depth used when
// Config.PipelineDepth is 0: deep enough to keep the load, cluster and
// extract stages all busy, shallow enough to bound resident batches.
const DefaultPipelineDepth = 4

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		Method:         MethodELSH,
		Theta:          0.9,
		Embedding:      embed.DefaultConfig(),
		SampleFraction: 0.10,
		SampleMin:      1000,
		Seed:           1,
	}
}

func (c Config) withDefaults() Config {
	if c.Theta <= 0 {
		c.Theta = 0.9
	}
	if c.SampleFraction <= 0 {
		c.SampleFraction = 0.10
	}
	if c.SampleMin <= 0 {
		c.SampleMin = 1000
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = DefaultPipelineDepth
	}
	if c.EpochInterval <= 0 {
		c.EpochInterval = DefaultEpochInterval
	}
	return c
}

// evidencePolicy derives the schema evidence policy from the memory budget:
// nil (exact evidence, today's behaviour) when no budget is set or the
// -exact-evidence escape hatch is on, otherwise the sketch parameters
// PolicyForBudget picks for the budget tier.
func (c Config) evidencePolicy() *schema.EvidencePolicy {
	if c.MemBudgetBytes <= 0 || c.ExactEvidence {
		return nil
	}
	return schema.PolicyForBudget(c.MemBudgetBytes)
}

func (c Config) vectorizeConfig() vectorize.Config {
	vc := vectorize.Config{
		Embedding:      c.Embedding,
		LabelWeight:    c.LabelWeight,
		SemanticLabels: c.SemanticLabels,
	}
	if vc.Embedding.Dim == 0 {
		// Leave Dim zero: the vectorizer picks it from the batch's label
		// vocabulary. Fill the remaining hyperparameters with defaults.
		def := embed.DefaultConfig()
		def.Dim = 0
		def.Seed = c.Seed
		vc.Embedding = def
	}
	return vc
}

// parmap runs f(i) for i in [0, n) across at most workers goroutines.
// Results written to index-disjoint slots keep the computation
// deterministic.
func parmap(n, workers int, f func(i int)) {
	parmapChunks(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// parmapChunks partitions [0, n) into at most workers contiguous ranges and
// runs f(lo, hi) on each, one range per goroutine — the chunked variant for
// workers that carry per-goroutine scratch (e.g. a factored-LSH hasher).
func parmapChunks(n, workers int, f func(lo, hi int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
