package core

import (
	"sync/atomic"
	"time"

	"pghive/internal/align"
	"pghive/internal/infer"
	"pghive/internal/lsh"
	"pghive/internal/obs"
	"pghive/internal/pg"
	"pghive/internal/schema"
	"pghive/internal/vectorize"
)

// BatchReport records what happened while processing one batch: sizes,
// chosen LSH parameters, cluster counts and per-phase wall-clock durations
// (the timings behind Figures 5 and 7). Load and Wall are recorded even
// without a telemetry sink, so throughput reporting never requires one.
type BatchReport struct {
	Batch        int
	Nodes, Edges int
	NodeClusters int
	EdgeClusters int
	NodeParams   lsh.Params
	EdgeParams   lsh.Params
	// Load is the time spent pulling this batch from the source (under the
	// overlapped engine: the stall waiting on the prefetcher).
	Load       time.Duration
	Preprocess time.Duration
	Cluster    time.Duration
	Extract    time.Duration
	// Wall is the real elapsed time from the batch's pull to the end of its
	// extraction. Under the overlapped engine it includes queue waits, so
	// Wall ≥ Load + Preprocess + Cluster + Extract and the per-batch Wall
	// values of concurrent batches overlap.
	Wall time.Duration
	// Shard is the discovery shard that processed this batch (0 for
	// unsharded runs). Stamped by the shard-merge driver; memory-only, not
	// serialized into checkpoints (each shard checkpoints its own reports,
	// whose index already is the shard).
	Shard int
}

// Total returns the batch's end-to-end processing time (CPU-stage sum,
// excluding load and queue waits).
func (r BatchReport) Total() time.Duration { return r.Preprocess + r.Cluster + r.Extract }

// Throughput returns the batch's elements per second of wall-clock time
// (0 when Wall was not recorded).
func (r BatchReport) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Nodes+r.Edges) / r.Wall.Seconds()
}

// Pipeline is an incremental PG-HIVE discovery session. Feed it batches
// with ProcessBatch; the schema grows monotonically (S_i ⊑ S_{i+1}).
type Pipeline struct {
	cfg     Config
	schema  *schema.Schema
	sampler *sampler
	aligner *align.Aligner
	session *vectorize.Session
	reports []BatchReport
	// clusterEst tracks the cluster count each kind produced on the most
	// recent batch — the presize hint for the next batch's signature
	// bucket map (atomic: cluster stages of different batches may run
	// concurrently under the overlapped engine).
	clusterEst [2]atomic.Int64
	instr      obs.Instr
	// lastSess is the session-stats frontier already emitted to the sink;
	// preprocess emits per-batch deltas against it (preprocess is
	// serialized, so no locking is needed).
	lastSess vectorize.SessionStats
	// drift is the streaming conformance machinery (nil when
	// Config.DriftPolicy is DriftOff); driftSkipped accumulates the batches
	// the quarantine policy withheld. Both are touched only from the
	// serialized extract point, so no locking is needed — in particular
	// driftSkipped is kept separate from the fault puller's skip list, which
	// lives on the prep goroutine.
	drift        *driftState
	driftSkipped []SkipReport
}

// NewPipeline starts a discovery session.
func NewPipeline(cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	p := &Pipeline{
		cfg:     cfg,
		schema:  schema.NewSchema(),
		sampler: newSampler(cfg.SampleFraction, cfg.SampleMin, cfg.Seed),
		session: vectorize.NewSession(cfg.vectorizeConfig()),
		instr:   obs.NewInstr(cfg.Telemetry),
	}
	p.schema.SetEvidencePolicy(cfg.evidencePolicy())
	p.drift = newDriftState(cfg)
	if cfg.AlignLabels {
		// The aligner persists across batches so alignment classes stay
		// stable throughout an incremental run.
		p.aligner = align.NewAligner(cfg.AlignSimilarity, cfg.AlignThreshold)
	}
	return p
}

// Aligner exposes the label aligner (nil unless AlignLabels is set), so
// callers can report the discovered alignment classes.
func (p *Pipeline) Aligner() *align.Aligner { return p.aligner }

// alignBatch rewrites label slices through the aligner without mutating
// the caller's data (label slices alias graph storage).
func (p *Pipeline) alignBatch(b *pg.Batch) *pg.Batch {
	if p.aligner == nil {
		return b
	}
	out := &pg.Batch{
		Nodes: make([]pg.NodeRecord, len(b.Nodes)),
		Edges: make([]pg.EdgeRecord, len(b.Edges)),
	}
	copy(out.Nodes, b.Nodes)
	copy(out.Edges, b.Edges)
	for i := range out.Nodes {
		out.Nodes[i].Labels = p.aligner.CanonicalSet(out.Nodes[i].Labels)
	}
	for i := range out.Edges {
		out.Edges[i].Labels = p.aligner.CanonicalSet(out.Edges[i].Labels)
		out.Edges[i].SrcLabels = p.aligner.CanonicalSet(out.Edges[i].SrcLabels)
		out.Edges[i].DstLabels = p.aligner.CanonicalSet(out.Edges[i].DstLabels)
	}
	return out
}

// Schema returns the evolving schema (do not mutate during processing).
func (p *Pipeline) Schema() *schema.Schema { return p.schema }

// Reports returns one report per processed batch.
func (p *Pipeline) Reports() []BatchReport { return p.reports }

// Config returns the effective configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// staged is a batch after the preprocess stage: aligned, vectorized, and
// ready to cluster. seq is the absolute batch index within the run (the
// Batch the report will carry once extracted in order).
type staged struct {
	seq    int
	b      *pg.Batch
	vz     *vectorize.Vectorizer
	start  time.Time // preprocess begin; anchors the report's Wall
	report BatchReport
}

// computed is a batch after the cluster stage, awaiting ordered extraction.
type computed struct {
	seq          int
	b            *pg.Batch
	start        time.Time
	nodeClusters []lsh.Cluster
	edgeClusters []lsh.Cluster
	report       BatchReport
}

// slot maps a batch sequence number onto its pipeline-depth slot — the
// trace track the batch's spans render on.
func (p *Pipeline) slot(seq int) int {
	if d := p.cfg.PipelineDepth; d > 1 {
		return seq % d
	}
	return 0
}

// ProcessBatch runs the main pipeline of Algorithm 1 (lines 3-6) on one
// batch: preprocess into vectors/sets, LSH-cluster nodes and edges, build
// cluster representatives, and merge them into the schema via Algorithm 2.
// Stages run serially; Drain overlaps them across batches when
// Config.PipelineDepth > 1.
func (p *Pipeline) ProcessBatch(b *pg.Batch) BatchReport {
	return p.processSerial(b, p.nextSeq(), 0)
}

// nextSeq is the next batch sequence number for serial feeding: processed
// batches plus any the drift policy quarantined (which consumed a sequence
// number but produced no report).
func (p *Pipeline) nextSeq() int {
	n := len(p.reports)
	if p.drift != nil {
		n += p.drift.quarantined
	}
	return n
}

// processSerial is ProcessBatch with the sequence number and the
// already-measured load time threaded through (Drain's serial path measures
// the source pull and tracks sequence numbers across quarantined batches).
func (p *Pipeline) processSerial(b *pg.Batch, seq int, load time.Duration) BatchReport {
	st := p.preprocess(b, seq)
	st.report.Load = load
	return p.extractChecked(p.clusterSerial(st), -1)
}

// clusterSerial runs the cluster stage for one staged batch on the calling
// goroutine, node kind then edge kind — the strictly serial counterpart of
// the engine's clusterStage (which see), shared by ProcessBatch and the
// depth-1 DrainFT path.
func (p *Pipeline) clusterSerial(st staged) computed {
	c := computed{seq: st.seq, b: st.b, start: st.start, report: st.report}
	start := time.Now()
	c.nodeClusters, c.report.NodeParams = p.clusterKind(nodeSpec(st.b, st.vz), false)
	c.edgeClusters, c.report.EdgeParams = p.clusterKind(edgeSpec(st.b, st.vz), false)
	c.report.Cluster = time.Since(start)
	c.report.NodeClusters = len(c.nodeClusters)
	c.report.EdgeClusters = len(c.edgeClusters)
	p.clusterSpan(&c, start)
	return c
}

// clusterSpan emits the cluster-stage span for one computed batch.
func (p *Pipeline) clusterSpan(c *computed, start time.Time) {
	p.instr.Span(obs.Span{
		Stage: obs.StageCluster, Batch: c.seq, Slot: p.slot(c.seq),
		Start: start, Duration: c.report.Cluster,
		Elements: c.report.Nodes + c.report.Edges,
	})
}

// loadSpan emits the load-stage span for one pulled batch.
func (p *Pipeline) loadSpan(seq int, b *pg.Batch, start time.Time, d time.Duration) {
	p.instr.Span(obs.Span{
		Stage: obs.StageLoad, Batch: seq, Slot: p.slot(seq),
		Start: start, Duration: d,
		Elements: len(b.Nodes) + len(b.Edges),
	})
}

// preprocess aligns and vectorizes one batch. Calls must happen in batch
// order: the aligner and the embedding session are order-dependent.
func (p *Pipeline) preprocess(b *pg.Batch, seq int) staged {
	st := staged{seq: seq, report: BatchReport{
		Nodes: len(b.Nodes),
		Edges: len(b.Edges),
	}}
	start := time.Now()
	st.start = start
	st.b = p.alignBatch(b)
	st.vz = p.session.Vectorize(st.b)
	st.report.Preprocess = time.Since(start)
	if p.instr.Enabled() {
		ss := p.session.Stats()
		p.instr.Add(obs.CtrEmbedTokensReused, ss.TokensReused-p.lastSess.TokensReused)
		p.instr.Add(obs.CtrEmbedTokensTrained, ss.TokensTrained-p.lastSess.TokensTrained)
		p.instr.Add(obs.CtrEmbedRetrains, ss.Retrains-p.lastSess.Retrains)
		p.lastSess = ss
		p.instr.Span(obs.Span{
			Stage: obs.StagePreprocess, Batch: seq, Slot: p.slot(seq),
			Start: start, Duration: st.report.Preprocess,
			Elements: st.report.Nodes + st.report.Edges,
		})
	}
	return st
}

// extract builds cluster representatives and merges them into the schema
// (Algorithm 2). It mutates shared, order-dependent state (schema, sampler)
// and must be called in batch order.
func (p *Pipeline) extract(c computed) BatchReport {
	c.report.Batch = len(p.reports)
	start := time.Now()
	p.internBatch(c.b)
	nodeCands := p.nodeCandidates(c.b, c.nodeClusters)
	edgeCands := p.edgeCandidates(c.b, c.edgeClusters)
	typesBefore := 0
	if p.instr.Enabled() {
		typesBefore = len(p.schema.Types(schema.NodeKind)) + len(p.schema.Types(schema.EdgeKind))
	}
	ExtractTypes(p.schema, schema.NodeKind, nodeCands, p.cfg.Theta)
	ExtractTypes(p.schema, schema.EdgeKind, edgeCands, p.cfg.Theta)
	c.report.Extract = time.Since(start)
	if !c.start.IsZero() {
		// Wall spans the batch's pull through its extraction: the load time
		// plus everything since preprocess began (including queue waits
		// under the overlapped engine).
		c.report.Wall = c.report.Load + time.Since(c.start)
	}
	p.reports = append(p.reports, c.report)
	if p.instr.Enabled() {
		created := len(p.schema.Types(schema.NodeKind)) + len(p.schema.Types(schema.EdgeKind)) - typesBefore
		p.instr.Add(obs.CtrTypesCreated, uint64(created))
		p.instr.Add(obs.CtrTypesMerged, uint64(len(nodeCands)+len(edgeCands)-created))
		p.instr.Add(obs.CtrBatches, 1)
		p.instr.Add(obs.CtrNodes, uint64(c.report.Nodes))
		p.instr.Add(obs.CtrEdges, uint64(c.report.Edges))
		p.instr.Add(obs.CtrNodeClusters, uint64(c.report.NodeClusters))
		p.instr.Add(obs.CtrEdgeClusters, uint64(c.report.EdgeClusters))
		p.instr.Span(obs.Span{
			Stage: obs.StageExtract, Batch: c.report.Batch, Slot: p.slot(c.seq),
			Start: start, Duration: c.report.Extract,
			Elements: c.report.Nodes + c.report.Edges,
		})
		if p.cfg.MemBudgetBytes > 0 {
			p.instr.Gauge(obs.GaugeMemBudgetBytes, uint64(p.cfg.MemBudgetBytes))
		}
		p.instr.Gauge(obs.GaugeEvidenceBytes, uint64(p.schema.EvidenceBytes()))
	}
	return c.report
}

// kindSpec parameterizes clustering over the element kind, deduplicating
// the former clusterNodes/clusterEdges bodies. Seeds are offset per kind so
// node and edge hash families stay independent.
type kindSpec struct {
	n           int
	isEdge      bool
	manual      *lsh.Params // Config.NodeParams / Config.EdgeParams
	dim         int
	labelTokens int
	vec         func(i int) []float64
	vecInto     func(i int, dst []float64)
	sets        func() [][]uint64
	enc         func() *vectorize.Encoding
}

func nodeSpec(b *pg.Batch, vz *vectorize.Vectorizer) kindSpec {
	return kindSpec{
		n:           len(b.Nodes),
		dim:         vz.NodeDim(),
		labelTokens: vz.LabelTokens(),
		vec:         func(i int) []float64 { return vz.NodeVector(&b.Nodes[i]) },
		vecInto:     func(i int, dst []float64) { vz.NodeVectorInto(&b.Nodes[i], dst) },
		sets:        func() [][]uint64 { return vz.NodeSets(b) },
		enc:         func() *vectorize.Encoding { return vz.NodeEncoding(b) },
	}
}

func edgeSpec(b *pg.Batch, vz *vectorize.Vectorizer) kindSpec {
	return kindSpec{
		n:           len(b.Edges),
		isEdge:      true,
		dim:         vz.EdgeDim(),
		labelTokens: vz.LabelTokens(),
		vec:         func(i int) []float64 { return vz.EdgeVector(&b.Edges[i]) },
		vecInto:     func(i int, dst []float64) { vz.EdgeVectorInto(&b.Edges[i], dst) },
		sets:        func() [][]uint64 { return vz.EdgeSets(b) },
		enc:         func() *vectorize.Encoding { return vz.EdgeEncoding(b) },
	}
}

// clusterKind clusters one element kind with the configured method and
// returns the clusters plus the parameters used. It only reads the
// Vectorizer snapshot captured in the spec, so different kinds — and
// different batches — may cluster concurrently. With arena set, element
// vectors are rendered into one contiguous allocation.
func (p *Pipeline) clusterKind(spec kindSpec, arena bool) ([]lsh.Cluster, lsh.Params) {
	clusters, params := p.clusterKindInner(spec, arena)
	p.clusterEst[kindIndex(spec.isEdge)].Store(int64(len(clusters)))
	if p.instr.Enabled() && len(clusters) > 0 {
		hist := obs.HistNodeOccupancy
		if spec.isEdge {
			hist = obs.HistEdgeOccupancy
		}
		for _, c := range clusters {
			p.instr.Observe(hist, uint64(len(c.Members)))
		}
	}
	return clusters, params
}

func kindIndex(isEdge bool) int {
	if isEdge {
		return 1
	}
	return 0
}

// bucketHint returns the presize hint for a signature bucket map: the
// cluster count the kind produced on the previous batch plus headroom.
// Batches of one stream keep yielding roughly the same clusters, so this
// tracks the true bucket count far better than the n/4+1 default; 0 (first
// batch) falls back to that default.
func (p *Pipeline) bucketHint(isEdge bool) int {
	est := int(p.clusterEst[kindIndex(isEdge)].Load())
	if est <= 0 {
		return 0
	}
	return est + est/8 + 16
}

func (p *Pipeline) clusterKindInner(spec kindSpec, arena bool) ([]lsh.Cluster, lsh.Params) {
	n := spec.n
	if n == 0 {
		return nil, lsh.Params{}
	}
	manual := p.cfg.NodeParams
	mhSeed, adaptSeed, famSeed := int64(101), int64(11), int64(102)
	if spec.isEdge {
		manual = p.cfg.EdgeParams
		mhSeed, adaptSeed, famSeed = 201, 12, 202
	}
	switch p.cfg.Method {
	case MethodMinHash:
		params := lsh.Params{}
		if manual != nil {
			params = *manual
		} else {
			params = adaptFromSample(spec, p.cfg.Seed+adaptSeed)
		}
		mh := lsh.NewMinHash(params.Tables, p.cfg.Seed+mhSeed)
		if p.cfg.DenseSignatures {
			sets := spec.sets()
			if p.cfg.MinHashRows > 0 {
				return mh.ClusterBanded(sets, p.cfg.MinHashRows), params
			}
			hashes := make([]uint64, n)
			parmap(n, p.cfg.Parallelism, func(i int) { hashes[i] = mh.SignatureHash(sets[i]) })
			return lsh.GroupByHashSized(hashes, p.bucketHint(spec.isEdge)), params
		}
		return p.clusterMinHashFactored(spec, mh), params
	default:
		if p.cfg.DenseSignatures {
			vectors := p.renderVectors(spec, arena)
			params := manual
			if params == nil {
				adapted := lsh.AdaptParamsAll(vectors, spec.labelTokens, spec.isEdge, p.cfg.Seed+adaptSeed)
				params = &adapted
			}
			fam := lsh.NewELSH(spec.dim, params.Bucket, params.Tables, p.cfg.Seed+famSeed)
			hashes := make([]uint64, n)
			parmap(n, p.cfg.Parallelism, func(i int) { hashes[i] = fam.SignatureHash(vectors[i]) })
			return lsh.GroupByHashSized(hashes, p.bucketHint(spec.isEdge)), *params
		}
		params := manual
		if params == nil {
			// Adaptation needs Euclidean distances, so only the µ sample is
			// rendered densely; the signature pass below never materializes
			// a vector. Same sample indexes and float values as the dense
			// path's AdaptParamsAll → identical parameters.
			adapted := adaptFromSample(spec, p.cfg.Seed+adaptSeed)
			params = &adapted
		}
		fam := lsh.NewELSH(spec.dim, params.Bucket, params.Tables, p.cfg.Seed+famSeed)
		enc := spec.enc()
		fk := lsh.NewFactoredELSH(fam, enc.PrefixDim, enc.Prefixes)
		// The factored kernel computes one projection-dot set per distinct
		// label prefix; every further element sharing that prefix is a hit.
		p.instr.Add(obs.CtrPrefixDotsComputed, uint64(len(enc.Prefixes)))
		p.instr.Add(obs.CtrPrefixDotHits, uint64(n-len(enc.Prefixes)))
		hashes := make([]uint64, n)
		parmapChunks(n, p.cfg.Parallelism, func(lo, hi int) {
			h := fk.Hasher()
			for i := lo; i < hi; i++ {
				r := enc.Records[i]
				hashes[i] = h.SignatureHash(r.TokenID, r.Props)
			}
		})
		return lsh.GroupByHashSized(hashes, p.bucketHint(spec.isEdge)), *params
	}
}

// clusterMinHashFactored is the factored MinHash path: elements sharing a
// record (prefix tokens + property-index set — the common case, most
// elements share a type) are deduplicated and each distinct record's
// signature is computed once. Exact-key dedup keeps the per-element hashes
// bit-identical to the dense per-element loop.
func (p *Pipeline) clusterMinHashFactored(spec kindSpec, mh *lsh.MinHash) []lsh.Cluster {
	enc := spec.enc()
	recID, reps := enc.DistinctRecords()
	// One signature per distinct record; every duplicate record is a hit.
	p.instr.Add(obs.CtrRecordSigsComputed, uint64(len(reps)))
	p.instr.Add(obs.CtrRecordSigHits, uint64(spec.n-len(reps)))
	if p.cfg.MinHashRows > 0 {
		distinct := make([][]uint64, len(reps))
		parmapChunks(len(reps), p.cfg.Parallelism, func(lo, hi int) {
			var set []uint64
			for j := lo; j < hi; j++ {
				set = enc.AppendSet(set[:0], reps[j])
				distinct[j] = mh.Signature(set)
			}
		})
		sigs := make([][]uint64, spec.n)
		for i, id := range recID {
			sigs[i] = distinct[id]
		}
		return mh.ClusterBandedSignatures(sigs, p.cfg.MinHashRows)
	}
	distinct := make([]uint64, len(reps))
	parmapChunks(len(reps), p.cfg.Parallelism, func(lo, hi int) {
		var set []uint64
		for j := lo; j < hi; j++ {
			set = enc.AppendSet(set[:0], reps[j])
			distinct[j] = mh.SignatureHash(set)
		}
	})
	hashes := make([]uint64, spec.n)
	for i, id := range recID {
		hashes[i] = distinct[id]
	}
	return lsh.GroupByHashSized(hashes, p.bucketHint(spec.isEdge))
}

// renderVectors materializes every element vector of one kind, either as one
// allocation per record (the serial path's historical pattern) or sliced out
// of a single contiguous arena — same float values, far fewer allocations
// and much less GC pressure on large batches.
func (p *Pipeline) renderVectors(spec kindSpec, arena bool) [][]float64 {
	vectors := make([][]float64, spec.n)
	if arena && spec.dim > 0 {
		backing := make([]float64, spec.n*spec.dim)
		for i := range vectors {
			vectors[i] = backing[i*spec.dim : (i+1)*spec.dim : (i+1)*spec.dim]
		}
		parmap(spec.n, p.cfg.Parallelism, func(i int) { spec.vecInto(i, vectors[i]) })
		return vectors
	}
	parmap(spec.n, p.cfg.Parallelism, func(i int) { vectors[i] = spec.vec(i) })
	return vectors
}

// adaptFromSample draws the paper's adaptation sample and renders only those
// elements densely (into one arena) to estimate the distance scale µ — the
// same indexes and float values AdaptParamsAll sees, without materializing
// the full batch.
func adaptFromSample(spec kindSpec, seed int64) lsh.Params {
	idx := lsh.SampleIndexes(spec.n, seed)
	backing := make([]float64, len(idx)*spec.dim)
	sample := make([][]float64, len(idx))
	for i, j := range idx {
		v := backing[i*spec.dim : (i+1)*spec.dim : (i+1)*spec.dim]
		spec.vecInto(j, v)
		sample[i] = v
	}
	return lsh.AdaptParams(sample, spec.n, spec.labelTokens, spec.isEdge, seed)
}

// internBatch pre-interns every label, property key and endpoint ID the
// batch's candidate builders will touch. extract is serialized in batch
// order, so interning here is single-threaded — ID assignment is
// deterministic in stream order — and the parallel candidate observers
// below only perform read-only symtab lookups (Intern hits on every call),
// making the shared table race-free without locking.
func (p *Pipeline) internBatch(b *pg.Batch) {
	tab := p.schema.Tab
	// Under a sketched degree policy endpoint IDs are folded straight into
	// the sketches keyed by their raw global values, so the symtab endpoint
	// table — the dominant retained allocation on endpoint-heavy streams —
	// is never populated.
	internEps := true
	if pol := tab.Evidence(); pol != nil && pol.SketchDegrees {
		internEps = false
	}
	for i := range b.Nodes {
		n := &b.Nodes[i]
		for _, l := range n.Labels {
			tab.Intern(l)
		}
		for k := range n.Props {
			tab.Intern(k)
		}
	}
	for i := range b.Edges {
		e := &b.Edges[i]
		for _, l := range e.Labels {
			tab.Intern(l)
		}
		for _, l := range e.SrcLabels {
			tab.Intern(l)
		}
		for _, l := range e.DstLabels {
			tab.Intern(l)
		}
		for k := range e.Props {
			tab.Intern(k)
		}
		if internEps {
			tab.InternEp(e.Src)
			tab.InternEp(e.Dst)
		}
	}
}

// nodeCandidates turns node clusters into candidate types (cluster
// representatives, §4.2): labels and property keys are unioned over the
// members, and per-property evidence is accumulated. The batch must have
// been pre-interned (internBatch), so the parallel observers only read the
// symtab.
func (p *Pipeline) nodeCandidates(b *pg.Batch, clusters []lsh.Cluster) []*schema.Type {
	out := make([]*schema.Type, len(clusters))
	parmap(len(clusters), p.cfg.Parallelism, func(ci int) {
		t := p.schema.NewType(schema.NodeKind)
		for _, i := range clusters[ci].Members {
			t.ObserveNode(&b.Nodes[i], p.sampler.nextNode, p.cfg.TrackMembers)
		}
		out[ci] = t
	})
	return out
}

// edgeCandidates mirrors nodeCandidates for edge clusters.
func (p *Pipeline) edgeCandidates(b *pg.Batch, clusters []lsh.Cluster) []*schema.Type {
	out := make([]*schema.Type, len(clusters))
	parmap(len(clusters), p.cfg.Parallelism, func(ci int) {
		t := p.schema.NewType(schema.EdgeKind)
		for _, i := range clusters[ci].Members {
			t.ObserveEdge(&b.Edges[i], p.sampler.nextEdge, p.cfg.TrackMembers)
		}
		out[ci] = t
	})
	return out
}

// Finalize runs post-processing (Algorithm 1 lines 7-10) and returns the
// finalized schema definition.
func (p *Pipeline) Finalize() *schema.Def {
	p.driftFinalEpoch()
	start := time.Now()
	def := infer.Finalize(p.schema, infer.Options{
		SampleBased:   p.cfg.SampleDatatypes,
		Participation: p.cfg.Participation,
	})
	p.instr.Span(obs.Span{
		Stage: obs.StagePostprocess, Batch: -1,
		Start: start, Duration: time.Since(start),
		Elements: len(def.Nodes) + len(def.Edges),
	})
	return def
}

// Result is the outcome of a full discovery run.
type Result struct {
	// Def is the finalized schema definition.
	Def *schema.Def
	// Schema is the raw accumulated schema with evidence.
	Schema *schema.Schema
	// Reports holds one entry per processed batch.
	Reports []BatchReport
	// Skipped lists the batches quarantined by a fault-tolerant run or by
	// the drift quarantine policy (empty for Discover/DiscoverGraph over
	// infallible sources without drift quarantine).
	Skipped []SkipReport
	// Drift summarizes the run's streaming conformance activity (nil when
	// Config.DriftPolicy is DriftOff).
	Drift *DriftSummary
	// Discovery is the total time spent in the main pipeline (load +
	// preprocess + cluster + extract), the quantity Figure 5 plots.
	Discovery time.Duration
	// PostProcess is the time spent finalizing constraints, data types and
	// cardinalities.
	PostProcess time.Duration
	// Telemetry is the run's aggregated metrics snapshot, present when
	// Config.Telemetry is (or fans out to) an *obs.Registry; nil otherwise.
	Telemetry *obs.Snapshot
}

// telemetrySnapshot captures the registry snapshot behind cfg.Telemetry,
// if any.
func telemetrySnapshot(cfg Config) *obs.Snapshot {
	reg := obs.FindRegistry(cfg.Telemetry)
	if reg == nil {
		return nil
	}
	return reg.Snapshot()
}

// Discover drains the source through a pipeline and finalizes the schema —
// the full Algorithm 1. With Config.PipelineDepth > 1 (the default) the
// overlapped execution engine runs; the result is byte-identical to a
// serial run with the same seed.
func Discover(src pg.Source, cfg Config) *Result {
	p := NewPipeline(cfg)
	start := time.Now()
	p.Drain(src)
	discovery := time.Since(start)

	start = time.Now()
	def := p.Finalize()
	post := time.Since(start)

	return &Result{
		Def:         def,
		Schema:      p.schema,
		Reports:     p.reports,
		Skipped:     p.driftSkipped,
		Drift:       p.driftSummary(),
		Discovery:   discovery,
		PostProcess: post,
		Telemetry:   telemetrySnapshot(p.cfg),
	}
}

// DiscoverGraph is a convenience wrapper: discover the schema of a fully
// loaded graph in a single batch.
func DiscoverGraph(g *pg.Graph, cfg Config) *Result {
	return Discover(pg.NewSliceSource(g.Snapshot()), cfg)
}
