package core

import (
	"time"

	"pghive/internal/align"
	"pghive/internal/infer"
	"pghive/internal/lsh"
	"pghive/internal/pg"
	"pghive/internal/schema"
	"pghive/internal/vectorize"
)

// BatchReport records what happened while processing one batch: sizes,
// chosen LSH parameters, cluster counts and per-phase wall-clock durations
// (the timings behind Figures 5 and 7).
type BatchReport struct {
	Batch        int
	Nodes, Edges int
	NodeClusters int
	EdgeClusters int
	NodeParams   lsh.Params
	EdgeParams   lsh.Params
	Preprocess   time.Duration
	Cluster      time.Duration
	Extract      time.Duration
}

// Total returns the batch's end-to-end processing time.
func (r BatchReport) Total() time.Duration { return r.Preprocess + r.Cluster + r.Extract }

// Pipeline is an incremental PG-HIVE discovery session. Feed it batches
// with ProcessBatch; the schema grows monotonically (S_i ⊑ S_{i+1}).
type Pipeline struct {
	cfg     Config
	schema  *schema.Schema
	sampler *sampler
	aligner *align.Aligner
	reports []BatchReport
}

// NewPipeline starts a discovery session.
func NewPipeline(cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	p := &Pipeline{
		cfg:     cfg,
		schema:  schema.NewSchema(),
		sampler: newSampler(cfg.SampleFraction, cfg.SampleMin, cfg.Seed),
	}
	if cfg.AlignLabels {
		// The aligner persists across batches so alignment classes stay
		// stable throughout an incremental run.
		p.aligner = align.NewAligner(cfg.AlignSimilarity, cfg.AlignThreshold)
	}
	return p
}

// Aligner exposes the label aligner (nil unless AlignLabels is set), so
// callers can report the discovered alignment classes.
func (p *Pipeline) Aligner() *align.Aligner { return p.aligner }

// alignBatch rewrites label slices through the aligner without mutating
// the caller's data (label slices alias graph storage).
func (p *Pipeline) alignBatch(b *pg.Batch) *pg.Batch {
	if p.aligner == nil {
		return b
	}
	out := &pg.Batch{
		Nodes: make([]pg.NodeRecord, len(b.Nodes)),
		Edges: make([]pg.EdgeRecord, len(b.Edges)),
	}
	copy(out.Nodes, b.Nodes)
	copy(out.Edges, b.Edges)
	for i := range out.Nodes {
		out.Nodes[i].Labels = p.aligner.CanonicalSet(out.Nodes[i].Labels)
	}
	for i := range out.Edges {
		out.Edges[i].Labels = p.aligner.CanonicalSet(out.Edges[i].Labels)
		out.Edges[i].SrcLabels = p.aligner.CanonicalSet(out.Edges[i].SrcLabels)
		out.Edges[i].DstLabels = p.aligner.CanonicalSet(out.Edges[i].DstLabels)
	}
	return out
}

// Schema returns the evolving schema (do not mutate during processing).
func (p *Pipeline) Schema() *schema.Schema { return p.schema }

// Reports returns one report per processed batch.
func (p *Pipeline) Reports() []BatchReport { return p.reports }

// Config returns the effective configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// ProcessBatch runs the main pipeline of Algorithm 1 (lines 3-6) on one
// batch: preprocess into vectors/sets, LSH-cluster nodes and edges, build
// cluster representatives, and merge them into the schema via Algorithm 2.
func (p *Pipeline) ProcessBatch(b *pg.Batch) BatchReport {
	report := BatchReport{
		Batch: len(p.reports),
		Nodes: len(b.Nodes),
		Edges: len(b.Edges),
	}

	start := time.Now()
	b = p.alignBatch(b)
	vz := vectorize.New(b, p.cfg.vectorizeConfig())
	report.Preprocess = time.Since(start)

	start = time.Now()
	nodeClusters, nodeParams := p.clusterNodes(b, vz)
	edgeClusters, edgeParams := p.clusterEdges(b, vz)
	report.Cluster = time.Since(start)
	report.NodeClusters = len(nodeClusters)
	report.EdgeClusters = len(edgeClusters)
	report.NodeParams = nodeParams
	report.EdgeParams = edgeParams

	start = time.Now()
	nodeCands := p.nodeCandidates(b, nodeClusters)
	edgeCands := p.edgeCandidates(b, edgeClusters)
	ExtractTypes(p.schema, schema.NodeKind, nodeCands, p.cfg.Theta)
	ExtractTypes(p.schema, schema.EdgeKind, edgeCands, p.cfg.Theta)
	report.Extract = time.Since(start)

	p.reports = append(p.reports, report)
	return report
}

// clusterNodes clusters the batch's nodes with the configured method and
// returns the clusters plus the parameters used.
func (p *Pipeline) clusterNodes(b *pg.Batch, vz *vectorize.Vectorizer) ([]lsh.Cluster, lsh.Params) {
	n := len(b.Nodes)
	if n == 0 {
		return nil, lsh.Params{}
	}
	switch p.cfg.Method {
	case MethodMinHash:
		params := p.nodeParams(n, vz, func(i int) []float64 { return vz.NodeVector(&b.Nodes[i]) })
		mh := lsh.NewMinHash(params.Tables, p.cfg.Seed+101)
		sets := vz.NodeSets(b)
		if p.cfg.MinHashRows > 0 {
			return mh.ClusterBanded(sets, p.cfg.MinHashRows), params
		}
		hashes := make([]uint64, n)
		parmap(n, p.cfg.Parallelism, func(i int) { hashes[i] = mh.SignatureHash(sets[i]) })
		return lsh.GroupByHash(hashes), params
	default:
		vectors := make([][]float64, n)
		parmap(n, p.cfg.Parallelism, func(i int) { vectors[i] = vz.NodeVector(&b.Nodes[i]) })
		params := p.cfg.NodeParams
		if params == nil {
			adapted := lsh.AdaptParamsAll(vectors, vz.LabelTokens(), false, p.cfg.Seed+11)
			params = &adapted
		}
		fam := lsh.NewELSH(vz.NodeDim(), params.Bucket, params.Tables, p.cfg.Seed+102)
		hashes := make([]uint64, n)
		parmap(n, p.cfg.Parallelism, func(i int) { hashes[i] = fam.SignatureHash(vectors[i]) })
		return lsh.GroupByHash(hashes), *params
	}
}

// clusterEdges mirrors clusterNodes for the batch's edges.
func (p *Pipeline) clusterEdges(b *pg.Batch, vz *vectorize.Vectorizer) ([]lsh.Cluster, lsh.Params) {
	n := len(b.Edges)
	if n == 0 {
		return nil, lsh.Params{}
	}
	switch p.cfg.Method {
	case MethodMinHash:
		params := p.edgeParamsFor(n, vz, func(i int) []float64 { return vz.EdgeVector(&b.Edges[i]) })
		mh := lsh.NewMinHash(params.Tables, p.cfg.Seed+201)
		sets := vz.EdgeSets(b)
		if p.cfg.MinHashRows > 0 {
			return mh.ClusterBanded(sets, p.cfg.MinHashRows), params
		}
		hashes := make([]uint64, n)
		parmap(n, p.cfg.Parallelism, func(i int) { hashes[i] = mh.SignatureHash(sets[i]) })
		return lsh.GroupByHash(hashes), params
	default:
		vectors := make([][]float64, n)
		parmap(n, p.cfg.Parallelism, func(i int) { vectors[i] = vz.EdgeVector(&b.Edges[i]) })
		params := p.cfg.EdgeParams
		if params == nil {
			adapted := lsh.AdaptParamsAll(vectors, vz.LabelTokens(), true, p.cfg.Seed+12)
			params = &adapted
		}
		fam := lsh.NewELSH(vz.EdgeDim(), params.Bucket, params.Tables, p.cfg.Seed+202)
		hashes := make([]uint64, n)
		parmap(n, p.cfg.Parallelism, func(i int) { hashes[i] = fam.SignatureHash(vectors[i]) })
		return lsh.GroupByHash(hashes), *params
	}
}

// nodeParams adapts (or returns the manual) parameters for MinHash node
// clustering, vectorizing only the adaptation sample.
func (p *Pipeline) nodeParams(n int, vz *vectorize.Vectorizer, vec func(i int) []float64) lsh.Params {
	if p.cfg.NodeParams != nil {
		return *p.cfg.NodeParams
	}
	return adaptFromSample(n, vz.LabelTokens(), false, p.cfg.Seed+11, vec)
}

func (p *Pipeline) edgeParamsFor(n int, vz *vectorize.Vectorizer, vec func(i int) []float64) lsh.Params {
	if p.cfg.EdgeParams != nil {
		return *p.cfg.EdgeParams
	}
	return adaptFromSample(n, vz.LabelTokens(), true, p.cfg.Seed+12, vec)
}

func adaptFromSample(n, labels int, isEdge bool, seed int64, vec func(i int) []float64) lsh.Params {
	idx := lsh.SampleIndexes(n, seed)
	sample := make([][]float64, len(idx))
	for i, j := range idx {
		sample[i] = vec(j)
	}
	return lsh.AdaptParams(sample, n, labels, isEdge, seed)
}

// nodeCandidates turns node clusters into candidate types (cluster
// representatives, §4.2): labels and property keys are unioned over the
// members, and per-property evidence is accumulated.
func (p *Pipeline) nodeCandidates(b *pg.Batch, clusters []lsh.Cluster) []*schema.Type {
	out := make([]*schema.Type, len(clusters))
	parmap(len(clusters), p.cfg.Parallelism, func(ci int) {
		t := schema.NewType(schema.NodeKind)
		for _, i := range clusters[ci].Members {
			rec := &b.Nodes[i]
			t.ObserveNode(rec, func(key string) bool { return p.sampler.next("n:" + key) }, p.cfg.TrackMembers)
		}
		out[ci] = t
	})
	return out
}

// edgeCandidates mirrors nodeCandidates for edge clusters.
func (p *Pipeline) edgeCandidates(b *pg.Batch, clusters []lsh.Cluster) []*schema.Type {
	out := make([]*schema.Type, len(clusters))
	parmap(len(clusters), p.cfg.Parallelism, func(ci int) {
		t := schema.NewType(schema.EdgeKind)
		for _, i := range clusters[ci].Members {
			rec := &b.Edges[i]
			t.ObserveEdge(rec, func(key string) bool { return p.sampler.next("e:" + key) }, p.cfg.TrackMembers)
		}
		out[ci] = t
	})
	return out
}

// Finalize runs post-processing (Algorithm 1 lines 7-10) and returns the
// finalized schema definition.
func (p *Pipeline) Finalize() *schema.Def {
	return infer.Finalize(p.schema, infer.Options{
		SampleBased:   p.cfg.SampleDatatypes,
		Participation: p.cfg.Participation,
	})
}

// Result is the outcome of a full discovery run.
type Result struct {
	// Def is the finalized schema definition.
	Def *schema.Def
	// Schema is the raw accumulated schema with evidence.
	Schema *schema.Schema
	// Reports holds one entry per processed batch.
	Reports []BatchReport
	// Discovery is the total time spent in the main pipeline (load +
	// preprocess + cluster + extract), the quantity Figure 5 plots.
	Discovery time.Duration
	// PostProcess is the time spent finalizing constraints, data types and
	// cardinalities.
	PostProcess time.Duration
}

// Discover drains the source through a pipeline and finalizes the schema —
// the full Algorithm 1.
func Discover(src pg.Source, cfg Config) *Result {
	p := NewPipeline(cfg)
	start := time.Now()
	for batch := src.Next(); batch != nil; batch = src.Next() {
		p.ProcessBatch(batch)
	}
	discovery := time.Since(start)

	start = time.Now()
	def := p.Finalize()
	post := time.Since(start)

	return &Result{
		Def:         def,
		Schema:      p.schema,
		Reports:     p.reports,
		Discovery:   discovery,
		PostProcess: post,
	}
}

// DiscoverGraph is a convenience wrapper: discover the schema of a fully
// loaded graph in a single batch.
func DiscoverGraph(g *pg.Graph, cfg Config) *Result {
	return Discover(pg.NewSliceSource(g.Snapshot()), cfg)
}
