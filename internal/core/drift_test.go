package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"pghive/internal/obs"
	"pghive/internal/pg"
	"pghive/internal/validate"
)

// driftStream builds a deterministic batched stream: `stable` batches of a
// fixed two-type profile (Person/Org nodes, one WORKS_AT edge per person so
// the epoch learns MaxOut = 1), then `drifted` batches that each carry one
// violation of every drift class the generator can witness: an unknown
// label (new_type), a new combination of known labels (new_label_set), a
// STRING in an INT property (widened_type), a Person without its mandatory
// name (missing_mandatory), and a person working at two orgs in one batch
// (cardinality_break).
func driftStream(stable, drifted int) []*pg.Batch {
	var batches []*pg.Batch
	id := pg.ID(1)
	next := func() pg.ID { id++; return id - 1 }
	person := func(b *pg.Batch, props pg.Properties) pg.ID {
		n := pg.NodeRecord{ID: next(), Labels: []string{"Person"}, Props: props}
		b.Nodes = append(b.Nodes, n)
		return n.ID
	}
	org := func(b *pg.Batch) pg.ID {
		n := pg.NodeRecord{ID: next(), Labels: []string{"Org"}, Props: pg.Properties{"name": pg.Str("o")}}
		b.Nodes = append(b.Nodes, n)
		return n.ID
	}
	worksAt := func(b *pg.Batch, src, dst pg.ID) {
		b.Edges = append(b.Edges, pg.EdgeRecord{
			ID: next(), Labels: []string{"WORKS_AT"}, Src: src, Dst: dst,
			SrcLabels: []string{"Person"}, DstLabels: []string{"Org"},
			Props: pg.Properties{"since": pg.Int(2020)},
		})
	}
	stableBatch := func(i int) *pg.Batch {
		b := &pg.Batch{}
		o := org(b)
		for j := 0; j < 20; j++ {
			p := person(b, pg.Properties{"name": pg.Str("p"), "age": pg.Int(int64(20 + (i*20+j)%50))})
			worksAt(b, p, o)
		}
		return b
	}
	for i := 0; i < stable; i++ {
		batches = append(batches, stableBatch(i))
	}
	for i := 0; i < drifted; i++ {
		b := stableBatch(stable + i)
		// new_type: a label outside the epoch vocabulary.
		b.Nodes = append(b.Nodes, pg.NodeRecord{ID: next(), Labels: []string{"Device"},
			Props: pg.Properties{"serial": pg.Str("d")}})
		// new_label_set: both labels known, combination unseen.
		b.Nodes = append(b.Nodes, pg.NodeRecord{ID: next(), Labels: []string{"Person", "Org"},
			Props: pg.Properties{"name": pg.Str("x")}})
		// widened_type: age is declared INT.
		person(b, pg.Properties{"name": pg.Str("w"), "age": pg.Str("old")})
		// missing_mandatory: every stable Person carried name.
		person(b, pg.Properties{"age": pg.Int(1)})
		// cardinality_break: one person, two WORKS_AT in the same batch.
		p := person(b, pg.Properties{"name": pg.Str("m"), "age": pg.Int(2)})
		worksAt(b, p, org(b))
		worksAt(b, p, org(b))
		batches = append(batches, b)
	}
	return batches
}

func TestParseDriftPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want DriftPolicy
	}{{"", DriftOff}, {"off", DriftOff}, {"evolve", DriftEvolve}, {"alert", DriftAlert}, {"quarantine", DriftQuarantine}} {
		got, err := ParseDriftPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseDriftPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Errorf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseDriftPolicy("panic"); err == nil {
		t.Error("unknown policy must error")
	}
}

// TestDriftEvolveByteIdentical is the acceptance criterion for the evolve
// policy: validation observes but never participates, so the discovered
// schema is byte-identical to a validator-free run — at serial and
// overlapped depths, unsharded and sharded.
func TestDriftEvolveByteIdentical(t *testing.T) {
	batches := driftStream(4, 4)
	for _, depth := range []int{1, 4} {
		for _, shards := range []int{1, 2} {
			base := DefaultConfig()
			base.PipelineDepth = depth
			base.Shards = shards
			want := DiscoverSharded(pg.NewSliceSource(batches...), base)
			wantJSON, wantDDL := renderDef(t, want.Def)

			cfg := base
			cfg.DriftPolicy = DriftEvolve
			cfg.EpochInterval = 3
			got := DiscoverSharded(pg.NewSliceSource(batches...), cfg)
			gotJSON, gotDDL := renderDef(t, got.Def)
			if !bytes.Equal(wantJSON, gotJSON) || !bytes.Equal(wantDDL, gotDDL) {
				t.Errorf("depth=%d shards=%d: evolve schema diverges from validator-free run\nwant %s\ngot  %s",
					depth, shards, wantJSON, gotJSON)
			}
			if len(got.Skipped) != 0 {
				t.Errorf("depth=%d shards=%d: evolve quarantined %d batches", depth, shards, len(got.Skipped))
			}
			if got.Drift == nil || got.Drift.Total() == 0 {
				t.Errorf("depth=%d shards=%d: evolve run saw no drift on a drifting stream: %+v", depth, shards, got.Drift)
			}
		}
	}
}

// TestDriftCountersClassified: a drifting stream fires every witnessable
// drift class — on the obs registry, in the drift log, and in the summary —
// and the epoch diff against the pre-drift baseline is nonempty.
func TestDriftCountersClassified(t *testing.T) {
	batches := driftStream(4, 4)
	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	cfg := DefaultConfig()
	cfg.DriftPolicy = DriftAlert
	cfg.EpochInterval = 3
	cfg.Telemetry = reg
	cfg.DriftLog = NewDriftLog(&logBuf)
	res := Discover(pg.NewSliceSource(batches...), cfg)

	snap := reg.Snapshot()
	for ctr, class := range map[obs.Counter]validate.DriftClass{
		obs.CtrDriftNewType:          validate.DriftNewType,
		obs.CtrDriftNewLabelSet:      validate.DriftNewLabelSet,
		obs.CtrDriftWidenedType:      validate.DriftWidenedType,
		obs.CtrDriftMissingMandatory: validate.DriftMissingMandatory,
		obs.CtrDriftCardinalityBreak: validate.DriftCardinalityBreak,
	} {
		if snap.Counter(ctr) == 0 {
			t.Errorf("counter %s stayed zero on a drifting stream", ctr)
		}
		if snap.Counter(ctr) != res.Drift.Class(class) {
			t.Errorf("%s: registry %d != summary %d", ctr, snap.Counter(ctr), res.Drift.Class(class))
		}
	}
	if snap.Counter(obs.CtrDriftBatches) == 0 || res.Drift.DriftBatches == 0 {
		t.Error("no batches counted as drifting")
	}
	if snap.Counter(obs.CtrEpochs) < 2 || res.Drift.Epochs < 2 {
		t.Errorf("epochs = %d (summary %d), want >= 2", snap.Counter(obs.CtrEpochs), res.Drift.Epochs)
	}
	if snap.Counter(obs.CtrEpochChanges) == 0 || res.Drift.EpochChanges == 0 {
		t.Error("epoch diff recorded no changes across a drifting stream")
	}
	if snap.Hist(obs.HistDriftBatchViolations).Count == 0 {
		t.Error("drift_batch_violations histogram is empty")
	}

	// The drift log must carry both record kinds, with classified counts
	// and a nonempty epoch diff.
	var sawViolations, sawEpochDiff bool
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec struct {
			Kind    string            `json:"kind"`
			Counts  map[string]uint64 `json:"counts"`
			Changes int               `json:"changes"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad drift-log line %q: %v", line, err)
		}
		switch rec.Kind {
		case "violations":
			if rec.Counts["new_type"] > 0 {
				sawViolations = true
			}
		case "epoch":
			if rec.Changes > 0 {
				sawEpochDiff = true
			}
		default:
			t.Errorf("unknown drift-log kind %q", rec.Kind)
		}
	}
	if !sawViolations || !sawEpochDiff {
		t.Errorf("drift log incomplete: violations=%t epochDiff=%t\n%s", sawViolations, sawEpochDiff, logBuf.String())
	}
}

// TestDriftStableStreamZero: on a stable stream every drift counter stays
// zero across all windows — epochs fire, but their diffs are empty and no
// batch is flagged. This is the false-positive gate.
func TestDriftStableStreamZero(t *testing.T) {
	batches := driftStream(9, 0)
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.DriftPolicy = DriftEvolve
	cfg.EpochInterval = 3
	cfg.Telemetry = reg
	res := Discover(pg.NewSliceSource(batches...), cfg)

	snap := reg.Snapshot()
	for _, ctr := range []obs.Counter{
		obs.CtrDriftNewType, obs.CtrDriftNewLabelSet, obs.CtrDriftWidenedType,
		obs.CtrDriftMissingMandatory, obs.CtrDriftCardinalityBreak,
		obs.CtrDriftTypeDowngrade, obs.CtrDriftBatches, obs.CtrDriftQuarantined,
	} {
		if v := snap.Counter(ctr); v != 0 {
			t.Errorf("stable stream: counter %s = %d, want 0", ctr, v)
		}
	}
	if res.Drift.Total() != 0 || res.Drift.DriftBatches != 0 {
		t.Errorf("stable stream: summary reports drift: %+v", res.Drift)
	}
	if res.Drift.Epochs < 2 {
		t.Errorf("epochs = %d, want >= 2", res.Drift.Epochs)
	}
	if res.Drift.EpochChanges != 0 {
		t.Errorf("stable stream: epoch diffs carry %d changes, want 0", res.Drift.EpochChanges)
	}
}

// TestDriftQuarantineHoldsSchema: under quarantine, every drifting batch is
// withheld, so the final schema is byte-identical to a run over the stable
// prefix alone and the skip reports name the drift classes.
func TestDriftQuarantineHoldsSchema(t *testing.T) {
	stable, drifted := 6, 3
	batches := driftStream(stable, drifted)
	base := DefaultConfig()
	wantJSON, wantDDL := renderDef(t, Discover(pg.NewSliceSource(batches[:stable]...), base).Def)

	cfg := base
	cfg.DriftPolicy = DriftQuarantine
	cfg.EpochInterval = 3
	res := Discover(pg.NewSliceSource(batches...), cfg)
	gotJSON, gotDDL := renderDef(t, res.Def)
	if !bytes.Equal(wantJSON, gotJSON) || !bytes.Equal(wantDDL, gotDDL) {
		t.Errorf("quarantine let drift into the schema\nstable-only: %s\nquarantined: %s", wantJSON, gotJSON)
	}
	if len(res.Skipped) != drifted || res.Drift.Quarantined != drifted {
		t.Fatalf("skipped %d batches (summary %d), want %d: %+v", len(res.Skipped), res.Drift.Quarantined, drifted, res.Skipped)
	}
	for i, s := range res.Skipped {
		if s.Seq != stable+i {
			t.Errorf("skip %d at slot %d, want %d", i, s.Seq, stable+i)
		}
		if !strings.Contains(s.Reason, "drift: quarantined") || !strings.Contains(s.Reason, "new_type=") {
			t.Errorf("skip reason %q lacks drift classification", s.Reason)
		}
	}
	if len(res.Reports) != stable {
		t.Errorf("%d reports, want %d (quarantined batches produce none)", len(res.Reports), stable)
	}
}

// TestDriftFingerprints: evolve and alert are execution-only, so their
// checkpoints cross-resume with validator-free runs; quarantine changes
// which batches merge, so its fingerprint — and its epoch cadence — stand
// apart.
func TestDriftFingerprints(t *testing.T) {
	off := DefaultConfig().withDefaults()
	evolve, alert, quarantine := off, off, off
	evolve.DriftPolicy = DriftEvolve
	alert.DriftPolicy = DriftAlert
	quarantine.DriftPolicy = DriftQuarantine
	if off.fingerprint() != evolve.fingerprint() || off.fingerprint() != alert.fingerprint() {
		t.Error("evolve/alert must share the validator-free fingerprint")
	}
	if off.fingerprint() == quarantine.fingerprint() {
		t.Error("quarantine must change the fingerprint")
	}
	q2 := quarantine
	q2.EpochInterval = 4
	if quarantine.fingerprint() == q2.fingerprint() {
		t.Error("epoch interval must fingerprint under quarantine")
	}
}

// TestDriftCrashResumeQuarantine: kill a checkpointing quarantine run
// mid-stream and resume it — the finalized schema, the quarantine list and
// the epoch counter all match an uninterrupted run. The epoch baseline
// rides in the checkpoint, so the resumed run validates the remaining
// batches against the exact Def the dead run was using.
func TestDriftCrashResumeQuarantine(t *testing.T) {
	batches := driftStream(6, 3)
	cfg := DefaultConfig()
	cfg.DriftPolicy = DriftQuarantine
	cfg.EpochInterval = 3
	uninterrupted, err := DiscoverFT(pg.AsErrSource(pg.NewSliceSource(batches...)), cfg, FTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, wantDDL := renderDef(t, uninterrupted.Def)

	for _, kill := range []int{4, 7} {
		for _, depth := range []int{1, 4} {
			cfg := cfg
			cfg.PipelineDepth = depth
			ck := FileCheckpointer{Path: filepath.Join(t.TempDir(), "drift.ck")}
			crash := pg.NewFaultSource(pg.AsErrSource(pg.NewSliceSource(batches...)),
				pg.FaultProfile{FailAfter: kill, Seed: 1})
			if _, err := DiscoverFT(crash, cfg, FTOptions{Checkpoint: ck}); !errors.Is(err, pg.ErrPermanentFault) {
				t.Fatalf("kill=%d depth=%d: want permanent fault, got %v", kill, depth, err)
			}
			state, ok, err := ck.Load()
			if err != nil || !ok {
				t.Fatalf("kill=%d depth=%d: checkpoint load: ok=%t err=%v", kill, depth, ok, err)
			}
			res, err := ResumeDiscoverFT(state, pg.AsErrSource(pg.NewSliceSource(batches...)), cfg, FTOptions{Checkpoint: ck})
			if err != nil {
				t.Fatalf("kill=%d depth=%d: resume: %v", kill, depth, err)
			}
			gotJSON, gotDDL := renderDef(t, res.Def)
			if !bytes.Equal(wantJSON, gotJSON) || !bytes.Equal(wantDDL, gotDDL) {
				t.Errorf("kill=%d depth=%d: resumed schema diverges\nwant %s\ngot  %s", kill, depth, wantJSON, gotJSON)
			}
			if len(res.Skipped) != len(uninterrupted.Skipped) {
				t.Errorf("kill=%d depth=%d: resumed skip list %v, want %v", kill, depth, res.Skipped, uninterrupted.Skipped)
			}
			if res.Drift.Epochs != uninterrupted.Drift.Epochs {
				t.Errorf("kill=%d depth=%d: epochs %d, want %d", kill, depth, res.Drift.Epochs, uninterrupted.Drift.Epochs)
			}
		}
	}
}

// TestDriftShardedQuarantine: under -shards N each shard validates its own
// sub-stream against its own epochs; shard-level quarantines surface in
// Result.Skipped with the shard named, and the summaries merge.
func TestDriftShardedQuarantine(t *testing.T) {
	batches := driftStream(6, 3)
	cfg := DefaultConfig()
	cfg.Shards = 2
	cfg.DriftPolicy = DriftQuarantine
	cfg.EpochInterval = 3
	res := DiscoverSharded(pg.NewSliceSource(batches...), cfg)
	if res.Drift == nil || res.Drift.Quarantined == 0 {
		t.Fatalf("sharded quarantine saw no drift: %+v", res.Drift)
	}
	if len(res.Skipped) != res.Drift.Quarantined {
		t.Errorf("%d skip reports, summary says %d", len(res.Skipped), res.Drift.Quarantined)
	}
	for _, s := range res.Skipped {
		if !strings.Contains(s.Reason, "shard ") {
			t.Errorf("sharded skip reason %q does not name its shard", s.Reason)
		}
	}
	// The drifted tail must not have leaked its new label into the merge.
	for _, n := range res.Def.Nodes {
		for _, l := range n.Labels {
			if l == "Device" {
				t.Error("quarantined label Device leaked into the merged schema")
			}
		}
	}
}
