package core

import (
	"testing"

	"pghive/internal/pg"
	"pghive/internal/schema"
)

// Candidates must share the schema's symbol table (Merge and Add reject
// foreign types), so the helpers build them from the target schema.
func nodeCandidate(s *schema.Schema, labels []string, keys ...string) *schema.Type {
	t := s.NewType(schema.NodeKind)
	props := pg.Properties{}
	for _, k := range keys {
		props[k] = pg.Int(1)
	}
	t.ObserveNode(&pg.NodeRecord{Labels: labels, Props: props}, schema.NeverSample, false)
	return t
}

func edgeCandidate(s *schema.Schema, labels, src, dst []string, keys ...string) *schema.Type {
	t := s.NewType(schema.EdgeKind)
	props := pg.Properties{}
	for _, k := range keys {
		props[k] = pg.Int(1)
	}
	t.ObserveEdge(&pg.EdgeRecord{Labels: labels, SrcLabels: src, DstLabels: dst, Props: props},
		schema.NeverSample, false)
	return t
}

func TestExtractMergesSameLabel(t *testing.T) {
	s := schema.NewSchema()
	ExtractTypes(s, schema.NodeKind, []*schema.Type{
		nodeCandidate(s, []string{"Post"}, "imgFile"),
		nodeCandidate(s, []string{"Post"}, "content"),
	}, 0.9)
	if len(s.NodeTypes) != 1 {
		t.Fatalf("got %d types, want 1 (same label merges)", len(s.NodeTypes))
	}
	ty := s.NodeTypes[0]
	if ty.Prop("imgFile") == nil {
		t.Error("imgFile lost")
	}
	if ty.Prop("content") == nil {
		t.Error("content lost")
	}
}

func TestExtractDistinctLabelSetsStaySeparate(t *testing.T) {
	s := schema.NewSchema()
	ExtractTypes(s, schema.NodeKind, []*schema.Type{
		nodeCandidate(s, []string{"Person"}, "name"),
		nodeCandidate(s, []string{"Person", "Student"}, "name"),
	}, 0.9)
	if len(s.NodeTypes) != 2 {
		t.Fatalf("got %d types, want 2 ({Person} vs {Person,Student})", len(s.NodeTypes))
	}
}

func TestExtractUnlabeledMergesIntoLabeled(t *testing.T) {
	// The paper's Example 5: Alice's unlabeled cluster has the same
	// property set as Person and merges into it.
	s := schema.NewSchema()
	ExtractTypes(s, schema.NodeKind, []*schema.Type{
		nodeCandidate(s, []string{"Person"}, "name", "gender", "bday"),
		nodeCandidate(s, nil, "name", "gender", "bday"),
	}, 0.9)
	if len(s.NodeTypes) != 1 {
		t.Fatalf("got %d types, want 1", len(s.NodeTypes))
	}
	if s.NodeTypes[0].Instances != 2 {
		t.Errorf("Instances = %d, want 2", s.NodeTypes[0].Instances)
	}
	if s.NodeTypes[0].Abstract {
		t.Error("merged type must not be abstract")
	}
}

func TestExtractUnlabeledBelowThetaStaysAbstract(t *testing.T) {
	s := schema.NewSchema()
	ExtractTypes(s, schema.NodeKind, []*schema.Type{
		nodeCandidate(s, []string{"Person"}, "name", "gender", "bday"),
		nodeCandidate(s, nil, "name"), // Jaccard 1/3 < 0.9
	}, 0.9)
	if len(s.NodeTypes) != 2 {
		t.Fatalf("got %d types, want 2", len(s.NodeTypes))
	}
	if !s.NodeTypes[1].Abstract {
		t.Error("unmatched unlabeled cluster should be ABSTRACT")
	}
}

func TestExtractUnlabeledPicksBestMatch(t *testing.T) {
	// Candidate {a,b,c,d,e} matches {a,b,c,d,e} (J=1) better than
	// {a,b,c,d,e,f} (J=5/6 < 0.9): only one qualifies, and no transitive
	// fusion of the two labeled types may happen.
	s := schema.NewSchema()
	ExtractTypes(s, schema.NodeKind, []*schema.Type{
		nodeCandidate(s, []string{"A"}, "a", "b", "c", "d", "e"),
		nodeCandidate(s, []string{"B"}, "a", "b", "c", "d", "e", "f"),
		nodeCandidate(s, nil, "a", "b", "c", "d", "e"),
	}, 0.9)
	if len(s.NodeTypes) != 2 {
		t.Fatalf("got %d types, want 2", len(s.NodeTypes))
	}
	a := s.FindByLabelKey(schema.NodeKind, "A")
	if a == nil || a.Instances != 2 {
		t.Errorf("unlabeled candidate should merge into A (instances=2), got %+v", a)
	}
	b := s.FindByLabelKey(schema.NodeKind, "B")
	if b == nil || b.Instances != 1 {
		t.Errorf("B should be untouched, got %+v", b)
	}
}

func TestExtractUnlabeledTieBreaksOnInstances(t *testing.T) {
	s := schema.NewSchema()
	big := nodeCandidate(s, []string{"Big"}, "x", "y")
	big.ObserveNode(&pg.NodeRecord{Labels: []string{"Big"}, Props: pg.Properties{"x": pg.Int(1), "y": pg.Int(1)}},
		schema.NeverSample, false)
	small := nodeCandidate(s, []string{"Small"}, "x", "y")
	ExtractTypes(s, schema.NodeKind, []*schema.Type{small, big, nodeCandidate(s, nil, "x", "y")}, 0.9)
	b := s.FindByLabelKey(schema.NodeKind, "Big")
	if b.Instances != 3 {
		t.Errorf("tie should break toward the larger type; Big has %d instances, want 3", b.Instances)
	}
}

func TestExtractUnlabeledMergeAmongThemselves(t *testing.T) {
	s := schema.NewSchema()
	ExtractTypes(s, schema.NodeKind, []*schema.Type{
		nodeCandidate(s, nil, "p", "q"),
		nodeCandidate(s, nil, "p", "q"),
		nodeCandidate(s, nil, "zzz"),
	}, 0.9)
	if len(s.NodeTypes) != 2 {
		t.Fatalf("got %d types, want 2 abstract types", len(s.NodeTypes))
	}
	if s.NodeTypes[0].Instances != 2 {
		t.Errorf("matching unlabeled clusters should merge: instances = %d, want 2", s.NodeTypes[0].Instances)
	}
	for _, ty := range s.NodeTypes {
		if !ty.Abstract {
			t.Error("all remaining types should be abstract")
		}
	}
}

func TestExtractIncrementalAbstractReuse(t *testing.T) {
	// An unlabeled cluster from a later batch must merge into the abstract
	// type discovered earlier, not create a duplicate.
	s := schema.NewSchema()
	ExtractTypes(s, schema.NodeKind, []*schema.Type{nodeCandidate(s, nil, "p", "q")}, 0.9)
	ExtractTypes(s, schema.NodeKind, []*schema.Type{nodeCandidate(s, nil, "p", "q")}, 0.9)
	if len(s.NodeTypes) != 1 {
		t.Fatalf("got %d types, want 1", len(s.NodeTypes))
	}
	if s.NodeTypes[0].Instances != 2 {
		t.Errorf("Instances = %d, want 2", s.NodeTypes[0].Instances)
	}
}

func TestExtractIncrementalLabelArrivesLater(t *testing.T) {
	// Batch 1 sees only unlabeled instances; batch 2 brings the labeled
	// cluster. The labeled candidate is appended, and there is no rule
	// merging an older abstract into a newer labeled type in Algorithm 2 —
	// but a *new* unlabeled candidate prefers the labeled type.
	s := schema.NewSchema()
	ExtractTypes(s, schema.NodeKind, []*schema.Type{nodeCandidate(s, nil, "name", "age")}, 0.9)
	ExtractTypes(s, schema.NodeKind, []*schema.Type{
		nodeCandidate(s, []string{"Person"}, "name", "age"),
		nodeCandidate(s, nil, "name", "age"),
	}, 0.9)
	person := s.FindByLabelKey(schema.NodeKind, "Person")
	if person == nil || person.Instances != 2 {
		t.Fatalf("Person should absorb the new unlabeled candidate, got %+v", person)
	}
}

func TestExtractEdgesMergeByLabelOnly(t *testing.T) {
	// Edge clusters with the same label merge even when endpoints differ;
	// endpoint label sets union (Lemma 2).
	s := schema.NewSchema()
	ExtractTypes(s, schema.EdgeKind, []*schema.Type{
		edgeCandidate(s, []string{"LIKES"}, []string{"Person"}, []string{"Post"}),
		edgeCandidate(s, []string{"LIKES"}, []string{"Bot"}, []string{"Comment"}),
	}, 0.9)
	if len(s.EdgeTypes) != 1 {
		t.Fatalf("got %d edge types, want 1", len(s.EdgeTypes))
	}
	e := s.EdgeTypes[0]
	if !e.SrcLabels().Has("Person") || !e.SrcLabels().Has("Bot") {
		t.Error("source endpoint labels lost in merge")
	}
}

func TestExtractUnlabeledEdgesUseEndpointsInJaccard(t *testing.T) {
	// Two unlabeled edge clusters with identical (empty) property sets but
	// different endpoints must NOT merge: edge patterns are distinguished
	// by R as well (Definition 3.6).
	s := schema.NewSchema()
	ExtractTypes(s, schema.EdgeKind, []*schema.Type{
		edgeCandidate(s, nil, []string{"Person"}, []string{"Post"}),
		edgeCandidate(s, nil, []string{"Org"}, []string{"Place"}),
	}, 0.9)
	if len(s.EdgeTypes) != 2 {
		t.Fatalf("got %d edge types, want 2 (different endpoints)", len(s.EdgeTypes))
	}
	// Identical endpoints do merge.
	s2 := schema.NewSchema()
	ExtractTypes(s2, schema.EdgeKind, []*schema.Type{
		edgeCandidate(s2, nil, []string{"Person"}, []string{"Post"}),
		edgeCandidate(s2, nil, []string{"Person"}, []string{"Post"}),
	}, 0.9)
	if len(s2.EdgeTypes) != 1 {
		t.Fatalf("got %d edge types, want 1 (same endpoints)", len(s2.EdgeTypes))
	}
}

func TestExtractThetaZeroMergesEverythingUnlabeled(t *testing.T) {
	s := schema.NewSchema()
	ExtractTypes(s, schema.NodeKind, []*schema.Type{
		nodeCandidate(s, nil, "a"),
		nodeCandidate(s, nil, "b"),
		nodeCandidate(s, nil, "c"),
	}, 0.0)
	if len(s.NodeTypes) != 1 {
		t.Fatalf("θ=0: got %d types, want 1", len(s.NodeTypes))
	}
}

func TestExtractTypeCompleteness(t *testing.T) {
	// §4.7 type completeness: every observed label and property key must be
	// covered by some type after extraction.
	s := schema.NewSchema()
	cands := []*schema.Type{
		nodeCandidate(s, []string{"A"}, "k1", "k2"),
		nodeCandidate(s, []string{"B"}, "k3"),
		nodeCandidate(s, nil, "k4", "k5"),
	}
	ExtractTypes(s, schema.NodeKind, cands, 0.9)
	for _, tc := range []struct {
		labels []string
		keys   []string
	}{
		{[]string{"A"}, []string{"k1", "k2"}},
		{[]string{"B"}, []string{"k3"}},
		{nil, []string{"k4", "k5"}},
	} {
		if !s.Covers(schema.NodeKind, tc.labels, tc.keys) {
			t.Errorf("schema does not cover labels=%v keys=%v", tc.labels, tc.keys)
		}
	}
}
