package core

import (
	"sync/atomic"
	"testing"
)

// Edge cases for the worker fan-out primitive: empty input, more workers
// than items, and non-positive worker counts must all behave (cover every
// index exactly once, never panic, never call f for n=0).
func TestParmapZeroItems(t *testing.T) {
	for _, workers := range []int{-3, 0, 1, 8} {
		parmap(0, workers, func(int) { t.Fatalf("workers=%d: f called for n=0", workers) })
	}
}

func TestParmapMoreWorkersThanItems(t *testing.T) {
	const n = 3
	var hits [n]int32
	parmap(n, 64, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Errorf("index %d visited %d times, want 1", i, h)
		}
	}
}

func TestParmapNonPositiveWorkersRunsSerially(t *testing.T) {
	for _, workers := range []int{-1, 0} {
		n := 10
		order := make([]int, 0, n)
		// Appending without synchronization is only safe if execution is
		// serial — which is exactly the contract for workers <= 1.
		parmap(n, workers, func(i int) { order = append(order, i) })
		if len(order) != n {
			t.Fatalf("workers=%d: covered %d of %d indexes", workers, len(order), n)
		}
		for i, got := range order {
			if got != i {
				t.Errorf("workers=%d: serial fallback visited %d at position %d", workers, got, i)
			}
		}
	}
}

func TestParmapSingleItem(t *testing.T) {
	calls := 0
	parmap(1, 8, func(i int) {
		if i != 0 {
			t.Errorf("got index %d, want 0", i)
		}
		calls++
	})
	if calls != 1 {
		t.Errorf("f called %d times, want 1", calls)
	}
}
