package core

import (
	"runtime"
	"testing"

	"pghive/internal/pg"
	"pghive/internal/schema"
)

// BenchmarkCandidatesInterned measures the candidate-build + extract hot
// path (Algorithm 2's evidence folding): one pre-clustered batch is turned
// into candidate types and merged into a fresh schema on every iteration,
// with the pipeline's sampler warm (past SampleMin, so every property
// observation exercises the sampling decision). This is the path the
// interned symbol core optimizes; CI pins its allocs/op against
// regressions.
func BenchmarkCandidatesInterned(b *testing.B) {
	g := engineGraph(b, 4000)
	batch := g.Snapshot()
	cfg := DefaultConfig()
	cfg.Parallelism = 1
	cfg.SampleMin = 10 // warm the sampler quickly: the steady state is the frac path
	p := NewPipeline(cfg)
	st := p.preprocess(batch, 0)
	c := p.clusterSerial(st)

	// Warm up: intern the batch and push sampler counters past SampleMin.
	p.extract(c)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodeCands := p.nodeCandidates(c.b, c.nodeClusters)
		edgeCands := p.edgeCandidates(c.b, c.edgeClusters)
		s := benchSchema(p)
		ExtractTypes(s, schema.NodeKind, nodeCands, p.cfg.Theta)
		ExtractTypes(s, schema.EdgeKind, edgeCands, p.cfg.Theta)
	}
}

// benchSchema returns a fresh extraction target compatible with the
// pipeline's candidates: it shares the pipeline's symbol table so the
// candidates (typed against it) can merge in.
func benchSchema(p *Pipeline) *schema.Schema {
	return schema.NewSchemaWith(p.schema.Tab)
}

// BenchmarkExtractStream measures steady-state heap while discovering a
// multi-batch stream, reporting bytes of live evidence heap after the run
// (the quantity the interned degree tables shrink).
func BenchmarkExtractStream(b *testing.B) {
	g := engineGraph(b, 20000)
	batches := g.SplitRandom(8, 11)
	cfg := DefaultConfig()
	cfg.Parallelism = 1
	cfg.PipelineDepth = 1
	b.ReportAllocs()
	b.ResetTimer()
	var res *Result
	for i := 0; i < b.N; i++ {
		res = Discover(pg.NewSliceSource(batches...), cfg)
	}
	b.StopTimer()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapAlloc), "live-heap-bytes")
	_ = res
}
