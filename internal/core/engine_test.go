package core

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"pghive/internal/pg"
	"pghive/internal/schema"
)

// engineGraph builds a deterministic multi-type graph large enough that a
// random split yields meaty batches: labeled archetypes, a multi-label
// type, unlabeled nodes, and several edge patterns.
func engineGraph(t testing.TB, n int) *pg.Graph {
	t.Helper()
	g := pg.NewGraph()
	rng := rand.New(rand.NewSource(42))
	var people, orgs, posts []pg.ID
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0:
			props := pg.Properties{"name": pg.Str("p"), "age": pg.Int(int64(20 + i%50))}
			if rng.Intn(3) == 0 {
				props["email"] = pg.Str("e@x")
			}
			people = append(people, g.AddNode([]string{"Person"}, props))
		case 1:
			orgs = append(orgs, g.AddNode([]string{"Organization"}, pg.Properties{"name": pg.Str("o"), "vat": pg.Str("v")}))
		case 2:
			posts = append(posts, g.AddNode([]string{"Post"}, pg.Properties{"content": pg.Str("c"), "created": pg.ParseValue("01/02/2020")}))
		case 3:
			people = append(people, g.AddNode([]string{"Admin", "Person"}, pg.Properties{"name": pg.Str("a"), "age": pg.Int(30), "level": pg.Int(int64(i % 4))}))
		default:
			g.AddNode(nil, pg.Properties{"sensor": pg.Str("s"), "reading": pg.Float(1.5)})
		}
	}
	addEdge := func(labels []string, src, dst pg.ID, props pg.Properties) {
		if _, err := g.AddEdge(labels, src, dst, props); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range people {
		addEdge([]string{"KNOWS"}, p, people[(i+1)%len(people)], pg.Properties{"since": pg.Int(int64(2000 + i%20))})
		if len(orgs) > 0 && i%2 == 0 {
			addEdge([]string{"WORKS_AT"}, p, orgs[i%len(orgs)], nil)
		}
		if len(posts) > 0 && i%3 == 0 {
			addEdge([]string{"LIKES"}, p, posts[i%len(posts)], nil)
		}
	}
	return g
}

func discoverSplit(g *pg.Graph, cfg Config, batches, splitSeed int64) *Result {
	return Discover(pg.NewSliceSource(g.SplitRandom(int(batches), splitSeed)...), cfg)
}

func defsEqual(t *testing.T, label string, want, got *schema.Def) {
	t.Helper()
	if reflect.DeepEqual(want, got) {
		return
	}
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(got)
	t.Errorf("%s: schemas differ\nserial:    %s\npipelined: %s", label, wj, gj)
}

// TestOverlappedMatchesSerial is the engine's core guarantee: because only
// extraction mutates order-dependent state and it stays serialized in batch
// order, a pipelined run produces a byte-identical finalized schema to a
// serial run with the same seed — for both LSH methods and any depth.
func TestOverlappedMatchesSerial(t *testing.T) {
	g := engineGraph(t, 400)
	for _, m := range []Method{MethodELSH, MethodMinHash} {
		serialCfg := DefaultConfig()
		serialCfg.Method = m
		serialCfg.PipelineDepth = 1
		serial := discoverSplit(g, serialCfg, 6, 11)
		for _, depth := range []int{2, 4, 8} {
			cfg := serialCfg
			cfg.PipelineDepth = depth
			piped := discoverSplit(g, cfg, 6, 11)
			defsEqual(t, m.String(), serial.Def, piped.Def)
			if len(piped.Reports) != len(serial.Reports) {
				t.Errorf("%v depth=%d: %d reports, want %d", m, depth, len(piped.Reports), len(serial.Reports))
			}
			for i, r := range piped.Reports {
				if r.Batch != i {
					t.Errorf("%v depth=%d: report %d out of order (Batch=%d)", m, depth, i, r.Batch)
				}
				if r.NodeClusters != serial.Reports[i].NodeClusters || r.EdgeClusters != serial.Reports[i].EdgeClusters {
					t.Errorf("%v depth=%d batch %d: cluster counts diverge from serial", m, depth, i)
				}
			}
		}
	}
}

// TestOverlappedMatchesSerialAligned repeats the equality check with label
// alignment enabled: the aligner mutates across batches, so this guards the
// engine's claim that preprocess stays serialized in batch order.
func TestOverlappedMatchesSerialAligned(t *testing.T) {
	g := pg.NewGraph()
	for i := 0; i < 60; i++ {
		label := "Organization"
		if i%2 == 1 {
			label = "Organisation"
		}
		g.AddNode([]string{label}, pg.Properties{"name": pg.Str("x"), "vat": pg.Str("y")})
	}
	cfg := DefaultConfig()
	cfg.AlignLabels = true
	cfg.PipelineDepth = 1
	serial := discoverSplit(g, cfg, 4, 5)
	cfg.PipelineDepth = 4
	piped := discoverSplit(g, cfg, 4, 5)
	defsEqual(t, "aligned", serial.Def, piped.Def)
	if len(piped.Def.Nodes) != 1 {
		t.Errorf("alignment under the engine found %d types, want 1", len(piped.Def.Nodes))
	}
}

// TestDiscoverParallelismDeterminism asserts Discover output is identical
// for Parallelism=1 vs Parallelism=8 on a seeded multi-batch graph: worker
// count must never leak into the schema.
func TestDiscoverParallelismDeterminism(t *testing.T) {
	g := engineGraph(t, 300)
	for _, m := range []Method{MethodELSH, MethodMinHash} {
		one := DefaultConfig()
		one.Method = m
		one.Parallelism = 1
		eight := one
		eight.Parallelism = 8
		a := discoverSplit(g, one, 5, 3)
		b := discoverSplit(g, eight, 5, 3)
		defsEqual(t, m.String()+" parallelism", a.Def, b.Def)
	}
}

func TestPipelineDepthDefaultApplied(t *testing.T) {
	if got := NewPipeline(DefaultConfig()).Config().PipelineDepth; got != DefaultPipelineDepth {
		t.Errorf("default PipelineDepth = %d, want %d", got, DefaultPipelineDepth)
	}
	cfg := DefaultConfig()
	cfg.PipelineDepth = 1
	if got := NewPipeline(cfg).Config().PipelineDepth; got != 1 {
		t.Errorf("explicit serial PipelineDepth = %d, want 1", got)
	}
}

// TestDrainSingleBatch exercises the engine with exactly one batch (the
// DiscoverGraph path) and with an exhausted source.
func TestDrainSingleBatch(t *testing.T) {
	g := engineGraph(t, 50)
	cfg := DefaultConfig()
	cfg.PipelineDepth = 4
	res := DiscoverGraph(g, cfg)
	if len(res.Def.Nodes) == 0 || len(res.Reports) != 1 {
		t.Fatalf("single-batch engine run: %d types, %d reports", len(res.Def.Nodes), len(res.Reports))
	}
	p := NewPipeline(cfg)
	p.Drain(pg.NewSliceSource())
	if len(p.Reports()) != 0 {
		t.Error("draining an empty source should process nothing")
	}
}

// TestProcessBatchInterchangeableWithDrain: feeding batches one at a time
// through ProcessBatch equals a serial Drain over the same source.
func TestProcessBatchInterchangeableWithDrain(t *testing.T) {
	g := engineGraph(t, 200)
	batches := g.SplitRandom(4, 9)
	cfg := DefaultConfig()
	cfg.PipelineDepth = 1

	byHand := NewPipeline(cfg)
	for _, b := range batches {
		byHand.ProcessBatch(b)
	}
	drained := NewPipeline(cfg)
	drained.Drain(pg.NewSliceSource(batches...))

	defsEqual(t, "processbatch-vs-drain", byHand.Finalize(), drained.Finalize())
}
