// The overlapped batch execution engine: a staged concurrent pipeline over
// the incremental discovery loop of Algorithm 1.
//
//	load ──▶ preprocess ──▶ cluster ──▶ extract
//	(prefetch   (serial,      (worker     (serial,
//	 goroutine)  in order)     pool)       in order)
//
// Load runs in a prefetch goroutine so the next batch is in memory while the
// current one computes. Preprocess (align + vectorize) is serialized in
// batch order because the label aligner and the cross-batch embedding cache
// are order-dependent, but it only needs the CPU briefly and immediately
// frees the next batch for clustering. Clustering — the dominant cost — is
// pure: it reads an immutable Vectorizer snapshot and per-kind seeded hash
// families, so a pool of workers clusters several batches at once, and node
// and edge clustering of the same batch run concurrently. Extraction merges
// candidates into the shared schema and consumes the shared data-type
// sampler; it is the only order-dependent step and stays serialized in batch
// order, which preserves the incremental guarantee S_i ⊑ S_{i+1} and makes
// the finalized schema byte-identical to a serial run with the same seed.
package core

import (
	"sync"
	"time"

	"pghive/internal/pg"
)

// Drain processes every batch from src through the pipeline. With
// Config.PipelineDepth > 1 the overlapped engine runs with that many
// batches in flight; with PipelineDepth <= 1 batches are processed strictly
// serially. Both paths produce identical schemas.
func (p *Pipeline) Drain(src pg.Source) {
	depth := p.cfg.PipelineDepth
	if depth <= 1 {
		// Explicit counter rather than len(p.reports): a drift-quarantined
		// batch produces no report but still consumes a sequence number.
		for seq := p.nextSeq(); ; seq++ {
			t0 := time.Now()
			b := src.Next()
			if b == nil {
				return
			}
			load := time.Since(t0)
			p.loadSpan(seq, b, t0, load)
			p.processSerial(b, seq, load)
		}
	}

	pf := pg.NewPrefetchSource(src, depth)
	defer pf.Close()

	prepped := make(chan staged, depth)
	clustered := make(chan computed, depth)

	// Preprocess stage: align + vectorize, strictly in batch order. Batch
	// sequence numbers continue from any batches already processed, so they
	// match the report indexes the extract stage assigns.
	base := p.nextSeq()
	go func() {
		defer close(prepped)
		for seq := base; ; seq++ {
			t0 := time.Now()
			b := pf.Next()
			if b == nil {
				return
			}
			load := time.Since(t0)
			p.loadSpan(seq, b, t0, load)
			st := p.preprocess(b, seq)
			st.report.Load = load
			prepped <- st
		}
	}()

	// Cluster stage: a worker pool; batches may finish out of order.
	workers := depth - 1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for st := range prepped {
				clustered <- p.clusterStage(st)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(clustered)
	}()

	// Extract stage: reorder by sequence number and merge in batch order.
	pending := map[int]computed{}
	next := base
	for c := range clustered {
		pending[c.seq] = c
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			p.extractChecked(cur, -1)
			next++
		}
	}
}

// clusterStage runs LSH clustering for one staged batch, with node and edge
// clustering concurrent (they are independent: separate hash families,
// disjoint outputs, and a read-only Vectorizer snapshot between them).
// Vectors are rendered into contiguous arenas.
func (p *Pipeline) clusterStage(st staged) computed {
	c := computed{seq: st.seq, b: st.b, start: st.start, report: st.report}
	start := time.Now()
	ns, es := nodeSpec(st.b, st.vz), edgeSpec(st.b, st.vz)
	if p.cfg.Parallelism > 1 && ns.n > 0 && es.n > 0 {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.edgeClusters, c.report.EdgeParams = p.clusterKind(es, true)
		}()
		c.nodeClusters, c.report.NodeParams = p.clusterKind(ns, true)
		wg.Wait()
	} else {
		c.nodeClusters, c.report.NodeParams = p.clusterKind(ns, true)
		c.edgeClusters, c.report.EdgeParams = p.clusterKind(es, true)
	}
	c.report.Cluster = time.Since(start)
	c.report.NodeClusters = len(c.nodeClusters)
	c.report.EdgeClusters = len(c.edgeClusters)
	p.clusterSpan(&c, start)
	return c
}
