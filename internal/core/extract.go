package core

import (
	"pghive/internal/schema"
)

// ExtractTypes implements Algorithm 2 ("Extracting and Merging Types") for
// one element kind: the batch's candidate types (cluster representatives)
// are merged into the evolving schema. The algorithm itself lives in
// schema.MergeTypes — the shard-merge driver re-runs the identical rules
// when folding partial schemas, so the per-batch and cross-shard paths
// cannot drift.
func ExtractTypes(s *schema.Schema, kind schema.ElementKind, candidates []*schema.Type, theta float64) {
	schema.MergeTypes(s, kind, candidates, theta)
}
