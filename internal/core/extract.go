package core

import (
	"pghive/internal/schema"
)

// ExtractTypes implements Algorithm 2 ("Extracting and Merging Types") for
// one element kind: the batch's candidate types (cluster representatives)
// are merged into the evolving schema.
//
//  1. Labeled candidates merge into the existing type with the same label
//     set, or are appended as new types.
//  2. Unlabeled candidates merge into the labeled type whose key set has
//     Jaccard similarity ≥ θ — the best-scoring candidate, so distinct
//     labeled types are never fused through an unlabeled bridge.
//  3. Remaining unlabeled candidates merge with each other (and with
//     previously discovered abstract types) under the same test; leftovers
//     join the schema as ABSTRACT types (PG-Schema).
//
// For node types the Jaccard test runs over property-key sets (§4.3); for
// edge types it also includes tagged endpoint labels, since edge patterns
// are distinguished by (L, K, R) (Definition 3.6). Everything runs on
// interned IDs: label-set lookup is a hashed ID-tuple probe and the
// similarity test is a sort-merge over uint64 merge keys — no string keys
// are built.
func ExtractTypes(s *schema.Schema, kind schema.ElementKind, candidates []*schema.Type, theta float64) {
	var unlabeled []*schema.Type
	for _, c := range candidates {
		if c.Labeled() {
			if existing := s.FindByLabelSet(kind, c.LabelIDs()); existing != nil {
				existing.Merge(c)
			} else {
				s.Add(c)
			}
		} else {
			unlabeled = append(unlabeled, c)
		}
	}

	var still []*schema.Type
	for _, c := range unlabeled {
		if target := bestLabeledMatch(s, kind, c, theta); target != nil {
			target.Merge(c)
		} else {
			still = append(still, c)
		}
	}

	// Remaining unlabeled candidates: merge with existing abstract types
	// first (incremental consistency), then with each other.
	abstracts := abstractTypes(s, kind)
	for _, c := range still {
		cKeys := c.MergeKeys()
		merged := false
		for _, a := range abstracts {
			if schema.JaccardU64(a.MergeKeys(), cKeys) >= theta {
				a.Merge(c)
				merged = true
				break
			}
		}
		if !merged {
			c.Abstract = true
			s.Add(c)
			abstracts = append(abstracts, c)
		}
	}
}

// bestLabeledMatch returns the labeled type of the given kind with the
// highest Jaccard similarity ≥ theta against the candidate, breaking ties
// toward more instances.
func bestLabeledMatch(s *schema.Schema, kind schema.ElementKind, c *schema.Type, theta float64) *schema.Type {
	cKeys := c.MergeKeys()
	var best *schema.Type
	bestJ := -1.0
	for _, t := range s.Types(kind) {
		if !t.Labeled() {
			continue
		}
		j := schema.JaccardU64(t.MergeKeys(), cKeys)
		if j < theta {
			continue
		}
		if j > bestJ || (j == bestJ && best != nil && t.Instances > best.Instances) {
			best, bestJ = t, j
		}
	}
	return best
}

func abstractTypes(s *schema.Schema, kind schema.ElementKind) []*schema.Type {
	var out []*schema.Type
	for _, t := range s.Types(kind) {
		if !t.Labeled() {
			out = append(out, t)
		}
	}
	return out
}
