package core

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"time"

	"pghive/internal/lsh"
	"pghive/internal/pg"
	"pghive/internal/schema"
)

// Checkpoint codec: a complete serialization of an in-flight discovery run —
// the evolving schema with its evidence, the data-type sampler counters, the
// embedding session, the label aligner, the per-batch reports and the stream
// position. A pipeline restored from a checkpoint continues the run exactly
// where the writer left off: feeding it the remaining batches yields a
// Finalize output byte-identical to an uninterrupted run (the crash/resume
// tests enforce this).
//
// Consistency under the overlapped engine: the extract frontier (schema,
// sampler, reports) always lags the preprocess frontier (session, aligner),
// so a checkpoint taken after extract(k) must NOT serialize the live session
// — it may already have trained on batches k+1, k+2, and in the adaptive-dim
// case even retrained every vector. DrainFT therefore snapshots the
// session/aligner state at preprocess(k) time and pairs it with the
// post-extract(k) schema, giving the resumed run the exact state the
// original run had when it began batch k+1.

// checkpointMagic versions the checkpoint format. PGCK7 appends the drift
// section — the epoch counter, the window position and the epoch baseline
// Def — so a resumed run validates against the same epoch the writer was
// using (see drift.go); PGCK5 added the self-describing evidence mode bytes
// — degree counters and value stats may serialize either as exact tables or
// as sketches (HLL + count-min + top-k, see schema/checkpoint.go) — and
// extended the fingerprint with the memory budget; PGCK3 introduced the
// symbol intern table (symtab serializes first so a resumed run reassigns
// the exact same IDs); PGCK2 added Load/Wall timing columns to the
// per-batch reports. Older checkpoints are rejected (resume from scratch
// rather than guess at an incompatible layout).
const checkpointMagic = "PGCK7"

// Codec bounds for untrusted counts.
const (
	maxSkipped = 1 << 24
	maxReports = 1 << 24
	maxSamples = 1 << 24
)

// SkipReport records one quarantined batch: its stream slot and why it was
// poisoned.
type SkipReport struct {
	// Seq is the batch's slot in the source stream (delivered and
	// quarantined batches both advance the slot counter; retried transient
	// faults do not).
	Seq int
	// Reason describes the fault, from the source's error.
	Reason string
}

// fingerprint renders every configuration field that affects discovery
// output. A checkpoint written under one fingerprint cannot be resumed under
// another: the replayed batches would be processed differently and the
// byte-identity guarantee would silently break. Execution-only knobs
// (Parallelism, PipelineDepth, DenseSignatures, Telemetry) are excluded —
// the engine produces identical schemas at every depth, the factored and
// dense signature kernels are bit-identical, and telemetry only observes,
// so a checkpoint written under one of these settings resumes cleanly
// under any other.
func (c Config) fingerprint() string {
	fp := fmt.Sprintf("v2 m=%d th=%g emb=%+v lw=%g sem=%t al=%t at=%g np=%s ep=%s mhr=%d sdt=%t part=%t sf=%g smin=%d tm=%t mb=%d ee=%t seed=%d",
		c.Method, c.Theta, c.Embedding, c.LabelWeight, c.SemanticLabels,
		c.AlignLabels, c.AlignThreshold, paramsFingerprint(c.NodeParams),
		paramsFingerprint(c.EdgeParams), c.MinHashRows, c.SampleDatatypes,
		c.Participation, c.SampleFraction, c.SampleMin, c.TrackMembers,
		c.MemBudgetBytes, c.ExactEvidence, c.Seed)
	// Only the quarantine policy decides which batches merge, so only it —
	// together with the epoch cadence that times its validation targets —
	// changes the discovered schema. Off, evolve and alert are
	// execution-only and share the unsuffixed fingerprint, so their
	// checkpoints cross-resume freely.
	if c.DriftPolicy == DriftQuarantine {
		fp += fmt.Sprintf(" dp=quarantine ei=%d", c.EpochInterval)
	}
	return fp
}

func paramsFingerprint(p *lsh.Params) string {
	if p == nil {
		return "auto"
	}
	return fmt.Sprintf("%+v", *p)
}

// stateSnapshot encodes the preprocess-frontier state (aligner + embedding
// session) into a self-delimiting byte string. Under the overlapped engine it
// is captured immediately after preprocess(seq) so a checkpoint emitted at
// extract(seq) pairs a consistent pair of frontiers.
func (p *Pipeline) stateSnapshot() ([]byte, error) {
	var buf bytes.Buffer
	w := pg.NewWireWriter(&buf)
	if p.aligner == nil {
		w.Bool(false)
	} else {
		w.Bool(true)
		order, canonical := p.aligner.State()
		w.Uvarint(uint64(len(order)))
		for _, rep := range order {
			w.String(rep)
		}
		labels := make([]string, 0, len(canonical))
		for l := range canonical {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		w.Uvarint(uint64(len(labels)))
		for _, l := range labels {
			w.String(l)
			w.String(canonical[l])
		}
	}
	if err := p.session.WriteState(w); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// restoreSnapshot decodes a stateSnapshot into the pipeline's aligner and
// session.
func (p *Pipeline) restoreSnapshot(r *pg.WireReader) error {
	hasAligner, err := r.Bool()
	if err != nil {
		return fmt.Errorf("aligner flag: %w", err)
	}
	if hasAligner {
		if p.aligner == nil {
			return fmt.Errorf("checkpoint carries aligner state but AlignLabels is off")
		}
		n, err := r.Uvarint(maxSamples)
		if err != nil {
			return err
		}
		order := make([]string, n)
		for i := range order {
			if order[i], err = r.String(); err != nil {
				return err
			}
		}
		m, err := r.Uvarint(maxSamples)
		if err != nil {
			return err
		}
		canonical := make(map[string]string, m)
		for i := uint64(0); i < m; i++ {
			l, err := r.String()
			if err != nil {
				return err
			}
			if canonical[l], err = r.String(); err != nil {
				return err
			}
		}
		p.aligner.Restore(order, canonical)
	} else if p.aligner != nil {
		return fmt.Errorf("AlignLabels is on but checkpoint has no aligner state")
	}
	return p.session.ReadState(r)
}

// encodeCheckpoint writes the full checkpoint. snap is the preprocess-frontier
// snapshot to embed (from stateSnapshot); slots is the stream position
// consumed so far (delivered + quarantined batches).
func (p *Pipeline) encodeCheckpoint(w io.Writer, slots int, skipped []SkipReport, snap []byte) error {
	bw := pg.NewWireWriter(w)
	bw.Raw([]byte(checkpointMagic))
	bw.String(p.cfg.fingerprint())
	bw.Uvarint(uint64(slots))

	bw.Uvarint(uint64(len(skipped)))
	for _, s := range skipped {
		bw.Varint(int64(s.Seq))
		bw.String(s.Reason)
	}

	bw.Uvarint(uint64(len(p.reports)))
	for _, r := range p.reports {
		writeReport(bw, r)
	}

	if err := schema.WriteSchema(bw, p.schema); err != nil {
		return err
	}
	p.sampler.writeState(bw)
	bw.Raw(snap)
	if err := p.writeDriftState(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// EncodeCheckpoint serializes the pipeline's current state. The pipeline
// must be quiescent (no Drain in flight): the live session and aligner are
// snapshotted directly.
func (p *Pipeline) EncodeCheckpoint(w io.Writer, slots int, skipped []SkipReport) error {
	snap, err := p.stateSnapshot()
	if err != nil {
		return err
	}
	return p.encodeCheckpoint(w, slots, skipped, snap)
}

// ResumePipeline reconstructs a pipeline from a checkpoint. The provided
// config must match the writer's (fingerprint-checked): resuming under a
// different configuration would process the remaining batches differently
// and break the byte-identity guarantee. It returns the restored pipeline,
// the stream position to skip to, and the batches quarantined before the
// checkpoint.
func ResumePipeline(r io.Reader, cfg Config) (*Pipeline, int, []SkipReport, error) {
	p := NewPipeline(cfg)
	br := pg.NewWireReader(r)
	if err := br.Expect(checkpointMagic); err != nil {
		return nil, 0, nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	fp, err := br.String()
	if err != nil {
		return nil, 0, nil, fmt.Errorf("core: checkpoint fingerprint: %w", err)
	}
	if want := p.cfg.fingerprint(); fp != want {
		return nil, 0, nil, fmt.Errorf("core: checkpoint was written under a different configuration:\n  checkpoint: %s\n  current:    %s", fp, want)
	}
	slots, err := br.Uvarint(1 << 40)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("core: checkpoint slots: %w", err)
	}

	skipCount, err := br.Uvarint(maxSkipped)
	if err != nil {
		return nil, 0, nil, err
	}
	var skipped []SkipReport
	for i := uint64(0); i < skipCount; i++ {
		seq, err := br.Varint()
		if err != nil {
			return nil, 0, nil, err
		}
		reason, err := br.String()
		if err != nil {
			return nil, 0, nil, err
		}
		skipped = append(skipped, SkipReport{Seq: int(seq), Reason: reason})
	}

	reportCount, err := br.Uvarint(maxReports)
	if err != nil {
		return nil, 0, nil, err
	}
	p.reports = make([]BatchReport, 0, reportCount)
	for i := uint64(0); i < reportCount; i++ {
		rep, err := readReport(br)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("core: checkpoint report %d: %w", i, err)
		}
		p.reports = append(p.reports, rep)
	}

	if p.schema, err = schema.ReadSchema(br); err != nil {
		return nil, 0, nil, fmt.Errorf("core: checkpoint schema: %w", err)
	}
	// The evidence policy is configuration, not state: re-derive it so the
	// decoded accumulators (whose sketch parameters are self-describing)
	// keep observing under the same caps the writer used.
	p.schema.SetEvidencePolicy(p.cfg.evidencePolicy())
	if err := p.sampler.readState(br); err != nil {
		return nil, 0, nil, fmt.Errorf("core: checkpoint sampler: %w", err)
	}
	if err := p.restoreSnapshot(br); err != nil {
		return nil, 0, nil, fmt.Errorf("core: checkpoint state: %w", err)
	}
	if err := p.readDriftState(br); err != nil {
		return nil, 0, nil, err
	}
	return p, int(slots), skipped, nil
}

func writeReport(w *pg.WireWriter, r BatchReport) {
	w.Varint(int64(r.Batch))
	w.Varint(int64(r.Nodes))
	w.Varint(int64(r.Edges))
	w.Varint(int64(r.NodeClusters))
	w.Varint(int64(r.EdgeClusters))
	writeParams(w, r.NodeParams)
	writeParams(w, r.EdgeParams)
	w.Varint(int64(r.Load))
	w.Varint(int64(r.Preprocess))
	w.Varint(int64(r.Cluster))
	w.Varint(int64(r.Extract))
	w.Varint(int64(r.Wall))
}

func readReport(r *pg.WireReader) (BatchReport, error) {
	var rep BatchReport
	fields := []*int{&rep.Batch, &rep.Nodes, &rep.Edges, &rep.NodeClusters, &rep.EdgeClusters}
	for _, f := range fields {
		v, err := r.Varint()
		if err != nil {
			return rep, err
		}
		*f = int(v)
	}
	var err error
	if rep.NodeParams, err = readParams(r); err != nil {
		return rep, err
	}
	if rep.EdgeParams, err = readParams(r); err != nil {
		return rep, err
	}
	for _, d := range []*time.Duration{&rep.Load, &rep.Preprocess, &rep.Cluster, &rep.Extract, &rep.Wall} {
		v, err := r.Varint()
		if err != nil {
			return rep, err
		}
		*d = time.Duration(v)
	}
	return rep, nil
}

func writeParams(w *pg.WireWriter, p lsh.Params) {
	w.Float64(p.Mu)
	w.Float64(p.BBase)
	w.Float64(p.Alpha)
	w.Float64(p.Bucket)
	w.Varint(int64(p.Tables))
}

func readParams(r *pg.WireReader) (lsh.Params, error) {
	var p lsh.Params
	var err error
	if p.Mu, err = r.Float64(); err != nil {
		return p, err
	}
	if p.BBase, err = r.Float64(); err != nil {
		return p, err
	}
	if p.Alpha, err = r.Float64(); err != nil {
		return p, err
	}
	if p.Bucket, err = r.Float64(); err != nil {
		return p, err
	}
	tables, err := r.Varint()
	if err != nil {
		return p, err
	}
	p.Tables = int(tables)
	return p, nil
}

// writeState serializes the sampler's per-key observation counters, keyed
// by (kind tag | interned key ID) and written in sorted key order so the
// encoding is deterministic (frac/min/seed come from configuration). The
// IDs resolve against the schema symtab, which the checkpoint restores
// verbatim before the sampler state is read.
func (s *sampler) writeState(w *pg.WireWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]uint64, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.Uvarint(k)
		w.Varint(int64(s.counts[k]))
	}
}

func (s *sampler) readState(r *pg.WireReader) error {
	n, err := r.Uvarint(maxSamples)
	if err != nil {
		return err
	}
	counts := make(map[uint64]int, n)
	last := int64(-1)
	for i := uint64(0); i < n; i++ {
		k, err := r.Uvarint(^uint64(0))
		if err != nil {
			return err
		}
		if int64(k) <= last {
			return fmt.Errorf("sampler key %d out of order", k)
		}
		last = int64(k)
		c, err := r.Varint()
		if err != nil {
			return err
		}
		counts[k] = int(c)
	}
	s.mu.Lock()
	s.counts = counts
	s.mu.Unlock()
	return nil
}
