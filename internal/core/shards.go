// Sharded multi-core discovery: the element stream is hash-partitioned
// across Config.Shards independent pipelines — each with its own schema,
// symbol table, sampler and embedding session — which run concurrently, one
// overlapped engine per shard. When the stream ends, the partial schemas are
// folded into one global schema by schema.MergeSchemas: shard symtab IDs are
// remapped into the global table through dense translation tables, degree
// and property evidence is unioned, and Algorithm 2's unlabeled-into-labeled
// Jaccard merge re-runs across shard boundaries. Merging shards in index
// order keeps the global symtab assignment — and therefore the serialized
// schema — deterministic for a fixed (Seed, Shards).
//
// The fault-tolerant variant checkpoints the whole fleet into one PGCK6
// container: the router's stream position and quarantine list plus one
// complete PGCK5 section per shard. Sections advance independently (each
// shard checkpoints after its own extractions), so a container pairs the
// newest state of the shard that just saved with the latest states of the
// rest; on resume the router replays the stream from the beginning and each
// shard's own skip window drops exactly the sub-batches it already folded
// in. Because the element→shard assignment ignores batch boundaries, the
// replayed sub-batch sequence is identical, and the resumed run converges to
// byte-identical Finalize output (TestShardedResume).
package core

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"pghive/internal/infer"
	"pghive/internal/obs"
	"pghive/internal/pg"
	"pghive/internal/schema"
)

// chanSource adapts a batch channel to pg.Source: a closed channel is end of
// stream.
type chanSource struct{ ch chan *pg.Batch }

// Next implements pg.Source.
func (c *chanSource) Next() *pg.Batch { return <-c.ch }

// shardConfig derives shard i's pipeline configuration: telemetry events are
// tagged with the shard index, and the worker budget is split across shards
// so N concurrent engines don't oversubscribe the host.
func shardConfig(cfg Config, i int) Config {
	sc := cfg
	sc.Shards = 0
	sc.Telemetry = obs.ShardSink(cfg.Telemetry, i)
	sc.driftShard = i
	if w := cfg.Parallelism / cfg.Shards; w >= 1 {
		sc.Parallelism = w
	} else {
		sc.Parallelism = 1
	}
	return sc
}

// newShardPipelines builds one fresh pipeline per shard.
func newShardPipelines(cfg Config) []*Pipeline {
	pipes := make([]*Pipeline, cfg.Shards)
	for i := range pipes {
		pipes[i] = NewPipeline(shardConfig(cfg, i))
	}
	return pipes
}

// DiscoverSharded is Discover with the stream partitioned across
// cfg.Shards concurrent pipelines. Shards ≤ 1 is exactly Discover
// (byte-identical output); N > 1 merges the partial schemas in shard order
// and finalizes the global schema.
func DiscoverSharded(src pg.Source, cfg Config) *Result {
	cfg = cfg.withDefaults()
	if cfg.Shards <= 1 {
		return Discover(src, cfg)
	}
	start := time.Now()
	pipes := newShardPipelines(cfg)
	feeds, wait := startShards(pipes, cfg, nil, nil, nil)
	for b := src.Next(); b != nil; b = src.Next() {
		for j, part := range pg.PartitionBatch(b, cfg.Shards) {
			if part.Len() > 0 {
				feeds[j] <- part
			}
		}
	}
	for _, ch := range feeds {
		close(ch)
	}
	wait()
	return finishSharded(pipes, cfg, start, nil)
}

// startShards launches one drain goroutine per pipeline, each consuming its
// own buffered feed channel. With shardSlots/co set the shards run DrainFT
// (skipping the sub-batches a resumed checkpoint already folded in,
// checkpointing through the coordinator); otherwise they run the plain
// Drain. errs, when non-nil, receives each shard's permanent error. The
// returned wait blocks until every shard finishes. A shard that stops early
// keeps draining its feed so the router never blocks on a dead shard.
func startShards(pipes []*Pipeline, cfg Config, shardSlots []int, co *shardCoordinator, errs []error) ([]chan *pg.Batch, func()) {
	feeds := make([]chan *pg.Batch, len(pipes))
	var wg sync.WaitGroup
	for i := range pipes {
		feeds[i] = make(chan *pg.Batch, cfg.PipelineDepth)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if shardSlots == nil {
				pipes[i].Drain(&chanSource{ch: feeds[i]})
			} else {
				// The feed only ever delivers good batches (the router
				// absorbs upstream faults), so the shard's own puller just
				// counts sub-batch slots and honors its resume skip window.
				var ck Checkpointer
				if co != nil {
					ck = shardSaver{co: co, shard: i}
				}
				_, err := pipes[i].DrainFT(pg.AsErrSource(&chanSource{ch: feeds[i]}), FTOptions{
					Checkpoint: ck,
					SkipSlots:  shardSlots[i],
				})
				if errs != nil {
					errs[i] = err
				}
			}
			for range feeds[i] { // unblock the router if this shard died early
			}
		}(i)
	}
	return feeds, wg.Wait
}

// finishSharded merges the shard schemas in index order, stamps each report
// with its shard, finalizes the global schema and assembles the Result.
func finishSharded(pipes []*Pipeline, cfg Config, start time.Time, skipped []SkipReport) *Result {
	instr := obs.NewInstr(cfg.Telemetry)

	mStart := time.Now()
	global := schema.NewSchema()
	// The merge target carries the same evidence policy as the shards so
	// cross-mode conversions only happen for evidence that predates the
	// policy, and the merged sketches keep their caps.
	global.SetEvidencePolicy(cfg.evidencePolicy())
	var reports []BatchReport
	var drift *DriftSummary
	merged := 0
	for i, p := range pipes {
		// Close each shard's final partial epoch before merging (shards
		// never call their own Finalize; the global schema is finalized
		// below) and fold its drift activity into the run-level summary.
		// Shard-level skip slots are positions in the shard's own sub-batch
		// stream, so the reason names the shard.
		p.driftFinalEpoch()
		if ds := p.driftSummary(); ds != nil {
			if drift == nil {
				drift = ds
			} else {
				drift.merge(ds)
			}
		}
		for _, s := range p.driftSkipped {
			s.Reason = fmt.Sprintf("shard %d: %s", i, s.Reason)
			skipped = append(skipped, s)
		}
		schema.MergeSchemas(global, p.schema, cfg.Theta)
		for _, r := range p.reports {
			r.Shard = i
			reports = append(reports, r)
			merged += r.Nodes + r.Edges
		}
	}
	instr.Span(obs.Span{
		Stage: obs.StageMerge, Batch: -1,
		Start: mStart, Duration: time.Since(mStart),
		Elements: merged,
	})
	discovery := time.Since(start)

	fStart := time.Now()
	def := infer.Finalize(global, infer.Options{
		SampleBased:   cfg.SampleDatatypes,
		Participation: cfg.Participation,
	})
	instr.Span(obs.Span{
		Stage: obs.StagePostprocess, Batch: -1,
		Start: fStart, Duration: time.Since(fStart),
		Elements: len(def.Nodes) + len(def.Edges),
	})

	return &Result{
		Def:         def,
		Schema:      global,
		Reports:     reports,
		Skipped:     skipped,
		Drift:       drift,
		Discovery:   discovery,
		PostProcess: time.Since(fStart),
		Telemetry:   telemetrySnapshot(cfg),
	}
}

// shardCheckpointMagic versions the sharded checkpoint container: router
// position + quarantine list + one complete PGCK7 section per shard (PGCK8
// tracks the per-shard drift section of PGCK7, as PGCK6 tracked PGCK5). The
// shard count is validated explicitly from the header (it is not part of
// the configuration fingerprint), so a container written for N shards
// resumes only under Shards = N.
const shardCheckpointMagic = "PGCK8"

// maxShards bounds the shard count accepted from an untrusted container.
const maxShards = 1 << 16

// encodeShardContainer writes one fleet container.
func encodeShardContainer(w *bytes.Buffer, cfg Config, slots int, skipped []SkipReport, states [][]byte) error {
	bw := pg.NewWireWriter(w)
	bw.Raw([]byte(shardCheckpointMagic))
	bw.String(cfg.fingerprint())
	bw.Uvarint(uint64(len(states)))
	bw.Uvarint(uint64(slots))
	bw.Uvarint(uint64(len(skipped)))
	for _, s := range skipped {
		bw.Varint(int64(s.Seq))
		bw.String(s.Reason)
	}
	for _, st := range states {
		bw.String(string(st))
	}
	return bw.Flush()
}

// decodeShardContainer parses a fleet container, validating the fingerprint
// and that it was written for exactly cfg.Shards shards.
func decodeShardContainer(state []byte, cfg Config) (sections [][]byte, slots int, skipped []SkipReport, err error) {
	br := pg.NewWireReader(bytes.NewReader(state))
	if err := br.Expect(shardCheckpointMagic); err != nil {
		return nil, 0, nil, fmt.Errorf("core: shard checkpoint: %w", err)
	}
	fp, err := br.String()
	if err != nil {
		return nil, 0, nil, fmt.Errorf("core: shard checkpoint fingerprint: %w", err)
	}
	if want := cfg.fingerprint(); fp != want {
		return nil, 0, nil, fmt.Errorf("core: shard checkpoint was written under a different configuration:\n  checkpoint: %s\n  current:    %s", fp, want)
	}
	n, err := br.Uvarint(maxShards)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("core: shard checkpoint shard count: %w", err)
	}
	if int(n) != cfg.Shards {
		return nil, 0, nil, fmt.Errorf("core: shard checkpoint was written for %d shards, resuming with %d", n, cfg.Shards)
	}
	s, err := br.Uvarint(1 << 40)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("core: shard checkpoint slots: %w", err)
	}
	slots = int(s)
	skipCount, err := br.Uvarint(maxSkipped)
	if err != nil {
		return nil, 0, nil, err
	}
	for i := uint64(0); i < skipCount; i++ {
		seq, err := br.Varint()
		if err != nil {
			return nil, 0, nil, err
		}
		reason, err := br.String()
		if err != nil {
			return nil, 0, nil, err
		}
		skipped = append(skipped, SkipReport{Seq: int(seq), Reason: reason})
	}
	sections = make([][]byte, n)
	for i := range sections {
		sec, err := br.String()
		if err != nil {
			return nil, 0, nil, fmt.Errorf("core: shard checkpoint section %d: %w", i, err)
		}
		sections[i] = []byte(sec)
	}
	return sections, slots, skipped, nil
}

// shardCoordinator assembles PGCK6 containers: it holds every shard's latest
// encoded PGCK5 state plus the router's current stream position, and rewrites
// the container whenever any shard checkpoints. One mutex serializes shard
// saves against router position updates, so a container's position is always
// ≥ every sub-batch its sections have folded in, and its quarantine list is
// the exact list as of that position.
type shardCoordinator struct {
	mu      sync.Mutex
	ck      Checkpointer
	cfg     Config
	states  [][]byte
	slots   int
	skipped []SkipReport
}

// position records the router's stream progress (called before the slot's
// sub-batches are delivered, so no shard state can get ahead of it).
func (co *shardCoordinator) position(slots int, skipped []SkipReport) {
	co.mu.Lock()
	co.slots = slots
	co.skipped = append(co.skipped[:0], skipped...)
	co.mu.Unlock()
}

// save installs shard's newest state and persists the container.
func (co *shardCoordinator) save(shard int, state []byte) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.states[shard] = append([]byte(nil), state...)
	var buf bytes.Buffer
	if err := encodeShardContainer(&buf, co.cfg, co.slots, co.skipped, co.states); err != nil {
		return fmt.Errorf("core: encode shard container: %w", err)
	}
	return co.ck.Save(buf.Bytes())
}

// shardSaver is shard i's Checkpointer view of the coordinator.
type shardSaver struct {
	co    *shardCoordinator
	shard int
}

// Save implements Checkpointer.
func (s shardSaver) Save(state []byte) error { return s.co.save(s.shard, state) }

// routeShards pulls the fallible upstream, absorbing transient faults and
// quarantining poisoned batches exactly like the single-pipeline puller, and
// delivers each good batch's non-empty sub-batches to the shard feeds. On
// resume every good batch is re-delivered (each shard drops its own already
// folded sub-batches); the skip window only suppresses re-recording of
// quarantines the checkpointed run already reported. Closes all feeds on
// return.
func routeShards(src pg.ErrSource, feeds []chan *pg.Batch, opts FTOptions, co *shardCoordinator, instr obs.Instr) ([]SkipReport, error) {
	defer func() {
		for _, ch := range feeds {
			close(ch)
		}
	}()
	budget := opts.MaxTransient
	if budget <= 0 {
		budget = DefaultMaxTransient
	}
	slot := 0
	skipped := append([]SkipReport(nil), opts.Skipped...)
	transients := 0
	for {
		b, err := src.Next()
		switch {
		case err == nil && b == nil:
			return skipped, nil
		case err == nil:
			slot++
			transients = 0
			if co != nil && slot > opts.SkipSlots {
				co.position(slot, skipped)
			}
			for j, part := range pg.PartitionBatch(b, len(feeds)) {
				if part.Len() > 0 {
					feeds[j] <- part
				}
			}
		case pg.IsTransient(err):
			transients++
			if transients >= budget {
				return skipped, fmt.Errorf("core: slot %d: %d consecutive transient faults: %w", slot, transients, err)
			}
			instr.Add(obs.CtrRetries, 1)
		case pg.IsCorrupt(err):
			slot++
			transients = 0
			if slot <= opts.SkipSlots {
				continue // already recorded by the checkpointed run
			}
			skipped = append(skipped, SkipReport{Seq: slot - 1, Reason: err.Error()})
			instr.Add(obs.CtrQuarantined, 1)
			if co != nil {
				co.position(slot, skipped)
			}
		default:
			return skipped, err
		}
	}
}

// DiscoverShardedFT is DiscoverFT with the stream partitioned across
// cfg.Shards pipelines. Shards ≤ 1 delegates to DiscoverFT. Checkpoints are
// PGCK6 containers covering the whole fleet; resume them with
// ResumeDiscoverShardedFT.
func DiscoverShardedFT(src pg.ErrSource, cfg Config, opts FTOptions) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards <= 1 {
		return DiscoverFT(src, cfg, opts)
	}
	return runShardedFT(newShardPipelines(cfg), make([]int, cfg.Shards), src, cfg, opts)
}

// ResumeDiscoverShardedFT restores a fleet from a PGCK6 container and
// continues draining src — which must replay the same stream from the
// beginning — then merges and finalizes. The configuration (including
// Shards) must match the writer's.
func ResumeDiscoverShardedFT(state []byte, src pg.ErrSource, cfg Config, opts FTOptions) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards <= 1 {
		return ResumeDiscoverFT(state, src, cfg, opts)
	}
	sections, slots, skipped, err := decodeShardContainer(state, cfg)
	if err != nil {
		return nil, err
	}
	pipes := make([]*Pipeline, cfg.Shards)
	shardSlots := make([]int, cfg.Shards)
	for i := range pipes {
		p, s, shardSkips, err := ResumePipeline(bytes.NewReader(sections[i]), shardConfig(cfg, i))
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		// A shard's feed only ever delivers good batches, so its restored
		// skip list holds exclusively drift quarantines: carry it forward so
		// later shard checkpoints and the final Result keep reporting them.
		p.driftSkipped = shardSkips
		pipes[i] = p
		shardSlots[i] = s
	}
	opts.SkipSlots = slots
	opts.Skipped = skipped
	return runShardedFT(pipes, shardSlots, src, cfg, opts)
}

// runShardedFT drives a fault-tolerant sharded drain: router on the calling
// goroutine, one DrainFT per shard, PGCK6 checkpoints through the
// coordinator, then merge + finalize.
func runShardedFT(pipes []*Pipeline, shardSlots []int, src pg.ErrSource, cfg Config, opts FTOptions) (*Result, error) {
	start := time.Now()
	var co *shardCoordinator
	if opts.Checkpoint != nil {
		co = &shardCoordinator{
			ck:      opts.Checkpoint,
			cfg:     cfg,
			states:  make([][]byte, cfg.Shards),
			slots:   opts.SkipSlots,
			skipped: append([]SkipReport(nil), opts.Skipped...),
		}
		// Seed every section with its shard's quiescent state so the very
		// first container is already complete and resumable.
		for i, p := range pipes {
			var buf bytes.Buffer
			if err := p.EncodeCheckpoint(&buf, shardSlots[i], nil); err != nil {
				return nil, fmt.Errorf("core: shard %d: %w", i, err)
			}
			co.states[i] = buf.Bytes()
		}
	}
	errs := make([]error, len(pipes))
	feeds, wait := startShards(pipes, cfg, shardSlots, co, errs)
	skipped, routeErr := routeShards(src, feeds, opts, co, obs.NewInstr(cfg.Telemetry))
	wait()
	if routeErr != nil {
		return nil, routeErr
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
	}
	return finishSharded(pipes, cfg, start, skipped), nil
}
