package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"pghive/internal/pg"
	"pghive/internal/schema"
)

// Metamorphic properties of incremental discovery (Algorithm 1/2):
//
//  1. Permutation invariance — the discovered type structure (which label
//     sets exist, with which property keys) does not depend on the order
//     batches arrive in. Individual type splits and embeddings may differ
//     across orders, so the invariant is checked on a canonical aggregate:
//     label-set key → union of property keys, per element kind.
//  2. Monotonicity — the schema only grows: after every batch i,
//     S_i ⊑ S_{i+1} (no type and no property ever disappears), and this
//     holds under every fault profile, because quarantining a poisoned
//     batch merely withholds evidence.
//
// Both properties are exercised at pipeline depths 1/2/4 and for both LSH
// methods.

// fingerprint reduces a schema to its canonical observable structure:
// "n:<labelKey>" / "e:<labelKey>" → sorted union of property keys over every
// type carrying exactly that label set.
func fingerprint(s *schema.Schema) map[string][]string {
	out := map[string][]string{}
	fold := func(prefix string, types []*schema.Type) {
		merged := map[string]map[string]struct{}{}
		for _, t := range types {
			key := prefix + strings.Join(t.LabelStrings(), "|")
			props := merged[key]
			if props == nil {
				props = map[string]struct{}{}
				merged[key] = props
			}
			for _, k := range t.PropKeyStrings() {
				props[k] = struct{}{}
			}
		}
		for key, props := range merged {
			keys := make([]string, 0, len(props))
			for k := range props {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			out[key] = keys
		}
	}
	fold("n:", s.NodeTypes)
	fold("e:", s.EdgeTypes)
	return out
}

// subsetOf reports whether fingerprint a is contained in b: every type key
// of a exists in b and carries at least a's property keys.
func subsetOf(a, b map[string][]string) error {
	for key, props := range a {
		bprops, ok := b[key]
		if !ok {
			return fmt.Errorf("type %q disappeared", key)
		}
		set := map[string]struct{}{}
		for _, p := range bprops {
			set[p] = struct{}{}
		}
		for _, p := range props {
			if _, ok := set[p]; !ok {
				return fmt.Errorf("type %q lost property %q", key, p)
			}
		}
	}
	return nil
}

func permuted(batches []*pg.Batch, seed int64) []*pg.Batch {
	out := append([]*pg.Batch(nil), batches...)
	rand.New(rand.NewSource(seed)).Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// TestMetamorphicPermutationInvariance: on a fault-free stream, the
// canonical type structure is identical for every batch-arrival order.
func TestMetamorphicPermutationInvariance(t *testing.T) {
	g := engineGraph(t, 300)
	batches := g.SplitRandom(6, 11)
	for _, m := range []Method{MethodELSH, MethodMinHash} {
		for _, depth := range []int{1, 2, 4} {
			cfg := DefaultConfig()
			cfg.Method = m
			cfg.PipelineDepth = depth
			base := fingerprint(Discover(pg.NewSliceSource(batches...), cfg).Schema)
			for _, seed := range []int64{1, 2, 3} {
				got := fingerprint(Discover(pg.NewSliceSource(permuted(batches, seed)...), cfg).Schema)
				if !reflect.DeepEqual(base, got) {
					t.Errorf("%v depth=%d perm=%d: type structure depends on batch order\nbase: %v\ngot:  %v",
						m, depth, seed, base, got)
				}
			}
		}
	}
}

// monotonicityRecorder decodes every checkpoint DrainFT emits and keeps the
// schema fingerprint sequence, in batch order.
type monotonicityRecorder struct {
	cfg   Config
	snaps []map[string][]string
}

func (r *monotonicityRecorder) Save(state []byte) error {
	p, _, _, err := ResumePipeline(bytes.NewReader(state), r.cfg)
	if err != nil {
		return fmt.Errorf("decode checkpoint %d: %w", len(r.snaps), err)
	}
	r.snaps = append(r.snaps, fingerprint(p.Schema()))
	return nil
}

// TestMetamorphicMonotonicity: S_i ⊑ S_{i+1} after every batch, under every
// fault profile, at every depth, for both methods. The per-batch snapshots
// come from the checkpoint stream itself, so this simultaneously verifies
// that checkpoints decode to coherent schemas mid-run.
func TestMetamorphicMonotonicity(t *testing.T) {
	g := engineGraph(t, 300)
	batches := g.SplitRandom(6, 11)
	profiles := map[string]pg.FaultProfile{
		"fault-free": {},
		"transient":  {TransientRate: 0.3, Seed: 5},
		"corrupt":    {CorruptRate: 0.25, Seed: 5},
		"truncate":   {TruncateRate: 0.25, Seed: 5},
		"mixed":      {TransientRate: 0.2, CorruptRate: 0.15, TruncateRate: 0.1, Seed: 5},
		"fail-mid":   {FailAfter: 4, Seed: 5},
	}
	for _, m := range []Method{MethodELSH, MethodMinHash} {
		for _, depth := range []int{1, 2, 4} {
			for name, profile := range profiles {
				cfg := DefaultConfig()
				cfg.Method = m
				cfg.PipelineDepth = depth
				rec := &monotonicityRecorder{cfg: cfg}
				src := pg.NewFaultSource(pg.AsErrSource(pg.NewSliceSource(batches...)), profile)
				p := NewPipeline(cfg)
				_, err := p.DrainFT(src, FTOptions{Checkpoint: rec})
				if name == "fail-mid" {
					if err == nil {
						t.Errorf("%v depth=%d %s: expected permanent failure", m, depth, name)
					}
				} else if err != nil {
					t.Fatalf("%v depth=%d %s: %v", m, depth, name, err)
				}
				if len(rec.snaps) == 0 {
					t.Fatalf("%v depth=%d %s: no checkpoints recorded", m, depth, name)
				}
				for i := 1; i < len(rec.snaps); i++ {
					if err := subsetOf(rec.snaps[i-1], rec.snaps[i]); err != nil {
						t.Errorf("%v depth=%d %s: monotonicity broken at batch %d: %v", m, depth, name, i, err)
					}
				}
				// The final snapshot matches the live pipeline.
				if err := subsetOf(rec.snaps[len(rec.snaps)-1], fingerprint(p.Schema())); err != nil {
					t.Errorf("%v depth=%d %s: last checkpoint disagrees with live schema: %v", m, depth, name, err)
				}
			}
		}
	}
}

// TestMetamorphicMonotonicityPermuted combines both properties: monotone
// growth must hold for shuffled batch orders too.
func TestMetamorphicMonotonicityPermuted(t *testing.T) {
	g := engineGraph(t, 300)
	batches := g.SplitRandom(5, 7)
	cfg := DefaultConfig()
	for _, seed := range []int64{1, 9} {
		rec := &monotonicityRecorder{cfg: cfg}
		p := NewPipeline(cfg)
		src := pg.AsErrSource(pg.NewSliceSource(permuted(batches, seed)...))
		if _, err := p.DrainFT(src, FTOptions{Checkpoint: rec}); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(rec.snaps); i++ {
			if err := subsetOf(rec.snaps[i-1], rec.snaps[i]); err != nil {
				t.Errorf("perm=%d: monotonicity broken at batch %d: %v", seed, i, err)
			}
		}
	}
}
