package core

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"pghive/internal/lsh"
	"pghive/internal/obs"
	"pghive/internal/pg"
)

// TestTelemetrySchemaUnchanged: attaching a sink must not change the
// discovered schema — telemetry observes, it never participates. Checked
// for both engine paths and with a full Registry+TraceWriter fan-out.
func TestTelemetrySchemaUnchanged(t *testing.T) {
	g := engineGraph(t, 300)
	for _, depth := range []int{1, 4} {
		base := DefaultConfig()
		base.PipelineDepth = depth
		plain := discoverSplit(g, base, 5, 7)
		if plain.Telemetry != nil {
			t.Fatalf("depth=%d: Result.Telemetry must be nil without a registry", depth)
		}

		reg := obs.NewRegistry()
		var traceBuf bytes.Buffer
		tw := obs.NewTraceWriter(&traceBuf)
		cfg := base
		cfg.Telemetry = obs.Multi(reg, tw)
		observed := discoverSplit(g, cfg, 5, 7)
		if err := tw.Close(); err != nil {
			t.Fatalf("depth=%d: trace close: %v", depth, err)
		}

		defsEqual(t, "telemetry on vs off", plain.Def, observed.Def)
		if observed.Telemetry == nil {
			t.Fatalf("depth=%d: Result.Telemetry missing despite registry sink", depth)
		}
		snap := observed.Telemetry
		if got := snap.Counter(obs.CtrBatches); got != uint64(len(observed.Reports)) {
			t.Errorf("depth=%d: batches counter = %d, want %d", depth, got, len(observed.Reports))
		}
		var nodes, edges uint64
		for _, r := range observed.Reports {
			nodes += uint64(r.Nodes)
			edges += uint64(r.Edges)
		}
		if snap.Counter(obs.CtrNodes) != nodes || snap.Counter(obs.CtrEdges) != edges {
			t.Errorf("depth=%d: element counters %d/%d, want %d/%d", depth,
				snap.Counter(obs.CtrNodes), snap.Counter(obs.CtrEdges), nodes, edges)
		}
		created, merged := snap.Counter(obs.CtrTypesCreated), snap.Counter(obs.CtrTypesMerged)
		var clusters uint64
		for _, r := range observed.Reports {
			clusters += uint64(r.NodeClusters + r.EdgeClusters)
		}
		if created+merged != clusters {
			t.Errorf("depth=%d: types created+merged = %d, want one outcome per candidate (%d)", depth, created+merged, clusters)
		}
		wantTypes := uint64(len(observed.Schema.NodeTypes) + len(observed.Schema.EdgeTypes))
		if created != wantTypes {
			t.Errorf("depth=%d: types_created = %d, want %d (one per schema type)", depth, created, wantTypes)
		}
		for _, st := range []obs.Stage{obs.StageLoad, obs.StagePreprocess, obs.StageCluster, obs.StageExtract, obs.StagePostprocess} {
			agg := snap.Stage(st)
			wantCount := uint64(len(observed.Reports))
			if st == obs.StagePostprocess {
				wantCount = 1
			}
			if agg.Count != wantCount {
				t.Errorf("depth=%d: stage %v spans = %d, want %d", depth, st, agg.Count, wantCount)
			}
		}
		if snap.Hist(obs.HistNodeOccupancy).Count == 0 {
			t.Errorf("depth=%d: no node bucket-occupancy observations", depth)
		}
		if snap.Counter(obs.CtrPrefixDotsComputed) == 0 || snap.Counter(obs.CtrPrefixDotHits) == 0 {
			t.Errorf("depth=%d: factored prefix-dot cache counters missing: %+v", depth, snap.Counters)
		}
		if snap.Counter(obs.CtrEmbedTokensTrained) == 0 || snap.Counter(obs.CtrEmbedTokensReused) == 0 {
			t.Errorf("depth=%d: embedding session cache counters missing: %+v", depth, snap.Counters)
		}

		// The trace must be a valid Chrome trace: a JSON array of events
		// whose complete events match the span counts above.
		var events []map[string]any
		if err := json.Unmarshal(traceBuf.Bytes(), &events); err != nil {
			t.Fatalf("depth=%d: trace is not valid JSON: %v", depth, err)
		}
		complete := 0
		for _, e := range events {
			if e["ph"] == "X" {
				complete++
			}
		}
		// load+preprocess+cluster+extract per batch, one postprocess.
		if want := 4*len(observed.Reports) + 1; complete != want {
			t.Errorf("depth=%d: trace has %d complete events, want %d", depth, complete, want)
		}
	}
}

// TestTelemetryMinHashRecordSigCounters: the factored MinHash kernel
// reports its distinct-record memoization.
func TestTelemetryMinHashRecordSigCounters(t *testing.T) {
	g := engineGraph(t, 200)
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Method = MethodMinHash
	cfg.Telemetry = reg
	res := discoverSplit(g, cfg, 3, 5)
	snap := res.Telemetry
	if snap == nil {
		t.Fatal("no telemetry snapshot")
	}
	computed, hits := snap.Counter(obs.CtrRecordSigsComputed), snap.Counter(obs.CtrRecordSigHits)
	if computed == 0 || hits == 0 {
		t.Fatalf("record-signature cache counters = %d computed / %d hits, want both > 0", computed, hits)
	}
	var elements uint64
	for _, r := range res.Reports {
		elements += uint64(r.Nodes + r.Edges)
	}
	if computed+hits != elements {
		t.Errorf("computed+hits = %d, want one per element (%d)", computed+hits, elements)
	}
}

// TestTelemetryConcurrentScrape serves a live registry over HTTP while a
// depth-4 overlapped Discover emits into it, and hammers /metrics in both
// formats. Under -race this pins the scrape-during-run contract end to end.
func TestTelemetryConcurrentScrape(t *testing.T) {
	g := engineGraph(t, 600)
	reg := obs.NewRegistry()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(url string, check func([]byte) error) {
		defer wg.Done()
		for {
			resp, err := http.Get(url)
			if err != nil {
				t.Error(err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Error(err)
				return
			}
			if err := check(body); err != nil {
				t.Errorf("scrape: %v\n%s", err, body)
				return
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}
	wg.Add(2)
	go scrape(srv.URL+"/metrics", func(b []byte) error {
		var snap obs.Snapshot
		return json.Unmarshal(b, &snap)
	})
	go scrape(srv.URL+"/metrics?format=prometheus", func(b []byte) error {
		if len(b) == 0 || !strings.Contains(string(b), "pghive_uptime_seconds") {
			t.Errorf("prometheus scrape missing uptime gauge")
		}
		return nil
	})

	cfg := DefaultConfig()
	cfg.PipelineDepth = 4
	cfg.Telemetry = reg
	res := discoverSplit(g, cfg, 8, 3)
	close(done)
	wg.Wait()

	if res.Telemetry == nil || res.Telemetry.Counter(obs.CtrBatches) != uint64(len(res.Reports)) {
		t.Fatalf("final snapshot inconsistent: %+v", res.Telemetry)
	}
}

// TestReportsRecordWallWithoutSink: per-batch wall-clock and throughput are
// recorded even with telemetry disabled — the free half of the
// observability contract.
func TestReportsRecordWallWithoutSink(t *testing.T) {
	g := engineGraph(t, 200)
	for _, depth := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.PipelineDepth = depth
		res := discoverSplit(g, cfg, 4, 13)
		for i, r := range res.Reports {
			if r.Wall <= 0 {
				t.Errorf("depth=%d batch %d: Wall not recorded", depth, i)
			}
			if r.Wall < r.Preprocess+r.Cluster+r.Extract {
				t.Errorf("depth=%d batch %d: Wall %v < stage sum %v", depth, i, r.Wall, r.Total())
			}
			if r.Throughput() <= 0 {
				t.Errorf("depth=%d batch %d: Throughput not positive", depth, i)
			}
		}
	}
}

// TestCheckpointRoundtripsTimings: Load and Wall survive the checkpoint
// codec exactly.
func TestCheckpointRoundtripsTimings(t *testing.T) {
	cfg := DefaultConfig()
	p := NewPipeline(cfg)
	p.reports = []BatchReport{
		{
			Batch: 0, Nodes: 10, Edges: 4, NodeClusters: 2, EdgeClusters: 1,
			NodeParams: lsh.Params{Mu: 1.5, Bucket: 2, Tables: 3},
			Load:       5 * time.Millisecond, Preprocess: time.Millisecond,
			Cluster: 2 * time.Millisecond, Extract: time.Millisecond,
			Wall: 9 * time.Millisecond,
		},
		{Batch: 1, Nodes: 7, Load: 123 * time.Microsecond, Wall: 456 * time.Microsecond},
	}
	var buf bytes.Buffer
	if err := p.EncodeCheckpoint(&buf, 2, nil); err != nil {
		t.Fatal(err)
	}
	restored, slots, _, err := ResumePipeline(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slots != 2 {
		t.Errorf("slots = %d, want 2", slots)
	}
	if !reflect.DeepEqual(restored.reports, p.reports) {
		t.Errorf("reports did not round-trip:\n got %+v\nwant %+v", restored.reports, p.reports)
	}
}

// TestFTTelemetryCounters: a fault-tolerant run with injected faults and
// checkpointing reports retries, quarantines and checkpoint volume.
func TestFTTelemetryCounters(t *testing.T) {
	g := engineGraph(t, 200)
	batches := g.SplitRandom(6, 21)
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.PipelineDepth = 1
	cfg.Telemetry = reg
	fault := pg.NewFaultSource(pg.AsErrSource(pg.NewSliceSource(batches...)),
		pg.FaultProfile{TransientRate: 0.3, CorruptRate: 0.2, Seed: 5})
	fault.SetSleep(func(time.Duration) {})
	res, err := DiscoverFT(fault, cfg, FTOptions{Checkpoint: discardCheckpointer{}})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Telemetry
	if snap == nil {
		t.Fatal("no telemetry snapshot")
	}
	transients, corrupted := fault.Stats()
	if got := snap.Counter(obs.CtrRetries); got != uint64(transients) {
		t.Errorf("retries = %d, want %d (every injected transient absorbed by the drain)", got, transients)
	}
	if got := snap.Counter(obs.CtrQuarantined); got != uint64(corrupted) || len(res.Skipped) != corrupted {
		t.Errorf("quarantined = %d (skipped %d), want %d", got, len(res.Skipped), corrupted)
	}
	if got := snap.Counter(obs.CtrCheckpoints); got != uint64(len(res.Reports)) {
		t.Errorf("checkpoints = %d, want one per extracted batch (%d)", got, len(res.Reports))
	}
	if snap.Counter(obs.CtrCheckpointBytes) == 0 {
		t.Error("checkpoint bytes not counted")
	}
	if snap.Stage(obs.StageCheckpoint).Count != uint64(len(res.Reports)) {
		t.Errorf("checkpoint spans = %d, want %d", snap.Stage(obs.StageCheckpoint).Count, len(res.Reports))
	}
}

// discardCheckpointer accepts and drops checkpoints (the counters only need
// Save to be called).
type discardCheckpointer struct{}

func (discardCheckpointer) Save([]byte) error { return nil }
