package core

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"pghive/internal/pg"
	"pghive/internal/schema"
)

// shardDatasets builds the three equivalence-suite graphs: the mixed
// engine graph (labeled + multi-label + unlabeled elements), a label-pure
// graph, and a property-heavy graph with overlapping property sets.
func shardDatasets(t testing.TB) map[string]*pg.Graph {
	t.Helper()
	pure := pg.NewGraph()
	var users, items []pg.ID
	for i := 0; i < 240; i++ {
		switch i % 3 {
		case 0:
			users = append(users, pure.AddNode([]string{"User"}, pg.Properties{
				"name": pg.Str("u"), "karma": pg.Int(int64(i)),
			}))
		case 1:
			items = append(items, pure.AddNode([]string{"Item"}, pg.Properties{
				"sku": pg.Str("s"), "price": pg.Float(float64(i) / 3),
			}))
		default:
			pure.AddNode([]string{"Review"}, pg.Properties{
				"stars": pg.Int(int64(i % 5)), "text": pg.Str("t"),
			})
		}
	}
	for i, u := range users {
		if _, err := pure.AddEdge([]string{"BOUGHT"}, u, items[i%len(items)], pg.Properties{
			"qty": pg.Int(int64(1 + i%3)),
		}); err != nil {
			t.Fatal(err)
		}
	}

	heavy := pg.NewGraph()
	for i := 0; i < 200; i++ {
		props := pg.Properties{"id": pg.Int(int64(i))}
		for p := 0; p < 4+i%3; p++ {
			props[fmt.Sprintf("f%d", p)] = pg.Float(float64(p))
		}
		label := "Alpha"
		if i%2 == 1 {
			label = "Beta"
		}
		heavy.AddNode([]string{label}, props)
	}

	return map[string]*pg.Graph{
		"engine": engineGraph(t, 300),
		"pure":   pure,
		"heavy":  heavy,
	}
}

// TestShardedOneShardByteIdentical: Shards ≤ 1 must be exactly Discover —
// the merge path is bypassed and the output bytes match, for both LSH
// methods. This is the CI gate that keeps the sharded entry point a strict
// superset of the serial one.
func TestShardedOneShardByteIdentical(t *testing.T) {
	batches := faultFreeBatches(t, 300, 5)
	for _, m := range []Method{MethodELSH, MethodMinHash} {
		cfg := DefaultConfig()
		cfg.Method = m
		wantJSON, wantDDL := renderDef(t, Discover(pg.NewSliceSource(batches...), cfg).Def)
		for _, shards := range []int{0, 1} {
			cfg := cfg
			cfg.Shards = shards
			gotJSON, gotDDL := renderDef(t, DiscoverSharded(pg.NewSliceSource(batches...), cfg).Def)
			if !bytes.Equal(wantJSON, gotJSON) {
				t.Errorf("%v shards=%d: JSON diverges from serial\nwant %s\ngot  %s", m, shards, wantJSON, gotJSON)
			}
			if !bytes.Equal(wantDDL, gotDDL) {
				t.Errorf("%v shards=%d: DDL diverges from serial", m, shards)
			}
		}
	}
}

// labeledProjection canonicalizes a finalized schema's labeled types for
// cross-run comparison: label set → instance count and per-property
// (data type, mandatory) pairs. Abstract types are summarized only by their
// total instance count — the clustering partition (and therefore the
// composition of unlabeled clusters) legitimately differs between a serial
// and a sharded run.
func labeledProjection(def *schema.Def) map[string]string {
	proj := map[string]string{}
	abstract := 0
	add := func(kind, name string, labels []string, isAbstract bool, instances int, props []schema.PropertyDef) {
		if isAbstract {
			abstract += instances
			return
		}
		var b strings.Builder
		fmt.Fprintf(&b, "inst=%d", instances)
		sorted := append([]schema.PropertyDef(nil), props...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
		for _, p := range sorted {
			fmt.Fprintf(&b, " %s:%v/mand=%t", p.Key, p.DataType, p.Mandatory)
		}
		key := append([]string(nil), labels...)
		sort.Strings(key)
		proj[kind+":"+strings.Join(key, "|")] = b.String()
	}
	for _, n := range def.Nodes {
		add("node", n.Name, n.Labels, n.Abstract, n.Instances, n.Properties)
	}
	for _, e := range def.Edges {
		add("edge", e.Name, e.Labels, e.Abstract, e.Instances, e.Properties)
	}
	proj["abstract-instances"] = fmt.Sprintf("%d", abstract)
	return proj
}

// totalInstances sums instance counts over every type of the finalized
// schema — exactly-once delivery means a sharded run observes each element
// exactly as often as the serial run does.
func totalInstances(def *schema.Def) (nodes, edges int) {
	for _, n := range def.Nodes {
		nodes += n.Instances
	}
	for _, e := range def.Edges {
		edges += e.Instances
	}
	return
}

// TestShardedEquivalence is the merge-equivalence suite: on three datasets,
// for both LSH methods and N ∈ {1, 2, 4} shards, the sharded run's labeled
// types match the serial run's (same label sets, same instance counts, same
// property data types and constraints) and the total evidence mass is
// conserved. N = 1 is byte-identical (TestShardedOneShardByteIdentical);
// N > 1 is allowed to differ only in abstract-type composition, which the
// projection deliberately collapses (see DESIGN.md §11 for why).
func TestShardedEquivalence(t *testing.T) {
	for name, g := range shardDatasets(t) {
		batches := g.SplitRandom(6, 11)
		for _, m := range []Method{MethodELSH, MethodMinHash} {
			cfg := DefaultConfig()
			cfg.Method = m
			serial := Discover(pg.NewSliceSource(batches...), cfg)
			wantProj := labeledProjection(serial.Def)
			wantNodes, wantEdges := totalInstances(serial.Def)
			for _, shards := range []int{1, 2, 4} {
				cfg := cfg
				cfg.Shards = shards
				res := DiscoverSharded(pg.NewSliceSource(batches...), cfg)
				gotNodes, gotEdges := totalInstances(res.Def)
				if gotNodes != wantNodes || gotEdges != wantEdges {
					t.Errorf("%s/%v shards=%d: instance mass not conserved: nodes %d→%d edges %d→%d",
						name, m, shards, wantNodes, gotNodes, wantEdges, gotEdges)
				}
				gotProj := labeledProjection(res.Def)
				for key, want := range wantProj {
					if got, ok := gotProj[key]; !ok {
						t.Errorf("%s/%v shards=%d: labeled type %s missing from sharded run", name, m, shards, key)
					} else if got != want {
						t.Errorf("%s/%v shards=%d: %s diverges\nserial:  %s\nsharded: %s", name, m, shards, key, want, got)
					}
				}
				for key := range gotProj {
					if _, ok := wantProj[key]; !ok {
						t.Errorf("%s/%v shards=%d: sharded run invented labeled type %s", name, m, shards, key)
					}
				}
			}
		}
	}
}

// TestShardedDeterministic: a sharded run is a pure function of
// (input, Seed, Shards) — two identical runs produce byte-identical output,
// and the per-report shard stamps partition the batches.
func TestShardedDeterministic(t *testing.T) {
	batches := faultFreeBatches(t, 300, 6)
	cfg := DefaultConfig()
	cfg.Shards = 3
	a := DiscoverSharded(pg.NewSliceSource(batches...), cfg)
	b := DiscoverSharded(pg.NewSliceSource(batches...), cfg)
	aJSON, aDDL := renderDef(t, a.Def)
	bJSON, bDDL := renderDef(t, b.Def)
	if !bytes.Equal(aJSON, bJSON) {
		t.Errorf("sharded run not deterministic\nfirst:  %s\nsecond: %s", aJSON, bJSON)
	}
	if !bytes.Equal(aDDL, bDDL) {
		t.Error("sharded DDL not deterministic")
	}
	seen := map[int]int{}
	for _, r := range a.Reports {
		if r.Shard < 0 || r.Shard >= cfg.Shards {
			t.Fatalf("report carries shard %d outside [0,%d)", r.Shard, cfg.Shards)
		}
		seen[r.Shard] += r.Nodes + r.Edges
	}
	if len(seen) < 2 {
		t.Errorf("3-shard run used only shards %v", seen)
	}
}

// TestShardedFTMatchesSharded: over a fault-free source the fault-tolerant
// sharded path is just DiscoverSharded — identical output, no quarantine —
// and a transient-fault storm changes nothing.
func TestShardedFTMatchesSharded(t *testing.T) {
	batches := faultFreeBatches(t, 300, 6)
	cfg := DefaultConfig()
	cfg.Shards = 3
	wantJSON, wantDDL := renderDef(t, DiscoverSharded(pg.NewSliceSource(batches...), cfg).Def)
	for _, transient := range []float64{0, 0.3} {
		var src pg.ErrSource = pg.AsErrSource(pg.NewSliceSource(batches...))
		if transient > 0 {
			src = pg.NewFaultSource(src, pg.FaultProfile{TransientRate: transient, Seed: 77})
		}
		res, err := DiscoverShardedFT(src, cfg, FTOptions{})
		if err != nil {
			t.Fatalf("transient=%g: %v", transient, err)
		}
		if len(res.Skipped) != 0 {
			t.Errorf("transient=%g: quarantined %d batches", transient, len(res.Skipped))
		}
		gotJSON, gotDDL := renderDef(t, res.Def)
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("transient=%g: FT JSON diverges\nwant %s\ngot  %s", transient, wantJSON, gotJSON)
		}
		if !bytes.Equal(wantDDL, gotDDL) {
			t.Errorf("transient=%g: FT DDL diverges", transient)
		}
	}
}

// TestShardedQuarantine: the router quarantines poisoned batches exactly
// like the single-pipeline puller — the quarantine list depends only on the
// fault profile, not on the shard count.
func TestShardedQuarantine(t *testing.T) {
	batches := faultFreeBatches(t, 300, 8)
	profile := pg.FaultProfile{CorruptRate: 0.3, TruncateRate: 0.2, Seed: 5}
	var want []SkipReport
	for i, shards := range []int{1, 2, 4} {
		cfg := DefaultConfig()
		cfg.Shards = shards
		src := pg.NewFaultSource(pg.AsErrSource(pg.NewSliceSource(batches...)), profile)
		res, err := DiscoverShardedFT(src, cfg, FTOptions{})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(res.Skipped) == 0 {
			t.Fatal("corrupt profile quarantined nothing")
		}
		if i == 0 {
			want = res.Skipped
			continue
		}
		if len(res.Skipped) != len(want) {
			t.Fatalf("shards=%d: quarantine list has %d entries, shards=1 had %d", shards, len(res.Skipped), len(want))
		}
		for j := range want {
			if res.Skipped[j] != want[j] {
				t.Errorf("shards=%d: skip %d = %+v, want %+v", shards, j, res.Skipped[j], want[j])
			}
		}
	}
}

// TestShardedResume is kill-anywhere recovery for the fleet: a sharded run
// crashes at several stream positions, the PGCK6 container restores all
// shards plus the router position, and the resumed run finishes
// byte-identical to an uninterrupted sharded run.
func TestShardedResume(t *testing.T) {
	batches := faultFreeBatches(t, 300, 6)
	cfg := DefaultConfig()
	cfg.Shards = 3
	wantJSON, wantDDL := renderDef(t, DiscoverSharded(pg.NewSliceSource(batches...), cfg).Def)

	for _, failAfter := range []int{1, 3, 5} {
		ck := FileCheckpointer{Path: filepath.Join(t.TempDir(), "fleet.ck")}
		crash := pg.NewFaultSource(pg.AsErrSource(pg.NewSliceSource(batches...)),
			pg.FaultProfile{FailAfter: failAfter, Seed: 1})
		if _, err := DiscoverShardedFT(crash, cfg, FTOptions{Checkpoint: ck}); !errors.Is(err, pg.ErrPermanentFault) {
			t.Fatalf("failAfter=%d: want permanent fault, got %v", failAfter, err)
		}
		state, ok, err := ck.Load()
		if err != nil || !ok {
			t.Fatalf("failAfter=%d: no container after crash: ok=%t err=%v", failAfter, ok, err)
		}
		res, err := ResumeDiscoverShardedFT(state, pg.AsErrSource(pg.NewSliceSource(batches...)), cfg, FTOptions{Checkpoint: ck})
		if err != nil {
			t.Fatalf("failAfter=%d: resume: %v", failAfter, err)
		}
		gotJSON, gotDDL := renderDef(t, res.Def)
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("failAfter=%d: resumed JSON diverges\nwant %s\ngot  %s", failAfter, wantJSON, gotJSON)
		}
		if !bytes.Equal(wantDDL, gotDDL) {
			t.Errorf("failAfter=%d: resumed DDL diverges", failAfter)
		}
	}
}

// TestShardedResumeRejects: a PGCK6 container refuses to resume under a
// different shard count, a different configuration, as a single-pipeline
// checkpoint (and vice versa), or from the superseded PGCK4 container
// format.
func TestShardedResumeRejects(t *testing.T) {
	batches := faultFreeBatches(t, 200, 4)
	cfg := DefaultConfig()
	cfg.Shards = 2
	ck := FileCheckpointer{Path: filepath.Join(t.TempDir(), "fleet.ck")}
	crash := pg.NewFaultSource(pg.AsErrSource(pg.NewSliceSource(batches...)),
		pg.FaultProfile{FailAfter: 2, Seed: 1})
	if _, err := DiscoverShardedFT(crash, cfg, FTOptions{Checkpoint: ck}); !errors.Is(err, pg.ErrPermanentFault) {
		t.Fatalf("want permanent fault, got %v", err)
	}
	state, ok, err := ck.Load()
	if err != nil || !ok {
		t.Fatalf("no container: ok=%t err=%v", ok, err)
	}

	src := func() pg.ErrSource { return pg.AsErrSource(pg.NewSliceSource(batches...)) }

	wrong := cfg
	wrong.Shards = 4
	if _, err := ResumeDiscoverShardedFT(state, src(), wrong, FTOptions{}); err == nil {
		t.Error("resume with wrong shard count succeeded")
	}

	wrong = cfg
	wrong.Theta = 0.5
	if _, err := ResumeDiscoverShardedFT(state, src(), wrong, FTOptions{}); err == nil {
		t.Error("resume with different theta succeeded")
	}

	if _, err := ResumeDiscoverFT(state, src(), DefaultConfig(), FTOptions{}); err == nil {
		t.Error("single-pipeline resume accepted a fleet container")
	}

	// A container in the superseded pre-sketch format must be rejected by
	// its magic, not misparsed.
	stale := append([]byte("PGCK4"), state[len(shardCheckpointMagic):]...)
	if _, err := ResumeDiscoverShardedFT(stale, src(), cfg, FTOptions{}); err == nil {
		t.Error("fleet resume accepted a PGCK4 container")
	}

	// And a plain single-pipeline checkpoint must not resume as a fleet.
	soloCk := FileCheckpointer{Path: filepath.Join(t.TempDir(), "solo.ck")}
	soloCrash := pg.NewFaultSource(pg.AsErrSource(pg.NewSliceSource(batches...)),
		pg.FaultProfile{FailAfter: 2, Seed: 1})
	if _, err := DiscoverFT(soloCrash, DefaultConfig(), FTOptions{Checkpoint: soloCk}); !errors.Is(err, pg.ErrPermanentFault) {
		t.Fatalf("want permanent fault, got %v", err)
	}
	soloState, _, _ := soloCk.Load()
	if _, err := ResumeDiscoverShardedFT(soloState, src(), cfg, FTOptions{}); err == nil {
		t.Error("fleet resume accepted a single-pipeline checkpoint")
	}
}

// FuzzShardedCheckpoint: arbitrary container bytes must be rejected cleanly,
// never crash the decoder.
func FuzzShardedCheckpoint(f *testing.F) {
	cfg := DefaultConfig().withDefaults()
	cfg.Shards = 2
	var buf bytes.Buffer
	pipes := newShardPipelines(cfg)
	states := make([][]byte, len(pipes))
	for i, p := range pipes {
		var b bytes.Buffer
		if err := p.EncodeCheckpoint(&b, 0, nil); err != nil {
			f.Fatal(err)
		}
		states[i] = b.Bytes()
	}
	if err := encodeShardContainer(&buf, cfg, 3, []SkipReport{{Seq: 1, Reason: "x"}}, states); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(shardCheckpointMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sections, _, _, err := decodeShardContainer(data, cfg)
		if err != nil {
			return
		}
		if len(sections) != cfg.Shards {
			t.Fatalf("accepted container with %d sections for %d shards", len(sections), cfg.Shards)
		}
		for i, sec := range sections {
			if _, _, _, err := ResumePipeline(bytes.NewReader(sec), shardConfig(cfg, i)); err != nil {
				return // a corrupt section is fine as long as it errors
			}
		}
	})
}
