package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"pghive/internal/pg"
	"pghive/internal/schema"
	"pghive/internal/serialize"
)

// renderDef serializes a finalized schema both ways the CLI can emit it —
// JSON and PG-Schema DDL — so equality checks are on the actual output
// bytes, not on Go-level structural equality.
func renderDef(t *testing.T, def *schema.Def) (jsonBytes, ddlBytes []byte) {
	t.Helper()
	j, err := json.Marshal(def)
	if err != nil {
		t.Fatalf("marshal def: %v", err)
	}
	var ddl bytes.Buffer
	if err := serialize.WritePGSchema(&ddl, def, "g", serialize.Strict); err != nil {
		t.Fatalf("render DDL: %v", err)
	}
	return j, ddl.Bytes()
}

func faultFreeBatches(t testing.TB, nodes, batches int) []*pg.Batch {
	g := engineGraph(t, nodes)
	return g.SplitRandom(batches, 11)
}

// noSleep strips real latency out of retry backoff in tests.
func noSleep(time.Duration) {}

// TestDiscoverFTMatchesDiscover: over a fault-free source, the
// fault-tolerant path is just Discover — identical finalized output, no
// quarantine.
func TestDiscoverFTMatchesDiscover(t *testing.T) {
	batches := faultFreeBatches(t, 300, 5)
	for _, depth := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.PipelineDepth = depth
		want := Discover(pg.NewSliceSource(batches...), cfg)
		got, err := DiscoverFT(pg.AsErrSource(pg.NewSliceSource(batches...)), cfg, FTOptions{})
		if err != nil {
			t.Fatalf("depth=%d: %v", depth, err)
		}
		if len(got.Skipped) != 0 {
			t.Errorf("depth=%d: fault-free run quarantined %d batches", depth, len(got.Skipped))
		}
		defsEqual(t, "ft-vs-plain", want.Def, got.Def)
	}
}

// TestDiscoverFTTransientIdentity is the acceptance criterion for graceful
// degradation: with well over 10% of pulls failing transiently, discovery
// completes and the finalized schema is byte-identical to the fault-free
// run — at serial and overlapped depths, for both LSH methods, with and
// without a retry/backoff layer in between.
func TestDiscoverFTTransientIdentity(t *testing.T) {
	batches := faultFreeBatches(t, 300, 6)
	for _, m := range []Method{MethodELSH, MethodMinHash} {
		cfg := DefaultConfig()
		cfg.Method = m
		wantJSON, wantDDL := renderDef(t, Discover(pg.NewSliceSource(batches...), cfg).Def)
		for _, depth := range []int{1, 2, 4} {
			for _, withRetry := range []bool{false, true} {
				cfg := cfg
				cfg.PipelineDepth = depth
				var src pg.ErrSource = pg.NewFaultSource(
					pg.AsErrSource(pg.NewSliceSource(batches...)),
					pg.FaultProfile{TransientRate: 0.3, Seed: 77})
				if withRetry {
					src = pg.NewRetrySource(src, pg.RetryPolicy{Sleep: noSleep})
				}
				res, err := DiscoverFT(src, cfg, FTOptions{})
				if err != nil {
					t.Fatalf("%v depth=%d retry=%t: %v", m, depth, withRetry, err)
				}
				if len(res.Skipped) != 0 {
					t.Errorf("%v depth=%d: transient faults must not quarantine batches, skipped %d", m, depth, len(res.Skipped))
				}
				gotJSON, gotDDL := renderDef(t, res.Def)
				if !bytes.Equal(wantJSON, gotJSON) {
					t.Errorf("%v depth=%d retry=%t: JSON diverges from fault-free run\nwant %s\ngot  %s", m, depth, withRetry, wantJSON, gotJSON)
				}
				if !bytes.Equal(wantDDL, gotDDL) {
					t.Errorf("%v depth=%d retry=%t: DDL diverges from fault-free run", m, depth, withRetry)
				}
			}
		}
	}
}

// TestDiscoverFTQuarantinesCorrupt: poisoned batches are skipped — the run
// completes, every batch is either extracted or quarantined with a reason,
// and the quarantine list is identical at every pipeline depth.
func TestDiscoverFTQuarantinesCorrupt(t *testing.T) {
	batches := faultFreeBatches(t, 300, 8)
	profile := pg.FaultProfile{CorruptRate: 0.3, TruncateRate: 0.2, Seed: 5}
	var wantSkipped []SkipReport
	for i, depth := range []int{1, 2, 4} {
		cfg := DefaultConfig()
		cfg.PipelineDepth = depth
		src := pg.NewFaultSource(pg.AsErrSource(pg.NewSliceSource(batches...)), profile)
		res, err := DiscoverFT(src, cfg, FTOptions{})
		if err != nil {
			t.Fatalf("depth=%d: %v", depth, err)
		}
		if len(res.Skipped) == 0 {
			t.Fatal("corrupt rate 0.3+0.2 over 8 batches quarantined nothing")
		}
		if len(res.Skipped)+len(res.Reports) != len(batches) {
			t.Errorf("depth=%d: %d skipped + %d extracted != %d batches", depth, len(res.Skipped), len(res.Reports), len(batches))
		}
		for _, s := range res.Skipped {
			if s.Reason == "" || s.Seq < 0 || s.Seq >= len(batches) {
				t.Errorf("depth=%d: malformed skip report %+v", depth, s)
			}
		}
		if i == 0 {
			wantSkipped = res.Skipped
		} else if len(res.Skipped) != len(wantSkipped) {
			t.Errorf("depth=%d quarantined %d batches, serial run %d", depth, len(res.Skipped), len(wantSkipped))
		}
	}
}

// TestDrainFTTransientBudget: an endlessly transient source exhausts the
// per-slot budget instead of hanging.
func TestDrainFTTransientBudget(t *testing.T) {
	always := errSourceFunc(func() (*pg.Batch, error) { return nil, &pg.TransientError{} })
	p := NewPipeline(DefaultConfig())
	_, err := p.DrainFT(always, FTOptions{MaxTransient: 7})
	if err == nil || !pg.IsTransient(err) {
		t.Fatalf("want transient-budget error, got %v", err)
	}
}

// errSourceFunc adapts a function to pg.ErrSource for in-test fakes.
type errSourceFunc func() (*pg.Batch, error)

func (f errSourceFunc) Next() (*pg.Batch, error) { return f() }

// TestCrashResumeByteIdentical is the tentpole guarantee: kill a
// checkpointing run after k extracted batches, resume from the checkpoint
// file, and the finalized DDL and JSON are byte-identical to an
// uninterrupted run — for a crash before any batch, mid-stream, and after
// the last batch, at serial and overlapped depths.
func TestCrashResumeByteIdentical(t *testing.T) {
	batches := faultFreeBatches(t, 300, 6)
	cfgBase := DefaultConfig()
	wantJSON, wantDDL := renderDef(t, Discover(pg.NewSliceSource(batches...), cfgBase).Def)

	for _, depth := range []int{1, 4} {
		for _, kill := range []int{0, 3, len(batches)} {
			cfg := cfgBase
			cfg.PipelineDepth = depth
			ck := FileCheckpointer{Path: filepath.Join(t.TempDir(), "run.ck")}

			// Phase 1: the run dies after `kill` delivered batches
			// (FailAfter=0 means no fault, so a crash-at-once source
			// stands in for kill=0).
			var crash pg.ErrSource = pg.NewFaultSource(pg.AsErrSource(pg.NewSliceSource(batches...)),
				pg.FaultProfile{FailAfter: kill, Seed: 1})
			if kill == 0 {
				crash = errSourceFunc(func() (*pg.Batch, error) { return nil, pg.ErrPermanentFault })
			}
			if _, err := DiscoverFT(crash, cfg, FTOptions{Checkpoint: ck}); !errors.Is(err, pg.ErrPermanentFault) {
				t.Fatalf("depth=%d kill=%d: want permanent fault, got %v", depth, kill, err)
			}

			// Phase 2: resume from the last checkpoint over a healthy
			// replay of the same stream.
			state, ok, err := ck.Load()
			if err != nil {
				t.Fatal(err)
			}
			if ok != (kill > 0) {
				t.Fatalf("depth=%d kill=%d: checkpoint exists=%t", depth, kill, ok)
			}
			replay := pg.AsErrSource(pg.NewSliceSource(batches...))
			var res *Result
			if ok {
				res, err = ResumeDiscoverFT(state, replay, cfg, FTOptions{Checkpoint: ck})
			} else {
				res, err = DiscoverFT(replay, cfg, FTOptions{Checkpoint: ck})
			}
			if err != nil {
				t.Fatalf("depth=%d kill=%d: resume: %v", depth, kill, err)
			}

			gotJSON, gotDDL := renderDef(t, res.Def)
			if !bytes.Equal(wantJSON, gotJSON) {
				t.Errorf("depth=%d kill=%d: resumed JSON diverges\nwant %s\ngot  %s", depth, kill, wantJSON, gotJSON)
			}
			if !bytes.Equal(wantDDL, gotDDL) {
				t.Errorf("depth=%d kill=%d: resumed DDL diverges\nwant:\n%s\ngot:\n%s", depth, kill, wantDDL, gotDDL)
			}
			if len(res.Reports) != len(batches) {
				t.Errorf("depth=%d kill=%d: %d reports after resume, want %d", depth, kill, len(res.Reports), len(batches))
			}
		}
	}
}

// TestCrashResumeWithCorruption: crash/resume composes with quarantine —
// the resumed run inherits the checkpointed skip list and the final
// quarantine set matches an uninterrupted faulty run's.
func TestCrashResumeWithCorruption(t *testing.T) {
	batches := faultFreeBatches(t, 300, 8)
	cfg := DefaultConfig()
	profile := pg.FaultProfile{CorruptRate: 0.3, Seed: 9}

	uninterrupted, err := DiscoverFT(
		pg.NewFaultSource(pg.AsErrSource(pg.NewSliceSource(batches...)), profile), cfg, FTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := renderDef(t, uninterrupted.Def)

	ck := FileCheckpointer{Path: filepath.Join(t.TempDir(), "run.ck")}
	crashProfile := profile
	crashProfile.FailAfter = 3 // dies after 3 pulled batches (delivered or quarantined)
	crash := pg.NewFaultSource(pg.AsErrSource(pg.NewSliceSource(batches...)), crashProfile)
	if _, err := DiscoverFT(crash, cfg, FTOptions{Checkpoint: ck}); !errors.Is(err, pg.ErrPermanentFault) {
		t.Fatalf("want permanent fault, got %v", err)
	}

	state, ok, err := ck.Load()
	if err != nil || !ok {
		t.Fatalf("no checkpoint after crash: ok=%t err=%v", ok, err)
	}
	replay := pg.NewFaultSource(pg.AsErrSource(pg.NewSliceSource(batches...)), profile)
	res, err := ResumeDiscoverFT(state, replay, cfg, FTOptions{Checkpoint: ck})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	gotJSON, _ := renderDef(t, res.Def)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("resumed faulty run diverges from uninterrupted faulty run\nwant %s\ngot  %s", wantJSON, gotJSON)
	}
	if len(res.Skipped) != len(uninterrupted.Skipped) {
		t.Errorf("resumed run skipped %d batches, uninterrupted %d", len(res.Skipped), len(uninterrupted.Skipped))
	}
}

// TestResumeRejectsConfigMismatch: a checkpoint written under one
// configuration must refuse to resume under another.
func TestResumeRejectsConfigMismatch(t *testing.T) {
	batches := faultFreeBatches(t, 100, 3)
	cfg := DefaultConfig()
	p := NewPipeline(cfg)
	if _, err := p.DrainFT(pg.AsErrSource(pg.NewSliceSource(batches...)), FTOptions{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.EncodeCheckpoint(&buf, len(batches), nil); err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.Theta = 0.5
	if _, _, _, err := ResumePipeline(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("resume under a different Theta succeeded, want fingerprint error")
	}
	// Execution-only knobs may differ.
	deeper := cfg
	deeper.PipelineDepth = 8
	if _, _, _, err := ResumePipeline(bytes.NewReader(buf.Bytes()), deeper); err != nil {
		t.Errorf("resume under different PipelineDepth failed: %v", err)
	}
}

// TestPipelineCheckpointRoundTrip: encode a quiescent mid-run pipeline,
// restore it, and both must produce identical output on the remaining
// batches — the unit-level core of the crash/resume property.
func TestPipelineCheckpointRoundTrip(t *testing.T) {
	batches := faultFreeBatches(t, 300, 6)
	cfg := DefaultConfig()
	cfg.PipelineDepth = 1
	cfg.AlignLabels = true

	p := NewPipeline(cfg)
	for _, b := range batches[:3] {
		p.ProcessBatch(b)
	}
	var buf bytes.Buffer
	if err := p.EncodeCheckpoint(&buf, 3, nil); err != nil {
		t.Fatal(err)
	}
	restored, slots, skipped, err := ResumePipeline(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slots != 3 || len(skipped) != 0 {
		t.Fatalf("slots=%d skipped=%d, want 3, 0", slots, len(skipped))
	}
	for _, b := range batches[3:] {
		p.ProcessBatch(b)
		restored.ProcessBatch(b)
	}
	defsEqual(t, "checkpoint-roundtrip", p.Finalize(), restored.Finalize())
}
