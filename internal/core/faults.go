// Fault-tolerant ingestion: DrainFT runs the discovery loop over a fallible
// source, degrading gracefully instead of aborting —
//
//   - transient faults are retried in place (the slot is re-pulled; a
//     RetrySource upstream additionally adds backoff),
//   - poisoned batches (corruption, truncation) are quarantined into skip
//     reports and the stream advances,
//   - permanent failures stop the run with an error, after which the last
//     checkpoint resumes it,
//
// and per-batch checkpointing serializes the full pipeline state after every
// extracted batch, so a killed run converges to byte-identical Finalize
// output when resumed (see checkpoint.go for the frontier-consistency
// argument).
package core

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"time"

	"pghive/internal/obs"
	"pghive/internal/pg"
)

// FTOptions configures a fault-tolerant drain.
type FTOptions struct {
	// Checkpoint, when non-nil, receives the encoded pipeline state after
	// every extracted batch.
	Checkpoint Checkpointer
	// SkipSlots drops this many leading stream slots before processing:
	// they were already folded in (or quarantined) by the run that wrote
	// the checkpoint being resumed.
	SkipSlots int
	// Skipped seeds the quarantine list with the batches the checkpointed
	// run had already skipped.
	Skipped []SkipReport
	// MaxTransient bounds consecutive transient faults on one slot before
	// the drain gives up (0 means DefaultMaxTransient). A fault source
	// whose transient bursts are bounded always stays under any positive
	// budget.
	MaxTransient int
}

// DefaultMaxTransient is the consecutive-transient-fault budget per slot.
const DefaultMaxTransient = 100

// Checkpointer persists encoded checkpoints. Save is called from the extract
// stage, strictly in batch order.
type Checkpointer interface {
	Save(state []byte) error
}

// FileCheckpointer atomically writes each checkpoint to one file
// (tmp + rename), so a crash mid-save leaves the previous checkpoint intact.
type FileCheckpointer struct{ Path string }

// Save implements Checkpointer.
func (f FileCheckpointer) Save(state []byte) error {
	tmp := f.Path + ".tmp"
	if err := os.WriteFile(tmp, state, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, f.Path)
}

// Load opens the checkpoint, reporting (nil, false, nil) when none exists
// yet — the caller starts a fresh run.
func (f FileCheckpointer) Load() ([]byte, bool, error) {
	state, err := os.ReadFile(f.Path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return state, true, nil
}

// ftStaged couples a preprocessed batch with the checkpoint material frozen
// at its preprocess frontier: the session/aligner snapshot (nil when
// checkpointing is off), the stream position, and the quarantine list as of
// this batch.
type ftStaged struct {
	st          staged
	snap        []byte
	snapSlot    int
	snapSkipped []SkipReport
}

// puller pulls the next good batch from a fallible source, absorbing
// transient faults, quarantining poisoned batches and honoring the resume
// skip window. It is not safe for concurrent use; DrainFT confines it to the
// preprocess stage.
type puller struct {
	src     pg.ErrSource
	opts    FTOptions
	instr   obs.Instr
	slot    int // stream position: delivered + quarantined batches
	skipped []SkipReport
}

// next returns the next batch to process, or (nil, nil) at end of stream.
// Transient errors are retried up to the budget; corrupt batches are
// quarantined (recorded only past the skip window — inside it they were
// already recorded by the checkpointed run) and the stream advances.
func (pl *puller) next() (*pg.Batch, error) {
	budget := pl.opts.MaxTransient
	if budget <= 0 {
		budget = DefaultMaxTransient
	}
	transients := 0
	for {
		b, err := pl.src.Next()
		switch {
		case err == nil && b == nil:
			return nil, nil
		case err == nil:
			pl.slot++
			transients = 0
			if pl.slot <= pl.opts.SkipSlots {
				continue // already folded in by the checkpointed run
			}
			return b, nil
		case pg.IsTransient(err):
			transients++
			if transients >= budget {
				return nil, fmt.Errorf("core: slot %d: %d consecutive transient faults: %w", pl.slot, transients, err)
			}
			pl.instr.Add(obs.CtrRetries, 1)
		case pg.IsCorrupt(err):
			pl.slot++
			transients = 0
			if pl.slot <= pl.opts.SkipSlots {
				continue
			}
			pl.skipped = append(pl.skipped, SkipReport{Seq: pl.slot - 1, Reason: err.Error()})
			pl.instr.Add(obs.CtrQuarantined, 1)
		default:
			return nil, err
		}
	}
}

// DrainFT processes every batch from a fallible source, quarantining
// poisoned batches and checkpointing after each extraction. It returns the
// quarantine list (including any seeded by FTOptions.Skipped) and the first
// permanent error, if any. Like Drain, PipelineDepth selects serial or
// overlapped execution; both produce identical schemas and identical
// checkpoint sequences.
func (p *Pipeline) DrainFT(src pg.ErrSource, opts FTOptions) ([]SkipReport, error) {
	pl := &puller{src: src, opts: opts, instr: p.instr, skipped: append([]SkipReport(nil), opts.Skipped...)}

	// prep pulls, preprocesses and (when checkpointing) snapshots the
	// preprocess-frontier state for one batch. Must be called in batch
	// order. Sequence numbers continue from any restored reports so they
	// match the report indexes extract assigns (and the trace's batch
	// labels stay globally consistent across a resume).
	seq := p.nextSeq()
	prep := func() (ftStaged, bool, error) {
		t0 := time.Now()
		b, err := pl.next()
		if err != nil || b == nil {
			return ftStaged{}, false, err
		}
		load := time.Since(t0)
		p.loadSpan(seq, b, t0, load)
		fs := ftStaged{st: p.preprocess(b, seq)}
		fs.st.report.Load = load
		seq++
		if opts.Checkpoint != nil {
			if fs.snap, err = p.stateSnapshot(); err != nil {
				return ftStaged{}, false, fmt.Errorf("core: state snapshot: %w", err)
			}
		}
		fs.snapSlot = pl.slot
		fs.snapSkipped = append([]SkipReport(nil), pl.skipped...)
		return fs, true, nil
	}

	// save encodes and persists one checkpoint; called after extract, in
	// batch order. The slot position and quarantine list are the ones
	// stamped when the batch was pulled — quarantines discovered after it
	// belong to the next checkpoint.
	save := func(snap []byte, slotAfter int, skipped []SkipReport) error {
		start := time.Now()
		var buf bytes.Buffer
		if err := p.encodeCheckpoint(&buf, slotAfter, skipped, snap); err != nil {
			return fmt.Errorf("core: encode checkpoint: %w", err)
		}
		if err := opts.Checkpoint.Save(buf.Bytes()); err != nil {
			return fmt.Errorf("core: save checkpoint: %w", err)
		}
		p.instr.Add(obs.CtrCheckpoints, 1)
		p.instr.Add(obs.CtrCheckpointBytes, uint64(buf.Len()))
		p.instr.Span(obs.Span{
			Stage: obs.StageCheckpoint, Batch: len(p.reports) - 1,
			Start: start, Duration: time.Since(start),
			Elements: buf.Len(),
		})
		return nil
	}

	depth := p.cfg.PipelineDepth
	if depth <= 1 {
		for {
			fs, ok, err := prep()
			if err != nil || !ok {
				return p.mergedSkips(pl.skipped), err
			}
			// The batch's own stream slot is snapSlot-1 (snapSlot is the
			// position after its pull); a drift quarantine records it there.
			p.extractChecked(p.clusterSerial(fs.st), fs.snapSlot-1)
			if opts.Checkpoint != nil {
				if err := save(fs.snap, fs.snapSlot, p.mergedSkips(fs.snapSkipped)); err != nil {
					return p.mergedSkips(pl.skipped), err
				}
			}
		}
	}

	// Overlapped: same stage topology as Drain, with the fault-absorbing
	// puller feeding the preprocess stage and checkpoints emitted from the
	// ordered extract stage.
	type ftComputed struct {
		c         computed
		snap      []byte
		slotAfter int
		skipped   []SkipReport
	}
	prepped := make(chan ftStaged, depth)
	clustered := make(chan ftComputed, depth)
	var srcErr error

	go func() {
		defer close(prepped)
		for {
			fs, ok, err := prep()
			if err != nil {
				srcErr = err
				return
			}
			if !ok {
				return
			}
			prepped <- fs
		}
	}()

	workers := depth - 1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for fs := range prepped {
				clustered <- ftComputed{
					c:         p.clusterStage(fs.st),
					snap:      fs.snap,
					slotAfter: fs.snapSlot,
					skipped:   fs.snapSkipped,
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(clustered)
	}()

	var ckErr error
	pending := map[int]ftComputed{}
	next := len(p.reports)
	for fc := range clustered {
		pending[fc.c.seq] = fc
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			p.extractChecked(cur.c, cur.slotAfter-1)
			next++
			if opts.Checkpoint != nil && ckErr == nil {
				// Drift skips are appended on this goroutine (the extract
				// point), so merging here — after this batch's gate — folds
				// its own quarantine into its checkpoint; the prep-frozen
				// fault skips keep their pull-time frontier.
				ckErr = save(cur.snap, cur.slotAfter, p.mergedSkips(cur.skipped))
			}
		}
	}
	if srcErr != nil {
		return p.mergedSkips(pl.skipped), srcErr
	}
	return p.mergedSkips(pl.skipped), ckErr
}

// DiscoverFT is Discover over a fallible source: it drains with fault
// tolerance, finalizes, and reports quarantined batches in Result.Skipped.
// On a permanent source failure it returns the error; progress up to the
// failure lives in the last checkpoint (resume with ResumeDiscoverFT).
func DiscoverFT(src pg.ErrSource, cfg Config, opts FTOptions) (*Result, error) {
	p := NewPipeline(cfg)
	return p.finishFT(src, opts)
}

// ResumeDiscoverFT restores a pipeline from checkpoint bytes and continues
// draining src — which must replay the same stream from the beginning; the
// slots already folded in are skipped — then finalizes.
func ResumeDiscoverFT(state []byte, src pg.ErrSource, cfg Config, opts FTOptions) (*Result, error) {
	p, slots, skipped, err := ResumePipeline(bytes.NewReader(state), cfg)
	if err != nil {
		return nil, err
	}
	opts.SkipSlots = slots
	opts.Skipped = skipped
	return p.finishFT(src, opts)
}

func (p *Pipeline) finishFT(src pg.ErrSource, opts FTOptions) (*Result, error) {
	start := time.Now()
	skipped, err := p.DrainFT(src, opts)
	if err != nil {
		return nil, err
	}
	discovery := time.Since(start)

	start = time.Now()
	def := p.Finalize()
	post := time.Since(start)

	return &Result{
		Def:         def,
		Schema:      p.schema,
		Reports:     p.reports,
		Skipped:     skipped,
		Drift:       p.driftSummary(),
		Discovery:   discovery,
		PostProcess: post,
		Telemetry:   telemetrySnapshot(p.cfg),
	}, nil
}
