package core

import (
	"bytes"

	"pghive/internal/schema"
)

// DecodeCheckpointSchemas opens a checkpoint written by the fault-tolerant
// path — a single-pipeline PGCK5 stream or a sharded PGCK6 container — and
// returns every pipeline's accumulated schema (one per shard, in shard
// order). cfg must match the configuration the checkpoint was written
// under, exactly as a resume would require; the fingerprint gate rejects
// anything else.
//
// This is the soak harness's window into a running discovery: decoding the
// latest checkpoint proves it is resumable, and the schemas let invariant
// checks (monotone growth across checkpoints) run without disturbing the
// pipeline that wrote it.
func DecodeCheckpointSchemas(state []byte, cfg Config) ([]*schema.Schema, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards > 1 && bytes.HasPrefix(state, []byte(shardCheckpointMagic)) {
		sections, _, _, err := decodeShardContainer(state, cfg)
		if err != nil {
			return nil, err
		}
		out := make([]*schema.Schema, len(sections))
		for i := range sections {
			p, _, _, err := ResumePipeline(bytes.NewReader(sections[i]), shardConfig(cfg, i))
			if err != nil {
				return nil, err
			}
			out[i] = p.Schema()
		}
		return out, nil
	}
	p, _, _, err := ResumePipeline(bytes.NewReader(state), cfg)
	if err != nil {
		return nil, err
	}
	return []*schema.Schema{p.Schema()}, nil
}
