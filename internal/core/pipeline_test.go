package core

import (
	"sort"
	"testing"

	"pghive/internal/lsh"
	"pghive/internal/pg"
	"pghive/internal/schema"
)

// figure1Graph rebuilds the paper's running example.
func figure1Graph(t testing.TB) *pg.Graph {
	t.Helper()
	g := pg.NewGraph()
	bob := g.AddNode([]string{"Person"}, pg.Properties{"name": pg.Str("Bob"), "gender": pg.Str("m"), "bday": pg.ParseValue("19/12/1999")})
	john := g.AddNode([]string{"Person"}, pg.Properties{"name": pg.Str("John"), "gender": pg.Str("m"), "bday": pg.ParseValue("01/05/1985")})
	alice := g.AddNode(nil, pg.Properties{"name": pg.Str("Alice"), "gender": pg.Str("f"), "bday": pg.ParseValue("07/07/1990")})
	org := g.AddNode([]string{"Organization"}, pg.Properties{"name": pg.Str("FORTH"), "url": pg.Str("https://ics.forth.gr")})
	post1 := g.AddNode([]string{"Post"}, pg.Properties{"imgFile": pg.Str("x.png")})
	post2 := g.AddNode([]string{"Post"}, pg.Properties{"content": pg.Str("hello")})
	place := g.AddNode([]string{"Place"}, pg.Properties{"name": pg.Str("Heraklion")})
	edges := []struct {
		label    string
		src, dst pg.ID
		props    pg.Properties
	}{
		{"KNOWS", alice, john, pg.Properties{"since": pg.Int(2017)}},
		{"KNOWS", bob, john, nil},
		{"LIKES", alice, post1, nil},
		{"LIKES", john, post2, nil},
		{"WORKS_AT", bob, org, pg.Properties{"from": pg.Int(2020)}},
		{"LOCATED_IN", alice, place, nil},
	}
	for _, e := range edges {
		if _, err := g.AddEdge([]string{e.label}, e.src, e.dst, e.props); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func nodeTypeNames(def *schema.Def) []string {
	var out []string
	for _, n := range def.Nodes {
		out = append(out, n.Name)
	}
	sort.Strings(out)
	return out
}

func edgeTypeNames(def *schema.Def) []string {
	var out []string
	for _, e := range def.Edges {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

func TestDiscoverFigure1ELSH(t *testing.T)    { testDiscoverFigure1(t, MethodELSH) }
func TestDiscoverFigure1MinHash(t *testing.T) { testDiscoverFigure1(t, MethodMinHash) }

func testDiscoverFigure1(t *testing.T, m Method) {
	g := figure1Graph(t)
	cfg := DefaultConfig()
	cfg.Method = m
	res := DiscoverGraph(g, cfg)

	want := []string{"Organization", "Person", "Place", "Post"}
	if got := nodeTypeNames(res.Def); !equalStrings(got, want) {
		t.Errorf("node types = %v, want %v", got, want)
	}
	wantE := []string{"KNOWS", "LIKES", "LOCATED_IN", "WORKS_AT"}
	if got := edgeTypeNames(res.Def); !equalStrings(got, wantE) {
		t.Errorf("edge types = %v, want %v", got, wantE)
	}

	// Alice (unlabeled) must be absorbed into Person: 3 instances.
	person := res.Def.NodeType("Person")
	if person.Instances != 3 {
		t.Errorf("Person instances = %d, want 3 (Alice merged)", person.Instances)
	}

	// Example 6: Post's imgFile is optional.
	post := res.Def.NodeType("Post")
	img := schema.Property(post.Properties, "imgFile")
	if img == nil || img.Mandatory {
		t.Errorf("imgFile = %+v, want optional", img)
	}

	// Example 7: bday is a DATE.
	bday := schema.Property(person.Properties, "bday")
	if bday == nil || bday.DataType != pg.KindDate {
		t.Errorf("bday = %+v, want DATE", bday)
	}

	// Example 8-adjacent: KNOWS has max_in = 2 (John is known by two) and
	// max_out = 1 → the paper's (1, >1) = 0:N.
	knows := res.Def.EdgeType("KNOWS")
	if knows.Cardinality != schema.CardZeroN {
		t.Errorf("KNOWS cardinality = %v (out=%d,in=%d), want 0:N", knows.Cardinality, knows.MaxOut, knows.MaxIn)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDiscoverDeterministic(t *testing.T) {
	g := figure1Graph(t)
	cfg := DefaultConfig()
	a := DiscoverGraph(g, cfg)
	b := DiscoverGraph(g, cfg)
	if !equalStrings(nodeTypeNames(a.Def), nodeTypeNames(b.Def)) {
		t.Error("node types differ across identical runs")
	}
	if !equalStrings(edgeTypeNames(a.Def), edgeTypeNames(b.Def)) {
		t.Error("edge types differ across identical runs")
	}
}

func TestDiscoverIncrementalMatchesSingleBatch(t *testing.T) {
	// Splitting into batches must produce the same set of labeled types
	// (monotone merging), for both methods.
	g := figure1Graph(t)
	for _, m := range []Method{MethodELSH, MethodMinHash} {
		cfg := DefaultConfig()
		cfg.Method = m
		single := DiscoverGraph(g, cfg)
		batched := Discover(pg.NewSliceSource(g.SplitRandom(3, 7)...), cfg)
		if !equalStrings(nodeTypeNames(single.Def), nodeTypeNames(batched.Def)) {
			t.Errorf("%v: batched node types %v != single %v", m, nodeTypeNames(batched.Def), nodeTypeNames(single.Def))
		}
		if !equalStrings(edgeTypeNames(single.Def), edgeTypeNames(batched.Def)) {
			t.Errorf("%v: batched edge types %v != single %v", m, edgeTypeNames(batched.Def), edgeTypeNames(single.Def))
		}
	}
}

func TestIncrementalMonotone(t *testing.T) {
	// §4.6: after each batch the schema covers everything the previous
	// schema covered (S_i ⊑ S_{i+1}).
	g := figure1Graph(t)
	p := NewPipeline(DefaultConfig())
	var prevLabels []string
	var prevKeys []string
	for _, b := range g.SplitRandom(4, 3) {
		p.ProcessBatch(b)
		s := p.Schema()
		for _, l := range prevLabels {
			if !s.AllLabels(schema.NodeKind).Has(l) {
				t.Fatalf("label %q lost after batch", l)
			}
		}
		for _, k := range prevKeys {
			if !s.AllPropertyKeys(schema.NodeKind).Has(k) {
				t.Fatalf("property %q lost after batch", k)
			}
		}
		prevLabels = s.AllLabels(schema.NodeKind).Sorted()
		prevKeys = s.AllPropertyKeys(schema.NodeKind).Sorted()
	}
}

func TestTypeCompletenessOnGraph(t *testing.T) {
	// §4.7: for every node v there is a type t with λ(v) ⊆ λ(t) and
	// P_v ⊆ π(t).
	g := figure1Graph(t)
	for _, m := range []Method{MethodELSH, MethodMinHash} {
		cfg := DefaultConfig()
		cfg.Method = m
		res := DiscoverGraph(g, cfg)
		g.Nodes(func(n *pg.Node) bool {
			if !res.Schema.Covers(schema.NodeKind, n.Labels, n.Props.Keys()) {
				t.Errorf("%v: node %d (labels=%v) not covered", m, n.ID, n.Labels)
			}
			return true
		})
		g.Edges(func(e *pg.Edge) bool {
			if !res.Schema.Covers(schema.EdgeKind, e.Labels, e.Props.Keys()) {
				t.Errorf("%v: edge %d (labels=%v) not covered", m, e.ID, e.Labels)
			}
			return true
		})
	}
}

func TestDiscoverNoLabels(t *testing.T) {
	// With all labels stripped, discovery must still produce types —
	// structurally identical elements group together (the paper's 0% label
	// availability scenario).
	g := pg.NewGraph()
	for i := 0; i < 20; i++ {
		g.AddNode(nil, pg.Properties{"name": pg.Str("x"), "age": pg.Int(int64(i))})
	}
	for i := 0; i < 20; i++ {
		g.AddNode(nil, pg.Properties{"title": pg.Str("t"), "isbn": pg.Str("i"), "pages": pg.Int(9)})
	}
	res := DiscoverGraph(g, DefaultConfig())
	if len(res.Def.Nodes) != 2 {
		t.Fatalf("got %d node types, want 2", len(res.Def.Nodes))
	}
	for _, n := range res.Def.Nodes {
		if !n.Abstract {
			t.Errorf("type %q should be abstract (no labels anywhere)", n.Name)
		}
		if n.Instances != 20 {
			t.Errorf("type %q instances = %d, want 20", n.Name, n.Instances)
		}
	}
}

func TestDiscoverEmptySource(t *testing.T) {
	res := Discover(pg.NewSliceSource(), DefaultConfig())
	if len(res.Def.Nodes) != 0 || len(res.Def.Edges) != 0 {
		t.Error("empty source should produce an empty schema")
	}
	res = Discover(pg.NewSliceSource(&pg.Batch{}), DefaultConfig())
	if len(res.Def.Nodes) != 0 || len(res.Def.Edges) != 0 {
		t.Error("empty batch should produce an empty schema")
	}
}

func TestReportsPopulated(t *testing.T) {
	g := figure1Graph(t)
	p := NewPipeline(DefaultConfig())
	for _, b := range g.SplitRandom(2, 1) {
		p.ProcessBatch(b)
	}
	reports := p.Reports()
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	totalNodes := 0
	for i, r := range reports {
		if r.Batch != i {
			t.Errorf("report %d has Batch=%d", i, r.Batch)
		}
		totalNodes += r.Nodes
		if r.Nodes > 0 && r.NodeClusters == 0 {
			t.Errorf("report %d: nodes but no clusters", i)
		}
		if r.Total() <= 0 {
			t.Errorf("report %d: non-positive total duration", i)
		}
	}
	if totalNodes != g.NumNodes() {
		t.Errorf("reports cover %d nodes, want %d", totalNodes, g.NumNodes())
	}
}

func TestManualParamsRespected(t *testing.T) {
	g := figure1Graph(t)
	cfg := DefaultConfig()
	cfg.NodeParams = &lsh.Params{Bucket: 2.5, Tables: 7}
	cfg.EdgeParams = &lsh.Params{Bucket: 3.0, Tables: 9}
	p := NewPipeline(cfg)
	r := p.ProcessBatch(g.Snapshot())
	if r.NodeParams.Bucket != 2.5 || r.NodeParams.Tables != 7 {
		t.Errorf("node params = %+v, want manual (2.5, 7)", r.NodeParams)
	}
	if r.EdgeParams.Bucket != 3.0 || r.EdgeParams.Tables != 9 {
		t.Errorf("edge params = %+v, want manual (3.0, 9)", r.EdgeParams)
	}
}

func TestTrackMembersRecordsAssignments(t *testing.T) {
	g := figure1Graph(t)
	cfg := DefaultConfig()
	cfg.TrackMembers = true
	res := DiscoverGraph(g, cfg)
	total := 0
	for _, ty := range res.Schema.NodeTypes {
		total += len(ty.Members)
	}
	if total != g.NumNodes() {
		t.Errorf("tracked %d node members, want %d", total, g.NumNodes())
	}
}

func TestMinHashBandedMode(t *testing.T) {
	g := figure1Graph(t)
	cfg := DefaultConfig()
	cfg.Method = MethodMinHash
	cfg.MinHashRows = 2
	res := DiscoverGraph(g, cfg)
	if len(res.Def.Nodes) == 0 || len(res.Def.Edges) == 0 {
		t.Error("banded MinHash produced an empty schema")
	}
}

func TestSamplerDeterministicAndMinimum(t *testing.T) {
	s := newSampler(0.1, 5, 42)
	s2 := newSampler(0.1, 5, 42)
	for i := 0; i < 200; i++ {
		a, b := s.nextNode(7, "key"), s2.nextNode(7, "key")
		if a != b {
			t.Fatal("sampler not deterministic")
		}
		if i < 5 && !a {
			t.Errorf("observation %d below minimum should be sampled", i)
		}
	}
}

func TestSamplerFractionRoughlyHolds(t *testing.T) {
	s := newSampler(0.1, 100, 1)
	hits := 0
	const extra = 20000
	for i := 0; i < 100+extra; i++ {
		if s.nextEdge(3, "k") && i >= 100 {
			hits++
		}
	}
	rate := float64(hits) / extra
	if rate < 0.07 || rate > 0.13 {
		t.Errorf("post-minimum sampling rate = %.3f, want ≈ 0.10", rate)
	}
}

func TestParmapCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 100} {
		n := 57
		hits := make([]int, n)
		parmap(n, workers, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
	parmap(0, 4, func(int) { t.Fatal("must not be called") })
}

func TestMethodString(t *testing.T) {
	if MethodELSH.String() != "PG-HIVE-ELSH" || MethodMinHash.String() != "PG-HIVE-MinHash" {
		t.Error("method names wrong")
	}
}

func TestAlignLabelsMergesVariants(t *testing.T) {
	// Two sources with spelling variants: Organization vs Organisation.
	g := pg.NewGraph()
	for i := 0; i < 20; i++ {
		g.AddNode([]string{"Organization"}, pg.Properties{"name": pg.Str("a"), "vat": pg.Str("v")})
	}
	for i := 0; i < 10; i++ {
		g.AddNode([]string{"Organisation"}, pg.Properties{"name": pg.Str("b"), "vat": pg.Str("w")})
	}
	// Without alignment: two types.
	plain := DiscoverGraph(g, DefaultConfig())
	if len(plain.Def.Nodes) != 2 {
		t.Fatalf("without alignment: %d types, want 2", len(plain.Def.Nodes))
	}
	// With alignment: one type under the first-seen spelling.
	cfg := DefaultConfig()
	cfg.AlignLabels = true
	aligned := DiscoverGraph(g, cfg)
	if len(aligned.Def.Nodes) != 1 {
		t.Fatalf("with alignment: %d types, want 1", len(aligned.Def.Nodes))
	}
	if aligned.Def.Nodes[0].Instances != 30 {
		t.Errorf("aligned type instances = %d, want 30", aligned.Def.Nodes[0].Instances)
	}
}

func TestAlignLabelsDoesNotMutateGraph(t *testing.T) {
	g := pg.NewGraph()
	g.AddNode([]string{"Colour"}, nil)
	g.AddNode([]string{"Color"}, nil)
	cfg := DefaultConfig()
	cfg.AlignLabels = true
	cfg.AlignThreshold = 0.8
	DiscoverGraph(g, cfg)
	if g.Node(0).Labels[0] != "Colour" || g.Node(1).Labels[0] != "Color" {
		t.Error("alignment mutated the source graph's labels")
	}
}

func TestAlignerExposedForReporting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AlignLabels = true
	p := NewPipeline(cfg)
	if p.Aligner() == nil {
		t.Fatal("aligner should be available when enabled")
	}
	if NewPipeline(DefaultConfig()).Aligner() != nil {
		t.Error("aligner should be nil when disabled")
	}
}
