package core

import (
	"bytes"
	"strings"
	"testing"

	"pghive/internal/pg"
	"pghive/internal/schema"
)

// TestAmpersandLabelsStayDistinct is the StringSet.Key() collision
// regression: under the old "&"-joined key, {"a&b"} and {"a", "b"} rendered
// to the same string and the two types fused. With length-prefixed set keys
// and hashed ID-tuple type lookup they must stay separate end to end.
func TestAmpersandLabelsStayDistinct(t *testing.T) {
	g := pg.NewGraph()
	for i := 0; i < 30; i++ {
		g.AddNode([]string{"a&b"}, pg.Properties{"x": pg.Int(int64(i))})
		g.AddNode([]string{"a", "b"}, pg.Properties{"y": pg.Str("s")})
	}
	for _, m := range []Method{MethodELSH, MethodMinHash} {
		cfg := DefaultConfig()
		cfg.Method = m
		res := Discover(pg.NewSliceSource(g.SplitRandom(3, 1)...), cfg)
		if len(res.Schema.NodeTypes) != 2 {
			t.Fatalf("%v: got %d node types, want 2 ({a&b} vs {a,b})", m, len(res.Schema.NodeTypes))
		}
		single := res.Schema.FindByLabelSet(schema.NodeKind, schema.IDSet{mustLookup(t, res.Schema, "a&b")})
		if single == nil {
			t.Fatalf("%v: no type with label set {a&b}", m)
		}
		if single.Prop("y") != nil {
			t.Errorf("%v: {a&b} type absorbed {a,b}'s property", m)
		}
		if single.Prop("x") == nil {
			t.Errorf("%v: {a&b} type lost its own property", m)
		}
	}
}

func mustLookup(t *testing.T, s *schema.Schema, label string) uint32 {
	t.Helper()
	id, ok := s.Tab.Lookup(label)
	if !ok {
		t.Fatalf("label %q not interned", label)
	}
	return id
}

// TestResumePGCK2Rejected: a checkpoint from the pre-interning format must
// be rejected by its magic, not misparsed into a half-restored pipeline.
func TestResumePGCK2Rejected(t *testing.T) {
	stale := append([]byte("PGCK2"), make([]byte, 64)...)
	_, _, _, err := ResumePipeline(bytes.NewReader(stale), DefaultConfig())
	if err == nil {
		t.Fatal("resuming a PGCK2 checkpoint succeeded, want magic error")
	}
	if !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("error %q does not mention the checkpoint", err)
	}
}

// TestResumePGCK3Rejected: a checkpoint from the pre-sketch evidence format
// must be rejected by its magic — its degree and value-stat sections carry
// no mode bytes, so decoding it under the PGCK5 layout would misparse.
func TestResumePGCK3Rejected(t *testing.T) {
	stale := append([]byte("PGCK3"), make([]byte, 64)...)
	_, _, _, err := ResumePipeline(bytes.NewReader(stale), DefaultConfig())
	if err == nil {
		t.Fatal("resuming a PGCK3 checkpoint succeeded, want magic error")
	}
	if !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("error %q does not mention the checkpoint", err)
	}
}

// TestResumeAcrossInterning: the checkpoint must restore the symbol table
// with its exact ID assignment — the resumed pipeline keeps interning where
// the writer left off, and replaying the remaining batches yields an
// identical finalized schema AND an identical symtab.
func TestResumeAcrossInterning(t *testing.T) {
	batches := engineGraph(t, 300).SplitRandom(6, 9)
	cfg := DefaultConfig()

	p := NewPipeline(cfg)
	for _, b := range batches[:3] {
		p.ProcessBatch(b)
	}
	var buf bytes.Buffer
	if err := p.EncodeCheckpoint(&buf, 3, nil); err != nil {
		t.Fatal(err)
	}
	restored, _, _, err := ResumePipeline(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The restored table must carry the writer's exact string→ID map.
	tab, rtab := p.schema.Tab, restored.schema.Tab
	if rtab.Strings() != tab.Strings() || rtab.Endpoints() != tab.Endpoints() {
		t.Fatalf("restored symtab sizes (%d,%d), want (%d,%d)",
			rtab.Strings(), rtab.Endpoints(), tab.Strings(), tab.Endpoints())
	}
	for id := 0; id < tab.Strings(); id++ {
		if got, want := rtab.Str(uint32(id)), tab.Str(uint32(id)); got != want {
			t.Fatalf("restored symtab id %d = %q, want %q", id, got, want)
		}
	}

	for _, b := range batches[3:] {
		p.ProcessBatch(b)
		restored.ProcessBatch(b)
	}
	defsEqual(t, "resume-across-interning", p.Finalize(), restored.Finalize())
	// Interning the remainder of the stream must have stayed in lockstep.
	if restored.schema.Tab.Strings() != p.schema.Tab.Strings() {
		t.Errorf("post-resume symtab diverged: %d vs %d strings",
			restored.schema.Tab.Strings(), p.schema.Tab.Strings())
	}
}

// TestSamplerStateRoundTrip pins the composite-key sampler codec: counters
// written under (kind tag | key ID) keys restore exactly, so post-resume
// sampling decisions continue the original sequence.
func TestSamplerStateRoundTrip(t *testing.T) {
	s := newSampler(0.1, 2, 7)
	for i := 0; i < 40; i++ {
		s.nextNode(0, "name")
		s.nextEdge(0, "name")
		s.nextNode(3, "age")
	}
	var buf bytes.Buffer
	w := pg.NewWireWriter(&buf)
	s.writeState(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	restored := newSampler(0.1, 2, 7)
	if err := restored.readState(pg.NewWireReader(bytes.NewReader(buf.Bytes()))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if s.nextNode(0, "name") != restored.nextNode(0, "name") {
			t.Fatal("node decisions diverge after state restore")
		}
		if s.nextEdge(0, "name") != restored.nextEdge(0, "name") {
			t.Fatal("edge decisions diverge after state restore")
		}
		if s.nextNode(3, "age") != restored.nextNode(3, "age") {
			t.Fatal("decisions diverge for a second key")
		}
	}
}

// TestSamplerNodeEdgeKeysIndependent: the same interned key ID must keep
// separate counters per element kind (the samplerEdgeTag bit).
func TestSamplerNodeEdgeKeysIndependent(t *testing.T) {
	s := newSampler(0.0, 3, 1)
	for i := 0; i < 3; i++ {
		if !s.nextNode(5, "k") {
			t.Fatal("below-minimum node observation not sampled")
		}
	}
	// Node counter is exhausted; the edge counter for the same ID must
	// still be at zero and sample its first min observations.
	for i := 0; i < 3; i++ {
		if !s.nextEdge(5, "k") {
			t.Fatal("edge counter shared state with node counter")
		}
	}
}
