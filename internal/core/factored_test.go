package core

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"pghive/internal/pg"
)

// TestFactoredMatchesDense is the tentpole guarantee: the factored signature
// kernels (the default) produce a finalized schema byte-identical — as JSON
// and as PG-Schema DDL — to the dense reference path behind
// Config.DenseSignatures, for both LSH methods, with banded MinHash, at
// serial and overlapped pipeline depths.
func TestFactoredMatchesDense(t *testing.T) {
	g := engineGraph(t, 400)
	cases := []struct {
		name string
		set  func(*Config)
	}{
		{"elsh", func(c *Config) { c.Method = MethodELSH }},
		{"minhash", func(c *Config) { c.Method = MethodMinHash }},
		{"minhash-banded", func(c *Config) { c.Method = MethodMinHash; c.MinHashRows = 4 }},
	}
	for _, tc := range cases {
		for _, depth := range []int{1, 4} {
			cfg := DefaultConfig()
			tc.set(&cfg)
			cfg.PipelineDepth = depth

			dense := cfg
			dense.DenseSignatures = true
			wantJSON, wantDDL := renderDef(t, discoverSplit(g, dense, 6, 11).Def)
			gotJSON, gotDDL := renderDef(t, discoverSplit(g, cfg, 6, 11).Def)

			if !bytes.Equal(wantJSON, gotJSON) {
				t.Errorf("%s depth=%d: factored JSON diverges from dense\ndense:    %s\nfactored: %s",
					tc.name, depth, wantJSON, gotJSON)
			}
			if !bytes.Equal(wantDDL, gotDDL) {
				t.Errorf("%s depth=%d: factored DDL diverges from dense\ndense:\n%s\nfactored:\n%s",
					tc.name, depth, wantDDL, gotDDL)
			}
		}
	}
}

// TestFactoredReportsMatchDense: per-batch cluster counts and adapted LSH
// parameters — not just the final schema — agree between the two kernels.
// This pins the claim that the factored path's sample-based adaptation sees
// exactly the vectors the dense path renders.
func TestFactoredReportsMatchDense(t *testing.T) {
	g := engineGraph(t, 300)
	for _, m := range []Method{MethodELSH, MethodMinHash} {
		cfg := DefaultConfig()
		cfg.Method = m
		dense := cfg
		dense.DenseSignatures = true
		want := discoverSplit(g, dense, 5, 3)
		got := discoverSplit(g, cfg, 5, 3)
		if len(want.Reports) != len(got.Reports) {
			t.Fatalf("%v: %d factored reports, %d dense", m, len(got.Reports), len(want.Reports))
		}
		for i := range want.Reports {
			w, gr := want.Reports[i], got.Reports[i]
			if w.NodeClusters != gr.NodeClusters || w.EdgeClusters != gr.EdgeClusters {
				t.Errorf("%v batch %d: clusters (n=%d,e=%d) factored vs (n=%d,e=%d) dense",
					m, i, gr.NodeClusters, gr.EdgeClusters, w.NodeClusters, w.EdgeClusters)
			}
			if w.NodeParams != gr.NodeParams || w.EdgeParams != gr.EdgeParams {
				t.Errorf("%v batch %d: adapted params diverge\nfactored: %+v / %+v\ndense:    %+v / %+v",
					m, i, gr.NodeParams, gr.EdgeParams, w.NodeParams, w.EdgeParams)
			}
		}
	}
}

// TestResumeAcrossKernels: DenseSignatures is execution-only — a checkpoint
// written by a dense run (crashed mid-stream) resumes under the factored
// kernels, and vice versa, finishing byte-identical to an uninterrupted run.
func TestResumeAcrossKernels(t *testing.T) {
	batches := faultFreeBatches(t, 300, 6)
	base := DefaultConfig()
	wantJSON, wantDDL := renderDef(t, Discover(pg.NewSliceSource(batches...), base).Def)

	for _, flip := range []struct {
		name           string
		writer, reader bool // DenseSignatures at crash time / resume time
	}{
		{"dense-to-factored", true, false},
		{"factored-to-dense", false, true},
	} {
		cfg := base
		cfg.DenseSignatures = flip.writer
		ck := FileCheckpointer{Path: filepath.Join(t.TempDir(), "run.ck")}
		crash := pg.NewFaultSource(pg.AsErrSource(pg.NewSliceSource(batches...)),
			pg.FaultProfile{FailAfter: 3, Seed: 1})
		if _, err := DiscoverFT(crash, cfg, FTOptions{Checkpoint: ck}); !errors.Is(err, pg.ErrPermanentFault) {
			t.Fatalf("%s: want permanent fault, got %v", flip.name, err)
		}

		state, ok, err := ck.Load()
		if err != nil || !ok {
			t.Fatalf("%s: no checkpoint after crash: ok=%t err=%v", flip.name, ok, err)
		}
		cfg.DenseSignatures = flip.reader
		res, err := ResumeDiscoverFT(state, pg.AsErrSource(pg.NewSliceSource(batches...)), cfg, FTOptions{Checkpoint: ck})
		if err != nil {
			t.Fatalf("%s: resume: %v", flip.name, err)
		}
		gotJSON, gotDDL := renderDef(t, res.Def)
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("%s: resumed JSON diverges\nwant %s\ngot  %s", flip.name, wantJSON, gotJSON)
		}
		if !bytes.Equal(wantDDL, gotDDL) {
			t.Errorf("%s: resumed DDL diverges", flip.name)
		}
	}
}
