// Streaming drift observability: the discovery pipeline doubles as a
// conformance guardrail. With a DriftPolicy set, every batch is validated
// against the schema of the current *epoch* at the serialized extract point
// — before its candidates are merged — and classified violations flow out
// as obs drift counters, per-window histograms and JSONL records. At every
// EpochInterval extracted windows the engine snapshots the finalized
// schema, diffs it against the previous epoch (schema.Diff) and emits the
// structured diff, so "what changed since epoch k" is a query over the
// drift log rather than a forensic exercise.
//
// The policy decides what a violating batch does to the schema:
//
//   - DriftEvolve merges it exactly as an unvalidated run would — the
//     discovered schema is byte-identical to a validator-free run (pinned
//     by TestDriftEvolveByteIdentical), because validation reads the batch
//     and the epoch Def but never touches schema, sampler or session.
//   - DriftAlert merges too, but records the classified violations to the
//     drift log.
//   - DriftQuarantine withholds the batch from the merge and routes it
//     into Result.Skipped alongside the fault-tolerant path's poisoned
//     batches, so the pre-drift schema holds.
//
// Epoch state (counter, window position, baseline Def) is carried in
// checkpoints: under quarantine it decides which future batches merge, so
// it is part of the configuration fingerprint; under evolve/alert it is
// execution-only, like telemetry.
package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"pghive/internal/infer"
	"pghive/internal/obs"
	"pghive/internal/pg"
	"pghive/internal/schema"
	"pghive/internal/serialize"
	"pghive/internal/validate"
)

// DriftPolicy selects what happens when a batch violates the current epoch
// schema.
type DriftPolicy uint8

// Drift policies.
const (
	// DriftOff disables streaming validation entirely (the default): no
	// checker runs, no epochs are taken, zero overhead.
	DriftOff DriftPolicy = iota
	// DriftEvolve validates and counts, then merges as today.
	DriftEvolve
	// DriftAlert validates, counts, records violation details to the drift
	// log, then merges.
	DriftAlert
	// DriftQuarantine withholds violating batches from the merge, recording
	// them in Result.Skipped.
	DriftQuarantine
)

// String names the policy the way the -drift-policy flag spells it.
func (p DriftPolicy) String() string {
	switch p {
	case DriftOff:
		return "off"
	case DriftEvolve:
		return "evolve"
	case DriftAlert:
		return "alert"
	case DriftQuarantine:
		return "quarantine"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParseDriftPolicy parses a -drift-policy flag value ("" means off).
func ParseDriftPolicy(s string) (DriftPolicy, error) {
	switch s {
	case "", "off":
		return DriftOff, nil
	case "evolve":
		return DriftEvolve, nil
	case "alert":
		return DriftAlert, nil
	case "quarantine":
		return DriftQuarantine, nil
	default:
		return DriftOff, fmt.Errorf("core: unknown drift policy %q (want off, evolve, alert or quarantine)", s)
	}
}

// DefaultEpochInterval is the epoch window length (in extracted batches)
// used when Config.EpochInterval is 0.
const DefaultEpochInterval = 8

// driftMaxDetails caps the violation details retained per batch for the
// drift log; per-class counts are always exact.
const driftMaxDetails = 8

// driftCounterOf maps a validate.DriftClass onto its obs counter.
var driftCounterOf = [validate.NumDriftClasses]obs.Counter{
	validate.DriftNewType:          obs.CtrDriftNewType,
	validate.DriftNewLabelSet:      obs.CtrDriftNewLabelSet,
	validate.DriftWidenedType:      obs.CtrDriftWidenedType,
	validate.DriftMissingMandatory: obs.CtrDriftMissingMandatory,
	validate.DriftCardinalityBreak: obs.CtrDriftCardinalityBreak,
	validate.DriftTypeDowngrade:    obs.CtrDriftTypeDowngrade,
}

// DriftLog is a concurrency-safe JSONL sink for drift records (violation
// batches and epoch diffs). It is execution-only — shared by every shard of
// a sharded run — and write errors are swallowed after the first (an
// observability sink must never fail the pipeline).
type DriftLog struct {
	mu   sync.Mutex
	w    io.Writer
	dead bool
}

// NewDriftLog wraps a writer (nil returns a nil log, which is disabled).
func NewDriftLog(w io.Writer) *DriftLog {
	if w == nil {
		return nil
	}
	return &DriftLog{w: w}
}

func (l *DriftLog) emit(rec any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return
	}
	b, err := json.Marshal(rec)
	if err == nil {
		b = append(b, '\n')
		_, err = l.w.Write(b)
	}
	if err != nil {
		l.dead = true
	}
}

// driftViolationRecord is one JSONL line: a batch that violated the epoch.
type driftViolationRecord struct {
	Kind    string                    `json:"kind"` // "violations"
	Shard   int                       `json:"shard,omitempty"`
	Batch   int                       `json:"batch"`
	Slot    int                       `json:"slot"`
	Policy  string                    `json:"policy"`
	Total   uint64                    `json:"total"`
	Counts  map[string]uint64         `json:"counts"`
	Details []validate.DriftViolation `json:"details,omitempty"`
}

// driftEpochRecord is one JSONL line: an epoch boundary and its diff
// against the previous epoch.
type driftEpochRecord struct {
	Kind    string            `json:"kind"` // "epoch"
	Shard   int               `json:"shard,omitempty"`
	Epoch   int               `json:"epoch"`
	Batch   int               `json:"batch"`
	Final   bool              `json:"final,omitempty"`
	Changes int               `json:"changes"`
	Diff    schema.DiffReport `json:"diff"`
}

// EpochSnapshot is what Config.OnEpoch receives at every epoch boundary:
// an immutable view of the finalized schema at that point in the stream.
type EpochSnapshot struct {
	// Epoch is the 1-based epoch counter; Batches is how many batches had
	// been extracted into the schema when the snapshot was taken; Seq is the
	// stream sequence number of the batch that closed the window.
	Epoch   int
	Batches int
	Seq     int
	// Final marks the partial window closed at Finalize time.
	Final bool
	// Shard is the discovery shard that took the snapshot (0 unsharded).
	Shard int
	// Def is the finalized schema; it aliases nothing mutable and may be
	// retained indefinitely.
	Def *schema.Def
	// Changes is the schema.Diff against the previous epoch (nil for the
	// baseline epoch).
	Changes []schema.Change
}

// driftState is the per-pipeline drift machinery, allocated when a policy
// is set — or, checker-less, when only an OnEpoch hook wants the epoch
// clock.
type driftState struct {
	// checker is nil in epoch-only mode (DriftOff + OnEpoch): the epoch
	// clock runs, validation does not.
	checker *validate.StreamChecker
	log     *DriftLog
	// epoch counts snapshots taken; sinceEpoch counts extracted (or
	// quarantined) windows since the last one; prevDef is the baseline the
	// checker validates against and the diff compares to.
	epoch      int
	sinceEpoch int
	prevDef    *schema.Def
	// seen counts batches through extractChecked, the slot fallback for
	// sources without explicit stream positions.
	seen int
	// Summary tallies, independent of whether a telemetry sink is attached.
	byClass      [validate.NumDriftClasses]uint64
	driftBatches int
	quarantined  int
	epochChanges int
}

// newDriftState builds the drift machinery for a configured pipeline.
func newDriftState(cfg Config) *driftState {
	if cfg.DriftPolicy == DriftOff {
		if cfg.OnEpoch == nil {
			return nil
		}
		// Epoch-only mode: the publication hook needs the epoch clock but
		// nobody asked for validation, so no checker and no drift log.
		return &driftState{}
	}
	return &driftState{
		checker: validate.NewStreamChecker(driftMaxDetails),
		log:     cfg.DriftLog,
	}
}

// DriftSummary aggregates a run's drift activity, exposed as Result.Drift.
type DriftSummary struct {
	// Policy is the policy the run enforced.
	Policy DriftPolicy
	// Epochs counts schema snapshots taken; EpochChanges sums the diff
	// changes observed across epoch boundaries.
	Epochs       int
	EpochChanges int
	// ByClass holds the total violations per validate.DriftClass.
	ByClass [validate.NumDriftClasses]uint64
	// DriftBatches counts validated batches with at least one violation;
	// Quarantined counts batches the quarantine policy withheld.
	DriftBatches int
	Quarantined  int
}

// Total sums the per-class violation counts.
func (s *DriftSummary) Total() uint64 {
	var t uint64
	for _, n := range s.ByClass {
		t += n
	}
	return t
}

// Class returns one class's violation count.
func (s *DriftSummary) Class(c validate.DriftClass) uint64 { return s.ByClass[c] }

// merge folds another shard's summary into this one.
func (s *DriftSummary) merge(o *DriftSummary) {
	s.Epochs += o.Epochs
	s.EpochChanges += o.EpochChanges
	for i := range s.ByClass {
		s.ByClass[i] += o.ByClass[i]
	}
	s.DriftBatches += o.DriftBatches
	s.Quarantined += o.Quarantined
}

// driftSummary renders the pipeline's drift tallies (nil when drift is off,
// including epoch-only mode — an OnEpoch hook alone is not drift activity).
func (p *Pipeline) driftSummary() *DriftSummary {
	d := p.drift
	if d == nil || p.cfg.DriftPolicy == DriftOff {
		return nil
	}
	return &DriftSummary{
		Policy:       p.cfg.DriftPolicy,
		Epochs:       d.epoch,
		EpochChanges: d.epochChanges,
		ByClass:      d.byClass,
		DriftBatches: d.driftBatches,
		Quarantined:  d.quarantined,
	}
}

// extractChecked is the policy gate in front of extract. It runs at the
// serialized extract point (strictly in batch order), validates the batch
// against the current epoch, enforces the policy, and advances the epoch
// clock. slot is the batch's source stream position for quarantine skip
// reports; pass -1 when the caller has no stream position (the batch count
// is used instead). A quarantined batch returns a zero report and is not
// appended to p.reports, matching the fault path's skip semantics.
func (p *Pipeline) extractChecked(c computed, slot int) BatchReport {
	if p.drift == nil {
		return p.extract(c)
	}
	if slot < 0 {
		slot = p.drift.seen
	}
	p.drift.seen++
	var rep BatchReport
	if p.driftAdmit(c.b, c.seq, slot) {
		rep = p.extract(c)
	}
	p.drift.sinceEpoch++
	if p.drift.sinceEpoch >= p.cfg.EpochInterval {
		p.driftEpoch(c.seq, false)
	}
	return rep
}

// driftAdmit validates one batch and reports whether it may merge. Before
// the first epoch there is nothing to validate against, so warm-up batches
// admit trivially.
func (p *Pipeline) driftAdmit(b *pg.Batch, seq, slot int) bool {
	d := p.drift
	if d.checker == nil || !d.checker.Ready() {
		return true
	}
	start := time.Now()
	v := d.checker.CheckBatch(b)
	p.instr.Span(obs.Span{
		Stage: obs.StageValidate, Batch: seq, Slot: p.slot(seq),
		Start: start, Duration: time.Since(start),
		Elements: int(v.Total()),
	})
	if v.Clean() {
		return true
	}
	d.driftBatches++
	for cl, n := range v.Counts {
		if n > 0 {
			d.byClass[cl] += n
			p.instr.Add(driftCounterOf[cl], n)
		}
	}
	p.instr.Add(obs.CtrDriftBatches, 1)
	p.instr.Observe(obs.HistDriftBatchViolations, v.Total())
	if p.cfg.DriftPolicy != DriftEvolve {
		d.log.emit(driftViolationRecord{
			Kind: "violations", Shard: p.cfg.driftShard, Batch: seq, Slot: slot,
			Policy: p.cfg.DriftPolicy.String(),
			Total:  v.Total(), Counts: classCounts(&v), Details: v.Details,
		})
	}
	if p.cfg.DriftPolicy == DriftQuarantine {
		d.quarantined++
		p.instr.Add(obs.CtrDriftQuarantined, 1)
		p.driftSkipped = append(p.driftSkipped, SkipReport{Seq: slot, Reason: driftReason(&v)})
		return false
	}
	return true
}

// classCounts renders a verdict's non-zero per-class counts by name.
func classCounts(v *validate.BatchVerdict) map[string]uint64 {
	out := make(map[string]uint64)
	for cl, n := range v.Counts {
		if n > 0 {
			out[validate.DriftClass(cl).String()] = n
		}
	}
	return out
}

// driftReason builds the deterministic skip reason for a quarantined batch.
func driftReason(v *validate.BatchVerdict) string {
	r := fmt.Sprintf("drift: quarantined, %d violations (", v.Total())
	first := true
	for cl, n := range v.Counts {
		if n == 0 {
			continue
		}
		if !first {
			r += " "
		}
		first = false
		r += fmt.Sprintf("%s=%d", validate.DriftClass(cl), n)
	}
	return r + ")"
}

// driftEpoch takes an epoch snapshot: finalize the current schema, diff it
// against the previous epoch, publish the diff, and install the snapshot as
// the checker's new validation target. The first epoch is the baseline —
// it emits no diff (there is nothing to compare against), which also means
// validation only begins after one full warm-up window, keeping stable
// streams at zero across all windows.
func (p *Pipeline) driftEpoch(seq int, final bool) {
	d := p.drift
	start := time.Now()
	def := infer.Finalize(p.schema, infer.Options{
		SampleBased:   p.cfg.SampleDatatypes,
		Participation: p.cfg.Participation,
	})
	var changes []schema.Change
	baseline := d.prevDef == nil
	if !baseline {
		changes = schema.Diff(d.prevDef, def)
	}
	d.epoch++
	d.sinceEpoch = 0
	d.prevDef = def
	if d.checker != nil {
		d.checker.SetEpoch(def)
	}
	p.instr.Add(obs.CtrEpochs, 1)
	if !baseline {
		d.epochChanges += len(changes)
		p.instr.Add(obs.CtrEpochChanges, uint64(len(changes)))
		p.instr.Observe(obs.HistEpochDiffChanges, uint64(len(changes)))
		d.log.emit(driftEpochRecord{
			Kind: "epoch", Shard: p.cfg.driftShard, Epoch: d.epoch, Batch: seq,
			Final: final, Changes: len(changes), Diff: schema.NewDiffReport(changes),
		})
	}
	p.instr.Span(obs.Span{
		Stage: obs.StageEpoch, Batch: seq,
		Start: start, Duration: time.Since(start),
		Elements: len(changes),
	})
	if p.cfg.OnEpoch != nil {
		p.cfg.OnEpoch(EpochSnapshot{
			Epoch: d.epoch, Batches: len(p.reports), Seq: seq, Final: final,
			Shard: p.cfg.driftShard, Def: def, Changes: changes,
		})
	}
}

// driftFinalEpoch closes the last partial window at Finalize time: whatever
// changed since the most recent epoch boundary is reported against the
// run's final Def, so the drift log always covers the whole stream.
func (p *Pipeline) driftFinalEpoch() {
	d := p.drift
	if d == nil || d.epoch == 0 || d.sinceEpoch == 0 {
		return
	}
	p.driftEpoch(len(p.reports)-1, true)
}

// mergedSkips combines the fault-quarantine list with the drift-quarantine
// list, ordered by stream slot.
func (p *Pipeline) mergedSkips(faultSkips []SkipReport) []SkipReport {
	if len(p.driftSkipped) == 0 {
		return faultSkips
	}
	out := make([]SkipReport, 0, len(faultSkips)+len(p.driftSkipped))
	out = append(out, faultSkips...)
	out = append(out, p.driftSkipped...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// writeDriftState appends the drift section to a checkpoint: the epoch
// counter, the window position, and the baseline Def (as schema JSON).
// Always written — a pipeline without drift writes the empty section — so
// the layout is policy-independent and a checkpoint taken under one
// execution-only policy resumes under another.
func (p *Pipeline) writeDriftState(w *pg.WireWriter) error {
	d := p.drift
	if d == nil {
		w.Uvarint(0)
		w.Uvarint(0)
		w.Bool(false)
		return nil
	}
	w.Uvarint(uint64(d.epoch))
	w.Uvarint(uint64(d.sinceEpoch))
	if d.prevDef == nil {
		w.Bool(false)
		return nil
	}
	w.Bool(true)
	var buf bytes.Buffer
	if err := serialize.WriteJSON(&buf, d.prevDef); err != nil {
		return fmt.Errorf("core: encode epoch def: %w", err)
	}
	w.String(buf.String())
	return nil
}

// readDriftState decodes the drift section. State is restored only when the
// resuming pipeline has drift enabled; otherwise it is read and discarded.
func (p *Pipeline) readDriftState(r *pg.WireReader) error {
	epoch, err := r.Uvarint(1 << 40)
	if err != nil {
		return fmt.Errorf("core: checkpoint drift epoch: %w", err)
	}
	since, err := r.Uvarint(1 << 40)
	if err != nil {
		return fmt.Errorf("core: checkpoint drift window: %w", err)
	}
	hasDef, err := r.Bool()
	if err != nil {
		return fmt.Errorf("core: checkpoint drift def flag: %w", err)
	}
	var def *schema.Def
	if hasDef {
		js, err := r.String()
		if err != nil {
			return fmt.Errorf("core: checkpoint drift def: %w", err)
		}
		if def, err = serialize.ReadJSON(bytes.NewReader([]byte(js))); err != nil {
			return fmt.Errorf("core: decode epoch def: %w", err)
		}
	}
	if d := p.drift; d != nil {
		d.epoch = int(epoch)
		d.sinceEpoch = int(since)
		d.prevDef = def
		if def != nil && d.checker != nil {
			d.checker.SetEpoch(def)
		}
	}
	return nil
}
