package soak

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pghive/internal/core"
	"pghive/internal/datagen"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenSeed pins the regression stream; changing it invalidates testdata.
const goldenSeed = 7

// Golden regression pin for the near-theta scenario: the same spec + seed
// must produce a byte-identical stream (by canonical wire hash) and a
// byte-identical schema JSON, across machines and Go releases. The
// adversarial point of near-theta is that its types straddle the θ = 0.9
// merge boundary, so any drift in generation, hashing, clustering, or
// merging shows up here first. Run with -update to rewrite testdata after
// an intentional change.
func TestNearThetaGolden(t *testing.T) {
	sc := datagen.ScenarioByName("near-theta")
	if sc == nil {
		t.Fatal("near-theta scenario missing")
	}

	hash, batches, nodes, edges := datagen.HashStream(sc.Stream(goldenSeed))
	streamLine := fmt.Sprintf("%s batches=%d nodes=%d edges=%d\n", hash, batches, nodes, edges)

	res := core.Discover(sc.Stream(goldenSeed), core.Config{})

	checkGolden(t, filepath.Join("testdata", "near-theta.stream"), []byte(streamLine))
	checkGolden(t, filepath.Join("testdata", "near-theta.schema.json"), schemaJSON(t, res))
}

// TestScenarioGoldenReproducible is the spec-level reproducibility claim:
// for every named scenario, two independent streams from the same seed are
// byte-identical, and so are the schemas discovered from them.
func TestScenarioGoldenReproducible(t *testing.T) {
	for _, sc := range datagen.Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			h1, _, _, _ := datagen.HashStream(sc.Stream(goldenSeed))
			h2, _, _, _ := datagen.HashStream(sc.Stream(goldenSeed))
			if h1 != h2 {
				t.Fatalf("stream hash not reproducible: %s vs %s", h1, h2)
			}
			a := core.Discover(sc.Stream(goldenSeed), core.Config{})
			b := core.Discover(sc.Stream(goldenSeed), core.Config{})
			if !bytes.Equal(schemaJSON(t, a), schemaJSON(t, b)) {
				t.Fatal("schema JSON not reproducible from the same seed")
			}
		})
	}
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("%s drifted from golden (run with -update after an intentional change)\n got: %d bytes\nwant: %d bytes",
			path, len(got), len(want))
	}
}
