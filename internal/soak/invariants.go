package soak

import (
	"fmt"
	"sort"
	"strings"

	"pghive/internal/datagen"
	"pghive/internal/schema"
)

// EquivalenceLevel grades how strong a sharded-vs-serial equivalence claim
// a workload supports. Sharding re-partitions each batch's elements across
// pipelines, which changes LSH cluster composition; what survives that
// depends on the stream's adversarial structure.
type EquivalenceLevel int

const (
	// EquivExact: the full labeled projection is identical — label sets,
	// instance counts, per-property data types and mandatory flags. Holds
	// when every element is labeled and clusters are label-pure (elements
	// with different label sets have dissimilar properties).
	EquivExact EquivalenceLevel = iota
	// EquivLabeled: the labeled type key set, the per-kind property-key
	// unions, and the per-kind instance totals agree. The right claim when
	// the stream has unlabeled elements: Algorithm 2 may absorb an
	// unlabeled candidate into a labeled type (rule 2 of MergeTypes), and
	// which type absorbs it is arrival-order-dependent.
	EquivLabeled
	// EquivCoverage: per-kind individual-label coverage, property-key
	// unions, and instance totals agree. The right claim under label
	// mixing (supernode rerouting, property/label noise): similar elements
	// with different labels land in one cluster, so the candidate label
	// SETS are partition-dependent — but every label carried by a labeled
	// element still surfaces in some labeled type, every property key in
	// some type, and every element is counted exactly once.
	EquivCoverage
)

// String names the level for reports and CSVs.
func (l EquivalenceLevel) String() string {
	switch l {
	case EquivExact:
		return "exact"
	case EquivLabeled:
		return "labeled"
	default:
		return "coverage"
	}
}

// EquivalenceDiff compares a sharded schema against its serial reference
// at the given level and describes the differences, or returns "" when
// equivalent.
func EquivalenceDiff(want, got *schema.Def, level EquivalenceLevel) string {
	if level == EquivExact {
		return projectionDiff(schema.LabeledProjection(want), schema.LabeledProjection(got))
	}
	return projectionDiff(weakProjection(want, level), weakProjection(got, level))
}

// weakProjection canonicalizes the partition-invariant part of a schema at
// the EquivLabeled or EquivCoverage level.
func weakProjection(def *schema.Def, level EquivalenceLevel) map[string]string {
	proj := map[string]string{}
	totals := map[string]int{}
	props := map[string]map[string]struct{}{"node": {}, "edge": {}}
	labels := map[string]map[string]struct{}{"node": {}, "edge": {}}
	fold := func(kind string, typeLabels []string, abstract bool, instances int, typeProps []schema.PropertyDef) {
		totals[kind] += instances
		for _, p := range typeProps {
			props[kind][p.Key] = struct{}{}
		}
		if abstract {
			return
		}
		if level == EquivCoverage {
			for _, l := range typeLabels {
				labels[kind][l] = struct{}{}
			}
			return
		}
		key := append([]string(nil), typeLabels...)
		sort.Strings(key)
		proj[kind+":"+strings.Join(key, "|")] = "labeled"
	}
	for _, n := range def.Nodes {
		fold("node", n.Labels, n.Abstract, n.Instances, n.Properties)
	}
	for _, e := range def.Edges {
		fold("edge", e.Labels, e.Abstract, e.Instances, e.Properties)
	}
	for _, kind := range []string{"node", "edge"} {
		proj["instances:"+kind] = fmt.Sprintf("%d", totals[kind])
		proj["props:"+kind] = strings.Join(sortedKeys(props[kind]), " ")
		if level == EquivCoverage {
			proj["labels:"+kind] = strings.Join(sortedKeys(labels[kind]), " ")
		}
	}
	return proj
}

func sortedKeys(set map[string]struct{}) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ScenarioEquivalenceLevel grades the equivalence claim a scenario's stream
// supports: label-mixing features (supernode rerouting, property or label
// noise) drop to coverage; unlabeled elements drop to labeled; otherwise
// the claim is exact.
func ScenarioEquivalenceLevel(sc *datagen.Scenario, seed int64, repeat int) EquivalenceLevel {
	for _, ph := range sc.Phases {
		if ph.Supernodes.Count > 0 || ph.LabelNoise > 0 || ph.EdgeLabelNoise > 0 || ph.PropNoise > 0 {
			return EquivCoverage
		}
	}
	if !StreamFullyLabeled(sc, seed, repeat) {
		return EquivLabeled
	}
	return EquivExact
}

// StreamFullyLabeled reports whether every element the scenario emits
// carries at least one label — a precondition for exact sharded-vs-serial
// equivalence.
func StreamFullyLabeled(sc *datagen.Scenario, seed int64, repeat int) bool {
	src := sc.StreamN(seed, repeat)
	for b := src.Next(); b != nil; b = src.Next() {
		for _, n := range b.Nodes {
			if len(n.Labels) == 0 {
				return false
			}
		}
		for _, e := range b.Edges {
			if len(e.Labels) == 0 {
				return false
			}
		}
	}
	return true
}

// unionSorted merges two sorted string slices into a sorted, deduplicated
// union.
func unionSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// projectionDiff compares two labeled projections and describes the first
// few differences, or returns "" when they agree.
func projectionDiff(want, got map[string]string) string {
	var diffs []string
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g, ok := got[k]
		switch {
		case !ok:
			diffs = append(diffs, fmt.Sprintf("missing %q", k))
		case g != want[k]:
			diffs = append(diffs, fmt.Sprintf("%q: %q vs %q", k, want[k], g))
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("unexpected %q", k))
		}
	}
	if len(diffs) == 0 {
		return ""
	}
	sort.Strings(diffs)
	if len(diffs) > 5 {
		diffs = append(diffs[:5], fmt.Sprintf("... and %d more", len(diffs)-5))
	}
	return strings.Join(diffs, "; ")
}
