package soak

import (
	"strings"
	"testing"

	"pghive/internal/core"
	"pghive/internal/pg"
	"pghive/internal/schema"
)

// defOver discovers a Def over a small synthetic graph; withExtras adds a
// Device type and an email property on Person, so (base, extended) form a
// strict subset pair for exercising defRemovals in both directions.
func defOver(t *testing.T, withExtras bool) *schema.Def {
	t.Helper()
	b := &pg.Batch{}
	for i := 0; i < 10; i++ {
		props := pg.Properties{"name": pg.Str("p")}
		if withExtras {
			props["email"] = pg.Str("p@x")
		}
		b.Nodes = append(b.Nodes, pg.NodeRecord{ID: pg.ID(i + 1), Labels: []string{"Person"}, Props: props})
	}
	if withExtras {
		b.Nodes = append(b.Nodes, pg.NodeRecord{ID: 100, Labels: []string{"Device"},
			Props: pg.Properties{"serial": pg.Str("d")}})
	}
	return core.Discover(pg.NewSliceSource(b), core.Config{}).Def
}

func TestDefRemovals(t *testing.T) {
	base := defOver(t, false)
	extended := defOver(t, true)

	// Growth is legal: nothing lost going base -> extended.
	if lost := defRemovals(base, extended); len(lost) != 0 {
		t.Fatalf("growth flagged as regression: %v", lost)
	}
	// Identity is legal.
	if lost := defRemovals(extended, extended); len(lost) != 0 {
		t.Fatalf("identical defs flagged: %v", lost)
	}
	// Shrinking is a violation: the Device type and Person.email vanish.
	lost := defRemovals(extended, base)
	if len(lost) == 0 {
		t.Fatal("regression not detected")
	}
	joined := strings.Join(lost, "; ")
	if !strings.Contains(joined, "Device") {
		t.Errorf("lost type not reported: %s", joined)
	}
	if !strings.Contains(joined, "email") {
		t.Errorf("lost property not reported: %s", joined)
	}
}

// TestWindowDefMerge: a sharded window's partial schemas merge into one Def
// covering every shard's types, same as the engine's end-of-stream merge.
func TestWindowDefMerge(t *testing.T) {
	mk := func(label string) *schema.Schema {
		b := &pg.Batch{}
		for i := 0; i < 10; i++ {
			b.Nodes = append(b.Nodes, pg.NodeRecord{ID: pg.ID(i + 1), Labels: []string{label},
				Props: pg.Properties{"name": pg.Str("x")}})
		}
		return core.Discover(pg.NewSliceSource(b), core.Config{}).Schema
	}
	def := windowDef([]*schema.Schema{mk("Person"), mk("Org")}, core.Config{})
	names := map[string]bool{}
	for _, n := range def.Nodes {
		names[n.Name] = true
	}
	if !names["Person"] || !names["Org"] {
		t.Fatalf("merged window def missing shard types: %v", names)
	}
}
