package soak

import (
	"errors"
	"strings"
	"testing"

	"pghive/internal/core"
	"pghive/internal/datagen"
	"pghive/internal/pg"
)

// shrunk returns a -short-friendly copy of a named scenario: fewer batches
// per phase and smaller batches, same adversarial structure.
func shrunk(t testing.TB, name string) *datagen.Scenario {
	sc := datagen.ScenarioByName(name)
	if sc == nil {
		t.Fatalf("unknown scenario %q", name)
	}
	if !testing.Short() {
		return sc
	}
	small := *sc
	small.BatchNodes = 80
	small.Phases = append([]datagen.ScenarioPhase(nil), sc.Phases...)
	for i := range small.Phases {
		if small.Phases[i].Batches > 2 {
			small.Phases[i].Batches = 2
		}
		if small.Phases[i].NodesPerBatch > 80 {
			small.Phases[i].NodesPerBatch = 80
		}
	}
	return &small
}

func TestSoakCleanRun(t *testing.T) {
	sc := shrunk(t, "gradual-drift")
	rep, err := Run(Options{Scenario: sc, Seed: 1, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("violations on a clean run: %v", rep.Violations)
	}
	if rep.Batches != sc.TotalBatches() {
		t.Errorf("processed %d batches, want %d", rep.Batches, sc.TotalBatches())
	}
	if rep.Checkpoints != rep.Batches {
		t.Errorf("%d checkpoints for %d batches", rep.Checkpoints, rep.Batches)
	}
	if rep.Windows == 0 || rep.NodeTypes == 0 || rep.EdgeTypes == 0 {
		t.Errorf("empty report: %d windows, %d node types, %d edge types",
			rep.Windows, rep.NodeTypes, rep.EdgeTypes)
	}
	if rep.StreamHash == "" || len(rep.SchemaJSON) == 0 {
		t.Error("missing stream hash or schema JSON")
	}
}

// Faults + kill/resume: the harness must survive transient and corrupt
// batches, one mid-run kill, and still match the uninterrupted run
// byte-for-byte (checked inside Run; OK() carries the verdict).
func TestSoakFaultsAndKillResume(t *testing.T) {
	sc := shrunk(t, "near-theta")
	rep, err := Run(Options{
		Scenario:  sc,
		Seed:      3,
		Window:    2,
		Kills:     1,
		KillEvery: 4,
		Faults:    pg.FaultProfile{TransientRate: 0.2, CorruptRate: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kills != 1 {
		t.Errorf("injected %d kills, want 1", rep.Kills)
	}
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
}

func TestSoakShardedWithEverything(t *testing.T) {
	sc := shrunk(t, "abrupt-drift")
	cfg := core.Config{Shards: 2}
	rep, err := Run(Options{
		Scenario:         sc,
		Seed:             5,
		Config:           cfg,
		Window:           2,
		Kills:            1,
		KillEvery:        4,
		Faults:           pg.FaultProfile{TransientRate: 0.15, CorruptRate: 0.04},
		CheckEquivalence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kills != 1 {
		t.Errorf("injected %d kills, want 1", rep.Kills)
	}
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
}

// TestSoakDrift: the conformance checker rides the soak harness — a drift
// scenario under quarantine keeps the pre-drift schema and reports every
// quarantined batch, a steady stream stays at zero across every window, and
// the drift-accounting invariant holds in both cases.
func TestSoakDrift(t *testing.T) {
	rep, err := Run(Options{
		Scenario: shrunk(t, "gradual-drift"),
		Seed:     1,
		Window:   2,
		// Interval 2 keeps the first epoch inside the base phase even on
		// the -short shrunk timeline.
		Config: core.Config{DriftPolicy: core.DriftQuarantine, EpochInterval: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	d := rep.Drift
	if d == nil {
		t.Fatal("no drift summary")
	}
	if d.Total() == 0 || d.Quarantined == 0 {
		t.Errorf("drift scenario under quarantine: %d violations, %d quarantined", d.Total(), d.Quarantined)
	}
	if d.Quarantined != rep.Quarantined {
		t.Errorf("report counts %d quarantined, drift summary %d", rep.Quarantined, d.Quarantined)
	}
	// Drift-phase types must be held out of the schema.
	if strings.Contains(string(rep.SchemaJSON), "Session") {
		t.Error("quarantine admitted the drift-phase Session type")
	}

	steady, err := Run(Options{
		Scenario: shrunk(t, "steady"),
		Seed:     1,
		Window:   2,
		Config:   core.Config{DriftPolicy: core.DriftQuarantine, EpochInterval: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !steady.OK() {
		t.Fatalf("steady violations: %v", steady.Violations)
	}
	if sd := steady.Drift; sd == nil || sd.Total() != 0 || sd.Quarantined != 0 {
		t.Errorf("steady stream drifted: %+v", steady.Drift)
	}

	// Quarantine under sharding has no serial-equivalence claim.
	if _, err := Run(Options{
		Scenario:         shrunk(t, "gradual-drift"),
		Seed:             1,
		Config:           core.Config{Shards: 2, DriftPolicy: core.DriftQuarantine},
		CheckEquivalence: true,
	}); err == nil {
		t.Error("equivalence check accepted under quarantine")
	}
}

func TestSoakHeapBudgetViolation(t *testing.T) {
	rep, err := Run(Options{
		Scenario:       shrunk(t, "skew"),
		Seed:           1,
		Window:         2,
		MemBudgetBytes: 1, // impossible budget: the check itself must fire
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("1-byte heap budget not reported as violated")
	}
	// The budget is wired into the pipeline, so both the heap invariant
	// and the evidence-footprint invariant must trip on an impossible one.
	seen := map[string]bool{}
	for _, v := range rep.Violations {
		switch v.Invariant {
		case "heap-budget", "evidence-budget":
			seen[v.Invariant] = true
		default:
			t.Errorf("unexpected violation %v", v)
		}
	}
	if !seen["heap-budget"] || !seen["evidence-budget"] {
		t.Errorf("violated invariants %v, want both heap-budget and evidence-budget", seen)
	}
	if rep.HeapPeak == 0 {
		t.Error("heap peak not recorded")
	}
	if rep.EvidencePeak == 0 {
		t.Error("evidence peak not recorded")
	}
}

// TestSoakSketchedWithinBudget: under a realistic budget the sketched
// evidence mode must actually stay inside it — the invariant that makes
// -mem-budget a guarantee rather than a suggestion.
func TestSoakSketchedWithinBudget(t *testing.T) {
	rep, err := Run(Options{
		Scenario:       shrunk(t, "skew"),
		Seed:           1,
		Window:         2,
		MemBudgetBytes: 256 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("violations under a 256MB budget: %v", rep.Violations)
	}
	if rep.EvidencePeak == 0 {
		t.Error("sketched run recorded no evidence footprint")
	}
	if rep.EvidencePeak > 256<<20 {
		t.Errorf("evidence peak %d exceeds the 256MB budget", rep.EvidencePeak)
	}

	// The escape hatch keeps evidence exact: no evidence-budget tracking.
	exact, err := Run(Options{
		Scenario:       shrunk(t, "skew"),
		Seed:           1,
		Window:         2,
		MemBudgetBytes: 256 << 20,
		ExactEvidence:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.OK() {
		t.Fatalf("exact-evidence violations: %v", exact.Violations)
	}
	if exact.EvidencePeak != 0 {
		t.Errorf("exact-evidence run tracked an evidence peak (%d)", exact.EvidencePeak)
	}
}

func TestSoakRejectsBadOptions(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Error("nil scenario accepted")
	}
	sc := datagen.ScenarioByName("skew")
	if _, err := Run(Options{Scenario: sc, Faults: pg.FaultProfile{FailAfter: 3}}); err == nil {
		t.Error("FailAfter accepted — it breaks resume replay")
	}
	bad := *sc
	bad.Phases = nil
	if _, err := Run(Options{Scenario: &bad}); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestKillSource(t *testing.T) {
	sc := datagen.ScenarioByName("skew")
	src := &killSource{inner: pg.AsErrSource(sc.Stream(1)), budget: 3}
	for i := 0; i < 3; i++ {
		b, err := src.Next()
		if err != nil || b == nil {
			t.Fatalf("delivery %d: batch %v err %v", i, b != nil, err)
		}
	}
	if _, err := src.Next(); !errors.Is(err, errKill) {
		t.Fatalf("expected kill, got %v", err)
	}
	// budget < 0 never kills.
	free := &killSource{inner: pg.AsErrSource(sc.Stream(1)), budget: -1}
	n := 0
	for {
		b, err := free.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		n++
	}
	if n != sc.TotalBatches() {
		t.Errorf("drained %d batches, want %d", n, sc.TotalBatches())
	}
}

func TestProjectionDiff(t *testing.T) {
	a := map[string]string{"node:A": "inst=3", "abstract-instances": "0"}
	if d := projectionDiff(a, map[string]string{"node:A": "inst=3", "abstract-instances": "0"}); d != "" {
		t.Errorf("equal projections diffed: %s", d)
	}
	d := projectionDiff(a, map[string]string{"node:A": "inst=4", "abstract-instances": "0", "node:B": "inst=1"})
	if !strings.Contains(d, "node:A") || !strings.Contains(d, "unexpected") {
		t.Errorf("diff missing detail: %s", d)
	}
}

func TestUnionSorted(t *testing.T) {
	got := unionSorted([]string{"a", "c", "e"}, []string{"b", "c", "f"})
	want := "a b c e f"
	if strings.Join(got, " ") != want {
		t.Errorf("unionSorted = %v, want %v", got, want)
	}
	if len(unionSorted(nil, nil)) != 0 {
		t.Error("union of nils not empty")
	}
}
